// Device checkpoint lifecycle: run half a personalization session, persist
// all on-device state (model weights, selection buffer, vocabulary, engine
// stats) through the crash-safe CheckpointManager, simulate a power loss in
// the middle of a later save, then restore into a fresh process-equivalent
// — proving the device rolls back to the newest complete generation and
// continues, never crashes or trains on torn state.
//
//   ./example_device_checkpoint [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/checkpoint.h"
#include "core/engine.h"
#include "data/generator.h"
#include "exp/experiment.h"
#include "text/vocab_io.h"
#include "util/fault.h"
#include "util/table.h"

using namespace odlp;

namespace {

core::EngineConfig engine_config() {
  core::EngineConfig ec;
  ec.buffer_bins = 16;
  ec.finetune_interval = 60;
  ec.train.epochs = 12;
  ec.train.learning_rate = 1e-2f;
  ec.sampler.max_new_tokens = 16;
  return ec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  const auto& dict = lexicon::builtin_dictionary();
  const std::string ckpt_dir = "/tmp/odlp_ckpt_demo";
  std::filesystem::remove_all(ckpt_dir);

  exp::ExperimentConfig cfg;
  cfg.seed = seed;
  data::UserOracle oracle(seed, dict);
  data::Generator generator(data::meddialog_profile(), oracle, util::Rng(seed));
  const auto dataset = generator.generate(240, 60);
  std::vector<const data::DialogueSet*> test;
  for (std::size_t i = 0; i < 24; ++i) test.push_back(&dataset.test[i]);

  double rouge_mid = 0.0;
  std::uint64_t last_good_gen = 0;

  // --- session 1: first half of the stream, periodic checkpoints, then a
  // power cut in the middle of the final save ---
  {
    text::Tokenizer tokenizer = exp::make_device_tokenizer();
    auto model = exp::make_base_model(cfg, tokenizer);
    llm::LlmEmbeddingExtractor extractor(*model, tokenizer);
    util::Rng rng(seed ^ 1);
    core::PersonalizationEngine engine(
        *model, tokenizer, extractor, oracle, dict,
        std::make_unique<core::QualityReplacementPolicy>(),
        std::make_unique<core::ParaphraseSynthesizer>(dict, rng.split()),
        engine_config(), rng.split());
    core::CheckpointManager ckpt(ckpt_dir, /*keep_last=*/3);

    for (std::size_t i = 0; i < 60; ++i) engine.process(dataset.stream[i]);
    const std::uint64_t gen1 = ckpt.save(*model, engine.buffer(),
                                         tokenizer.vocab(), engine.stats());
    std::printf("session 1: 60 sets processed, generation %llu saved\n",
                static_cast<unsigned long long>(gen1));

    for (std::size_t i = 60; i < 120; ++i) engine.process(dataset.stream[i]);
    engine.finetune_now();
    rouge_mid = engine.evaluate(test);
    last_good_gen = ckpt.save(*model, engine.buffer(), tokenizer.vocab(),
                              engine.stats());
    std::printf("session 1: 120 sets processed, ROUGE-1 %.4f, generation %llu "
                "saved\n",
                rouge_mid, static_cast<unsigned long long>(last_good_gen));

    // Power loss mid-save: the 4th write of the next generation's model file
    // dies. CheckpointManager writes the manifest last, so the torn
    // generation never becomes a restore target.
    util::fault::FaultPlan plan;
    plan.path_substring = "model.bin";
    plan.fail_on_write = 3;
    try {
      util::fault::ScopedFault fault(plan);
      ckpt.save(*model, engine.buffer(), tokenizer.vocab(), engine.stats());
      std::printf("session 1: UNEXPECTED — save survived the injected fault\n");
    } catch (const util::fault::InjectedFault& e) {
      std::printf("session 1: simulated power loss mid-save (%s)\n", e.what());
    }
  }

  // --- session 2: reboot — walk back to the newest complete generation and
  // continue with the second half ---
  {
    core::CheckpointManager ckpt(ckpt_dir, /*keep_last=*/3);
    const auto contents = ckpt.newest_valid();
    if (!contents) {
      std::printf("session 2: no restorable checkpoint found\n");
      return 1;
    }
    std::printf("session 2: newest valid generation is %llu (torn generation "
                "%llu skipped)\n",
                static_cast<unsigned long long>(contents->generation),
                static_cast<unsigned long long>(contents->generation + 1));

    // Vocabulary first (it fixes the model geometry), then the model with
    // LoRA attached exactly as the saving engine had it, then everything
    // else via the verified restore path.
    text::Tokenizer tokenizer(text::load_vocab(contents->vocab_path));
    llm::ModelConfig mc = exp::make_model_config(cfg, tokenizer);
    llm::MiniLlm model(mc, /*seed=*/999);  // arbitrary init, overwritten
    core::EngineConfig ec = engine_config();
    model.attach_lora(ec.lora);
    const auto restored = ckpt.restore(model);
    if (!restored || restored->generation != last_good_gen) {
      std::printf("session 2: rollback failed\n");
      return 1;
    }

    llm::LlmEmbeddingExtractor extractor(model, tokenizer);
    util::Rng rng(seed ^ 2);
    core::PersonalizationEngine engine(
        model, tokenizer, extractor, oracle, dict,
        std::make_unique<core::QualityReplacementPolicy>(),
        std::make_unique<core::ParaphraseSynthesizer>(dict, rng.split()),
        ec, rng.split());
    engine.restore_buffer(core::DataBuffer(restored->buffer));
    const double rouge_after_reboot = engine.evaluate(test);
    std::printf("session 2: restored generation %llu (%zu buffered sets, %zu "
                "sets seen pre-crash), ROUGE-1 after reboot %.4f (persisted "
                "%.4f)\n",
                static_cast<unsigned long long>(restored->generation),
                restored->buffer.size(), restored->stats.seen,
                rouge_after_reboot, rouge_mid);

    for (std::size_t i = 120; i < 240; ++i) engine.process(dataset.stream[i]);
    engine.finetune_now();
    const double rouge_final = engine.evaluate(test);
    std::printf("session 2: processed remaining 120 sets, final ROUGE-1 %.4f\n",
                rouge_final);

    util::Table summary({"stage", "ROUGE-1"});
    summary.row().cell("after session 1 (pre-crash)").cell(rouge_mid, 4);
    summary.row().cell("restored (post-reboot)").cell(rouge_after_reboot, 4);
    summary.row().cell("after session 2").cell(rouge_final, 4);
    std::printf("\n%s", summary.to_string().c_str());
  }

  std::filesystem::remove_all(ckpt_dir);
  return 0;
}
