// Device checkpoint lifecycle: run half a personalization session, persist
// all on-device state (model weights, selection buffer, vocabulary), then
// restore into a fresh process-equivalent and continue — the reboot story a
// real deployment needs.
//
//   ./example_device_checkpoint [seed]
#include <cstdio>
#include <cstdlib>

#include "core/buffer_io.h"
#include "core/engine.h"
#include "data/generator.h"
#include "exp/experiment.h"
#include "text/vocab_io.h"
#include "util/table.h"

using namespace odlp;

namespace {

core::EngineConfig engine_config() {
  core::EngineConfig ec;
  ec.buffer_bins = 16;
  ec.finetune_interval = 60;
  ec.train.epochs = 12;
  ec.train.learning_rate = 1e-2f;
  ec.sampler.max_new_tokens = 16;
  return ec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  const auto& dict = lexicon::builtin_dictionary();

  const std::string model_path = "/tmp/odlp_ckpt_model.bin";
  const std::string buffer_path = "/tmp/odlp_ckpt_buffer.bin";
  const std::string vocab_path = "/tmp/odlp_ckpt_vocab.txt";

  exp::ExperimentConfig cfg;
  cfg.seed = seed;
  data::UserOracle oracle(seed, dict);
  data::Generator generator(data::meddialog_profile(), oracle, util::Rng(seed));
  const auto dataset = generator.generate(240, 60);
  std::vector<const data::DialogueSet*> test;
  for (std::size_t i = 0; i < 24; ++i) test.push_back(&dataset.test[i]);

  double rouge_mid = 0.0;

  // --- session 1: first half of the stream, then power-off ---
  {
    text::Tokenizer tokenizer = exp::make_device_tokenizer();
    auto model = exp::make_base_model(cfg, tokenizer);
    llm::LlmEmbeddingExtractor extractor(*model, tokenizer);
    util::Rng rng(seed ^ 1);
    core::PersonalizationEngine engine(
        *model, tokenizer, extractor, oracle, dict,
        std::make_unique<core::QualityReplacementPolicy>(),
        std::make_unique<core::ParaphraseSynthesizer>(dict, rng.split()),
        engine_config(), rng.split());
    for (std::size_t i = 0; i < 120; ++i) engine.process(dataset.stream[i]);
    engine.finetune_now();
    rouge_mid = engine.evaluate(test);

    // Persist everything the device needs across a reboot. LoRA adapters are
    // merged into the base weights so the checkpoint is self-contained.
    model->merge_lora();
    model->save(model_path);
    core::save_buffer(engine.buffer(), buffer_path);
    text::save_vocab(tokenizer.vocab(), vocab_path);
    std::printf("session 1: processed 120 sets, ROUGE-1 %.4f, checkpointed "
                "(model+buffer+vocab)\n",
                rouge_mid);
  }

  // --- session 2: reboot — restore and continue with the second half ---
  {
    text::Tokenizer tokenizer(text::load_vocab(vocab_path));
    llm::ModelConfig mc = exp::make_model_config(cfg, tokenizer);
    llm::MiniLlm model(mc, /*seed=*/999);  // arbitrary init, overwritten by load
    model.load(model_path);
    llm::LlmEmbeddingExtractor extractor(model, tokenizer);
    util::Rng rng(seed ^ 2);
    core::PersonalizationEngine engine(
        model, tokenizer, extractor, oracle, dict,
        std::make_unique<core::QualityReplacementPolicy>(),
        std::make_unique<core::ParaphraseSynthesizer>(dict, rng.split()),
        engine_config(), rng.split());

    // Restore the selection buffer — the engine resumes exactly where the
    // pre-reboot session stopped (stored embeddings included, so IDD needs
    // no recomputation).
    core::DataBuffer restored = core::load_buffer(buffer_path);
    const std::size_t restored_count = restored.size();
    engine.restore_buffer(std::move(restored));
    const double rouge_after_reboot = engine.evaluate(test);
    std::printf("session 2: restored model, ROUGE-1 after reboot %.4f "
                "(persisted %.4f)\n", rouge_after_reboot, rouge_mid);

    for (std::size_t i = 120; i < 240; ++i) engine.process(dataset.stream[i]);
    engine.finetune_now();
    const double rouge_final = engine.evaluate(test);
    std::printf("session 2: processed remaining 120 sets, final ROUGE-1 %.4f\n",
                rouge_final);

    util::Table summary({"stage", "ROUGE-1"});
    summary.row().cell("after session 1 (pre-reboot)").cell(rouge_mid, 4);
    summary.row().cell("restored (post-reboot)").cell(rouge_after_reboot, 4);
    summary.row().cell("after session 2").cell(rouge_final, 4);
    std::printf("\n%s", summary.to_string().c_str());
    std::printf("\nrestored buffer file held %zu entries\n", restored_count);
  }

  std::remove(model_path.c_str());
  std::remove(buffer_path.c_str());
  std::remove(vocab_path.c_str());
  return 0;
}
