// Buffer explorer: a transparent, step-by-step trace of the data-selection
// stage — every arriving dialogue set's EOE/DSS/IDD scores and the policy's
// decision (admit into free bin / replace victim / reject). Useful for
// understanding how the three metrics interact before deploying the engine.
//
//   ./example_buffer_explorer [num_sets] [buffer_bins]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "data/generator.h"
#include "exp/experiment.h"
#include "util/table.h"

using namespace odlp;

int main(int argc, char** argv) {
  const std::size_t num_sets =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const std::size_t bins = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;

  const auto& dict = lexicon::builtin_dictionary();
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  data::UserOracle oracle(77, dict);
  data::Generator generator(data::meddialog_profile(), oracle, util::Rng(77));
  const auto dataset = generator.generate(num_sets, 0);

  // Bag-of-words embeddings keep the trace instantaneous (the real engine
  // uses the LLM's last hidden layer; the interface is identical).
  llm::BagOfWordsExtractor extractor(32);
  llm::ModelConfig mc;
  mc.vocab_size = tokenizer.vocab().size();
  mc.dim = 16;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 32;
  llm::MiniLlm model(mc, 1);

  core::EngineConfig ec;
  ec.buffer_bins = bins;
  ec.finetune_interval = 0;  // selection only; no training in this trace
  core::PersonalizationEngine engine(
      model, tokenizer, extractor, oracle, dict,
      std::make_unique<core::QualityReplacementPolicy>(),
      nullptr, ec, util::Rng(7));

  std::printf("Data-selection trace: %zu streamed sets into a %zu-bin buffer "
              "(%.0f KB at the paper's 22 KB/bin)\n\n",
              num_sets, bins, engine.buffer().allocated_kb());

  util::Table trace({"#", "kind", "domain", "EOE", "DSS", "IDD", "decision"});
  for (const auto& set : dataset.stream) {
    const core::Candidate cand = engine.score(set);
    const std::size_t before = engine.buffer().size();
    const bool admitted = engine.process(set);
    std::string decision;
    if (!admitted) {
      decision = "reject";
    } else if (engine.buffer().size() > before) {
      decision = "admit (free bin)";
    } else {
      decision = "admit (replace)";
    }
    trace.row()
        .cell(static_cast<long long>(set.stream_position))
        .cell(set.is_noise ? "noise" : "info")
        .cell(cand.dominant_domain ? dict.domain(*cand.dominant_domain).name()
                                   : "-")
        .cell(cand.scores.eoe, 3)
        .cell(cand.scores.dss, 3)
        .cell(cand.scores.idd, 3)
        .cell(decision);
  }
  std::printf("%s\n", trace.to_string().c_str());

  std::printf("final buffer:\n");
  util::Table buf({"bin", "kind", "domain", "EOE", "DSS", "IDD", "annotated answer"});
  for (std::size_t i = 0; i < engine.buffer().size(); ++i) {
    const auto& e = engine.buffer().entry(i);
    buf.row()
        .cell(static_cast<long long>(i))
        .cell(e.set.is_noise ? "noise" : "info")
        .cell(e.dominant_domain ? dict.domain(*e.dominant_domain).name() : "-")
        .cell(e.scores.eoe, 3)
        .cell(e.scores.dss, 3)
        .cell(e.scores.idd, 3)
        .cell(e.set.answer.substr(0, 44));
  }
  std::printf("%s", buf.to_string().c_str());
  std::printf("\nstats: %zu seen, %zu admitted free, %zu replacements, %zu "
              "rejected, %zu annotations\n",
              engine.stats().seen, engine.stats().admitted_free,
              engine.stats().admitted_replacing, engine.stats().rejected,
              oracle.annotation_requests());
  return 0;
}
