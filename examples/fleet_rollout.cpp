// Fleet rollout: the platform-team view — the framework deployed to several
// simulated devices (each with a distinct user and stream), compared against
// the strongest baseline with distributional statistics and a paired
// significance read-out rather than a single lucky seed.
//
//   ./example_fleet_rollout [num_devices]
#include <cstdio>
#include <cstdlib>

#include "eval/significance.h"
#include "exp/fleet.h"
#include "util/table.h"

using namespace odlp;

int main(int argc, char** argv) {
  exp::FleetConfig fleet;
  fleet.num_devices = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  fleet.device_template.dataset = "MedDialog";
  fleet.device_template.stream_size = 160;
  fleet.device_template.finetune_interval = 80;
  fleet.device_template.test_size = 300;
  fleet.device_template.eval_subset = 24;
  fleet.device_template.epochs = 14;
  fleet.device_template.record_curve = false;

  std::printf("Fleet rollout: %zu devices, MedDialog-style users, "
              "Ours vs Random Replace\n\n", fleet.num_devices);

  const auto results =
      exp::compare_methods_over_fleet(fleet, {"Ours", "Random"});

  util::Table table({"method", "mean", "min", "max", "stddev",
                     "device wins", "mean annotations"});
  for (const auto& r : results) {
    table.row()
        .cell(r.method)
        .cell(r.mean_rouge, 4)
        .cell(r.min_rouge, 4)
        .cell(r.max_rouge, 4)
        .cell(r.stddev_rouge, 4)
        .cell(static_cast<long long>(r.wins))
        .cell(r.mean_annotations, 1);
  }
  std::printf("%s\n", table.to_string().c_str());

  // Per-device paired comparison (device i sees the identical user/stream
  // under both methods).
  std::vector<double> ours, baseline;
  for (std::size_t d = 0; d < fleet.num_devices; ++d) {
    ours.push_back(results[0].devices[d].final_rouge);
    baseline.push_back(results[1].devices[d].final_rouge);
  }
  util::Rng rng(99);
  const auto boot = eval::paired_bootstrap(ours, baseline, rng, 2000);
  std::printf("paired bootstrap over devices: mean delta %.4f "
              "(95%% CI [%.4f, %.4f]), win rate %.1f%%\n",
              boot.mean_delta, boot.delta_ci_low, boot.delta_ci_high,
              100.0 * boot.win_rate);
  std::printf("sign test p-value: %.3f  (small n — see bench_table2 for the "
              "per-set version)\n",
              eval::sign_test_p_value(ours, baseline));
  return 0;
}
