// INT8 quantized inference, side by side with fp32.
//
// Builds a mid-size MiniLlm (large enough that a decode step streams the
// whole weight set through cache — the regime an on-device deployment lives
// in), greedy-decodes the same prompt under fp32 and under int8, and prints:
//   * both token streams with a per-step agreement marker,
//   * decode throughput (tokens/s) and the int8 speedup,
//   * the devicesim memory ledger: what each precision keeps resident
//     (weights + scales + KV cache + selection buffer) and the compression
//     ratio.
//
//   ./example_quantized_decode [seed]
//
// Built without the int8 backend (-DODLP_INT8=OFF) the example reports that
// and exits cleanly.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "devicesim/memory_model.h"
#include "llm/decode_session.h"
#include "llm/minillm.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace odlp;

namespace {

llm::ModelConfig demo_config() {
  llm::ModelConfig mc;
  mc.vocab_size = 2048;
  mc.dim = 384;
  mc.heads = 6;
  mc.layers = 4;
  mc.ff_hidden = 768;
  mc.max_seq_len = 48;
  return mc;
}

int argmax_token(const tensor::Tensor& logits) {
  const float* row = logits.row(logits.rows() - 1);
  int best = 0;
  for (std::size_t v = 1; v < logits.cols(); ++v) {
    if (row[v] > row[best]) best = static_cast<int>(v);
  }
  return best;
}

// Greedy-decode `steps` tokens from `prompt`; returns the chosen tokens and
// the wall seconds spent stepping.
std::vector<int> greedy_decode(llm::MiniLlm& model,
                               const std::vector<int>& prompt,
                               std::size_t steps, double& seconds) {
  llm::DecodeSession session(model);
  util::Stopwatch sw;
  const tensor::Tensor* logits = &session.prime(prompt);
  std::vector<int> out;
  for (std::size_t i = 0; i < steps; ++i) {
    const int tok = argmax_token(*logits);
    out.push_back(tok);
    if (session.full()) break;
    logits = &session.step(tok);
  }
  seconds = sw.elapsed_seconds();
  return out;
}

std::string mb(std::size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f MB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
#ifndef ODLP_INT8
  (void)argc;
  (void)argv;
  std::printf("example_quantized_decode: built with -DODLP_INT8=OFF — the\n"
              "int8 backend is compiled out, nothing to demonstrate.\n");
  return 0;
#else
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  const llm::ModelConfig mc = demo_config();
  std::printf("building %zu-layer dim-%zu model (seed %llu)...\n", mc.layers,
              mc.dim, static_cast<unsigned long long>(seed));
  llm::MiniLlm model(mc, seed);

  const std::vector<int> prompt = {11, 42, 7, 99};
  const std::size_t steps = mc.max_seq_len - prompt.size() - 1;

  double fp32_s = 0.0, int8_s = 0.0;
  const std::vector<int> fp32_tokens =
      greedy_decode(model, prompt, steps, fp32_s);
  const devicesim::MemoryLedger led_fp32 =
      devicesim::model_memory_ledger(model, /*buffer_bins=*/32);

  model.set_inference_precision(nn::InferencePrecision::kInt8);
  const std::vector<int> int8_tokens =
      greedy_decode(model, prompt, steps, int8_s);
  const devicesim::MemoryLedger led_int8 =
      devicesim::model_memory_ledger(model, /*buffer_bins=*/32);

  std::size_t agree = 0;
  std::printf("\ngreedy decode, %zu steps (prompt: 11 42 7 99):\n", steps);
  std::printf("  %-6s %-8s %-8s\n", "step", "fp32", "int8");
  for (std::size_t i = 0; i < fp32_tokens.size(); ++i) {
    const bool same = int8_tokens[i] == fp32_tokens[i];
    if (same) ++agree;
    std::printf("  %-6zu %-8d %-8d%s\n", i, fp32_tokens[i], int8_tokens[i],
                same ? "" : "  <- differs");
  }
  std::printf("agreement: %zu/%zu steps\n\n", agree, fp32_tokens.size());

  const double fp32_tps = static_cast<double>(fp32_tokens.size()) / fp32_s;
  const double int8_tps = static_cast<double>(int8_tokens.size()) / int8_s;
  std::printf("throughput: fp32 %.1f tok/s, int8 %.1f tok/s (%.2fx)\n\n",
              fp32_tps, int8_tps, int8_tps / fp32_tps);

  util::Table table({"resident set", "fp32", "int8"});
  table.row()
      .cell("matmul weights")
      .cell(mb(led_fp32.matmul_weight_bytes))
      .cell(mb(led_int8.matmul_weight_bytes));
  table.row()
      .cell("embeddings")
      .cell(mb(led_fp32.embedding_bytes))
      .cell(mb(led_int8.embedding_bytes));
  table.row()
      .cell("  of which scales")
      .cell(mb(led_fp32.scale_bytes))
      .cell(mb(led_int8.scale_bytes));
  table.row()
      .cell("norms (fp32)")
      .cell(mb(led_fp32.norm_bytes))
      .cell(mb(led_int8.norm_bytes));
  table.row()
      .cell("model total")
      .cell(mb(led_fp32.model_bytes()))
      .cell(mb(led_int8.model_bytes()));
  table.row()
      .cell("KV cache")
      .cell(mb(led_fp32.kv_cache_bytes))
      .cell(mb(led_int8.kv_cache_bytes));
  table.row()
      .cell("selection buffer")
      .cell(mb(led_fp32.buffer_bytes))
      .cell(mb(led_int8.buffer_bytes));
  table.row()
      .cell("device total")
      .cell(mb(led_fp32.total_bytes()))
      .cell(mb(led_int8.total_bytes()));
  std::printf("%s", table.to_string().c_str());
  std::printf("model compression: %.3fx of fp32\n",
              led_int8.model_ratio_vs_fp32());
  return 0;
#endif  // ODLP_INT8
}
