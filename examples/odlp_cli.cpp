// odlp_cli: run any single personalization experiment from the command line —
// the knob-turning driver for exploring datasets, methods, buffer sizes, and
// the design-ablation options without writing code.
//
//   ./example_odlp_cli --dataset MedDialog --method Ours --bins 32 \
//       --stream 240 --epochs 16 --seed 7 --curve
//
// Flags (all optional):
//   --dataset NAME     ALPACA|DOLLY|OPENORCA|MedDialog|Prosocial|Empathetic
//   --method NAME      Ours|Random|FIFO|K-Center|EOE|DSS|IDD|WeightedSum
//   --bins N           buffer capacity in bins
//   --stream N         streamed dialogue sets
//   --interval N       fine-tune every N sets
//   --epochs N         fine-tune epochs per round
//   --lr X             LoRA learning rate
//   --synth N          synthesized sets per buffered original (0 disables)
//   --embedding SRC    llm|bow
//   --rmsnorm          use the Llama-style RMSNorm model variant
//   --budget N         annotation budget (0 = unlimited)
//   --temperature X    evaluation sampling temperature (paper: 0.5)
//   --repeats N        sampler seeds averaged per evaluation
//   --seed N           experiment seed
//   --curve            record + print the learning curve
//   --metrics-out PATH dump the obs metrics registry as JSON after the run
//   --trace-out PATH   record trace spans and flush Chrome-trace JSON
//                      (load in Perfetto / chrome://tracing). Equivalent to
//                      ODLP_TRACE=PATH in the environment.
#include <cstdio>

#include "exp/experiment.h"
#include "util/args.h"
#include "util/table.h"

using namespace odlp;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::vector<std::string> allowed = {
      "dataset", "method", "bins", "stream", "interval", "epochs",
      "lr",      "synth",  "embedding", "rmsnorm", "budget",
      "temperature", "repeats", "seed", "curve", "metrics-out",
      "trace-out", "help"};
  const auto unknown = args.unknown(allowed);
  if (!unknown.empty() || args.has("help")) {
    for (const auto& u : unknown) {
      std::fprintf(stderr, "unknown flag: --%s\n", u.c_str());
    }
    std::fprintf(stderr, "see the header of examples/odlp_cli.cpp for flags\n");
    return args.has("help") ? 0 : 2;
  }

  exp::ExperimentConfig config;
  config.dataset = args.get("dataset", "MedDialog");
  config.method = args.get("method", "Ours");
  config.buffer_bins = static_cast<std::size_t>(args.get_int("bins", 32));
  config.stream_size = static_cast<std::size_t>(args.get_int("stream", 240));
  config.finetune_interval =
      static_cast<std::size_t>(args.get_int("interval", 80));
  config.epochs = static_cast<std::size_t>(args.get_int("epochs", 16));
  config.learning_rate = static_cast<float>(args.get_double("lr", 1e-2));
  config.synth_per_set = static_cast<std::size_t>(args.get_int("synth", 3));
  config.use_synthesis = config.synth_per_set > 0;
  config.embedding_source = args.get("embedding", "llm");
  config.use_rmsnorm = args.has("rmsnorm");
  config.annotation_budget =
      static_cast<std::size_t>(args.get_int("budget", 0));
  config.eval_temperature =
      static_cast<float>(args.get_double("temperature", 0.5));
  config.eval_repeats = static_cast<std::size_t>(args.get_int("repeats", 1));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.record_curve = args.has("curve");
  config.metrics_out = args.get("metrics-out", "");
  config.trace_out = args.get("trace-out", "");

  std::printf("odlp run: %s / %s, %zu bins, %zu sets, seed %llu\n\n",
              config.dataset.c_str(), config.method.c_str(), config.buffer_bins,
              config.stream_size,
              static_cast<unsigned long long>(config.seed));

  const exp::ExperimentResult r = exp::run_experiment(config);

  if (config.record_curve) {
    std::printf("%s\n", r.curve.to_series().to_string().c_str());
  }
  util::Table out({"metric", "value"});
  out.row().cell("final ROUGE-1").cell(r.final_rouge, 4);
  out.row().cell("annotations").cell(static_cast<long long>(r.annotation_requests));
  out.row().cell("fine-tune rounds").cell(static_cast<long long>(r.engine_stats.finetune_rounds));
  out.row().cell("synthetic sets used").cell(static_cast<long long>(r.engine_stats.synthesized_used));
  out.row().cell("buffer noise").cell(static_cast<long long>(r.buffer.noise));
  out.row().cell("buffer subtopics").cell(static_cast<long long>(r.buffer.distinct_subtopics));
  out.row().cell("wall seconds").cell(r.wall_seconds, 1);
  std::printf("%s", out.to_string().c_str());
  return 0;
}
