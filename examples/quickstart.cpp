// Quickstart: personalize an on-device LLM from a simulated MedDialog
// interaction stream, then compare the model's responses before and after.
//
//   ./example_quickstart [seed]
//
// Walks through the whole public API: device tokenizer, pretrained base
// model, quality-score data selection, user annotation, data synthesis,
// LoRA fine-tuning, and ROUGE-1 evaluation.
#include <cstdio>
#include <cstdlib>

#include "exp/experiment.h"
#include "util/log.h"
#include "util/table.h"

using namespace odlp;

int main(int argc, char** argv) {
  exp::ExperimentConfig config;
  config.dataset = "MedDialog";
  config.method = "Ours";
  config.stream_size = 160;
  config.finetune_interval = 80;
  config.test_size = 300;
  config.eval_subset = 24;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  std::printf("On-device LLM personalization quickstart\n");
  std::printf("dataset=%s method=%s buffer=%zu bins stream=%zu sets\n\n",
              config.dataset.c_str(), config.method.c_str(), config.buffer_bins,
              config.stream_size);

  const exp::ExperimentResult result = exp::run_experiment(config);

  std::printf("learning curve (ROUGE-1 vs streamed dialogue sets):\n%s\n",
              result.curve.to_series().to_string().c_str());

  util::Table stats({"statistic", "value"});
  stats.row().cell("streamed sets").cell(static_cast<long long>(result.engine_stats.seen));
  stats.row().cell("admitted (free bins)").cell(static_cast<long long>(result.engine_stats.admitted_free));
  stats.row().cell("admitted (replacements)").cell(static_cast<long long>(result.engine_stats.admitted_replacing));
  stats.row().cell("rejected").cell(static_cast<long long>(result.engine_stats.rejected));
  stats.row().cell("user annotation requests").cell(static_cast<long long>(result.annotation_requests));
  stats.row().cell("fine-tune rounds").cell(static_cast<long long>(result.engine_stats.finetune_rounds));
  stats.row().cell("synthetic sets used").cell(static_cast<long long>(result.engine_stats.synthesized_used));
  stats.row().cell("final ROUGE-1").cell(result.final_rouge, 4);
  stats.row().cell("total wall seconds").cell(result.wall_seconds, 1);
  std::printf("%s\n", stats.to_string().c_str());

  std::printf("note: annotations were requested for %zu of %zu streamed sets "
              "(%.0f%%) — the sparse-annotation property.\n",
              result.annotation_requests, result.engine_stats.seen,
              100.0 * static_cast<double>(result.annotation_requests) /
                  static_cast<double>(result.engine_stats.seen));
  return 0;
}
