// Companion-robot scenario (Empathetic-Dialog profile): compares all four
// selection policies side by side on the same emotional-support stream —
// the head-to-head comparison a framework integrator would run before
// choosing a policy for their device.
//
//   ./example_empathetic_companion [seed]
#include <cstdio>
#include <cstdlib>

#include "exp/experiment.h"
#include "util/table.h"

using namespace odlp;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  std::printf("Empathetic companion: policy comparison on one user's stream\n\n");

  util::Table table({"policy", "final ROUGE-1", "gain", "annotations",
                     "buffer noise", "subtopics"});
  for (const auto& method : exp::main_methods()) {
    exp::ExperimentConfig config;
    config.dataset = "Empathetic";
    config.method = method;
    config.seed = seed;
    config.stream_size = 160;
    config.finetune_interval = 80;
    config.test_size = 300;
    config.eval_subset = 24;
    config.epochs = 16;
    const exp::ExperimentResult r = exp::run_experiment(config);
    table.row()
        .cell(method)
        .cell(r.final_rouge, 4)
        .cell(r.curve.total_gain(), 4)
        .cell(static_cast<long long>(r.annotation_requests))
        .cell(static_cast<long long>(r.buffer.noise))
        .cell(static_cast<long long>(r.buffer.distinct_subtopics));
    std::fprintf(stderr, "  %s done (%.0fs)\n", method.c_str(), r.wall_seconds);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading the table: the quality-score policy should hold the least\n"
      "noise and the most subtopics in the buffer, and turn that into the\n"
      "highest ROUGE-1 — the paper's Table 2 story on a single user.\n");
  return 0;
}
