// Medical-assistant scenario: a health-companion robot (the paper's
// motivating deployment) personalizes its on-device LLM from a MedDialog-like
// consultation stream.
//
//   ./example_medical_assistant [seed]
//
// Demonstrates the response quality before vs. after personalization on
// concrete consultations, and shows what the quality-score selection kept in
// the buffer (domains, scores, annotations).
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "data/generator.h"
#include "eval/rouge.h"
#include "exp/experiment.h"
#include "llm/sampler.h"
#include "util/table.h"

using namespace odlp;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  const auto& dict = lexicon::builtin_dictionary();
  text::Tokenizer tokenizer = exp::make_device_tokenizer();

  exp::ExperimentConfig config;
  config.dataset = "MedDialog";
  config.seed = seed;
  config.stream_size = 240;
  config.finetune_interval = 80;
  config.epochs = 20;

  data::UserOracle oracle(seed * 2654435761ull + 1, dict);
  data::Generator generator(data::meddialog_profile(), oracle,
                            util::Rng(seed));
  data::GeneratedDataset dataset = generator.generate(config.stream_size, 60);

  std::printf("Medical assistant personalization (MedDialog stream, %zu sets)\n\n",
              dataset.stream.size());

  auto model = exp::make_base_model(config, tokenizer);
  llm::LlmEmbeddingExtractor extractor(*model, tokenizer);

  core::EngineConfig ec;
  ec.buffer_bins = 32;
  ec.finetune_interval = config.finetune_interval;
  ec.train.epochs = config.epochs;
  ec.train.learning_rate = config.learning_rate;
  ec.sampler.temperature = 0.5f;
  ec.sampler.max_new_tokens = 16;
  util::Rng rng(seed ^ 0xabcd);
  core::PersonalizationEngine engine(
      *model, tokenizer, extractor, oracle, dict,
      std::make_unique<core::QualityReplacementPolicy>(),
      std::make_unique<core::ParaphraseSynthesizer>(dict, rng.split()), ec,
      rng.split());

  // Capture "before" responses for three held-out consultations.
  std::vector<const data::DialogueSet*> demo;
  for (const auto& set : dataset.test) {
    if (!set.is_noise && demo.size() < 3) demo.push_back(&set);
  }
  llm::SamplerConfig demo_sc;
  demo_sc.temperature = 0.0f;  // deterministic demo output
  demo_sc.max_new_tokens = 16;
  std::vector<std::string> before;
  {
    llm::Sampler sampler(*model, demo_sc, util::Rng(1));
    for (const auto* set : demo) before.push_back(sampler.respond(tokenizer, set->question));
  }

  engine.run_stream(dataset.stream);

  std::printf("--- consultations: before vs after personalization ---\n");
  llm::Sampler sampler(*model, demo_sc, util::Rng(1));
  for (std::size_t i = 0; i < demo.size(); ++i) {
    const std::string after = sampler.respond(tokenizer, demo[i]->question);
    std::printf("patient : %s\n", demo[i]->question.c_str());
    std::printf("before  : %s  (ROUGE-1 %.3f)\n", before[i].c_str(),
                eval::rouge1_f1(before[i], demo[i]->reference));
    std::printf("after   : %s  (ROUGE-1 %.3f)\n", after.c_str(),
                eval::rouge1_f1(after, demo[i]->reference));
    std::printf("expected: %s\n\n", demo[i]->reference.c_str());
  }

  std::printf("--- buffer contents kept by quality-score selection ---\n");
  util::Table buf({"#", "domain", "EOE", "DSS", "IDD", "question (truncated)"});
  for (std::size_t i = 0; i < engine.buffer().size() && i < 10; ++i) {
    const auto& e = engine.buffer().entry(i);
    std::string q = e.set.question.substr(0, 40);
    buf.row()
        .cell(static_cast<long long>(i))
        .cell(e.dominant_domain ? dict.domain(*e.dominant_domain).name() : "-")
        .cell(e.scores.eoe, 3)
        .cell(e.scores.dss, 3)
        .cell(e.scores.idd, 3)
        .cell(q);
  }
  std::printf("%s", buf.to_string().c_str());
  std::printf("(%zu of %zu bins shown; %zu annotation requests over %zu sets)\n",
              std::min<std::size_t>(10, engine.buffer().size()),
              engine.buffer().capacity(), oracle.annotation_requests(),
              engine.stats().seen);
  return 0;
}
