// Reproducible perf-benchmark harness for the compute kernels.
//
// Measures, on the current host:
//   * register-tiled matmul vs. the naive reference kernel (several shapes,
//     including the 256x256x256 contract size), with GFLOP/s, at thread
//     counts {1, 2, 4} and the configured lane count,
//   * matmul_backward (both tiled products) vs. its serial reference, with
//     GFLOP/s,
//   * the allocation probe: tensor heap allocations during a steady-state
//     training step and decode step (the workspace design targets zero),
//   * cached-norm IDD vs. the direct Eq. 4-5 formula,
//   * end-to-end engine throughput: score() rate, fine-tune seconds/epoch,
//     and evaluate_per_set() rate at 1 lane vs. the configured lane count,
//     with a per-stage time breakdown read back from the obs metrics
//     registry (stage sum is checked against the measured wall clock),
//   * the cost of a disabled ODLP_TRACE_SCOPE relative to a decode step
//     (the ≤1%-overhead budget of DESIGN.md §10).
//
// Writes a machine-readable summary to results/BENCH_perf.json (override
// with --out). `kernel_variant` and `native_arch` name the GEMM build that
// was measured (see tensor::kernel_build_info()); `hardware_threads` is
// recorded so speedup numbers can be interpreted: on a single-core host the
// thread-scaling rows measure scheduling overhead, not parallel speedup,
// while the algorithmic rows (tiled-vs-naive matmul, cached-vs-direct IDD)
// are core-count independent.
//
// Flags: --quick (fewer reps / smaller end-to-end run), --seed N,
// --out PATH, --metrics-out PATH (dump the full metrics registry as JSON).
// Deterministic for a fixed seed and thread count.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "core/quality_metrics.h"
#include "data/generator.h"
#include "devicesim/memory_model.h"
#include "llm/batch_decode.h"
#include "llm/decode_session.h"
#include "llm/sampler.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

#ifdef ODLP_INT8
#include "tensor/qops.h"
#include "tensor/qtensor.h"
#endif

using namespace odlp;

namespace {

tensor::Tensor random_tensor(std::size_t rows, std::size_t cols,
                             util::Rng& rng) {
  tensor::Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

// Median-of-reps wall time for `fn`, in seconds. One warmup call.
template <typename Fn>
double timed_seconds(int reps, Fn&& fn) {
  fn();
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch sw;
    fn();
    times.push_back(sw.elapsed_seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

using bench::JsonWriter;
using bench::json_object;

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  std::string out_path = "results/BENCH_perf.json";
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    }
  }
  const int reps = opt.quick ? 3 : 7;
  // Hard-gate failures (batched-vs-serial mismatch, batching slowdown):
  // the bench still writes its JSON but exits non-zero.
  int failures = 0;
  util::Rng rng(opt.seed);
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::size_t configured = pool.lanes();

  JsonWriter json;
  json.text("bench", "bench_perf");
  json.integer("seed", static_cast<long long>(opt.seed));
  json.integer("quick", opt.quick ? 1 : 0);
  json.integer("hardware_threads",
               static_cast<long long>(std::thread::hardware_concurrency()));
  json.integer("configured_lanes", static_cast<long long>(configured));
  const tensor::KernelBuildInfo kinfo = tensor::kernel_build_info();
  json.text("kernel_variant", kinfo.variant);
  json.integer("native_arch", kinfo.native_arch ? 1 : 0);
  json.text("int8_kernel_variant", kinfo.int8_variant);
  json.integer("int8_block", static_cast<long long>(kinfo.int8_block));
  json.text("simd_level", kinfo.simd_level);

  // ---- Matmul: blocked kernel vs. naive reference, thread scaling. ----
  std::printf("== matmul ==\n");
  const std::size_t shapes[][3] = {
      {64, 64, 64}, {256, 256, 256}, {96, 64, 512}};
  std::string matmul_rows = "[";
  for (std::size_t si = 0; si < sizeof(shapes) / sizeof(shapes[0]); ++si) {
    const auto& s = shapes[si];
    const tensor::Tensor a = random_tensor(s[0], s[1], rng);
    const tensor::Tensor b = random_tensor(s[1], s[2], rng);
    const double flops = 2.0 * s[0] * s[1] * s[2];
    const double t_naive =
        timed_seconds(reps, [&] { tensor::matmul_reference(a, b); });
    std::vector<std::pair<std::string, double>> kv = {
        {"m", double(s[0])},     {"k", double(s[1])},
        {"n", double(s[2])},     {"naive_ms", t_naive * 1e3},
        {"naive_gflops", flops / t_naive * 1e-9}};
    std::vector<std::size_t> lane_counts = {1, 2, 4, configured};
    std::sort(lane_counts.begin(), lane_counts.end());
    lane_counts.erase(std::unique(lane_counts.begin(), lane_counts.end()),
                      lane_counts.end());
    for (std::size_t lanes : lane_counts) {
      pool.resize(lanes);
      const double t = timed_seconds(reps, [&] { tensor::matmul(a, b); });
      const std::string tag = "tiled_" + std::to_string(lanes) + "t";
      kv.emplace_back(tag + "_ms", t * 1e3);
      kv.emplace_back(tag + "_gflops", flops / t * 1e-9);
      kv.emplace_back(tag + "_speedup_vs_naive", t_naive / t);
    }
    pool.resize(configured);
    std::printf("  %zux%zux%zu: naive %.3f ms, tiled %s\n", s[0], s[1],
                s[2], t_naive * 1e3, json_object(kv).c_str());
    if (si) matmul_rows += ", ";
    matmul_rows += json_object(kv);
  }
  matmul_rows += "]";
  json.raw("matmul", matmul_rows);

  // ---- matmul_backward: parallel vs. serial reference. ----
  {
    const std::size_t m = 128, k = 128, n = 128;
    const tensor::Tensor a = random_tensor(m, k, rng);
    const tensor::Tensor b = random_tensor(k, n, rng);
    const tensor::Tensor dc = random_tensor(m, n, rng);
    tensor::Tensor da(m, k), db(k, n);
    const double t_ref = timed_seconds(reps, [&] {
      da.zero();
      db.zero();
      tensor::matmul_backward_reference(a, b, dc, da, db);
    });
    const double t_par = timed_seconds(reps, [&] {
      da.zero();
      db.zero();
      tensor::matmul_backward(a, b, dc, da, db);
    });
    // Two products (dA += dC.B^T and dB += A^T.dC), 2*m*k*n flops each.
    const double bwd_flops = 2.0 * 2.0 * m * k * n;
    json.raw("matmul_backward_128",
             json_object({{"reference_ms", t_ref * 1e3},
                          {"reference_gflops", bwd_flops / t_ref * 1e-9},
                          {"tiled_ms", t_par * 1e3},
                          {"tiled_gflops", bwd_flops / t_par * 1e-9},
                          {"speedup", t_ref / t_par}}));
    std::printf("== matmul_backward 128^3: ref %.3f ms, tiled %.3f ms "
                "(%.2fx, %.2f GF/s)\n",
                t_ref * 1e3, t_par * 1e3, t_ref / t_par,
                bwd_flops / t_par * 1e-9);
  }

  // ---- Allocation probe: steady-state training + decode steps. ----
  {
    llm::ModelConfig mc;
    mc.vocab_size = 32;
    mc.dim = 32;
    mc.heads = 2;
    mc.layers = 2;
    mc.ff_hidden = 64;
    mc.max_seq_len = 32;
    llm::MiniLlm model(mc, 3);
    const std::vector<int> ids = {2, 5, 6, 7, 9, 4, 8, 11};
    std::vector<int> targets(ids.begin() + 1, ids.end());
    targets.push_back(3);
    nn::CrossEntropyResult ce;
    auto train_step = [&] {
      tensor::Tensor& logits = model.forward_shared(ids, /*training=*/true);
      nn::cross_entropy_into(logits, targets, ce);
      model.backward(ce.dlogits);
    };
    train_step();
    train_step();  // warm: pools at the step's high-water mark
    const std::uint64_t before_train = tensor::allocation_count();
    train_step();
    const long long train_allocs =
        static_cast<long long>(tensor::allocation_count() - before_train);

    llm::DecodeSession session(model);
    session.step(2);
    session.step(5);
    const std::uint64_t before_decode = tensor::allocation_count();
    session.step(6);
    const long long decode_allocs =
        static_cast<long long>(tensor::allocation_count() - before_decode);
    json.raw("allocations",
             json_object({{"steady_train_step", double(train_allocs)},
                          {"steady_decode_step", double(decode_allocs)}}));
    std::printf("== allocations: steady train step %lld, decode step %lld\n",
                train_allocs, decode_allocs);
  }

  // ---- IDD: cached-norm fast path vs. direct Eq. 4-5. ----
  {
    const std::size_t entries = opt.quick ? 64 : 256;
    const std::size_t dim = 64;
    core::DataBuffer buffer(entries);
    for (std::size_t i = 0; i < entries; ++i) {
      core::BufferEntry e;
      e.embedding = random_tensor(1, dim, rng);
      e.dominant_domain = 0;
      e.inserted_at = i;
      buffer.add(std::move(e));
    }
    const tensor::Tensor cand = random_tensor(1, dim, rng);
    const double cand_norm = std::sqrt(tensor::sum_squares(cand));
    const int idd_calls = opt.quick ? 200 : 1000;
    double sink = 0.0;
    const double t_direct = timed_seconds(reps, [&] {
      const auto embs = buffer.embeddings_in_domain(0);
      for (int c = 0; c < idd_calls; ++c) {
        sink += core::in_domain_dissimilarity(cand, embs);
      }
    });
    const double t_cached = timed_seconds(reps, [&] {
      const auto embs = buffer.normed_embeddings_in_domain(0);
      for (int c = 0; c < idd_calls; ++c) {
        sink += core::in_domain_dissimilarity_cached(cand, cand_norm, embs);
      }
    });
    json.raw("idd",
             json_object({{"buffer_entries", double(entries)},
                          {"dim", double(dim)},
                          {"calls", double(idd_calls)},
                          {"direct_us_per_call", t_direct / idd_calls * 1e6},
                          {"cached_us_per_call", t_cached / idd_calls * 1e6},
                          {"speedup", t_direct / t_cached}}));
    std::printf("== idd (%zu entries): direct %.2f us, cached %.2f us "
                "(%.2fx)  [sink %.1f]\n",
                entries, t_direct / idd_calls * 1e6,
                t_cached / idd_calls * 1e6, t_direct / t_cached, sink);
  }

#ifdef ODLP_INT8
  // ---- int8 GEMM: quantized kernel vs. the fp32 tiled kernel. ----
  //
  // The decode-shaped rows (m=1, m=4) are the ones that matter on-device:
  // KV-cached generation is a stream of matvecs against every weight matrix,
  // so once the model spills L2 the kernel is memory-bound and int8's 4x
  // traffic reduction is the whole win. "gflops" counts the same 2*m*k*n
  // effective flops for both kernels so the columns are comparable.
  {
    std::printf("== qmatmul ==\n");
    const std::size_t qshapes[][3] = {
        {1, 512, 512}, {4, 512, 512}, {64, 512, 512}, {256, 256, 256}};
    std::string qrows = "[";
    for (std::size_t si = 0; si < sizeof(qshapes) / sizeof(qshapes[0]); ++si) {
      const auto& s = qshapes[si];
      const tensor::Tensor a = random_tensor(s[0], s[1], rng);
      const tensor::Tensor b = random_tensor(s[1], s[2], rng);
      const tensor::QuantizedTensor qb =
          tensor::QuantizedTensor::quantize(b, tensor::QuantAxis::kAlongRows);
      tensor::Tensor c(s[0], s[2]);
      const double flops = 2.0 * s[0] * s[1] * s[2];
      const double t_fp32 =
          timed_seconds(reps, [&] { tensor::matmul_into(a, b, c); });
      const double t_q =
          timed_seconds(reps, [&] { tensor::qmatmul_into(a, qb, c); });
      const double t_qref =
          timed_seconds(reps, [&] { tensor::qmatmul_reference(a, qb); });
      const auto row = json_object({{"m", double(s[0])},
                                    {"k", double(s[1])},
                                    {"n", double(s[2])},
                                    {"fp32_ms", t_fp32 * 1e3},
                                    {"fp32_gflops", flops / t_fp32 * 1e-9},
                                    {"int8_ms", t_q * 1e3},
                                    {"int8_gflops", flops / t_q * 1e-9},
                                    {"int8_reference_ms", t_qref * 1e3},
                                    {"speedup_vs_fp32", t_fp32 / t_q}});
      std::printf("  %zux%zux%zu: fp32 %.3f ms, int8 %.3f ms (%.2fx)\n",
                  s[0], s[1], s[2], t_fp32 * 1e3, t_q * 1e3, t_fp32 / t_q);
      if (si) qrows += ", ";
      qrows += row;
    }
    qrows += "]";
    json.raw("qmatmul", qrows);
  }

  // ---- int8 end-to-end: decode throughput, memory ledger, quality. ----
  //
  // Model sized so the fp32 weights (~70 MB) dwarf L2: the regime where an
  // on-device decode is weight-streaming-bound and quantization pays.
  {
    llm::ModelConfig mc;
    mc.vocab_size = 4096;
    mc.dim = 512;
    mc.heads = 8;
    mc.layers = 6;
    mc.ff_hidden = 1024;
    mc.max_seq_len = 64;
    llm::MiniLlm model(mc, 21);
    const std::size_t decode_tokens = mc.max_seq_len;
    const int decode_reps = opt.quick ? 1 : 3;
    const auto fixed_token = [&](std::size_t i) {
      return static_cast<int>((i * 2654435761ull) % mc.vocab_size);
    };
    const auto run_session = [&] {
      llm::DecodeSession session(model);
      for (std::size_t i = 0; i < decode_tokens; ++i) {
        session.step(fixed_token(i));
      }
    };

    // Fixed seeded token stream for the quality row: independent of --seed
    // so the perplexity-delta figure is comparable across bench runs.
    const std::size_t ppl_seqs = opt.quick ? 2 : 8;
    std::vector<std::vector<int>> streams(ppl_seqs);
    util::Rng ppl_rng(0x9D5EEDull);
    for (auto& ids : streams) {
      ids.resize(mc.max_seq_len);
      for (auto& id : ids) {
        id = static_cast<int>(ppl_rng.uniform_index(mc.vocab_size));
      }
    }
    const auto mean_nll = [&] {
      double loss_sum = 0.0;
      std::size_t count = 0;
      for (const auto& ids : streams) {
        std::vector<int> targets(ids.begin() + 1, ids.end());
        targets.push_back(-1);  // last position unsupervised
        const tensor::Tensor logits = model.forward(ids, /*training=*/false);
        const auto ce = nn::cross_entropy(logits, targets);
        loss_sum += ce.loss * static_cast<double>(ce.count);
        count += ce.count;
      }
      return loss_sum / static_cast<double>(count);
    };

    const devicesim::MemoryLedger led_fp32 =
        devicesim::model_memory_ledger(model);
    const double t_fp32 = timed_seconds(decode_reps, run_session);
    const double ppl_fp32 = nn::perplexity(mean_nll());

    model.set_inference_precision(nn::InferencePrecision::kInt8);
    const devicesim::MemoryLedger led_int8 =
        devicesim::model_memory_ledger(model);
    const double t_int8 = timed_seconds(decode_reps, run_session);
    const double ppl_int8 = nn::perplexity(mean_nll());
    model.set_inference_precision(nn::InferencePrecision::kFp32);

    const double tok_fp32 = double(decode_tokens) / t_fp32;
    const double tok_int8 = double(decode_tokens) / t_int8;
    const double ppl_delta_pct = (ppl_int8 - ppl_fp32) / ppl_fp32 * 100.0;
    json.raw("int8_decode",
             json_object({{"model_params", double(model.num_parameters())},
                          {"decode_tokens", double(decode_tokens)},
                          {"fp32_tokens_per_sec", tok_fp32},
                          {"int8_tokens_per_sec", tok_int8},
                          {"speedup", tok_int8 / tok_fp32}}));
    json.raw("memory_ledger",
             json_object(
                 {{"fp32_model_bytes", double(led_fp32.model_bytes())},
                  {"int8_model_bytes", double(led_int8.model_bytes())},
                  {"int8_vs_fp32_ratio", led_int8.model_ratio_vs_fp32()},
                  {"int8_scale_bytes", double(led_int8.scale_bytes)},
                  {"norm_bytes", double(led_int8.norm_bytes)},
                  {"kv_cache_bytes", double(led_int8.kv_cache_bytes)}}));
    json.raw("int8_quality",
             json_object({{"ppl_fp32", ppl_fp32},
                          {"ppl_int8", ppl_int8},
                          {"ppl_delta_pct", ppl_delta_pct}}));
    std::printf("== int8 decode (%.1fM params): fp32 %.2f tok/s, int8 %.2f "
                "tok/s (%.2fx)\n",
                double(model.num_parameters()) * 1e-6, tok_fp32, tok_int8,
                tok_int8 / tok_fp32);
    std::printf("== memory: fp32 %.1f MB -> int8 %.1f MB (%.3fx); "
                "ppl %.2f -> %.2f (%+.3f%%)\n",
                double(led_fp32.model_bytes()) / (1024.0 * 1024.0),
                double(led_int8.model_bytes()) / (1024.0 * 1024.0),
                led_int8.model_ratio_vs_fp32(), ppl_fp32, ppl_int8,
                ppl_delta_pct);

    // ---- Continuous-batched decode: tok/s at batch ∈ {1,2,4,8}, fp32 and
    // int8, on the same weight-streaming-bound model. Every width's output
    // is checked token-for-token against a serial Sampler run with the same
    // per-session seeds; a mismatch or a batch=4 int8 slowdown vs batch=1
    // fails the bench (DESIGN.md §12). ----
    {
      llm::SamplerConfig sc;
      sc.temperature = 0.5f;
      sc.max_new_tokens = 48;
      const std::size_t prompt_len = 8;
      const auto prompt_for = [&](std::size_t b) {
        std::vector<int> p(prompt_len);
        for (std::size_t i = 0; i < prompt_len; ++i) {
          p[i] = fixed_token(b * prompt_len + i);
        }
        return p;
      };
      // One full continuous-batched generation of `width` sessions; returns
      // the total tokens pushed through the model (prompt + generated).
      const auto run_batch = [&](std::size_t width,
                                 std::vector<std::vector<int>>* outs) {
        llm::BatchedDecodeScheduler sched(model, width);
        std::vector<std::size_t> tickets(width);
        for (std::size_t b = 0; b < width; ++b) {
          tickets[b] = sched.submit(prompt_for(b), sc, util::Rng(100 + b));
        }
        sched.run();
        std::size_t tokens = 0;
        for (std::size_t b = 0; b < width; ++b) {
          const std::vector<int>& ids = sched.result(tickets[b]);
          tokens += prompt_len + ids.size();
          if (outs) (*outs)[b] = ids;
        }
        return tokens;
      };

      const std::size_t widths[] = {1, 2, 4, 8};
      std::string rows = "[";
      bool first_row = true;
      double tok_b1_int8 = 0.0;
      double tok_b4_int8 = 0.0;
      std::printf("== batched decode (prompt %zu, up to %zu new tokens)\n",
                  prompt_len, sc.max_new_tokens);
      for (int pass = 0; pass < 2; ++pass) {
        const bool int8_pass = pass == 1;
        model.set_inference_precision(int8_pass
                                          ? nn::InferencePrecision::kInt8
                                          : nn::InferencePrecision::kFp32);
        double tok_b1 = 0.0;
        for (std::size_t width : widths) {
          std::vector<std::vector<int>> outs(width);
          const std::size_t tokens = run_batch(width, &outs);
          bool exact = true;
          for (std::size_t b = 0; b < width; ++b) {
            llm::Sampler sampler(model, sc, util::Rng(100 + b));
            if (sampler.generate_ids(prompt_for(b)) != outs[b]) exact = false;
          }
          if (!exact) {
            std::fprintf(stderr,
                         "bench_perf: batched decode (%s, batch=%zu) is NOT "
                         "bit-identical to serial decode\n",
                         int8_pass ? "int8" : "fp32", width);
            ++failures;
          }
          const double t =
              timed_seconds(decode_reps, [&] { run_batch(width, nullptr); });
          const double tok_s = double(tokens) / t;
          if (width == 1) tok_b1 = tok_s;
          if (int8_pass && width == 1) tok_b1_int8 = tok_s;
          if (int8_pass && width == 4) tok_b4_int8 = tok_s;
          char row[224];
          std::snprintf(row, sizeof row,
                        "{\"precision\":\"%s\",\"batch\":%zu,\"tokens\":%zu,"
                        "\"tokens_per_sec\":%.2f,\"speedup_vs_batch1\":%.3f,"
                        "\"serial_exact\":%s}",
                        int8_pass ? "int8" : "fp32", width, tokens, tok_s,
                        tok_b1 > 0.0 ? tok_s / tok_b1 : 1.0,
                        exact ? "true" : "false");
          if (!first_row) rows += ", ";
          first_row = false;
          rows += row;
          std::printf("  %s batch=%zu: %8.2f tok/s (%.2fx vs batch=1)%s\n",
                      int8_pass ? "int8" : "fp32", width, tok_s,
                      tok_b1 > 0.0 ? tok_s / tok_b1 : 1.0,
                      exact ? "" : "  [MISMATCH]");
        }
      }
      model.set_inference_precision(nn::InferencePrecision::kFp32);
      rows += "]";
      json.raw("batched_decode", rows);
      if (tok_b4_int8 < tok_b1_int8) {
        std::fprintf(stderr,
                     "bench_perf: int8 batch=4 decode (%.2f tok/s) is slower "
                     "than batch=1 (%.2f tok/s)\n",
                     tok_b4_int8, tok_b1_int8);
        ++failures;
      }
    }
  }
#endif  // ODLP_INT8

  // ---- End-to-end engine: score / fine-tune / evaluate. ----
  {
    text::Tokenizer tokenizer = exp::make_device_tokenizer();
    llm::ModelConfig mc;
    mc.vocab_size = tokenizer.vocab().size();
    mc.dim = 32;
    mc.heads = 2;
    mc.layers = 2;
    mc.ff_hidden = 64;
    mc.max_seq_len = 64;
    llm::MiniLlm model(mc, 7);
    llm::LlmEmbeddingExtractor extractor(model, tokenizer);
    data::UserOracle oracle(opt.seed, lexicon::builtin_dictionary());
    core::EngineConfig ec;
    ec.buffer_bins = 16;
    ec.finetune_interval = 0;
    ec.train.epochs = 1;
    core::PersonalizationEngine engine(
        model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
        exp::make_policy("Ours"),
        std::make_unique<core::ParaphraseSynthesizer>(
            lexicon::builtin_dictionary(), util::Rng(9)),
        ec, util::Rng(11));
    data::Generator gen(data::meddialog_profile(), oracle, rng.split());
    const std::size_t stream_n = opt.quick ? 24 : 60;
    const std::size_t test_n = opt.quick ? 6 : 12;
    const auto ds = gen.generate(stream_n, test_n);

    // Per-stage attribution comes from the metrics registry; zero it so the
    // engine histograms cover exactly this round (registrations and cached
    // references survive a reset).
    obs::registry().reset();

    util::Stopwatch sw;
    for (const auto& s : ds.stream) engine.process(s);
    const double stream_seconds = sw.elapsed_seconds();
    const double score_rate = double(stream_n) / stream_seconds;

    sw.reset();
    engine.finetune_now();
    const double ft_seconds = sw.elapsed_seconds();

    std::vector<const data::DialogueSet*> test;
    for (const auto& s : ds.test) test.push_back(&s);
    pool.resize(1);
    sw.reset();
    const auto serial_scores = engine.evaluate_per_set(test);
    const double t_eval_1 = sw.elapsed_seconds();
    pool.resize(configured);
    sw.reset();
    const auto par_scores = engine.evaluate_per_set(test);
    const double t_eval_n = sw.elapsed_seconds();
    double max_dev = 0.0;
    for (std::size_t i = 0; i < serial_scores.size(); ++i) {
      max_dev = std::max(max_dev,
                         std::fabs(serial_scores[i] - par_scores[i]));
    }
    const double sec_per_epoch =
        obs::registry().gauge("train.seconds_per_epoch.last").value();
    json.raw("engine",
             json_object(
                 {{"stream_sets", double(stream_n)},
                  {"score_sets_per_sec", score_rate},
                  {"finetune_seconds_per_epoch", sec_per_epoch},
                  {"finetune_total_seconds", ft_seconds},
                  {"eval_sets_per_sec_1lane", double(test_n) / t_eval_1},
                  {"eval_sets_per_sec_configured", double(test_n) / t_eval_n},
                  {"eval_speedup", t_eval_1 / t_eval_n},
                  {"eval_parallel_max_abs_dev", max_dev}}));
    std::printf("== engine: score %.1f sets/s, finetune %.2f s/epoch, "
                "eval %.2f -> %.2f sets/s (max dev %.3g)\n",
                score_rate, sec_per_epoch,
                double(test_n) / t_eval_1, double(test_n) / t_eval_n, max_dev);

    // ---- Per-stage time breakdown, read back from the registry. ----
    //
    // The round wall clock is the sum of the three measured segments above
    // (stream processing, fine-tune, both evaluations). The engine-level
    // stage histograms should re-account nearly all of it; `other` is
    // bookkeeping outside the instrumented stages (annotation, buffer
    // insert, quarantine checks).
    {
      const obs::MetricsSnapshot snap = obs::registry().snapshot();
      const double round_wall =
          stream_seconds + ft_seconds + t_eval_1 + t_eval_n;
      const struct {
        const char* label;
        const char* metric;
      } stages[] = {
          {"score", "engine.score.us"},
          {"offer", "engine.offer.us"},
          {"finetune", "engine.finetune.us"},
          {"evaluate", "engine.evaluate.us"},
      };
      std::printf("== stage breakdown (from metrics registry)\n");
      std::printf("  %-10s %8s %12s %12s %12s\n", "stage", "calls",
                  "total_ms", "mean_us", "p95_us");
      double stage_sum = 0.0;
      std::vector<std::pair<std::string, double>> kv;
      for (const auto& st : stages) {
        const obs::MetricSample* s = snap.find(st.metric);
        const double total_s = s ? s->hist.sum / 1e6 : 0.0;
        stage_sum += total_s;
        std::printf("  %-10s %8llu %12.2f %12.1f %12.1f\n", st.label,
                    static_cast<unsigned long long>(s ? s->hist.count : 0),
                    total_s * 1e3, s ? s->hist.mean : 0.0,
                    s ? s->hist.p95 : 0.0);
        kv.emplace_back(std::string(st.label) + "_seconds", total_s);
      }
      const double other = round_wall - stage_sum;
      const double coverage_pct =
          round_wall > 0.0 ? stage_sum / round_wall * 100.0 : 0.0;
      std::printf("  %-10s %8s %12.2f\n", "other", "-", other * 1e3);
      std::printf("  stage sum %.2f ms of %.2f ms wall (%.1f%% coverage)\n",
                  stage_sum * 1e3, round_wall * 1e3, coverage_pct);
      kv.emplace_back("round_wall_seconds", round_wall);
      kv.emplace_back("stage_sum_seconds", stage_sum);
      kv.emplace_back("other_seconds", other);
      kv.emplace_back("coverage_pct", coverage_pct);
      json.raw("stage_breakdown", json_object(kv));
      // Gate: the stage histograms must re-account >= 99% of the round wall
      // clock — less means a hot path lost its instrumentation.
      if (round_wall > 0.0 && coverage_pct < 99.0) {
        ++failures;
        std::fprintf(stderr,
                     "FAIL: stage coverage %.1f%% of round wall < 99%%\n",
                     coverage_pct);
      }
    }
  }

  // ---- Disabled-tracing overhead on the decode loop. ----
  //
  // DESIGN.md §10 budgets a disabled ODLP_TRACE_SCOPE at ≤1% of a decode
  // step. Measure the marginal cost of the scope object (one relaxed atomic
  // load + branch, twice) against a real decode step on a small model.
  if (!obs::tracing_enabled()) {
    constexpr int kSpanIters = 1 << 18;
    volatile unsigned sink = 0;
    const double t_base = timed_seconds(reps, [&] {
      for (int i = 0; i < kSpanIters; ++i) sink = sink + 1;
    });
    const double t_span = timed_seconds(reps, [&] {
      for (int i = 0; i < kSpanIters; ++i) {
        ODLP_TRACE_SCOPE("bench.noop");
        sink = sink + 1;
      }
    });
    const double span_ns =
        std::max(0.0, (t_span - t_base) / double(kSpanIters) * 1e9);

    llm::ModelConfig mc;
    mc.vocab_size = 64;
    mc.dim = 32;
    mc.heads = 2;
    mc.layers = 2;
    mc.ff_hidden = 64;
    mc.max_seq_len = 32;
    llm::MiniLlm model(mc, 5);
    llm::DecodeSession session(model);
    const int steps = int(mc.max_seq_len) / 2;
    const double t_decode = timed_seconds(reps, [&] {
      session.reset();
      for (int i = 0; i < steps; ++i) session.step(1 + (i % 32));
    });
    const double step_us = t_decode / double(steps) * 1e6;
    // One decode.step span per step.
    const double overhead_pct = span_ns / (step_us * 1e3) * 100.0;
    json.raw("trace_off_overhead",
             json_object({{"span_ns", span_ns},
                          {"decode_step_us", step_us},
                          {"overhead_pct", overhead_pct}}));
    std::printf("== tracing off: %.1f ns/span, decode step %.1f us "
                "(%.4f%% overhead)\n",
                span_ns, step_us, overhead_pct);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_perf: cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::string body = json.finish();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  if (!metrics_out.empty()) {
    obs::write_metrics_json(metrics_out);
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  if (failures != 0) {
    std::fprintf(stderr, "bench_perf: %d hard gate(s) failed\n", failures);
    return 1;
  }
  return 0;
}
