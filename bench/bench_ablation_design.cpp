// Design-choice ablations (DESIGN.md §6) — beyond the paper's own Table 4.
//
// On MedDialog (bursty) and ALPACA (diverse), compares:
//   A. Replacement rule:  Pareto dominance (paper) vs. weighted-sum scoring
//   B. Embedding source:  LLM last hidden layer (paper) vs. bag-of-words
//   C. Sanity check:      reject-below threshold (paper intent) vs.
//                         reject-above (paper's literal wording) vs.
//                         no synthesis at all
//   D. Annotation budget: unlimited (paper) vs. half vs. quarter of the
//                         expected selections
#include "bench_common.h"

using namespace odlp;

namespace {

struct Variant {
  const char* name;
  void (*apply)(exp::ExperimentConfig&);
};

const Variant kVariants[] = {
    {"paper (Pareto,LLM-emb,reject-below)", [](exp::ExperimentConfig&) {}},
    {"A: weighted-sum replacement",
     [](exp::ExperimentConfig& c) { c.method = "WeightedSum"; }},
    {"B: bag-of-words embeddings",
     [](exp::ExperimentConfig& c) { c.embedding_source = "bow"; }},
    {"C1: sanity reject-above 0.9",
     [](exp::ExperimentConfig& c) {
       c.sanity_mode = core::SanityCheckMode::kRejectAbove;
       c.sanity_threshold = 0.9;
     }},
    {"C2: no synthesis",
     [](exp::ExperimentConfig& c) { c.use_synthesis = false; }},
    {"D1: annotation budget 48",
     [](exp::ExperimentConfig& c) { c.annotation_budget = 48; }},
    {"D2: annotation budget 16",
     [](exp::ExperimentConfig& c) { c.annotation_budget = 16; }},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header("Design ablations",
                      "replacement rule / embedding source / sanity mode / "
                      "annotation budget",
                      opt);

  for (const char* dataset : {"MedDialog", "ALPACA"}) {
    util::Table table({"variant", "ROUGE-1", "annotations", "synth_used"});
    for (const auto& variant : kVariants) {
      exp::ExperimentConfig config = bench::standard_config(opt);
      config.dataset = dataset;
      config.method = "Ours";
      config.record_curve = false;
      config.eval_repeats = 1;  // 14-cell sweep: single-pass evaluation
      variant.apply(config);
      const exp::ExperimentResult r = exp::run_experiment(config);
      table.row()
          .cell(variant.name)
          .cell(r.final_rouge, 4)
          .cell(static_cast<long long>(r.engine_stats.annotations_made))
          .cell(static_cast<long long>(r.engine_stats.synthesized_used));
      std::fprintf(stderr, "  [ablation] %s / %s: %.4f (%.0fs)\n", dataset,
                   variant.name, r.final_rouge, r.wall_seconds);
    }
    std::printf("--- %s ---\n%s\n", dataset, table.to_string().c_str());
  }
  return 0;
}
