// OBSF container bench (DESIGN.md §14): binary columnar storage vs the
// text/JSON path, plus record-once/replay-many fleet traffic.
//
// Measures:
//   * crc32 (slice-by-8) and LZ4 block codec throughput on dialogue-shaped
//     payloads — the two primitives every OBSF byte passes through.
//   * OBSF vs JSONL on the same dialogue traffic: write MB/s, routing-scan
//     MB/s (projected read of the scheduler-visible columns), full
//     materialization MB/s, bytes at rest. The JSONL baseline is honest —
//     escape-correct writer and a real parser whose output is verified
//     equal to the input — not a strawman.
//   * Buffer checkpoint size: OBSF v3 vs the legacy v2 binary format.
//   * Record-once/replay-many: the SAME fleet workload run twice through
//     exp::run_fleet with a traffic_dir — first run generates and records,
//     second run replays — verifying the replayed run's per-user results
//     are bit-identical to the generated run's.
//
// Exits non-zero — failing run_benches.sh — if the replayed fleet diverges,
// if OBSF stream read throughput is below 5x the JSONL path, or if OBSF
// bytes-at-rest exceed 0.5x the JSONL bytes. Writes results/BENCH_io.json
// (merged into BENCH_perf.json by run_benches.sh); override with --out.
//
// Flags: --quick, --seed N, --out PATH.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "core/buffer.h"
#include "core/buffer_io.h"
#include "data/generator.h"
#include "data/profiles.h"
#include "data/user_oracle.h"
#include "exp/fleet.h"
#include "io/lz4.h"
#include "io/obsf.h"
#include "io/stream_capture.h"
#include "lexicon/lexicon.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace odlp;

namespace {

// --- JSONL baseline -------------------------------------------------------

void json_escape(const std::string& s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// One dialogue set per line, stream sets then test sets (split flag `t`).
std::size_t write_jsonl(const data::GeneratedDataset& ds,
                        const std::string& path) {
  std::string out;
  const auto emit = [&out](const data::DialogueSet& s, bool test) {
    out += "{\"q\":\"";
    json_escape(s.question, out);
    out += "\",\"a\":\"";
    json_escape(s.answer, out);
    out += "\",\"r\":\"";
    json_escape(s.reference, out);
    out += "\",\"d\":" + std::to_string(s.true_domain);
    out += ",\"s\":" + std::to_string(s.true_subtopic);
    out += ",\"n\":" + std::to_string(s.is_noise ? 1 : 0);
    out += ",\"p\":" + std::to_string(s.stream_position);
    out += ",\"t\":" + std::to_string(test ? 1 : 0);
    out += "}\n";
  };
  for (const auto& s : ds.stream) emit(s, false);
  for (const auto& s : ds.test) emit(s, true);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("bench_io: cannot open " + path);
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return out.size();
}

// Minimal escape-correct parser for the exact writer above: expects the
// fixed key order, unescapes strings, parses integers.
data::GeneratedDataset read_jsonl(const std::string& path) {
  const std::vector<unsigned char> bytes = util::read_file(path);
  const char* p = reinterpret_cast<const char*>(bytes.data());
  const char* end = p + bytes.size();
  data::GeneratedDataset ds;

  const auto expect = [&p, end](const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end - p) < n || std::memcmp(p, lit, n) != 0) {
      throw std::runtime_error("bench_io: malformed JSONL");
    }
    p += n;
  };
  const auto parse_string = [&p, end](std::string& out) {
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (++p >= end) throw std::runtime_error("bench_io: bad escape");
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end - p < 5) throw std::runtime_error("bench_io: bad \\u");
            out += static_cast<char>(std::strtol(
                std::string(p + 1, p + 5).c_str(), nullptr, 16));
            p += 4;
            break;
          }
          default: throw std::runtime_error("bench_io: bad escape");
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    ++p;  // closing quote
  };
  const auto parse_int = [&p]() {
    char* after = nullptr;
    const long long v = std::strtoll(p, &after, 10);
    p = after;
    return v;
  };

  while (p < end && *p == '{') {
    data::DialogueSet s;
    expect("{\"q\":\"");
    parse_string(s.question);
    expect(",\"a\":\"");
    parse_string(s.answer);
    expect(",\"r\":\"");
    parse_string(s.reference);
    expect(",\"d\":");
    s.true_domain = static_cast<int>(parse_int());
    expect(",\"s\":");
    s.true_subtopic = static_cast<int>(parse_int());
    expect(",\"n\":");
    s.is_noise = parse_int() != 0;
    expect(",\"p\":");
    s.stream_position = static_cast<std::size_t>(parse_int());
    expect(",\"t\":");
    const bool test = parse_int() != 0;
    expect("}\n");
    (test ? ds.test : ds.stream).push_back(std::move(s));
  }
  if (p != end) throw std::runtime_error("bench_io: trailing JSONL bytes");
  return ds;
}

// --- scan consumers -------------------------------------------------------
// The gated read path is a *routing scan*: the per-record metadata the fleet
// scheduler inspects on every stream step (position, split, domain,
// subtopic, noise flag) without materializing the dialogue text. Both
// storage paths feed the same FNV-style aggregate over those fields, and
// the aggregates must match exactly. This is where the columnar layout
// earns its keep: OBSF decodes only the five narrow columns it touches
// (the per-column LZ4 runs for the text are never decompressed), while the
// row-major JSONL side has no choice but to walk every byte of every line
// — escape-aware string skipping is the cheapest correct thing a text
// format can do.

std::uint64_t mix_routing(std::uint64_t h, std::uint64_t pos,
                          std::int64_t dom, std::int64_t sub, bool test,
                          bool noise) {
  h ^= pos + static_cast<std::uint64_t>(dom) * 3 +
       static_cast<std::uint64_t>(sub) * 5 + (test ? 7 : 0) +
       (noise ? 11 : 0) + 0x9e3779b97f4a7c15ull;
  h *= 1099511628211ull;
  return h;
}

std::uint64_t scan_obsf(const std::string& path, std::size_t& rows_out) {
  io::ObsfReader r(path);
  std::uint64_t h = 1469598103934665603ull;
  rows_out = 0;
  while (r.next_block()) {
    const auto& pos = r.col_u64(0);
    const auto& split = r.col_u8(1);
    const auto& dom = r.col_i64(5);
    const auto& sub = r.col_i64(6);
    const auto& noise = r.col_u8(7);
    for (std::size_t k = 0; k < r.rows(); ++k) {
      h = mix_routing(h, pos[k], dom[k], sub[k], split[k] != 0,
                      noise[k] != 0);
    }
    rows_out += r.rows();
  }
  return h;
}

std::uint64_t scan_jsonl(const std::string& path, std::size_t& rows_out) {
  const std::vector<unsigned char> bytes = util::read_file(path);
  const char* p = reinterpret_cast<const char*>(bytes.data());
  const char* end = p + bytes.size();
  std::uint64_t h = 1469598103934665603ull;
  rows_out = 0;

  const auto expect = [&p, end](const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end - p) < n || std::memcmp(p, lit, n) != 0) {
      throw std::runtime_error("bench_io: malformed JSONL");
    }
    p += n;
  };
  // Escape-aware skip without unescaping: the scan needs only the numeric
  // fields, so the string values are stepped over, not decoded.
  const auto skip_string = [&p, end]() {
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (++p >= end) throw std::runtime_error("bench_io: bad escape");
      }
      ++p;
    }
    if (p >= end) throw std::runtime_error("bench_io: unterminated string");
    ++p;  // closing quote
  };
  const auto parse_int = [&p]() {
    char* after = nullptr;
    const long long v = std::strtoll(p, &after, 10);
    p = after;
    return v;
  };

  while (p < end && *p == '{') {
    expect("{\"q\":\"");
    skip_string();
    expect(",\"a\":\"");
    skip_string();
    expect(",\"r\":\"");
    skip_string();
    expect(",\"d\":");
    const std::int64_t dom = parse_int();
    expect(",\"s\":");
    const std::int64_t sub = parse_int();
    expect(",\"n\":");
    const bool noise = parse_int() != 0;
    expect(",\"p\":");
    const std::uint64_t pos = static_cast<std::uint64_t>(parse_int());
    expect(",\"t\":");
    const bool test = parse_int() != 0;
    expect("}\n");
    h = mix_routing(h, pos, dom, sub, test, noise);
    ++rows_out;
  }
  return h;
}

// --- helpers --------------------------------------------------------------

bool sets_equal(const data::DialogueSet& a, const data::DialogueSet& b) {
  return a.question == b.question && a.answer == b.answer &&
         a.reference == b.reference && a.true_domain == b.true_domain &&
         a.true_subtopic == b.true_subtopic && a.is_noise == b.is_noise &&
         a.stream_position == b.stream_position;
}

bool datasets_equal(const data::GeneratedDataset& a,
                    const data::GeneratedDataset& b) {
  if (a.stream.size() != b.stream.size() || a.test.size() != b.test.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.stream.size(); ++i) {
    if (!sets_equal(a.stream[i], b.stream[i])) return false;
  }
  for (std::size_t i = 0; i < a.test.size(); ++i) {
    if (!sets_equal(a.test[i], b.test[i])) return false;
  }
  return true;
}

// Logical payload: the bytes a consumer actually receives. Both storage
// paths are rated in MB/s of THIS, so framing overhead hurts, never helps.
std::size_t logical_bytes(const data::GeneratedDataset& ds) {
  std::size_t n = 0;
  const auto add = [&n](const data::DialogueSet& s) {
    n += s.question.size() + s.answer.size() + s.reference.size() +
         2 * sizeof(int) + sizeof(std::size_t) + 1;
  };
  for (const auto& s : ds.stream) add(s);
  for (const auto& s : ds.test) add(s);
  return n;
}

bool fleet_users_identical(const std::vector<exp::ExperimentResult>& a,
                           const std::vector<exp::ExperimentResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t u = 0; u < a.size(); ++u) {
    if (a[u].final_rouge != b[u].final_rouge) return false;
    if (a[u].final_per_set != b[u].final_per_set) return false;
    if (a[u].curve.seen() != b[u].curve.seen()) return false;
    if (a[u].curve.rouge() != b[u].curve.rouge()) return false;
    if (a[u].engine_stats.seen != b[u].engine_stats.seen) return false;
    if (a[u].annotation_requests != b[u].annotation_requests) return false;
  }
  return true;
}

double mbps(std::size_t bytes, double seconds) {
  return seconds > 0.0 ? static_cast<double>(bytes) / 1e6 / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  std::string out_path = "results/BENCH_io.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  bench::print_header(
      "io / OBSF container",
      "columnar blocks + LZ4 vs the JSONL text path; record/replay fleet",
      opt);

  const std::string scratch =
      "/tmp/odlp_bench_io_" + std::to_string(::getpid());
  std::filesystem::create_directories(scratch);
  int exit_code = 0;

  // --- primitive throughput ----------------------------------------------
  // crc32 over a buffer sized so it streams from memory, not L1.
  const std::size_t crc_bytes = opt.quick ? (8u << 20) : (64u << 20);
  std::vector<unsigned char> crc_buf(crc_bytes);
  util::Rng crc_rng(opt.seed);
  for (auto& b : crc_buf) b = static_cast<unsigned char>(crc_rng.next_u64());
  std::uint32_t crc_sink = 0;
  util::Stopwatch crc_sw;
  const int crc_passes = 5;
  for (int i = 0; i < crc_passes; ++i) {
    crc_sink ^= util::crc32(crc_buf.data(), crc_buf.size(), crc_sink);
  }
  const double crc_gbps =
      static_cast<double>(crc_bytes) * crc_passes / 1e9 /
      crc_sw.elapsed_seconds();
  // PCLMUL folding when the host supports it, slice-by-8 tables otherwise.
  std::printf("crc32:                %7.2f GB/s   (sink %08x)\n", crc_gbps,
              crc_sink);

  // LZ4 on dialogue-shaped text (the payload the container actually sees).
  const auto& dict = lexicon::builtin_dictionary();
  data::UserOracle lz_oracle(opt.seed * 2654435761ull + 1, dict);
  data::Generator lz_gen(data::profile_by_name("MedDialog"), lz_oracle,
                         util::Rng(opt.seed));
  std::string corpus;
  while (corpus.size() < (opt.quick ? (1u << 20) : (8u << 20))) {
    const data::DialogueSet s = lz_gen.make_informative(
        corpus.size() % dict.num_domains(), 0);
    corpus += s.question;
    corpus += ' ';
    corpus += s.reference;
    corpus += '\n';
  }
  std::vector<std::uint8_t> lz_dst(io::lz4_max_compressed_size(corpus.size()));
  util::Stopwatch comp_sw;
  const int lz_passes = opt.quick ? 3 : 5;
  std::size_t lz_csize = 0;
  for (int i = 0; i < lz_passes; ++i) {
    lz_csize = io::lz4_compress(
        reinterpret_cast<const std::uint8_t*>(corpus.data()), corpus.size(),
        lz_dst.data());
  }
  const double lz_comp_mbps =
      mbps(corpus.size() * lz_passes, comp_sw.elapsed_seconds());
  std::vector<std::uint8_t> lz_back(corpus.size());
  util::Stopwatch dec_sw;
  for (int i = 0; i < lz_passes; ++i) {
    io::lz4_decompress(lz_dst.data(), lz_csize, lz_back.data(),
                       lz_back.size());
  }
  const double lz_dec_mbps =
      mbps(corpus.size() * lz_passes, dec_sw.elapsed_seconds());
  const double lz_ratio =
      static_cast<double>(corpus.size()) / static_cast<double>(lz_csize);
  std::printf("lz4 compress:         %7.1f MB/s   (%.2fx on dialogue text)\n",
              lz_comp_mbps, lz_ratio);
  std::printf("lz4 decompress:       %7.1f MB/s\n\n", lz_dec_mbps);

  // --- OBSF vs JSONL on the same traffic ---------------------------------
  const std::size_t traffic_sets = opt.quick ? 4000 : 20000;
  data::UserOracle oracle(opt.seed * 6364136223846793005ull + 3, dict);
  data::Generator gen(data::profile_by_name("MedDialog"), oracle,
                      util::Rng(opt.seed ^ 0x10u));
  const data::GeneratedDataset traffic =
      gen.generate(traffic_sets, traffic_sets / 10);
  const std::size_t payload = logical_bytes(traffic);
  std::printf("traffic: %zu sets, %.1f MB logical payload\n",
              traffic.stream.size() + traffic.test.size(),
              static_cast<double>(payload) / 1e6);

  const std::string obsf_path = scratch + "/traffic.obsf";
  const std::string jsonl_path = scratch + "/traffic.jsonl";

  util::Stopwatch obsf_w_sw;
  const io::ObsfWriter::Stats ostats = io::record_dataset(traffic, obsf_path);
  const double obsf_write_s = obsf_w_sw.elapsed_seconds();
  util::Stopwatch jsonl_w_sw;
  const std::size_t jsonl_bytes = write_jsonl(traffic, jsonl_path);
  const double jsonl_write_s = jsonl_w_sw.elapsed_seconds();

  // Routing scan (the gated read path): aggregate the scheduler-visible
  // metadata of every record. OBSF projects the five narrow columns and
  // skips decompressing the text runs; JSONL must walk every byte.
  const int scan_passes = 10;
  std::size_t obsf_rows = 0, jsonl_rows = 0;
  std::uint64_t obsf_hash = 0, jsonl_hash = 0;
  util::Stopwatch obsf_scan_sw;
  for (int i = 0; i < scan_passes; ++i) {
    obsf_hash = scan_obsf(obsf_path, obsf_rows);
  }
  const double obsf_scan_s = obsf_scan_sw.elapsed_seconds() / scan_passes;
  util::Stopwatch jsonl_scan_sw;
  for (int i = 0; i < scan_passes; ++i) {
    jsonl_hash = scan_jsonl(jsonl_path, jsonl_rows);
  }
  const double jsonl_scan_s = jsonl_scan_sw.elapsed_seconds() / scan_passes;
  if (obsf_hash != jsonl_hash || obsf_rows != jsonl_rows) {
    std::fprintf(stderr,
                 "bench_io: FAIL — scan aggregates diverge (OBSF %016llx/%zu "
                 "vs JSONL %016llx/%zu)\n",
                 static_cast<unsigned long long>(obsf_hash), obsf_rows,
                 static_cast<unsigned long long>(jsonl_hash), jsonl_rows);
    exit_code = 1;
  }

  // Full materialization: rebuild owning GeneratedDataset structures.
  const int read_passes = opt.quick ? 3 : 5;
  util::Stopwatch obsf_r_sw;
  data::GeneratedDataset obsf_back;
  for (int i = 0; i < read_passes; ++i) obsf_back = io::replay_dataset(obsf_path);
  const double obsf_read_s = obsf_r_sw.elapsed_seconds() / read_passes;
  util::Stopwatch jsonl_r_sw;
  data::GeneratedDataset jsonl_back;
  for (int i = 0; i < read_passes; ++i) jsonl_back = read_jsonl(jsonl_path);
  const double jsonl_read_s = jsonl_r_sw.elapsed_seconds() / read_passes;

  // Both paths must actually reproduce the traffic; a baseline that skipped
  // work (or a container that lost data) would be an unfair comparison.
  const bool obsf_exact = datasets_equal(traffic, obsf_back);
  const bool jsonl_exact = datasets_equal(traffic, jsonl_back);
  if (!obsf_exact || !jsonl_exact) {
    std::fprintf(stderr, "bench_io: FAIL — %s round trip is not exact\n",
                 obsf_exact ? "JSONL" : "OBSF");
    exit_code = 1;
  }

  const double obsf_write_mbps = mbps(payload, obsf_write_s);
  const double obsf_scan_mbps = mbps(payload, obsf_scan_s);
  const double obsf_read_mbps = mbps(payload, obsf_read_s);
  const double jsonl_write_mbps = mbps(payload, jsonl_write_s);
  const double jsonl_scan_mbps = mbps(payload, jsonl_scan_s);
  const double jsonl_read_mbps = mbps(payload, jsonl_read_s);
  const double read_speedup =
      jsonl_scan_mbps > 0.0 ? obsf_scan_mbps / jsonl_scan_mbps : 0.0;
  const double materialize_speedup =
      jsonl_read_mbps > 0.0 ? obsf_read_mbps / jsonl_read_mbps : 0.0;
  const double bytes_ratio =
      static_cast<double>(ostats.file_bytes) /
      static_cast<double>(jsonl_bytes);

  std::printf("                      %10s %10s\n", "OBSF", "JSONL");
  std::printf("write MB/s            %10.1f %10.1f\n", obsf_write_mbps,
              jsonl_write_mbps);
  std::printf("scan MB/s             %10.1f %10.1f   (%.1fx)\n",
              obsf_scan_mbps, jsonl_scan_mbps, read_speedup);
  std::printf("materialize MB/s      %10.1f %10.1f   (%.1fx)\n",
              obsf_read_mbps, jsonl_read_mbps, materialize_speedup);
  std::printf("bytes at rest         %10zu %10zu   (%.2fx)\n",
              static_cast<std::size_t>(ostats.file_bytes), jsonl_bytes,
              bytes_ratio);
  std::printf("container: %llu blocks, %.2fx block compression\n\n",
              static_cast<unsigned long long>(ostats.blocks),
              ostats.stored_bytes > 0
                  ? static_cast<double>(ostats.raw_bytes) /
                        static_cast<double>(ostats.stored_bytes)
                  : 1.0);

  // --- buffer checkpoint: OBSF v3 vs legacy v2 ---------------------------
  core::DataBuffer buffer(1024);
  for (std::size_t i = 0; i < 1024 && i < traffic.stream.size(); ++i) {
    core::BufferEntry e;
    e.set = traffic.stream[i];
    e.inserted_at = i;
    e.dominant_domain = static_cast<std::size_t>(
        traffic.stream[i].true_domain < 0 ? 0 : traffic.stream[i].true_domain);
    e.scores = {0.5, 0.5, 0.5};
    e.embedding = tensor::Tensor(1, 64, static_cast<float>(i) * 0.01f);
    buffer.add(std::move(e));
  }
  const std::string v3_path = scratch + "/buffer_v3.bin";
  const std::string v2_path = scratch + "/buffer_v2.bin";
  core::save_buffer(buffer, v3_path);
  core::save_buffer_legacy(buffer, v2_path);
  const std::size_t v3_bytes = util::read_file(v3_path).size();
  const std::size_t v2_bytes = util::read_file(v2_path).size();
  const double ckpt_ratio =
      static_cast<double>(v3_bytes) / static_cast<double>(v2_bytes);
  std::printf("buffer checkpoint (%zu bins): v3 %zu bytes vs v2 %zu bytes "
              "(%.2fx)\n\n",
              buffer.size(), v3_bytes, v2_bytes, ckpt_ratio);

  // --- record-once / replay-many fleet -----------------------------------
  exp::FleetConfig fleet;
  fleet.num_devices = opt.quick ? 3 : 4;
  exp::ExperimentConfig& c = fleet.device_template;
  c.dataset = "MedDialog";
  c.buffer_bins = 8;
  c.stream_size = opt.quick ? 4 : 6;
  c.finetune_interval = opt.quick ? 2 : 3;
  c.test_size = 32;
  c.eval_subset = 6;
  c.eval_repeats = 2;
  c.epochs = 1;
  c.synth_per_set = 1;
  c.pretrain_examples = 16;
  c.pretrain_epochs = 1;
  c.record_curve = true;
  c.cache_dir = scratch + "/cache";
  fleet.seed_base = opt.seed;
  fleet.shared_base_seed = opt.seed * 7919 + 17;
  fleet.traffic_dir = scratch + "/traffic_dir";
  std::filesystem::create_directories(fleet.traffic_dir);
  std::filesystem::create_directories(c.cache_dir);

  util::Stopwatch gen_sw;
  const exp::FleetResult generated = exp::run_fleet(fleet, "Ours");
  const double gen_s = gen_sw.elapsed_seconds();
  util::Stopwatch rep_sw;
  const exp::FleetResult replayed = exp::run_fleet(fleet, "Ours");
  const double rep_s = rep_sw.elapsed_seconds();
  const bool fleet_identical =
      fleet_users_identical(generated.devices, replayed.devices);
  const double fleet_speedup = rep_s > 0.0 ? gen_s / rep_s : 0.0;
  std::printf("fleet %zu users: generated+recorded %.2fs, replayed %.2fs "
              "(%.2fx)  bit-identical: %s\n\n",
              fleet.num_devices, gen_s, rep_s, fleet_speedup,
              fleet_identical ? "yes" : "NO");
  if (!fleet_identical) {
    std::fprintf(stderr,
                 "bench_io: FAIL — replayed fleet diverges from the "
                 "generated run\n");
    exit_code = 1;
  }

  // --- acceptance gates ---------------------------------------------------
  if (read_speedup < 5.0) {
    std::fprintf(stderr,
                 "bench_io: FAIL — OBSF stream scan is %.2fx the JSONL path, "
                 "below the 5x floor\n",
                 read_speedup);
    exit_code = 1;
  }
  if (bytes_ratio > 0.5) {
    std::fprintf(stderr,
                 "bench_io: FAIL — OBSF bytes-at-rest are %.2fx JSONL, above "
                 "the 0.5x ceiling\n",
                 bytes_ratio);
    exit_code = 1;
  }

  bench::JsonWriter json;
  json.text("bench", "io_obsf");
  json.text("mode", opt.quick ? "quick" : "full");
  json.number("crc32_gbps", crc_gbps);
  json.raw("lz4", bench::json_object({{"compress_mbps", lz_comp_mbps},
                                      {"decompress_mbps", lz_dec_mbps},
                                      {"dialogue_ratio", lz_ratio}}));
  json.raw("stream",
           bench::json_object(
               {{"sets", static_cast<double>(traffic.stream.size() +
                                             traffic.test.size())},
                {"payload_bytes", static_cast<double>(payload)},
                {"obsf_write_mbps", obsf_write_mbps},
                {"obsf_scan_mbps", obsf_scan_mbps},
                {"obsf_read_mbps", obsf_read_mbps},
                {"jsonl_write_mbps", jsonl_write_mbps},
                {"jsonl_scan_mbps", jsonl_scan_mbps},
                {"jsonl_read_mbps", jsonl_read_mbps},
                {"read_speedup", read_speedup},
                {"materialize_speedup", materialize_speedup},
                {"obsf_bytes", static_cast<double>(ostats.file_bytes)},
                {"jsonl_bytes", static_cast<double>(jsonl_bytes)},
                {"bytes_ratio", bytes_ratio},
                {"blocks", static_cast<double>(ostats.blocks)}}));
  json.raw("buffer_checkpoint",
           bench::json_object({{"v3_bytes", static_cast<double>(v3_bytes)},
                               {"v2_bytes", static_cast<double>(v2_bytes)},
                               {"ratio", ckpt_ratio}}));
  json.raw("fleet_replay",
           bench::json_object(
               {{"users", static_cast<double>(fleet.num_devices)},
                {"generated_seconds", gen_s},
                {"replayed_seconds", rep_s},
                {"speedup", fleet_speedup},
                {"bit_identical", fleet_identical ? 1.0 : 0.0}}));
  json.integer("gates_passed", exit_code == 0 ? 1 : 0);
  const std::string body = json.finish();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_io: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  std::filesystem::remove_all(scratch);
  return exit_code;
}
