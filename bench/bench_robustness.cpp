// Robustness extension: the framework under stream distortions.
//
// Re-runs the Ours pipeline on a MedDialog stream transformed four ways —
// original (bursty), fully shuffled (temporal correlation destroyed),
// reversed (late bursts first), and with 50% extra injected noise — and
// compares against Random Replace on the same transformed streams. The
// paper's claim that the framework handles both weak and strong temporal
// correlation predicts stable wins across the first three rows; the noise
// row stresses the DSS/EOE filters specifically.
//
// --chaos switches to the resilience sweep instead (DESIGN.md §11): full
// personalization fleets under seeded fault schedules, reporting
// availability, MTTR, rung transitions, and retry stats to
// results/BENCH_robustness.json. The default schedule must sustain
// availability >= 99% with bounded MTTR, and a repeated schedule must be
// bit-identical — the bench exits non-zero when either contract breaks.
#include <algorithm>
#include <array>
#include <filesystem>
#include <unistd.h>

#include "bench_common.h"
#include "core/checkpoint.h"
#include "data/generator.h"
#include "data/stream_transforms.h"
#include "exp/fleet.h"
#include "llm/embedding_extractor.h"

using namespace odlp;

namespace {

double run_on_stream(const bench::BenchOptions& opt, const std::string& method,
                     const data::DialogueStream& stream,
                     const data::DialogueStream& test, data::UserOracle& oracle) {
  exp::ExperimentConfig config = bench::standard_config(opt);
  const auto& dict = lexicon::builtin_dictionary();
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  auto model = exp::make_base_model(config, tokenizer);
  llm::LlmEmbeddingExtractor extractor(*model, tokenizer);

  core::EngineConfig ec;
  ec.buffer_bins = config.buffer_bins;
  ec.finetune_interval = config.finetune_interval;
  ec.synth_per_set = config.synth_per_set;
  ec.max_seq_len = config.max_seq_len;
  ec.train.epochs = config.epochs;
  ec.train.batch_size = config.batch_size;
  ec.train.learning_rate = config.learning_rate;
  ec.sampler.temperature = config.eval_temperature;
  ec.sampler.max_new_tokens = 16;

  util::Rng rng(config.seed ^ 0x0b0e);
  core::PersonalizationEngine engine(
      *model, tokenizer, extractor, oracle, dict, exp::make_policy(method),
      std::make_unique<core::ParaphraseSynthesizer>(dict, rng.split()), ec,
      rng.split());
  engine.run_stream(stream);
  engine.finetune_now();

  std::vector<const data::DialogueSet*> eval_sets;
  const std::size_t n = std::min<std::size_t>(config.eval_subset, test.size());
  for (std::size_t i = 0; i < n; ++i) {
    eval_sets.push_back(&test[i * test.size() / n]);
  }
  return engine.evaluate(eval_sets, config.eval_repeats);
}

// Durability cost at the standard 32-bin config: fill the buffer by
// streaming (no fine-tuning), then time one CheckpointManager save +
// restore cycle and report the generation's on-disk footprint.
void report_checkpoint_overhead(const bench::BenchOptions& opt,
                                const data::DialogueStream& stream,
                                data::UserOracle& oracle) {
  exp::ExperimentConfig config = bench::standard_config(opt);
  const auto& dict = lexicon::builtin_dictionary();
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  auto model = exp::make_base_model(config, tokenizer);
  llm::LlmEmbeddingExtractor extractor(*model, tokenizer);

  core::EngineConfig ec;
  ec.buffer_bins = config.buffer_bins;  // the standard 32 bins
  ec.finetune_interval = 0;             // selection only — fill the buffer
  util::Rng rng(config.seed ^ 0xC4E);
  core::PersonalizationEngine engine(
      *model, tokenizer, extractor, oracle, dict,
      std::make_unique<core::QualityReplacementPolicy>(),
      std::make_unique<core::ParaphraseSynthesizer>(dict, rng.split()), ec,
      rng.split());
  const std::size_t feed = std::min<std::size_t>(stream.size(), 96);
  for (std::size_t i = 0; i < feed; ++i) engine.process(stream[i]);

  const std::string dir = "/tmp/odlp_bench_ckpt";
  std::filesystem::remove_all(dir);
  core::CheckpointManager ckpt(dir, /*keep_last=*/2);

  util::Stopwatch save_watch;
  const std::uint64_t gen = ckpt.save(*model, engine.buffer(),
                                      tokenizer.vocab(), engine.stats());
  const double save_ms = save_watch.elapsed_ms();
  const std::uint64_t bytes = ckpt.generation_bytes(gen);

  util::Stopwatch restore_watch;
  const auto restored = ckpt.restore(*model);
  const double restore_ms = restore_watch.elapsed_ms();

  util::Table table({"checkpoint overhead (32 bins)", "value"});
  table.row().cell("buffered sets").cell(
      static_cast<long long>(engine.buffer().size()));
  table.row().cell("bytes per generation").cell(static_cast<long long>(bytes));
  table.row().cell("save wall ms").cell(save_ms, 2);
  table.row().cell("restore wall ms").cell(restore_ms, 2);
  std::printf("%s\n", table.to_string().c_str());
  std::fprintf(stderr,
               "  [robustness] checkpoint: gen %llu, %llu bytes, save %.2f ms, "
               "restore %.2f ms (restored=%s)\n",
               static_cast<unsigned long long>(gen),
               static_cast<unsigned long long>(bytes), save_ms, restore_ms,
               restored ? "yes" : "NO");
  std::filesystem::remove_all(dir);
}

// --- Chaos sweep (--chaos) ------------------------------------------------

// Mirrors the tests/test_chaos.cpp geometry: tiny raw-initialized models,
// memory-only governor pressure (deadlines off), backoff accounted but not
// slept — the whole sweep is deterministic on a timeshared host.
exp::ChaosFleetConfig chaos_fleet_config(std::uint64_t schedule_seed,
                                         std::size_t devices,
                                         std::size_t rounds,
                                         const std::string& work_dir,
                                         const std::string& traffic_dir) {
  exp::ChaosFleetConfig config;
  config.num_devices = devices;
  config.rounds = rounds;
  config.sets_per_round = 3;
  config.buffer_bins = 4;
  config.synth_per_set = 1;
  config.epochs = 1;
  config.seed_base = 1000 + schedule_seed * 101;
  config.work_dir = work_dir;
  // Record-once/replay-many: device streams are captured to
  // <traffic_dir>/device-<i>.obsf on first run and replayed after. The
  // traffic dir deliberately lives OUTSIDE work_dir (which is wiped per
  // run), so a repeated config replays its recording — the determinism
  // witness below therefore covers the OBSF replay path too.
  config.traffic_dir = traffic_dir;
  config.keep_last = rounds + 3;  // pruning never strands a restore target
  config.retry.sleep = false;
  config.governor.round_deadline_ms = 0.0;
  config.supervisor.round_deadline_ms = 0.0;
  config.schedule = util::fault::FaultSchedule::random(
      schedule_seed, /*num_events=*/10,
      /*horizon=*/rounds * devices * 4);
  // Account every stall, skip the nap: a persistent slow-I/O event can fire
  // tens of thousands of times across a 120-round fleet, and the sweep's
  // job is resilience accounting, not sleeping.
  config.schedule.stall_scale = 0.0;
  return config;
}

exp::ChaosFleetResult run_chaos_fleet_in(const exp::ChaosFleetConfig& config) {
  std::filesystem::remove_all(config.work_dir);
  std::filesystem::create_directories(config.work_dir);
  if (!config.traffic_dir.empty()) {
    std::filesystem::create_directories(config.traffic_dir);
  }
  const exp::ChaosFleetResult result = exp::run_chaos_fleet(config);
  std::filesystem::remove_all(config.work_dir);
  return result;
}

int run_chaos_bench(const bench::BenchOptions& opt,
                    const std::string& out_path) {
  bench::print_header(
      "Robustness (chaos sweep)",
      "seeded fault schedules over full personalization fleets", opt);
  const std::string work_root =
      "/tmp/odlp_bench_chaos_" + std::to_string(::getpid());
  // Default-schedule fleet: large enough that the 99% availability bar has
  // meaning (full: 4 devices x 30 rounds = 120 device-rounds).
  const std::size_t devices = opt.quick ? 3 : 4;
  const std::size_t rounds = opt.quick ? 10 : 30;
  const std::size_t sweep_schedules = opt.quick ? 6 : 16;

  util::Stopwatch watch;
  const exp::ChaosFleetConfig default_config =
      chaos_fleet_config(opt.seed, devices, rounds, work_root + "/default",
                         work_root + "/traffic-default");
  const exp::ChaosFleetResult def = run_chaos_fleet_in(default_config);
  // Determinism witness: the same (config, schedule) pair must reproduce
  // the fleet state hash bit-for-bit. The first run recorded the device
  // streams; this one replays them, so the witness covers record/replay.
  const exp::ChaosFleetResult repeat = run_chaos_fleet_in(default_config);
  const bool deterministic = def.fleet_state_hash == repeat.fleet_state_hash;

  // Aggregate the per-device resilience ledgers of the default run.
  std::array<std::uint64_t, resil::kNumRungs> rung_entered{};
  resil::ResourceGovernor::Stats gov{};
  resil::RetryPolicy::Stats retry{};
  for (const auto& d : def.devices) {
    gov.observations += d.governor.observations;
    gov.escalations += d.governor.escalations;
    gov.recoveries += d.governor.recoveries;
    gov.relapses += d.governor.relapses;
    for (std::size_t r = 0; r < resil::kNumRungs; ++r) {
      rung_entered[r] += d.governor.entered[r];
    }
    for (const auto* stats : {&d.ckpt_retry, &d.ingest_retry}) {
      retry.calls += stats->calls;
      retry.attempts += stats->attempts;
      retry.retries += stats->retries;
      retry.healed += stats->healed;
      retry.exhausted += stats->exhausted;
      retry.terminal += stats->terminal;
      retry.backoff_us_total += stats->backoff_us_total;
    }
  }

  // Schedule sweep: the same invariants the chaos test suite enforces,
  // summarized across many independent seeds for the report.
  double sweep_avail_sum = 0.0, sweep_avail_min = 1.0, sweep_mttr_max = 0.0;
  std::uint64_t sweep_failures = 0, sweep_injected = 0;
  for (std::uint64_t s = 0; s < sweep_schedules; ++s) {
    const exp::ChaosFleetResult r = run_chaos_fleet_in(chaos_fleet_config(
        opt.seed + 1 + s, /*devices=*/2, /*rounds=*/5,
        work_root + "/sweep_" + std::to_string(s),
        work_root + "/traffic-sweep_" + std::to_string(s)));
    sweep_avail_sum += r.totals.availability;
    sweep_avail_min = std::min(sweep_avail_min, r.totals.availability);
    sweep_mttr_max = std::max(sweep_mttr_max, r.totals.mttr_rounds);
    sweep_failures += r.totals.failures;
    sweep_injected += r.faults.total_injected();
    std::fprintf(stderr,
                 "  [chaos] schedule %llu: avail %.4f, failures %llu, "
                 "injected %llu\n",
                 static_cast<unsigned long long>(opt.seed + 1 + s),
                 r.totals.availability,
                 static_cast<unsigned long long>(r.totals.failures),
                 static_cast<unsigned long long>(r.faults.total_injected()));
  }
  std::filesystem::remove_all(work_root);
  const double wall_seconds = watch.elapsed_seconds();

  // MTTR is "bounded" when every repair completed inside the run — the
  // supervisor closed each down interval, so MTTR can never exceed the
  // round horizon.
  const bool mttr_bounded =
      def.totals.mttr_rounds <= static_cast<double>(rounds);
  util::Table table({"chaos metric", "value"});
  table.row().cell("device-rounds").cell(
      static_cast<long long>(def.totals.rounds));
  table.row().cell("availability").cell(def.totals.availability, 4);
  table.row().cell("mttr rounds").cell(def.totals.mttr_rounds, 2);
  table.row().cell("failures").cell(static_cast<long long>(def.totals.failures));
  table.row().cell("recoveries").cell(
      static_cast<long long>(def.totals.recoveries));
  table.row().cell("faults injected").cell(
      static_cast<long long>(def.faults.total_injected()));
  table.row().cell("retry heals").cell(static_cast<long long>(retry.healed));
  table.row().cell("rung escalations").cell(
      static_cast<long long>(gov.escalations));
  table.row().cell("deterministic repeat").cell(deterministic ? "yes" : "NO");
  table.row().cell("sweep schedules").cell(
      static_cast<long long>(sweep_schedules));
  table.row().cell("sweep min avail").cell(sweep_avail_min, 4);
  std::printf("%s\n", table.to_string().c_str());

  bench::JsonWriter json;
  json.text("bench", "bench_robustness_chaos");
  json.integer("seed", static_cast<long long>(opt.seed));
  json.integer("quick", opt.quick ? 1 : 0);
  json.integer("devices", static_cast<long long>(devices));
  json.integer("rounds_per_device", static_cast<long long>(rounds));
  json.integer("device_rounds", static_cast<long long>(def.totals.rounds));
  json.number("availability", def.totals.availability);
  json.number("mttr_rounds", def.totals.mttr_rounds);
  json.integer("mttr_bounded", mttr_bounded ? 1 : 0);
  json.integer("failures", static_cast<long long>(def.totals.failures));
  json.integer("recoveries", static_cast<long long>(def.totals.recoveries));
  json.integer("deadline_misses",
               static_cast<long long>(def.totals.deadline_misses));
  json.integer("repairs", static_cast<long long>(def.totals.repairs));
  json.integer("deterministic", deterministic ? 1 : 0);
  {
    std::vector<std::pair<std::string, double>> rungs;
    for (std::size_t r = 0; r < resil::kNumRungs; ++r) {
      rungs.emplace_back(resil::to_string(static_cast<resil::Rung>(r)),
                         static_cast<double>(rung_entered[r]));
    }
    json.raw("rung_transitions", bench::json_object(rungs));
  }
  json.raw("governor",
           bench::json_object({{"observations", double(gov.observations)},
                               {"escalations", double(gov.escalations)},
                               {"recoveries", double(gov.recoveries)},
                               {"relapses", double(gov.relapses)}}));
  json.raw("retry",
           bench::json_object({{"calls", double(retry.calls)},
                               {"attempts", double(retry.attempts)},
                               {"retries", double(retry.retries)},
                               {"healed", double(retry.healed)},
                               {"exhausted", double(retry.exhausted)},
                               {"terminal", double(retry.terminal)},
                               {"backoff_us_total", retry.backoff_us_total}}));
  json.raw("faults_injected",
           bench::json_object({{"write_fails", double(def.faults.write_fails)},
                               {"truncations", double(def.faults.truncations)},
                               {"bit_flips", double(def.faults.bit_flips)},
                               {"stalls", double(def.faults.stalls)},
                               {"oom", double(def.faults.oom)},
                               {"task_fails", double(def.faults.task_fails)},
                               {"total",
                                double(def.faults.total_injected())}}));
  json.raw("sweep",
           bench::json_object(
               {{"schedules", double(sweep_schedules)},
                {"mean_availability",
                 sweep_avail_sum / double(sweep_schedules)},
                {"min_availability", sweep_avail_min},
                {"max_mttr_rounds", sweep_mttr_max},
                {"failures", double(sweep_failures)},
                {"faults_injected", double(sweep_injected)}}));
  json.number("wall_seconds", wall_seconds);

  std::filesystem::create_directories(
      std::filesystem::path(out_path).parent_path());
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    const std::string body = json.finish();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "bench_robustness: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }

  // The acceptance contract: the default schedule sustains >= 99%
  // availability with bounded MTTR, and repeats are bit-identical.
  int status = 0;
  if (def.totals.availability < 0.99) {
    std::fprintf(stderr,
                 "bench_robustness: availability %.4f below the 0.99 bar\n",
                 def.totals.availability);
    status = 1;
  }
  if (!mttr_bounded) {
    std::fprintf(stderr, "bench_robustness: MTTR %.2f rounds is unbounded\n",
                 def.totals.mttr_rounds);
    status = 1;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "bench_robustness: repeated schedule was NOT bit-identical\n");
    status = 1;
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bool chaos = false;
  std::string out_path = "results/BENCH_robustness.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  if (chaos) return run_chaos_bench(opt, out_path);
  bench::print_header("Robustness (extension)",
                      "Ours vs Random under stream distortions (MedDialog)",
                      opt);

  const exp::ExperimentConfig base = bench::standard_config(opt);
  const auto& dict = lexicon::builtin_dictionary();
  data::UserOracle oracle(opt.seed * 31 + 5, dict);
  data::Generator generator(data::meddialog_profile(), oracle,
                            util::Rng(opt.seed));
  const auto dataset = generator.generate(base.stream_size, base.test_size);

  util::Rng transform_rng(opt.seed ^ 0x7a);
  std::vector<std::pair<std::string, data::DialogueStream>> variants;
  variants.emplace_back("original (bursty)", dataset.stream);
  variants.emplace_back("shuffled (iid)",
                        data::shuffled(dataset.stream, transform_rng));
  variants.emplace_back("reversed", data::reversed(dataset.stream));
  {
    util::Rng noise_rng(opt.seed ^ 0x17);
    variants.emplace_back(
        "50% extra noise",
        data::inject_noise(dataset.stream, 0.5, oracle, noise_rng));
  }

  util::Table table({"stream variant", "sets", "Ours", "Random", "margin"});
  for (const auto& [name, stream] : variants) {
    const double ours = run_on_stream(opt, "Ours", stream, dataset.test, oracle);
    const double rnd = run_on_stream(opt, "Random", stream, dataset.test, oracle);
    table.row()
        .cell(name)
        .cell(static_cast<long long>(stream.size()))
        .cell(ours, 4)
        .cell(rnd, 4)
        .cell(ours - rnd, 4);
    std::fprintf(stderr, "  [robustness] %s: ours %.4f random %.4f\n",
                 name.c_str(), ours, rnd);
  }
  std::printf("%s\n", table.to_string().c_str());

  report_checkpoint_overhead(opt, dataset.stream, oracle);
  return 0;
}
