// Robustness extension: the framework under stream distortions.
//
// Re-runs the Ours pipeline on a MedDialog stream transformed four ways —
// original (bursty), fully shuffled (temporal correlation destroyed),
// reversed (late bursts first), and with 50% extra injected noise — and
// compares against Random Replace on the same transformed streams. The
// paper's claim that the framework handles both weak and strong temporal
// correlation predicts stable wins across the first three rows; the noise
// row stresses the DSS/EOE filters specifically.
#include <filesystem>

#include "bench_common.h"
#include "core/checkpoint.h"
#include "data/generator.h"
#include "data/stream_transforms.h"
#include "llm/embedding_extractor.h"

using namespace odlp;

namespace {

double run_on_stream(const bench::BenchOptions& opt, const std::string& method,
                     const data::DialogueStream& stream,
                     const data::DialogueStream& test, data::UserOracle& oracle) {
  exp::ExperimentConfig config = bench::standard_config(opt);
  const auto& dict = lexicon::builtin_dictionary();
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  auto model = exp::make_base_model(config, tokenizer);
  llm::LlmEmbeddingExtractor extractor(*model, tokenizer);

  core::EngineConfig ec;
  ec.buffer_bins = config.buffer_bins;
  ec.finetune_interval = config.finetune_interval;
  ec.synth_per_set = config.synth_per_set;
  ec.max_seq_len = config.max_seq_len;
  ec.train.epochs = config.epochs;
  ec.train.batch_size = config.batch_size;
  ec.train.learning_rate = config.learning_rate;
  ec.sampler.temperature = config.eval_temperature;
  ec.sampler.max_new_tokens = 16;

  util::Rng rng(config.seed ^ 0x0b0e);
  core::PersonalizationEngine engine(
      *model, tokenizer, extractor, oracle, dict, exp::make_policy(method),
      std::make_unique<core::ParaphraseSynthesizer>(dict, rng.split()), ec,
      rng.split());
  engine.run_stream(stream);
  engine.finetune_now();

  std::vector<const data::DialogueSet*> eval_sets;
  const std::size_t n = std::min<std::size_t>(config.eval_subset, test.size());
  for (std::size_t i = 0; i < n; ++i) {
    eval_sets.push_back(&test[i * test.size() / n]);
  }
  return engine.evaluate(eval_sets, config.eval_repeats);
}

// Durability cost at the standard 32-bin config: fill the buffer by
// streaming (no fine-tuning), then time one CheckpointManager save +
// restore cycle and report the generation's on-disk footprint.
void report_checkpoint_overhead(const bench::BenchOptions& opt,
                                const data::DialogueStream& stream,
                                data::UserOracle& oracle) {
  exp::ExperimentConfig config = bench::standard_config(opt);
  const auto& dict = lexicon::builtin_dictionary();
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  auto model = exp::make_base_model(config, tokenizer);
  llm::LlmEmbeddingExtractor extractor(*model, tokenizer);

  core::EngineConfig ec;
  ec.buffer_bins = config.buffer_bins;  // the standard 32 bins
  ec.finetune_interval = 0;             // selection only — fill the buffer
  util::Rng rng(config.seed ^ 0xC4E);
  core::PersonalizationEngine engine(
      *model, tokenizer, extractor, oracle, dict,
      std::make_unique<core::QualityReplacementPolicy>(),
      std::make_unique<core::ParaphraseSynthesizer>(dict, rng.split()), ec,
      rng.split());
  const std::size_t feed = std::min<std::size_t>(stream.size(), 96);
  for (std::size_t i = 0; i < feed; ++i) engine.process(stream[i]);

  const std::string dir = "/tmp/odlp_bench_ckpt";
  std::filesystem::remove_all(dir);
  core::CheckpointManager ckpt(dir, /*keep_last=*/2);

  util::Stopwatch save_watch;
  const std::uint64_t gen = ckpt.save(*model, engine.buffer(),
                                      tokenizer.vocab(), engine.stats());
  const double save_ms = save_watch.elapsed_ms();
  const std::uint64_t bytes = ckpt.generation_bytes(gen);

  util::Stopwatch restore_watch;
  const auto restored = ckpt.restore(*model);
  const double restore_ms = restore_watch.elapsed_ms();

  util::Table table({"checkpoint overhead (32 bins)", "value"});
  table.row().cell("buffered sets").cell(
      static_cast<long long>(engine.buffer().size()));
  table.row().cell("bytes per generation").cell(static_cast<long long>(bytes));
  table.row().cell("save wall ms").cell(save_ms, 2);
  table.row().cell("restore wall ms").cell(restore_ms, 2);
  std::printf("%s\n", table.to_string().c_str());
  std::fprintf(stderr,
               "  [robustness] checkpoint: gen %llu, %llu bytes, save %.2f ms, "
               "restore %.2f ms (restored=%s)\n",
               static_cast<unsigned long long>(gen),
               static_cast<unsigned long long>(bytes), save_ms, restore_ms,
               restored ? "yes" : "NO");
  std::filesystem::remove_all(dir);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header("Robustness (extension)",
                      "Ours vs Random under stream distortions (MedDialog)",
                      opt);

  const exp::ExperimentConfig base = bench::standard_config(opt);
  const auto& dict = lexicon::builtin_dictionary();
  data::UserOracle oracle(opt.seed * 31 + 5, dict);
  data::Generator generator(data::meddialog_profile(), oracle,
                            util::Rng(opt.seed));
  const auto dataset = generator.generate(base.stream_size, base.test_size);

  util::Rng transform_rng(opt.seed ^ 0x7a);
  std::vector<std::pair<std::string, data::DialogueStream>> variants;
  variants.emplace_back("original (bursty)", dataset.stream);
  variants.emplace_back("shuffled (iid)",
                        data::shuffled(dataset.stream, transform_rng));
  variants.emplace_back("reversed", data::reversed(dataset.stream));
  {
    util::Rng noise_rng(opt.seed ^ 0x17);
    variants.emplace_back(
        "50% extra noise",
        data::inject_noise(dataset.stream, 0.5, oracle, noise_rng));
  }

  util::Table table({"stream variant", "sets", "Ours", "Random", "margin"});
  for (const auto& [name, stream] : variants) {
    const double ours = run_on_stream(opt, "Ours", stream, dataset.test, oracle);
    const double rnd = run_on_stream(opt, "Random", stream, dataset.test, oracle);
    table.row()
        .cell(name)
        .cell(static_cast<long long>(stream.size()))
        .cell(ours, 4)
        .cell(rnd, 4)
        .cell(ours - rnd, 4);
    std::fprintf(stderr, "  [robustness] %s: ours %.4f random %.4f\n",
                 name.c_str(), ours, rnd);
  }
  std::printf("%s\n", table.to_string().c_str());

  report_checkpoint_overhead(opt, dataset.stream, oracle);
  return 0;
}
