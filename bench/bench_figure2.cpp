// Reproduces Figure 2: learning curves (ROUGE-1 vs number of streamed
// dialogue sets) of the four methods on five datasets — (a) ALPACA,
// (b) DOLLY, (c) Prosocial-Dialog, (d) Empathetic-Dialog, (e) MedDialog.
//
// Paper's qualitative shape: the proposed framework's ROUGE-1 consistently
// increases as data streams in, while the baselines show only minor
// improvement. The summary table reports each curve's total gain
// (last − first checkpoint) to make that contrast explicit.
#include "bench_common.h"

using namespace odlp;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 2",
                      "learning curves of 4 methods on 5 datasets", opt);

  const std::vector<std::string> datasets = {"ALPACA", "DOLLY", "Prosocial",
                                             "Empathetic", "MedDialog"};

  util::Table gains({"dataset", "method", "first", "final", "best", "total_gain"});
  for (const auto& dataset : datasets) {
    std::printf("--- Figure 2: %s ---\n", dataset.c_str());
    for (const auto& method : exp::main_methods()) {
      exp::ExperimentConfig config = bench::standard_config(opt);
      config.dataset = dataset;
      config.method = method;
      config.record_curve = true;
      config.eval_subset = opt.quick ? 12 : 16;  // per-checkpoint evaluation
      config.eval_repeats = 1;  // curves evaluate often; single pass each
      const exp::ExperimentResult r = exp::run_experiment(config);
      std::printf("%s\n", r.curve.to_series().to_string().c_str());
      gains.row()
          .cell(dataset)
          .cell(method)
          .cell(r.curve.rouge().empty() ? 0.0 : r.curve.rouge().front(), 4)
          .cell(r.curve.final_rouge(), 4)
          .cell(r.curve.best_rouge(), 4)
          .cell(r.curve.total_gain(), 4);
      std::fprintf(stderr, "  [figure2] %s / %s done (%.0fs)\n", dataset.c_str(),
                   method.c_str(), r.wall_seconds);
    }
  }
  std::printf("summary (total_gain = final - first checkpoint):\n%s\n",
              gains.to_string().c_str());
  return 0;
}
