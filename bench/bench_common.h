// Shared helpers for the experiment benches (bench_table*, bench_figure*).
//
// Every bench accepts:
//   --quick    scaled-down run (fewer streamed sets / smaller eval subsets)
//              for smoke-testing the harness; the default full run is the
//              configuration recorded in EXPERIMENTS.md.
//   --seed N   override the experiment seed.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace odlp::bench {

struct BenchOptions {
  bool quick = false;
  std::uint64_t seed = 42;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  // Environment override for running the whole bench directory in bounded
  // time (e.g. CI): ODLP_BENCH_QUICK=1 makes every bench default to --quick.
  if (const char* env = std::getenv("ODLP_BENCH_QUICK");
      env && env[0] == '1') {
    opt.quick = true;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  return opt;
}

// The standard experiment configuration used by the table benches
// (buffer 32 bins; the paper's Table 2 uses 128 bins at Llama scale — the
// bin count is scaled 4x down with the model, the 22 KB bin geometry is
// reported unchanged).
inline exp::ExperimentConfig standard_config(const BenchOptions& opt) {
  exp::ExperimentConfig c;
  c.seed = opt.seed;
  if (opt.quick) {
    c.stream_size = 80;
    c.finetune_interval = 40;
    c.test_size = 200;
    c.eval_subset = 12;
    c.epochs = 8;
  } else {
    c.stream_size = 240;
    c.finetune_interval = 80;
    c.test_size = 600;
    c.eval_subset = 32;
    c.eval_repeats = 2;  // damp τ=0.5 sampling variance in the table cells
    c.epochs = 16;
  }
  return c;
}

// Minimal flat-JSON emitter shared by the machine-readable benches
// (results/BENCH_perf.json, results/BENCH_robustness.json). Keys are
// written in call order; `raw` splices a pre-rendered value (an object or
// array built with json_object below).
struct JsonWriter {
  std::string out = "{\n";
  bool first_in_scope = true;

  void comma() {
    if (!first_in_scope) out += ",\n";
    first_in_scope = false;
  }
  void number(const std::string& key, double v) {
    comma();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += "  \"" + key + "\": " + buf;
  }
  void integer(const std::string& key, long long v) {
    comma();
    out += "  \"" + key + "\": " + std::to_string(v);
  }
  void text(const std::string& key, const std::string& v) {
    comma();
    out += "  \"" + key + "\": \"" + v + "\"";
  }
  void raw(const std::string& key, const std::string& v) {
    comma();
    out += "  \"" + key + "\": " + v;
  }
  std::string finish() {
    out += "\n}\n";
    return out;
  }
};

inline std::string json_object(
    const std::vector<std::pair<std::string, double>>& kv) {
  std::string s = "{";
  for (std::size_t i = 0; i < kv.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", kv[i].second);
    if (i) s += ", ";
    s += "\"" + kv[i].first + "\": " + buf;
  }
  return s + "}";
}

inline void print_header(const char* artifact, const char* description,
                         const BenchOptions& opt) {
  std::printf("=== %s ===\n%s\n", artifact, description);
  std::printf("mode: %s, seed: %llu\n\n", opt.quick ? "quick" : "full",
              static_cast<unsigned long long>(opt.seed));
}

}  // namespace odlp::bench
