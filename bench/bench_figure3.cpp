// Reproduces Figure 3: ROUGE-1 and training time per epoch on MedDialog as a
// function of the number of synthesized dialogue sets generated per original
// buffered set (0..8).
//
// Paper's shape: ROUGE-1 gains saturate around six synthesized sets while
// training time per epoch keeps increasing (linearly in the training-set
// size). Both the measured wall-clock seconds per epoch and the analytic
// device-model seconds are reported.
#include "bench_common.h"
#include "devicesim/cost_model.h"

using namespace odlp;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Figure 3",
      "ROUGE-1 / training time per epoch vs synthesized sets per original",
      opt);

  std::vector<std::size_t> counts = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  if (opt.quick) counts = {0, 2, 4, 6};

  util::Series rouge_series("rouge1_vs_synth", "synth_per_set", "rouge1");
  util::Series time_series("epoch_time_vs_synth", "synth_per_set", "sec_per_epoch");
  util::Table table({"synth_per_set", "rouge1", "wall_sec_per_epoch",
                     "modeled_sec_per_epoch(A10)", "train_examples"});

  for (std::size_t k : counts) {
    exp::ExperimentConfig config = bench::standard_config(opt);
    config.dataset = "MedDialog";
    config.method = "Ours";
    config.synth_per_set = k;
    config.use_synthesis = k > 0;
    config.record_curve = false;
    const exp::ExperimentResult r = exp::run_experiment(config);

    // Analytic device model: one fine-tune round trains buffer*(1+k)
    // sequences of ~32 tokens for `epochs` epochs on the A10-class device.
    text::Tokenizer tok = exp::make_device_tokenizer();
    const llm::ModelConfig mc = exp::make_model_config(config, tok);
    const std::size_t per_round = config.buffer_bins * (1 + k);
    const auto modeled = devicesim::finetune_cost(mc, per_round, 32.0, 1);

    rouge_series.add(static_cast<double>(k), r.final_rouge);
    time_series.add(static_cast<double>(k), r.last_seconds_per_epoch);
    table.row()
        .cell(static_cast<long long>(k))
        .cell(r.final_rouge, 4)
        .cell(r.last_seconds_per_epoch, 3)
        .cell(modeled.modeled_seconds, 6)
        .cell(static_cast<long long>(per_round));
    std::fprintf(stderr, "  [figure3] k=%zu: rouge %.4f, %.3fs/epoch (%.0fs)\n",
                 k, r.final_rouge, r.last_seconds_per_epoch, r.wall_seconds);
  }

  std::printf("%s\n%s\n%s\n", rouge_series.to_string().c_str(),
              time_series.to_string(3).c_str(), table.to_string().c_str());
  return 0;
}
