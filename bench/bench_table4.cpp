// Reproduces Table 4 (first ablation): the framework restricted to a single
// quality metric (EOE-only / DSS-only / IDD-only) vs. the full three-metric
// policy, on all six datasets with the 2816 KB buffer geometry.
//
// Paper's claim: simultaneously considering all three metrics always
// achieves the highest ROUGE-1.
#include "bench_common.h"

using namespace odlp;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header("Table 4",
                      "single-metric ablation (EOE / DSS / IDD vs Ours)", opt);

  const std::vector<std::string> datasets = {"ALPACA",     "DOLLY",
                                             "Prosocial",  "Empathetic",
                                             "OPENORCA",   "MedDialog"};

  util::Table table({"dataset", "EOE", "DSS", "IDD", "Ours"});
  int ours_wins = 0;
  for (const auto& dataset : datasets) {
    table.row().cell(dataset);
    double best_single = 0.0, ours = 0.0;
    for (const auto& method : exp::ablation_methods()) {
      exp::ExperimentConfig config = bench::standard_config(opt);
      config.dataset = dataset;
      config.method = method;
      config.record_curve = false;
      const exp::ExperimentResult r = exp::run_experiment(config);
      table.cell(r.final_rouge, 4);
      if (method == "Ours") {
        ours = r.final_rouge;
      } else {
        best_single = std::max(best_single, r.final_rouge);
      }
      std::fprintf(stderr, "  [table4] %s / %s: %.4f (%.0fs)\n", dataset.c_str(),
                   method.c_str(), r.final_rouge, r.wall_seconds);
    }
    if (ours >= best_single) ++ours_wins;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("datasets where the full policy >= every single metric: %d/%zu\n",
              ours_wins, datasets.size());
  return 0;
}
