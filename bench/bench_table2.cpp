// Reproduces Table 2: ROUGE-1 of Random / FIFO / K-Center / Ours on all six
// datasets with the paper's 2816 KB (128-bin geometry) data buffer.
//
// Paper values (for shape comparison; absolute values differ because the
// substrate is a miniature LLM on synthetic streams, see EXPERIMENTS.md):
//   ALPACA     0.2457 0.2013 0.2384 0.3736
//   DOLLY      0.2417 0.1976 0.2403 0.3465
//   Prosocial  0.2375 0.2190 0.2147 0.3062
//   Empathetic 0.2352 0.1902 0.2098 0.3260
//   OPENORCA   0.2286 0.1833 0.2048 0.2813
//   MedDialog  0.2465 0.2074 0.2204 0.3429
#include "bench_common.h"
#include "eval/significance.h"
#include "util/strings.h"
#include "devicesim/memory_model.h"

using namespace odlp;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Table 2",
      "ROUGE-1 of selection methods on six datasets (2816 KB buffer geometry)",
      opt);

  const std::vector<std::string> datasets = {"ALPACA",     "DOLLY",
                                             "Prosocial",  "Empathetic",
                                             "OPENORCA",   "MedDialog"};

  util::Table table({"dataset", "Random", "FIFO", "K-Center", "Ours"});
  util::Table margins({"dataset", "best_baseline", "ours", "gain_pct",
                       "bootstrap_win", "delta_95ci"});
  for (const auto& dataset : datasets) {
    table.row().cell(dataset);
    double best_baseline = 0.0, ours = 0.0;
    std::vector<double> ours_per_set, best_per_set;
    for (const auto& method : exp::main_methods()) {
      exp::ExperimentConfig config = bench::standard_config(opt);
      config.dataset = dataset;
      config.method = method;
      config.record_curve = false;  // single final evaluation
      const exp::ExperimentResult r = exp::run_experiment(config);
      table.cell(r.final_rouge, 4);
      if (method == "Ours") {
        ours = r.final_rouge;
        ours_per_set = r.final_per_set;
      } else if (r.final_rouge > best_baseline) {
        best_baseline = r.final_rouge;
        best_per_set = r.final_per_set;
      }
      std::fprintf(stderr, "  [table2] %s / %s: %.4f (%.0fs)\n", dataset.c_str(),
                   method.c_str(), r.final_rouge, r.wall_seconds);
    }
    // Paired bootstrap: Ours vs the best baseline over the shared eval sets.
    util::Rng boot_rng(opt.seed ^ 0xb007);
    const eval::BootstrapResult boot =
        eval::paired_bootstrap(ours_per_set, best_per_set, boot_rng, 2000);
    margins.row()
        .cell(dataset)
        .cell(best_baseline, 4)
        .cell(ours, 4)
        .cell(best_baseline > 0 ? 100.0 * (ours - best_baseline) / best_baseline
                                : 0.0,
              1)
        .cell(boot.win_rate, 3)
        .cell(util::format("[%+.3f, %+.3f]", boot.delta_ci_low,
                           boot.delta_ci_high));
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "margin of Ours over the best baseline per dataset (bootstrap_win =\n"
      "fraction of 2000 paired resamples where Ours' mean is higher):\n%s\n",
      margins.to_string().c_str());
  std::printf("buffer geometry: 128 paper-bins x 22 KB = %.0f KB\n",
              devicesim::buffer_kb(128));
  return 0;
}
