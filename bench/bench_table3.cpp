// Reproduces Table 3: ROUGE-1 on MedDialog across buffer sizes, with the
// learning rate scaled ∝ sqrt(batch size) as in the paper.
//
// Paper ladder: {8, 16, 32, 64, 128, 256, 512} bins = {176 .. 11264} KB with
// lr {2, 3, 4, 5, 7, 10, 14}e-5. The model here is ~4x smaller than
// Llama-3B's regime, so the bin counts are scaled 4x down ({2 .. 128}) while
// the reported KB column keeps the paper's 22 KB-per-bin geometry of the
// corresponding paper rung. Reproduction targets: (a) Ours > every baseline
// at every buffer size, (b) Ours improves as the buffer grows.
#include <cmath>

#include "bench_common.h"
#include "util/strings.h"
#include "devicesim/memory_model.h"

using namespace odlp;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header("Table 3",
                      "ROUGE-1 on MedDialog vs buffer size (lr ∝ sqrt(bins))",
                      opt);

  // (our bins, paper bins) pairs, 4x scale.
  std::vector<std::pair<std::size_t, std::size_t>> sizes = {
      {2, 8}, {4, 16}, {8, 32}, {16, 64}, {32, 128}, {64, 256}, {128, 512}};
  if (opt.quick) {
    sizes = {{4, 16}, {16, 64}, {64, 256}};
  }

  util::Table table(
      {"buffer_kb(paper)", "bins(ours)", "lr", "Ours", "Random", "FIFO", "K-Center"});
  for (const auto& [ours_bins, paper_bins] : sizes) {
    exp::ExperimentConfig base = bench::standard_config(opt);
    base.dataset = "MedDialog";
    base.buffer_bins = ours_bins;
    base.record_curve = false;
    // Large buffers train proportionally more sequences per round; cap the
    // epoch count so the sweep's wall-clock stays bounded (lr scaling below
    // compensates, as in the paper's lr ∝ sqrt(batch) scheme).
    base.epochs = opt.quick ? base.epochs : 12;
    base.eval_repeats = 1;  // 28-cell sweep: keep the single-pass protocol
    // lr ∝ sqrt(bins), anchored at the default config's 32 bins.
    base.learning_rate *= std::sqrt(static_cast<double>(ours_bins) / 32.0);

    table.row()
        .cell(devicesim::buffer_kb(paper_bins), 0)
        .cell(static_cast<long long>(ours_bins))
        .cell(util::format("%.4g", static_cast<double>(base.learning_rate)));
    // Paper column order: Ours first.
    for (const char* method : {"Ours", "Random", "FIFO", "K-Center"}) {
      exp::ExperimentConfig config = base;
      config.method = method;
      const exp::ExperimentResult r = exp::run_experiment(config);
      table.cell(r.final_rouge, 4);
      std::fprintf(stderr, "  [table3] %zu bins / %s: %.4f (%.0fs)\n", ours_bins,
                   method, r.final_rouge, r.wall_seconds);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
