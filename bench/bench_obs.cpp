// bench_obs: observability-layer gates (DESIGN.md §15).
//
// Four hard gates, each a claim the observability v2 layer makes:
//
//   1. Journal wiring — a run_experiment with journal_out set produces an
//      OBSF journal whose engine.offer.us series is present, monotone in
//      count, and ends at the live registry's value.
//   2. Bit-exact round-trip — every sample of a full_snapshot() survives
//      JournalWriter -> read_journal with bit-identical counters, gauges,
//      and histogram summaries; a counter incremented by 100 between two
//      snapshots 1 s apart reads back a rate of exactly 100/s.
//   3. Scoped hot path — ScopedCounter::inc(handle) costs <= 1% of the
//      engine offer path (mean engine.score.us + engine.offer.us: what one
//      offered set costs end-to-end, scoring included).
//   4. Profiler — a disabled span costs <= 0.1% of a decode step, and a
//      sampling window over a decode+experiment workload yields folded
//      stacks naming tensor.gemm, decode, and engine.score.
//
// The bench writes results/BENCH_obs.json and exits non-zero if any gate
// fails.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/experiment.h"
#include "llm/decode_session.h"
#include "llm/minillm.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

using namespace odlp;
using bench::JsonWriter;
using bench::json_object;

namespace {

// Median-of-reps wall time for `fn`, in seconds. One warmup call.
template <typename Fn>
double timed_seconds(int reps, Fn&& fn) {
  fn();
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch sw;
    fn();
    times.push_back(sw.elapsed_seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

// Tiny experiment geometry shared by the journal-wiring and profiler
// sections: no-frills MedDialog run with a cached micro base model.
exp::ExperimentConfig tiny_experiment(const bench::BenchOptions& opt,
                                      const std::string& cache_dir) {
  exp::ExperimentConfig ec;
  ec.dataset = "MedDialog";
  ec.method = "Ours";
  ec.buffer_bins = 8;
  ec.stream_size = opt.quick ? 8 : 12;
  ec.finetune_interval = 4;
  ec.test_size = 48;
  ec.eval_subset = 4;
  ec.eval_repeats = 1;
  ec.epochs = 1;
  ec.synth_per_set = 1;
  ec.batch_size = 8;
  ec.model_dim = 32;
  ec.model_heads = 2;
  ec.model_layers = 1;
  ec.model_ff = 64;
  ec.max_seq_len = 32;
  ec.pretrain_examples = 16;
  ec.pretrain_epochs = 1;
  ec.record_curve = false;
  ec.eval_temperature = 0.0f;
  ec.cache_dir = cache_dir;
  ec.seed = opt.seed;
  return ec;
}

bool folded_contains(const obs::ProfileReport& rep, const char* needle) {
  for (const auto& [stack, n] : rep.folded) {
    (void)n;
    if (stack.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  std::string out_path = "results/BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const int reps = opt.quick ? 3 : 5;
  int failures = 0;

  const std::string scratch =
      "/tmp/odlp_bench_obs_" + std::to_string(::getpid());
  std::filesystem::create_directories(scratch + "/cache");

  bench::print_header("bench_obs",
                      "observability gates: journal, scoped metrics, profiler",
                      opt);

  JsonWriter json;
  json.text("bench", "bench_obs");
  json.integer("seed", static_cast<long long>(opt.seed));
  json.integer("quick", opt.quick ? 1 : 0);

  // -------------------------------------------------------------------------
  // 1. Journal wiring through run_experiment.
  // -------------------------------------------------------------------------
  exp::ExperimentConfig ec = tiny_experiment(opt, scratch + "/cache");
  ec.journal_out = scratch + "/exp_journal.obsf";
  util::Stopwatch exp_sw;
  exp::ExperimentResult er = exp::run_experiment(ec);
  const double exp_wall = exp_sw.elapsed_seconds();

  obs::Journal wired = obs::read_journal(ec.journal_out);
  const std::uintmax_t journal_bytes =
      std::filesystem::file_size(ec.journal_out);
  const obs::JournalSeries* offer = wired.find("engine.offer.us");
  std::uint64_t offer_first = 0, offer_last = 0;
  bool offer_monotone = true;
  if (offer != nullptr && !offer->points.empty()) {
    offer_first = offer->points.front().h_count;
    offer_last = offer->points.back().h_count;
    for (std::size_t i = 1; i < offer->points.size(); ++i) {
      if (offer->points[i].h_count < offer->points[i - 1].h_count) {
        offer_monotone = false;
      }
    }
  }
  const obs::MetricSample* offer_live =
      [] {
        static obs::MetricsSnapshot snap = obs::full_snapshot();
        return snap.find("engine.offer.us");
      }();
  const std::uint64_t offer_live_count =
      offer_live != nullptr ? offer_live->hist.count : 0;
  if (wired.snapshots < 3) {
    ++failures;
    std::fprintf(stderr, "FAIL: journal has %llu snapshots, expected >= 3\n",
                 static_cast<unsigned long long>(wired.snapshots));
  }
  // The series starts at the first snapshot where the metric existed (the
  // baseline snapshot predates the first offer), so points <= snapshots; it
  // must reach the final snapshot and end at the live registry value.
  if (offer == nullptr || offer->points.size() < 2 ||
      offer->points.back().snap != wired.snapshots - 1 || !offer_monotone ||
      offer_last != offer_live_count || offer_last == 0) {
    ++failures;
    std::fprintf(stderr,
                 "FAIL: engine.offer.us series broken (present=%d points=%zu "
                 "monotone=%d last=%llu live=%llu)\n",
                 offer != nullptr ? 1 : 0,
                 offer != nullptr ? offer->points.size() : 0,
                 offer_monotone ? 1 : 0,
                 static_cast<unsigned long long>(offer_last),
                 static_cast<unsigned long long>(offer_live_count));
  }
  std::printf(
      "journal   : %llu snapshots, %zu series, %llu bytes (%.0f B/snapshot), "
      "offer count %llu -> %llu\n",
      static_cast<unsigned long long>(wired.snapshots), wired.series.size(),
      static_cast<unsigned long long>(journal_bytes),
      wired.snapshots > 0
          ? static_cast<double>(journal_bytes) /
                static_cast<double>(wired.snapshots)
          : 0.0,
      static_cast<unsigned long long>(offer_first),
      static_cast<unsigned long long>(offer_last));
  json.raw("journal",
           json_object({{"snapshots", static_cast<double>(wired.snapshots)},
                        {"series", static_cast<double>(wired.series.size())},
                        {"file_bytes", static_cast<double>(journal_bytes)},
                        {"offer_count_last", static_cast<double>(offer_last)},
                        {"experiment_wall_s", exp_wall}}));

  // -------------------------------------------------------------------------
  // 2. Bit-exact round-trip + exact rate.
  // -------------------------------------------------------------------------
  obs::Counter& rt_counter = obs::registry().counter("benchobs.rt.total");
  rt_counter.inc(7);
  obs::MetricsSnapshot s1 = obs::full_snapshot();
  const std::string rt_path = scratch + "/roundtrip.obsf";
  {
    obs::JournalWriter jw(rt_path);
    jw.append(s1, 1'000'000);  // t = 1 s
    rt_counter.inc(100);
    obs::MetricsSnapshot s2 = obs::full_snapshot();
    jw.append(s2, 2'000'000);  // t = 2 s -> rate must be exactly 100/s
    jw.finish();
  }
  obs::Journal rt = obs::read_journal(rt_path);
  std::size_t mismatches = 0;
  for (const obs::MetricSample& s : s1.samples) {
    const obs::JournalSeries* ser = rt.find(s.name, s.scope);
    if (ser == nullptr || ser->points.size() != 2) {
      ++mismatches;
      continue;
    }
    const obs::JournalPoint& p = ser->points[0];
    bool ok = true;
    switch (s.kind) {
      case obs::MetricSample::Kind::kCounter:
        ok = p.counter == s.counter;
        break;
      case obs::MetricSample::Kind::kGauge:
        ok = bits_equal(p.value, s.gauge);
        break;
      case obs::MetricSample::Kind::kHistogram:
        ok = p.h_count == s.hist.count && bits_equal(p.h_sum, s.hist.sum) &&
             bits_equal(p.p50, s.hist.p50) && bits_equal(p.p95, s.hist.p95) &&
             bits_equal(p.p99, s.hist.p99);
        break;
    }
    if (!ok) {
      ++mismatches;
      std::fprintf(stderr, "FAIL: round-trip mismatch for %s{scope=%s}\n",
                   s.name.c_str(), s.scope.c_str());
    }
  }
  const obs::JournalSeries* rt_series = rt.find("benchobs.rt.total");
  const std::vector<double> rt_rates =
      rt_series != nullptr ? rt_series->rates() : std::vector<double>{};
  const bool rate_exact = rt_rates.size() == 1 && rt_rates[0] == 100.0;
  if (mismatches > 0 || !rate_exact) {
    ++failures;
    std::fprintf(stderr,
                 "FAIL: journal round-trip (%zu mismatches of %zu samples, "
                 "rate %s)\n",
                 mismatches, s1.samples.size(),
                 rate_exact ? "exact" : "wrong");
  }
  std::printf("roundtrip : %zu samples bit-exact (%zu mismatches), rate %s\n",
              s1.samples.size(), mismatches,
              rate_exact ? "100/s exact" : "WRONG");
  json.raw("roundtrip",
           json_object({{"samples", static_cast<double>(s1.samples.size())},
                        {"mismatches", static_cast<double>(mismatches)},
                        {"rate_exact", rate_exact ? 1.0 : 0.0}}));

  // -------------------------------------------------------------------------
  // 3. Scoped hot-path cost vs the offer path.
  // -------------------------------------------------------------------------
  obs::ScopeTable::Handle sh =
      obs::scoped_registry().scopes().acquire("user=benchobs");
  obs::ScopedCounter& sc =
      obs::scoped_registry().counter("benchobs.scoped.total");
  constexpr std::size_t kIncIters = 1 << 20;
  const double scoped_s = timed_seconds(reps, [&] {
    for (std::size_t i = 0; i < kIncIters; ++i) sc.inc(sh);
  });
  const double scoped_ns = scoped_s / static_cast<double>(kIncIters) * 1e9;
  // End-to-end cost of offering one set: scoring (embedding + quality
  // metrics) plus the policy decision. The scoped increments the fleet
  // layer adds per offer must be invisible against it.
  const obs::MetricsSnapshot after_exp = obs::full_snapshot();
  const obs::MetricSample* score_live = after_exp.find("engine.score.us");
  const double offer_path_us =
      (score_live != nullptr ? score_live->hist.mean : 0.0) +
      (offer_live != nullptr ? offer_live->hist.mean : 0.0);
  const double scoped_pct =
      offer_path_us > 0.0 ? scoped_ns / (offer_path_us * 1e3) * 100.0 : 1e9;
  if (offer_path_us <= 0.0 || scoped_pct > 1.0) {
    ++failures;
    std::fprintf(stderr,
                 "FAIL: scoped inc %.1f ns is %.3f%% of offer path %.1f us "
                 "(gate: <= 1%%)\n",
                 scoped_ns, scoped_pct, offer_path_us);
  }
  std::printf(
      "scoped    : inc %.1f ns/op = %.4f%% of offer path mean %.1f us\n",
      scoped_ns, scoped_pct, offer_path_us);
  json.raw("scoped_inc", json_object({{"ns_per_op", scoped_ns},
                                      {"offer_path_us", offer_path_us},
                                      {"pct_of_offer", scoped_pct}}));

  // -------------------------------------------------------------------------
  // 4a. Disabled-span cost vs a decode step (tracing and profiling off).
  // -------------------------------------------------------------------------
  constexpr std::size_t kSpanIters = 1 << 18;
  const double span_s = timed_seconds(reps, [&] {
    for (std::size_t i = 0; i < kSpanIters; ++i) {
      ODLP_TRACE_SCOPE("benchobs.span");
      volatile std::size_t sink = i;
      (void)sink;
    }
  });
  const double span_ns = span_s / static_cast<double>(kSpanIters) * 1e9;

  llm::ModelConfig mc;
  mc.vocab_size = 64;
  mc.dim = 32;
  mc.heads = 2;
  mc.layers = 2;
  mc.ff_hidden = 64;
  mc.max_seq_len = 32;
  llm::MiniLlm model(mc, 5);
  llm::DecodeSession session(model);
  constexpr std::size_t kDecodeSteps = 24;  // < max_seq_len = 32
  const double decode_s = timed_seconds(reps, [&] {
    session.reset();
    for (std::size_t i = 0; i < kDecodeSteps; ++i) {
      session.step(static_cast<int>(1 + (i % 32)));
    }
  });
  const double step_us = decode_s / static_cast<double>(kDecodeSteps) * 1e6;
  const double span_pct = step_us > 0.0 ? span_ns / (step_us * 1e3) * 100.0
                                        : 1e9;
  if (span_pct > 0.1) {
    ++failures;
    std::fprintf(stderr,
                 "FAIL: disabled span %.2f ns is %.4f%% of decode step "
                 "%.1f us (gate: <= 0.1%%)\n",
                 span_ns, span_pct, step_us);
  }
  std::printf(
      "span off  : %.2f ns/span = %.5f%% of decode step %.1f us\n", span_ns,
      span_pct, step_us);
  json.raw("span_overhead", json_object({{"span_ns", span_ns},
                                         {"decode_step_us", step_us},
                                         {"pct_of_step", span_pct}}));

  // -------------------------------------------------------------------------
  // 4b. Profiler window: decode loop + a second experiment; the folded
  // stacks must name the hot frames.
  // -------------------------------------------------------------------------
  const double hz = 509.0;  // prime, fast enough to sample a short window
  obs::Profiler prof(hz);
  prof.start();
  {
    // Guaranteed decode.step / tensor.gemm time...
    util::Stopwatch dsw;
    while (dsw.elapsed_seconds() < (opt.quick ? 0.25 : 0.5)) {
      session.reset();
      for (std::size_t i = 0; i < kDecodeSteps; ++i) {
        session.step(static_cast<int>(1 + (i % 32)));
      }
    }
    // ...plus a real pipeline run for engine.score et al. — stream-heavy
    // (cached base model) so scoring accumulates enough wall time to be
    // sampled: ~125 us/set x hundreds of sets >> the 2 ms tick period.
    exp::ExperimentConfig ep = tiny_experiment(opt, scratch + "/cache");
    ep.method = "Random";
    ep.stream_size = opt.quick ? 240 : 400;
    ep.finetune_interval = 120;
    ep.eval_subset = 2;
    exp::run_experiment(ep);
  }
  obs::ProfileReport rep = prof.stop();
  const bool has_gemm = folded_contains(rep, "tensor.gemm");
  const bool has_decode = folded_contains(rep, "decode.");
  const bool has_score = folded_contains(rep, "engine.score");
  if (rep.ticks == 0 || rep.samples == 0 || !has_gemm || !has_decode ||
      !has_score) {
    ++failures;
    std::fprintf(stderr,
                 "FAIL: profiler window (ticks=%llu samples=%llu gemm=%d "
                 "decode=%d score=%d)\n",
                 static_cast<unsigned long long>(rep.ticks),
                 static_cast<unsigned long long>(rep.samples),
                 has_gemm ? 1 : 0, has_decode ? 1 : 0, has_score ? 1 : 0);
    std::fprintf(stderr, "--- folded stacks ---\n%s",
                 rep.folded_text().c_str());
  }
  std::printf(
      "profiler  : %.0f Hz, %llu ticks, %llu samples, %zu frames "
      "(gemm=%d decode=%d score=%d)\n",
      rep.hz, static_cast<unsigned long long>(rep.ticks),
      static_cast<unsigned long long>(rep.samples), rep.folded.size(),
      has_gemm ? 1 : 0, has_decode ? 1 : 0, has_score ? 1 : 0);
  std::printf("%s", rep.top_table(5).c_str());
  obs::write_folded(rep, scratch + "/bench_obs.folded");
  json.raw("profiler",
           json_object({{"hz", rep.hz},
                        {"ticks", static_cast<double>(rep.ticks)},
                        {"samples", static_cast<double>(rep.samples)},
                        {"idle_ticks", static_cast<double>(rep.idle_ticks)},
                        {"frames", static_cast<double>(rep.folded.size())},
                        {"has_gemm", has_gemm ? 1.0 : 0.0},
                        {"has_decode", has_decode ? 1.0 : 0.0},
                        {"has_score", has_score ? 1.0 : 0.0}}));

  json.integer("failures", failures);
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_obs: cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::string body = json.finish();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  (void)er;

  std::filesystem::remove_all(scratch);
  if (failures > 0) {
    std::fprintf(stderr, "bench_obs: %d gate failure(s)\n", failures);
    return 1;
  }
  return 0;
}
