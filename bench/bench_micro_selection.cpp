// Micro-benchmarks (google-benchmark) for the data-selection path:
// quality-metric computation and per-set policy cost vs. buffer size —
// verifying the paper's claim (§3.2) that the replacement policy is linear
// in the buffer size.
#include <benchmark/benchmark.h>

#include "baselines/kcenter_policy.h"
#include "baselines/random_policy.h"
#include "core/policy.h"
#include "core/quality_metrics.h"
#include "data/generator.h"
#include "llm/embedding_extractor.h"
#include "text/normalize.h"

using namespace odlp;

namespace {

core::DataBuffer filled_buffer(std::size_t bins, util::Rng& rng) {
  core::DataBuffer buf(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    core::BufferEntry e;
    e.scores = {rng.uniform(), rng.uniform(), rng.uniform()};
    tensor::Tensor emb(1, 64);
    for (std::size_t j = 0; j < 64; ++j) emb.at(0, j) = static_cast<float>(rng.normal());
    e.embedding = std::move(emb);
    e.dominant_domain = rng.uniform_index(6);
    e.inserted_at = i;
    buf.add(std::move(e));
  }
  return buf;
}

core::Candidate random_candidate(util::Rng& rng) {
  core::Candidate c;
  c.scores = {rng.uniform(), rng.uniform(), rng.uniform()};
  tensor::Tensor emb(1, 64);
  for (std::size_t j = 0; j < 64; ++j) emb.at(0, j) = static_cast<float>(rng.normal());
  c.embedding = std::move(emb);
  c.dominant_domain = rng.uniform_index(6);
  return c;
}

void BM_QualityPolicyOffer(benchmark::State& state) {
  util::Rng rng(1);
  auto buf = filled_buffer(static_cast<std::size_t>(state.range(0)), rng);
  core::QualityReplacementPolicy policy;
  for (auto _ : state) {
    core::Candidate c = random_candidate(rng);
    benchmark::DoNotOptimize(policy.offer(c, buf, rng));
  }
  state.SetComplexityN(state.range(0));
}
// Linear complexity claim: report O(N) fit over buffer sizes.
BENCHMARK(BM_QualityPolicyOffer)->Range(8, 512)->Complexity(benchmark::oN);

void BM_KCenterOffer(benchmark::State& state) {
  util::Rng rng(2);
  auto buf = filled_buffer(static_cast<std::size_t>(state.range(0)), rng);
  baselines::KCenterPolicy policy;
  for (auto _ : state) {
    core::Candidate c = random_candidate(rng);
    benchmark::DoNotOptimize(policy.offer(c, buf, rng));
  }
  state.SetComplexityN(state.range(0));
}
// K-Center needs the closest buffered pair: quadratic per offered set.
BENCHMARK(BM_KCenterOffer)->Range(8, 128)->Complexity(benchmark::oNSquared);

void BM_EoeComputation(benchmark::State& state) {
  util::Rng rng(3);
  tensor::Tensor emb(static_cast<std::size_t>(state.range(0)), 64);
  for (std::size_t i = 0; i < emb.size(); ++i) {
    emb.data()[i] = static_cast<float>(rng.normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::entropy_of_embedding(emb));
  }
}
BENCHMARK(BM_EoeComputation)->Range(8, 256);

void BM_DssComputation(benchmark::State& state) {
  const auto& dict = lexicon::builtin_dictionary();
  data::UserOracle oracle(1, dict);
  data::Generator gen(data::meddialog_profile(), oracle, util::Rng(4));
  const auto set = gen.make_informative(0, 0);
  const auto tokens = text::normalize_and_split(set.text_block());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::domain_specific_score(tokens, dict));
  }
}
BENCHMARK(BM_DssComputation);

void BM_IddComputation(benchmark::State& state) {
  util::Rng rng(5);
  auto buf = filled_buffer(static_cast<std::size_t>(state.range(0)), rng);
  const auto same_domain = buf.embeddings_in_domain(0);
  tensor::Tensor emb(1, 64);
  for (std::size_t j = 0; j < 64; ++j) emb.at(0, j) = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::in_domain_dissimilarity(emb, same_domain));
  }
}
BENCHMARK(BM_IddComputation)->Range(8, 512);

void BM_BagOfWordsEmbedding(benchmark::State& state) {
  llm::BagOfWordsExtractor extractor(64);
  const std::string text =
      "what dose of benadryl should i inject into the arm today please";
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.token_embeddings(text));
  }
}
BENCHMARK(BM_BagOfWordsEmbedding);

}  // namespace

BENCHMARK_MAIN();
