// Multi-tenant fleet scheduler bench (DESIGN.md §13).
//
// Runs the SAME fleet workload twice — sequentially (exp::run_fleet, one
// full run_experiment per user) and concurrently (fleet::run_concurrent_fleet
// at --threads lanes with cross-user batched decode and an LRU adapter
// cache sized to half the fleet) — then verifies the concurrent per-user
// results are bit-identical to the sequential ones and reports the
// users/sec ratio. Traffic is record-once/replay-many: the sequential run
// records each user's dialogue stream to OBSF (io/stream_capture), and the
// concurrent run replays those captures instead of regenerating them, so
// the bit-identity check also covers the replay path.
//
// Where the speedup comes from on a single-core host: the concurrent path
// pays the tokenizer build, base-model materialization, and worker
// construction once instead of per user, and every user's evaluation
// generations share batched decode steps at the fleet width instead of one
// user's decode_batch — more rows per forward step, fewer steps per token
// (see bench_perf's decode-throughput rows for the per-width numbers).
// Extra threads add scheduling freedom, not compute.
//
// The workload is deliberately decode-heavy (learning-curve evaluation at
// every fine-tune round with several sampling repeats): this is the
// personalization deployment shape where per-user quality tracking, not
// training math, dominates the device budget.
//
// Exits non-zero — failing run_benches.sh — if any user's results diverge
// from the sequential reference or the users/sec ratio falls below 1.5x.
// Writes a machine-readable summary (merged into BENCH_perf.json by
// run_benches.sh) to results/BENCH_fleet.json; override with --out.
//
// Flags: --quick, --seed N, --threads N, --out PATH.
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench_common.h"
#include "exp/fleet.h"
#include "fleet/scheduler.h"
#include "obs/journal.h"
#include "obs/scope.h"
#include "util/stopwatch.h"

using namespace odlp;

namespace {

exp::FleetConfig fleet_workload(const bench::BenchOptions& opt,
                                std::size_t users,
                                const std::string& cache_dir,
                                const std::string& traffic_dir) {
  exp::FleetConfig fleet;
  fleet.num_devices = users;
  exp::ExperimentConfig& c = fleet.device_template;
  c.dataset = "MedDialog";
  c.buffer_bins = 8;
  c.stream_size = opt.quick ? 4 : 6;
  c.finetune_interval = opt.quick ? 2 : 3;  // 2 rounds per user either way
  c.test_size = 48;
  c.eval_subset = opt.quick ? 8 : 12;
  c.eval_repeats = opt.quick ? 6 : 8;
  c.epochs = 1;
  c.synth_per_set = 1;
  c.pretrain_examples = 16;
  c.pretrain_epochs = 1;
  c.record_curve = true;
  c.cache_dir = cache_dir;  // base pretraining cached for BOTH paths
  fleet.seed_base = opt.seed;
  fleet.shared_base_seed = opt.seed * 7919 + 17;
  // Record-once/replay-many: the sequential reference run records each
  // user's stream to <traffic_dir>/user-<i>.obsf, and the concurrent run
  // replays those recordings instead of regenerating the traffic — the
  // bit-identity check below therefore also covers the replay path.
  fleet.traffic_dir = traffic_dir;
  return fleet;
}

bool users_identical(const std::vector<exp::ExperimentResult>& seq,
                     const std::vector<exp::ExperimentResult>& conc) {
  if (seq.size() != conc.size()) return false;
  for (std::size_t u = 0; u < seq.size(); ++u) {
    const exp::ExperimentResult& a = seq[u];
    const exp::ExperimentResult& b = conc[u];
    if (a.final_rouge != b.final_rouge) return false;
    if (a.final_per_set != b.final_per_set) return false;
    if (a.curve.seen() != b.curve.seen()) return false;
    if (a.curve.rouge() != b.curve.rouge()) return false;
    if (a.engine_stats.seen != b.engine_stats.seen) return false;
    if (a.annotation_requests != b.annotation_requests) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  std::string out_path = "results/BENCH_fleet.json";
  std::size_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
  }
  bench::print_header(
      "fleet scheduler",
      "N concurrent users, cross-user batched decode, LRU adapter hot-swap",
      opt);

  const std::size_t users = opt.quick ? 6 : 8;
  const std::string scratch =
      "/tmp/odlp_bench_fleet_" + std::to_string(::getpid());
  std::filesystem::create_directories(scratch + "/cache");
  std::filesystem::create_directories(scratch + "/traffic");
  const exp::FleetConfig fleet =
      fleet_workload(opt, users, scratch + "/cache", scratch + "/traffic");

  std::printf("workload: %zu users x %zu sets (interval %zu), eval %zu sets x "
              "%zu repeats per round\n\n",
              users, fleet.device_template.stream_size,
              fleet.device_template.finetune_interval,
              fleet.device_template.eval_subset,
              fleet.device_template.eval_repeats);

  // --- Sequential reference: one dedicated engine per user, in a row.
  util::Stopwatch seq_sw;
  const exp::FleetResult seq = exp::run_fleet(fleet, "Ours");
  const double seq_seconds = seq_sw.elapsed_seconds();
  const double seq_ups = static_cast<double>(users) / seq_seconds;
  std::printf("sequential:  %6.2fs  %5.2f users/s\n", seq_seconds, seq_ups);

  // The reference run must have recorded every user's stream; the
  // concurrent run below replays these OBSF captures.
  std::size_t traffic_files = 0, traffic_bytes = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(scratch + "/traffic")) {
    ++traffic_files;
    traffic_bytes += static_cast<std::size_t>(e.file_size());
  }
  if (traffic_files != users) {
    std::fprintf(stderr,
                 "bench_fleet: FAIL — expected %zu recorded user streams, "
                 "found %zu\n",
                 users, traffic_files);
    return 1;
  }
  std::printf("traffic: recorded %zu user streams (%.1f KB); concurrent run "
              "replays them\n",
              traffic_files, static_cast<double>(traffic_bytes) / 1e3);

  // --- Concurrent: shared base, cache at half the fleet so adapter
  // hot-swap (spill + CRC-checked reload) is actually on the measured path.
  fleet::ConcurrentFleetConfig cc;
  cc.fleet = fleet;
  cc.method = "Ours";
  cc.threads = threads;
  cc.shards = 4;
  // Width 12 is this host's sweet spot: wider batches stop paying once the
  // per-step working set outgrows cache (see bench_perf decode rows).
  cc.decode_batch = std::min<std::size_t>(12, 2 * users);
  cc.adapter_cache_capacity = std::max<std::size_t>(2, users / 2);
  cc.spill_dir = scratch + "/spill";
  // Wave-boundary metrics journal: per-user trajectories land in OBSF rows.
  cc.journal_out = scratch + "/fleet_journal.obsf";
  const fleet::ConcurrentFleetResult conc = fleet::run_concurrent_fleet(cc);
  const fleet::FleetRunStats& st = conc.stats;
  std::printf("concurrent:  %6.2fs  %5.2f users/s  (%zu threads, %zu waves, "
              "decode x%.1f mean occupancy)\n",
              st.wall_seconds, st.users_per_second, threads, st.waves,
              st.decode_mean_occupancy);

  const double speedup =
      seq_ups > 0.0 ? st.users_per_second / seq_ups : 0.0;
  const bool identical = users_identical(seq.devices, conc.users);
  std::printf("\nspeedup: %.2fx   bit-identical per-user results: %s\n",
              speedup, identical ? "yes" : "NO");
  std::printf("cache: %.0f%% hit rate (%zu hits / %zu misses / %zu "
              "evictions)\n",
              100.0 * st.cache.hit_rate(), st.cache.hits, st.cache.misses,
              st.cache.evictions);
  std::printf("rounds: %zu total, mean %.3fs, p99 %.3fs; max %zu rounds "
              "behind, %zu starvation events\n",
              st.rounds, st.mean_round_seconds, st.p99_round_seconds,
              st.max_rounds_behind, st.starvation_events);
  std::printf("ledger: %.1f MB base + %zu adapters x %.1f KB resident\n",
              static_cast<double>(st.ledger.base.total_bytes()) / 1e6,
              st.ledger.resident_adapters,
              static_cast<double>(st.ledger.adapter_bytes_each) / 1e3);

  // --- Observability surface: per-user p99 spread from the scoped round
  // histogram, scope-table health, and the wave-boundary journal cost.
  double user_p99_min = 0.0, user_p99_max = 0.0;
  std::size_t scoped_users = 0;
  {
    obs::ScopedHistogram& sh =
        obs::scoped_registry().histogram("fleet.user.round.us");
    obs::ScopeTable& scopes = obs::scoped_registry().scopes();
    for (std::uint32_t s = 0; s < scopes.slots(); ++s) {
      if (scopes.label(s).rfind("user=", 0) != 0) continue;
      const obs::Histogram& h = sh.at(s);
      if (h.count() == 0) continue;
      const double p99 = h.summary().p99;
      if (scoped_users == 0) {
        user_p99_min = user_p99_max = p99;
      } else {
        user_p99_min = std::min(user_p99_min, p99);
        user_p99_max = std::max(user_p99_max, p99);
      }
      ++scoped_users;
    }
  }
  const double p99_spread =
      user_p99_min > 0.0 ? user_p99_max / user_p99_min : 0.0;
  std::printf("per-user p99: %.0f us .. %.0f us across %zu scoped users "
              "(%.2fx spread)\n",
              user_p99_min, user_p99_max, scoped_users, p99_spread);
  std::printf("scopes: %zu live labels, %zu demotions\n", st.scope_occupancy,
              st.scope_demotions);
  const double bytes_per_snapshot =
      st.journal_snapshots > 0 ? static_cast<double>(st.journal_file_bytes) /
                                     static_cast<double>(st.journal_snapshots)
                               : 0.0;
  std::printf("journal: %zu snapshots, %.1f KB on disk (%.0f bytes/"
              "snapshot)\n",
              st.journal_snapshots,
              static_cast<double>(st.journal_file_bytes) / 1e3,
              bytes_per_snapshot);

  bench::JsonWriter json;
  json.text("bench", "fleet_scheduler");
  json.text("mode", opt.quick ? "quick" : "full");
  json.integer("users", static_cast<long long>(users));
  json.integer("threads", static_cast<long long>(threads));
  json.integer("decode_batch", static_cast<long long>(cc.decode_batch));
  json.integer("adapter_cache_capacity",
               static_cast<long long>(cc.adapter_cache_capacity));
  json.number("sequential_seconds", seq_seconds);
  json.number("sequential_users_per_second", seq_ups);
  json.number("concurrent_seconds", st.wall_seconds);
  json.number("concurrent_users_per_second", st.users_per_second);
  json.number("speedup", speedup);
  json.integer("bit_identical", identical ? 1 : 0);
  json.raw("traffic",
           bench::json_object(
               {{"recorded_streams", static_cast<double>(traffic_files)},
                {"recorded_bytes", static_cast<double>(traffic_bytes)},
                {"replayed", 1.0}}));
  json.integer("waves", static_cast<long long>(st.waves));
  json.integer("rounds", static_cast<long long>(st.rounds));
  json.number("mean_round_seconds", st.mean_round_seconds);
  json.number("p99_round_seconds", st.p99_round_seconds);
  json.raw("adapter_cache",
           bench::json_object(
               {{"hits", static_cast<double>(st.cache.hits)},
                {"misses", static_cast<double>(st.cache.misses)},
                {"evictions", static_cast<double>(st.cache.evictions)},
                {"hit_rate", st.cache.hit_rate()}}));
  json.raw("decode",
           bench::json_object(
               {{"steps", static_cast<double>(st.decode_steps)},
                {"mean_occupancy", st.decode_mean_occupancy},
                {"peak_occupancy",
                 static_cast<double>(st.decode_peak_occupancy)}}));
  json.raw("fairness",
           bench::json_object(
               {{"starvation_events",
                 static_cast<double>(st.starvation_events)},
                {"max_rounds_behind",
                 static_cast<double>(st.max_rounds_behind)},
                {"faults", static_cast<double>(st.faults)}}));
  json.raw("obs",
           bench::json_object(
               {{"scoped_users", static_cast<double>(scoped_users)},
                {"user_p99_min_us", user_p99_min},
                {"user_p99_max_us", user_p99_max},
                {"user_p99_spread", p99_spread},
                {"scope_occupancy", static_cast<double>(st.scope_occupancy)},
                {"scope_demotions", static_cast<double>(st.scope_demotions)},
                {"journal_snapshots",
                 static_cast<double>(st.journal_snapshots)},
                {"journal_file_bytes",
                 static_cast<double>(st.journal_file_bytes)},
                {"journal_bytes_per_snapshot", bytes_per_snapshot}}));
  json.raw("ledger",
           bench::json_object(
               {{"base_bytes", static_cast<double>(st.ledger.base.total_bytes())},
                {"adapter_bytes_each",
                 static_cast<double>(st.ledger.adapter_bytes_each)},
                {"resident_adapters",
                 static_cast<double>(st.ledger.resident_adapters)},
                {"total_bytes", static_cast<double>(st.ledger.total_bytes())}}));
  const std::string body = json.finish();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_fleet: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  std::filesystem::remove_all(scratch);

  if (!identical) {
    std::fprintf(stderr,
                 "bench_fleet: FAIL — concurrent results diverge from the "
                 "sequential reference\n");
    return 1;
  }
  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "bench_fleet: FAIL — %.2fx users/sec is below the 1.5x "
                 "floor at %zu threads\n",
                 speedup, threads);
    return 1;
  }
  return 0;
}
