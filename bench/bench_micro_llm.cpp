// Micro-benchmarks (google-benchmark) for the MiniLlm substrate: forward /
// backward / generation throughput and the LoRA parameter-efficiency ratio
// the paper's fine-tuning configuration relies on.
#include <benchmark/benchmark.h>

#include "llm/minillm.h"
#include "llm/sampler.h"
#include "nn/loss.h"

using namespace odlp;

namespace {

llm::ModelConfig bench_config() {
  llm::ModelConfig mc;
  mc.vocab_size = 600;
  mc.dim = 48;
  mc.heads = 4;
  mc.layers = 2;
  mc.ff_hidden = 96;
  mc.max_seq_len = 64;
  return mc;
}

std::vector<int> sequence(std::size_t len) {
  std::vector<int> ids(len);
  for (std::size_t i = 0; i < len; ++i) ids[i] = static_cast<int>(5 + i % 500);
  return ids;
}

void BM_Forward(benchmark::State& state) {
  llm::MiniLlm model(bench_config(), 1);
  const auto ids = sequence(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(ids, false));
  }
  state.counters["flops"] = bench_config().forward_flops(ids.size());
}
BENCHMARK(BM_Forward)->Arg(16)->Arg(32)->Arg(64);

void BM_ForwardBackward(benchmark::State& state) {
  llm::MiniLlm model(bench_config(), 2);
  const auto ids = sequence(static_cast<std::size_t>(state.range(0)));
  std::vector<int> targets(ids.begin() + 1, ids.end());
  targets.push_back(-1);
  for (auto _ : state) {
    auto logits = model.forward(ids, true);
    auto ce = nn::cross_entropy(logits, targets);
    model.backward(ce.dlogits);
    benchmark::DoNotOptimize(ce.loss);
  }
}
BENCHMARK(BM_ForwardBackward)->Arg(16)->Arg(32)->Arg(64);

void BM_ForwardBackwardLora(benchmark::State& state) {
  llm::MiniLlm model(bench_config(), 3);
  model.attach_lora(nn::LoraConfig{});
  const auto ids = sequence(static_cast<std::size_t>(state.range(0)));
  std::vector<int> targets(ids.begin() + 1, ids.end());
  targets.push_back(-1);
  for (auto _ : state) {
    auto logits = model.forward(ids, true);
    auto ce = nn::cross_entropy(logits, targets);
    model.backward(ce.dlogits);
    benchmark::DoNotOptimize(ce.loss);
  }
  state.counters["trainable"] =
      static_cast<double>(model.num_trainable_parameters());
  state.counters["total"] = static_cast<double>(model.num_parameters());
}
BENCHMARK(BM_ForwardBackwardLora)->Arg(32);

void BM_Generate(benchmark::State& state) {
  llm::MiniLlm model(bench_config(), 4);
  llm::SamplerConfig sc;
  sc.temperature = 0.5f;
  sc.max_new_tokens = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    llm::Sampler sampler(model, sc, util::Rng(5));
    benchmark::DoNotOptimize(sampler.generate_ids(sequence(8)));
  }
}
BENCHMARK(BM_Generate)->Arg(8)->Arg(16);

void BM_HiddenStatesEmbedding(benchmark::State& state) {
  llm::MiniLlm model(bench_config(), 6);
  const auto ids = sequence(24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.hidden_states(ids));
  }
}
BENCHMARK(BM_HiddenStatesEmbedding);

}  // namespace

BENCHMARK_MAIN();
