// Significance testing, perplexity, and stream transforms.
#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/stream.h"
#include "data/stream_transforms.h"
#include "eval/perplexity.h"
#include "eval/significance.h"
#include "exp/experiment.h"
#include "llm/trainer.h"

namespace odlp {
namespace {

// --------------------------- significance ---------------------------------

TEST(PairedBootstrap, ClearWinnerHasHighWinRate) {
  std::vector<double> a, b;
  util::Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    const double base = rng.uniform();
    b.push_back(base);
    a.push_back(base + 0.2 + rng.normal(0.0, 0.02));
  }
  util::Rng boot(2);
  const auto r = eval::paired_bootstrap(a, b, boot, 1000);
  EXPECT_GT(r.win_rate, 0.99);
  EXPECT_GT(r.delta_ci_low, 0.1);
  EXPECT_NEAR(r.mean_delta, 0.2, 0.05);
}

TEST(PairedBootstrap, IdenticalVectorsAreATie) {
  std::vector<double> a = {0.1, 0.5, 0.9, 0.3};
  util::Rng boot(3);
  const auto r = eval::paired_bootstrap(a, a, boot, 500);
  EXPECT_DOUBLE_EQ(r.mean_delta, 0.0);
  EXPECT_DOUBLE_EQ(r.win_rate, 0.0);  // delta never strictly positive
  EXPECT_DOUBLE_EQ(r.delta_ci_low, 0.0);
  EXPECT_DOUBLE_EQ(r.delta_ci_high, 0.0);
}

TEST(PairedBootstrap, NoisyEqualMethodsHaveMiddlingWinRate) {
  std::vector<double> a, b;
  util::Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform());
  }
  util::Rng boot(5);
  const auto r = eval::paired_bootstrap(a, b, boot, 1500);
  EXPECT_GT(r.win_rate, 0.05);
  EXPECT_LT(r.win_rate, 0.95);
  EXPECT_LT(r.delta_ci_low, 0.0);
  EXPECT_GT(r.delta_ci_high, 0.0);
}

TEST(PairedBootstrap, DeterministicUnderSeed) {
  std::vector<double> a = {0.2, 0.4, 0.6}, b = {0.1, 0.5, 0.4};
  util::Rng r1(6), r2(6);
  const auto x = eval::paired_bootstrap(a, b, r1, 300);
  const auto y = eval::paired_bootstrap(a, b, r2, 300);
  EXPECT_DOUBLE_EQ(x.win_rate, y.win_rate);
  EXPECT_DOUBLE_EQ(x.delta_ci_low, y.delta_ci_low);
}

TEST(SignTest, AllWinsIsSignificant) {
  std::vector<double> a = {1, 1, 1, 1, 1, 1, 1, 1};
  std::vector<double> b = {0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_LT(eval::sign_test_p_value(a, b), 0.01);
}

TEST(SignTest, BalancedWinsNotSignificant) {
  std::vector<double> a = {1, 0, 1, 0, 1, 0};
  std::vector<double> b = {0, 1, 0, 1, 0, 1};
  EXPECT_GT(eval::sign_test_p_value(a, b), 0.5);
}

TEST(SignTest, AllTiesReturnsOne) {
  std::vector<double> a = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(eval::sign_test_p_value(a, a), 1.0);
}

TEST(SignTest, MatchesKnownBinomial) {
  // 6 wins, 0 losses: two-sided p = 2 * (1/2)^6 = 0.03125.
  std::vector<double> a = {1, 1, 1, 1, 1, 1};
  std::vector<double> b = {0, 0, 0, 0, 0, 0};
  EXPECT_NEAR(eval::sign_test_p_value(a, b), 2.0 / 64.0, 1e-9);
}

// --------------------------- perplexity -----------------------------------

TEST(Perplexity, UntrainedModelNearUniform) {
  llm::ModelConfig mc;
  mc.vocab_size = 32;
  mc.dim = 8;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 16;
  mc.max_seq_len = 12;
  llm::MiniLlm model(mc, 9);
  std::vector<text::Tokenizer::EncodedDialogue> corpus;
  text::Tokenizer::EncodedDialogue ex;
  ex.input = {2, 5, 7, 9, 3};
  ex.targets = {5, 7, 9, 3, -1};
  corpus.push_back(ex);
  const auto r = eval::corpus_perplexity(model, corpus);
  EXPECT_EQ(r.sequences, 1u);
  EXPECT_EQ(r.tokens, 4u);
  // A freshly initialized LM sits near uniform over the vocab.
  EXPECT_GT(r.perplexity, 10.0);
  EXPECT_LT(r.perplexity, 100.0);
}

TEST(Perplexity, DropsAfterTraining) {
  llm::ModelConfig mc;
  mc.vocab_size = 16;
  mc.dim = 8;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 16;
  mc.max_seq_len = 12;
  llm::MiniLlm model(mc, 10);
  std::vector<text::Tokenizer::EncodedDialogue> corpus;
  text::Tokenizer::EncodedDialogue ex;
  ex.input = {2, 5, 7, 3};
  ex.targets = {5, 7, 3, -1};
  corpus.push_back(ex);
  const double before = eval::corpus_perplexity(model, corpus).perplexity;
  llm::TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 1;
  tc.learning_rate = 1e-2f;
  llm::Trainer trainer(model, tc, util::Rng(11));
  trainer.fine_tune(corpus);
  const double after = eval::corpus_perplexity(model, corpus).perplexity;
  EXPECT_LT(after, before * 0.5);
}

TEST(Perplexity, EmptyCorpus) {
  llm::ModelConfig mc;
  mc.vocab_size = 16;
  mc.dim = 8;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 16;
  llm::MiniLlm model(mc, 12);
  const auto r = eval::corpus_perplexity(model, {});
  EXPECT_EQ(r.tokens, 0u);
  EXPECT_DOUBLE_EQ(r.perplexity, 1.0);
}

// ------------------------- stream transforms ------------------------------


data::DialogueStream sample_stream(std::size_t n, std::uint64_t seed) {
  data::UserOracle oracle(seed, lexicon::builtin_dictionary());
  data::Generator gen(data::meddialog_profile(), oracle, util::Rng(seed));
  return gen.generate(n, 0).stream;
}

TEST(StreamTransforms, InterleaveRoundRobinsAndRenumbers) {
  const auto a = sample_stream(4, 1);
  const auto b = sample_stream(2, 2);
  const auto merged = data::interleave({&a, &b});
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_EQ(merged[0].question, a[0].question);
  EXPECT_EQ(merged[1].question, b[0].question);
  EXPECT_EQ(merged[2].question, a[1].question);
  EXPECT_EQ(merged[3].question, b[1].question);
  EXPECT_EQ(merged[4].question, a[2].question);  // b exhausted
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].stream_position, i);
  }
}

TEST(StreamTransforms, InjectNoiseIncreasesNoiseRate) {
  auto stream = sample_stream(100, 3);
  data::UserOracle oracle(3, lexicon::builtin_dictionary());
  util::Rng rng(4);
  const auto noisy = data::inject_noise(stream, 0.5, oracle, rng);
  EXPECT_GT(noisy.size(), stream.size());
  const auto before = data::compute_stream_stats(stream);
  const auto after = data::compute_stream_stats(noisy);
  EXPECT_GT(after.noise, before.noise);
}

TEST(StreamTransforms, ShuffleDestroysTemporalCorrelation) {
  auto stream = sample_stream(400, 5);
  util::Rng rng(6);
  const auto iid = data::shuffled(stream, rng);
  const auto before = data::compute_stream_stats(stream);
  const auto after = data::compute_stream_stats(iid);
  EXPECT_EQ(after.total, before.total);
  EXPECT_EQ(after.noise, before.noise);
  EXPECT_LT(after.subtopic_repeat_rate, before.subtopic_repeat_rate * 0.5);
}

TEST(StreamTransforms, EveryKthSubsamples) {
  const auto stream = sample_stream(10, 7);
  const auto half = data::every_kth(stream, 2);
  ASSERT_EQ(half.size(), 5u);
  EXPECT_EQ(half[1].question, stream[2].question);
  const auto all = data::every_kth(stream, 1);
  EXPECT_EQ(all.size(), stream.size());
}

TEST(StreamTransforms, ReversedFlipsOrder) {
  const auto stream = sample_stream(5, 8);
  const auto rev = data::reversed(stream);
  ASSERT_EQ(rev.size(), 5u);
  EXPECT_EQ(rev.front().question, stream.back().question);
  EXPECT_EQ(rev.front().stream_position, 0u);
}

}  // namespace
}  // namespace odlp
