// Finite-difference validation of every hand-written backward pass, from
// individual kernels up to the full MiniLlm language-model loss.
#include <gtest/gtest.h>

#include "llm/minillm.h"
#include "nn/attention.h"
#include "nn/block.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace odlp {
namespace {

using tensor::Tensor;

Tensor random_tensor(std::size_t r, std::size_t c, util::Rng& rng, double s = 1.0) {
  Tensor t(r, c);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(0.0, s));
  }
  return t;
}

// Scalar "loss": weighted sum of an output tensor with fixed coefficients,
// making dLoss/dOutput == the coefficients.
Tensor coeffs_for(std::size_t r, std::size_t c, util::Rng& rng) {
  return random_tensor(r, c, rng, 0.7);
}

double weighted_sum(const Tensor& out, const Tensor& coeffs) {
  double acc = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    acc += static_cast<double>(out.data()[i]) * coeffs.data()[i];
  }
  return acc;
}

constexpr float kTol = 2e-2f;  // float32 + fd epsilon noise

TEST(GradCheck, MatmulLeftAndRight) {
  util::Rng rng(1);
  Tensor a = random_tensor(3, 4, rng), b = random_tensor(4, 5, rng);
  Tensor coeffs = coeffs_for(3, 5, rng);
  Tensor da(3, 4, 0.0f), db(4, 5, 0.0f);
  tensor::matmul_backward(a, b, coeffs, da, db);

  auto loss_fn = [&] { return weighted_sum(tensor::matmul(a, b), coeffs); };
  auto ra = tensor::check_gradient(a, da, loss_fn, 4e-3f);
  EXPECT_LT(ra.max_rel_error, kTol);
  auto rb = tensor::check_gradient(b, db, loss_fn, 4e-3f);
  EXPECT_LT(rb.max_rel_error, kTol);
}

TEST(GradCheck, SoftmaxRows) {
  util::Rng rng(2);
  Tensor x = random_tensor(2, 6, rng);
  Tensor coeffs = coeffs_for(2, 6, rng);
  Tensor p = tensor::softmax_rows(x);
  Tensor dx = tensor::softmax_rows_backward(p, coeffs);
  auto loss_fn = [&] { return weighted_sum(tensor::softmax_rows(x), coeffs); };
  auto r = tensor::check_gradient(x, dx, loss_fn, 4e-3f, 12);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, Gelu) {
  util::Rng rng(3);
  Tensor x = random_tensor(2, 8, rng);
  Tensor coeffs = coeffs_for(2, 8, rng);
  Tensor dx = tensor::gelu_backward(x, coeffs);
  auto loss_fn = [&] { return weighted_sum(tensor::gelu(x), coeffs); };
  auto r = tensor::check_gradient(x, dx, loss_fn, 4e-3f, 16);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, LayerNormRows) {
  util::Rng rng(4);
  Tensor x = random_tensor(2, 8, rng);
  Tensor coeffs = coeffs_for(2, 8, rng);
  tensor::LayerNormCache cache;
  tensor::layernorm_rows(x, 1e-5f, &cache);
  Tensor dx = tensor::layernorm_rows_backward(coeffs, cache);
  auto loss_fn = [&] {
    return weighted_sum(tensor::layernorm_rows(x, 1e-5f, nullptr), coeffs);
  };
  auto r = tensor::check_gradient(x, dx, loss_fn, 4e-3f, 16);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, LinearWeightBiasAndInput) {
  util::Rng rng(5);
  nn::Linear lin("lin", 4, 3, rng);
  Tensor x = random_tensor(2, 4, rng);
  Tensor coeffs = coeffs_for(2, 3, rng);

  nn::ParameterList params;
  lin.collect_parameters(params);
  nn::zero_grads(params);
  lin.forward(x, false);
  lin.backward(coeffs);

  auto loss_fn = [&] { return weighted_sum(lin.forward(x, false), coeffs); };
  for (nn::Parameter* p : params) {
    auto r = tensor::check_gradient(p->value, p->grad, loss_fn, 4e-3f, 12);
    EXPECT_LT(r.max_rel_error, kTol) << p->name;
  }
}

TEST(GradCheck, LinearInputGradient) {
  util::Rng rng(6);
  nn::Linear lin("lin", 4, 3, rng);
  Tensor x = random_tensor(2, 4, rng);
  Tensor coeffs = coeffs_for(2, 3, rng);
  lin.forward(x, false);
  Tensor dx = lin.backward(coeffs);
  auto loss_fn = [&] { return weighted_sum(lin.forward(x, false), coeffs); };
  auto r = tensor::check_gradient(x, dx, loss_fn, 4e-3f, 12);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, LoraAdapters) {
  util::Rng rng(7);
  nn::Linear lin("lin", 5, 4, rng);
  nn::LoraConfig lc;
  lc.rank = 2;
  lc.dropout = 0.0f;  // disable dropout for exact finite differences
  lin.attach_lora(lc, rng);
  // Make B nonzero so its gradient path is exercised nontrivially.
  nn::ParameterList params;
  lin.collect_parameters(params);
  for (nn::Parameter* p : params) {
    if (p->name.find("lora_b") != std::string::npos) {
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        p->value.data()[i] = static_cast<float>(rng.normal(0.0, 0.1));
      }
    }
  }
  Tensor x = random_tensor(3, 5, rng);
  Tensor coeffs = coeffs_for(3, 4, rng);
  nn::zero_grads(params);
  lin.forward(x, true);
  lin.backward(coeffs);
  auto loss_fn = [&] { return weighted_sum(lin.forward(x, true), coeffs); };
  for (nn::Parameter* p : params) {
    if (!p->trainable) continue;  // frozen base W/b accumulate no gradient
    auto r = tensor::check_gradient(p->value, p->grad, loss_fn, 4e-3f, 12);
    EXPECT_LT(r.max_rel_error, kTol) << p->name;
  }
}

TEST(GradCheck, AttentionAllParameters) {
  util::Rng rng(8);
  nn::MultiHeadSelfAttention attn("attn", 8, 2, rng);
  Tensor x = random_tensor(4, 8, rng);
  Tensor coeffs = coeffs_for(4, 8, rng);
  nn::ParameterList params;
  attn.collect_parameters(params);
  nn::zero_grads(params);
  attn.forward(x, false);
  attn.backward(coeffs);
  auto loss_fn = [&] { return weighted_sum(attn.forward(x, false), coeffs); };
  for (nn::Parameter* p : params) {
    auto r = tensor::check_gradient(p->value, p->grad, loss_fn, 4e-3f, 8);
    EXPECT_LT(r.max_rel_error, kTol) << p->name;
  }
}

TEST(GradCheck, AttentionInputGradient) {
  util::Rng rng(9);
  nn::MultiHeadSelfAttention attn("attn", 8, 2, rng);
  Tensor x = random_tensor(3, 8, rng);
  Tensor coeffs = coeffs_for(3, 8, rng);
  attn.forward(x, false);
  Tensor dx = attn.backward(coeffs);
  auto loss_fn = [&] { return weighted_sum(attn.forward(x, false), coeffs); };
  auto r = tensor::check_gradient(x, dx, loss_fn, 4e-3f, 16);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, TransformerBlock) {
  util::Rng rng(10);
  nn::TransformerBlock block("blk", 8, 2, 16, rng);
  Tensor x = random_tensor(3, 8, rng);
  Tensor coeffs = coeffs_for(3, 8, rng);
  nn::ParameterList params;
  block.collect_parameters(params);
  nn::zero_grads(params);
  block.forward(x, false);
  Tensor dx = block.backward(coeffs);
  auto loss_fn = [&] { return weighted_sum(block.forward(x, false), coeffs); };
  // Probe a subset of parameters (block has many); input gradient too.
  int checked = 0;
  for (nn::Parameter* p : params) {
    auto r = tensor::check_gradient(p->value, p->grad, loss_fn, 4e-3f, 4);
    EXPECT_LT(r.max_rel_error, kTol) << p->name;
    if (++checked >= 6) break;
  }
  auto rx = tensor::check_gradient(x, dx, loss_fn, 4e-3f, 8);
  EXPECT_LT(rx.max_rel_error, kTol);
}

TEST(GradCheck, CrossEntropyLogitsGradient) {
  util::Rng rng(11);
  Tensor logits = random_tensor(3, 5, rng);
  std::vector<int> targets = {2, -1, 4};  // middle position masked
  auto ce = nn::cross_entropy(logits, targets);
  auto loss_fn = [&] { return nn::cross_entropy(logits, targets).loss; };
  auto r = tensor::check_gradient(logits, ce.dlogits, loss_fn, 4e-3f, 15);
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, FullModelLanguageModelLoss) {
  llm::ModelConfig mc;
  mc.vocab_size = 12;
  mc.dim = 8;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 16;
  mc.max_seq_len = 8;
  llm::MiniLlm model(mc, 99);
  const std::vector<int> ids = {2, 5, 7, 6, 3};
  const std::vector<int> targets = {5, 7, 6, 3, -1};

  nn::ParameterList params = model.parameters();
  nn::zero_grads(params);
  Tensor logits = model.forward(ids, false);
  auto ce = nn::cross_entropy(logits, targets);
  model.backward(ce.dlogits);

  auto loss_fn = [&] {
    return nn::cross_entropy(model.forward(ids, false), targets).loss;
  };
  // Spot-check a few parameter tensors end to end.
  int checked = 0;
  for (nn::Parameter* p : params) {
    auto r = tensor::check_gradient(p->value, p->grad, loss_fn, 1e-2f, 3);
    EXPECT_LT(r.max_rel_error, 6e-2f) << p->name;
    if (++checked >= 8) break;
  }
}

}  // namespace
}  // namespace odlp
