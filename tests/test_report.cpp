#include <gtest/gtest.h>

#include "exp/report.h"

namespace odlp::exp {
namespace {

TEST(Report, ExperimentMarkdownContainsHeadline) {
  ExperimentResult r;
  r.dataset = "MedDialog";
  r.method = "Ours";
  r.final_rouge = 0.345;
  r.annotation_requests = 50;
  r.engine_stats.seen = 240;
  r.engine_stats.finetune_rounds = 3;
  r.curve = eval::LearningCurve("Ours");
  r.curve.record(0, 0.1);
  r.curve.record(80, 0.3);
  const std::string md = to_markdown(r);
  EXPECT_NE(md.find("### MedDialog / Ours"), std::string::npos);
  EXPECT_NE(md.find("**0.3450**"), std::string::npos);
  EXPECT_NE(md.find("| 80 | 0.3000 |"), std::string::npos);
  EXPECT_NE(md.find("50 of 240"), std::string::npos);
}

TEST(Report, GridBoldsRowWinner) {
  const std::string md = grid_to_markdown(
      {"A", "B"}, {"m1", "m2"}, {{0.1, 0.3}, {0.4, 0.2}}, 2);
  EXPECT_NE(md.find("**0.30**"), std::string::npos);
  EXPECT_NE(md.find("**0.40**"), std::string::npos);
  EXPECT_NE(md.find("| A | 0.10 | **0.30** |"), std::string::npos);
}

TEST(Report, GridValidatesShapes) {
  EXPECT_THROW(grid_to_markdown({"A"}, {"m"}, {}), std::invalid_argument);
  EXPECT_THROW(grid_to_markdown({"A"}, {"m1", "m2"}, {{0.1}}),
               std::invalid_argument);
}

TEST(Report, FleetMarkdown) {
  FleetResult f;
  f.method = "Ours";
  f.mean_rouge = 0.3;
  f.min_rouge = 0.2;
  f.max_rouge = 0.4;
  f.stddev_rouge = 0.05;
  f.wins = 3;
  const std::string md = fleet_to_markdown({f});
  EXPECT_NE(md.find("| Ours | 0.3000 | 0.2000 | 0.4000 | 0.0500 | 3 |"),
            std::string::npos);
}

}  // namespace
}  // namespace odlp::exp
