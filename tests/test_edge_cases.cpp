// Edge cases and interaction paths not covered by the per-module suites:
// LoRA dropout behaviour, engine + LlmSynthesizer integration, long-input
// truncation through the whole stack, and misc boundary conditions.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/generator.h"
#include "exp/experiment.h"
#include "llm/sampler.h"

namespace odlp {
namespace {

TEST(LoraDropout, TrainingPathIsStochasticInferenceIsNot) {
  util::Rng rng(1);
  nn::Linear lin("l", 8, 8, rng);
  nn::LoraConfig lc;
  lc.dropout = 0.5f;
  lin.attach_lora(lc, rng);
  // Make the adapter non-trivial so dropout visibly changes outputs.
  nn::ParameterList params;
  lin.collect_parameters(params);
  for (nn::Parameter* p : params) {
    if (p->name.find("lora_b") != std::string::npos) {
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        p->value.data()[i] = 0.5f;
      }
    }
  }
  tensor::Tensor x(2, 8, 1.0f);
  // Inference: deterministic.
  const tensor::Tensor a = lin.forward(x, false);
  const tensor::Tensor b = lin.forward(x, false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
  // Training: dropout masks differ between calls.
  const tensor::Tensor t1 = lin.forward(x, true);
  const tensor::Tensor t2 = lin.forward(x, true);
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < t1.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(t1.data()[i] - t2.data()[i]));
  }
  EXPECT_GT(max_diff, 1e-6f);
}

TEST(EngineWithLlmSynthesizer, FullLoopRuns) {
  // The faithful LLM-prompted synthesis path, end to end through the engine.
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::ModelConfig mc;
  mc.vocab_size = tokenizer.vocab().size();
  mc.dim = 16;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 32;
  mc.max_seq_len = 48;
  llm::MiniLlm model(mc, 2);
  llm::BagOfWordsExtractor extractor(16);
  data::UserOracle oracle(3, lexicon::builtin_dictionary());

  llm::SamplerConfig synth_sc;
  synth_sc.temperature = 1.0f;
  synth_sc.max_new_tokens = 6;
  core::SanityCheckConfig sanity;
  sanity.threshold = 0.0;  // accept whatever the untrained model emits

  core::EngineConfig ec;
  ec.buffer_bins = 3;
  ec.finetune_interval = 0;
  ec.synth_per_set = 2;
  ec.train.epochs = 1;
  core::PersonalizationEngine engine(
      model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
      exp::make_policy("FIFO"),
      std::make_unique<core::LlmSynthesizer>(model, tokenizer, synth_sc,
                                             util::Rng(4), sanity),
      ec, util::Rng(5));

  data::Generator gen(data::meddialog_profile(), oracle, util::Rng(6));
  for (int i = 0; i < 3; ++i) engine.process(gen.make_informative(0, 0));
  engine.finetune_now();
  EXPECT_EQ(engine.stats().finetune_rounds, 1u);
  EXPECT_GT(engine.stats().synthesis.generated, 0u);
}

TEST(LongInput, TruncationFlowsThroughEngineScoring) {
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::ModelConfig mc;
  mc.vocab_size = tokenizer.vocab().size();
  mc.dim = 16;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 32;
  mc.max_seq_len = 16;  // very tight budget
  llm::MiniLlm model(mc, 7);
  llm::LlmEmbeddingExtractor extractor(model, tokenizer);
  data::UserOracle oracle(8, lexicon::builtin_dictionary());
  core::EngineConfig ec;
  ec.buffer_bins = 2;
  ec.finetune_interval = 0;
  ec.max_seq_len = 16;
  core::PersonalizationEngine engine(
      model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
      exp::make_policy("Ours"), nullptr, ec, util::Rng(9));

  data::DialogueSet huge;
  for (int i = 0; i < 200; ++i) huge.question += "dose ";
  huge.answer = "inject the arm";
  huge.true_domain = 0;
  huge.true_subtopic = 0;
  EXPECT_NO_THROW(engine.process(huge));
  EXPECT_EQ(engine.buffer().size(), 1u);
}

TEST(Sampler, EmptyPromptCachedPathIsSafe) {
  llm::ModelConfig mc;
  mc.vocab_size = 16;
  mc.dim = 8;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 16;
  mc.max_seq_len = 8;
  llm::MiniLlm model(mc, 10);
  llm::SamplerConfig sc;
  sc.use_kv_cache = true;
  llm::Sampler sampler(model, sc, util::Rng(11));
  EXPECT_TRUE(sampler.generate_ids({}).empty());
}

TEST(QualityScores, NanSafetyInComparisons) {
  // Scores are plain doubles; Pareto dominance with identical values must
  // not admit (strict inequality), the buffer's guard against churn.
  core::QualityScores a{0.5, 0.5, 0.5};
  EXPECT_FALSE(a.dominates(a));
}

TEST(Tokenizer, DialogueWithEmptyAnswer) {
  text::Tokenizer tok{text::Vocab{}};
  tok.encode("what now");
  const auto enc = tok.encode_dialogue("what now", "");
  // <bos> what now <sep> <eos>
  ASSERT_EQ(enc.input.size(), 5u);
  EXPECT_EQ(enc.targets[enc.sep_position], text::Vocab::kEos);
}

TEST(Tokenizer, DialogueWithEmptyQuestion) {
  text::Tokenizer tok{text::Vocab{}};
  tok.encode("fine");
  const auto enc = tok.encode_dialogue("", "fine");
  EXPECT_EQ(enc.sep_position, 1u);  // <bos> <sep> fine <eos>
  EXPECT_EQ(enc.input.size(), 4u);
}

TEST(Generator, SingleSetStream) {
  data::UserOracle oracle(12, lexicon::builtin_dictionary());
  data::Generator gen(data::meddialog_profile(), oracle, util::Rng(13));
  const auto ds = gen.generate(1, 1);
  EXPECT_EQ(ds.stream.size(), 1u);
  EXPECT_EQ(ds.test.size(), 1u);
}

TEST(Engine, ProcessingAfterManualFinetuneContinues) {
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::ModelConfig mc;
  mc.vocab_size = tokenizer.vocab().size();
  mc.dim = 16;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 32;
  llm::MiniLlm model(mc, 14);
  llm::BagOfWordsExtractor extractor(16);
  data::UserOracle oracle(15, lexicon::builtin_dictionary());
  core::EngineConfig ec;
  ec.buffer_bins = 2;
  ec.finetune_interval = 0;
  ec.train.epochs = 1;
  core::PersonalizationEngine engine(
      model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
      exp::make_policy("FIFO"),
      std::make_unique<core::ParaphraseSynthesizer>(
          lexicon::builtin_dictionary(), util::Rng(16)),
      ec, util::Rng(17));
  data::Generator gen(data::meddialog_profile(), oracle, util::Rng(18));
  engine.process(gen.make_informative(0, 0));
  engine.finetune_now();
  // The buffer is not cleared after fine-tuning (paper §4.1) and selection
  // continues.
  EXPECT_EQ(engine.buffer().size(), 1u);
  engine.process(gen.make_informative(0, 1));
  EXPECT_EQ(engine.buffer().size(), 2u);
}

}  // namespace
}  // namespace odlp
