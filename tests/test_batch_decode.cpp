// BatchedDecodeScheduler: continuous-batched KV-cached generation must be
// bit-identical to running Sampler::generate_ids per request serially, at
// every batch width and under every KvCache edge case — sessions joining
// mid-stream, slots drained and reused, prompts overflowing max_seq_len,
// and the governor's KV-trim rung shrinking the generation budget.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/engine.h"
#include "core/synthesizer.h"
#include "data/generator.h"
#include "devicesim/memory_model.h"
#include "exp/experiment.h"
#include "llm/batch_decode.h"
#include "llm/sampler.h"
#include "util/rng.h"

namespace odlp::llm {
namespace {

ModelConfig tiny_config() {
  ModelConfig mc;
  mc.vocab_size = 40;
  mc.dim = 16;
  mc.heads = 4;
  mc.layers = 2;
  mc.ff_hidden = 32;
  mc.max_seq_len = 24;
  return mc;
}

SamplerConfig decode_config(std::size_t max_new = 10) {
  SamplerConfig sc;
  sc.temperature = 0.7f;
  sc.max_new_tokens = max_new;
  return sc;
}

// Mixed-length prompts so lanes finish priming (and generating) at
// different steps — sessions leave and join mid-stream whenever the
// request count exceeds the batch width.
std::vector<std::vector<int>> mixed_prompts() {
  return {
      {2, 7, 11},
      {5},
      {2, 4, 6, 8, 10, 12, 14},
      {30, 14, 9},
      {1, 2, 3, 4, 5},
      {17},
      {2, 7, 11, 5, 9, 30, 14, 3, 8},
  };
}

std::vector<int> serial_reference(MiniLlm& model, const std::vector<int>& p,
                                  const SamplerConfig& sc,
                                  std::uint64_t seed) {
  Sampler sampler(model, sc, util::Rng(seed));
  return sampler.generate_ids(p);
}

TEST(BatchDecode, BitIdenticalToSerialAtEveryWidth) {
  MiniLlm model(tiny_config(), 31);
  const auto prompts = mixed_prompts();
  const SamplerConfig sc = decode_config();
  for (std::size_t width : {1u, 2u, 3u, 8u}) {
    BatchedDecodeScheduler scheduler(model, width);
    std::vector<std::size_t> tickets;
    for (std::size_t i = 0; i < prompts.size(); ++i) {
      tickets.push_back(
          scheduler.submit(prompts[i], sc, util::Rng(100 + i)));
    }
    scheduler.run();
    ASSERT_TRUE(scheduler.finished());
    for (std::size_t i = 0; i < prompts.size(); ++i) {
      EXPECT_EQ(scheduler.result(tickets[i]),
                serial_reference(model, prompts[i], sc, 100 + i))
          << "width " << width << " request " << i;
    }
  }
}

#ifdef ODLP_INT8
TEST(BatchDecode, BitIdenticalToSerialInt8) {
  MiniLlm model(tiny_config(), 31);
  model.set_inference_precision(nn::InferencePrecision::kInt8);
  const auto prompts = mixed_prompts();
  const SamplerConfig sc = decode_config();
  BatchedDecodeScheduler scheduler(model, 4);
  std::vector<std::size_t> tickets;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    tickets.push_back(scheduler.submit(prompts[i], sc, util::Rng(50 + i)));
  }
  scheduler.run();
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(scheduler.result(tickets[i]),
              serial_reference(model, prompts[i], sc, 50 + i))
        << "request " << i;
  }
}
#endif

TEST(BatchDecode, EmptyPromptFinishesAtSubmit) {
  MiniLlm model(tiny_config(), 31);
  BatchedDecodeScheduler scheduler(model, 2);
  const std::size_t t = scheduler.submit({}, decode_config(), util::Rng(1));
  EXPECT_TRUE(scheduler.finished());  // done before run()
  scheduler.run();
  EXPECT_TRUE(scheduler.result(t).empty());
  EXPECT_EQ(scheduler.steps(), 0u);
}

TEST(BatchDecode, MaxNewTokensZeroGeneratesNothing) {
  MiniLlm model(tiny_config(), 31);
  const SamplerConfig sc = decode_config(0);
  BatchedDecodeScheduler scheduler(model, 2);
  const std::size_t t = scheduler.submit({2, 7}, sc, util::Rng(3));
  scheduler.run();
  EXPECT_TRUE(scheduler.result(t).empty());
  EXPECT_EQ(scheduler.result(t), serial_reference(model, {2, 7}, sc, 3));
}

// KvCache overflow edges: a prompt longer than max_seq_len is truncated
// exactly as Sampler truncates it, and a generation that would run past
// max_seq_len stops when the cache fills — in both cases token-identical
// to the serial path.
TEST(BatchDecode, PromptOverflowAndCacheFullMatchSerial) {
  MiniLlm model(tiny_config(), 31);
  const std::size_t max_len = tiny_config().max_seq_len;
  std::vector<int> long_prompt;
  for (std::size_t i = 0; i < max_len + 10; ++i) {
    long_prompt.push_back(static_cast<int>(i % 35) + 4);
  }
  // max_new far beyond what the cache can hold: generation must stop at
  // max_seq_len positions, like the serial sampler.
  const SamplerConfig sc = decode_config(3 * max_len);
  BatchedDecodeScheduler scheduler(model, 3);
  const std::size_t a = scheduler.submit(long_prompt, sc, util::Rng(7));
  const std::size_t b = scheduler.submit({2, 7}, sc, util::Rng(8));
  scheduler.run();
  EXPECT_EQ(scheduler.result(a),
            serial_reference(model, long_prompt, sc, 7));
  EXPECT_EQ(scheduler.result(b), serial_reference(model, {2, 7}, sc, 8));
}

// Slots drain completely, then a second round of submissions re-primes the
// same KvCache storage from position 0 — leave-and-rejoin reuse must not
// leak state between the requests that share a slot.
TEST(BatchDecode, SlotReuseAcrossRunsIsStateless) {
  MiniLlm model(tiny_config(), 31);
  const SamplerConfig sc = decode_config();
  BatchedDecodeScheduler scheduler(model, 2);
  const std::size_t a = scheduler.submit({2, 7, 11}, sc, util::Rng(21));
  scheduler.run();
  ASSERT_TRUE(scheduler.finished());
  // Same prompt+rng resubmitted after the slot was used: identical result.
  const std::size_t b = scheduler.submit({2, 7, 11}, sc, util::Rng(21));
  const std::size_t c = scheduler.submit({5, 9}, sc, util::Rng(22));
  scheduler.run();
  EXPECT_EQ(scheduler.result(b), scheduler.result(a));
  EXPECT_EQ(scheduler.result(c), serial_reference(model, {5, 9}, sc, 22));
}

TEST(BatchDecode, OccupancyTracksLiveSessions) {
  MiniLlm model(tiny_config(), 31);
  const SamplerConfig sc = decode_config();
  BatchedDecodeScheduler scheduler(model, 3);
  EXPECT_EQ(scheduler.max_batch(), 3u);
  for (std::size_t i = 0; i < 8; ++i) {
    scheduler.submit({2, 7, 11}, sc, util::Rng(40 + i));
  }
  scheduler.run();
  EXPECT_EQ(scheduler.peak_occupancy(), 3u);  // all three lanes were busy
  EXPECT_GT(scheduler.steps(), 0u);
}

TEST(BatchDecode, ZeroWidthThrows) {
  MiniLlm model(tiny_config(), 31);
  EXPECT_THROW(BatchedDecodeScheduler(model, 0), std::invalid_argument);
}

// The governor's KV-trim rung halves the decode generation budget
// (kv_fraction scales max_new_tokens). A scheduler fed the trimmed config
// must stop at the trimmed length and still match the serial path under the
// same trim; the devicesim ledger sees the same fraction applied per live
// session.
TEST(BatchDecode, GovernorKvTrimShrinksGenerationAndLedger) {
  MiniLlm model(tiny_config(), 31);
  const double kv_fraction = 0.5;
  SamplerConfig trimmed = decode_config(16);
  trimmed.max_new_tokens = static_cast<std::size_t>(
      static_cast<double>(trimmed.max_new_tokens) * kv_fraction);
  ASSERT_EQ(trimmed.max_new_tokens, 8u);

  BatchedDecodeScheduler scheduler(model, 4);
  std::vector<std::size_t> tickets;
  const auto prompts = mixed_prompts();
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    tickets.push_back(
        scheduler.submit(prompts[i], trimmed, util::Rng(60 + i)));
  }
  scheduler.run();
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_LE(scheduler.result(tickets[i]).size(), trimmed.max_new_tokens);
    EXPECT_EQ(scheduler.result(tickets[i]),
              serial_reference(model, prompts[i], trimmed, 60 + i));
  }

  // Ledger: the trim fraction applies to every live KV session's bytes.
  const std::size_t sessions = scheduler.peak_occupancy();
  const devicesim::MemoryLedger full =
      devicesim::model_memory_ledger(model, 0, sessions);
  const devicesim::MemoryLedger trimmed_ledger =
      devicesim::governed_memory_ledger(model, 0, kv_fraction, sessions);
  EXPECT_EQ(full.kv_sessions, sessions);
  EXPECT_EQ(trimmed_ledger.kv_cache_bytes,
            static_cast<std::size_t>(
                static_cast<double>(full.kv_cache_bytes) * kv_fraction));
}

// Satellite: the ledger's KV term scales linearly with the live session
// count (batch occupancy), defaulting to one session.
TEST(BatchDecode, LedgerKvBytesScaleWithSessions) {
  MiniLlm model(tiny_config(), 31);
  const devicesim::MemoryLedger one = devicesim::model_memory_ledger(model, 0);
  const devicesim::MemoryLedger four =
      devicesim::model_memory_ledger(model, 0, 4);
  EXPECT_EQ(one.kv_sessions, 1u);
  EXPECT_EQ(four.kv_sessions, 4u);
  EXPECT_EQ(four.kv_cache_bytes, 4 * one.kv_cache_bytes);
  const llm::ModelConfig& mc = model.config();
  EXPECT_EQ(one.kv_cache_bytes,
            mc.layers * 2 * mc.max_seq_len * mc.dim * sizeof(float));
}

}  // namespace
}  // namespace odlp::llm

namespace odlp::core {
namespace {

struct BatchEngineFixture {
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::ModelConfig mc;
  std::unique_ptr<llm::MiniLlm> model;
  llm::BagOfWordsExtractor extractor{16};
  data::UserOracle oracle{123, lexicon::builtin_dictionary()};
  std::unique_ptr<PersonalizationEngine> engine;

  explicit BatchEngineFixture(std::size_t decode_batch) {
    mc.vocab_size = tokenizer.vocab().size();
    mc.dim = 16;
    mc.heads = 2;
    mc.layers = 1;
    mc.ff_hidden = 32;
    mc.max_seq_len = 48;
    model = std::make_unique<llm::MiniLlm>(mc, 7);
    EngineConfig ec;
    ec.buffer_bins = 4;
    ec.finetune_interval = 0;
    ec.max_seq_len = 48;
    ec.decode_batch = decode_batch;
    ec.sampler.max_new_tokens = 8;
    engine = std::make_unique<PersonalizationEngine>(
        *model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
        exp::make_policy("Ours"),
        std::make_unique<ParaphraseSynthesizer>(lexicon::builtin_dictionary(),
                                                util::Rng(9)),
        ec, util::Rng(11));
  }
};

// The engine's evaluation is per-request seeded, so the batching width is
// invisible in the scores — decode_batch trades latency only.
TEST(BatchDecodeEngine, EvaluateScoresIndependentOfDecodeBatch) {
  BatchEngineFixture serial(1);
  BatchEngineFixture batched(4);
  util::Rng rng(10);
  data::Generator gen(data::meddialog_profile(), serial.oracle, rng.split());
  const auto ds = gen.generate(0, 5);
  std::vector<const data::DialogueSet*> test;
  for (const auto& s : ds.test) test.push_back(&s);
  const std::vector<double> a = serial.engine->evaluate_per_set(test);
  const std::vector<double> b = batched.engine->evaluate_per_set(test);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "set " << i;
  }
  EXPECT_GE(batched.engine->decode_kv_sessions(), 1u);
  EXPECT_LE(batched.engine->decode_kv_sessions(), 4u);
}

// Same property for the LLM synthesizer's wave batching: accepted variants
// (and accept/reject bookkeeping) are identical at every width.
TEST(BatchDecodeEngine, SynthesizerOutputsIndependentOfDecodeBatch) {
  const text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::ModelConfig mc;
  mc.vocab_size = tokenizer.vocab().size();
  mc.dim = 16;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 32;
  mc.max_seq_len = 48;
  llm::MiniLlm model(mc, 7);
  llm::SamplerConfig sc;
  sc.max_new_tokens = 12;
  data::UserOracle oracle(123, lexicon::builtin_dictionary());
  util::Rng rng(5);
  data::Generator gen(data::meddialog_profile(), oracle, rng.split());
  const data::DialogueSet original = gen.make_informative(0, 0);

  SynthesisStats stats1, stats4;
  LlmSynthesizer synth1(model, tokenizer, sc, util::Rng(77),
                        SanityCheckConfig{}, std::nullopt,
                        /*decode_batch=*/1);
  LlmSynthesizer synth4(model, tokenizer, sc, util::Rng(77),
                        SanityCheckConfig{}, std::nullopt,
                        /*decode_batch=*/4);
  const auto out1 = synth1.synthesize(original, 3, &stats1);
  const auto out4 = synth4.synthesize(original, 3, &stats4);
  EXPECT_EQ(stats1.generated, stats4.generated);
  EXPECT_EQ(stats1.accepted, stats4.accepted);
  ASSERT_EQ(out1.size(), out4.size());
  for (std::size_t i = 0; i < out1.size(); ++i) {
    EXPECT_EQ(out1[i].question, out4[i].question) << "variant " << i;
    EXPECT_EQ(out1[i].answer, out4[i].answer) << "variant " << i;
    EXPECT_EQ(out1[i].reference, out4[i].reference) << "variant " << i;
  }
}

}  // namespace
}  // namespace odlp::core
