// Cross-module integration tests: the full select → annotate → synthesize →
// fine-tune → evaluate loop on fast configurations, plus fairness and
// restore properties spanning several modules.
#include <gtest/gtest.h>

#include <cmath>

#include "core/buffer_io.h"
#include "core/engine.h"
#include "data/generator.h"
#include "exp/experiment.h"

namespace odlp {
namespace {

struct World {
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::ModelConfig mc;
  std::unique_ptr<llm::MiniLlm> model;
  llm::BagOfWordsExtractor extractor{24};
  data::UserOracle oracle;
  util::Rng rng;

  explicit World(std::uint64_t seed)
      : oracle(seed, lexicon::builtin_dictionary()), rng(seed ^ 0xfeed) {
    mc.vocab_size = tokenizer.vocab().size();
    mc.dim = 24;
    mc.heads = 2;
    mc.layers = 1;
    mc.ff_hidden = 48;
    mc.max_seq_len = 48;
    model = std::make_unique<llm::MiniLlm>(mc, seed);
  }

  std::unique_ptr<core::PersonalizationEngine> engine(
      const std::string& method, core::EngineConfig ec) {
    return std::make_unique<core::PersonalizationEngine>(
        *model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
        exp::make_policy(method),
        std::make_unique<core::ParaphraseSynthesizer>(
            lexicon::builtin_dictionary(), rng.split()),
        ec, rng.split());
  }
};

TEST(Integration, QualityPolicyKeepsLessNoiseThanFifoOnSameStream) {
  // Identical stream, identical scoring — only the policy differs.
  core::EngineConfig ec;
  ec.buffer_bins = 8;
  ec.finetune_interval = 0;
  data::UserOracle stream_oracle(42, lexicon::builtin_dictionary());
  data::Generator gen(data::meddialog_profile(), stream_oracle, util::Rng(42));
  const auto ds = gen.generate(120, 0);

  std::size_t noise_by_policy[2] = {0, 0};
  const char* methods[2] = {"Ours", "FIFO"};
  for (int m = 0; m < 2; ++m) {
    World world(7);
    auto engine = world.engine(methods[m], ec);
    engine->run_stream(ds.stream);
    noise_by_policy[m] = exp::buffer_composition(engine->buffer()).noise;
  }
  EXPECT_LE(noise_by_policy[0], noise_by_policy[1]);
}

TEST(Integration, FinetuningReducesTrainingLoss) {
  World world(9);
  core::EngineConfig ec;
  ec.buffer_bins = 6;
  ec.finetune_interval = 0;
  ec.train.epochs = 8;
  ec.train.learning_rate = 1e-2f;
  auto engine = world.engine("Ours", ec);
  data::Generator gen(data::meddialog_profile(), world.oracle, util::Rng(10));
  for (int i = 0; i < 6; ++i) engine->process(gen.make_informative(0, i % 3));

  engine->finetune_now();
  const double first_round_loss = engine->stats().last_train_loss;
  engine->finetune_now();
  const double second_round_loss = engine->stats().last_train_loss;
  EXPECT_LT(second_round_loss, first_round_loss);
}

TEST(Integration, RestoreBufferContinuesSession) {
  const std::string path = "/tmp/odlp_integration_buffer.bin";
  core::EngineConfig ec;
  ec.buffer_bins = 6;
  ec.finetune_interval = 0;

  data::UserOracle stream_oracle(11, lexicon::builtin_dictionary());
  data::Generator gen(data::meddialog_profile(), stream_oracle, util::Rng(11));

  World world1(13);
  auto engine1 = world1.engine("Ours", ec);
  for (int i = 0; i < 12; ++i) engine1->process(gen.make_informative(0, i % 4));
  core::save_buffer(engine1->buffer(), path);
  const std::size_t saved_size = engine1->buffer().size();

  World world2(13);
  auto engine2 = world2.engine("Ours", ec);
  engine2->restore_buffer(core::load_buffer(path));
  EXPECT_EQ(engine2->buffer().size(), saved_size);
  // The restored engine can keep selecting and fine-tuning.
  engine2->process(gen.make_informative(1, 0));
  engine2->finetune_now();
  EXPECT_EQ(engine2->stats().finetune_rounds, 1u);
  std::remove(path.c_str());
}

TEST(Integration, RestoreBufferRejectsCapacityMismatch) {
  core::EngineConfig ec;
  ec.buffer_bins = 6;
  World world(15);
  auto engine = world.engine("Ours", ec);
  EXPECT_THROW(engine->restore_buffer(core::DataBuffer(4)), std::invalid_argument);
}

TEST(Integration, LlmExtractorMatchesModelGeometry) {
  World world(17);
  llm::LlmEmbeddingExtractor extractor(*world.model, world.tokenizer);
  EXPECT_EQ(extractor.dim(), world.mc.dim);
  const auto tokens = extractor.token_embeddings("dose vial pills inject");
  EXPECT_EQ(tokens.rows(), 4u);
  EXPECT_EQ(tokens.cols(), world.mc.dim);
  const auto pooled = extractor.text_embedding("dose vial pills inject");
  EXPECT_EQ(pooled.rows(), 1u);
  // Mean-pooling: pooled equals the row mean of token embeddings.
  const auto mean = tensor::mean_rows(tokens);
  for (std::size_t j = 0; j < pooled.cols(); ++j) {
    EXPECT_NEAR(pooled.at(0, j), mean.at(0, j), 1e-6f);
  }
}

TEST(Integration, LlmExtractorHandlesEmptyAndUnknownText) {
  World world(19);
  llm::LlmEmbeddingExtractor extractor(*world.model, world.tokenizer);
  const auto empty = extractor.token_embeddings("");
  EXPECT_GE(empty.rows(), 1u);  // falls back to a single <unk>
  const auto unknown = extractor.text_embedding("qwertyasdf zxcvb");
  EXPECT_EQ(unknown.rows(), 1u);
}

TEST(Integration, EmbeddingsChangeAfterFineTuning) {
  // The engine recomputes candidate embeddings with the *live* model; after
  // fine-tuning, the same text should embed differently (the paper stores
  // buffered embeddings precisely to avoid recomputation).
  World world(21);
  llm::LlmEmbeddingExtractor extractor(*world.model, world.tokenizer);
  const std::string text = "dose vial pills inject arm";
  const auto before = extractor.text_embedding(text);

  core::EngineConfig ec;
  ec.buffer_bins = 4;
  ec.finetune_interval = 0;
  ec.train.epochs = 6;
  ec.train.learning_rate = 1e-2f;
  core::PersonalizationEngine engine(
      *world.model, world.tokenizer, extractor, world.oracle,
      lexicon::builtin_dictionary(), exp::make_policy("Ours"),
      std::make_unique<core::ParaphraseSynthesizer>(
          lexicon::builtin_dictionary(), util::Rng(22)),
      ec, util::Rng(23));
  data::Generator gen(data::meddialog_profile(), world.oracle, util::Rng(24));
  for (int i = 0; i < 4; ++i) engine.process(gen.make_informative(0, 0));
  engine.finetune_now();

  const auto after = extractor.text_embedding(text);
  float max_delta = 0.0f;
  for (std::size_t j = 0; j < before.cols(); ++j) {
    max_delta = std::max(max_delta, std::fabs(after.at(0, j) - before.at(0, j)));
  }
  EXPECT_GT(max_delta, 1e-5f);
}

TEST(Integration, AllPoliciesSurviveAFullStream) {
  data::UserOracle stream_oracle(25, lexicon::builtin_dictionary());
  data::Generator gen(data::alpaca_profile(), stream_oracle, util::Rng(25));
  const auto ds = gen.generate(60, 0);
  for (const char* method :
       {"Ours", "Random", "FIFO", "K-Center", "EOE", "DSS", "IDD", "WeightedSum"}) {
    World world(27);
    core::EngineConfig ec;
    ec.buffer_bins = 5;
    ec.finetune_interval = 0;
    auto engine = world.engine(method, ec);
    engine->run_stream(ds.stream);
    EXPECT_EQ(engine->stats().seen, 60u) << method;
    EXPECT_LE(engine->buffer().size(), 5u) << method;
    EXPECT_GT(engine->buffer().size(), 0u) << method;
  }
}

}  // namespace
}  // namespace odlp
