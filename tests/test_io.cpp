// OBSF container, LZ4 codec, record/replay, and binary-sink fault matrix
// (DESIGN.md §14). Own binary with the "io" ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/buffer_io.h"
#include "data/generator.h"
#include "data/profiles.h"
#include "data/user_oracle.h"
#include "io/lz4.h"
#include "io/obsf.h"
#include "io/stream_capture.h"
#include "lexicon/lexicon.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace odlp {
namespace {

std::string temp_path(const std::string& name) { return "/tmp/" + name; }

std::vector<unsigned char> slurp(const std::string& path) {
  return util::read_file(path);
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

// --- LZ4 ---

std::vector<std::uint8_t> lz4_round_trip(const std::vector<std::uint8_t>& src) {
  std::vector<std::uint8_t> comp(io::lz4_max_compressed_size(src.size()));
  const std::size_t csize =
      io::lz4_compress(src.data(), src.size(), comp.data());
  EXPECT_LE(csize, comp.size());
  comp.resize(csize);
  std::vector<std::uint8_t> back(src.size());
  EXPECT_EQ(io::lz4_decompress(comp.data(), comp.size(), back.data(),
                               back.size()),
            src.size());
  return back;
}

TEST(Lz4, EmptyInputProducesEmptyBlock) {
  std::vector<std::uint8_t> comp(io::lz4_max_compressed_size(0));
  EXPECT_EQ(io::lz4_compress(nullptr, 0, comp.data()), 0u);
  EXPECT_EQ(io::lz4_decompress(comp.data(), 0, nullptr, 0), 0u);
}

TEST(Lz4, RoundTripsAcrossSizes) {
  std::mt19937 rng(1234);
  for (std::size_t n :
       {1u, 2u, 4u, 11u, 12u, 13u, 64u, 100u, 255u, 256u, 1000u, 65536u}) {
    std::vector<std::uint8_t> random(n), repetitive(n), uniform(n, 0x55);
    for (auto& b : random) b = static_cast<std::uint8_t>(rng());
    for (std::size_t i = 0; i < n; ++i) {
      repetitive[i] = static_cast<std::uint8_t>("abcabcab"[i % 8]);
    }
    EXPECT_EQ(lz4_round_trip(random), random) << "n=" << n;
    EXPECT_EQ(lz4_round_trip(repetitive), repetitive) << "n=" << n;
    EXPECT_EQ(lz4_round_trip(uniform), uniform) << "n=" << n;
  }
}

TEST(Lz4, CompressesRepetitiveMegabyte) {
  std::vector<std::uint8_t> src(1 << 20);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>((i / 64) % 7);
  }
  std::vector<std::uint8_t> comp(io::lz4_max_compressed_size(src.size()));
  const std::size_t csize =
      io::lz4_compress(src.data(), src.size(), comp.data());
  EXPECT_LT(csize, src.size() / 10);  // heavily repetitive → >10x
  std::vector<std::uint8_t> back(src.size());
  io::lz4_decompress(comp.data(), csize, back.data(), back.size());
  EXPECT_EQ(back, src);
}

TEST(Lz4, MalformedInputThrowsInsteadOfOverrunning) {
  // Wrong declared size.
  std::vector<std::uint8_t> src(100, 7);
  std::vector<std::uint8_t> comp(io::lz4_max_compressed_size(src.size()));
  const std::size_t csize =
      io::lz4_compress(src.data(), src.size(), comp.data());
  std::vector<std::uint8_t> out(src.size() + 1);
  EXPECT_THROW(io::lz4_decompress(comp.data(), csize, out.data(), out.size()),
               util::CorruptionError);
  EXPECT_THROW(
      io::lz4_decompress(comp.data(), csize, out.data(), src.size() - 1),
      util::CorruptionError);
  // Truncated stream.
  EXPECT_THROW(
      io::lz4_decompress(comp.data(), csize - 1, out.data(), src.size()),
      util::CorruptionError);
  // Data after an empty-output block.
  EXPECT_THROW(io::lz4_decompress(comp.data(), csize, nullptr, 0),
               util::CorruptionError);
  // Offset beyond the produced output: token demands a match at position 0.
  const std::vector<std::uint8_t> bad = {0x00, 0x05, 0x00};
  std::vector<std::uint8_t> small(8);
  EXPECT_THROW(
      io::lz4_decompress(bad.data(), bad.size(), small.data(), small.size()),
      util::CorruptionError);
}

TEST(Lz4, FuzzedCorruptionNeverCrashes) {
  std::mt19937 rng(99);
  std::vector<std::uint8_t> src(2048);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>((i / 16) * 3);
  }
  std::vector<std::uint8_t> comp(io::lz4_max_compressed_size(src.size()));
  const std::size_t csize =
      io::lz4_compress(src.data(), src.size(), comp.data());
  std::vector<std::uint8_t> out(src.size());
  for (int t = 0; t < 500; ++t) {
    std::vector<std::uint8_t> mut(comp.begin(), comp.begin() + csize);
    mut[rng() % mut.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    try {
      io::lz4_decompress(mut.data(), mut.size(), out.data(), out.size());
      // Decoding to valid-but-wrong bytes is acceptable here: the OBSF
      // block CRC catches it one layer up.
    } catch (const util::CorruptionError&) {
    }
  }
}

// --- crc32 slice-by-8 ---

// Bitwise reference implementation of the same reflected polynomial.
std::uint32_t crc32_reference(const void* data, std::size_t len,
                              std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c ^= p[i];
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
  }
  return c ^ 0xFFFFFFFFu;
}

TEST(Crc32, SliceBy8MatchesBitwiseReference) {
  std::mt19937 rng(7);
  EXPECT_EQ(util::crc32("", 0), crc32_reference("", 0, 0));
  // Known vector: CRC-32("123456789") = 0xCBF43926.
  EXPECT_EQ(util::crc32("123456789", 9), 0xCBF43926u);
  // 63..129 straddles the PCLMUL fold kernel's 64-byte entry threshold and
  // its 16-byte folding granularity.
  for (std::size_t len : {1u, 3u, 7u, 8u, 9u, 15u, 16u, 63u, 64u, 65u, 79u,
                          80u, 127u, 128u, 129u, 255u, 4096u}) {
    std::vector<unsigned char> buf(len + 8);
    for (auto& b : buf) b = static_cast<unsigned char>(rng());
    for (std::size_t align = 0; align < 8; ++align) {
      EXPECT_EQ(util::crc32(buf.data() + align, len),
                crc32_reference(buf.data() + align, len, 0))
          << "len=" << len << " align=" << align;
    }
  }
}

TEST(Crc32, SeedChainingStillComposes) {
  std::mt19937 rng(11);
  std::vector<unsigned char> buf(1000);
  for (auto& b : buf) b = static_cast<unsigned char>(rng());
  const std::uint32_t whole = util::crc32(buf.data(), buf.size());
  for (std::size_t split : {0u, 1u, 7u, 8u, 500u, 999u, 1000u}) {
    const std::uint32_t head = util::crc32(buf.data(), split);
    EXPECT_EQ(util::crc32(buf.data() + split, buf.size() - split, head),
              whole);
  }
  util::Crc32 acc;
  acc.update(buf.data(), 123);
  acc.update(buf.data() + 123, buf.size() - 123);
  EXPECT_EQ(acc.value(), whole);
}

// --- ThreadPool::submit ---

TEST(ThreadPoolSubmit, TasksRunExactlyOnceAcrossLaneCounts) {
  for (std::size_t lanes : {1u, 2u, 4u}) {
    util::ThreadPool pool(lanes);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor / resize drains anything still queued.
    pool.resize(lanes);
    EXPECT_EQ(ran.load(), 64) << "lanes=" << lanes;
  }
}

TEST(ThreadPoolSubmit, TaskMayUseParallelForWithoutDeadlock) {
  util::ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  std::atomic<bool> done{false};
  pool.submit([&] {
    pool.parallel_for(0, 100, 10, [&](std::size_t b, std::size_t e) {
      sum.fetch_add(e - b);
    });
    done.store(true);
  });
  pool.resize(4);  // drains the task
  EXPECT_TRUE(done.load());
  EXPECT_EQ(sum.load(), 100u);
}

// --- OBSF container ---

io::Schema all_types_schema() {
  io::Schema s;
  s.meta = "test.meta";
  s.columns = {
      {"b", io::ColumnType::kBytes, io::ColumnCodec::kFlat},
      {"i_flat", io::ColumnType::kI64, io::ColumnCodec::kFlat},
      {"i_delta", io::ColumnType::kI64, io::ColumnCodec::kDelta},
      {"i_zoh", io::ColumnType::kI64, io::ColumnCodec::kZoH},
      {"u_flat", io::ColumnType::kU64, io::ColumnCodec::kFlat},
      {"u_delta", io::ColumnType::kU64, io::ColumnCodec::kDelta},
      {"f_flat", io::ColumnType::kF64, io::ColumnCodec::kFlat},
      {"f_zoh", io::ColumnType::kF64, io::ColumnCodec::kZoH},
      {"u8_flat", io::ColumnType::kU8, io::ColumnCodec::kFlat},
      {"u8_zoh", io::ColumnType::kU8, io::ColumnCodec::kZoH},
      {"f32", io::ColumnType::kF32, io::ColumnCodec::kFlat},
  };
  return s;
}

void write_all_types(const std::string& path, std::size_t rows,
                     std::size_t block_rows, bool async) {
  io::ObsfWriter::Options opts;
  opts.block_rows = block_rows;
  opts.async = async;
  io::ObsfWriter w(path, all_types_schema(), opts);
  for (std::size_t i = 0; i < rows; ++i) {
    w.append_bytes("value-" + std::to_string(i * 7));
    w.append_i64(static_cast<std::int64_t>(i) - 50);
    w.append_i64(static_cast<std::int64_t>(i * i));
    w.append_i64(static_cast<std::int64_t>(i / 10));
    w.append_u64(i * 1000);
    w.append_u64(1u << (i % 20));
    w.append_f64(0.25 * static_cast<double>(i));
    w.append_f64(static_cast<double>(i / 25));
    w.append_u8(static_cast<std::uint8_t>(i));
    w.append_u8(static_cast<std::uint8_t>(i / 40));
    w.append_f32(static_cast<float>(i) * 0.5f);
    w.end_row();
  }
  w.finish();
}

void expect_all_types(const std::string& path, std::size_t rows) {
  io::ObsfReader r(path);
  EXPECT_EQ(r.schema().meta, "test.meta");
  ASSERT_EQ(r.schema().columns.size(), 11u);
  std::size_t i = 0;
  while (r.next_block()) {
    for (std::size_t k = 0; k < r.rows(); ++k, ++i) {
      ASSERT_LT(i, rows);
      EXPECT_EQ(r.col_bytes(0)[k], "value-" + std::to_string(i * 7));
      EXPECT_EQ(r.col_i64(1)[k], static_cast<std::int64_t>(i) - 50);
      EXPECT_EQ(r.col_i64(2)[k], static_cast<std::int64_t>(i * i));
      EXPECT_EQ(r.col_i64(3)[k], static_cast<std::int64_t>(i / 10));
      EXPECT_EQ(r.col_u64(4)[k], i * 1000);
      EXPECT_EQ(r.col_u64(5)[k], 1u << (i % 20));
      EXPECT_DOUBLE_EQ(r.col_f64(6)[k], 0.25 * static_cast<double>(i));
      EXPECT_DOUBLE_EQ(r.col_f64(7)[k], static_cast<double>(i / 25));
      EXPECT_EQ(r.col_u8(8)[k], static_cast<std::uint8_t>(i));
      EXPECT_EQ(r.col_u8(9)[k], static_cast<std::uint8_t>(i / 40));
      EXPECT_FLOAT_EQ(r.col_f32(10)[k], static_cast<float>(i) * 0.5f);
    }
  }
  EXPECT_EQ(i, rows);
  EXPECT_FALSE(r.truncated());
}

TEST(Obsf, AllTypesAndCodecsRoundTrip) {
  const std::string path = temp_path("odlp_obsf_all.obsf");
  write_all_types(path, 503, /*block_rows=*/64, /*async=*/true);
  expect_all_types(path, 503);
  std::remove(path.c_str());
}

TEST(Obsf, SyncAndAsyncWritersProduceIdenticalBytes) {
  const std::string pa = temp_path("odlp_obsf_async.obsf");
  const std::string ps = temp_path("odlp_obsf_sync.obsf");
  write_all_types(pa, 257, 32, /*async=*/true);
  write_all_types(ps, 257, 32, /*async=*/false);
  EXPECT_EQ(slurp(pa), slurp(ps));
  std::remove(pa.c_str());
  std::remove(ps.c_str());
}

TEST(Obsf, EmptyFileRoundTrips) {
  const std::string path = temp_path("odlp_obsf_empty.obsf");
  {
    io::ObsfWriter w(path, all_types_schema());
    w.finish();
  }
  io::ObsfReader r(path);
  EXPECT_FALSE(r.next_block());
  EXPECT_EQ(r.blocks_read(), 0u);
  std::remove(path.c_str());
}

TEST(Obsf, UnfinishedWriterNeverTouchesDestination) {
  const std::string path = temp_path("odlp_obsf_abort.obsf");
  std::remove(path.c_str());
  {
    io::ObsfWriter w(path, all_types_schema());
    // destroyed without finish()
  }
  EXPECT_THROW(util::read_file(path), std::runtime_error);
}

TEST(Obsf, SchemaValidationRejectsIllegalCombos) {
  io::Schema s;
  s.columns = {{"x", io::ColumnType::kBytes, io::ColumnCodec::kDelta}};
  EXPECT_THROW(io::validate_schema(s), std::invalid_argument);
  s.columns = {{"x", io::ColumnType::kF64, io::ColumnCodec::kDelta}};
  EXPECT_THROW(io::validate_schema(s), std::invalid_argument);
  s.columns = {{"x", io::ColumnType::kF32, io::ColumnCodec::kZoH}};
  EXPECT_THROW(io::validate_schema(s), std::invalid_argument);
  s.columns = {{"", io::ColumnType::kU8, io::ColumnCodec::kFlat}};
  EXPECT_THROW(io::validate_schema(s), std::invalid_argument);
  s.columns.clear();
  EXPECT_THROW(io::validate_schema(s), std::invalid_argument);
}

TEST(Obsf, AppendOutOfSchemaOrderThrows) {
  const std::string path = temp_path("odlp_obsf_order.obsf");
  io::Schema s;
  s.columns = {{"a", io::ColumnType::kU64, io::ColumnCodec::kFlat},
               {"b", io::ColumnType::kBytes, io::ColumnCodec::kFlat}};
  io::ObsfWriter w(path, s);
  EXPECT_THROW(w.append_bytes("first column is u64"), std::logic_error);
  w.append_u64(1);
  EXPECT_THROW(w.end_row(), std::logic_error);  // row incomplete
  w.append_bytes("ok");
  w.end_row();
  w.finish();
  std::remove(path.c_str());
}

// The OBSF fault matrix: truncation at every byte (which covers every block
// boundary ±1 byte and the torn final block), plus bit flips in every
// region (header, schema, payload, footer). Strict reads must throw
// CorruptionError — never crash, never return wrong data.
TEST(ObsfFaultMatrix, TruncationAtEveryByteThrows) {
  const std::string path = temp_path("odlp_obsf_trunc.obsf");
  write_all_types(path, 90, /*block_rows=*/16, /*async=*/false);
  const std::vector<unsigned char> bytes = slurp(path);
  const std::string cut = temp_path("odlp_obsf_trunc_cut.obsf");
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    spit(cut, {bytes.begin(), bytes.begin() + keep});
    EXPECT_THROW(
        {
          io::ObsfReader r(cut);
          while (r.next_block()) {
          }
        },
        util::CorruptionError)
        << "keep=" << keep << " of " << bytes.size();
  }
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(ObsfFaultMatrix, BitFlipAnywhereThrows) {
  const std::string path = temp_path("odlp_obsf_flip.obsf");
  write_all_types(path, 60, /*block_rows=*/16, /*async=*/false);
  const std::vector<unsigned char> bytes = slurp(path);
  const std::string flip = temp_path("odlp_obsf_flip_mut.obsf");
  std::mt19937 rng(4242);
  // Every byte for small offsets (header/schema region), then a random
  // sample across the rest of the file; 3 random bits each.
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    if (pos > 64 && pos % 7 != 0) continue;
    std::vector<unsigned char> mut = bytes;
    mut[pos] ^= static_cast<unsigned char>(1u << (rng() % 8));
    spit(flip, mut);
    EXPECT_THROW(
        {
          io::ObsfReader r(flip);
          while (r.next_block()) {
          }
        },
        util::CorruptionError)
        << "pos=" << pos;
  }
  std::remove(path.c_str());
  std::remove(flip.c_str());
}

TEST(ObsfFaultMatrix, TrailingGarbageAfterSentinelThrows) {
  const std::string path = temp_path("odlp_obsf_tail.obsf");
  write_all_types(path, 20, 16, false);
  std::vector<unsigned char> bytes = slurp(path);
  bytes.push_back(0xAB);
  spit(path, bytes);
  EXPECT_THROW(
      {
        io::ObsfReader r(path);
        while (r.next_block()) {
        }
      },
      util::CorruptionError);
  std::remove(path.c_str());
}

TEST(ObsfFaultMatrix, RecoverModeKeepsIntactPrefix) {
  const std::string path = temp_path("odlp_obsf_recover.obsf");
  write_all_types(path, 100, /*block_rows=*/20, /*async=*/false);
  const std::vector<unsigned char> bytes = slurp(path);

  // Torn final data block: cut into the middle of the file body.
  const std::size_t cut_at = bytes.size() - bytes.size() / 4;
  spit(path, {bytes.begin(), bytes.begin() + cut_at});
  io::ObsfReader::Options ro;
  ro.recover = true;
  std::size_t rows = 0, blocks = 0;
  {
    io::ObsfReader r(path, ro);
    while (r.next_block()) {
      rows += r.rows();
      ++blocks;
    }
    EXPECT_TRUE(r.truncated());
  }
  EXPECT_GT(blocks, 0u);
  EXPECT_LT(rows, 100u);
  EXPECT_EQ(rows % 20, 0u);  // whole blocks only

  // Header damage is not recoverable: without an intact schema there is
  // nothing to decode blocks against.
  std::vector<unsigned char> mut = bytes;
  mut[10] ^= 0x01;
  spit(path, mut);
  EXPECT_THROW(io::ObsfReader r(path, ro), util::CorruptionError);
  std::remove(path.c_str());
}

// --- stream capture record/replay ---

data::GeneratedDataset small_dataset(std::uint64_t seed) {
  const auto& dict = lexicon::builtin_dictionary();
  data::UserOracle oracle(seed * 2654435761ull + 1, dict);
  data::Generator gen(data::profile_by_name("MedDialog"), oracle,
                      util::Rng(seed));
  return gen.generate(60, 40);
}

void expect_sets_equal(const data::DialogueSet& a, const data::DialogueSet& b) {
  EXPECT_EQ(a.question, b.question);
  EXPECT_EQ(a.answer, b.answer);
  EXPECT_EQ(a.reference, b.reference);
  EXPECT_EQ(a.true_domain, b.true_domain);
  EXPECT_EQ(a.true_subtopic, b.true_subtopic);
  EXPECT_EQ(a.is_noise, b.is_noise);
  EXPECT_EQ(a.stream_position, b.stream_position);
}

TEST(StreamCapture, RecordThenReplayIsBitIdentical) {
  const std::string path = temp_path("odlp_traffic.obsf");
  const data::GeneratedDataset original = small_dataset(77);
  const io::ObsfWriter::Stats stats = io::record_dataset(original, path);
  EXPECT_EQ(stats.rows, 100u);
  EXPECT_LT(stats.stored_bytes, stats.raw_bytes);  // dialogue text compresses

  const data::GeneratedDataset replayed = io::replay_dataset(path);
  ASSERT_EQ(replayed.stream.size(), original.stream.size());
  ASSERT_EQ(replayed.test.size(), original.test.size());
  for (std::size_t i = 0; i < original.stream.size(); ++i) {
    expect_sets_equal(replayed.stream[i], original.stream[i]);
  }
  for (std::size_t i = 0; i < original.test.size(); ++i) {
    expect_sets_equal(replayed.test[i], original.test[i]);
  }
  std::remove(path.c_str());
}

TEST(StreamCapture, RejectsForeignContainers) {
  const std::string path = temp_path("odlp_traffic_foreign.obsf");
  io::Schema s;
  s.columns = {{"x", io::ColumnType::kU64, io::ColumnCodec::kFlat}};
  {
    io::ObsfWriter w(path, s);
    w.finish();
  }
  EXPECT_THROW(io::ReplayStream rep(path), util::CorruptionError);
  std::remove(path.c_str());
}

// --- buffer v3 + recovery ---

core::BufferEntry make_entry(std::size_t i) {
  core::BufferEntry e;
  e.set.question = "q" + std::to_string(i);
  e.set.answer = "a" + std::to_string(i);
  e.set.reference = "r" + std::to_string(i);
  e.set.true_domain = static_cast<int>(i % 3);
  e.set.true_subtopic = static_cast<int>(i % 2);
  e.set.stream_position = i;
  e.inserted_at = i;
  if (i % 4 != 0) e.dominant_domain = i % 3;
  e.scores = {0.5, 0.25 * static_cast<double>(i), 1.0};
  e.embedding = tensor::Tensor(1, 6, static_cast<float>(i) * 0.125f);
  return e;
}

TEST(BufferV3, SaveWritesObsfAndLegacyStillLoads) {
  const std::string v3 = temp_path("odlp_buffer_v3.bin");
  const std::string v2 = temp_path("odlp_buffer_v2.bin");
  core::DataBuffer buf(16);
  for (std::size_t i = 0; i < 9; ++i) buf.add(make_entry(i));

  core::save_buffer(buf, v3);
  core::save_buffer_legacy(buf, v2);

  // v3 leads with the OBSF magic, v2 with the legacy ODBF one.
  std::uint32_t m3 = 0, m2 = 0;
  std::memcpy(&m3, slurp(v3).data(), 4);
  std::memcpy(&m2, slurp(v2).data(), 4);
  EXPECT_EQ(m3, io::kObsfMagic);
  EXPECT_NE(m2, io::kObsfMagic);

  for (const std::string& path : {v3, v2}) {
    core::DataBuffer loaded = core::load_buffer(path);
    EXPECT_EQ(loaded.capacity(), 16u);
    ASSERT_EQ(loaded.size(), 9u);
    for (std::size_t i = 0; i < 9; ++i) {
      const auto& a = buf.entry(i);
      const auto& b = loaded.entry(i);
      EXPECT_EQ(b.set.question, a.set.question);
      EXPECT_EQ(b.dominant_domain, a.dominant_domain);
      EXPECT_DOUBLE_EQ(b.scores.dss, a.scores.dss);
      ASSERT_EQ(b.embedding.cols(), a.embedding.cols());
      for (std::size_t j = 0; j < a.embedding.size(); ++j) {
        EXPECT_FLOAT_EQ(b.embedding.data()[j], a.embedding.data()[j]);
      }
    }
  }
  std::remove(v3.c_str());
  std::remove(v2.c_str());
}

TEST(BufferV3, RecoverWalksBackToLastIntactBlock) {
  const std::string path = temp_path("odlp_buffer_recover.bin");
  core::DataBuffer buf(4096);
  for (std::size_t i = 0; i < 2000; ++i) buf.add(make_entry(i));
  core::save_buffer(buf, path);

  // Undamaged: full recovery.
  {
    const core::BufferRecovery rec = core::recover_buffer(path);
    EXPECT_FALSE(rec.truncated);
    EXPECT_EQ(rec.rows_recovered, 2000u);
    EXPECT_EQ(rec.rows_expected, 2000u);
  }

  // Torn tail: strict load throws, recovery keeps an intact prefix.
  const std::vector<unsigned char> bytes = slurp(path);
  spit(path, {bytes.begin(), bytes.begin() + bytes.size() * 3 / 5});
  EXPECT_THROW(core::load_buffer(path), util::CorruptionError);
  const core::BufferRecovery rec = core::recover_buffer(path);
  EXPECT_TRUE(rec.truncated);
  EXPECT_GT(rec.rows_recovered, 0u);
  EXPECT_LT(rec.rows_recovered, 2000u);
  EXPECT_EQ(rec.rows_recovered % 256, 0u);  // whole checkpoint blocks only
  EXPECT_EQ(rec.rows_expected, 2000u);
  for (std::size_t i = 0; i < rec.rows_recovered; ++i) {
    EXPECT_EQ(rec.buffer.entry(i).set.question, "q" + std::to_string(i));
  }
  std::remove(path.c_str());
}

// --- obs binary sinks ---

TEST(ObsSinks, MetricsObsfRoundTripAndLegacyLoad) {
  obs::MetricsSnapshot snap;
  {
    obs::MetricSample c;
    c.kind = obs::MetricSample::Kind::kCounter;
    c.name = "test.counter";
    c.counter = 12345;
    snap.samples.push_back(c);
    obs::MetricSample g;
    g.kind = obs::MetricSample::Kind::kGauge;
    g.name = "test.gauge";
    g.gauge = -2.5;
    snap.samples.push_back(g);
    obs::MetricSample h;
    h.kind = obs::MetricSample::Kind::kHistogram;
    h.name = "test.hist";
    h.bounds = {1.0, 10.0, 100.0};
    h.buckets = {4, 3, 2, 1};
    h.hist.count = 10;
    h.hist.sum = 250.0;
    h.hist.min = 0.5;
    h.hist.max = 120.0;
    h.hist.mean = 25.0;
    snap.samples.push_back(h);
  }
  for (bool legacy : {false, true}) {
    const std::string path = temp_path("odlp_metrics_sink.bin");
    if (legacy) {
      obs::save_metrics_legacy(snap, path);
    } else {
      obs::save_metrics(snap, path);
    }
    const obs::MetricsSnapshot back = obs::load_metrics(path);
    ASSERT_EQ(back.samples.size(), 3u);
    EXPECT_EQ(back.counter_value("test.counter"), 12345u);
    EXPECT_DOUBLE_EQ(back.gauge_value("test.gauge"), -2.5);
    const obs::MetricSample* h = back.find("test.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->buckets, (std::vector<std::uint64_t>{4, 3, 2, 1}));
    EXPECT_DOUBLE_EQ(h->hist.sum, 250.0);
    EXPECT_DOUBLE_EQ(h->hist.mean, 25.0);
    std::remove(path.c_str());
  }
}

TEST(ObsSinks, MetricsObsfBitFlipThrows) {
  obs::MetricsSnapshot snap;
  obs::MetricSample c;
  c.kind = obs::MetricSample::Kind::kCounter;
  c.name = "test.flip";
  c.counter = 99;
  snap.samples.push_back(c);
  const std::string path = temp_path("odlp_metrics_flip.bin");
  obs::save_metrics(snap, path);
  std::vector<unsigned char> bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0x10;
  spit(path, bytes);
  EXPECT_THROW(obs::load_metrics(path), util::CorruptionError);
  std::remove(path.c_str());
}

TEST(ObsSinks, BinaryTraceFlushConvertsToBalancedChromeJson) {
  const std::string bin = temp_path("odlp_trace.obsf");
  const std::string json = temp_path("odlp_trace.json");
  obs::enable_tracing(temp_path("odlp_trace_unused.json"));
  {
    ODLP_TRACE_SCOPE("outer");
    { ODLP_TRACE_SCOPE("inner"); }
    { ODLP_TRACE_SCOPE("inner"); }
  }
  obs::disable_tracing();
  ASSERT_TRUE(obs::flush_trace_binary(bin));
  obs::trace_binary_to_chrome_json(bin, json);

  const std::vector<unsigned char> raw = slurp(json);
  const std::string text(raw.begin(), raw.end());
  // Balanced B/E stream with the recorded span names.
  const auto count = [&text](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
  EXPECT_GE(count("\"name\":\"inner\""), 4u);  // 2 spans x B+E
  EXPECT_GE(count("\"name\":\"outer\""), 2u);
  std::remove(bin.c_str());
  std::remove(json.c_str());
  std::remove(temp_path("odlp_trace_unused.json").c_str());
}

}  // namespace
}  // namespace odlp
