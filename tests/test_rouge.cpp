#include <gtest/gtest.h>

#include "eval/rouge.h"

namespace odlp::eval {
namespace {

TEST(Rouge1, IdenticalTextsScoreOne) {
  EXPECT_DOUBLE_EQ(rouge1_f1("the cat sat", "the cat sat"), 1.0);
}

TEST(Rouge1, DisjointTextsScoreZero) {
  EXPECT_DOUBLE_EQ(rouge1_f1("alpha beta", "gamma delta"), 0.0);
}

TEST(Rouge1, KnownPartialOverlap) {
  // candidate: {a b c}, reference: {a b d}: overlap 2, P=R=2/3, F1=2/3.
  EXPECT_NEAR(rouge1_f1("a b c", "a b d"), 2.0 / 3.0, 1e-9);
}

TEST(Rouge1, NormalizationAppliedBeforeScoring) {
  EXPECT_DOUBLE_EQ(rouge1_f1("The CAT, sat!", "the cat sat"), 1.0);
}

TEST(Rouge1, EmptyCandidateOrReference) {
  EXPECT_DOUBLE_EQ(rouge1_f1("", "text here"), 0.0);
  EXPECT_DOUBLE_EQ(rouge1_f1("text here", ""), 0.0);
  EXPECT_DOUBLE_EQ(rouge1_f1("", ""), 0.0);
}

TEST(RougeN, PrecisionRecallAsymmetry) {
  // candidate "a" vs reference "a a a": P=1, R=1/3.
  const RougeScore s = rouge_n("a", "a a a", 1);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_NEAR(s.recall, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.f1, 0.5, 1e-9);
}

TEST(RougeN, SymmetricF1) {
  const double ab = rouge1_f1("a b c", "b c d");
  const double ba = rouge1_f1("b c d", "a b c");
  EXPECT_DOUBLE_EQ(ab, ba);
}

TEST(Rouge2, RequiresSharedBigrams) {
  EXPECT_DOUBLE_EQ(rouge_n("a b c", "c b a", 2).f1, 0.0);
  EXPECT_GT(rouge_n("a b c", "a b d", 2).f1, 0.0);
}

TEST(Rouge2, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(rouge_n("x y z w", "x y z w", 2).f1, 1.0);
}

TEST(RougeL, LcsBasedScore) {
  // candidate "a b c d", reference "a c d": LCS = a c d (3).
  const RougeScore s = rouge_l("a b c d", "a c d");
  EXPECT_NEAR(s.precision, 3.0 / 4.0, 1e-9);
  EXPECT_NEAR(s.recall, 1.0, 1e-9);
}

TEST(RougeL, OrderMattersUnlikeRouge1) {
  const double r1 = rouge1_f1("a b c", "c b a");
  const RougeScore rl = rouge_l("a b c", "c b a");
  EXPECT_DOUBLE_EQ(r1, 1.0);
  EXPECT_LT(rl.f1, 1.0);
}

TEST(CorpusRouge, AveragesPairs) {
  const double score = corpus_rouge1({"a b", "x"}, {"a b", "y"});
  EXPECT_NEAR(score, 0.5, 1e-9);  // (1.0 + 0.0) / 2
}

TEST(CorpusRouge, MismatchedSizesReturnZero) {
  EXPECT_DOUBLE_EQ(corpus_rouge1({"a"}, {"a", "b"}), 0.0);
  EXPECT_DOUBLE_EQ(corpus_rouge1({}, {}), 0.0);
}

TEST(RougeTokens, MultisetClipping) {
  // candidate has "the" x3, reference x1: clipped overlap = 1.
  const RougeScore s = rouge_n_tokens({"the", "the", "the"}, {"the"}, 1);
  EXPECT_NEAR(s.precision, 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

// Property sweep: F1 is always within [0, 1] and equals the harmonic mean.
struct RougeCase {
  const char* candidate;
  const char* reference;
};

class RougeProperties : public ::testing::TestWithParam<RougeCase> {};

TEST_P(RougeProperties, F1WithinBoundsAndHarmonicMean) {
  const auto& c = GetParam();
  for (std::size_t n = 1; n <= 3; ++n) {
    const RougeScore s = rouge_n(c.candidate, c.reference, n);
    EXPECT_GE(s.f1, 0.0);
    EXPECT_LE(s.f1, 1.0);
    EXPECT_GE(s.precision, 0.0);
    EXPECT_LE(s.precision, 1.0);
    EXPECT_GE(s.recall, 0.0);
    EXPECT_LE(s.recall, 1.0);
    if (s.precision + s.recall > 0) {
      EXPECT_NEAR(s.f1, 2 * s.precision * s.recall / (s.precision + s.recall), 1e-12);
    } else {
      EXPECT_DOUBLE_EQ(s.f1, 0.0);
    }
  }
  const RougeScore l = rouge_l(c.candidate, c.reference);
  EXPECT_GE(l.f1, 0.0);
  EXPECT_LE(l.f1, 1.0);
}

TEST_P(RougeProperties, SelfSimilarityIsMaximal) {
  const auto& c = GetParam();
  const double self = rouge1_f1(c.candidate, c.candidate);
  const double cross = rouge1_f1(c.candidate, c.reference);
  if (std::string(c.candidate).empty()) {
    EXPECT_DOUBLE_EQ(self, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(self, 1.0);
    EXPECT_LE(cross, self);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RougeProperties,
    ::testing::Values(RougeCase{"the quick brown fox", "the lazy dog"},
                      RougeCase{"a a a b", "a b b b"},
                      RougeCase{"", "nonempty"},
                      RougeCase{"x", "x"},
                      RougeCase{"one two three four five", "five four three"},
                      RougeCase{"repeat repeat repeat", "repeat"},
                      RougeCase{"Punctuation, RICH! text?", "punctuation rich text"}));

}  // namespace
}  // namespace odlp::eval
