#include <gtest/gtest.h>

#include "util/args.h"

namespace odlp::util {
namespace {

Args make(std::initializer_list<const char*> argv_list) {
  std::vector<char*> argv;
  for (const char* a : argv_list) argv.push_back(const_cast<char*>(a));
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, SpaceSeparatedValues) {
  const Args a = make({"prog", "--name", "value", "--n", "7"});
  EXPECT_EQ(a.get("name", ""), "value");
  EXPECT_EQ(a.get_int("n", 0), 7);
}

TEST(Args, EqualsSeparatedValues) {
  const Args a = make({"prog", "--lr=0.01", "--dataset=ALPACA"});
  EXPECT_DOUBLE_EQ(a.get_double("lr", 0), 0.01);
  EXPECT_EQ(a.get("dataset", ""), "ALPACA");
}

TEST(Args, BareBooleanFlags) {
  const Args a = make({"prog", "--verbose", "--x", "1"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_TRUE(a.get_bool("verbose", false));
  EXPECT_FALSE(a.get_bool("quiet", false));
}

TEST(Args, BoolValueForms) {
  const Args a = make({"prog", "--on=true", "--off=no"});
  EXPECT_TRUE(a.get_bool("on", false));
  EXPECT_FALSE(a.get_bool("off", true));
  EXPECT_THROW(make({"prog", "--b=maybe"}).get_bool("b", false),
               std::invalid_argument);
}

TEST(Args, FallbacksWhenAbsent) {
  const Args a = make({"prog"});
  EXPECT_EQ(a.get("missing", "dflt"), "dflt");
  EXPECT_EQ(a.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(a.get_double("missing", 1.5), 1.5);
}

TEST(Args, MalformedNumbersThrow) {
  EXPECT_THROW(make({"prog", "--n", "12x"}).get_int("n", 0),
               std::invalid_argument);
  EXPECT_THROW(make({"prog", "--f", "abc"}).get_double("f", 0),
               std::invalid_argument);
}

TEST(Args, PositionalArguments) {
  const Args a = make({"prog", "input.txt", "--k", "3", "more"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "input.txt");
  EXPECT_EQ(a.positional()[1], "more");
}

TEST(Args, UnknownFlagDetection) {
  const Args a = make({"prog", "--good", "1", "--typo", "2"});
  const auto unknown = a.unknown({"good"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Args, NegativeNumberAsValue) {
  // A negative value is not mistaken for a flag because it lacks "--".
  const Args a = make({"prog", "--n", "-5"});
  EXPECT_EQ(a.get_int("n", 0), -5);
}

}  // namespace
}  // namespace odlp::util
