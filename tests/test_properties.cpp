// Property-style sweeps and fuzz tests on cross-cutting invariants.
#include <gtest/gtest.h>

#include "baselines/fifo_policy.h"
#include "baselines/kcenter_policy.h"
#include "baselines/random_policy.h"
#include "baselines/single_metric_policy.h"
#include "core/policy.h"
#include "core/quality_metrics.h"
#include "core/weighted_policy.h"
#include "exp/experiment.h"
#include "llm/decode_session.h"
#include "util/rng.h"

namespace odlp {
namespace {

// ---------------------------------------------------------------------------
// Fuzz: every policy maintains buffer invariants over random offer sequences.
// ---------------------------------------------------------------------------

class PolicyFuzz : public ::testing::TestWithParam<const char*> {};

std::uint64_t fuzz_seed() { return 0x9e3779b9; }

TEST_P(PolicyFuzz, InvariantsHoldOverRandomSequences) {
  auto policy = exp::make_policy(GetParam());
  util::Rng rng(fuzz_seed());
  for (std::size_t capacity : {1u, 2u, 5u, 16u}) {
    policy->reset();
    core::DataBuffer buffer(capacity);
    for (int step = 0; step < 300; ++step) {
      core::Candidate cand;
      cand.scores = {rng.uniform(), rng.uniform(), rng.uniform()};
      tensor::Tensor emb(1, 6);
      for (std::size_t j = 0; j < 6; ++j) {
        emb.at(0, j) = static_cast<float>(rng.normal());
      }
      cand.embedding = std::move(emb);
      if (rng.bernoulli(0.8)) cand.dominant_domain = rng.uniform_index(4);

      const bool was_full = buffer.full();
      const core::Decision d = policy->offer(cand, buffer, rng);
      if (d.admit) {
        if (was_full) {
          // Admitting into a full buffer must name a valid victim.
          ASSERT_TRUE(d.victim.has_value());
          ASSERT_LT(*d.victim, buffer.size());
          core::BufferEntry entry;
          entry.scores = cand.scores;
          entry.embedding = cand.embedding;
          entry.dominant_domain = cand.dominant_domain;
          entry.inserted_at = static_cast<std::size_t>(step);
          buffer.replace(*d.victim, std::move(entry));
        } else {
          ASSERT_FALSE(d.victim.has_value());
          core::BufferEntry entry;
          entry.scores = cand.scores;
          entry.embedding = cand.embedding;
          entry.dominant_domain = cand.dominant_domain;
          entry.inserted_at = static_cast<std::size_t>(step);
          buffer.add(std::move(entry));
        }
      }
      ASSERT_LE(buffer.size(), capacity);
    }
    // Every policy except the pathological must admit at least the fills.
    EXPECT_GE(buffer.size(), std::min<std::size_t>(capacity, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyFuzz,
                         ::testing::Values("Ours", "Random", "FIFO", "K-Center",
                                           "EOE", "DSS", "IDD", "WeightedSum"));

// ---------------------------------------------------------------------------
// DSS monotonicity per domain: adding a domain word never lowers DSS.
// ---------------------------------------------------------------------------

class DssMonotone : public ::testing::TestWithParam<const char*> {};

TEST_P(DssMonotone, AddingDomainWordNeverLowersScore) {
  const auto& dict = lexicon::builtin_dictionary();
  const auto idx = dict.index_of(GetParam());
  ASSERT_TRUE(idx.has_value());
  const auto& domain = dict.domain(*idx);

  std::vector<std::string> tokens = {"nonlexicon", "words", "only", "here"};
  double prev = core::domain_specific_score(tokens, dict);
  // Appending lexicon words increases the covered fraction monotonically
  // (the token count grows too, but coverage grows faster from zero).
  for (std::size_t k = 0; k < 5 && k < domain.flattened().size(); ++k) {
    tokens.push_back(domain.flattened()[k]);
    const double cur = core::domain_specific_score(tokens, dict);
    EXPECT_GE(cur, prev) << "after adding " << domain.flattened()[k];
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DssMonotone,
                         ::testing::Values("medical", "emotion", "prosocial",
                                           "reasoning", "daily", "glove"));

// ---------------------------------------------------------------------------
// KV-cache equivalence across random model geometries.
// ---------------------------------------------------------------------------

struct GeometryCase {
  std::size_t dim, heads, layers;
};

class KvCacheGeometry : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(KvCacheGeometry, IncrementalMatchesFullForward) {
  const auto& g = GetParam();
  llm::ModelConfig mc;
  mc.vocab_size = 30;
  mc.dim = g.dim;
  mc.heads = g.heads;
  mc.layers = g.layers;
  mc.ff_hidden = g.dim * 2;
  mc.max_seq_len = 12;
  llm::MiniLlm model(mc, 1234 + g.dim);
  const std::vector<int> tokens = {2, 9, 17, 4, 26};

  llm::DecodeSession session(model);
  tensor::Tensor inc;
  for (int t : tokens) inc = session.step(t);
  const tensor::Tensor full = model.forward(tokens, false);
  const std::size_t last = tokens.size() - 1;
  for (std::size_t j = 0; j < inc.cols(); ++j) {
    EXPECT_NEAR(inc.at(0, j), full.at(last, j), 2e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, KvCacheGeometry,
                         ::testing::Values(GeometryCase{8, 1, 1},
                                           GeometryCase{8, 2, 2},
                                           GeometryCase{16, 4, 1},
                                           GeometryCase{24, 3, 2},
                                           GeometryCase{32, 8, 3}));

// ---------------------------------------------------------------------------
// IDD bounds over random embeddings: always within [0, 2].
// ---------------------------------------------------------------------------

TEST(IddBounds, RandomEmbeddingsStayWithinRange) {
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    tensor::Tensor probe(1, 5);
    for (std::size_t j = 0; j < 5; ++j) {
      probe.at(0, j) = static_cast<float>(rng.normal());
    }
    std::vector<tensor::Tensor> storage;
    std::vector<const tensor::Tensor*> refs;
    const std::size_t n = 1 + rng.uniform_index(6);
    for (std::size_t i = 0; i < n; ++i) {
      tensor::Tensor e(1, 5);
      for (std::size_t j = 0; j < 5; ++j) {
        e.at(0, j) = static_cast<float>(rng.normal());
      }
      storage.push_back(std::move(e));
    }
    for (const auto& e : storage) refs.push_back(&e);
    const double idd = core::in_domain_dissimilarity(probe, refs);
    EXPECT_GE(idd, 0.0);
    EXPECT_LE(idd, 2.0);
  }
}

// ---------------------------------------------------------------------------
// Trainer determinism: same seed, same corpus -> identical final loss.
// ---------------------------------------------------------------------------

TEST(TrainerDeterminism, SameSeedSameLoss) {
  auto run = [] {
    llm::ModelConfig mc;
    mc.vocab_size = 16;
    mc.dim = 8;
    mc.heads = 2;
    mc.layers = 1;
    mc.ff_hidden = 16;
    mc.max_seq_len = 12;
    llm::MiniLlm model(mc, 55);
    llm::TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 2;
    tc.learning_rate = 5e-3f;
    llm::Trainer trainer(model, tc, util::Rng(66));
    std::vector<text::Tokenizer::EncodedDialogue> corpus;
    for (int k = 0; k < 3; ++k) {
      text::Tokenizer::EncodedDialogue ex;
      ex.input = {2, 5 + k, 7, 3};
      ex.targets = {5 + k, 7, 3, -1};
      corpus.push_back(ex);
    }
    return trainer.fine_tune(corpus).final_epoch_loss;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace odlp
