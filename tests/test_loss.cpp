#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"

namespace odlp::nn {
namespace {

using tensor::Tensor;

TEST(CrossEntropy, UniformLogitsGiveLogV) {
  Tensor logits(2, 4, 0.0f);
  auto r = cross_entropy(logits, {1, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-6);
  EXPECT_EQ(r.count, 2u);
}

TEST(CrossEntropy, ConfidentCorrectPredictionLowLoss) {
  Tensor logits(1, 3, 0.0f);
  logits.at(0, 2) = 20.0f;
  auto r = cross_entropy(logits, {2});
  EXPECT_LT(r.loss, 1e-6);
}

TEST(CrossEntropy, ConfidentWrongPredictionHighLoss) {
  Tensor logits(1, 3, 0.0f);
  logits.at(0, 0) = 20.0f;
  auto r = cross_entropy(logits, {2});
  EXPECT_GT(r.loss, 10.0);
}

TEST(CrossEntropy, IgnoreIndexMasksPositions) {
  Tensor logits(3, 4, 0.0f);
  auto r = cross_entropy(logits, {-1, 2, -1});
  EXPECT_EQ(r.count, 1u);
  // Masked rows must have zero gradient.
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(r.dlogits.at(0, j), 0.0f);
    EXPECT_FLOAT_EQ(r.dlogits.at(2, j), 0.0f);
  }
}

TEST(CrossEntropy, AllMaskedReturnsZero) {
  Tensor logits(2, 3, 0.0f);
  auto r = cross_entropy(logits, {-1, -1});
  EXPECT_EQ(r.count, 0u);
  EXPECT_DOUBLE_EQ(r.loss, 0.0);
  EXPECT_FLOAT_EQ(r.dlogits.l2_norm(), 0.0f);
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  Tensor logits = Tensor::from(2, 3, {1, 2, 3, -1, 0, 1});
  auto r = cross_entropy(logits, {0, 2});
  for (std::size_t i = 0; i < 2; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < 3; ++j) s += r.dlogits.at(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(CrossEntropy, GradientSignPattern) {
  // Gradient is negative at the target (push up), positive elsewhere.
  Tensor logits(1, 3, 0.0f);
  auto r = cross_entropy(logits, {1});
  EXPECT_LT(r.dlogits.at(0, 1), 0.0f);
  EXPECT_GT(r.dlogits.at(0, 0), 0.0f);
  EXPECT_GT(r.dlogits.at(0, 2), 0.0f);
}

TEST(CrossEntropy, MeanOverSupervisedPositionsOnly) {
  Tensor logits(4, 2, 0.0f);
  auto half = cross_entropy(logits, {0, -1, 0, -1});
  auto full = cross_entropy(logits, {0, 0, 0, 0});
  EXPECT_NEAR(half.loss, full.loss, 1e-9);  // same per-position NLL
  EXPECT_EQ(half.count, 2u);
  EXPECT_EQ(full.count, 4u);
}

TEST(Perplexity, ExponentialOfLoss) {
  EXPECT_NEAR(perplexity(0.0), 1.0, 1e-9);
  EXPECT_NEAR(perplexity(std::log(50.0)), 50.0, 1e-6);
}

}  // namespace
}  // namespace odlp::nn
