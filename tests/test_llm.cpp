#include <gtest/gtest.h>

#include <cstdio>

#include "llm/minillm.h"
#include "llm/trainer.h"
#include "nn/loss.h"
#include "text/tokenizer.h"

namespace odlp::llm {
namespace {

ModelConfig tiny_config() {
  ModelConfig mc;
  mc.vocab_size = 16;
  mc.dim = 8;
  mc.heads = 2;
  mc.layers = 2;
  mc.ff_hidden = 16;
  mc.max_seq_len = 12;
  return mc;
}

TEST(MiniLlm, ForwardShape) {
  MiniLlm model(tiny_config(), 1);
  auto logits = model.forward({2, 5, 7}, false);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), 16u);
}

TEST(MiniLlm, ForwardIsDeterministicInInference) {
  MiniLlm model(tiny_config(), 2);
  auto a = model.forward({1, 2, 3}, false);
  auto b = model.forward({1, 2, 3}, false);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
}

TEST(MiniLlm, SameSeedSameWeights) {
  MiniLlm a(tiny_config(), 7), b(tiny_config(), 7);
  auto la = a.forward({1, 4}, false);
  auto lb = b.forward({1, 4}, false);
  for (std::size_t i = 0; i < la.size(); ++i) EXPECT_FLOAT_EQ(la.data()[i], lb.data()[i]);
}

TEST(MiniLlm, SequenceTruncatedToMaxLen) {
  MiniLlm model(tiny_config(), 3);
  std::vector<int> ids(40, 1);
  auto logits = model.forward(ids, false);
  EXPECT_EQ(logits.rows(), tiny_config().max_seq_len);
}

TEST(MiniLlm, HiddenStatesShape) {
  MiniLlm model(tiny_config(), 4);
  auto h = model.hidden_states({1, 2, 3, 4});
  EXPECT_EQ(h.rows(), 4u);
  EXPECT_EQ(h.cols(), 8u);
}

TEST(MiniLlm, ParameterCountsMatchArchitecture) {
  MiniLlm model(tiny_config(), 5);
  // tok 16*8 + pos 12*8 + head 8*16 = 352; per block: 4 projections
  // 4*(8*8+8)=288 + 2 LayerNorms 2*16=32 + ff (8*16+16)+(16*8+8)=280 = 600;
  // final LN 16.
  const std::size_t expected = 352u + 2u * 600u + 16u;
  EXPECT_EQ(model.num_parameters(), expected);
  EXPECT_EQ(model.num_trainable_parameters(), expected);
}

TEST(MiniLlm, LoraReducesTrainableParams) {
  MiniLlm model(tiny_config(), 6);
  const std::size_t total = model.num_parameters();
  nn::LoraConfig lc;
  lc.rank = 2;
  model.attach_lora(lc);
  EXPECT_TRUE(model.has_lora());
  // 2 layers x 4 projections x (8*2 + 2*8) = 256 adapter params.
  EXPECT_EQ(model.num_trainable_parameters(), 256u);
  EXPECT_EQ(model.num_parameters(), total + 256u);
}

TEST(MiniLlm, MergeLoraKeepsOutputs) {
  MiniLlm model(tiny_config(), 8);
  nn::LoraConfig lc;
  lc.rank = 2;
  lc.dropout = 0.0f;
  model.attach_lora(lc);
  // Train one step so adapters become nonzero.
  text::Tokenizer tok = text::Tokenizer(text::Vocab{});
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 1;
  tc.learning_rate = 0.05f;
  Trainer trainer(model, tc, util::Rng(9));
  text::Tokenizer::EncodedDialogue ex;
  ex.input = {2, 5, 4, 6, 3};
  ex.targets = {5, 4, 6, 3, -1};
  trainer.fine_tune({ex});

  auto before = model.forward({2, 5, 4}, false);
  model.merge_lora();
  EXPECT_FALSE(model.has_lora());
  auto after = model.forward({2, 5, 4}, false);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after.data()[i], before.data()[i], 1e-4f);
  }
}

TEST(MiniLlm, SaveLoadRoundTrip) {
  const std::string path = "/tmp/odlp_test_model.bin";
  MiniLlm a(tiny_config(), 10);
  a.save(path);
  MiniLlm b(tiny_config(), 11);  // different init
  b.load(path);
  auto la = a.forward({1, 2, 3}, false);
  auto lb = b.forward({1, 2, 3}, false);
  for (std::size_t i = 0; i < la.size(); ++i) EXPECT_FLOAT_EQ(la.data()[i], lb.data()[i]);
  std::remove(path.c_str());
}

TEST(MiniLlm, LoadRejectsMissingFile) {
  MiniLlm model(tiny_config(), 12);
  EXPECT_THROW(model.load("/tmp/definitely_not_a_file_odlp.bin"), std::runtime_error);
}

TEST(MiniLlm, LoadRejectsGarbage) {
  const std::string path = "/tmp/odlp_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  MiniLlm model(tiny_config(), 13);
  EXPECT_THROW(model.load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelConfig, FlopsGrowWithSequenceLength) {
  ModelConfig mc = tiny_config();
  EXPECT_GT(mc.forward_flops(16), mc.forward_flops(4));
  EXPECT_GT(mc.forward_flops(4), 0.0);
}

TEST(Trainer, LossDecreasesOnOverfittableCorpus) {
  MiniLlm model(tiny_config(), 14);
  TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 4;
  tc.learning_rate = 1e-2f;
  Trainer trainer(model, tc, util::Rng(15));

  std::vector<text::Tokenizer::EncodedDialogue> corpus;
  for (int k = 0; k < 4; ++k) {
    text::Tokenizer::EncodedDialogue ex;
    ex.input = {2, 5 + k, 4, 6, 7, 3};
    ex.targets = {5 + k, 4, 6, 7, 3, -1};
    ex.sep_position = 2;
    corpus.push_back(ex);
  }
  auto stats = trainer.fine_tune(corpus);
  EXPECT_LT(stats.final_epoch_loss, stats.first_epoch_loss * 0.5);
  EXPECT_GT(stats.optimizer_steps, 0u);
  EXPECT_EQ(stats.sequences_processed, 4u * 30u);
}

TEST(Trainer, EmptyCorpusIsNoop) {
  MiniLlm model(tiny_config(), 16);
  Trainer trainer(model, TrainConfig{}, util::Rng(17));
  auto stats = trainer.fine_tune({});
  EXPECT_EQ(stats.optimizer_steps, 0u);
  EXPECT_EQ(stats.sequences_processed, 0u);
}

TEST(Trainer, LoraOnlyTrainingLeavesBaseWeightsUntouched) {
  MiniLlm model(tiny_config(), 18);
  nn::LoraConfig lc;
  lc.rank = 2;
  model.attach_lora(lc);
  // Snapshot a base weight.
  nn::ParameterList params = model.parameters();
  const nn::Parameter* frozen = nullptr;
  for (const nn::Parameter* p : params) {
    if (!p->trainable && p->name.find("q_proj.weight") != std::string::npos) {
      frozen = p;
      break;
    }
  }
  ASSERT_NE(frozen, nullptr);
  const tensor::Tensor snapshot = frozen->value;

  TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 2;
  tc.learning_rate = 1e-2f;
  Trainer trainer(model, tc, util::Rng(19));
  text::Tokenizer::EncodedDialogue ex;
  ex.input = {2, 5, 4, 3};
  ex.targets = {5, 4, 3, -1};
  trainer.fine_tune({ex});

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_FLOAT_EQ(frozen->value.data()[i], snapshot.data()[i]);
  }
}

}  // namespace
}  // namespace odlp::llm
