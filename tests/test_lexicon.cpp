#include <gtest/gtest.h>

#include "lexicon/lexicon.h"

namespace odlp::lexicon {
namespace {

Domain small_domain() {
  return Domain("test", {{"sub1", {"alpha", "beta"}}, {"sub2", {"gamma", "beta"}}});
}

TEST(Domain, ContainsWordsFromAllSublexicons) {
  Domain d = small_domain();
  EXPECT_TRUE(d.contains("alpha"));
  EXPECT_TRUE(d.contains("gamma"));
  EXPECT_FALSE(d.contains("delta"));
}

TEST(Domain, DeduplicatesAcrossSublexicons) {
  Domain d = small_domain();
  EXPECT_EQ(d.vocabulary_size(), 3u);  // beta appears twice
  EXPECT_EQ(d.flattened().size(), 3u);
}

TEST(Domain, OverlapIsMultisetOverTokens) {
  Domain d = small_domain();
  EXPECT_EQ(d.overlap({"alpha", "alpha", "zeta"}), 2u);
  EXPECT_EQ(d.overlap({}), 0u);
}

TEST(Dictionary, IndexOfFindsDomains) {
  LexiconDictionary dict({Domain("a", {{"s", {"x"}}}), Domain("b", {{"s", {"y"}}})});
  EXPECT_EQ(dict.index_of("b").value(), 1u);
  EXPECT_FALSE(dict.index_of("missing").has_value());
}

TEST(Dictionary, OverlapsPerDomain) {
  LexiconDictionary dict({Domain("a", {{"s", {"x"}}}), Domain("b", {{"s", {"y"}}})});
  const auto counts = dict.overlaps({"x", "y", "y", "z"});
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(Dictionary, DominantDomainArgmax) {
  LexiconDictionary dict({Domain("a", {{"s", {"x"}}}), Domain("b", {{"s", {"y"}}})});
  EXPECT_EQ(dict.dominant_domain({"y", "y", "x"}).value(), 1u);
}

TEST(Dictionary, DominantDomainTieBreaksLowIndex) {
  LexiconDictionary dict({Domain("a", {{"s", {"x"}}}), Domain("b", {{"s", {"y"}}})});
  EXPECT_EQ(dict.dominant_domain({"x", "y"}).value(), 0u);
}

TEST(Dictionary, NoOverlapYieldsNullopt) {
  LexiconDictionary dict({Domain("a", {{"s", {"x"}}})});
  EXPECT_FALSE(dict.dominant_domain({"unrelated", "words"}).has_value());
  EXPECT_FALSE(dict.dominant_domain({}).has_value());
}

TEST(Builtin, HasSixDomainsMatchingProfiles) {
  const auto& dict = builtin_dictionary();
  EXPECT_EQ(dict.num_domains(), 6u);
  for (const char* name :
       {"medical", "emotion", "prosocial", "reasoning", "daily", "glove"}) {
    EXPECT_TRUE(dict.index_of(name).has_value()) << name;
  }
}

TEST(Builtin, PaperTableOneWordsPresent) {
  const auto& dict = builtin_dictionary();
  const auto& medical = dict.domain(dict.index_of("medical").value());
  for (const char* w : {"dose", "vial", "inject", "pelvis", "lymph", "benadryl"}) {
    EXPECT_TRUE(medical.contains(w)) << w;
  }
  const auto& emotion = dict.domain(dict.index_of("emotion").value());
  for (const char* w : {"bunker", "chasm", "amazingly", "advocate"}) {
    EXPECT_TRUE(emotion.contains(w)) << w;
  }
}

TEST(Builtin, DomainsAreDisjointEnough) {
  // Each domain should be mostly disjoint from every other (dominant-domain
  // classification would be meaningless otherwise).
  const auto& dict = builtin_dictionary();
  for (std::size_t i = 0; i < dict.num_domains(); ++i) {
    for (std::size_t j = i + 1; j < dict.num_domains(); ++j) {
      std::size_t shared = 0;
      for (const auto& w : dict.domain(i).flattened()) {
        if (dict.domain(j).contains(w)) ++shared;
      }
      EXPECT_LT(shared, dict.domain(i).vocabulary_size() / 10)
          << dict.domain(i).name() << " vs " << dict.domain(j).name();
    }
  }
}

TEST(Builtin, EveryDomainHasSubstantialVocabulary) {
  for (const auto& domain : builtin_dictionary().domains()) {
    EXPECT_GE(domain.vocabulary_size(), 30u) << domain.name();
    EXPECT_GE(domain.sublexicons().size(), 3u) << domain.name();
  }
}

TEST(Builtin, FillerWordsBelongToNoDomain) {
  const auto& dict = builtin_dictionary();
  std::size_t in_domain = 0;
  for (const auto& w : filler_words()) {
    for (const auto& d : dict.domains()) {
      if (d.contains(w)) ++in_domain;
    }
  }
  EXPECT_EQ(in_domain, 0u);
}

TEST(Builtin, DictionaryIsSingleton) {
  EXPECT_EQ(&builtin_dictionary(), &builtin_dictionary());
}

}  // namespace
}  // namespace odlp::lexicon
