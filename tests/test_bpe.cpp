#include <gtest/gtest.h>

#include "text/bpe.h"

namespace odlp::text {
namespace {

std::vector<std::string> tiny_corpus() {
  return {
      "low lower lowest low low",
      "new newer newest new new",
      "wide wider widest",
  };
}

TEST(Bpe, TrainLearnsMerges) {
  const auto bpe = BpeTokenizer::train(tiny_corpus(), 20);
  EXPECT_GT(bpe.merges().size(), 0u);
  EXPECT_LE(bpe.merges().size(), 20u);
}

TEST(Bpe, FrequentWordBecomesOnePiece) {
  const auto bpe = BpeTokenizer::train(tiny_corpus(), 40);
  // "low" appears 4 times; with a generous merge budget it should collapse
  // into a single piece carrying the end-of-word marker.
  const auto pieces = bpe.encode_word("low");
  ASSERT_GE(pieces.size(), 1u);
  EXPECT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "low</w>");
}

TEST(Bpe, UnseenWordFallsBackToSubwords) {
  const auto bpe = BpeTokenizer::train(tiny_corpus(), 20);
  const auto pieces = bpe.encode_word("slower");
  EXPECT_GT(pieces.size(), 1u);  // never merged as a whole word
  // Concatenation (minus the marker) reproduces the word.
  std::string joined;
  for (const auto& p : pieces) joined += p;
  EXPECT_EQ(joined, "slower</w>");
}

TEST(Bpe, EncodeDecodeRoundTrip) {
  const auto bpe = BpeTokenizer::train(tiny_corpus(), 30);
  const std::string text = "lower and wider words new";
  const auto pieces = bpe.encode_pieces(text);
  EXPECT_EQ(BpeTokenizer::decode_pieces(pieces), text);
}

TEST(Bpe, ZeroMergesIsCharacterLevel) {
  const auto bpe = BpeTokenizer::train(tiny_corpus(), 0);
  const auto pieces = bpe.encode_word("low");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "l");
  EXPECT_EQ(pieces[1], "o");
  EXPECT_EQ(pieces[2], "w</w>");
}

TEST(Bpe, TrainingIsDeterministic) {
  const auto a = BpeTokenizer::train(tiny_corpus(), 25);
  const auto b = BpeTokenizer::train(tiny_corpus(), 25);
  EXPECT_EQ(a.merges(), b.merges());
}

TEST(Bpe, MoreMergesNeverIncreasesPieceCount) {
  const auto small = BpeTokenizer::train(tiny_corpus(), 5);
  const auto large = BpeTokenizer::train(tiny_corpus(), 40);
  const std::string text = "lowest newest widest";
  EXPECT_LE(large.encode_pieces(text).size(), small.encode_pieces(text).size());
}

TEST(Bpe, SerializationRoundTrip) {
  const auto bpe = BpeTokenizer::train(tiny_corpus(), 15);
  const auto restored = BpeTokenizer::from_string(bpe.to_string());
  EXPECT_EQ(restored.merges(), bpe.merges());
  const std::string text = "lower newest";
  EXPECT_EQ(restored.encode_pieces(text), bpe.encode_pieces(text));
}

TEST(Bpe, FromStringRejectsMalformedLines) {
  EXPECT_THROW(BpeTokenizer::from_string("onlyonetoken\n"), std::runtime_error);
}

TEST(Bpe, PieceVocabularyCoversCorpus) {
  const auto bpe = BpeTokenizer::train(tiny_corpus(), 20);
  const auto vocab = bpe.piece_vocabulary(tiny_corpus());
  EXPECT_GT(vocab.size(), 0u);
  // Every piece of every corpus word must be in the vocabulary.
  for (const auto& doc : tiny_corpus()) {
    for (const auto& piece : bpe.encode_pieces(doc)) {
      EXPECT_NE(std::find(vocab.begin(), vocab.end(), piece), vocab.end()) << piece;
    }
  }
}

TEST(Bpe, EmptyInputs) {
  const auto bpe = BpeTokenizer::train({}, 10);
  EXPECT_TRUE(bpe.merges().empty());
  EXPECT_TRUE(bpe.encode_pieces("").empty());
  EXPECT_EQ(BpeTokenizer::decode_pieces({}), "");
}

}  // namespace
}  // namespace odlp::text
