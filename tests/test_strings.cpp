#include <gtest/gtest.h>

#include "util/strings.h"

namespace odlp::util {
namespace {

TEST(Split, BasicWhitespace) {
  EXPECT_EQ(split("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, MixedDelimiters) {
  EXPECT_EQ(split("a\tb\nc d"), (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(Split, EmptyString) { EXPECT_TRUE(split("").empty()); }

TEST(Split, OnlyDelimiters) { EXPECT_TRUE(split("   \t\n ").empty()); }

TEST(Split, CustomDelimiters) {
  EXPECT_EQ(split("a,b;;c", ",;"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, LeadingAndTrailing) {
  EXPECT_EQ(split("  x  "), (std::vector<std::string>{"x"}));
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, " "), "a b c");
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
}

TEST(Join, EmptyAndSingleton) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(JoinSplit, RoundTrip) {
  const std::vector<std::string> parts = {"alpha", "beta", "gamma"};
  EXPECT_EQ(split(join(parts, " ")), parts);
}

TEST(ToLower, MixedCase) {
  EXPECT_EQ(to_lower("HeLLo World 42"), "hello world 42");
}

TEST(ToLower, AlreadyLower) { EXPECT_EQ(to_lower("abc"), "abc"); }

TEST(Trim, Surrounding) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nhi"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
}

TEST(Trim, AllWhitespaceBecomesEmpty) { EXPECT_EQ(trim("   "), ""); }

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foobar", "bar"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(ReplaceAll, Basic) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
}

TEST(ReplaceAll, GrowingReplacement) {
  EXPECT_EQ(replace_all("aa", "a", "aa"), "aaaa");
}

TEST(ReplaceAll, NoMatch) { EXPECT_EQ(replace_all("abc", "z", "y"), "abc"); }

TEST(ReplaceAll, EmptyFromIsNoop) {
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

TEST(Format, Numbers) {
  EXPECT_EQ(format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("%s", "text"), "text");
}

TEST(Format, EmptyFormat) { EXPECT_EQ(format("%s", ""), ""); }

TEST(Format, LongOutput) {
  const std::string s = format("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

}  // namespace
}  // namespace odlp::util
