#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.h"

namespace odlp::nn {
namespace {

// Minimize f(w) = 0.5 * (w - target)^2 using repeated optimizer steps.
double optimize_quadratic(Optimizer& opt, float start, float target, int steps) {
  Parameter p("w", 1, 1);
  p.value.at(0, 0) = start;
  ParameterList params = {&p};
  for (int i = 0; i < steps; ++i) {
    p.grad.at(0, 0) = p.value.at(0, 0) - target;
    opt.step(params);
    p.zero_grad();
  }
  return p.value.at(0, 0);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Sgd opt(0.1f);
  EXPECT_NEAR(optimize_quadratic(opt, 0.0f, 3.0f, 200), 3.0, 1e-3);
}

TEST(Sgd, MomentumConverges) {
  Sgd opt(0.05f, 0.9f);
  EXPECT_NEAR(optimize_quadratic(opt, 0.0f, -2.0f, 300), -2.0, 1e-2);
}

TEST(Sgd, SingleStepIsLrTimesGrad) {
  Parameter p("w", 1, 2);
  p.value.fill(1.0f);
  p.grad.fill(2.0f);
  Sgd opt(0.5f);
  ParameterList params = {&p};
  opt.step(params);
  EXPECT_FLOAT_EQ(p.value.at(0, 0), 0.0f);
}

TEST(Sgd, SkipsFrozenParameters) {
  Parameter p("w", 1, 1);
  p.value.at(0, 0) = 1.0f;
  p.grad.at(0, 0) = 1.0f;
  p.trainable = false;
  Sgd opt(0.5f);
  ParameterList params = {&p};
  opt.step(params);
  EXPECT_FLOAT_EQ(p.value.at(0, 0), 1.0f);
}

TEST(AdamW, ConvergesOnQuadratic) {
  AdamW::Config cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.0f;
  AdamW opt(cfg);
  EXPECT_NEAR(optimize_quadratic(opt, 0.0f, 5.0f, 500), 5.0, 0.05);
}

TEST(AdamW, FirstStepMagnitudeIsLr) {
  // With bias correction, the very first Adam step has magnitude ~lr.
  Parameter p("w", 1, 1);
  p.value.at(0, 0) = 0.0f;
  p.grad.at(0, 0) = 123.0f;  // any gradient: Adam normalizes
  AdamW::Config cfg;
  cfg.lr = 0.01f;
  cfg.weight_decay = 0.0f;
  AdamW opt(cfg);
  ParameterList params = {&p};
  opt.step(params);
  EXPECT_NEAR(std::fabs(p.value.at(0, 0)), 0.01, 1e-4);
}

TEST(AdamW, WeightDecayShrinksWeightsWithoutGradient) {
  Parameter p("w", 1, 1);
  p.value.at(0, 0) = 1.0f;
  p.grad.at(0, 0) = 0.0f;
  AdamW::Config cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.5f;
  AdamW opt(cfg);
  ParameterList params = {&p};
  opt.step(params);
  // Decoupled decay: w -= lr * wd * w = 1 - 0.05.
  EXPECT_NEAR(p.value.at(0, 0), 0.95f, 1e-5);
}

TEST(AdamW, SkipsFrozenParameters) {
  Parameter p("w", 1, 1);
  p.value.at(0, 0) = 2.0f;
  p.grad.at(0, 0) = 5.0f;
  p.trainable = false;
  AdamW opt(AdamW::Config{});
  ParameterList params = {&p};
  opt.step(params);
  EXPECT_FLOAT_EQ(p.value.at(0, 0), 2.0f);
}

TEST(AdamW, StepCountAdvances) {
  AdamW opt(AdamW::Config{});
  Parameter p("w", 1, 1);
  ParameterList params = {&p};
  EXPECT_EQ(opt.step_count(), 0);
  opt.step(params);
  opt.step(params);
  EXPECT_EQ(opt.step_count(), 2);
}

TEST(AdamW, LearningRateMutable) {
  AdamW opt(AdamW::Config{});
  opt.set_learning_rate(0.5f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.5f);
}

TEST(AdamW, StatePersistsAcrossSteps) {
  // Two parameters with identical gradients must update identically — and a
  // parameter with oscillating gradients should move more slowly than one
  // with consistent gradients (second-moment damping).
  Parameter consistent("a", 1, 1), oscillating("b", 1, 1);
  AdamW::Config cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.0f;
  AdamW opt(cfg);
  ParameterList params = {&consistent, &oscillating};
  for (int i = 0; i < 20; ++i) {
    consistent.grad.at(0, 0) = 1.0f;
    oscillating.grad.at(0, 0) = (i % 2 == 0) ? 1.0f : -1.0f;
    opt.step(params);
    zero_grads(params);
  }
  EXPECT_GT(std::fabs(consistent.value.at(0, 0)),
            std::fabs(oscillating.value.at(0, 0)));
}

}  // namespace
}  // namespace odlp::nn
