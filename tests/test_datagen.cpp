// Dataset profiles, generator, stream statistics, and the user oracle.
#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "data/phrase_pools.h"
#include "data/profiles.h"
#include "data/stream.h"
#include "data/user_oracle.h"
#include "text/normalize.h"

namespace odlp::data {
namespace {

const lexicon::LexiconDictionary& dict() { return lexicon::builtin_dictionary(); }

TEST(Profiles, AllSixPresentWithPaperNames) {
  const auto profiles = all_profiles();
  ASSERT_EQ(profiles.size(), 6u);
  for (const char* name :
       {"ALPACA", "DOLLY", "OPENORCA", "MedDialog", "Prosocial", "Empathetic"}) {
    EXPECT_NO_THROW(profile_by_name(name)) << name;
  }
}

TEST(Profiles, UnknownNameThrows) {
  EXPECT_THROW(profile_by_name("NotADataset"), std::invalid_argument);
}

TEST(Profiles, DiverseDatasetsAreIid) {
  EXPECT_EQ(alpaca_profile().burst_length, 1u);
  EXPECT_EQ(dolly_profile().burst_length, 1u);
  EXPECT_EQ(openorca_profile().burst_length, 1u);
}

TEST(Profiles, DomainSpecificDatasetsAreBursty) {
  EXPECT_GT(meddialog_profile().burst_length, 4u);
  EXPECT_GT(prosocial_profile().burst_length, 4u);
  EXPECT_GT(empathetic_profile().burst_length, 4u);
}

TEST(Profiles, MixturesReferenceKnownDomains) {
  for (const auto& p : all_profiles()) {
    double total = 0.0;
    for (const auto& [name, w] : p.domain_mix) {
      EXPECT_TRUE(dict().index_of(name).has_value()) << p.name << ": " << name;
      EXPECT_GT(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << p.name;
  }
}

TEST(Oracle, DeterministicPerSeed) {
  UserOracle a(99, dict()), b(99, dict());
  EXPECT_EQ(a.preferred_response(0, 0), b.preferred_response(0, 0));
  EXPECT_EQ(a.generic_response(), b.generic_response());
}

TEST(Oracle, DifferentUsersDiffer) {
  UserOracle a(1, dict()), b(2, dict());
  int same = 0, total = 0;
  for (std::size_t d = 0; d < dict().num_domains(); ++d) {
    for (std::size_t s = 0; s < dict().domain(d).sublexicons().size(); ++s) {
      same += a.preferred_response(d, s) == b.preferred_response(d, s);
      ++total;
    }
  }
  EXPECT_LT(same, total / 2);
}

TEST(Oracle, StyleContainsSubtopicWords) {
  UserOracle oracle(7, dict());
  for (std::size_t d = 0; d < dict().num_domains(); ++d) {
    for (std::size_t s = 0; s < dict().domain(d).sublexicons().size(); ++s) {
      const auto tokens = text::normalize_and_split(oracle.preferred_response(d, s));
      int in_domain = 0;
      for (const auto& t : tokens) in_domain += dict().domain(d).contains(t);
      EXPECT_GE(in_domain, 3) << d << "/" << s;
    }
  }
}

TEST(Oracle, DistinctSubtopicsDistinctResponses) {
  UserOracle oracle(11, dict());
  // Within a domain, different subtopics produce different signature words.
  const auto med = dict().index_of("medical").value();
  std::set<std::string> responses;
  for (std::size_t s = 0; s < dict().domain(med).sublexicons().size(); ++s) {
    responses.insert(oracle.preferred_response(med, s));
  }
  EXPECT_EQ(responses.size(), dict().domain(med).sublexicons().size());
}

TEST(Oracle, AnnotateCountsRequests) {
  UserOracle oracle(13, dict());
  DialogueSet informative;
  informative.true_domain = 0;
  informative.true_subtopic = 1;
  EXPECT_EQ(oracle.annotation_requests(), 0u);
  const std::string r = oracle.annotate(informative);
  EXPECT_EQ(r, oracle.preferred_response(0, 1));
  EXPECT_EQ(oracle.annotation_requests(), 1u);
  DialogueSet noise;
  noise.is_noise = true;
  EXPECT_EQ(oracle.annotate(noise), oracle.generic_response());
  EXPECT_EQ(oracle.annotation_requests(), 2u);
  oracle.reset_annotation_counter();
  EXPECT_EQ(oracle.annotation_requests(), 0u);
}

TEST(Generator, ProducesRequestedSizes) {
  UserOracle oracle(17, dict());
  Generator gen(meddialog_profile(), oracle, util::Rng(1));
  const auto ds = gen.generate(100, 50);
  EXPECT_EQ(ds.stream.size(), 100u);
  EXPECT_EQ(ds.test.size(), 50u);
}

TEST(Generator, StreamPositionsSequential) {
  UserOracle oracle(19, dict());
  Generator gen(alpaca_profile(), oracle, util::Rng(2));
  const auto ds = gen.generate(30, 0);
  for (std::size_t i = 0; i < ds.stream.size(); ++i) {
    EXPECT_EQ(ds.stream[i].stream_position, i);
  }
}

TEST(Generator, InformativeSetsCarryUserReference) {
  UserOracle oracle(23, dict());
  Generator gen(meddialog_profile(), oracle, util::Rng(3));
  const auto set = gen.make_informative(0, 1);
  EXPECT_EQ(set.reference, oracle.preferred_response(0, 1));
  EXPECT_FALSE(set.is_noise);
  EXPECT_EQ(set.true_domain, 0);
}

TEST(Generator, NoiseSetsAreAllFiller) {
  UserOracle oracle(29, dict());
  Generator gen(alpaca_profile(), oracle, util::Rng(4));
  const auto set = gen.make_noise();
  EXPECT_TRUE(set.is_noise);
  for (const auto& tok : text::normalize_and_split(set.question)) {
    bool in_any = false;
    for (const auto& d : dict().domains()) in_any = in_any || d.contains(tok);
    EXPECT_FALSE(in_any) << tok;
  }
}

TEST(Generator, NoiseRateApproximatelyRespected) {
  UserOracle oracle(31, dict());
  DatasetProfile p = alpaca_profile();  // noise 0.25
  Generator gen(p, oracle, util::Rng(5));
  const auto ds = gen.generate(800, 0);
  const auto stats = compute_stream_stats(ds.stream);
  EXPECT_NEAR(static_cast<double>(stats.noise) / stats.total, p.noise_rate, 0.06);
}

TEST(Generator, QuestionContainsSubtopicContent) {
  UserOracle oracle(37, dict());
  Generator gen(meddialog_profile(), oracle, util::Rng(6));
  const auto med = dict().index_of("medical").value();
  const auto set = gen.make_informative(med, 2);
  const auto tokens = text::normalize_and_split(set.question);
  int in_domain = 0;
  for (const auto& t : tokens) in_domain += dict().domain(med).contains(t);
  EXPECT_GE(in_domain, static_cast<int>(meddialog_profile().question_words_min));
}

TEST(Generator, DeterministicUnderSeed) {
  UserOracle o1(41, dict()), o2(41, dict());
  Generator g1(dolly_profile(), o1, util::Rng(7));
  Generator g2(dolly_profile(), o2, util::Rng(7));
  const auto a = g1.generate(20, 5);
  const auto b = g2.generate(20, 5);
  for (std::size_t i = 0; i < a.stream.size(); ++i) {
    EXPECT_EQ(a.stream[i].question, b.stream[i].question);
    EXPECT_EQ(a.stream[i].reference, b.stream[i].reference);
  }
}

TEST(Generator, NoiseReferencesVaryAcrossSets) {
  UserOracle oracle(43, dict());
  Generator gen(meddialog_profile(), oracle, util::Rng(8));
  std::set<std::string> refs;
  for (int i = 0; i < 30; ++i) refs.insert(gen.make_noise().reference);
  EXPECT_GT(refs.size(), 1u);  // the noise floor is not a single target
}

TEST(StreamStats, TemporalCorrelationOrderingMatchesPaperContract) {
  UserOracle oracle(47, dict());
  Generator med_gen(meddialog_profile(), oracle, util::Rng(9));
  Generator alp_gen(alpaca_profile(), oracle, util::Rng(10));
  const auto med = med_gen.generate(600, 0);
  const auto alp = alp_gen.generate(600, 0);
  const auto med_stats = compute_stream_stats(med.stream);
  const auto alp_stats = compute_stream_stats(alp.stream);
  // Domain-specific stream: consecutive informative sets nearly always share
  // a subtopic; diverse stream: rarely.
  EXPECT_GT(med_stats.subtopic_repeat_rate, 0.6);
  EXPECT_LT(alp_stats.subtopic_repeat_rate, 0.3);
  EXPECT_GT(med_stats.subtopic_repeat_rate, alp_stats.subtopic_repeat_rate + 0.3);
}

TEST(StreamStats, CountsDistinctTopics) {
  UserOracle oracle(53, dict());
  Generator gen(alpaca_profile(), oracle, util::Rng(11));
  const auto ds = gen.generate(400, 0);
  const auto stats = compute_stream_stats(ds.stream);
  EXPECT_GE(stats.distinct_domains, 3u);   // ALPACA mixes 4 domains
  EXPECT_GT(stats.distinct_subtopics, 8u);
}

TEST(StreamCursor, IteratesOnce) {
  DialogueStream stream(3);
  StreamCursor cursor(stream);
  std::size_t n = 0;
  while (!cursor.done()) {
    cursor.next();
    ++n;
  }
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(cursor.position(), 3u);
}

TEST(PhrasePools, VocabularyCoversOracleAndGenerator) {
  const auto words = vocabulary_words(dict());
  std::set<std::string> vocab(words.begin(), words.end());
  UserOracle oracle(59, dict());
  Generator gen(meddialog_profile(), oracle, util::Rng(12));
  const auto ds = gen.generate(50, 20);
  auto check_covered = [&](const std::string& textblock) {
    for (const auto& tok : text::normalize_and_split(textblock)) {
      EXPECT_TRUE(vocab.count(tok)) << tok;
    }
  };
  for (const auto& set : ds.stream) {
    check_covered(set.question);
    check_covered(set.answer);
    check_covered(set.reference);
  }
}

TEST(PhrasePools, GenericRepliesOverlapPartially) {
  // The noise floor depends on generic replies sharing some words but not
  // being identical.
  const auto& pool = generic_reply_pool();
  ASSERT_GE(pool.size(), 4u);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      EXPECT_NE(pool[i], pool[j]);
    }
  }
}

// All six profiles generate valid streams.
class ProfileSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileSweep, GeneratesValidStream) {
  UserOracle oracle(61, dict());
  Generator gen(profile_by_name(GetParam()), oracle, util::Rng(13));
  const auto ds = gen.generate(120, 40);
  EXPECT_EQ(ds.stream.size(), 120u);
  for (const auto& set : ds.stream) {
    EXPECT_FALSE(set.question.empty());
    EXPECT_FALSE(set.answer.empty());
    EXPECT_FALSE(set.reference.empty());
    if (!set.is_noise) {
      EXPECT_GE(set.true_domain, 0);
      EXPECT_GE(set.true_subtopic, 0);
    }
  }
  const auto stats = compute_stream_stats(ds.stream);
  EXPECT_GT(stats.noise, 0u);
  EXPECT_LT(stats.noise, ds.stream.size());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, ProfileSweep,
                         ::testing::Values("ALPACA", "DOLLY", "OPENORCA",
                                           "MedDialog", "Prosocial",
                                           "Empathetic"));

}  // namespace
}  // namespace odlp::data
