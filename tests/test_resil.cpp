// Unit tests for the resilience layer (DESIGN.md §11): RetryPolicy
// (transient/terminal classification, deterministic backoff, exhaustion),
// ResourceGovernor (degradation ladder, recovery hysteresis, relapse
// damping, engine application), Supervisor (failure domains, MTTR,
// quarantine, deadlines), and the seeded FaultSchedule hooks — including a
// concurrent-hook test that must run TSan-clean.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "core/engine.h"
#include "core/synthesizer.h"
#include "data/user_oracle.h"
#include "exp/experiment.h"
#include "llm/embedding_extractor.h"
#include "llm/minillm.h"
#include "resil/governor.h"
#include "resil/retry.h"
#include "resil/supervisor.h"
#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace odlp {
namespace {

namespace fault = util::fault;

// --- RetryPolicy ---------------------------------------------------------

resil::RetryConfig fast_retry(std::size_t attempts = 3) {
  resil::RetryConfig c;
  c.max_attempts = attempts;
  c.sleep = false;  // account backoff, skip the nap
  return c;
}

TEST(RetryPolicy, FirstTrySuccessDoesNotRetry) {
  resil::RetryPolicy policy(fast_retry());
  int calls = 0;
  const int result = policy.run("op", [&] {
    ++calls;
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(policy.stats().calls, 1u);
  EXPECT_EQ(policy.stats().attempts, 1u);
  EXPECT_EQ(policy.stats().healed, 0u);
}

TEST(RetryPolicy, TransientFaultHeals) {
  resil::RetryPolicy policy(fast_retry(3));
  int calls = 0;
  policy.run("op", [&] {
    if (++calls < 3) throw std::runtime_error("flaky");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(policy.stats().healed, 1u);
  EXPECT_EQ(policy.stats().retries, 2u);
  EXPECT_GT(policy.stats().backoff_us_total, 0.0);
}

TEST(RetryPolicy, InjectedFaultsAreTransient) {
  resil::RetryPolicy policy(fast_retry(2));
  int calls = 0;
  policy.run("op", [&] {
    if (++calls == 1) throw fault::InjectedOom("oom");
  });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(policy.stats().healed, 1u);
}

TEST(RetryPolicy, CorruptionIsTerminal) {
  resil::RetryPolicy policy(fast_retry(5));
  int calls = 0;
  EXPECT_THROW(policy.run("op",
                          [&] {
                            ++calls;
                            throw util::CorruptionError("bad bytes");
                          }),
               util::CorruptionError);
  EXPECT_EQ(calls, 1);  // no retry: bad bytes do not heal
  EXPECT_EQ(policy.stats().terminal, 1u);
  EXPECT_EQ(policy.stats().exhausted, 0u);
}

TEST(RetryPolicy, LogicErrorIsTerminal) {
  resil::RetryPolicy policy(fast_retry(5));
  int calls = 0;
  EXPECT_THROW(policy.run("op",
                          [&] {
                            ++calls;
                            throw std::logic_error("bug");
                          }),
               std::logic_error);
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicy, PersistentFaultExhausts) {
  resil::RetryPolicy policy(fast_retry(3));
  int calls = 0;
  try {
    policy.run("op", [&]() -> void {
      ++calls;
      throw std::runtime_error("always");
    });
    FAIL() << "expected RetryExhausted";
  } catch (const resil::RetryExhausted& e) {
    EXPECT_EQ(e.attempts(), 3u);
    EXPECT_NE(std::string(e.what()).find("always"), std::string::npos);
  }
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(policy.stats().exhausted, 1u);
}

TEST(RetryPolicy, ExhaustionDoesNotNestMultiplyAttempts) {
  // An outer policy treats RetryExhausted as terminal: attempts do not
  // multiply across nested policies.
  resil::RetryPolicy outer(fast_retry(4));
  int inner_calls = 0;
  EXPECT_THROW(outer.run("outer",
                         [&] {
                           resil::RetryPolicy inner(fast_retry(2));
                           inner.run("inner", [&]() -> void {
                             ++inner_calls;
                             throw std::runtime_error("always");
                           });
                         }),
               resil::RetryExhausted);
  EXPECT_EQ(inner_calls, 2);  // 2, not 2 * 4
  EXPECT_EQ(outer.stats().terminal, 1u);
}

TEST(RetryPolicy, BackoffIsDeterministicPerSeed) {
  resil::RetryConfig config = fast_retry(5);
  config.seed = 777;
  resil::RetryPolicy a(config), b(config);
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_DOUBLE_EQ(a.next_backoff_us(k), b.next_backoff_us(k)) << k;
  }
  config.seed = 778;
  resil::RetryPolicy c(config);
  bool any_different = false;
  resil::RetryPolicy a2(fast_retry(5));
  for (std::size_t k = 0; k < 6; ++k) {
    if (a2.next_backoff_us(k) != c.next_backoff_us(k)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryPolicy, BackoffRespectsBoundsAndGrowth) {
  resil::RetryConfig config = fast_retry(10);
  config.base_backoff_us = 100.0;
  config.multiplier = 2.0;
  config.max_backoff_us = 1000.0;
  config.jitter = 0.25;
  resil::RetryPolicy policy(config);
  for (std::size_t k = 0; k < 12; ++k) {
    const double nominal = std::min(1000.0, 100.0 * std::pow(2.0, double(k)));
    const double d = policy.next_backoff_us(k);
    EXPECT_GE(d, nominal * 0.75 - 1e-9) << k;
    EXPECT_LE(d, nominal * 1.25 + 1e-9) << k;
  }
}

TEST(RetryPolicy, CustomClassifierOverridesDefault) {
  resil::RetryConfig config = fast_retry(3);
  config.is_transient = [](const std::exception&) { return false; };
  resil::RetryPolicy policy(config);
  int calls = 0;
  EXPECT_THROW(policy.run("op",
                          [&] {
                            ++calls;
                            throw std::runtime_error("would-be transient");
                          }),
               std::runtime_error);
  EXPECT_EQ(calls, 1);
}

// --- ResourceGovernor ----------------------------------------------------

resil::GovernorConfig mem_governor(std::size_t budget) {
  resil::GovernorConfig g;
  g.memory_budget_bytes = budget;
  g.recover_patience = 2;
  return g;
}

TEST(ResourceGovernor, WalksOneRungPerObservation) {
  resil::ResourceGovernor gov(mem_governor(1000));
  EXPECT_EQ(gov.rung(), resil::Rung::kNominal);
  const resil::Rung ladder[] = {
      resil::Rung::kInt8Inference, resil::Rung::kKvTrim,
      resil::Rung::kSynthShrink, resil::Rung::kBinShed,
      resil::Rung::kSkipFinetune};
  for (const resil::Rung expected : ladder) {
    gov.observe({2000, 0.0});  // pressure 2.0
    EXPECT_EQ(gov.rung(), expected);
  }
  // Ladder floor: stays at the last rung.
  gov.observe({2000, 0.0});
  EXPECT_EQ(gov.rung(), resil::Rung::kSkipFinetune);
  EXPECT_EQ(gov.stats().escalations, 5u);
}

TEST(ResourceGovernor, DecisionsAreCumulative) {
  resil::ResourceGovernor gov(mem_governor(1000));
  for (int i = 0; i < 4; ++i) gov.observe({2000, 0.0});  // -> kBinShed
  const resil::GovernorDecision& d = gov.decision();
  EXPECT_EQ(d.rung, resil::Rung::kBinShed);
#ifdef ODLP_INT8
  EXPECT_EQ(d.precision, nn::InferencePrecision::kInt8);
#endif
  EXPECT_DOUBLE_EQ(d.kv_fraction, 0.5);
  EXPECT_DOUBLE_EQ(d.synth_fraction, 0.0);
  EXPECT_DOUBLE_EQ(d.buffer_fraction, 0.5);
  EXPECT_FALSE(d.skip_finetune);
  gov.observe({2000, 0.0});
  EXPECT_TRUE(gov.decision().skip_finetune);
}

TEST(ResourceGovernor, RecoveryNeedsConsecutiveClearObservations) {
  resil::ResourceGovernor gov(mem_governor(1000));
  gov.observe({2000, 0.0});  // -> int8
  EXPECT_EQ(gov.rung(), resil::Rung::kInt8Inference);
  gov.observe({100, 0.0});  // clear 1/2
  EXPECT_EQ(gov.rung(), resil::Rung::kInt8Inference);
  // Mid pressure (above threshold, below 1.0) resets the streak.
  gov.observe({800, 0.0});
  gov.observe({100, 0.0});  // clear 1/2 again
  EXPECT_EQ(gov.rung(), resil::Rung::kInt8Inference);
  gov.observe({100, 0.0});  // clear 2/2 -> recover
  EXPECT_EQ(gov.rung(), resil::Rung::kNominal);
  EXPECT_EQ(gov.stats().recoveries, 1u);
}

TEST(ResourceGovernor, RelapseDoublesPatience) {
  resil::GovernorConfig g = mem_governor(1000);
  g.recover_patience = 1;
  g.relapse_window = 3;
  resil::ResourceGovernor gov(g);
  EXPECT_EQ(gov.effective_patience(), 1u);
  gov.observe({2000, 0.0});  // escalate
  gov.observe({100, 0.0});   // recover (patience 1)
  EXPECT_EQ(gov.rung(), resil::Rung::kNominal);
  gov.observe({2000, 0.0});  // relapse inside the window
  EXPECT_EQ(gov.stats().relapses, 1u);
  EXPECT_EQ(gov.effective_patience(), 2u);
  // Now a single clear observation is no longer enough.
  gov.observe({100, 0.0});
  EXPECT_EQ(gov.rung(), resil::Rung::kInt8Inference);
  gov.observe({100, 0.0});
  EXPECT_EQ(gov.rung(), resil::Rung::kNominal);
}

TEST(ResourceGovernor, PatienceIsCapped) {
  resil::GovernorConfig g = mem_governor(1000);
  g.recover_patience = 1;
  g.max_patience = 4;
  g.relapse_window = 10;
  resil::ResourceGovernor gov(g);
  for (int cycle = 0; cycle < 6; ++cycle) {
    gov.observe({2000, 0.0});  // escalate (relapse after the first cycle)
    for (std::size_t i = 0; i < gov.effective_patience(); ++i) {
      gov.observe({100, 0.0});
    }
    EXPECT_EQ(gov.rung(), resil::Rung::kNominal);
  }
  EXPECT_LE(gov.effective_patience(), 4u);
}

TEST(ResourceGovernor, ZeroBudgetsDisablePressure) {
  resil::ResourceGovernor gov{resil::GovernorConfig{}};  // both axes off
  gov.observe({std::size_t(1) << 40, 1e9});
  EXPECT_EQ(gov.rung(), resil::Rung::kNominal);
  EXPECT_DOUBLE_EQ(gov.last_pressure(), 0.0);
}

TEST(ResourceGovernor, DeadlineAxis) {
  resil::GovernorConfig g;
  g.round_deadline_ms = 100.0;
  resil::ResourceGovernor gov(g);
  gov.observe({0, 250.0});
  EXPECT_EQ(gov.rung(), resil::Rung::kInt8Inference);
  EXPECT_DOUBLE_EQ(gov.last_pressure(), 2.5);
}

TEST(ResourceGovernor, ResetRestoresNominal) {
  resil::GovernorConfig g = mem_governor(1000);
  g.recover_patience = 1;
  resil::ResourceGovernor gov(g);
  gov.observe({2000, 0.0});
  gov.observe({100, 0.0});
  gov.observe({2000, 0.0});  // relapse -> patience 2
  gov.reset();
  EXPECT_EQ(gov.rung(), resil::Rung::kNominal);
  EXPECT_EQ(gov.effective_patience(), 1u);
  EXPECT_DOUBLE_EQ(gov.decision().kv_fraction, 1.0);
  // Transition history survives reset.
  EXPECT_GE(gov.stats().escalations, 2u);
}

// A tiny live engine to verify apply_decision end-to-end.
struct TinyEngine {
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::MiniLlm model;
  llm::BagOfWordsExtractor extractor{16};
  data::UserOracle oracle;
  core::EngineConfig ec;
  std::unique_ptr<core::PersonalizationEngine> engine;

  TinyEngine()
      : model(
            [&] {
              llm::ModelConfig mc;
              mc.vocab_size = tokenizer.vocab().size();
              mc.dim = 16;
              mc.heads = 2;
              mc.layers = 1;
              mc.ff_hidden = 32;
              mc.max_seq_len = 32;
              return mc;
            }(),
            7),
        oracle(11, lexicon::builtin_dictionary()) {
    ec.buffer_bins = 4;
    ec.finetune_interval = 0;
    ec.synth_per_set = 2;
    ec.max_seq_len = 32;
    ec.sampler.max_new_tokens = 8;
    engine = std::make_unique<core::PersonalizationEngine>(
        model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
        exp::make_policy("Ours"),
        std::make_unique<core::ParaphraseSynthesizer>(
            lexicon::builtin_dictionary(), util::Rng(3)),
        ec, util::Rng(5));
  }
};

TEST(ResourceGovernor, ApplyDecisionDrivesEngineKnobs) {
  TinyEngine t;
  resil::ResourceGovernor gov(mem_governor(1000));
  for (int i = 0; i < 5; ++i) gov.observe({2000, 0.0});  // -> kSkipFinetune
  resil::apply_decision(gov.decision(), *t.engine, t.ec);
  EXPECT_EQ(t.engine->config().sampler.max_new_tokens, 4u);  // 8 * 0.5
  EXPECT_EQ(t.engine->config().synth_per_set, 0u);
  EXPECT_EQ(t.engine->buffer().effective_capacity(), 2u);  // 4 * 0.5
  EXPECT_FALSE(t.engine->finetune_enabled());
  const std::size_t skipped_before = t.engine->stats().finetune_skipped;
  t.engine->finetune_now();
  EXPECT_EQ(t.engine->stats().finetune_skipped, skipped_before + 1);

  // Recovery all the way down restores the nominal knobs.
  resil::apply_decision(resil::GovernorDecision{}, *t.engine, t.ec);
  EXPECT_EQ(t.engine->config().sampler.max_new_tokens, 8u);
  EXPECT_EQ(t.engine->config().synth_per_set, 2u);
  EXPECT_EQ(t.engine->buffer().effective_capacity(), 4u);
  EXPECT_TRUE(t.engine->finetune_enabled());
}

// --- Supervisor ----------------------------------------------------------

TEST(Supervisor, CleanRoundsAreFullyAvailable) {
  resil::Supervisor sup;
  for (int i = 0; i < 5; ++i) {
    const auto report = sup.run_round("dev", [] {});
    EXPECT_EQ(report.status, resil::RoundStatus::kOk);
  }
  const auto& h = sup.health("dev");
  EXPECT_EQ(h.rounds, 5u);
  EXPECT_EQ(h.ok, 5u);
  EXPECT_DOUBLE_EQ(h.availability(), 1.0);
  EXPECT_DOUBLE_EQ(h.mttr_rounds(), 0.0);
}

TEST(Supervisor, FailureIsIsolatedAndRecovered) {
  resil::Supervisor sup;
  bool recovered = false;
  const auto report = sup.run_round(
      "dev", [] { throw std::runtime_error("boom"); },
      [&] {
        recovered = true;
        return true;
      });
  EXPECT_EQ(report.status, resil::RoundStatus::kFailedRecovered);
  EXPECT_NE(report.error.find("boom"), std::string::npos);
  EXPECT_TRUE(recovered);
  const auto& h = sup.health("dev");
  EXPECT_EQ(h.failures, 1u);
  EXPECT_EQ(h.recoveries, 1u);
}

TEST(Supervisor, MttrCountsRoundsUntilNextOk) {
  resil::Supervisor sup;
  const auto fail = [] { throw std::runtime_error("x"); };
  const auto recover = [] { return true; };
  sup.run_round("dev", [] {});       // round 1 ok
  sup.run_round("dev", fail, recover);  // round 2 down
  sup.run_round("dev", fail, recover);  // round 3 still down
  sup.run_round("dev", [] {});       // round 4 repaired
  const auto& h = sup.health("dev");
  EXPECT_EQ(h.repairs, 1u);
  EXPECT_DOUBLE_EQ(h.mttr_rounds(), 2.0);  // rounds 2..4
  EXPECT_DOUBLE_EQ(h.availability(), 0.5);
}

TEST(Supervisor, RecoveryFailureIsRecorded) {
  resil::Supervisor sup;
  const auto r1 = sup.run_round(
      "dev", [] { throw std::runtime_error("x"); }, [] { return false; });
  EXPECT_EQ(r1.status, resil::RoundStatus::kFailedUnrecovered);
  const auto r2 = sup.run_round(
      "dev", [] { throw std::runtime_error("x"); },
      []() -> bool { throw std::runtime_error("recovery died"); });
  EXPECT_EQ(r2.status, resil::RoundStatus::kFailedUnrecovered);
  EXPECT_EQ(sup.health("dev").failed_recoveries, 2u);
}

TEST(Supervisor, NoRecoveryCallbackMeansUnrecovered) {
  resil::Supervisor sup;
  const auto report =
      sup.run_round("dev", [] { throw std::runtime_error("x"); });
  EXPECT_EQ(report.status, resil::RoundStatus::kFailedUnrecovered);
}

TEST(Supervisor, QuarantineAfterConsecutiveFailures) {
  resil::SupervisorConfig config;
  config.max_consecutive_failures = 2;
  resil::Supervisor sup(config);
  const auto fail = [] { throw std::runtime_error("x"); };
  sup.run_round("dev", fail);
  EXPECT_FALSE(sup.health("dev").quarantined);
  sup.run_round("dev", fail);
  EXPECT_TRUE(sup.health("dev").quarantined);
  const auto report = sup.run_round("dev", [] {});
  EXPECT_EQ(report.status, resil::RoundStatus::kSkippedQuarantined);
  EXPECT_EQ(sup.health("dev").skipped, 1u);
  sup.reinstate("dev");
  EXPECT_EQ(sup.run_round("dev", [] {}).status, resil::RoundStatus::kOk);
}

TEST(Supervisor, OkRoundResetsTheFailureStreak) {
  resil::SupervisorConfig config;
  config.max_consecutive_failures = 2;
  resil::Supervisor sup(config);
  const auto fail = [] { throw std::runtime_error("x"); };
  const auto recover = [] { return true; };
  sup.run_round("dev", fail, recover);
  sup.run_round("dev", [] {});
  sup.run_round("dev", fail, recover);
  EXPECT_FALSE(sup.health("dev").quarantined);
}

TEST(Supervisor, DeadlineMissCountsAgainstAvailability) {
  resil::SupervisorConfig config;
  config.round_deadline_ms = 1e-6;  // everything misses
  resil::Supervisor sup(config);
  const auto report = sup.run_round("dev", [] {
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  });
  EXPECT_EQ(report.status, resil::RoundStatus::kDeadlineMiss);
  const auto& h = sup.health("dev");
  EXPECT_EQ(h.deadline_misses, 1u);
  EXPECT_EQ(h.ok, 0u);
  EXPECT_DOUBLE_EQ(h.availability(), 0.0);
}

TEST(Supervisor, TotalsAggregateAcrossDevices) {
  resil::Supervisor sup;
  const auto fail = [] { throw std::runtime_error("x"); };
  const auto recover = [] { return true; };
  sup.run_round("a", [] {});
  sup.run_round("a", [] {});
  sup.run_round("b", fail, recover);
  sup.run_round("b", [] {});
  const auto totals = sup.totals();
  EXPECT_EQ(totals.rounds, 4u);
  EXPECT_EQ(totals.ok, 3u);
  EXPECT_EQ(totals.failures, 1u);
  EXPECT_EQ(totals.recoveries, 1u);
  EXPECT_EQ(totals.repairs, 1u);
  EXPECT_DOUBLE_EQ(totals.availability, 0.75);
  EXPECT_DOUBLE_EQ(totals.mttr_rounds, 1.0);
  EXPECT_EQ(sup.devices().size(), 2u);
  EXPECT_THROW(sup.health("missing"), std::out_of_range);
}

// --- FaultSchedule -------------------------------------------------------

TEST(FaultSchedule, RandomIsDeterministicPerSeed) {
  const auto a = fault::FaultSchedule::random(99, 12);
  const auto b = fault::FaultSchedule::random(99, 12);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.events.size(), 12u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].match, b.events[i].match) << i;
    EXPECT_EQ(a.events[i].at, b.events[i].at) << i;
    EXPECT_EQ(a.events[i].param, b.events[i].param) << i;
    EXPECT_EQ(a.events[i].once, b.events[i].once) << i;
  }
  const auto c = fault::FaultSchedule::random(100, 12);
  bool any_different = false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (a.events[i].kind != c.events[i].kind ||
        a.events[i].at != c.events[i].at) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(FaultSchedule, CorruptionEventsAreAlwaysOnce) {
  // Disk corruption persists by itself; re-corrupting every commit would
  // model a different (and unrecoverable) failure.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto s = fault::FaultSchedule::random(seed, 10);
    for (const auto& e : s.events) {
      if (e.kind == fault::FaultKind::kTruncate ||
          e.kind == fault::FaultKind::kBitFlip) {
        EXPECT_TRUE(e.once) << "seed " << seed;
      }
    }
  }
}

TEST(FaultSchedule, TaskEventFiresOnNthMatchingObservation) {
  fault::FaultSchedule schedule;
  schedule.events.push_back(
      {fault::FaultKind::kTaskFail, "engine.process", /*at=*/2, 0, true});
  fault::ScopedSchedule armed(schedule);
  fault::on_task("engine.process");               // 0
  fault::on_task("ckpt.save");                    // non-matching
  fault::on_task("engine.process");               // 1
  EXPECT_THROW(fault::on_task("engine.process"),  // 2 -> fires
               fault::InjectedTaskFault);
  fault::on_task("engine.process");  // once: disarmed now
  const auto stats = fault::schedule_stats();
  EXPECT_EQ(stats.tasks_seen, 5u);
  EXPECT_EQ(stats.task_fails, 1u);
}

TEST(FaultSchedule, PersistentEventKeepsFiring) {
  fault::FaultSchedule schedule;
  schedule.events.push_back(
      {fault::FaultKind::kAllocFail, "buffer", /*at=*/1, 0, /*once=*/false});
  fault::ScopedSchedule armed(schedule);
  fault::on_alloc("buffer", 100);  // 0: ok
  EXPECT_THROW(fault::on_alloc("buffer", 100), fault::InjectedOom);
  EXPECT_THROW(fault::on_alloc("buffer", 100), fault::InjectedOom);
  EXPECT_EQ(fault::schedule_stats().oom, 2u);
}

TEST(FaultSchedule, WriteFailAndStall) {
  fault::FaultSchedule schedule;
  schedule.events.push_back(
      {fault::FaultKind::kSlowIo, "", /*at=*/0, /*param=*/50, true});
  schedule.events.push_back(
      {fault::FaultKind::kWriteFail, "model", /*at=*/0, 0, true});
  fault::ScopedSchedule armed(schedule);
  // First write: stall fires (and is counted); path does not match the
  // write-fail event.
  fault::on_write("/tmp/other.bin");
  EXPECT_THROW(fault::on_write("/tmp/model.bin"), fault::InjectedFault);
  const auto stats = fault::schedule_stats();
  EXPECT_EQ(stats.stalls, 1u);
  EXPECT_EQ(stats.write_fails, 1u);
  EXPECT_EQ(stats.writes_seen, 2u);
}

TEST(FaultSchedule, StallScaleSkipsTheNapButKeepsTheCount) {
  fault::FaultSchedule schedule;
  // Persistent 50 ms stall on every write: with the nap served this loop
  // would take >= 1 s, so finishing fast proves the scale suppressed it.
  schedule.events.push_back(
      {fault::FaultKind::kSlowIo, "", /*at=*/0, /*param=*/50000, false});
  schedule.stall_scale = 0.0;
  fault::ScopedSchedule armed(schedule);
  util::Stopwatch watch;
  for (int i = 0; i < 20; ++i) fault::on_write("/tmp/x.bin");
  EXPECT_LT(watch.elapsed_seconds(), 0.5);
  EXPECT_EQ(fault::schedule_stats().stalls, 20u);
}

TEST(FaultSchedule, NothingArmedIsFreeOfEffects) {
  fault::on_write("/tmp/x");
  fault::on_commit("/tmp/x");
  fault::on_alloc("anything", 1);
  fault::on_task("anything");
  EXPECT_FALSE(fault::schedule_armed());
}

TEST(FaultSchedule, LegacyPlanStillWorksAlongsideSchedule) {
  fault::FaultPlan plan;
  plan.path_substring = "legacy";
  plan.fail_on_write = 0;
  fault::ScopedFault armed_plan(plan);
  fault::FaultSchedule schedule;
  schedule.events.push_back(
      {fault::FaultKind::kTaskFail, "t", /*at=*/0, 0, true});
  fault::ScopedSchedule armed_schedule(schedule);
  EXPECT_THROW(fault::on_write("/tmp/legacy.bin"), fault::InjectedFault);
  EXPECT_THROW(fault::on_task("t"), fault::InjectedTaskFault);
}

// Concurrent hook traffic with an armed schedule: relaxed-atomic fast path
// plus the mutex-guarded schedule state must be TSan-clean, fire each
// `once` event exactly once, and keep coherent counts.
TEST(FaultSchedule, ConcurrentHooksAreThreadSafeAndCoherent) {
  fault::FaultSchedule schedule;
  schedule.events.push_back(
      {fault::FaultKind::kTaskFail, "task", /*at=*/57, 0, /*once=*/true});
  schedule.events.push_back(
      {fault::FaultKind::kAllocFail, "alloc", /*at=*/31, 0, /*once=*/true});
  fault::ScopedSchedule armed(schedule);

  constexpr std::size_t kCalls = 400;
  std::atomic<std::uint64_t> task_throws{0};
  std::atomic<std::uint64_t> oom_throws{0};
  util::ThreadPool::global().parallel_for_slotted(
      0, kCalls, /*grain=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          try {
            fault::on_task("task");
          } catch (const fault::InjectedTaskFault&) {
            task_throws.fetch_add(1, std::memory_order_relaxed);
          }
          try {
            fault::on_alloc("alloc", i);
          } catch (const fault::InjectedOom&) {
            oom_throws.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
  EXPECT_EQ(task_throws.load(), 1u);
  EXPECT_EQ(oom_throws.load(), 1u);
  const auto stats = fault::schedule_stats();
  EXPECT_EQ(stats.tasks_seen, kCalls);
  EXPECT_EQ(stats.allocs_seen, kCalls);
  EXPECT_EQ(stats.task_fails, 1u);
  EXPECT_EQ(stats.oom, 1u);
}

}  // namespace
}  // namespace odlp
