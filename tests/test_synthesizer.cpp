#include <gtest/gtest.h>

#include "core/synthesizer.h"
#include "eval/rouge.h"
#include "text/normalize.h"

namespace odlp::core {
namespace {

data::DialogueSet medical_set() {
  data::DialogueSet set;
  set.question = "what dose of benadryl should i inject into the arm";
  set.answer = "honestly i would suggest dose vial pills take care friend";
  set.reference = set.answer;
  set.true_domain = 0;
  set.true_subtopic = 0;
  return set;
}

TEST(SynthesisPrompt, ContainsPaperInstructionAndText) {
  const std::string p = synthesis_prompt(medical_set());
  EXPECT_NE(p.find("Please refine and generate"), std::string::npos);
  EXPECT_NE(p.find("use [] to hold"), std::string::npos);
  EXPECT_NE(p.find("benadryl"), std::string::npos);
}

TEST(SanityCheck, RejectBelowKeepsSimilar) {
  SanityCheckConfig cfg;
  cfg.mode = SanityCheckMode::kRejectBelow;
  cfg.threshold = 0.5;
  RougeSanityCheck check(cfg);
  data::DialogueSet orig = medical_set();
  data::DialogueSet close = orig;  // identical -> similarity 1.0
  EXPECT_TRUE(check.accepts(orig, close));
  data::DialogueSet far = orig;
  far.question = "completely unrelated chatter about holidays";
  far.answer = "nothing shared here whatsoever today";
  EXPECT_FALSE(check.accepts(orig, far));
}

TEST(SanityCheck, RejectAboveDiscardsNearDuplicates) {
  SanityCheckConfig cfg;
  cfg.mode = SanityCheckMode::kRejectAbove;
  cfg.threshold = 0.9;
  RougeSanityCheck check(cfg);
  data::DialogueSet orig = medical_set();
  EXPECT_FALSE(check.accepts(orig, orig));  // identical: above threshold
  data::DialogueSet different = orig;
  different.question = "other topic entirely now";
  different.answer = "separate content too";
  EXPECT_TRUE(check.accepts(orig, different));
}

TEST(SanityCheck, SimilarityIsRouge1OfTextBlocks) {
  RougeSanityCheck check(SanityCheckConfig{});
  data::DialogueSet orig = medical_set();
  EXPECT_NEAR(check.similarity(orig, orig), 1.0, 1e-9);
}

TEST(ParaphraseSynthesizer, ProducesRequestedCount) {
  ParaphraseSynthesizer synth(lexicon::builtin_dictionary(), util::Rng(1));
  SynthesisStats stats;
  const auto out = synth.synthesize(medical_set(), 3, &stats);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_GE(stats.generated, stats.accepted);
  EXPECT_EQ(stats.accepted, 3u);
}

TEST(ParaphraseSynthesizer, ZeroCountYieldsNothing) {
  ParaphraseSynthesizer synth(lexicon::builtin_dictionary(), util::Rng(2));
  EXPECT_TRUE(synth.synthesize(medical_set(), 0, nullptr).empty());
}

TEST(ParaphraseSynthesizer, OutputsPassTheSanityCheck) {
  ParaphraseSynthesizer::Config cfg;
  cfg.sanity.threshold = 0.4;
  ParaphraseSynthesizer synth(lexicon::builtin_dictionary(), util::Rng(3), cfg);
  RougeSanityCheck check(cfg.sanity);
  const data::DialogueSet orig = medical_set();
  for (const auto& syn : synth.synthesize(orig, 5, nullptr)) {
    EXPECT_TRUE(check.accepts(orig, syn));
  }
}

TEST(ParaphraseSynthesizer, OutputsDifferFromOriginal) {
  ParaphraseSynthesizer::Config cfg;
  cfg.synonym_swap_rate = 0.6;
  cfg.filler_jitter_rate = 0.5;
  cfg.sanity.threshold = 0.2;
  ParaphraseSynthesizer synth(lexicon::builtin_dictionary(), util::Rng(4), cfg);
  const data::DialogueSet orig = medical_set();
  int changed = 0;
  for (const auto& syn : synth.synthesize(orig, 5, nullptr)) {
    if (syn.question != orig.question || syn.answer != orig.answer) ++changed;
  }
  EXPECT_GT(changed, 0);
}

TEST(ParaphraseSynthesizer, PreservesReferenceAnnotation) {
  ParaphraseSynthesizer synth(lexicon::builtin_dictionary(), util::Rng(5));
  const data::DialogueSet orig = medical_set();
  for (const auto& syn : synth.synthesize(orig, 3, nullptr)) {
    EXPECT_EQ(syn.reference, orig.reference);
    EXPECT_EQ(syn.true_domain, orig.true_domain);
  }
}

TEST(ParaphraseSynthesizer, SynonymSwapsStayInDomain) {
  ParaphraseSynthesizer::Config cfg;
  cfg.synonym_swap_rate = 1.0;  // force swaps
  cfg.filler_jitter_rate = 0.0;
  cfg.sanity.threshold = 0.0;  // accept everything
  ParaphraseSynthesizer synth(lexicon::builtin_dictionary(), util::Rng(6), cfg);
  const auto& dict = lexicon::builtin_dictionary();
  const auto med = dict.index_of("medical").value();
  data::DialogueSet orig;
  orig.question = "dose vial inject";
  orig.answer = "pills";
  const auto out = synth.synthesize(orig, 4, nullptr);
  for (const auto& syn : out) {
    for (const auto& tok : text::normalize_and_split(syn.question)) {
      EXPECT_TRUE(dict.domain(med).contains(tok)) << tok;
    }
  }
}

TEST(ParaphraseSynthesizer, DeterministicUnderSeed) {
  ParaphraseSynthesizer a(lexicon::builtin_dictionary(), util::Rng(7));
  ParaphraseSynthesizer b(lexicon::builtin_dictionary(), util::Rng(7));
  const auto oa = a.synthesize(medical_set(), 3, nullptr);
  const auto ob = b.synthesize(medical_set(), 3, nullptr);
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) {
    EXPECT_EQ(oa[i].question, ob[i].question);
    EXPECT_EQ(oa[i].answer, ob[i].answer);
  }
}

TEST(ExtractBracketed, ParsesWellFormed) {
  EXPECT_EQ(LlmSynthesizer::extract_bracketed("prefix [the payload] suffix"),
            "the payload");
}

TEST(ExtractBracketed, FallsBackWithoutBrackets) {
  EXPECT_EQ(LlmSynthesizer::extract_bracketed("raw output"), "raw output");
  EXPECT_EQ(LlmSynthesizer::extract_bracketed("broken ] order ["), "broken ] order [");
}

TEST(ExtractBracketed, UsesOutermostBrackets) {
  EXPECT_EQ(LlmSynthesizer::extract_bracketed("[a [b] c]"), "a [b] c");
}

TEST(LlmSynthesizerTest, RunsAgainstRealModel) {
  llm::ModelConfig mc;
  mc.vocab_size = 64;
  mc.dim = 8;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 16;
  mc.max_seq_len = 48;
  llm::MiniLlm model(mc, 42);
  text::Vocab vocab;
  for (const char* w : {"please", "refine", "generate", "text", "dose", "arm"}) {
    vocab.add(w);
  }
  text::Tokenizer tok(std::move(vocab));
  llm::SamplerConfig sc;
  sc.temperature = 1.0f;
  sc.max_new_tokens = 6;
  SanityCheckConfig sanity;
  sanity.threshold = 0.0;  // accept everything an untrained model emits
  LlmSynthesizer synth(model, tok, sc, util::Rng(8), sanity);
  SynthesisStats stats;
  const auto out = synth.synthesize(medical_set(), 2, &stats);
  EXPECT_GE(stats.generated, out.size());
  for (const auto& syn : out) {
    EXPECT_EQ(syn.reference, medical_set().reference);
  }
}

}  // namespace
}  // namespace odlp::core
