// Edge-shape coverage for the register-tiled GEMM micro-kernels.
//
// The tiled path packs A into 4-row quads and B into 8-column panels with
// zero padding at the edges, and falls back to small-path kernels when a
// dimension is below one tile. These tests sweep shapes that land exactly
// on, just below, and just above every boundary — plus degenerate 1×1,
// prime, all-zero, and denormal inputs — for the forward product and both
// backward products (dA += dC·Bᵀ via the nt kernel, dB += Aᵀ·dC via tn).
// Lane-count invariance is checked bit-for-bit per the determinism
// contract in DESIGN.md §8.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/ops.h"
#include "tensor/simd.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace odlp {
namespace {

tensor::Tensor random_tensor(std::size_t rows, std::size_t cols, util::Rng& rng) {
  tensor::Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

bool bit_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void expect_close(const tensor::Tensor& ref, const tensor::Tensor& got,
                  float rtol = 1e-4f, float atol = 1e-5f) {
  ASSERT_TRUE(ref.same_shape(got));
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float r = ref.data()[i];
    const float g = got.data()[i];
    ASSERT_LE(std::abs(g - r), atol + rtol * std::abs(r)) << "element " << i;
  }
}

template <typename Fn>
auto with_global_lanes(std::size_t lanes, Fn fn) {
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::size_t before = pool.lanes();
  pool.resize(lanes);
  auto result = fn();
  pool.resize(before);
  return result;
}

// Shapes as [m, n, k] of the logical product C[m,n] = A[m,k] * B[k,n].
// Micro-kernel geometry: 4-row quads, 8-column panels, 256-deep k-blocks
// (see kernel_build_info()) — each dimension is swept across tile ±1, one
// full tile, primes, and the degenerate 1.
constexpr std::size_t kShapes[][3] = {
    {1, 1, 1},                         // fully degenerate
    {1, 8, 64},   {64, 1, 8},          // single row / single column
    {3, 7, 31},   {5, 9, 31},          // just below / above one tile
    {4, 8, 256},                       // exactly one quad × panel × k-block
    {4, 8, 255},  {4, 8, 257},         // k-block boundary ±1
    {7, 13, 31},  {13, 31, 7},  {31, 7, 13},  // primes, all rotations
    {9, 16, 300}, {12, 17, 129},       // mixed interior/edge tiles
};

TEST(KernelShapes, ForwardMatchesReference) {
  util::Rng rng(0xF0);
  for (const auto& s : kShapes) {
    SCOPED_TRACE(testing::Message()
                 << "shape " << s[0] << "x" << s[1] << "x" << s[2]);
    const tensor::Tensor a = random_tensor(s[0], s[2], rng);
    const tensor::Tensor b = random_tensor(s[2], s[1], rng);
    expect_close(tensor::matmul_reference(a, b), tensor::matmul(a, b));
  }
}

TEST(KernelShapes, NtProductMatchesTransposedReference) {
  // C = A · Bᵀ — the dA backward product and the attention-score product.
  util::Rng rng(0xF1);
  for (const auto& s : kShapes) {
    SCOPED_TRACE(testing::Message()
                 << "shape " << s[0] << "x" << s[1] << "x" << s[2]);
    const tensor::Tensor a = random_tensor(s[0], s[2], rng);
    const tensor::Tensor b = random_tensor(s[1], s[2], rng);  // [n, k]
    tensor::Tensor got;
    tensor::matmul_nt_into(a, b, got);
    expect_close(tensor::matmul_reference(a, tensor::transpose(b)), got);
  }
}

TEST(KernelShapes, TnProductMatchesTransposedReference) {
  // C = Aᵀ · B — the dB backward product and the attention dK product.
  util::Rng rng(0xF2);
  for (const auto& s : kShapes) {
    SCOPED_TRACE(testing::Message()
                 << "shape " << s[0] << "x" << s[1] << "x" << s[2]);
    const tensor::Tensor a = random_tensor(s[2], s[0], rng);  // [k, m]
    const tensor::Tensor b = random_tensor(s[2], s[1], rng);
    tensor::Tensor got;
    tensor::matmul_tn_into(a, b, got);
    expect_close(tensor::matmul_reference(tensor::transpose(a), b), got);
  }
}

TEST(KernelShapes, AccumulateAddsOntoSeededOutput) {
  util::Rng rng(0xF3);
  for (const auto& s : kShapes) {
    SCOPED_TRACE(testing::Message()
                 << "shape " << s[0] << "x" << s[1] << "x" << s[2]);
    const tensor::Tensor a = random_tensor(s[0], s[2], rng);
    const tensor::Tensor b = random_tensor(s[2], s[1], rng);
    const tensor::Tensor seed = random_tensor(s[0], s[1], rng);
    tensor::Tensor got = seed;
    tensor::matmul_into(a, b, got, /*accumulate=*/true);
    tensor::Tensor want = tensor::matmul_reference(a, b);
    want += seed;
    expect_close(want, got, /*rtol=*/1e-4f, /*atol=*/1e-4f);
  }
}

TEST(KernelShapes, AllZeroInputsGiveExactZeros) {
  // The tiled path must not leak packing-pad garbage into C; with zero
  // inputs every output element is exactly +0.0f.
  for (const auto& s : kShapes) {
    const tensor::Tensor a(s[0], s[2], 0.0f);
    const tensor::Tensor b(s[2], s[1], 0.0f);
    const tensor::Tensor c = tensor::matmul(a, b);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(c.data()[i], 0.0f);
    }
  }
}

TEST(KernelShapes, DenormalInputsStayFiniteAndMatchReference) {
  // Subnormal operands must neither trap nor diverge from the reference
  // kernel (both accumulate in float, so products underflow identically).
  util::Rng rng(0xF4);
  const float denorm = std::numeric_limits<float>::denorm_min() * 64.0f;
  const std::size_t shapes[][3] = {{5, 9, 31}, {4, 8, 257}, {13, 31, 7}};
  for (const auto& s : shapes) {
    tensor::Tensor a(s[0], s[2]);
    tensor::Tensor b(s[2], s[1]);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a.data()[i] = denorm * static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      b.data()[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    const tensor::Tensor ref = tensor::matmul_reference(a, b);
    const tensor::Tensor got = tensor::matmul(a, b);
    ASSERT_TRUE(ref.same_shape(got));
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(std::isfinite(got.data()[i]));
    }
    expect_close(ref, got, /*rtol=*/1e-4f, /*atol=*/0.0f);
  }
}

TEST(KernelShapes, AllProductsIndependentOfLaneCount) {
  // Bit-exact lane invariance for forward, nt, and tn across edge shapes —
  // the chunk grain is quad-aligned, so row ownership never straddles lanes.
  util::Rng rng(0xF5);
  for (const auto& s : kShapes) {
    SCOPED_TRACE(testing::Message()
                 << "shape " << s[0] << "x" << s[1] << "x" << s[2]);
    const tensor::Tensor a = random_tensor(s[0], s[2], rng);
    const tensor::Tensor bn = random_tensor(s[2], s[1], rng);
    const tensor::Tensor bt = random_tensor(s[1], s[2], rng);
    const tensor::Tensor at = random_tensor(s[2], s[0], rng);
    struct R {
      tensor::Tensor nn, nt, tn;
    };
    auto run = [&] {
      R r;
      tensor::matmul_into(a, bn, r.nn);
      tensor::matmul_nt_into(a, bt, r.nt);
      tensor::matmul_tn_into(at, bn, r.tn);
      return r;
    };
    const R one = with_global_lanes(1, run);
    const R four = with_global_lanes(4, run);
    EXPECT_TRUE(bit_identical(one.nn, four.nn));
    EXPECT_TRUE(bit_identical(one.nt, four.nt));
    EXPECT_TRUE(bit_identical(one.tn, four.tn));
  }
}

TEST(KernelShapes, BuildInfoReportsTileGeometry) {
  // The variant string tracks the runtime dispatch level (tensor/simd.h);
  // either spelling names the same 4x8 packed tile geometry.
  const tensor::KernelBuildInfo info = tensor::kernel_build_info();
  if (tensor::active_simd_level() >= tensor::SimdLevel::kAvx2) {
    EXPECT_STREQ(info.variant, "tiled-4x8-packed-avx2");
  } else {
    EXPECT_STREQ(info.variant, "tiled-4x8-packed");
  }
  EXPECT_STREQ(info.simd_level,
               tensor::simd_level_name(tensor::active_simd_level()));
}

}  // namespace
}  // namespace odlp
