#include <gtest/gtest.h>

#include "exp/fleet.h"

namespace odlp::exp {
namespace {

FleetConfig micro_fleet(std::size_t devices) {
  FleetConfig fleet;
  fleet.num_devices = devices;
  fleet.device_template.dataset = "ALPACA";
  fleet.device_template.buffer_bins = 4;
  fleet.device_template.stream_size = 10;
  fleet.device_template.test_size = 10;
  fleet.device_template.eval_subset = 4;
  fleet.device_template.finetune_interval = 5;
  fleet.device_template.epochs = 1;
  fleet.device_template.synth_per_set = 1;
  fleet.device_template.pretrain_examples = 8;
  fleet.device_template.pretrain_epochs = 1;
  fleet.device_template.cache_dir = "";
  fleet.device_template.record_curve = false;
  fleet.device_template.eval_temperature = 0.0f;
  fleet.seed_base = 77;
  return fleet;
}

TEST(Fleet, RunsOneExperimentPerDevice) {
  const auto result = run_fleet(micro_fleet(3), "FIFO");
  EXPECT_EQ(result.method, "FIFO");
  ASSERT_EQ(result.devices.size(), 3u);
  for (const auto& d : result.devices) {
    EXPECT_EQ(d.engine_stats.seen, 10u);
  }
}

TEST(Fleet, DevicesDifferByUser) {
  const auto result = run_fleet(micro_fleet(3), "Ours");
  // Different seeds -> different streams; annotation counts almost surely
  // differ somewhere, and at minimum the results are populated per device.
  EXPECT_EQ(result.devices.size(), 3u);
  EXPECT_GE(result.max_rouge, result.min_rouge);
  EXPECT_GE(result.mean_rouge, result.min_rouge);
  EXPECT_LE(result.mean_rouge, result.max_rouge);
  EXPECT_GE(result.stddev_rouge, 0.0);
}

TEST(Fleet, CompareCountsWinsPerDevice) {
  const auto results =
      compare_methods_over_fleet(micro_fleet(3), {"Ours", "FIFO"});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].wins + results[1].wins, 3u);
}

TEST(Fleet, SameFleetSeedIsDeterministic) {
  const auto a = run_fleet(micro_fleet(2), "Random");
  const auto b = run_fleet(micro_fleet(2), "Random");
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t d = 0; d < a.devices.size(); ++d) {
    EXPECT_DOUBLE_EQ(a.devices[d].final_rouge, b.devices[d].final_rouge);
  }
}

}  // namespace
}  // namespace odlp::exp
