// Chaos harness (DESIGN.md §11): full multi-round personalization fleets
// run under dozens of seeded fault schedules — injected power loss, bit
// rot, slow I/O, OOM, and poisoned tasks — and every run must uphold the
// resilience invariants:
//
//   1. No crash: run_chaos_fleet returns; every exception is contained
//      inside its device's failure domain.
//   2. Checkpoint intact: each device ends with a restorable generation
//      (keep_last exceeds the round count, so the pre-chaos generation-1
//      checkpoint is never pruned and corruption can never strand a
//      device).
//   3. Accounting coherent: supervisor round counts add up, and the
//      engine's seen/admitted/rejected/quarantined ledger differs only by
//      rounds aborted mid-flight — bounded by the injected fault count.
//   4. Deterministic: the same (config, schedule) pair reproduces the
//      fleet state hash bit-for-bit.
//
// Each schedule is a separate TEST_P instance, so ctest runs (and times
// out) them individually; the suite lives in its own binary with the
// "chaos" label.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "exp/fleet.h"
#include "util/fault.h"

namespace fs = std::filesystem;

namespace odlp {
namespace {

constexpr std::uint64_t kNumSchedules = 32;  // acceptance floor is 30
constexpr std::size_t kEventsPerSchedule = 10;

exp::ChaosFleetConfig chaos_config(std::uint64_t seed,
                                   const std::string& work_dir) {
  exp::ChaosFleetConfig config;
  config.num_devices = 2;
  config.rounds = 5;
  config.sets_per_round = 3;
  config.buffer_bins = 4;
  config.synth_per_set = 1;
  config.epochs = 1;
  config.seed_base = 1000 + seed * 101;
  config.work_dir = work_dir;
  // Invariant 2 depends on this: with keep_last > rounds, pruning never
  // runs, so the generation-1 checkpoint written before the schedule arms
  // survives any amount of later corruption.
  config.keep_last = config.rounds + 3;
  config.retry.sleep = false;  // account backoff, skip the nap
  // Memory-only pressure (deadlines off): wall-clock never feeds the
  // governor, which is what makes invariant 4 (bit-identical repeats)
  // possible on a timeshared test host.
  config.governor.round_deadline_ms = 0.0;
  config.supervisor.round_deadline_ms = 0.0;
  config.supervisor.max_consecutive_failures = 0;
  config.schedule = util::fault::FaultSchedule::random(
      seed, kEventsPerSchedule,
      /*horizon=*/config.rounds * config.num_devices * 4);
  return config;
}

class ChaosScheduleTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::string work_dir_;

  void SetUp() override {
    work_dir_ = "/tmp/odlp_chaos_" + std::to_string(::getpid()) + "_" +
                std::to_string(GetParam());
    fs::remove_all(work_dir_);
    fs::create_directories(work_dir_);
  }
  void TearDown() override { fs::remove_all(work_dir_); }
};

TEST_P(ChaosScheduleTest, InvariantsHoldUnderSchedule) {
  const std::uint64_t seed = GetParam();
  const exp::ChaosFleetConfig config = chaos_config(seed, work_dir_);
  // Invariant 1: this returns instead of crashing or propagating.
  const exp::ChaosFleetResult result = exp::run_chaos_fleet(config);

  // Supervisor accounting adds up.
  ASSERT_EQ(result.devices.size(), config.num_devices);
  EXPECT_EQ(result.totals.rounds, config.num_devices * config.rounds);
  std::uint64_t gap_total = 0;
  for (const auto& d : result.devices) {
    EXPECT_EQ(d.health.rounds, config.rounds) << d.name;
    EXPECT_EQ(d.health.ok + d.health.failures + d.health.skipped,
              d.health.rounds)
        << d.name;
    EXPECT_LE(d.health.recoveries + d.health.failed_recoveries,
              d.health.failures)
        << d.name;
    EXPECT_GE(d.health.availability(), 0.0);
    EXPECT_LE(d.health.availability(), 1.0);

    // Invariant 2: a restorable checkpoint generation exists.
    EXPECT_NE(d.state_hash, 0u) << d.name << " has no valid generation";
    EXPECT_GE(d.final_generation, 1u) << d.name;

    // Invariant 3: selection accounting. `seen` can exceed the sum of
    // outcomes only by calls aborted mid-process (after the seen counter,
    // before an outcome) — each such abort consumed one injected fault.
    const auto& s = d.engine_stats;
    const std::size_t outcomes =
        s.admitted_free + s.admitted_replacing + s.rejected + s.quarantined;
    EXPECT_GE(s.seen, outcomes) << d.name;
    gap_total += s.seen - outcomes;

    // Governor bookkeeping: rung transitions must match the counters.
    std::uint64_t entered_total = 0;
    for (const std::uint64_t n : d.governor.entered) entered_total += n;
    EXPECT_EQ(entered_total, d.governor.escalations + d.governor.recoveries)
        << d.name;
  }
  EXPECT_LE(gap_total, result.faults.oom + result.faults.task_fails);

  // Retry accounting: attempts >= calls, and every healed call implies at
  // least one retry.
  for (const auto& d : result.devices) {
    for (const auto* retry : {&d.ckpt_retry, &d.ingest_retry}) {
      EXPECT_GE(retry->attempts, retry->calls);
      EXPECT_GE(retry->retries, retry->healed);
    }
  }
}

// Invariant 4 on a subsample of schedules (a repeat doubles the cost, so
// every 4th seed is plenty: 8 independent determinism witnesses).
TEST_P(ChaosScheduleTest, RepeatedScheduleIsBitIdentical) {
  const std::uint64_t seed = GetParam();
  if (seed % 4 != 0) GTEST_SKIP() << "determinism checked on every 4th seed";

  const std::string dir_a = work_dir_ + "/a";
  const std::string dir_b = work_dir_ + "/b";
  fs::create_directories(dir_a);
  fs::create_directories(dir_b);
  const exp::ChaosFleetResult a =
      exp::run_chaos_fleet(chaos_config(seed, dir_a));
  const exp::ChaosFleetResult b =
      exp::run_chaos_fleet(chaos_config(seed, dir_b));

  EXPECT_EQ(a.fleet_state_hash, b.fleet_state_hash);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].state_hash, b.devices[i].state_hash) << i;
    EXPECT_EQ(a.devices[i].final_generation, b.devices[i].final_generation)
        << i;
    EXPECT_EQ(a.devices[i].health.failures, b.devices[i].health.failures)
        << i;
    EXPECT_EQ(a.devices[i].engine_stats.seen, b.devices[i].engine_stats.seen)
        << i;
    EXPECT_EQ(a.devices[i].governor.escalations,
              b.devices[i].governor.escalations)
        << i;
  }
  EXPECT_EQ(a.totals.failures, b.totals.failures);
  EXPECT_EQ(a.faults.total_injected(), b.faults.total_injected());
}

INSTANTIATE_TEST_SUITE_P(Schedules, ChaosScheduleTest,
                         ::testing::Range<std::uint64_t>(1, kNumSchedules + 1));

// A fault-free schedule is the control group: full availability, zero
// injections, zero retries needed.
TEST(ChaosFleet, NoFaultsMeansFullAvailability) {
  const std::string dir =
      "/tmp/odlp_chaos_ctl_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  exp::ChaosFleetConfig config = chaos_config(0, dir);
  config.schedule = util::fault::FaultSchedule{};  // no events
  const exp::ChaosFleetResult result = exp::run_chaos_fleet(config);
  EXPECT_DOUBLE_EQ(result.totals.availability, 1.0);
  EXPECT_EQ(result.totals.failures, 0u);
  EXPECT_EQ(result.faults.total_injected(), 0u);
  for (const auto& d : result.devices) {
    EXPECT_EQ(d.ckpt_retry.retries, 0u);
    EXPECT_EQ(d.ingest_retry.retries, 0u);
    EXPECT_NE(d.state_hash, 0u);
  }
  fs::remove_all(dir);
}

// The governor must actually engage under the auto-derived memory budget:
// the fp32 ledger exceeds it, so the ladder leaves nominal at least once.
TEST(ChaosFleet, GovernorEngagesUnderMemoryPressure) {
  const std::string dir =
      "/tmp/odlp_chaos_gov_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  exp::ChaosFleetConfig config = chaos_config(0, dir);
  config.schedule = util::fault::FaultSchedule{};  // isolate the governor
  const exp::ChaosFleetResult result = exp::run_chaos_fleet(config);
  for (const auto& d : result.devices) {
    EXPECT_GE(d.governor.escalations, 1u) << d.name;
    EXPECT_GE(d.governor.entered[static_cast<std::size_t>(
                  resil::Rung::kInt8Inference)],
              1u)
        << d.name;
  }
  fs::remove_all(dir);
}

TEST(ChaosFleet, RequiresWorkDir) {
  exp::ChaosFleetConfig config;
  config.work_dir = "";
  EXPECT_THROW(exp::run_chaos_fleet(config), std::invalid_argument);
}

}  // namespace
}  // namespace odlp
