#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.h"
#include "nn/block.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace odlp::nn {
namespace {

using tensor::Tensor;

TEST(Linear, OutputShape) {
  util::Rng rng(1);
  Linear lin("l", 6, 4, rng);
  Tensor x(3, 6, 0.5f);
  Tensor y = lin.forward(x, false);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 4u);
}

TEST(Linear, ZeroInputYieldsBias) {
  util::Rng rng(2);
  Linear lin("l", 3, 2, rng);
  ParameterList params;
  lin.collect_parameters(params);
  // Set the bias to known values.
  params[1]->value.at(0, 0) = 1.5f;
  params[1]->value.at(0, 1) = -2.0f;
  Tensor y = lin.forward(Tensor::zeros(2, 3), false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(1, 1), -2.0f);
}

TEST(Linear, NoBiasVariant) {
  util::Rng rng(3);
  Linear lin("l", 3, 2, rng, /*bias=*/false);
  Tensor y = lin.forward(Tensor::zeros(1, 3), false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  ParameterList params;
  lin.collect_parameters(params);
  EXPECT_EQ(params.size(), 1u);  // weight only
}

TEST(Linear, LoraAttachFreezesBase) {
  util::Rng rng(4);
  Linear lin("l", 4, 4, rng);
  lin.attach_lora(LoraConfig{}, rng);
  ParameterList params;
  lin.collect_parameters(params);
  ASSERT_EQ(params.size(), 4u);  // W, b, A, B
  EXPECT_FALSE(params[0]->trainable);
  EXPECT_FALSE(params[1]->trainable);
  EXPECT_TRUE(params[2]->trainable);
  EXPECT_TRUE(params[3]->trainable);
}

TEST(Linear, FreshLoraDoesNotChangeOutput) {
  // B starts at zero, so the adapter delta is exactly zero at attach time.
  util::Rng rng(5);
  Linear lin("l", 4, 3, rng);
  Tensor x(2, 4, 0.7f);
  Tensor before = lin.forward(x, false);
  lin.attach_lora(LoraConfig{}, rng);
  Tensor after = lin.forward(x, false);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(after.data()[i], before.data()[i]);
  }
}

TEST(Linear, MergeLoraPreservesFunction) {
  util::Rng rng(6);
  Linear lin("l", 4, 3, rng);
  LoraConfig lc;
  lc.dropout = 0.0f;
  lin.attach_lora(lc, rng);
  // Perturb A and B so the adapter is non-trivial.
  ParameterList params;
  lin.collect_parameters(params);
  for (Parameter* p : params) {
    if (p->name.find("lora") != std::string::npos) {
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        p->value.data()[i] = static_cast<float>(rng.normal(0.0, 0.2));
      }
    }
  }
  Tensor x(2, 4, 0.3f);
  Tensor with_adapter = lin.forward(x, false);
  lin.merge_lora();
  EXPECT_FALSE(lin.has_lora());
  Tensor merged = lin.forward(x, false);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_NEAR(merged.data()[i], with_adapter.data()[i], 1e-5f);
  }
}

TEST(Linear, DetachRestoresTrainability) {
  util::Rng rng(7);
  Linear lin("l", 3, 3, rng);
  lin.attach_lora(LoraConfig{}, rng);
  lin.detach_lora();
  ParameterList params;
  lin.collect_parameters(params);
  EXPECT_EQ(params.size(), 2u);
  EXPECT_TRUE(params[0]->trainable);
}

TEST(Linear, FrozenWeightAccumulatesNoGradient) {
  util::Rng rng(8);
  Linear lin("l", 3, 2, rng);
  lin.attach_lora(LoraConfig{}, rng);
  Tensor x(2, 3, 1.0f);
  lin.forward(x, false);
  lin.backward(Tensor::ones(2, 2));
  EXPECT_FLOAT_EQ(lin.weight().grad.l2_norm(), 0.0f);
}

TEST(Embedding, GathersRows) {
  util::Rng rng(9);
  Embedding emb("e", 10, 4, rng);
  Tensor out = emb.forward({3, 3, 7});
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.at(0, j), out.at(1, j));  // same id -> same row
    EXPECT_FLOAT_EQ(out.at(0, j), emb.table().value.at(3, j));
  }
}

TEST(Embedding, BackwardScatterAccumulates) {
  util::Rng rng(10);
  Embedding emb("e", 5, 2, rng);
  emb.forward({1, 1, 2});
  Tensor dout = Tensor::from(3, 2, {1, 1, 2, 2, 5, 5});
  emb.backward(dout);
  EXPECT_FLOAT_EQ(emb.table().grad.at(1, 0), 3.0f);  // 1 + 2
  EXPECT_FLOAT_EQ(emb.table().grad.at(2, 0), 5.0f);
  EXPECT_FLOAT_EQ(emb.table().grad.at(0, 0), 0.0f);
}

TEST(Embedding, FrozenTableSkipsGradient) {
  util::Rng rng(11);
  Embedding emb("e", 5, 2, rng);
  emb.mutable_table().trainable = false;
  emb.forward({0});
  emb.backward(Tensor::ones(1, 2));
  EXPECT_FLOAT_EQ(emb.table().grad.l2_norm(), 0.0f);
}

TEST(LayerNormModule, GainAndBiasApplied) {
  LayerNorm ln("ln", 4);
  ParameterList params;
  ln.collect_parameters(params);
  params[0]->value.fill(2.0f);  // gain
  params[1]->value.fill(1.0f);  // bias
  Tensor x = Tensor::from(1, 4, {1, 2, 3, 4});
  Tensor y = ln.forward(x);
  // mean of y should equal bias (normalized rows have zero mean).
  double mean = 0;
  for (std::size_t j = 0; j < 4; ++j) mean += y.at(0, j);
  EXPECT_NEAR(mean / 4, 1.0, 1e-5);
}

TEST(Attention, OutputShapeMatchesInput) {
  util::Rng rng(12);
  MultiHeadSelfAttention attn("a", 8, 2, rng);
  Tensor x(5, 8, 0.1f);
  Tensor y = attn.forward(x, false);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 8u);
}

TEST(Attention, CausalityFirstTokenUnaffectedByLater) {
  // The first row of the output must not change when later tokens change.
  util::Rng rng(13);
  MultiHeadSelfAttention attn("a", 8, 2, rng);
  util::Rng data_rng(14);
  Tensor x1(4, 8), x2(4, 8);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    x1.data()[i] = static_cast<float>(data_rng.normal());
    x2.data()[i] = x1.data()[i];
  }
  // Perturb only tokens 1..3 in x2.
  for (std::size_t t = 1; t < 4; ++t) {
    for (std::size_t j = 0; j < 8; ++j) x2.at(t, j) += 1.0f;
  }
  Tensor y1 = attn.forward(x1, false);
  Tensor y2 = attn.forward(x2, false);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(y1.at(0, j), y2.at(0, j), 1e-5f);
  }
}

TEST(Attention, LoraAttachesToAllFourProjections) {
  util::Rng rng(15);
  MultiHeadSelfAttention attn("a", 8, 2, rng);
  ParameterList before;
  attn.collect_parameters(before);
  attn.attach_lora(LoraConfig{}, rng);
  ParameterList after;
  attn.collect_parameters(after);
  EXPECT_EQ(after.size(), before.size() + 8u);  // 4 projections x (A, B)
}

TEST(Block, ResidualPathPreservesShape) {
  util::Rng rng(16);
  TransformerBlock block("b", 8, 2, 16, rng);
  Tensor x(6, 8, 0.2f);
  Tensor y = block.forward(x, false);
  EXPECT_EQ(y.rows(), 6u);
  EXPECT_EQ(y.cols(), 8u);
}

TEST(ParamHelpers, CountsAndZeroGrads) {
  util::Rng rng(17);
  Linear lin("l", 4, 4, rng);
  ParameterList params;
  lin.collect_parameters(params);
  EXPECT_EQ(count_total(params), 4u * 4u + 4u);
  EXPECT_EQ(count_trainable(params), 20u);
  params[0]->grad.fill(3.0f);
  zero_grads(params);
  EXPECT_FLOAT_EQ(params[0]->grad.l2_norm(), 0.0f);
}

TEST(ParamHelpers, LoraShrinksTrainableCount) {
  util::Rng rng(18);
  Linear lin("l", 32, 32, rng);
  ParameterList dense;
  lin.collect_parameters(dense);
  const std::size_t full = count_trainable(dense);
  LoraConfig lc;
  lc.rank = 2;
  lin.attach_lora(lc, rng);
  ParameterList lora;
  lin.collect_parameters(lora);
  const std::size_t adapted = count_trainable(lora);
  EXPECT_EQ(adapted, 2u * 32u * 2u);
  EXPECT_LT(adapted, full);
}

TEST(ParamHelpers, ClipGradNorm) {
  util::Rng rng(19);
  Linear lin("l", 2, 2, rng);
  ParameterList params;
  lin.collect_parameters(params);
  params[0]->grad.fill(10.0f);
  params[1]->grad.fill(10.0f);
  const float before = clip_grad_norm(params, 1.0f);
  EXPECT_GT(before, 1.0f);
  double total = 0;
  for (Parameter* p : params) {
    total += static_cast<double>(p->grad.l2_norm()) * p->grad.l2_norm();
  }
  EXPECT_NEAR(std::sqrt(total), 1.0, 1e-4);
}

TEST(ParamHelpers, ClipBelowThresholdIsNoop) {
  util::Rng rng(20);
  Linear lin("l", 2, 2, rng);
  ParameterList params;
  lin.collect_parameters(params);
  params[0]->grad.fill(0.01f);
  clip_grad_norm(params, 1.0f);
  EXPECT_FLOAT_EQ(params[0]->grad.at(0, 0), 0.01f);
}

TEST(Init, XavierBoundsRespectFanInOut) {
  util::Rng rng(21);
  tensor::Tensor w(64, 64);
  init_xavier_uniform(w, rng);
  const float limit = std::sqrt(6.0f / 128.0f);
  EXPECT_LE(w.abs_max(), limit + 1e-6f);
  EXPECT_GT(w.abs_max(), limit * 0.5f);  // actually fills the range
}

}  // namespace
}  // namespace odlp::nn
