#include <gtest/gtest.h>

#include <set>

#include "llm/minillm.h"
#include "llm/sampler.h"
#include "llm/trainer.h"

namespace odlp::llm {
namespace {

ModelConfig tiny_config() {
  ModelConfig mc;
  mc.vocab_size = 16;
  mc.dim = 8;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 16;
  mc.max_seq_len = 16;
  return mc;
}

// Train a model to deterministically continue {2, 5} with "6 7 3(eos)".
MiniLlm trained_model() {
  MiniLlm model(tiny_config(), 42);
  TrainConfig tc;
  tc.epochs = 120;
  tc.batch_size = 1;
  tc.learning_rate = 2e-2f;
  tc.shuffle_each_epoch = false;
  Trainer trainer(model, tc, util::Rng(1));
  text::Tokenizer::EncodedDialogue ex;
  ex.input = {2, 5, 6, 7, 3};
  ex.targets = {5, 6, 7, 3, -1};
  trainer.fine_tune({ex});
  return model;
}

TEST(Sampler, GreedyReproducesTrainedContinuation) {
  MiniLlm model = trained_model();
  SamplerConfig sc;
  sc.temperature = 0.0f;
  sc.max_new_tokens = 8;
  Sampler sampler(model, sc, util::Rng(2));
  const auto out = sampler.generate_ids({2, 5});
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[0], 6);
  EXPECT_EQ(out[1], 7);
}

TEST(Sampler, StopsAtEos) {
  MiniLlm model = trained_model();
  SamplerConfig sc;
  sc.temperature = 0.0f;
  sc.max_new_tokens = 10;
  Sampler sampler(model, sc, util::Rng(3));
  const auto out = sampler.generate_ids({2, 5});
  // Continuation is 6 7 then eos: generation must stop without emitting eos.
  EXPECT_LE(out.size(), 3u);
  for (int id : out) EXPECT_NE(id, text::Vocab::kEos);
}

TEST(Sampler, RespectsMaxNewTokens) {
  MiniLlm model(tiny_config(), 5);  // untrained: no natural eos
  SamplerConfig sc;
  sc.temperature = 1.0f;
  sc.max_new_tokens = 4;
  Sampler sampler(model, sc, util::Rng(6));
  const auto out = sampler.generate_ids({2, 1});
  EXPECT_LE(out.size(), 4u);
}

TEST(Sampler, RespectsModelMaxSeqLen) {
  MiniLlm model(tiny_config(), 7);
  SamplerConfig sc;
  sc.temperature = 1.0f;
  sc.max_new_tokens = 100;
  Sampler sampler(model, sc, util::Rng(8));
  std::vector<int> prompt(14, 1);
  const auto out = sampler.generate_ids(prompt);
  EXPECT_LE(prompt.size() + out.size(), tiny_config().max_seq_len);
}

TEST(Sampler, GreedyIsDeterministic) {
  MiniLlm model = trained_model();
  SamplerConfig sc;
  sc.temperature = 0.0f;
  sc.max_new_tokens = 6;
  Sampler s1(model, sc, util::Rng(9));
  Sampler s2(model, sc, util::Rng(10));  // different rng: greedy ignores it
  EXPECT_EQ(s1.generate_ids({2, 5}), s2.generate_ids({2, 5}));
}

TEST(Sampler, HighTemperatureIncreasesDiversity) {
  MiniLlm model = trained_model();
  SamplerConfig hot;
  hot.temperature = 3.0f;
  hot.max_new_tokens = 6;
  std::set<std::vector<int>> outputs;
  for (int i = 0; i < 8; ++i) {
    Sampler sampler(model, hot, util::Rng(100 + i));
    outputs.insert(sampler.generate_ids({2, 5}));
  }
  EXPECT_GT(outputs.size(), 1u);
}

TEST(Sampler, TopKOneEqualsGreedy) {
  MiniLlm model = trained_model();
  SamplerConfig greedy;
  greedy.temperature = 0.0f;
  greedy.max_new_tokens = 6;
  SamplerConfig topk;
  topk.temperature = 1.0f;
  topk.top_k = 1;
  topk.max_new_tokens = 6;
  Sampler g(model, greedy, util::Rng(11));
  Sampler k(model, topk, util::Rng(12));
  EXPECT_EQ(g.generate_ids({2, 5}), k.generate_ids({2, 5}));
}

TEST(Sampler, RespondProducesText) {
  MiniLlm model(tiny_config(), 13);
  text::Vocab vocab;
  vocab.add("hello");
  vocab.add("world");
  // Pad the vocab so ids stay within the model's vocab size.
  text::Tokenizer tok(std::move(vocab));
  SamplerConfig sc;
  sc.temperature = 0.5f;
  sc.max_new_tokens = 4;
  Sampler sampler(model, sc, util::Rng(14));
  const std::string out = sampler.respond(tok, "hello world");
  // Output decodes to plain words (possibly empty if eos came first).
  for (char c : out) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == ' ');
  }
}

}  // namespace
}  // namespace odlp::llm
