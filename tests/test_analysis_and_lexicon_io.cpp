// Lexicon file I/O, per-domain reporting, and the selection audit log.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/attach.h"
#include "analysis/audit_log.h"
#include "analysis/domain_report.h"
#include "data/generator.h"
#include "exp/experiment.h"
#include "lexicon/lexicon_io.h"

namespace odlp {
namespace {

constexpr const char* kSampleDict = R"(
# a user-defined dictionary
[cooking]
Utensils: whisk spatula skillet
Spices: paprika cumin saffron

[astronomy]
Bodies: nebula quasar pulsar
)";

TEST(LexiconIo, ParsesDomainsAndSublexicons) {
  std::istringstream in(kSampleDict);
  const auto dict = lexicon::parse_dictionary(in);
  ASSERT_EQ(dict.num_domains(), 2u);
  EXPECT_EQ(dict.domain(0).name(), "cooking");
  EXPECT_EQ(dict.domain(0).sublexicons().size(), 2u);
  EXPECT_TRUE(dict.domain(0).contains("whisk"));
  EXPECT_TRUE(dict.domain(0).contains("saffron"));
  EXPECT_TRUE(dict.domain(1).contains("quasar"));
  EXPECT_FALSE(dict.domain(1).contains("whisk"));
}

TEST(LexiconIo, NormalizesWordsOnLoad) {
  std::istringstream in("[d]\ns: WHISK, Spatula!\n");
  const auto dict = lexicon::parse_dictionary(in);
  EXPECT_TRUE(dict.domain(0).contains("whisk"));
  EXPECT_TRUE(dict.domain(0).contains("spatula"));
}

TEST(LexiconIo, RejectsMalformedInput) {
  std::istringstream no_domain("words: before header\n");
  EXPECT_THROW(lexicon::parse_dictionary(no_domain), std::runtime_error);
  std::istringstream no_colon("[d]\njust words without colon\n");
  EXPECT_THROW(lexicon::parse_dictionary(no_colon), std::runtime_error);
  std::istringstream empty_domain("[d]\n[e]\ns: w\n");
  EXPECT_THROW(lexicon::parse_dictionary(empty_domain), std::runtime_error);
  std::istringstream unterminated("[d\ns: w\n");
  EXPECT_THROW(lexicon::parse_dictionary(unterminated), std::runtime_error);
  std::istringstream nothing("# only comments\n");
  EXPECT_THROW(lexicon::parse_dictionary(nothing), std::runtime_error);
}

TEST(LexiconIo, FormatParsesBack) {
  std::istringstream in(kSampleDict);
  const auto dict = lexicon::parse_dictionary(in);
  std::istringstream again(lexicon::format_dictionary(dict));
  const auto round = lexicon::parse_dictionary(again);
  ASSERT_EQ(round.num_domains(), dict.num_domains());
  for (std::size_t i = 0; i < dict.num_domains(); ++i) {
    EXPECT_EQ(round.domain(i).name(), dict.domain(i).name());
    EXPECT_EQ(round.domain(i).vocabulary_size(), dict.domain(i).vocabulary_size());
  }
}

TEST(LexiconIo, SaveLoadRoundTrip) {
  const std::string path = "/tmp/odlp_lexicon_test.txt";
  std::istringstream in(kSampleDict);
  const auto dict = lexicon::parse_dictionary(in);
  lexicon::save_dictionary(dict, path);
  const auto loaded = lexicon::load_dictionary(path);
  EXPECT_EQ(loaded.num_domains(), 2u);
  EXPECT_TRUE(loaded.domain(0).contains("cumin"));
  std::remove(path.c_str());
}

TEST(LexiconIo, MergeAppendsAndReplaces) {
  std::istringstream base_in("[a]\ns: one\n[b]\ns: two\n");
  std::istringstream extra_in("[b]\ns: replaced\n[c]\ns: three\n");
  const auto base = lexicon::parse_dictionary(base_in);
  const auto extra = lexicon::parse_dictionary(extra_in);
  const auto merged = lexicon::merge_dictionaries(base, extra);
  ASSERT_EQ(merged.num_domains(), 3u);
  const auto b = merged.index_of("b").value();
  EXPECT_TRUE(merged.domain(b).contains("replaced"));
  EXPECT_FALSE(merged.domain(b).contains("two"));
  EXPECT_TRUE(merged.index_of("c").has_value());
}

TEST(DomainReport, BucketsByDominantDomain) {
  const auto& dict = lexicon::builtin_dictionary();
  analysis::DomainReport report(dict);
  data::DialogueSet med;
  med.question = "dose vial pills";
  med.answer = "inject arm";
  report.add(med, 0.8);
  report.add(med, 0.6);
  data::DialogueSet none;
  none.question = "zzz qqq";
  none.answer = "www";
  report.add(none, 0.1);

  const auto buckets = report.buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].domain, "medical");
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_NEAR(buckets[0].mean_rouge1, 0.7, 1e-12);
  EXPECT_EQ(buckets[1].domain, "(none)");
  EXPECT_NEAR(report.overall(), 0.5, 1e-12);
  EXPECT_EQ(report.total(), 3u);
}

TEST(DomainReport, TableIncludesOverallRow) {
  const auto& dict = lexicon::builtin_dictionary();
  analysis::DomainReport report(dict);
  data::DialogueSet med;
  med.question = "dose";
  report.add(med, 0.5);
  const std::string table = report.to_table().to_string();
  EXPECT_NE(table.find("overall"), std::string::npos);
  EXPECT_NE(table.find("medical"), std::string::npos);
}

TEST(AuditLog, JsonShapeAndCounts) {
  analysis::SelectionEvent event;
  event.seen = 12;
  event.outcome = analysis::SelectionOutcome::kReplace;
  event.victim = 3;
  event.scores = {0.91, 0.04, 0.52};
  event.dominant_domain = "medical";
  event.is_noise = false;
  const std::string json = analysis::to_json(event);
  EXPECT_NE(json.find("\"seen\":12"), std::string::npos);
  EXPECT_NE(json.find("\"decision\":\"replace\""), std::string::npos);
  EXPECT_NE(json.find("\"victim\":3"), std::string::npos);
  EXPECT_NE(json.find("\"domain\":\"medical\""), std::string::npos);
  EXPECT_NE(json.find("\"noise\":false"), std::string::npos);

  event.outcome = analysis::SelectionOutcome::kReject;
  event.victim.reset();
  const std::string rejected = analysis::to_json(event);
  EXPECT_NE(rejected.find("\"victim\":null"), std::string::npos);
}

TEST(AuditLog, AttachedToEngineRecordsEveryDecision) {
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::ModelConfig mc;
  mc.vocab_size = tokenizer.vocab().size();
  mc.dim = 16;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 32;
  llm::MiniLlm model(mc, 3);
  llm::BagOfWordsExtractor extractor(16);
  data::UserOracle oracle(5, lexicon::builtin_dictionary());
  core::EngineConfig ec;
  ec.buffer_bins = 3;
  ec.finetune_interval = 0;
  core::PersonalizationEngine engine(
      model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
      exp::make_policy("Ours"), nullptr, ec, util::Rng(6));

  std::ostringstream sink;
  analysis::AuditLog log(sink);
  analysis::attach_audit_log(engine, log, lexicon::builtin_dictionary());

  data::Generator gen(data::meddialog_profile(), oracle, util::Rng(7));
  for (int i = 0; i < 8; ++i) engine.process(gen.make_informative(0, i % 2));

  EXPECT_EQ(log.events_written(), 8u);
  // Every line parses as one JSON object mentioning a decision.
  std::istringstream lines(sink.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"decision\":"), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, 8u);
}

}  // namespace
}  // namespace odlp
