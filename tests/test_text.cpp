#include <gtest/gtest.h>

#include "text/ngrams.h"
#include "text/normalize.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

namespace odlp::text {
namespace {

TEST(Normalize, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(normalize("Hello, World!"), "hello world");
  EXPECT_EQ(normalize("A-B_C"), "a b c");
}

TEST(Normalize, CollapsesWhitespace) {
  EXPECT_EQ(normalize("a   b\t\tc"), "a b c");
}

TEST(Normalize, KeepsDigits) { EXPECT_EQ(normalize("take 2 pills"), "take 2 pills"); }

TEST(Normalize, EmptyAndPunctuationOnly) {
  EXPECT_EQ(normalize(""), "");
  EXPECT_EQ(normalize("!!! ???"), "");
}

TEST(NormalizeAndSplit, Tokens) {
  EXPECT_EQ(normalize_and_split("Hi, there!"),
            (std::vector<std::string>{"hi", "there"}));
}

TEST(Vocab, SpecialTokensPresent) {
  Vocab v;
  EXPECT_EQ(v.id("<pad>"), Vocab::kPad);
  EXPECT_EQ(v.id("<unk>"), Vocab::kUnk);
  EXPECT_EQ(v.id("<bos>"), Vocab::kBos);
  EXPECT_EQ(v.id("<eos>"), Vocab::kEos);
  EXPECT_EQ(v.id("<sep>"), Vocab::kSep);
  EXPECT_EQ(v.size(), 5u);
}

TEST(Vocab, AddAndLookup) {
  Vocab v;
  const int id = v.add("word");
  EXPECT_EQ(v.id("word"), id);
  EXPECT_EQ(v.word(id), "word");
  EXPECT_EQ(v.add("word"), id);  // idempotent
}

TEST(Vocab, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.id("never_seen"), Vocab::kUnk);
}

TEST(Vocab, FreezeBlocksGrowth) {
  Vocab v;
  v.add("known");
  v.freeze();
  EXPECT_EQ(v.add("new_word"), Vocab::kUnk);
  EXPECT_FALSE(v.contains("new_word"));
  EXPECT_EQ(v.add("known"), v.id("known"));  // existing still resolves
}

TEST(Vocab, BuildKeepsFrequentWords) {
  Vocab v;
  std::vector<std::vector<std::string>> docs = {
      {"apple", "apple", "banana"}, {"apple", "cherry"}};
  v.build(docs, /*min_freq=*/2);
  EXPECT_TRUE(v.contains("apple"));
  EXPECT_FALSE(v.contains("banana"));
  EXPECT_FALSE(v.contains("cherry"));
}

TEST(Vocab, BuildRespectsMaxSize) {
  Vocab v;
  std::vector<std::vector<std::string>> docs = {{"a", "b", "c", "d", "e"}};
  v.build(docs, 1, /*max_size=*/7);  // 5 specials + 2 words
  EXPECT_EQ(v.size(), 7u);
}

TEST(Tokenizer, EncodeGrowsVocabWhenUnfrozen) {
  Tokenizer tok{Vocab{}};
  const auto ids = tok.encode("new words here");
  EXPECT_EQ(ids.size(), 3u);
  for (int id : ids) EXPECT_GT(id, Vocab::kSep);
}

TEST(Tokenizer, ConstEncodeNeverGrows) {
  Tokenizer tok{Vocab{}};
  const Tokenizer& ctok = tok;
  const auto ids = ctok.encode("mystery");
  EXPECT_EQ(ids, std::vector<int>{Vocab::kUnk});
  EXPECT_FALSE(tok.vocab().contains("mystery"));
}

TEST(Tokenizer, DecodeSkipsSpecials) {
  Tokenizer tok{Vocab{}};
  const int hello = tok.vocab().add("hello");
  const int world = tok.vocab().add("world");
  EXPECT_EQ(tok.decode({Vocab::kBos, hello, Vocab::kSep, world, Vocab::kEos}),
            "hello world");
}

TEST(Tokenizer, EncodeDecodeRoundTrip) {
  Tokenizer tok{Vocab{}};
  const std::string text = "the quick brown fox";
  const auto ids = tok.encode(text);
  EXPECT_EQ(tok.decode(ids), text);
}

TEST(Tokenizer, DialogueEncodingLayout) {
  Tokenizer tok{Vocab{}};
  tok.encode("what dose");  // grow vocab first
  tok.encode("take pills");
  const auto enc = tok.encode_dialogue("what dose", "take pills");
  // <bos> what dose <sep> take pills <eos>
  ASSERT_EQ(enc.input.size(), 7u);
  EXPECT_EQ(enc.input.front(), Vocab::kBos);
  EXPECT_EQ(enc.input[enc.sep_position], Vocab::kSep);
  EXPECT_EQ(enc.input.back(), Vocab::kEos);
  EXPECT_EQ(enc.sep_position, 3u);
}

TEST(Tokenizer, DialogueTargetsSuperviseOnlyResponse) {
  Tokenizer tok{Vocab{}};
  tok.encode("q1 q2 a1 a2");
  const auto enc = tok.encode_dialogue("q1 q2", "a1 a2");
  // targets[t] = input[t+1]; positions before <sep> masked.
  ASSERT_EQ(enc.targets.size(), enc.input.size());
  for (std::size_t t = 0; t < enc.sep_position; ++t) EXPECT_EQ(enc.targets[t], -1);
  for (std::size_t t = enc.sep_position; t + 1 < enc.input.size(); ++t) {
    EXPECT_EQ(enc.targets[t], enc.input[t + 1]);
  }
  EXPECT_EQ(enc.targets.back(), -1);
}

TEST(Tokenizer, DialogueSuperviseQuestionMode) {
  Tokenizer tok{Vocab{}};
  tok.encode("q a");
  const auto enc = tok.encode_dialogue("q", "a", 512, /*supervise_question=*/true);
  for (std::size_t t = 0; t + 1 < enc.input.size(); ++t) {
    EXPECT_EQ(enc.targets[t], enc.input[t + 1]);
  }
}

TEST(Tokenizer, DialogueTruncatesToMaxLen) {
  Tokenizer tok{Vocab{}};
  std::string long_q;
  for (int i = 0; i < 50; ++i) long_q += "w" + std::to_string(i) + " ";
  tok.encode(long_q);
  const auto enc = tok.encode_dialogue(long_q, "answer", /*max_len=*/16);
  EXPECT_EQ(enc.input.size(), 16u);
  EXPECT_EQ(enc.input.back(), Vocab::kEos);
}

TEST(Tokenizer, PromptEndsWithSep) {
  Tokenizer tok{Vocab{}};
  tok.encode("ask me");
  const auto prompt = tok.encode_prompt("ask me");
  EXPECT_EQ(prompt.front(), Vocab::kBos);
  EXPECT_EQ(prompt.back(), Vocab::kSep);
  EXPECT_EQ(prompt.size(), 4u);
}

TEST(Tokenizer, PromptTruncation) {
  Tokenizer tok{Vocab{}};
  std::string long_q;
  for (int i = 0; i < 50; ++i) long_q += "x" + std::to_string(i) + " ";
  tok.encode(long_q);
  const auto prompt = tok.encode_prompt(long_q, 10);
  EXPECT_EQ(prompt.size(), 10u);
  EXPECT_EQ(prompt.back(), Vocab::kSep);
}

TEST(Ngrams, UnigramCounts) {
  const auto counts = ngram_counts({"a", "b", "a"}, 1);
  EXPECT_EQ(counts.at("a"), 2);
  EXPECT_EQ(counts.at("b"), 1);
}

TEST(Ngrams, BigramCounts) {
  const auto counts = ngram_counts({"a", "b", "a", "b"}, 2);
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_EQ(total_count(counts), 3u);
}

TEST(Ngrams, TooShortSequence) {
  EXPECT_TRUE(ngram_counts({"a"}, 2).empty());
  EXPECT_TRUE(ngram_counts({}, 1).empty());
}

TEST(Ngrams, NoCrossGramCollision) {
  // {"ab","c"} vs {"a","bc"} must not share bigram keys.
  const auto c1 = ngram_counts({"ab", "c"}, 2);
  const auto c2 = ngram_counts({"a", "bc"}, 2);
  EXPECT_EQ(overlap_count(c1, c2), 0u);
}

TEST(Ngrams, OverlapUsesMultisetMin) {
  const auto a = ngram_counts({"x", "x", "x"}, 1);
  const auto b = ngram_counts({"x"}, 1);
  EXPECT_EQ(overlap_count(a, b), 1u);
  EXPECT_EQ(overlap_count(b, a), 1u);
}

}  // namespace
}  // namespace odlp::text
