#include <gtest/gtest.h>

#include <algorithm>

#include "devicesim/cost_model.h"
#include "devicesim/memory_model.h"
#include "llm/minillm.h"
#include "resil/governor.h"

namespace odlp::devicesim {
namespace {

TEST(MemoryModel, PaperBinPayloadFitsTwentyTwoKb) {
  const BinSpec spec = paper_bin_spec();
  EXPECT_EQ(spec.max_text_tokens, 1024u);      // 512 question + 512 answer
  EXPECT_EQ(spec.embedding_floats, 4096u);     // Llama-3B hidden size
  EXPECT_LE(spec.kilobytes(), 22.0);           // payload fits in the granule
  EXPECT_GT(spec.kilobytes(), 16.0);           // embedding alone is 16 KB
}

// The paper's Table 3 bin-count ↔ KB ladder.
struct BufferSizeCase {
  std::size_t bins;
  double kb;
};

class PaperBufferLadder : public ::testing::TestWithParam<BufferSizeCase> {};

TEST_P(PaperBufferLadder, KbMatchesPaper) {
  EXPECT_DOUBLE_EQ(buffer_kb(GetParam().bins), GetParam().kb);
  EXPECT_EQ(bins_for_kb(GetParam().kb), GetParam().bins);
}

INSTANTIATE_TEST_SUITE_P(
    Table3, PaperBufferLadder,
    ::testing::Values(BufferSizeCase{8, 176.0}, BufferSizeCase{16, 352.0},
                      BufferSizeCase{32, 704.0}, BufferSizeCase{64, 1408.0},
                      BufferSizeCase{128, 2816.0}, BufferSizeCase{256, 5632.0},
                      BufferSizeCase{512, 11264.0}));

TEST(MemoryModel, BinsForKbEdgeCases) {
  EXPECT_EQ(bins_for_kb(0.0), 0u);
  EXPECT_EQ(bins_for_kb(-5.0), 0u);
  EXPECT_EQ(bins_for_kb(22.0), 1u);
}

TEST(MemoryModel, LrLadderMatchesPaperWithinRounding) {
  // Paper: {8:2, 16:3, 32:4, 64:5, 128:7, 256:10, 512:14} x 1e-5.
  const std::pair<std::size_t, double> ladder[] = {
      {8, 2e-5}, {16, 3e-5}, {32, 4e-5}, {64, 5e-5},
      {128, 7e-5}, {256, 10e-5}, {512, 14e-5}};
  for (const auto& [bins, lr] : ladder) {
    // The paper rounds to integer multiples of 1e-5; sqrt scaling lands
    // within 0.55e-5 of every rung.
    EXPECT_NEAR(scaled_learning_rate(bins), lr, 0.55e-5) << bins << " bins";
  }
}

TEST(MemoryModel, LrScalesWithSqrtOfBins) {
  const float lr32 = scaled_learning_rate(32);
  const float lr128 = scaled_learning_rate(128);
  EXPECT_NEAR(lr128 / lr32, 2.0f, 1e-4f);  // sqrt(4)
}

TEST(CostModel, FinetuneCostLinearInSequences) {
  llm::ModelConfig mc;
  const auto c1 = finetune_cost(mc, 100, 32.0, 1);
  const auto c2 = finetune_cost(mc, 200, 32.0, 1);
  EXPECT_NEAR(c2.flops / c1.flops, 2.0, 1e-9);
}

TEST(CostModel, FinetuneCostLinearInEpochs) {
  llm::ModelConfig mc;
  const auto c1 = finetune_cost(mc, 100, 32.0, 2);
  const auto c2 = finetune_cost(mc, 100, 32.0, 6);
  EXPECT_NEAR(c2.flops / c1.flops, 3.0, 1e-9);
}

TEST(CostModel, BackwardCostsTwiceForward) {
  llm::ModelConfig mc;
  const double fwd = mc.forward_flops(32);
  const auto c = finetune_cost(mc, 1, 32.0, 1);
  EXPECT_NEAR(c.flops, 3.0 * fwd, 1e-6);
}

TEST(CostModel, ModeledSecondsUseDeviceThroughput) {
  llm::ModelConfig mc;
  DeviceSpec fast;
  fast.sustained_flops = 1e12;
  DeviceSpec slow;
  slow.sustained_flops = 1e10;
  const auto cf = finetune_cost(mc, 50, 32.0, 2, fast);
  const auto cs = finetune_cost(mc, 50, 32.0, 2, slow);
  EXPECT_NEAR(cs.modeled_seconds / cf.modeled_seconds, 100.0, 1e-6);
}

TEST(CostModel, EnergyTracksPower) {
  llm::ModelConfig mc;
  DeviceSpec spec;
  spec.watts = 150.0;  // the paper's A10
  const auto c = finetune_cost(mc, 10, 32.0, 1, spec);
  EXPECT_NEAR(c.modeled_joules, c.modeled_seconds * 150.0, 1e-9);
}

TEST(CostModel, GenerationCostGrowsSuperlinearlyWithLength) {
  // Full-sequence recompute: generating 2x tokens costs more than 2x.
  llm::ModelConfig mc;
  const auto c1 = generation_cost(mc, 16, 8);
  const auto c2 = generation_cost(mc, 16, 16);
  EXPECT_GT(c2.flops, 2.0 * c1.flops);
}

TEST(CostModel, ZeroTokensZeroCost) {
  llm::ModelConfig mc;
  const auto c = generation_cost(mc, 16, 0);
  EXPECT_DOUBLE_EQ(c.flops, 0.0);
}

// --- MemoryLedger edge cases (resilience-layer accounting) ---------------

llm::ModelConfig tiny_model_config() {
  llm::ModelConfig mc;
  mc.vocab_size = 64;
  mc.dim = 16;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 32;
  mc.max_seq_len = 32;
  return mc;
}

TEST(MemoryLedger, ZeroBinBufferHasNoBufferShare) {
  EXPECT_DOUBLE_EQ(buffer_kb(0), 0.0);
  llm::MiniLlm model(tiny_model_config(), 1);
  const MemoryLedger ledger = model_memory_ledger(model, 0);
  EXPECT_EQ(ledger.buffer_bytes, 0u);
  EXPECT_EQ(ledger.total_bytes(), ledger.model_bytes() + ledger.kv_cache_bytes);
  EXPECT_GT(ledger.model_bytes(), 0u);
  EXPECT_GT(ledger.kv_cache_bytes, 0u);
}

TEST(MemoryLedger, Fp32RatioIsExactlyOne) {
  llm::MiniLlm model(tiny_model_config(), 1);
  const MemoryLedger ledger = model_memory_ledger(model, 8);
  EXPECT_DOUBLE_EQ(ledger.model_ratio_vs_fp32(), 1.0);
  EXPECT_EQ(ledger.model_bytes(), ledger.fp32_model_bytes);
}

#ifdef ODLP_INT8
TEST(MemoryLedger, Int8RatioWithinExpectedBounds) {
  llm::MiniLlm model(tiny_model_config(), 1);
  const MemoryLedger fp32 = model_memory_ledger(model, 8);
  model.set_inference_precision(nn::InferencePrecision::kInt8);
  const MemoryLedger int8 = model_memory_ledger(model, 8);
  // The fp32 baseline is precision-independent; the quantized resident set
  // must land strictly between "free lunch" and "no savings".
  EXPECT_EQ(int8.fp32_model_bytes, fp32.fp32_model_bytes);
  EXPECT_LT(int8.model_bytes(), fp32.model_bytes());
  EXPECT_GT(int8.model_ratio_vs_fp32(), 0.15);
  EXPECT_LT(int8.model_ratio_vs_fp32(), 0.75);
  EXPECT_GT(int8.scale_bytes, 0u);
  // KV cache and buffer shares do not depend on the weight precision.
  EXPECT_EQ(int8.kv_cache_bytes, fp32.kv_cache_bytes);
  EXPECT_EQ(int8.buffer_bytes, fp32.buffer_bytes);
}
#endif

TEST(MemoryLedger, GovernedLedgerScalesKvAndClamps) {
  llm::MiniLlm model(tiny_model_config(), 1);
  const MemoryLedger nominal = model_memory_ledger(model, 8);
  const MemoryLedger half = governed_memory_ledger(model, 8, 0.5);
  EXPECT_EQ(half.kv_cache_bytes, nominal.kv_cache_bytes / 2);
  EXPECT_EQ(half.model_bytes(), nominal.model_bytes());
  EXPECT_EQ(half.buffer_bytes, nominal.buffer_bytes);
  const MemoryLedger none = governed_memory_ledger(model, 8, 0.0);
  EXPECT_EQ(none.kv_cache_bytes, 0u);
  // Out-of-range fractions clamp instead of inflating or going negative.
  EXPECT_EQ(governed_memory_ledger(model, 8, 2.0).kv_cache_bytes,
            nominal.kv_cache_bytes);
  EXPECT_EQ(governed_memory_ledger(model, 8, -1.0).kv_cache_bytes, 0u);
}

TEST(MemoryLedger, ConsistentAcrossGovernorRungTransitions) {
  llm::MiniLlm model(tiny_model_config(), 1);
  const std::size_t bins = 8;
  resil::GovernorConfig gc;
  gc.memory_budget_bytes = 1;  // everything is over budget: walk every rung
  resil::ResourceGovernor gov(gc);

  std::size_t previous_total = governed_memory_ledger(model, bins, 1.0)
                                   .total_bytes();
  for (std::size_t step = 0; step + 1 < resil::kNumRungs; ++step) {
    const resil::GovernorDecision& d = gov.observe(
        {previous_total, 0.0});
#ifdef ODLP_INT8
    model.set_inference_precision(d.precision);
#endif
    // Bin shedding applied the way apply_decision scales it.
    const std::size_t live_bins = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(bins) *
                                    d.buffer_fraction));
    const MemoryLedger ledger =
        governed_memory_ledger(model, live_bins, d.kv_fraction);
    // Internal consistency at every rung.
    EXPECT_EQ(ledger.total_bytes(), ledger.model_bytes() +
                                        ledger.kv_cache_bytes +
                                        ledger.buffer_bytes);
    // Each deeper rung can only shrink (or hold) the resident set.
    EXPECT_LE(ledger.total_bytes(), previous_total)
        << "rung " << resil::to_string(d.rung);
    previous_total = ledger.total_bytes();
  }
  EXPECT_EQ(gov.rung(), resil::Rung::kSkipFinetune);
#ifdef ODLP_INT8
  model.set_inference_precision(nn::InferencePrecision::kFp32);
  EXPECT_EQ(model_memory_ledger(model, bins).model_bytes(),
            model_memory_ledger(model, bins).fp32_model_bytes);
#endif
}

}  // namespace
}  // namespace odlp::devicesim
