#include <gtest/gtest.h>

#include "devicesim/cost_model.h"
#include "devicesim/memory_model.h"

namespace odlp::devicesim {
namespace {

TEST(MemoryModel, PaperBinPayloadFitsTwentyTwoKb) {
  const BinSpec spec = paper_bin_spec();
  EXPECT_EQ(spec.max_text_tokens, 1024u);      // 512 question + 512 answer
  EXPECT_EQ(spec.embedding_floats, 4096u);     // Llama-3B hidden size
  EXPECT_LE(spec.kilobytes(), 22.0);           // payload fits in the granule
  EXPECT_GT(spec.kilobytes(), 16.0);           // embedding alone is 16 KB
}

// The paper's Table 3 bin-count ↔ KB ladder.
struct BufferSizeCase {
  std::size_t bins;
  double kb;
};

class PaperBufferLadder : public ::testing::TestWithParam<BufferSizeCase> {};

TEST_P(PaperBufferLadder, KbMatchesPaper) {
  EXPECT_DOUBLE_EQ(buffer_kb(GetParam().bins), GetParam().kb);
  EXPECT_EQ(bins_for_kb(GetParam().kb), GetParam().bins);
}

INSTANTIATE_TEST_SUITE_P(
    Table3, PaperBufferLadder,
    ::testing::Values(BufferSizeCase{8, 176.0}, BufferSizeCase{16, 352.0},
                      BufferSizeCase{32, 704.0}, BufferSizeCase{64, 1408.0},
                      BufferSizeCase{128, 2816.0}, BufferSizeCase{256, 5632.0},
                      BufferSizeCase{512, 11264.0}));

TEST(MemoryModel, BinsForKbEdgeCases) {
  EXPECT_EQ(bins_for_kb(0.0), 0u);
  EXPECT_EQ(bins_for_kb(-5.0), 0u);
  EXPECT_EQ(bins_for_kb(22.0), 1u);
}

TEST(MemoryModel, LrLadderMatchesPaperWithinRounding) {
  // Paper: {8:2, 16:3, 32:4, 64:5, 128:7, 256:10, 512:14} x 1e-5.
  const std::pair<std::size_t, double> ladder[] = {
      {8, 2e-5}, {16, 3e-5}, {32, 4e-5}, {64, 5e-5},
      {128, 7e-5}, {256, 10e-5}, {512, 14e-5}};
  for (const auto& [bins, lr] : ladder) {
    // The paper rounds to integer multiples of 1e-5; sqrt scaling lands
    // within 0.55e-5 of every rung.
    EXPECT_NEAR(scaled_learning_rate(bins), lr, 0.55e-5) << bins << " bins";
  }
}

TEST(MemoryModel, LrScalesWithSqrtOfBins) {
  const float lr32 = scaled_learning_rate(32);
  const float lr128 = scaled_learning_rate(128);
  EXPECT_NEAR(lr128 / lr32, 2.0f, 1e-4f);  // sqrt(4)
}

TEST(CostModel, FinetuneCostLinearInSequences) {
  llm::ModelConfig mc;
  const auto c1 = finetune_cost(mc, 100, 32.0, 1);
  const auto c2 = finetune_cost(mc, 200, 32.0, 1);
  EXPECT_NEAR(c2.flops / c1.flops, 2.0, 1e-9);
}

TEST(CostModel, FinetuneCostLinearInEpochs) {
  llm::ModelConfig mc;
  const auto c1 = finetune_cost(mc, 100, 32.0, 2);
  const auto c2 = finetune_cost(mc, 100, 32.0, 6);
  EXPECT_NEAR(c2.flops / c1.flops, 3.0, 1e-9);
}

TEST(CostModel, BackwardCostsTwiceForward) {
  llm::ModelConfig mc;
  const double fwd = mc.forward_flops(32);
  const auto c = finetune_cost(mc, 1, 32.0, 1);
  EXPECT_NEAR(c.flops, 3.0 * fwd, 1e-6);
}

TEST(CostModel, ModeledSecondsUseDeviceThroughput) {
  llm::ModelConfig mc;
  DeviceSpec fast;
  fast.sustained_flops = 1e12;
  DeviceSpec slow;
  slow.sustained_flops = 1e10;
  const auto cf = finetune_cost(mc, 50, 32.0, 2, fast);
  const auto cs = finetune_cost(mc, 50, 32.0, 2, slow);
  EXPECT_NEAR(cs.modeled_seconds / cf.modeled_seconds, 100.0, 1e-6);
}

TEST(CostModel, EnergyTracksPower) {
  llm::ModelConfig mc;
  DeviceSpec spec;
  spec.watts = 150.0;  // the paper's A10
  const auto c = finetune_cost(mc, 10, 32.0, 1, spec);
  EXPECT_NEAR(c.modeled_joules, c.modeled_seconds * 150.0, 1e-9);
}

TEST(CostModel, GenerationCostGrowsSuperlinearlyWithLength) {
  // Full-sequence recompute: generating 2x tokens costs more than 2x.
  llm::ModelConfig mc;
  const auto c1 = generation_cost(mc, 16, 8);
  const auto c2 = generation_cost(mc, 16, 16);
  EXPECT_GT(c2.flops, 2.0 * c1.flops);
}

TEST(CostModel, ZeroTokensZeroCost) {
  llm::ModelConfig mc;
  const auto c = generation_cost(mc, 16, 0);
  EXPECT_DOUBLE_EQ(c.flops, 0.0);
}

}  // namespace
}  // namespace odlp::devicesim
