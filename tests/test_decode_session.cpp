// KV-cached incremental decoding: numerical equivalence with the full
// recompute path, plus top-p sampling behaviour.
#include <gtest/gtest.h>

#include "llm/decode_session.h"
#include "llm/sampler.h"
#include "util/stopwatch.h"

namespace odlp::llm {
namespace {

ModelConfig session_config() {
  ModelConfig mc;
  mc.vocab_size = 40;
  mc.dim = 16;
  mc.heads = 4;
  mc.layers = 2;
  mc.ff_hidden = 32;
  mc.max_seq_len = 24;
  return mc;
}

TEST(DecodeSession, LogitsMatchFullForward) {
  MiniLlm model(session_config(), 31);
  const std::vector<int> tokens = {2, 7, 11, 5, 9, 30, 14};

  DecodeSession session(model);
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const tensor::Tensor inc = session.step(tokens[t]);
    const std::vector<int> prefix(tokens.begin(), tokens.begin() + t + 1);
    const tensor::Tensor full = model.forward(prefix, false);
    ASSERT_EQ(inc.cols(), full.cols());
    for (std::size_t j = 0; j < inc.cols(); ++j) {
      EXPECT_NEAR(inc.at(0, j), full.at(t, j), 1e-3f)
          << "position " << t << " vocab " << j;
    }
  }
}

TEST(DecodeSession, PrimeEqualsSequenceOfSteps) {
  MiniLlm model(session_config(), 32);
  const std::vector<int> prompt = {2, 4, 6, 8};
  DecodeSession a(model);
  const tensor::Tensor la = a.prime(prompt);
  DecodeSession b(model);
  tensor::Tensor lb;
  for (int t : prompt) lb = b.step(t);
  for (std::size_t j = 0; j < la.cols(); ++j) {
    EXPECT_FLOAT_EQ(la.at(0, j), lb.at(0, j));
  }
  EXPECT_EQ(a.length(), 4u);
}

TEST(DecodeSession, ResetStartsOver) {
  MiniLlm model(session_config(), 33);
  DecodeSession session(model);
  const tensor::Tensor first = session.step(5);
  session.step(7);
  session.reset();
  EXPECT_EQ(session.length(), 0u);
  const tensor::Tensor again = session.step(5);
  for (std::size_t j = 0; j < first.cols(); ++j) {
    EXPECT_FLOAT_EQ(again.at(0, j), first.at(0, j));
  }
}

TEST(DecodeSession, FullAtMaxSeqLen) {
  MiniLlm model(session_config(), 34);
  DecodeSession session(model);
  for (std::size_t t = 0; t < session_config().max_seq_len; ++t) {
    EXPECT_FALSE(session.full());
    session.step(1);
  }
  EXPECT_TRUE(session.full());
}

TEST(DecodeSession, WorksWithLoraAttached) {
  MiniLlm model(session_config(), 35);
  nn::LoraConfig lc;
  lc.rank = 2;
  lc.dropout = 0.0f;
  model.attach_lora(lc);
  const std::vector<int> tokens = {2, 9, 13};
  DecodeSession session(model);
  tensor::Tensor inc;
  for (int t : tokens) inc = session.step(t);
  const tensor::Tensor full = model.forward(tokens, false);
  for (std::size_t j = 0; j < inc.cols(); ++j) {
    EXPECT_NEAR(inc.at(0, j), full.at(2, j), 1e-3f);
  }
}

TEST(SamplerKvCache, GreedyOutputsMatchRecompute) {
  MiniLlm model(session_config(), 36);
  SamplerConfig plain;
  plain.temperature = 0.0f;
  plain.max_new_tokens = 10;
  plain.use_kv_cache = false;  // force full recompute to A/B against cached
  SamplerConfig cached = plain;
  cached.use_kv_cache = true;
  Sampler a(model, plain, util::Rng(1));
  Sampler b(model, cached, util::Rng(2));
  EXPECT_EQ(a.generate_ids({2, 5, 7}), b.generate_ids({2, 5, 7}));
}

TEST(SamplerKvCache, CachedPathRespectsLimits) {
  MiniLlm model(session_config(), 37);
  SamplerConfig cached;
  cached.temperature = 1.0f;
  cached.max_new_tokens = 5;
  cached.use_kv_cache = true;
  Sampler sampler(model, cached, util::Rng(3));
  const auto out = sampler.generate_ids({2, 5});
  EXPECT_LE(out.size(), 5u);
  for (int id : out) EXPECT_NE(id, text::Vocab::kEos);
}

TEST(TopP, FullMassEqualsPlainSampling) {
  MiniLlm model(session_config(), 38);
  SamplerConfig a;
  a.temperature = 0.8f;
  a.top_p = 1.0f;
  a.max_new_tokens = 6;
  SamplerConfig b = a;
  b.top_p = 0.9999999f;  // keeps everything but exercises the nucleus path
  Sampler sa(model, a, util::Rng(4));
  Sampler sb(model, b, util::Rng(4));
  EXPECT_EQ(sa.generate_ids({2, 3}), sb.generate_ids({2, 3}));
}

TEST(TopP, TinyMassDegeneratesToGreedy) {
  MiniLlm model(session_config(), 39);
  SamplerConfig greedy;
  greedy.temperature = 0.0f;
  greedy.max_new_tokens = 6;
  SamplerConfig nucleus;
  nucleus.temperature = 1.0f;
  nucleus.top_p = 1e-6f;  // nucleus collapses to the single top token
  nucleus.max_new_tokens = 6;
  Sampler g(model, greedy, util::Rng(5));
  Sampler n(model, nucleus, util::Rng(6));
  EXPECT_EQ(g.generate_ids({2, 7}), n.generate_ids({2, 7}));
}

}  // namespace
}  // namespace odlp::llm
