// Replacement-policy semantics: ours (Pareto dominance) and all baselines.
#include <gtest/gtest.h>

#include "baselines/fifo_policy.h"
#include "baselines/kcenter_policy.h"
#include "baselines/random_policy.h"
#include "baselines/single_metric_policy.h"
#include "core/policy.h"

namespace odlp {
namespace {

using core::Candidate;
using core::DataBuffer;
using core::Decision;
using core::QualityScores;

core::BufferEntry make_entry(QualityScores scores, std::size_t inserted_at,
                             tensor::Tensor embedding = tensor::Tensor(1, 2, 1.0f),
                             int domain = 0) {
  core::BufferEntry e;
  e.scores = scores;
  e.inserted_at = inserted_at;
  e.embedding = std::move(embedding);
  e.dominant_domain = domain;
  return e;
}

Candidate make_candidate(QualityScores scores,
                         tensor::Tensor embedding = tensor::Tensor(1, 2, 1.0f)) {
  Candidate c;
  c.scores = scores;
  c.embedding = std::move(embedding);
  c.dominant_domain = 0;
  return c;
}

TEST(QualityPolicy, AdmitsIntoFreeBin) {
  core::QualityReplacementPolicy policy;
  DataBuffer buf(2);
  util::Rng rng(1);
  Decision d = policy.offer(make_candidate({0.0, 0.0, 0.0}), buf, rng);
  EXPECT_TRUE(d.admit);
  EXPECT_FALSE(d.victim.has_value());
}

TEST(QualityPolicy, RejectsWhenNothingDominated) {
  core::QualityReplacementPolicy policy;
  DataBuffer buf(1);
  buf.add(make_entry({0.9, 0.9, 0.9}, 1));
  util::Rng rng(2);
  Decision d = policy.offer(make_candidate({0.5, 0.95, 0.95}), buf, rng);
  EXPECT_FALSE(d.admit);
}

TEST(QualityPolicy, ReplacesDominatedEntry) {
  core::QualityReplacementPolicy policy;
  DataBuffer buf(2);
  buf.add(make_entry({0.9, 0.9, 0.9}, 1));
  buf.add(make_entry({0.1, 0.1, 0.1}, 2));
  util::Rng rng(3);
  Decision d = policy.offer(make_candidate({0.5, 0.5, 0.5}), buf, rng);
  ASSERT_TRUE(d.admit);
  EXPECT_EQ(d.victim.value(), 1u);
}

TEST(QualityPolicy, AllThreeMetricsMustBeHigher) {
  core::QualityReplacementPolicy policy;
  DataBuffer buf(1);
  buf.add(make_entry({0.5, 0.5, 0.5}, 1));
  util::Rng rng(4);
  // Higher on two metrics, equal on the third: not a dominance.
  Decision d = policy.offer(make_candidate({0.9, 0.9, 0.5}), buf, rng);
  EXPECT_FALSE(d.admit);
}

TEST(QualityPolicy, RandomVictimAmongMultipleDominated) {
  core::QualityReplacementPolicy policy;
  DataBuffer buf(3);
  buf.add(make_entry({0.1, 0.1, 0.1}, 1));
  buf.add(make_entry({0.2, 0.2, 0.2}, 2));
  buf.add(make_entry({0.9, 0.9, 0.9}, 3));
  std::set<std::size_t> victims;
  for (int i = 0; i < 40; ++i) {
    util::Rng rng(100 + i);
    Decision d = policy.offer(make_candidate({0.5, 0.5, 0.5}), buf, rng);
    ASSERT_TRUE(d.admit);
    victims.insert(d.victim.value());
  }
  EXPECT_EQ(victims.count(2u), 0u);  // never the non-dominated entry
  EXPECT_EQ(victims.size(), 2u);     // both dominated entries get picked
}

TEST(FifoPolicy, AlwaysAdmitsEvictingOldest) {
  baselines::FifoReplacePolicy policy;
  DataBuffer buf(2);
  buf.add(make_entry({0, 0, 0}, 7));
  buf.add(make_entry({0, 0, 0}, 3));
  util::Rng rng(5);
  Decision d = policy.offer(make_candidate({0, 0, 0}), buf, rng);
  ASSERT_TRUE(d.admit);
  EXPECT_EQ(d.victim.value(), 1u);  // inserted_at == 3 is oldest
}

TEST(FifoPolicy, AdmitsFreeWhenNotFull) {
  baselines::FifoReplacePolicy policy;
  DataBuffer buf(2);
  util::Rng rng(6);
  Decision d = policy.offer(make_candidate({0, 0, 0}), buf, rng);
  EXPECT_TRUE(d.admit);
  EXPECT_FALSE(d.victim.has_value());
}

TEST(RandomPolicy, AlwaysAdmitsWhileFree) {
  baselines::RandomReplacePolicy policy;
  DataBuffer buf(3);
  util::Rng rng(7);
  for (int i = 0; i < 3; ++i) {
    Decision d = policy.offer(make_candidate({0, 0, 0}), buf, rng);
    EXPECT_TRUE(d.admit);
    buf.add(make_entry({0, 0, 0}, static_cast<std::size_t>(i)));
  }
}

TEST(RandomPolicy, ReservoirAcceptanceRateDecays) {
  // After N >> capacity arrivals, the acceptance rate approaches capacity/N.
  baselines::RandomReplacePolicy policy;
  DataBuffer buf(10);
  util::Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    policy.offer(make_candidate({0, 0, 0}), buf, rng);
    buf.add(make_entry({0, 0, 0}, static_cast<std::size_t>(i)));
  }
  int admitted = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    Decision d = policy.offer(make_candidate({0, 0, 0}), buf, rng);
    admitted += d.admit;
    if (d.admit) EXPECT_TRUE(d.victim.has_value());
  }
  // Expected acceptance ≈ sum_{i=11}^{2010} 10/i ≈ 10 * ln(2010/10) ≈ 53.
  EXPECT_GT(admitted, 20);
  EXPECT_LT(admitted, 120);
}

TEST(RandomPolicy, ResetRestartsArrivalCounter) {
  baselines::RandomReplacePolicy policy;
  DataBuffer buf(1);
  buf.add(make_entry({0, 0, 0}, 0));
  util::Rng rng(9);
  for (int i = 0; i < 100; ++i) policy.offer(make_candidate({0, 0, 0}), buf, rng);
  policy.reset();
  // First post-reset offer has acceptance probability 1 (capacity/1).
  Decision d = policy.offer(make_candidate({0, 0, 0}), buf, rng);
  EXPECT_TRUE(d.admit);
}

TEST(KCenterPolicy, AdmitsFreeWhenNotFull) {
  baselines::KCenterPolicy policy;
  DataBuffer buf(2);
  util::Rng rng(10);
  Decision d = policy.offer(make_candidate({0, 0, 0}), buf, rng);
  EXPECT_TRUE(d.admit);
}

TEST(KCenterPolicy, AdmitsFarCandidateEvictingRedundantPair) {
  baselines::KCenterPolicy policy;
  DataBuffer buf(2);
  // Two nearly identical embeddings in the buffer.
  buf.add(make_entry({0, 0, 0}, 1, tensor::Tensor::from(1, 2, {1.0f, 0.0f})));
  buf.add(make_entry({0, 0, 0}, 2, tensor::Tensor::from(1, 2, {0.99f, 0.01f})));
  util::Rng rng(11);
  // Candidate orthogonal to both: far from the buffer.
  Decision d = policy.offer(
      make_candidate({0, 0, 0}, tensor::Tensor::from(1, 2, {0.0f, 1.0f})), buf, rng);
  EXPECT_TRUE(d.admit);
  ASSERT_TRUE(d.victim.has_value());
}

TEST(KCenterPolicy, RejectsRedundantCandidate) {
  baselines::KCenterPolicy policy;
  DataBuffer buf(2);
  buf.add(make_entry({0, 0, 0}, 1, tensor::Tensor::from(1, 2, {1.0f, 0.0f})));
  buf.add(make_entry({0, 0, 0}, 2, tensor::Tensor::from(1, 2, {0.0f, 1.0f})));
  util::Rng rng(12);
  // Candidate identical to an existing center: adds no coverage.
  Decision d = policy.offer(
      make_candidate({0, 0, 0}, tensor::Tensor::from(1, 2, {1.0f, 0.0f})), buf, rng);
  EXPECT_FALSE(d.admit);
}

TEST(SingleMetricPolicy, NamesMatchMetric) {
  EXPECT_EQ(baselines::SingleMetricPolicy(baselines::SingleMetric::kEoe).name(), "EOE");
  EXPECT_EQ(baselines::SingleMetricPolicy(baselines::SingleMetric::kDss).name(), "DSS");
  EXPECT_EQ(baselines::SingleMetricPolicy(baselines::SingleMetric::kIdd).name(), "IDD");
}

TEST(SingleMetricPolicy, ReplacesLowestOnChosenMetricOnly) {
  baselines::SingleMetricPolicy policy(baselines::SingleMetric::kEoe);
  DataBuffer buf(2);
  buf.add(make_entry({0.3, 0.9, 0.9}, 1));
  buf.add(make_entry({0.8, 0.1, 0.1}, 2));
  util::Rng rng(13);
  // Candidate EOE 0.5 beats the entry with EOE 0.3 regardless of DSS/IDD.
  Decision d = policy.offer(make_candidate({0.5, 0.0, 0.0}), buf, rng);
  ASSERT_TRUE(d.admit);
  EXPECT_EQ(d.victim.value(), 0u);
}

TEST(SingleMetricPolicy, RejectsWhenNotAboveWorst) {
  baselines::SingleMetricPolicy policy(baselines::SingleMetric::kDss);
  DataBuffer buf(1);
  buf.add(make_entry({0.0, 0.5, 0.0}, 1));
  util::Rng rng(14);
  EXPECT_FALSE(policy.offer(make_candidate({0.9, 0.5, 0.9}), buf, rng).admit);
  EXPECT_TRUE(policy.offer(make_candidate({0.0, 0.6, 0.0}), buf, rng).admit);
}

TEST(PolicyNames, AreStable) {
  EXPECT_EQ(core::QualityReplacementPolicy().name(), "Ours");
  EXPECT_EQ(baselines::RandomReplacePolicy().name(), "Random");
  EXPECT_EQ(baselines::FifoReplacePolicy().name(), "FIFO");
  EXPECT_EQ(baselines::KCenterPolicy().name(), "K-Center");
}

}  // namespace
}  // namespace odlp
