// RMSNorm forward/backward and the Llama-style model variant.
#include <gtest/gtest.h>

#include "llm/decode_session.h"
#include "llm/minillm.h"
#include "llm/trainer.h"
#include "nn/rmsnorm.h"
#include "tensor/gradcheck.h"
#include "util/rng.h"

namespace odlp::nn {
namespace {

using tensor::Tensor;

TEST(RmsNorm, UnitGainNormalizesRms) {
  RmsNorm norm("n", 4);
  Tensor x = Tensor::from(1, 4, {2, -2, 2, -2});
  Tensor y = norm.forward(x);
  // rms(x) = 2 -> y = x / 2.
  EXPECT_NEAR(y.at(0, 0), 1.0f, 1e-4f);
  EXPECT_NEAR(y.at(0, 1), -1.0f, 1e-4f);
}

TEST(RmsNorm, NoMeanSubtractionUnlikeLayerNorm) {
  // A constant positive row stays positive under RMSNorm (LayerNorm would
  // map it to zero).
  RmsNorm norm("n", 4);
  Tensor x(1, 4, 3.0f);
  Tensor y = norm.forward(x);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_GT(y.at(0, j), 0.9f);
}

TEST(RmsNorm, GainScalesOutput) {
  RmsNorm norm("n", 2);
  ParameterList params;
  norm.collect_parameters(params);
  ASSERT_EQ(params.size(), 1u);  // gain only, no bias
  params[0]->value.fill(3.0f);
  Tensor x = Tensor::from(1, 2, {1, 1});
  Tensor y = norm.forward(x);
  EXPECT_NEAR(y.at(0, 0), 3.0f, 1e-4f);
}

TEST(RmsNorm, GradCheckInputAndGain) {
  util::Rng rng(7);
  RmsNorm norm("n", 6);
  Tensor x(3, 6);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal());
  }
  Tensor coeffs(3, 6);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    coeffs.data()[i] = static_cast<float>(rng.normal(0.0, 0.7));
  }
  auto weighted = [&](const Tensor& out) {
    double acc = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      acc += static_cast<double>(out.data()[i]) * coeffs.data()[i];
    }
    return acc;
  };

  ParameterList params;
  norm.collect_parameters(params);
  zero_grads(params);
  norm.forward(x);
  Tensor dx = norm.backward(coeffs);

  auto loss_fn = [&] { return weighted(norm.forward(x)); };
  auto rx = tensor::check_gradient(x, dx, loss_fn, 4e-3f, 18);
  EXPECT_LT(rx.max_rel_error, 2e-2f);
  auto rg = tensor::check_gradient(params[0]->value, params[0]->grad, loss_fn,
                                   4e-3f, 6);
  EXPECT_LT(rg.max_rel_error, 2e-2f);
}

TEST(RmsNorm, FrozenGainAccumulatesNoGradient) {
  RmsNorm norm("n", 3);
  ParameterList params;
  norm.collect_parameters(params);
  params[0]->trainable = false;
  norm.forward(Tensor::from(1, 3, {1, 2, 3}));
  norm.backward(Tensor::ones(1, 3));
  EXPECT_FLOAT_EQ(params[0]->grad.l2_norm(), 0.0f);
}

TEST(RmsNormModel, LlamaStyleModelTrainsAndDecodes) {
  llm::ModelConfig mc;
  mc.vocab_size = 16;
  mc.dim = 8;
  mc.heads = 2;
  mc.layers = 2;
  mc.ff_hidden = 16;
  mc.max_seq_len = 12;
  mc.use_rmsnorm = true;
  llm::MiniLlm model(mc, 21);

  // RMSNorm has one gain per norm (no bias): parameter count drops by one
  // dim-vector per norm vs. the LayerNorm build.
  llm::ModelConfig mc_ln = mc;
  mc_ln.use_rmsnorm = false;
  llm::MiniLlm baseline(mc_ln, 21);
  const std::size_t norms = 2 * mc.layers + 1;  // 2 per block + final
  EXPECT_EQ(model.num_parameters(), baseline.num_parameters() - norms * mc.dim);

  // It trains.
  llm::TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 1;
  tc.learning_rate = 1e-2f;
  llm::Trainer trainer(model, tc, util::Rng(22));
  text::Tokenizer::EncodedDialogue ex;
  ex.input = {2, 5, 7, 3};
  ex.targets = {5, 7, 3, -1};
  auto stats = trainer.fine_tune({ex});
  EXPECT_LT(stats.final_epoch_loss, stats.first_epoch_loss);

  // And the KV-cached decode path matches full recompute under RMSNorm too.
  llm::DecodeSession session(model);
  tensor::Tensor inc;
  for (int t : {2, 5, 7}) inc = session.step(t);
  const tensor::Tensor full = model.forward({2, 5, 7}, false);
  for (std::size_t j = 0; j < inc.cols(); ++j) {
    EXPECT_NEAR(inc.at(0, j), full.at(2, j), 2e-3f);
  }
}

}  // namespace
}  // namespace odlp::nn
