// Experiment harness: policy factory, device tokenizer, determinism, and the
// fairness guarantees the paper's comparisons rely on.
#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace odlp::exp {
namespace {

TEST(MakePolicy, AllMethodNamesResolve) {
  for (const char* name : {"Ours", "Random", "FIFO", "K-Center", "EOE", "DSS", "IDD"}) {
    auto policy = make_policy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(MakePolicy, UnknownNameThrows) {
  EXPECT_THROW(make_policy("SGD"), std::invalid_argument);
}

TEST(MethodLists, MatchPaperTables) {
  EXPECT_EQ(main_methods(),
            (std::vector<std::string>{"Random", "FIFO", "K-Center", "Ours"}));
  EXPECT_EQ(ablation_methods(),
            (std::vector<std::string>{"EOE", "DSS", "IDD", "Ours"}));
}

TEST(DeviceTokenizer, FrozenWithFullWorldCoverage) {
  text::Tokenizer tok = make_device_tokenizer();
  EXPECT_TRUE(tok.vocab().frozen());
  EXPECT_GT(tok.vocab().size(), 400u);  // lexicons + filler + phrase pools
  // Lexicon words resolve; arbitrary novel words map to <unk>.
  EXPECT_NE(tok.vocab().id("dose"), text::Vocab::kUnk);
  EXPECT_EQ(tok.vocab().id("supercalifragilistic"), text::Vocab::kUnk);
}

TEST(ModelConfigFactory, VocabTracksTokenizer) {
  ExperimentConfig config;
  text::Tokenizer tok = make_device_tokenizer();
  const llm::ModelConfig mc = make_model_config(config, tok);
  EXPECT_EQ(mc.vocab_size, tok.vocab().size());
  EXPECT_EQ(mc.dim, config.model_dim);
}

TEST(BufferCompositionFn, CountsNoiseAndTopics) {
  core::DataBuffer buf(4);
  auto add = [&](bool noise, int domain, int subtopic) {
    core::BufferEntry e;
    e.set.is_noise = noise;
    e.set.true_domain = domain;
    e.set.true_subtopic = subtopic;
    e.embedding = tensor::Tensor(1, 2, 1.0f);
    buf.add(std::move(e));
  };
  add(true, -1, -1);
  add(false, 0, 1);
  add(false, 0, 2);
  add(false, 1, 1);
  const BufferComposition comp = buffer_composition(buf);
  EXPECT_EQ(comp.size, 4u);
  EXPECT_EQ(comp.noise, 1u);
  EXPECT_EQ(comp.distinct_subtopics, 3u);
  EXPECT_EQ(comp.distinct_domains, 2u);
}

// A single micro experiment exercising the full harness path. Kept tiny so
// the suite stays fast; the benches run the full-size configurations.
ExperimentConfig micro_config(const std::string& method) {
  ExperimentConfig c;
  c.dataset = "MedDialog";
  c.method = method;
  c.buffer_bins = 4;
  c.stream_size = 12;
  c.test_size = 12;
  c.eval_subset = 4;
  c.finetune_interval = 6;
  c.epochs = 1;
  c.synth_per_set = 1;
  c.pretrain_examples = 8;
  c.pretrain_epochs = 1;
  c.cache_dir = "";  // no caching in tests
  c.eval_temperature = 0.0f;
  c.seed = 5;
  return c;
}

TEST(RunExperiment, ProducesCompleteResult) {
  const ExperimentResult r = run_experiment(micro_config("Ours"));
  EXPECT_EQ(r.dataset, "MedDialog");
  EXPECT_EQ(r.method, "Ours");
  EXPECT_EQ(r.engine_stats.seen, 12u);
  EXPECT_EQ(r.engine_stats.finetune_rounds, 2u);
  EXPECT_GE(r.final_rouge, 0.0);
  EXPECT_LE(r.final_rouge, 1.0);
  EXPECT_GT(r.curve.num_points(), 1u);
  EXPECT_GT(r.annotation_requests, 0u);
  EXPECT_LE(r.buffer.size, 4u);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(RunExperiment, DeterministicUnderSeed) {
  const ExperimentResult a = run_experiment(micro_config("Ours"));
  const ExperimentResult b = run_experiment(micro_config("Ours"));
  EXPECT_DOUBLE_EQ(a.final_rouge, b.final_rouge);
  ASSERT_EQ(a.curve.num_points(), b.curve.num_points());
  for (std::size_t i = 0; i < a.curve.num_points(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve.rouge()[i], b.curve.rouge()[i]);
  }
}

TEST(RunExperiment, MethodsShareBaselinePoint) {
  // Fairness: before any fine-tuning, every method evaluates the identical
  // base model on the identical subset — the first curve point must match.
  const ExperimentResult ours = run_experiment(micro_config("Ours"));
  const ExperimentResult fifo = run_experiment(micro_config("FIFO"));
  ASSERT_GT(ours.curve.num_points(), 0u);
  ASSERT_GT(fifo.curve.num_points(), 0u);
  EXPECT_DOUBLE_EQ(ours.curve.rouge()[0], fifo.curve.rouge()[0]);
}

TEST(RunExperiment, AnnotationSparsityBounded) {
  // Annotations are only requested for admitted sets: never more than the
  // stream length, and with a small buffer, strictly fewer.
  const ExperimentResult r = run_experiment(micro_config("Ours"));
  EXPECT_LE(r.annotation_requests, r.engine_stats.seen);
  EXPECT_EQ(r.annotation_requests,
            r.engine_stats.admitted_free + r.engine_stats.admitted_replacing);
}

TEST(RunExperiment, SynthesisTogglable) {
  ExperimentConfig c = micro_config("Ours");
  c.use_synthesis = false;
  const ExperimentResult r = run_experiment(c);
  EXPECT_EQ(r.engine_stats.synthesized_used, 0u);
}

TEST(LearningCurveMetrics, GainAndBest) {
  eval::LearningCurve curve("m");
  EXPECT_DOUBLE_EQ(curve.total_gain(), 0.0);
  EXPECT_DOUBLE_EQ(curve.best_rouge(), 0.0);
  curve.record(0, 0.1);
  curve.record(80, 0.4);
  curve.record(160, 0.3);
  EXPECT_DOUBLE_EQ(curve.final_rouge(), 0.3);
  EXPECT_DOUBLE_EQ(curve.best_rouge(), 0.4);
  EXPECT_NEAR(curve.total_gain(), 0.2, 1e-12);
  EXPECT_EQ(curve.to_series().xs().size(), 3u);
}

}  // namespace
}  // namespace odlp::exp
