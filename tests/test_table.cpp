#include <gtest/gtest.h>

#include "util/table.h"

namespace odlp::util {
namespace {

TEST(Table, DimensionsTrackRowsAndCells) {
  Table t({"a", "b"});
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_cols(), 2u);
  t.row().cell("x").cell("y");
  t.row().cell("z").cell("w");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0), "x");
  EXPECT_EQ(t.at(1, 1), "w");
}

TEST(Table, NumericCellsFormat) {
  Table t({"v"});
  t.row().cell(0.123456, 3);
  t.row().cell(static_cast<long long>(42));
  EXPECT_EQ(t.at(0, 0), "0.123");
  EXPECT_EQ(t.at(1, 0), "42");
}

TEST(Table, ToStringContainsHeaderAndValues) {
  Table t({"name", "score"});
  t.row().cell("ours").cell(0.37, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("score"), std::string::npos);
  EXPECT_NE(s.find("ours"), std::string::npos);
  EXPECT_NE(s.find("0.37"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t({"m", "v"});
  t.row().cell("longmethodname").cell("1");
  t.row().cell("s").cell("2");
  const std::string s = t.to_string();
  // Every line (except the separator) must be equally long or shorter; the
  // header line and rows share column offsets — check '1' and '2' align.
  const auto pos1 = s.find("1\n");
  const auto pos2 = s.find("2\n");
  const auto line_start1 = s.rfind('\n', pos1);
  const auto line_start2 = s.rfind('\n', pos2);
  EXPECT_EQ(pos1 - line_start1, pos2 - line_start2);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell("1").cell("2");
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, AtThrowsOutOfRange) {
  Table t({"a"});
  t.row().cell("x");
  EXPECT_THROW(t.at(1, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 5), std::out_of_range);
}

TEST(Table, CellWithoutRowStartsOne) {
  Table t({"a"});
  t.cell("implicit");
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0), "implicit");
}

TEST(Series, StoresPoints) {
  Series s("ours", "x", "y");
  s.add(1.0, 0.5);
  s.add(2.0, 0.75);
  EXPECT_EQ(s.xs().size(), 2u);
  EXPECT_DOUBLE_EQ(s.ys()[1], 0.75);
  EXPECT_EQ(s.name(), "ours");
}

TEST(Series, ToStringContainsNameAndData) {
  Series s("curve", "seen", "rouge");
  s.add(80, 0.31);
  const std::string str = s.to_string();
  EXPECT_NE(str.find("curve"), std::string::npos);
  EXPECT_NE(str.find("seen"), std::string::npos);
  EXPECT_NE(str.find("0.31"), std::string::npos);
}

}  // namespace
}  // namespace odlp::util
