#include <gtest/gtest.h>

#include "core/buffer.h"

namespace odlp::core {
namespace {

BufferEntry entry_with(std::size_t inserted_at, int domain = 0,
                       float embedding_fill = 1.0f) {
  BufferEntry e;
  e.set.question = "q";
  e.set.answer = "a";
  e.embedding = tensor::Tensor(1, 4, embedding_fill);
  e.dominant_domain = domain >= 0 ? std::optional<std::size_t>(domain) : std::nullopt;
  e.inserted_at = inserted_at;
  return e;
}

TEST(DataBuffer, StartsEmpty) {
  DataBuffer buf(4);
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.full());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 4u);
}

TEST(DataBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(DataBuffer(0), std::invalid_argument);
}

TEST(DataBuffer, AddUntilFull) {
  DataBuffer buf(2);
  buf.add(entry_with(1));
  EXPECT_FALSE(buf.full());
  buf.add(entry_with(2));
  EXPECT_TRUE(buf.full());
  EXPECT_EQ(buf.size(), 2u);
}

TEST(DataBuffer, AddReturnsIndex) {
  DataBuffer buf(3);
  EXPECT_EQ(buf.add(entry_with(1)), 0u);
  EXPECT_EQ(buf.add(entry_with(2)), 1u);
}

TEST(DataBuffer, ReplaceReturnsEvicted) {
  DataBuffer buf(2);
  buf.add(entry_with(1));
  buf.add(entry_with(2));
  BufferEntry evicted = buf.replace(0, entry_with(3));
  EXPECT_EQ(evicted.inserted_at, 1u);
  EXPECT_EQ(buf.entry(0).inserted_at, 3u);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(DataBuffer, OldestIndex) {
  DataBuffer buf(3);
  EXPECT_FALSE(buf.oldest_index().has_value());
  buf.add(entry_with(5));
  buf.add(entry_with(2));
  buf.add(entry_with(9));
  EXPECT_EQ(buf.oldest_index().value(), 1u);
}

TEST(DataBuffer, OldestUpdatesAfterReplace) {
  DataBuffer buf(2);
  buf.add(entry_with(1));
  buf.add(entry_with(2));
  buf.replace(0, entry_with(10));
  EXPECT_EQ(buf.oldest_index().value(), 1u);
}

TEST(DataBuffer, EmbeddingsInDomainFilters) {
  DataBuffer buf(4);
  buf.add(entry_with(1, 0));
  buf.add(entry_with(2, 1));
  buf.add(entry_with(3, 0));
  buf.add(entry_with(4, -1));  // no dominant domain
  EXPECT_EQ(buf.embeddings_in_domain(0).size(), 2u);
  EXPECT_EQ(buf.embeddings_in_domain(1).size(), 1u);
  EXPECT_EQ(buf.embeddings_in_domain(7).size(), 0u);
}

TEST(DataBuffer, EmbeddingsPointIntoBuffer) {
  DataBuffer buf(2);
  buf.add(entry_with(1, 0, 3.0f));
  auto embs = buf.embeddings_in_domain(0);
  ASSERT_EQ(embs.size(), 1u);
  EXPECT_FLOAT_EQ(embs[0]->at(0, 0), 3.0f);
  EXPECT_EQ(embs[0], &buf.entry(0).embedding);
}

TEST(DataBuffer, ClearEmpties) {
  DataBuffer buf(2);
  buf.add(entry_with(1));
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.capacity(), 2u);
}

TEST(DataBuffer, AllocatedKbUsesPaperBinGranule) {
  DataBuffer buf(128);
  EXPECT_DOUBLE_EQ(buf.allocated_kb(), 2816.0);  // the paper's Table 2 figure
}

TEST(DataBuffer, MutableEntryAllowsAnnotationUpdate) {
  DataBuffer buf(1);
  buf.add(entry_with(1));
  buf.mutable_entry(0).set.answer = "preferred";
  buf.mutable_entry(0).annotated = true;
  EXPECT_EQ(buf.entry(0).set.answer, "preferred");
  EXPECT_TRUE(buf.entry(0).annotated);
}

}  // namespace
}  // namespace odlp::core
