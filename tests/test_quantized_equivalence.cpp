// End-to-end equivalence of the int8 inference path against fp32.
//
// Three layers of guarantee, strongest first (DESIGN.md §8-§9):
//  * qmatmul is BIT-exact against its serial reference and across lane
//    counts and kernel paths (small vs tiled): the int32 block sums are
//    exact in any order and the single fp32 fixup line is shared verbatim.
//  * Greedy decoding under int8 agrees with fp32 on ≥95% of steps when the
//    model has sharp (trained) logits, measured per-step along the
//    fp32-chosen prefix so one early flip cannot cascade.
//  * Perplexity of a fixed seeded token stream moves by ≤2% when the
//    weights are quantized.
#ifdef ODLP_INT8

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "llm/decode_session.h"
#include "llm/minillm.h"
#include "nn/loss.h"
#include "tensor/qops.h"
#include "tensor/qtensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace odlp {
namespace {

tensor::Tensor random_tensor(std::size_t rows, std::size_t cols,
                             util::Rng& rng) {
  tensor::Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

bool bit_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

template <typename Fn>
auto with_global_lanes(std::size_t lanes, Fn fn) {
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::size_t before = pool.lanes();
  pool.resize(lanes);
  auto result = fn();
  pool.resize(before);
  return result;
}

// [m, k, n] sweep across both kernel paths (m < 4 small, m ≥ 4 tiled), the
// vectorized column width ±1, quant-block boundaries ±1, and primes.
constexpr std::size_t kShapes[][3] = {
    {1, 1, 1},    {1, 32, 16},  {1, 512, 48}, {2, 33, 17},
    {3, 31, 15},  {4, 32, 16},  {4, 64, 33},  {5, 65, 31},
    {7, 96, 13},  {8, 129, 48}, {13, 100, 23}, {64, 256, 80},
};

TEST(QuantizedEquivalence, QMatmulBitExactAgainstReference) {
  util::Rng rng(0xA0);
  for (const auto& s : kShapes) {
    SCOPED_TRACE(testing::Message()
                 << "shape " << s[0] << "x" << s[1] << "x" << s[2]);
    const tensor::Tensor x = random_tensor(s[0], s[1], rng);
    const tensor::Tensor w = random_tensor(s[1], s[2], rng);
    const auto qw =
        tensor::QuantizedTensor::quantize(w, tensor::QuantAxis::kAlongRows);
    const tensor::Tensor ref = tensor::qmatmul_reference(x, qw);
    const tensor::Tensor got = tensor::qmatmul(x, qw);
    EXPECT_TRUE(bit_identical(ref, got));
  }
}

TEST(QuantizedEquivalence, QMatmulIndependentOfLaneCount) {
  util::Rng rng(0xA1);
  for (const auto& s : kShapes) {
    SCOPED_TRACE(testing::Message()
                 << "shape " << s[0] << "x" << s[1] << "x" << s[2]);
    const tensor::Tensor x = random_tensor(s[0], s[1], rng);
    const tensor::Tensor w = random_tensor(s[1], s[2], rng);
    const auto qw =
        tensor::QuantizedTensor::quantize(w, tensor::QuantAxis::kAlongRows);
    const tensor::Tensor one =
        with_global_lanes(1, [&] { return tensor::qmatmul(x, qw); });
    const tensor::Tensor four =
        with_global_lanes(4, [&] { return tensor::qmatmul(x, qw); });
    const tensor::Tensor three =
        with_global_lanes(3, [&] { return tensor::qmatmul(x, qw); });
    EXPECT_TRUE(bit_identical(one, four));
    EXPECT_TRUE(bit_identical(one, three));
  }
}

TEST(QuantizedEquivalence, QMatmulAccumulateAddsOntoSeededOutput) {
  util::Rng rng(0xA2);
  const tensor::Tensor x = random_tensor(5, 65, rng);
  const tensor::Tensor w = random_tensor(65, 31, rng);
  const auto qw =
      tensor::QuantizedTensor::quantize(w, tensor::QuantAxis::kAlongRows);

  // Accumulating onto zeros walks the identical per-block add sequence as
  // the overwriting path, so the results are bit-equal.
  tensor::Tensor zero_seeded(5, 31, 0.0f);
  tensor::qmatmul_into(x, qw, zero_seeded, /*accumulate=*/true);
  EXPECT_TRUE(bit_identical(zero_seeded, tensor::qmatmul(x, qw)));

  // Onto a non-zero seed the per-block adds associate differently than
  // seed + (summed base), so compare within float tolerance.
  const tensor::Tensor seed = random_tensor(5, 31, rng);
  tensor::Tensor got = seed;
  tensor::qmatmul_into(x, qw, got, /*accumulate=*/true);
  const tensor::Tensor base = tensor::qmatmul_reference(x, qw);
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float want = seed.data()[i] + base.data()[i];
    ASSERT_NEAR(got.data()[i], want, 1e-4f * (1.0f + std::fabs(want)));
  }
}

llm::ModelConfig tiny_config() {
  llm::ModelConfig mc;
  mc.vocab_size = 96;
  mc.dim = 64;
  mc.heads = 4;
  mc.layers = 2;
  mc.ff_hidden = 128;
  mc.max_seq_len = 48;
  return mc;
}

// A deterministic next-token pattern the tiny model can learn sharply:
// successor(t) = (t * 5 + 7) mod vocab. Sharp logits make the greedy
// agreement measurement meaningful — on an untrained model every step is a
// near-tie and agreement would measure luck, not quantization fidelity.
int successor(int t, int vocab) { return (t * 5 + 7) % vocab; }

void train_on_pattern(llm::MiniLlm& model, int steps) {
  const int vocab = static_cast<int>(model.config().vocab_size);
  const std::size_t T = 32;
  nn::ParameterList params = model.parameters();
  nn::CrossEntropyResult ce;
  util::Rng rng(0xB0);
  for (int step = 0; step < steps; ++step) {
    std::vector<int> ids(T);
    ids[0] = static_cast<int>(rng.uniform_index(model.config().vocab_size));
    for (std::size_t t = 1; t < T; ++t) ids[t] = successor(ids[t - 1], vocab);
    std::vector<int> targets(T);
    for (std::size_t t = 0; t < T; ++t) targets[t] = successor(ids[t], vocab);
    nn::zero_grads(params);
    tensor::Tensor& logits = model.forward_shared(ids, /*training=*/true);
    nn::cross_entropy_into(logits, targets, ce);
    model.backward(ce.dlogits);
    for (nn::Parameter* p : params) {
      if (!p->trainable) continue;
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        p->value.data()[i] -= 0.05f * p->grad.data()[i];
      }
    }
  }
}

int argmax_token(const tensor::Tensor& logits) {
  const float* row = logits.row(logits.rows() - 1);
  int best = 0;
  for (std::size_t v = 1; v < logits.cols(); ++v) {
    if (row[v] > row[best]) best = static_cast<int>(v);
  }
  return best;
}

TEST(QuantizedEquivalence, GreedyDecodeAgreesAtLeast95Percent) {
  llm::MiniLlm model(tiny_config(), 11);
  train_on_pattern(model, 150);

  // fp32 pass: record the greedy choice at every step along the fp32-chosen
  // prefix, then replay the identical prefix under int8 and compare choices
  // per step (a disagreement does not derail subsequent comparisons).
  const std::size_t steps = tiny_config().max_seq_len - 1;
  std::vector<int> fed = {3};
  std::vector<int> fp32_choice;
  {
    llm::DecodeSession session(model, nn::InferencePrecision::kFp32);
    const tensor::Tensor* logits = &session.step(fed[0]);
    for (std::size_t i = 0; i < steps; ++i) {
      const int tok = argmax_token(*logits);
      fp32_choice.push_back(tok);
      if (i + 1 < steps) {
        fed.push_back(tok);
        logits = &session.step(tok);
      }
    }
  }
  ASSERT_EQ(fed.size(), steps);

  std::size_t agree = 0;
  {
    llm::DecodeSession session(model, nn::InferencePrecision::kInt8);
    for (std::size_t i = 0; i < steps; ++i) {
      const tensor::Tensor& logits = session.step(fed[i]);
      if (argmax_token(logits) == fp32_choice[i]) ++agree;
    }
  }
  model.set_inference_precision(nn::InferencePrecision::kFp32);
  const double agreement =
      static_cast<double>(agree) / static_cast<double>(steps);
  EXPECT_GE(agreement, 0.95) << agree << "/" << steps << " steps agree";
}

TEST(QuantizedEquivalence, PerplexityDeltaWithinTwoPercent) {
  llm::MiniLlm model(tiny_config(), 23);
  train_on_pattern(model, 60);

  // Fixed seeded stream (independent of any global state): mixed pattern
  // and noise tokens so the perplexity is neither trivial nor saturated.
  util::Rng rng(0x9D5EED);
  const std::size_t T = tiny_config().max_seq_len;
  const int vocab = static_cast<int>(tiny_config().vocab_size);
  std::vector<std::vector<int>> streams(6);
  for (auto& ids : streams) {
    ids.resize(T);
    ids[0] = static_cast<int>(rng.uniform_index(tiny_config().vocab_size));
    for (std::size_t t = 1; t < T; ++t) {
      ids[t] = rng.bernoulli(0.7)
                   ? successor(ids[t - 1], vocab)
                   : static_cast<int>(
                         rng.uniform_index(tiny_config().vocab_size));
    }
  }
  const auto mean_nll = [&] {
    double loss_sum = 0.0;
    std::size_t count = 0;
    for (const auto& ids : streams) {
      std::vector<int> targets(ids.begin() + 1, ids.end());
      targets.push_back(-1);
      const tensor::Tensor logits = model.forward(ids, /*training=*/false);
      const auto ce = nn::cross_entropy(logits, targets);
      loss_sum += ce.loss * static_cast<double>(ce.count);
      count += ce.count;
    }
    return loss_sum / static_cast<double>(count);
  };

  const double ppl_fp32 = nn::perplexity(mean_nll());
  model.set_inference_precision(nn::InferencePrecision::kInt8);
  const double ppl_int8 = nn::perplexity(mean_nll());
  model.set_inference_precision(nn::InferencePrecision::kFp32);

  const double delta = std::fabs(ppl_int8 - ppl_fp32) / ppl_fp32;
  EXPECT_LE(delta, 0.02) << "ppl fp32 " << ppl_fp32 << " vs int8 " << ppl_int8;
}

TEST(QuantizedEquivalence, PrecisionRoundTripRestoresFp32Forward) {
  // fp32 -> int8 -> fp32 must be a no-op for inference outputs: quantization
  // only snapshots, it never touches the fp32 weights.
  llm::MiniLlm model(tiny_config(), 31);
  const std::vector<int> ids = {1, 5, 9, 2, 44, 17};
  const tensor::Tensor before = model.forward(ids, /*training=*/false);
  model.set_inference_precision(nn::InferencePrecision::kInt8);
  model.set_inference_precision(nn::InferencePrecision::kFp32);
  const tensor::Tensor after = model.forward(ids, /*training=*/false);
  EXPECT_TRUE(bit_identical(before, after));
}

TEST(QuantizedEquivalence, TrainingForwardIgnoresQuantization) {
  // training=true must run the fp32 path even on a quantized model — the
  // backward pass differentiates the fp32 weights, not the snapshot.
  llm::MiniLlm fp32_model(tiny_config(), 47);
  llm::MiniLlm int8_model(tiny_config(), 47);
  int8_model.set_inference_precision(nn::InferencePrecision::kInt8);
  const std::vector<int> ids = {2, 7, 11, 3};
  const tensor::Tensor a = fp32_model.forward(ids, /*training=*/true);
  const tensor::Tensor b = int8_model.forward(ids, /*training=*/true);
  EXPECT_TRUE(bit_identical(a, b));
}

}  // namespace
}  // namespace odlp

#endif  // ODLP_INT8
