// Buffer and vocabulary persistence round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "core/buffer_io.h"
#include "text/vocab_io.h"

namespace odlp {
namespace {

core::BufferEntry sample_entry(std::size_t i) {
  core::BufferEntry e;
  e.set.question = "question " + std::to_string(i);
  e.set.answer = "answer " + std::to_string(i);
  e.set.reference = "reference " + std::to_string(i);
  e.set.true_domain = static_cast<int>(i % 3);
  e.set.true_subtopic = static_cast<int>(i % 2);
  e.set.is_noise = i % 4 == 0;
  e.set.stream_position = 100 + i;
  e.inserted_at = 10 + i;
  e.annotated = i % 2 == 0;
  if (i % 5 != 0) e.dominant_domain = i % 3;
  e.scores = {0.1 * static_cast<double>(i), 0.2, 0.3};
  e.embedding = tensor::Tensor(1, 8, static_cast<float>(i));
  return e;
}

TEST(BufferIo, RoundTripPreservesEverything) {
  const std::string path = "/tmp/odlp_buffer_test.bin";
  core::DataBuffer buf(8);
  for (std::size_t i = 0; i < 5; ++i) buf.add(sample_entry(i));
  core::save_buffer(buf, path);

  core::DataBuffer loaded = core::load_buffer(path);
  EXPECT_EQ(loaded.capacity(), 8u);
  ASSERT_EQ(loaded.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& a = buf.entry(i);
    const auto& b = loaded.entry(i);
    EXPECT_EQ(b.set.question, a.set.question);
    EXPECT_EQ(b.set.answer, a.set.answer);
    EXPECT_EQ(b.set.reference, a.set.reference);
    EXPECT_EQ(b.set.true_domain, a.set.true_domain);
    EXPECT_EQ(b.set.true_subtopic, a.set.true_subtopic);
    EXPECT_EQ(b.set.is_noise, a.set.is_noise);
    EXPECT_EQ(b.set.stream_position, a.set.stream_position);
    EXPECT_EQ(b.inserted_at, a.inserted_at);
    EXPECT_EQ(b.annotated, a.annotated);
    EXPECT_EQ(b.dominant_domain, a.dominant_domain);
    EXPECT_DOUBLE_EQ(b.scores.eoe, a.scores.eoe);
    EXPECT_DOUBLE_EQ(b.scores.dss, a.scores.dss);
    EXPECT_DOUBLE_EQ(b.scores.idd, a.scores.idd);
    ASSERT_EQ(b.embedding.cols(), a.embedding.cols());
    for (std::size_t j = 0; j < a.embedding.size(); ++j) {
      EXPECT_FLOAT_EQ(b.embedding.data()[j], a.embedding.data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(BufferIo, EmptyBufferRoundTrips) {
  const std::string path = "/tmp/odlp_buffer_empty.bin";
  core::DataBuffer buf(4);
  core::save_buffer(buf, path);
  core::DataBuffer loaded = core::load_buffer(path);
  EXPECT_EQ(loaded.capacity(), 4u);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(BufferIo, MissingFileThrows) {
  EXPECT_THROW(core::load_buffer("/tmp/odlp_no_such_buffer.bin"),
               std::runtime_error);
}

TEST(BufferIo, GarbageFileThrows) {
  const std::string path = "/tmp/odlp_buffer_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage bytes", f);
  std::fclose(f);
  EXPECT_THROW(core::load_buffer(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BufferIo, TruncatedFileThrows) {
  const std::string path = "/tmp/odlp_buffer_trunc.bin";
  core::DataBuffer buf(4);
  buf.add(sample_entry(1));
  core::save_buffer(buf, path);
  // Truncate the file to half its size.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  EXPECT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_THROW(core::load_buffer(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(VocabIo, RoundTripPreservesIdsAndFreezes) {
  const std::string path = "/tmp/odlp_vocab_test.txt";
  text::Vocab vocab;
  vocab.add("dose");
  vocab.add("vial");
  vocab.add("zebra");
  text::save_vocab(vocab, path);

  text::Vocab loaded = text::load_vocab(path);
  EXPECT_TRUE(loaded.frozen());
  EXPECT_EQ(loaded.size(), vocab.size());
  EXPECT_EQ(loaded.id("dose"), vocab.id("dose"));
  EXPECT_EQ(loaded.id("zebra"), vocab.id("zebra"));
  EXPECT_EQ(loaded.id("unseen"), text::Vocab::kUnk);
  std::remove(path.c_str());
}

TEST(VocabIo, SpecialsSurviveRoundTrip) {
  const std::string path = "/tmp/odlp_vocab_specials.txt";
  text::Vocab vocab;
  text::save_vocab(vocab, path);
  text::Vocab loaded = text::load_vocab(path);
  EXPECT_EQ(loaded.id("<pad>"), text::Vocab::kPad);
  EXPECT_EQ(loaded.id("<sep>"), text::Vocab::kSep);
  std::remove(path.c_str());
}

TEST(VocabIo, MissingFileThrows) {
  EXPECT_THROW(text::load_vocab("/tmp/odlp_no_such_vocab.txt"),
               std::runtime_error);
}

TEST(VocabIo, CorruptSpecialsThrow) {
  const std::string path = "/tmp/odlp_vocab_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not_pad\n<unk>\n<bos>\n<eos>\n<sep>\nword\n", f);
  std::fclose(f);
  EXPECT_THROW(text::load_vocab(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace odlp
