// PersonalizationEngine orchestration tests (fast configuration: bag-of-words
// embeddings where possible, tiny model, short streams).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/generator.h"
#include "data/phrase_pools.h"
#include "exp/experiment.h"
#include "obs/metrics.h"
#include "util/log.h"

namespace odlp::core {
namespace {

struct EngineFixture {
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::ModelConfig mc;
  std::unique_ptr<llm::MiniLlm> model;
  llm::BagOfWordsExtractor extractor{16};
  data::UserOracle oracle{123, lexicon::builtin_dictionary()};
  std::unique_ptr<PersonalizationEngine> engine;

  explicit EngineFixture(EngineConfig config,
                         const std::string& policy_name = "Ours") {
    mc.vocab_size = tokenizer.vocab().size();
    mc.dim = 16;
    mc.heads = 2;
    mc.layers = 1;
    mc.ff_hidden = 32;
    mc.max_seq_len = 48;
    model = std::make_unique<llm::MiniLlm>(mc, 7);
    engine = std::make_unique<PersonalizationEngine>(
        *model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
        exp::make_policy(policy_name),
        std::make_unique<ParaphraseSynthesizer>(lexicon::builtin_dictionary(),
                                                util::Rng(9)),
        config, util::Rng(11));
  }
};

EngineConfig fast_config() {
  EngineConfig ec;
  ec.buffer_bins = 4;
  ec.finetune_interval = 0;  // no automatic fine-tuning
  ec.synth_per_set = 2;
  ec.max_seq_len = 48;
  ec.train.epochs = 1;
  ec.train.batch_size = 4;
  return ec;
}

data::DialogueSet informative_set(data::UserOracle& oracle, std::size_t domain,
                                  std::size_t subtopic, util::Rng& rng) {
  data::Generator gen(data::meddialog_profile(), oracle, rng.split());
  return gen.make_informative(domain, subtopic);
}

TEST(Engine, AttachesLoraOnConstruction) {
  EngineFixture fx(fast_config());
  EXPECT_TRUE(fx.model->has_lora());
}

TEST(Engine, ScoreProducesAllThreeMetrics) {
  EngineFixture fx(fast_config());
  util::Rng rng(1);
  const auto set = informative_set(fx.oracle, 0, 0, rng);
  const Candidate cand = fx.engine->score(set);
  EXPECT_GT(cand.scores.eoe, 0.0);
  EXPECT_GT(cand.scores.dss, 0.0);
  EXPECT_DOUBLE_EQ(cand.scores.idd, 1.0);  // empty buffer: maximal novelty
  ASSERT_TRUE(cand.dominant_domain.has_value());
  EXPECT_EQ(*cand.dominant_domain,
            lexicon::builtin_dictionary().index_of("medical").value());
  EXPECT_EQ(cand.embedding.cols(), 16u);
}

TEST(Engine, NoiseScoresBelowInformative) {
  EngineFixture fx(fast_config());
  util::Rng rng(2);
  data::Generator gen(data::meddialog_profile(), fx.oracle, rng.split());
  const Candidate good = fx.engine->score(gen.make_informative(0, 0));
  const Candidate noise = fx.engine->score(gen.make_noise());
  EXPECT_GT(good.scores.dss, noise.scores.dss);
}

TEST(Engine, ProcessAdmitsIntoFreeBuffer) {
  EngineFixture fx(fast_config());
  util::Rng rng(3);
  EXPECT_TRUE(fx.engine->process(informative_set(fx.oracle, 0, 0, rng)));
  EXPECT_EQ(fx.engine->buffer().size(), 1u);
  EXPECT_EQ(fx.engine->stats().admitted_free, 1u);
}

TEST(Engine, AdmissionTriggersAnnotation) {
  EngineFixture fx(fast_config());
  util::Rng rng(4);
  const auto set = informative_set(fx.oracle, 1, 0, rng);
  fx.engine->process(set);
  EXPECT_EQ(fx.oracle.annotation_requests(), 1u);
  // The buffered answer must be the user's preferred response, not the
  // assistant's original reply.
  const auto& entry = fx.engine->buffer().entry(0);
  EXPECT_EQ(entry.set.answer, fx.oracle.preferred_response(1, 0));
  EXPECT_NE(entry.set.answer, set.answer);
  EXPECT_TRUE(entry.annotated);
}

TEST(Engine, RejectionSkipsAnnotation) {
  EngineConfig ec = fast_config();
  ec.buffer_bins = 1;
  EngineFixture fx(ec);
  util::Rng rng(5);
  data::Generator gen(data::meddialog_profile(), fx.oracle, rng.split());
  fx.engine->process(gen.make_informative(0, 0));
  const std::size_t after_first = fx.oracle.annotation_requests();
  // A pure-noise set cannot Pareto-dominate the informative one.
  fx.engine->process(gen.make_noise());
  EXPECT_EQ(fx.engine->stats().rejected, 1u);
  EXPECT_EQ(fx.oracle.annotation_requests(), after_first);
}

TEST(Engine, FinetuneIntervalTriggersRounds) {
  EngineConfig ec = fast_config();
  ec.finetune_interval = 3;
  EngineFixture fx(ec);
  util::Rng rng(6);
  data::Generator gen(data::meddialog_profile(), fx.oracle, rng.split());
  for (int i = 0; i < 7; ++i) fx.engine->process(gen.make_informative(0, 0));
  EXPECT_EQ(fx.engine->stats().finetune_rounds, 2u);  // at 3 and 6
}

TEST(Engine, FinetuneHookReportsSeenCount) {
  EngineConfig ec = fast_config();
  ec.finetune_interval = 2;
  EngineFixture fx(ec);
  std::vector<std::size_t> seen_at;
  fx.engine->set_finetune_hook([&](std::size_t seen) { seen_at.push_back(seen); });
  util::Rng rng(7);
  data::Generator gen(data::meddialog_profile(), fx.oracle, rng.split());
  for (int i = 0; i < 5; ++i) fx.engine->process(gen.make_informative(0, i % 2));
  EXPECT_EQ(seen_at, (std::vector<std::size_t>{2, 4}));
}

TEST(Engine, SynthesisAugmentsFinetuning) {
  EngineConfig ec = fast_config();
  ec.synth_per_set = 3;
  EngineFixture fx(ec);
  util::Rng rng(8);
  fx.engine->process(informative_set(fx.oracle, 0, 0, rng));
  fx.engine->finetune_now();
  EXPECT_EQ(fx.engine->stats().synthesized_used, 3u);
  EXPECT_GT(fx.engine->stats().synthesis.generated, 0u);
}

TEST(Engine, SynthesisDisabledWhenCountZero) {
  EngineConfig ec = fast_config();
  ec.synth_per_set = 0;
  EngineFixture fx(ec);
  util::Rng rng(9);
  fx.engine->process(informative_set(fx.oracle, 0, 0, rng));
  fx.engine->finetune_now();
  EXPECT_EQ(fx.engine->stats().synthesized_used, 0u);
}

TEST(Engine, FinetuneOnEmptyBufferIsNoop) {
  EngineFixture fx(fast_config());
  fx.engine->finetune_now();
  EXPECT_EQ(fx.engine->stats().finetune_rounds, 0u);
}

TEST(Engine, EvaluateReturnsScoreInUnitInterval) {
  EngineFixture fx(fast_config());
  util::Rng rng(10);
  data::Generator gen(data::meddialog_profile(), fx.oracle, rng.split());
  const auto ds = gen.generate(0, 6);
  std::vector<const data::DialogueSet*> test;
  for (const auto& s : ds.test) test.push_back(&s);
  const double score = fx.engine->evaluate(test);
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST(Engine, EvaluateEmptyIsZero) {
  EngineFixture fx(fast_config());
  EXPECT_DOUBLE_EQ(fx.engine->evaluate({}), 0.0);
}

TEST(Engine, RunStreamProcessesEverySet) {
  EngineConfig ec = fast_config();
  ec.finetune_interval = 0;
  EngineFixture fx(ec);
  util::Rng rng(11);
  data::Generator gen(data::alpaca_profile(), fx.oracle, rng.split());
  const auto ds = gen.generate(20, 0);
  fx.engine->run_stream(ds.stream);
  EXPECT_EQ(fx.engine->stats().seen, 20u);
  EXPECT_EQ(fx.engine->stats().admitted_free + fx.engine->stats().admitted_replacing +
                fx.engine->stats().rejected,
            20u);
}

TEST(Engine, BufferNeverExceedsCapacity) {
  EngineConfig ec = fast_config();
  ec.buffer_bins = 3;
  EngineFixture fx(ec);
  util::Rng rng(12);
  data::Generator gen(data::meddialog_profile(), fx.oracle, rng.split());
  const auto ds = gen.generate(30, 0);
  for (const auto& set : ds.stream) {
    fx.engine->process(set);
    EXPECT_LE(fx.engine->buffer().size(), 3u);
  }
}

TEST(Engine, QualityPolicyFiltersNoiseOverTime) {
  EngineConfig ec = fast_config();
  ec.buffer_bins = 6;
  EngineFixture fx(ec);
  util::Rng rng(13);
  data::Generator gen(data::meddialog_profile(), fx.oracle, rng.split());
  // Alternate noise and informative sets; the quality policy should end up
  // holding mostly informative content.
  for (int i = 0; i < 40; ++i) {
    fx.engine->process(i % 2 == 0 ? gen.make_noise()
                                  : gen.make_informative(0, i % 4));
  }
  const auto comp = exp::buffer_composition(fx.engine->buffer());
  EXPECT_LT(comp.noise, comp.size / 2);
}

TEST(Engine, QuarantinesEmptyDialogueSets) {
  EngineFixture fx(fast_config());
  util::set_log_level(util::LogLevel::kError);
  data::DialogueSet empty_question;
  empty_question.answer = "an answer without a question";
  data::DialogueSet empty_answer;
  empty_answer.question = "a question without an answer";
  EXPECT_FALSE(fx.engine->process(empty_question));
  EXPECT_FALSE(fx.engine->process(empty_answer));
  EXPECT_EQ(fx.engine->stats().quarantined, 2u);
  EXPECT_EQ(fx.engine->stats().seen, 2u);
  EXPECT_TRUE(fx.engine->buffer().empty());
  util::set_log_level(util::LogLevel::kInfo);
}

TEST(Engine, QuarantinesOversizedDialogueSets) {
  EngineFixture fx(fast_config());
  util::set_log_level(util::LogLevel::kError);
  data::DialogueSet huge;
  huge.question = "q";
  huge.answer = std::string(1 << 17, 'a');  // 128 KiB of garbage
  EXPECT_FALSE(fx.engine->process(huge));
  EXPECT_EQ(fx.engine->stats().quarantined, 1u);
  EXPECT_TRUE(fx.engine->buffer().empty());
  util::set_log_level(util::LogLevel::kInfo);
}

TEST(Engine, OfferCountersMatchEngineStats) {
  // The registry mirrors the selection outcomes EngineStats records; the
  // process-global counters may carry counts from other tests, so compare
  // deltas over this engine's lifetime.
  obs::Counter& seen = obs::registry().counter("engine.seen.sets");
  obs::Counter& accept = obs::registry().counter("engine.offer.accept");
  obs::Counter& reject = obs::registry().counter("engine.offer.reject");
  obs::Counter& quarantine = obs::registry().counter("engine.offer.quarantine");
  const std::uint64_t s0 = seen.value();
  const std::uint64_t a0 = accept.value();
  const std::uint64_t r0 = reject.value();
  const std::uint64_t q0 = quarantine.value();

  EngineConfig ec = fast_config();
  ec.buffer_bins = 2;
  EngineFixture fx(ec);
  util::set_log_level(util::LogLevel::kError);
  util::Rng rng(21);
  data::Generator gen(data::meddialog_profile(), fx.oracle, rng.split());
  for (int i = 0; i < 12; ++i) {
    fx.engine->process(i % 3 == 0 ? gen.make_noise()
                                  : gen.make_informative(0, i % 2));
  }
  data::DialogueSet empty;  // quarantined before scoring
  fx.engine->process(empty);
  util::set_log_level(util::LogLevel::kInfo);

  const EngineStats& st = fx.engine->stats();
  EXPECT_EQ(seen.value() - s0, st.seen);
  EXPECT_EQ(accept.value() - a0, st.admitted_free + st.admitted_replacing);
  EXPECT_EQ(reject.value() - r0, st.rejected);
  EXPECT_EQ(quarantine.value() - q0, st.quarantined);
  EXPECT_GT(st.rejected, 0u);  // the 2-bin buffer must have rejected some
  EXPECT_EQ(st.quarantined, 1u);
}

TEST(Engine, QuarantinedSetsAreNeverAnnotated) {
  EngineFixture fx(fast_config());
  util::set_log_level(util::LogLevel::kError);
  data::DialogueSet empty;
  fx.engine->process(empty);
  EXPECT_EQ(fx.engine->stats().annotations_made, 0u);
  util::set_log_level(util::LogLevel::kInfo);
}

}  // namespace
}  // namespace odlp::core
