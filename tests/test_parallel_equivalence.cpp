// Numerical-equivalence suite for the compute kernels:
//   * tiled/parallel matmul (+backward) vs. the serial reference kernels,
//   * cached-norm IDD vs. the direct Eq. 4–5 formula,
//   * parallel evaluate_per_set vs. the serial (1-lane) path.
// Determinism contract (DESIGN.md §8): the tiled kernels fix their own
// accumulation order, so results never depend on the lane count — those
// checks are exact, bit-for-bit. They do NOT promise the *same* order as
// the naive `*_reference` kernels, so reference comparisons use a relative
// tolerance band instead.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/buffer.h"
#include "core/engine.h"
#include "core/quality_metrics.h"
#include "data/generator.h"
#include "exp/experiment.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace odlp {
namespace {

tensor::Tensor random_tensor(std::size_t rows, std::size_t cols, util::Rng& rng) {
  tensor::Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

bool bit_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Relative-tolerance band for comparisons against the naive reference
// kernels: the tiled kernels reassociate the k-sum, so elements agree to
// float rounding, not bit-for-bit. |got - ref| <= atol + rtol * |ref|.
void expect_close(const tensor::Tensor& ref, const tensor::Tensor& got,
                  float rtol = 1e-4f, float atol = 1e-5f) {
  ASSERT_TRUE(ref.same_shape(got));
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float r = ref.data()[i];
    const float g = got.data()[i];
    ASSERT_LE(std::abs(g - r), atol + rtol * std::abs(r)) << "element " << i;
  }
}

// Runs `fn` with the global pool temporarily resized to `lanes`.
template <typename Fn>
auto with_global_lanes(std::size_t lanes, Fn fn) {
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::size_t before = pool.lanes();
  pool.resize(lanes);
  auto result = fn();
  pool.resize(before);
  return result;
}

TEST(MatmulEquivalence, BlockedMatchesReferenceAcrossShapes) {
  util::Rng rng(0xABCD);
  // Mix of below-threshold, above-threshold, and non-multiple-of-block
  // shapes (the 1×1 and thin cases catch chunking edge conditions).
  const std::size_t shapes[][3] = {{1, 1, 1},     {3, 5, 7},    {17, 33, 9},
                                   {64, 64, 64},  {96, 64, 512}, {100, 130, 70},
                                   {256, 64, 64}};
  for (const auto& s : shapes) {
    const tensor::Tensor a = random_tensor(s[0], s[1], rng);
    const tensor::Tensor b = random_tensor(s[1], s[2], rng);
    const tensor::Tensor ref = tensor::matmul_reference(a, b);
    const tensor::Tensor got = tensor::matmul(a, b);
    SCOPED_TRACE(testing::Message()
                 << "shape " << s[0] << "x" << s[1] << "x" << s[2]);
    expect_close(ref, got);
  }
}

TEST(MatmulEquivalence, ResultIndependentOfLaneCount) {
  util::Rng rng(0x1234);
  const tensor::Tensor a = random_tensor(128, 96, rng);
  const tensor::Tensor b = random_tensor(96, 160, rng);
  const tensor::Tensor one =
      with_global_lanes(1, [&] { return tensor::matmul(a, b); });
  const tensor::Tensor four =
      with_global_lanes(4, [&] { return tensor::matmul(a, b); });
  EXPECT_TRUE(bit_identical(one, four));
}

TEST(MatmulEquivalence, BackwardMatchesReference) {
  util::Rng rng(0x5EED);
  const std::size_t shapes[][3] = {{2, 3, 4}, {40, 50, 60}, {96, 64, 512}};
  for (const auto& s : shapes) {
    const tensor::Tensor a = random_tensor(s[0], s[1], rng);
    const tensor::Tensor b = random_tensor(s[1], s[2], rng);
    const tensor::Tensor dc = random_tensor(s[0], s[2], rng);
    // Seed the accumulators with nonzero values: backward *accumulates*.
    tensor::Tensor da_ref = random_tensor(s[0], s[1], rng);
    tensor::Tensor db_ref = random_tensor(s[1], s[2], rng);
    tensor::Tensor da = da_ref;
    tensor::Tensor db = db_ref;
    tensor::matmul_backward_reference(a, b, dc, da_ref, db_ref);
    with_global_lanes(4, [&] {
      tensor::matmul_backward(a, b, dc, da, db);
      return 0;
    });
    SCOPED_TRACE(testing::Message()
                 << "shape " << s[0] << "x" << s[1] << "x" << s[2]);
    expect_close(da_ref, da);
    expect_close(db_ref, db);
  }
}

TEST(MatmulEquivalence, BackwardIndependentOfLaneCount) {
  util::Rng rng(0xBEEF);
  const tensor::Tensor a = random_tensor(96, 64, rng);
  const tensor::Tensor b = random_tensor(64, 160, rng);
  const tensor::Tensor dc = random_tensor(96, 160, rng);
  const tensor::Tensor da_seed = random_tensor(96, 64, rng);
  const tensor::Tensor db_seed = random_tensor(64, 160, rng);
  struct R {
    tensor::Tensor da, db;
  };
  auto run = [&] {
    R r{da_seed, db_seed};
    tensor::matmul_backward(a, b, dc, r.da, r.db);
    return r;
  };
  const R one = with_global_lanes(1, run);
  const R four = with_global_lanes(4, run);
  // Row chunks are disjoint and each element's accumulation order is fixed,
  // so the lane count must not change a single bit.
  EXPECT_TRUE(bit_identical(one.da, four.da));
  EXPECT_TRUE(bit_identical(one.db, four.db));
}

TEST(RowwiseEquivalence, SoftmaxAndLayerNormIndependentOfLaneCount) {
  util::Rng rng(0xF00D);
  const tensor::Tensor x = random_tensor(200, 128, rng);  // above threshold
  struct R {
    tensor::Tensor sm, ln, lnb;
  };
  auto run = [&] {
    tensor::LayerNormCache cache;
    tensor::Tensor sm = tensor::softmax_rows(x);
    tensor::Tensor ln = tensor::layernorm_rows(x, 1e-5f, &cache);
    tensor::Tensor lnb = tensor::layernorm_rows_backward(sm, cache);
    return R{std::move(sm), std::move(ln), std::move(lnb)};
  };
  auto one = with_global_lanes(1, run);
  auto four = with_global_lanes(4, run);
  EXPECT_TRUE(bit_identical(one.sm, four.sm));
  EXPECT_TRUE(bit_identical(one.ln, four.ln));
  EXPECT_TRUE(bit_identical(one.lnb, four.lnb));
}

TEST(IddEquivalence, CachedNormMatchesDirectFormula) {
  util::Rng rng(0xD0C);
  core::DataBuffer buffer(16);
  for (std::size_t i = 0; i < 12; ++i) {
    core::BufferEntry e;
    e.embedding = random_tensor(1, 64, rng);
    e.dominant_domain = i % 3;
    e.inserted_at = i;
    buffer.add(std::move(e));
  }
  const tensor::Tensor cand = random_tensor(1, 64, rng);
  const double cand_norm = std::sqrt(tensor::sum_squares(cand));
  for (std::size_t domain = 0; domain < 4; ++domain) {
    const double direct = core::in_domain_dissimilarity(
        cand, buffer.embeddings_in_domain(domain));
    const double cached = core::in_domain_dissimilarity_cached(
        cand, cand_norm, buffer.normed_embeddings_in_domain(domain));
    // Same accumulations, just factored: exact equality expected. (Domain 3
    // is empty and must hit the R = 0 ⇒ 1.0 branch in both.)
    EXPECT_EQ(direct, cached) << "domain " << domain;
  }
}

TEST(IddEquivalence, CacheSurvivesReplaceAndZeroNorm) {
  util::Rng rng(0xACE);
  core::DataBuffer buffer(4);
  core::BufferEntry a;
  a.embedding = random_tensor(1, 32, rng);
  a.dominant_domain = 0;
  buffer.add(std::move(a));
  core::BufferEntry zero;
  zero.embedding = tensor::Tensor(1, 32, 0.0f);  // zero vector: norm 0
  zero.dominant_domain = 0;
  buffer.add(std::move(zero));
  // Replace entry 0 and re-check the cache tracks the new embedding.
  core::BufferEntry b;
  b.embedding = random_tensor(1, 32, rng);
  b.dominant_domain = 0;
  buffer.replace(0, std::move(b));

  const tensor::Tensor cand = random_tensor(1, 32, rng);
  const double cand_norm = std::sqrt(tensor::sum_squares(cand));
  const double direct =
      core::in_domain_dissimilarity(cand, buffer.embeddings_in_domain(0));
  const double cached = core::in_domain_dissimilarity_cached(
      cand, cand_norm, buffer.normed_embeddings_in_domain(0));
  EXPECT_EQ(direct, cached);
  // The zero-norm entry contributes cos = 0 ⇒ dissimilarity 1 in both paths.
  EXPECT_GT(cached, 0.0);
}

struct EvalFixture {
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::ModelConfig mc;
  std::unique_ptr<llm::MiniLlm> model;
  llm::BagOfWordsExtractor extractor{16};
  data::UserOracle oracle{123, lexicon::builtin_dictionary()};
  std::unique_ptr<core::PersonalizationEngine> engine;

  EvalFixture() {
    core::EngineConfig ec;
    ec.buffer_bins = 4;
    ec.finetune_interval = 0;
    ec.max_seq_len = 48;
    mc.vocab_size = tokenizer.vocab().size();
    mc.dim = 16;
    mc.heads = 2;
    mc.layers = 1;
    mc.ff_hidden = 32;
    mc.max_seq_len = 48;
    model = std::make_unique<llm::MiniLlm>(mc, 7);
    engine = std::make_unique<core::PersonalizationEngine>(
        *model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
        exp::make_policy("Ours"),
        std::make_unique<core::ParaphraseSynthesizer>(
            lexicon::builtin_dictionary(), util::Rng(9)),
        ec, util::Rng(11));
  }
};

TEST(EvaluateEquivalence, ParallelMatchesSerialPerSetScores) {
  EvalFixture fx;
  util::Rng rng(21);
  data::Generator gen(data::meddialog_profile(), fx.oracle, rng.split());
  const auto ds = gen.generate(0, 10);
  std::vector<const data::DialogueSet*> test;
  for (const auto& s : ds.test) test.push_back(&s);

  const std::vector<double> serial = with_global_lanes(
      1, [&] { return fx.engine->evaluate_per_set(test, /*repeats=*/2); });
  const std::vector<double> parallel = with_global_lanes(
      4, [&] { return fx.engine->evaluate_per_set(test, /*repeats=*/2); });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Per-(repeat, set) sampler seeds make each generation independent of
    // the schedule: exact equality, not a tolerance.
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << "set " << i;
  }
}

TEST(EvaluateEquivalence, ParallelMatchesSerialAfterFinetune) {
  // Same check with LoRA-updated weights in play (exercises the per-lane
  // model clone path against the post-fine-tune parameters).
  EvalFixture fx;
  util::Rng rng(22);
  data::Generator gen(data::meddialog_profile(), fx.oracle, rng.split());
  const auto ds = gen.generate(8, 6);
  for (const auto& s : ds.stream) fx.engine->process(s);
  fx.engine->finetune_now();
  std::vector<const data::DialogueSet*> test;
  for (const auto& s : ds.test) test.push_back(&s);

  const std::vector<double> serial =
      with_global_lanes(1, [&] { return fx.engine->evaluate_per_set(test); });
  const std::vector<double> parallel =
      with_global_lanes(4, [&] { return fx.engine->evaluate_per_set(test); });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << "set " << i;
  }
}

TEST(ScoreEquivalence, SingleTokenizationScoreMatchesTextBlockPath) {
  // score() now tokenizes once and feeds words to the extractor; the result
  // must match extracting straight from the text block.
  EvalFixture fx;
  util::Rng rng(23);
  data::Generator gen(data::meddialog_profile(), fx.oracle, rng.split());
  const auto set = gen.make_informative(0, 0);
  const core::Candidate cand = fx.engine->score(set);
  const tensor::Tensor direct =
      fx.extractor.token_embeddings(set.text_block());
  EXPECT_TRUE(bit_identical(tensor::mean_rows(direct), cand.embedding));
}

}  // namespace
}  // namespace odlp
