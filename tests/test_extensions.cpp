// Tests for the design-ablation extensions: weighted-sum policy, annotation
// budget, embedding-source selection, and sanity-mode plumbing.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/weighted_policy.h"
#include "data/generator.h"
#include "exp/experiment.h"

namespace odlp {
namespace {

using core::Candidate;
using core::DataBuffer;
using core::QualityScores;

core::BufferEntry entry_with_scores(QualityScores s, std::size_t at) {
  core::BufferEntry e;
  e.scores = s;
  e.inserted_at = at;
  e.embedding = tensor::Tensor(1, 2, 1.0f);
  return e;
}

Candidate candidate_with_scores(QualityScores s) {
  Candidate c;
  c.scores = s;
  c.embedding = tensor::Tensor(1, 2, 1.0f);
  return c;
}

TEST(WeightedSumPolicy, AdmitsFreeAndReplacesWorstSum) {
  core::WeightedSumPolicy policy;
  DataBuffer buf(2);
  util::Rng rng(1);
  EXPECT_TRUE(policy.offer(candidate_with_scores({0, 0, 0}), buf, rng).admit);
  buf.add(entry_with_scores({0.9, 0.0, 0.0}, 1));  // sum 0.9
  buf.add(entry_with_scores({0.2, 0.2, 0.2}, 2));  // sum 0.6 (worst)
  auto d = policy.offer(candidate_with_scores({0.3, 0.3, 0.3}), buf, rng);  // 0.9
  ASSERT_TRUE(d.admit);
  EXPECT_EQ(d.victim.value(), 1u);
}

TEST(WeightedSumPolicy, RejectsWhenNotAboveWorst) {
  core::WeightedSumPolicy policy;
  DataBuffer buf(1);
  buf.add(entry_with_scores({0.5, 0.5, 0.5}, 1));  // sum 1.5
  util::Rng rng(2);
  EXPECT_FALSE(policy.offer(candidate_with_scores({0.5, 0.5, 0.5}), buf, rng).admit);
  EXPECT_FALSE(policy.offer(candidate_with_scores({0.4, 0.4, 0.4}), buf, rng).admit);
}

TEST(WeightedSumPolicy, AdmitsOnSingleStrongMetricUnlikePareto) {
  // Key behavioural difference vs. Pareto dominance: one overwhelming metric
  // can buy admission even when the other two are lower.
  core::WeightedSumPolicy weighted;
  core::QualityReplacementPolicy pareto;
  DataBuffer buf(1);
  buf.add(entry_with_scores({0.3, 0.3, 0.3}, 1));  // sum 0.9
  util::Rng rng(3);
  const Candidate strong_one = candidate_with_scores({1.0, 0.1, 0.1});  // 1.2
  EXPECT_TRUE(weighted.offer(strong_one, buf, rng).admit);
  EXPECT_FALSE(pareto.offer(strong_one, buf, rng).admit);
}

TEST(WeightedSumPolicy, CustomWeights) {
  core::WeightedSumPolicy policy({0.0, 1.0, 0.0});  // DSS only
  DataBuffer buf(1);
  buf.add(entry_with_scores({0.9, 0.2, 0.9}, 1));
  util::Rng rng(4);
  EXPECT_TRUE(policy.offer(candidate_with_scores({0.0, 0.3, 0.0}), buf, rng).admit);
  EXPECT_FALSE(policy.offer(candidate_with_scores({1.0, 0.1, 1.0}), buf, rng).admit);
}

TEST(WeightedSumPolicy, ResolvableThroughFactory) {
  auto policy = exp::make_policy("WeightedSum");
  EXPECT_EQ(policy->name(), "WeightedSum");
}

TEST(AnnotationBudget, EngineStopsAnnotatingAfterBudget) {
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::ModelConfig mc;
  mc.vocab_size = tokenizer.vocab().size();
  mc.dim = 16;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 32;
  llm::MiniLlm model(mc, 5);
  llm::BagOfWordsExtractor extractor(16);
  data::UserOracle oracle(321, lexicon::builtin_dictionary());

  core::EngineConfig ec;
  ec.buffer_bins = 8;
  ec.finetune_interval = 0;
  ec.annotation_budget = 2;
  core::PersonalizationEngine engine(
      model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
      exp::make_policy("FIFO"), nullptr, ec, util::Rng(6));

  data::Generator gen(data::meddialog_profile(), oracle, util::Rng(7));
  for (int i = 0; i < 5; ++i) engine.process(gen.make_informative(0, 0));

  EXPECT_EQ(engine.stats().annotations_made, 2u);
  EXPECT_EQ(engine.stats().annotations_skipped, 3u);
  EXPECT_EQ(oracle.annotation_requests(), 2u);
  // The first two buffered sets carry the user's style; later ones keep the
  // assistant's own answer.
  EXPECT_TRUE(engine.buffer().entry(0).annotated);
  EXPECT_TRUE(engine.buffer().entry(1).annotated);
  EXPECT_FALSE(engine.buffer().entry(2).annotated);
  EXPECT_NE(engine.buffer().entry(2).set.answer,
            oracle.preferred_response(0, 0));
}

TEST(AnnotationBudget, ZeroMeansUnlimited) {
  text::Tokenizer tokenizer = exp::make_device_tokenizer();
  llm::ModelConfig mc;
  mc.vocab_size = tokenizer.vocab().size();
  mc.dim = 16;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 32;
  llm::MiniLlm model(mc, 8);
  llm::BagOfWordsExtractor extractor(16);
  data::UserOracle oracle(654, lexicon::builtin_dictionary());
  core::EngineConfig ec;
  ec.buffer_bins = 8;
  ec.finetune_interval = 0;
  ec.annotation_budget = 0;
  core::PersonalizationEngine engine(
      model, tokenizer, extractor, oracle, lexicon::builtin_dictionary(),
      exp::make_policy("FIFO"), nullptr, ec, util::Rng(9));
  data::Generator gen(data::meddialog_profile(), oracle, util::Rng(10));
  for (int i = 0; i < 6; ++i) engine.process(gen.make_informative(0, 1));
  EXPECT_EQ(engine.stats().annotations_made, 6u);
  EXPECT_EQ(engine.stats().annotations_skipped, 0u);
}

TEST(EmbeddingSource, BowRunsThroughHarness) {
  exp::ExperimentConfig c;
  c.dataset = "MedDialog";
  c.method = "Ours";
  c.embedding_source = "bow";
  c.buffer_bins = 4;
  c.stream_size = 10;
  c.test_size = 10;
  c.eval_subset = 4;
  c.finetune_interval = 0;
  c.record_curve = false;
  c.epochs = 1;
  c.pretrain_examples = 8;
  c.pretrain_epochs = 1;
  c.cache_dir = "";
  c.seed = 11;
  const auto r = exp::run_experiment(c);
  EXPECT_EQ(r.engine_stats.seen, 10u);
}

TEST(EmbeddingSource, UnknownSourceThrows) {
  exp::ExperimentConfig c;
  c.embedding_source = "word2vec";
  c.cache_dir = "";
  c.pretrain_examples = 4;
  c.pretrain_epochs = 1;
  c.stream_size = 4;
  c.test_size = 4;
  EXPECT_THROW(exp::run_experiment(c), std::invalid_argument);
}

TEST(SanityModePlumbing, RejectAboveReachesSynthesizer) {
  // With reject-above at threshold 0 every candidate whose similarity > 0 is
  // discarded, so synthesis yields nothing for on-topic paraphrases.
  exp::ExperimentConfig c;
  c.dataset = "MedDialog";
  c.sanity_mode = core::SanityCheckMode::kRejectAbove;
  c.sanity_threshold = 0.0;
  c.buffer_bins = 4;
  c.stream_size = 8;
  c.test_size = 8;
  c.eval_subset = 4;
  c.finetune_interval = 4;
  c.record_curve = false;
  c.epochs = 1;
  c.pretrain_examples = 8;
  c.pretrain_epochs = 1;
  c.cache_dir = "";
  c.seed = 12;
  const auto r = exp::run_experiment(c);
  EXPECT_EQ(r.engine_stats.synthesized_used, 0u);
  EXPECT_GT(r.engine_stats.synthesis.generated, 0u);
}

}  // namespace
}  // namespace odlp
