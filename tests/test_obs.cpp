// Telemetry subsystem tests: metrics registry semantics (counter / gauge /
// histogram, concurrency, snapshots, persistence) and trace-span recording
// with Chrome Trace JSON export (DESIGN.md §10).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace odlp::obs {
namespace {

// The registry is process-global and shared with every other test in this
// binary, so each test uses its own "testobs.*" names and, where it reads
// values, compares deltas.

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string read_file_text(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Minimal structural JSON check: every brace/bracket outside a string
// balances and the document is a single object. Not a full parser, but it
// rejects truncation, trailing commas into EOF, and unterminated strings —
// the failure modes a hand-rolled serializer can produce.
bool looks_like_valid_json(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  bool seen_root = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        if (stack.empty() && seen_root) return false;  // trailing garbage
        seen_root = true;
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty() && seen_root;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ObsCounter, IncrementsAndResets) {
  Counter& c = registry().counter("testobs.counter.basic");
  const std::uint64_t base = c.value();
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), base + 42);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddAndReset) {
  Gauge& g = registry().gauge("testobs.gauge.basic");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsRegistry, SameNameReturnsSameMetric) {
  Counter& a = registry().counter("testobs.counter.same");
  Counter& b = registry().counter("testobs.counter.same");
  EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, KindClashThrows) {
  registry().counter("testobs.kindclash");
  EXPECT_THROW(registry().gauge("testobs.kindclash"), std::logic_error);
  EXPECT_THROW(registry().histogram("testobs.kindclash"), std::logic_error);
}

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  Counter& c = registry().counter("testobs.counter.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsHistogram, ConcurrentRecordsSumExactly) {
  Histogram& h = registry().histogram("testobs.hist.concurrent");
  h.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(1.0);
    });
  }
  for (auto& t : threads) t.join();
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(s.sum, double(kThreads) * kPerThread);
}

TEST(ObsHistogram, SummaryAndQuantiles) {
  Histogram& h =
      registry().histogram("testobs.hist.quantiles", {10.0, 20.0, 50.0, 100.0});
  // 100 samples spread 1..100: p50 near 50, p95 near 95 (interpolated
  // within their buckets), min/max exact.
  for (int v = 1; v <= 100; ++v) h.record(double(v));
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.0, 2.0);  // interpolated within its bucket
  EXPECT_GE(s.p95, 50.0);
  EXPECT_LE(s.p95, 100.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(ObsHistogram, QuantileEdges) {
  Histogram& h = registry().histogram("testobs.hist.edges", {1.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  h.record(3.0);
  // A single sample: every quantile is clamped to the observed value.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
  // Overflow bucket: values above the last bound stay clamped to max.
  h.record(1e9);
  EXPECT_LE(h.quantile(1.0), 1e9);
  EXPECT_GE(h.quantile(0.99), 3.0);
}

TEST(ObsHistogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(ObsRegistry, SnapshotFindsAndSorts) {
  registry().counter("testobs.snap.counter").inc(7);
  registry().gauge("testobs.snap.gauge").set(1.25);
  registry().histogram("testobs.snap.hist").record(3.0);
  const MetricsSnapshot snap = registry().snapshot();
  EXPECT_GE(snap.counter_value("testobs.snap.counter"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("testobs.snap.gauge"), 1.25);
  EXPECT_GT(snap.histogram_sum("testobs.snap.hist"), 0.0);
  EXPECT_EQ(snap.find("testobs.snap.no_such_metric"), nullptr);
  for (std::size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_LT(snap.samples[i - 1].name, snap.samples[i].name);
  }
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  Counter& c = registry().counter("testobs.reset.counter");
  c.inc(5);
  registry().reset();
  EXPECT_EQ(c.value(), 0u);  // the cached reference still works
  c.inc(2);
  EXPECT_EQ(registry().counter("testobs.reset.counter").value(), 2u);
}

TEST(ObsDump, JsonContainsAllKindsAndValidates) {
  registry().counter("testobs.dump.counter").inc();
  registry().gauge("testobs.dump.gauge").set(3.0);
  registry().histogram("testobs.dump.hist").record(10.0);
  const std::string json = dump_metrics(MetricsFormat::kJson);
  EXPECT_TRUE(looks_like_valid_json(json)) << json;
  EXPECT_NE(json.find("testobs.dump.counter"), std::string::npos);
  EXPECT_NE(json.find("testobs.dump.gauge"), std::string::npos);
  EXPECT_NE(json.find("testobs.dump.hist"), std::string::npos);
}

TEST(ObsDump, PrometheusNamesAreSanitized) {
  registry().counter("testobs.dump.prom").inc(3);
  registry().histogram("testobs.dump.promhist").record(2.0);
  const std::string text = dump_metrics(MetricsFormat::kPrometheus);
  EXPECT_NE(text.find("odlp_testobs_dump_prom"), std::string::npos);
  // Histograms expose cumulative buckets with an le label and a +Inf bucket.
  EXPECT_NE(text.find("odlp_testobs_dump_promhist_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  // No raw dotted metric names leak into the Prometheus exposition.
  EXPECT_EQ(text.find("testobs.dump.prom"), std::string::npos);
}

TEST(ObsPersistence, SaveLoadRoundtrip) {
  registry().counter("testobs.persist.counter").inc(123);
  registry().gauge("testobs.persist.gauge").set(-2.5);
  Histogram& h = registry().histogram("testobs.persist.hist", {1.0, 10.0});
  h.reset();
  h.record(0.5);
  h.record(5.0);
  h.record(100.0);
  const std::string path = temp_path("testobs_metrics.bin");
  const MetricsSnapshot before = registry().snapshot();
  save_metrics(before, path);
  const MetricsSnapshot after = load_metrics(path);
  EXPECT_EQ(after.counter_value("testobs.persist.counter"),
            before.counter_value("testobs.persist.counter"));
  EXPECT_DOUBLE_EQ(after.gauge_value("testobs.persist.gauge"), -2.5);
  const MetricSample* hs = after.find("testobs.persist.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->hist.count, 3u);
  EXPECT_EQ(hs->buckets.size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(hs->buckets[0], 1u);
  EXPECT_EQ(hs->buckets[1], 1u);
  EXPECT_EQ(hs->buckets[2], 1u);
  std::remove(path.c_str());
}

TEST(ObsPersistence, LoadRejectsCorruptFile) {
  const std::string path = temp_path("testobs_corrupt.bin");
  std::ofstream(path) << "definitely not a metrics snapshot";
  EXPECT_ANY_THROW(load_metrics(path));
  std::remove(path.c_str());
}

TEST(ObsPersistence, RestoreReimportsCounters) {
  Counter& c = registry().counter("testobs.restore.counter");
  c.reset();
  c.inc(77);
  const MetricsSnapshot snap = registry().snapshot();
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  registry().restore(snap);
  EXPECT_EQ(c.value(), 77u);
}

TEST(ObsTrace, DisabledFastPathRecordsNothing) {
  disable_tracing();
  const std::size_t buffers_before = trace_buffer_count();
  const std::size_t events_before = trace_event_count();
  const std::uint64_t dropped_before = trace_dropped_count();
  for (int i = 0; i < 1000; ++i) {
    ODLP_TRACE_SCOPE("testobs.disabled");
  }
  // No per-thread ring buffer is created, no event recorded, nothing
  // dropped: the off path is a relaxed atomic load and a branch.
  EXPECT_EQ(trace_buffer_count(), buffers_before);
  EXPECT_EQ(trace_event_count(), events_before);
  EXPECT_EQ(trace_dropped_count(), dropped_before);
}

TEST(ObsTrace, FlushWritesBalancedChromeTraceJson) {
  const std::string path = temp_path("testobs_trace.json");
  enable_tracing(path);
  {
    ODLP_TRACE_SCOPE("testobs.outer");
    {
      ODLP_TRACE_SCOPE("testobs.inner");
    }
    ODLP_TRACE_SCOPE("testobs.sibling");
  }
  std::thread other([] {
    ODLP_TRACE_SCOPE("testobs.worker");
  });
  other.join();
  disable_tracing();
  ASSERT_TRUE(flush_trace());

  const std::string json = read_file_text(path);
  EXPECT_TRUE(looks_like_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  const std::size_t begins = count_occurrences(json, "\"ph\":\"B\"");
  const std::size_t ends = count_occurrences(json, "\"ph\":\"E\"");
  EXPECT_EQ(begins, ends);
  EXPECT_GE(begins, 4u);
  for (const char* name : {"testobs.outer", "testobs.inner",
                           "testobs.sibling", "testobs.worker"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  // The main thread and the worker each get their own tid.
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTrace, UnclosedSpansAreClosedSynthetically) {
  const std::string path = temp_path("testobs_trace_open.json");
  enable_tracing(path);
  // Record a begin without its end by flushing mid-span.
  {
    ODLP_TRACE_SCOPE("testobs.still_open");
    ASSERT_TRUE(flush_trace());
    const std::string json = read_file_text(path);
    EXPECT_TRUE(looks_like_valid_json(json)) << json;
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
              count_occurrences(json, "\"ph\":\"E\""));
    EXPECT_NE(json.find("testobs.still_open"), std::string::npos);
  }
  disable_tracing();
  std::remove(path.c_str());
}

TEST(ObsTrace, EnableClearsPreviousEvents) {
  const std::string path = temp_path("testobs_trace_clear.json");
  enable_tracing(path);
  {
    ODLP_TRACE_SCOPE("testobs.first_run");
  }
  EXPECT_GE(trace_event_count(), 2u);
  enable_tracing(path);  // restart: previous events are discarded
  {
    ODLP_TRACE_SCOPE("testobs.second_run");
  }
  disable_tracing();
  ASSERT_TRUE(flush_trace());
  const std::string json = read_file_text(path);
  EXPECT_EQ(json.find("testobs.first_run"), std::string::npos);
  EXPECT_NE(json.find("testobs.second_run"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTrace, WriteMetricsJsonProducesValidFile) {
  registry().counter("testobs.file.counter").inc();
  const std::string path = temp_path("testobs_metrics.json");
  write_metrics_json(path);
  const std::string json = read_file_text(path);
  EXPECT_TRUE(looks_like_valid_json(json)) << json;
  EXPECT_NE(json.find("testobs.file.counter"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace odlp::obs
