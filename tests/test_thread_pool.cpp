// util::ThreadPool: coverage semantics, determinism across lane counts,
// nested regions, exception propagation, slot stability. Also the stress
// suite the TSan build (ODLP_SANITIZE=thread) exercises.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace odlp {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(0, n, 3, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPool, ChunksRespectGrain) {
  util::ThreadPool pool(3);
  std::atomic<std::size_t> max_chunk{0};
  pool.parallel_for(10, 95, 7, [&](std::size_t b, std::size_t e) {
    ASSERT_LE(b, e);
    std::size_t len = e - b;
    std::size_t prev = max_chunk.load();
    while (len > prev && !max_chunk.compare_exchange_weak(prev, len)) {
    }
  });
  EXPECT_LE(max_chunk.load(), 7u);
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  util::ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(0, 10, 4, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // chunk order == submission order when inline
}

TEST(ThreadPool, ReduceOrderedIsIdenticalAcrossLaneCounts) {
  // The reduction decomposes by grain only, so 1-lane and 4-lane pools must
  // agree bit-for-bit even for float accumulation.
  std::vector<float> values(10007);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0f / static_cast<float>(i + 1);
  }
  auto run = [&](util::ThreadPool& pool) {
    return pool.reduce_ordered<double>(
        0, values.size(), 0, 0.0,
        [&](std::size_t b, std::size_t e) {
          double acc = 0.0;
          for (std::size_t i = b; i < e; ++i) acc += values[i];
          return acc;
        },
        [](const double& a, const double& b) { return a + b; });
  };
  util::ThreadPool serial(1);
  util::ThreadPool wide(4);
  const double s = run(serial);
  const double w1 = run(wide);
  const double w2 = run(wide);
  EXPECT_EQ(s, w1);
  EXPECT_EQ(w1, w2);  // run-to-run
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, 8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t outer = b; outer < e; ++outer) {
      pool.parallel_for(0, 8, 1, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t inner = ib; inner < ie; ++inner) {
          hits[outer * 8 + inner].fetch_add(1);
        }
      });
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToSubmitter) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::size_t b, std::size_t) {
                          if (b == 42) throw std::runtime_error("chunk 42");
                        }),
      std::runtime_error);
  // Pool stays usable after a failed region.
  std::atomic<int> sum{0};
  pool.parallel_for(0, 10, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, SlotIdsStayInRange) {
  util::ThreadPool pool(4);
  std::atomic<bool> ok{true};
  pool.parallel_for_slotted(0, 200, 1,
                            [&](std::size_t, std::size_t, std::size_t lane) {
                              if (lane >= pool.lanes()) ok = false;
                            });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, SlotScratchNeedsNoSynchronization) {
  // One scratch accumulator per lane; lanes run one chunk at a time, so
  // unsynchronized lane-indexed writes must be race-free (TSan checks this).
  util::ThreadPool pool(4);
  std::vector<long> scratch(pool.lanes(), 0);
  pool.parallel_for_slotted(0, 5000, 16,
                            [&](std::size_t b, std::size_t e, std::size_t lane) {
                              for (std::size_t i = b; i < e; ++i) {
                                scratch[lane] += static_cast<long>(i);
                              }
                            });
  long total = 0;
  for (long v : scratch) total += v;
  EXPECT_EQ(total, 5000L * 4999L / 2);
}

TEST(ThreadPool, ResizeChangesLaneCount) {
  util::ThreadPool pool(2);
  EXPECT_EQ(pool.lanes(), 2u);
  pool.resize(5);
  EXPECT_EQ(pool.lanes(), 5u);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 100, 0, [&](std::size_t b, std::size_t e) {
    sum.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(sum.load(), 100);
  pool.resize(1);
  EXPECT_EQ(pool.lanes(), 1u);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  util::ThreadPool& pool = util::ThreadPool::global();
  EXPECT_GE(pool.lanes(), 1u);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 64, 0, [&](std::size_t b, std::size_t e) {
    sum.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(sum.load(), 64);
}

TEST(ThreadPool, ConfiguredLanesIsPositive) {
  EXPECT_GE(util::ThreadPool::configured_lanes(), 1u);
}

TEST(ThreadPool, StressManySmallRegions) {
  // Back-to-back regions reusing the same workers; primarily a TSan target.
  util::ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(0, 37, 2, [&](std::size_t b, std::size_t e) {
      sum.fetch_add(static_cast<int>(e - b));
    });
    ASSERT_EQ(sum.load(), 37);
  }
}

}  // namespace
}  // namespace odlp
