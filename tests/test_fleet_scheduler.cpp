// Concurrent fleet scheduler suite (DESIGN.md §13), own binary under the
// "fleet" ctest label.
//
// The load-bearing property is the determinism contract: the concurrent
// scheduler's per-user results are BIT-identical to the sequential
// exp::run_fleet at every thread/shard combination — adapter hot-swap,
// cross-user batched decode, and wave interleaving must all be invisible
// in the numbers. The remaining tests cover the cache round-trip through
// eviction/spill, the fairness/starvation accounting with a rigged slow
// user, and fault injection during concurrent chunks (also the TSan
// target: build-tsan runs this suite with real thread interleavings).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "exp/fleet.h"
#include "fleet/adapter_cache.h"
#include "fleet/adapter_state.h"
#include "fleet/scheduler.h"
#include "util/fault.h"

namespace odlp::fleet {
namespace {

namespace fs = std::filesystem;

exp::FleetConfig micro_fleet(std::size_t users) {
  exp::FleetConfig fleet;
  fleet.num_devices = users;
  fleet.device_template.dataset = "ALPACA";
  fleet.device_template.buffer_bins = 4;
  fleet.device_template.stream_size = 10;
  fleet.device_template.test_size = 10;
  fleet.device_template.eval_subset = 4;
  fleet.device_template.eval_repeats = 1;
  fleet.device_template.finetune_interval = 5;
  fleet.device_template.epochs = 1;
  fleet.device_template.synth_per_set = 1;
  fleet.device_template.pretrain_examples = 8;
  fleet.device_template.pretrain_epochs = 1;
  fleet.device_template.cache_dir = "";
  fleet.device_template.record_curve = true;
  fleet.device_template.eval_temperature = 0.0f;
  fleet.seed_base = 77;
  // The concurrent scheduler shares one base checkpoint across the fleet;
  // the sequential reference must personalize from the same one.
  fleet.shared_base_seed = 77 * 7919 + 17;
  return fleet;
}

class FleetSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    work_dir_ = "/tmp/odlp_fleet_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(work_dir_);
    fs::create_directories(work_dir_);
  }
  void TearDown() override { fs::remove_all(work_dir_); }

  ConcurrentFleetConfig concurrent(std::size_t users) {
    ConcurrentFleetConfig config;
    config.fleet = micro_fleet(users);
    // Base-model cache shared across the parameterized runs in one process:
    // pretraining happens once, every run after loads the same bytes.
    config.fleet.device_template.cache_dir = work_dir_ + "/base";
    fs::create_directories(config.fleet.device_template.cache_dir);
    config.spill_dir = work_dir_ + "/spill";
    return config;
  }

  std::string work_dir_;
};

void expect_user_identical(const exp::ExperimentResult& seq,
                           const exp::ExperimentResult& conc,
                           const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_DOUBLE_EQ(seq.final_rouge, conc.final_rouge);
  ASSERT_EQ(seq.final_per_set.size(), conc.final_per_set.size());
  for (std::size_t i = 0; i < seq.final_per_set.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq.final_per_set[i], conc.final_per_set[i]);
  }
  ASSERT_EQ(seq.curve.num_points(), conc.curve.num_points());
  for (std::size_t p = 0; p < seq.curve.num_points(); ++p) {
    EXPECT_EQ(seq.curve.seen()[p], conc.curve.seen()[p]);
    EXPECT_DOUBLE_EQ(seq.curve.rouge()[p], conc.curve.rouge()[p]);
  }
  EXPECT_EQ(seq.engine_stats.seen, conc.engine_stats.seen);
  EXPECT_EQ(seq.engine_stats.admitted_free, conc.engine_stats.admitted_free);
  EXPECT_EQ(seq.engine_stats.admitted_replacing,
            conc.engine_stats.admitted_replacing);
  EXPECT_EQ(seq.engine_stats.rejected, conc.engine_stats.rejected);
  EXPECT_EQ(seq.annotation_requests, conc.annotation_requests);
  EXPECT_EQ(seq.buffer.size, conc.buffer.size);
  EXPECT_EQ(seq.buffer.noise, conc.buffer.noise);
}

TEST_F(FleetSchedulerTest, BitIdenticalToSequentialAcrossThreadsAndShards) {
  auto base = concurrent(3);
  const exp::FleetResult reference = exp::run_fleet(base.fleet, "Ours");
  ASSERT_EQ(reference.devices.size(), 3u);

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (std::size_t shards : {1u, 4u}) {
      ConcurrentFleetConfig config = base;
      config.threads = threads;
      config.shards = shards;
      config.decode_batch = 8;
      const ConcurrentFleetResult result = run_concurrent_fleet(config);
      ASSERT_EQ(result.users.size(), reference.devices.size());
      ASSERT_EQ(result.stats.faults, 0u);
      for (std::size_t u = 0; u < result.users.size(); ++u) {
        expect_user_identical(
            reference.devices[u], result.users[u],
            "threads=" + std::to_string(threads) +
                " shards=" + std::to_string(shards) +
                " user=" + std::to_string(u));
      }
    }
  }
}

TEST_F(FleetSchedulerTest, EvictionReloadRoundTripMatchesAllResident) {
  auto all_resident = concurrent(3);
  all_resident.threads = 2;
  const ConcurrentFleetResult full = run_concurrent_fleet(all_resident);
  EXPECT_EQ(full.stats.cache.evictions, 0u);
  EXPECT_EQ(full.stats.cache.misses, 0u);

  auto evicting = concurrent(3);
  evicting.threads = 2;
  evicting.adapter_cache_capacity = 1;  // every swap spills someone
  const ConcurrentFleetResult tight = run_concurrent_fleet(evicting);
  EXPECT_GT(tight.stats.cache.evictions, 0u);
  EXPECT_GT(tight.stats.cache.misses, 0u);

  // Spill -> CRC-checked reload is exact: fp32 adapter values AND optimizer
  // moments survive, so results equal the never-evicted run bit for bit.
  ASSERT_EQ(full.users.size(), tight.users.size());
  for (std::size_t u = 0; u < full.users.size(); ++u) {
    expect_user_identical(full.users[u], tight.users[u],
                          "user=" + std::to_string(u));
  }
}

TEST_F(FleetSchedulerTest, MemoryBudgetDerivesCacheCapacity) {
  auto config = concurrent(3);
  config.threads = 1;
  // A budget barely above the shared base forces heavy spilling (capacity
  // clamps to 1) without changing any user's numbers.
  config.memory_budget_bytes = 1;
  const ConcurrentFleetResult result = run_concurrent_fleet(config);
  EXPECT_GT(result.stats.cache.evictions, 0u);
  EXPECT_GT(result.stats.ledger.adapter_bytes_each, 0u);
  EXPECT_GT(result.stats.ledger.base.total_bytes(), 0u);
  for (const auto& user : result.users) {
    EXPECT_EQ(user.engine_stats.seen, 10u);
  }
}

TEST_F(FleetSchedulerTest, StarvationCounterFiresForRiggedSlowUser) {
  auto config = concurrent(3);
  config.threads = 2;
  config.oversubscribe = true;  // two true OS lanes even on a 1-core host
  config.starvation_gap = 2;
  config.fleet.device_template.stream_size = 12;
  config.fleet.device_template.finetune_interval = 2;  // 6 rounds per user
  config.fleet.device_template.record_curve = false;
  // User 0 fine-tunes ~8x longer per chunk: while its chunk occupies one
  // lane, the other lane keeps advancing the fast users, so the rounds gap
  // at the wave boundary must reach the threshold.
  exp::ExperimentConfig slow = config.fleet.device_template;
  slow.epochs = 8;
  config.user_overrides[0] = slow;

  const ConcurrentFleetResult result = run_concurrent_fleet(config);
  EXPECT_GE(result.stats.starvation_events, 1u);
  EXPECT_GE(result.stats.max_rounds_behind, config.starvation_gap);
  // Starved, not stalled: every user still finishes all rounds.
  for (const auto& user : result.users) {
    EXPECT_EQ(user.engine_stats.seen, 12u);
  }
}

TEST_F(FleetSchedulerTest, SurvivesInjectedFaultsDuringConcurrentChunks) {
  auto config = concurrent(4);
  config.threads = 4;
  config.adapter_cache_capacity = 2;  // exercise spill I/O under faults too
  config.fleet.device_template.record_curve = false;

  util::fault::ScopedSchedule armed(
      util::fault::FaultSchedule::random(/*seed=*/0xF1EE7, /*num_events=*/24));
  const ConcurrentFleetResult result = run_concurrent_fleet(config);

  // Whatever the schedule hit, the run terminates and accounts coherently:
  // every user either finished their stream or was retired as faulted.
  ASSERT_EQ(result.users.size(), 4u);
  std::size_t completed = 0;
  for (const auto& user : result.users) {
    if (user.engine_stats.seen == 10u) ++completed;
  }
  EXPECT_EQ(completed + result.stats.faults, 4u);
  EXPECT_GE(result.stats.rounds, completed * 2);
}

TEST(FleetAdapterState, SpillRoundTripIsExact) {
  AdapterState state;
  state.opt_step_count = 42;
  AdapterState::Site site;
  site.a = tensor::Tensor(3, 2);
  site.b = tensor::Tensor(2, 4);
  site.m_a = tensor::Tensor(3, 2);
  site.v_a = tensor::Tensor(3, 2);
  for (std::size_t i = 0; i < site.a.size(); ++i) {
    site.a.data()[i] = 0.25f * static_cast<float>(i) - 1.0f;
  }
  for (std::size_t i = 0; i < site.b.size(); ++i) {
    site.b.data()[i] = -0.5f * static_cast<float>(i);
  }
  state.sites.push_back(site);

  const std::string path =
      "/tmp/odlp_fleet_state_" + std::to_string(::getpid()) + ".adapter";
  save_adapter_state(state, path);
  const AdapterState loaded = load_adapter_state(path);
  fs::remove(path);

  ASSERT_EQ(loaded.sites.size(), 1u);
  EXPECT_EQ(loaded.opt_step_count, 42);
  ASSERT_EQ(loaded.sites[0].a.size(), site.a.size());
  for (std::size_t i = 0; i < site.a.size(); ++i) {
    EXPECT_EQ(loaded.sites[0].a.data()[i], site.a.data()[i]);
  }
  ASSERT_EQ(loaded.sites[0].b.size(), site.b.size());
  for (std::size_t i = 0; i < site.b.size(); ++i) {
    EXPECT_EQ(loaded.sites[0].b.data()[i], site.b.data()[i]);
  }
  // Absent moments stay absent (fresh lazy-init on the next step).
  EXPECT_EQ(loaded.sites[0].m_b.size(), 0u);
  EXPECT_EQ(loaded.sites[0].v_b.size(), 0u);
}

TEST(FleetAdapterCache, LruEvictsLeastRecentlyReleased) {
  const std::string dir =
      "/tmp/odlp_fleet_cache_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto make_state = [](float fill) {
    AdapterState s;
    AdapterState::Site site;
    site.a = tensor::Tensor(2, 2);
    for (std::size_t i = 0; i < site.a.size(); ++i) site.a.data()[i] = fill;
    site.b = tensor::Tensor(2, 2);
    s.sites.push_back(site);
    return s;
  };

  AdapterCache cache(/*capacity=*/2, dir);
  cache.insert(0, make_state(0.0f));
  cache.insert(1, make_state(1.0f));
  cache.insert(2, make_state(2.0f));  // evicts user 0 (least recent)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().resident, 2u);

  // User 0 reloads from spill with its exact bytes.
  AdapterState reloaded = cache.acquire(0);
  EXPECT_EQ(cache.stats().misses, 1u);
  ASSERT_EQ(reloaded.sites.size(), 1u);
  EXPECT_EQ(reloaded.sites[0].a.data()[0], 0.0f);
  cache.release(0, std::move(reloaded));

  // Users 1 and 2 were resident all along.
  AdapterState hit = cache.acquire(2);
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.release(2, std::move(hit));
  EXPECT_LE(cache.stats().resident, 2u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace odlp::fleet
