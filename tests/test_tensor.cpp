#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace odlp::tensor {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.rows(), 0u);
  EXPECT_EQ(t.cols(), 0u);
}

TEST(Tensor, ConstructWithFill) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t.data()[i], 1.5f);
}

TEST(Tensor, ZerosAndOnes) {
  EXPECT_FLOAT_EQ(Tensor::zeros(2, 2).sum(), 0.0f);
  EXPECT_FLOAT_EQ(Tensor::ones(2, 2).sum(), 4.0f);
}

TEST(Tensor, FromRowMajorValues) {
  Tensor t = Tensor::from(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1);
  EXPECT_FLOAT_EQ(t.at(0, 1), 2);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3);
  EXPECT_FLOAT_EQ(t.at(1, 1), 4);
}

TEST(Tensor, FromRejectsWrongSize) {
  EXPECT_THROW(Tensor::from(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, AtReadsAndWrites) {
  Tensor t(3, 4);
  t.at(2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(2, 3), 7.0f);
  EXPECT_FLOAT_EQ(t.row(2)[3], 7.0f);
}

TEST(Tensor, PlusEquals) {
  Tensor a = Tensor::from(1, 3, {1, 2, 3});
  Tensor b = Tensor::from(1, 3, {10, 20, 30});
  a += b;
  EXPECT_FLOAT_EQ(a.at(0, 2), 33);
}

TEST(Tensor, MinusEquals) {
  Tensor a = Tensor::from(1, 2, {5, 5});
  a -= Tensor::from(1, 2, {2, 3});
  EXPECT_FLOAT_EQ(a.at(0, 0), 3);
  EXPECT_FLOAT_EQ(a.at(0, 1), 2);
}

TEST(Tensor, ScalarScale) {
  Tensor a = Tensor::from(1, 2, {2, -4});
  a *= 0.5f;
  EXPECT_FLOAT_EQ(a.at(0, 0), 1);
  EXPECT_FLOAT_EQ(a.at(0, 1), -2);
}

TEST(Tensor, AddScaled) {
  Tensor a = Tensor::from(1, 2, {1, 1});
  a.add_scaled(Tensor::from(1, 2, {2, 4}), 0.5f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 2);
  EXPECT_FLOAT_EQ(a.at(0, 1), 3);
}

TEST(Tensor, Norms) {
  Tensor t = Tensor::from(1, 2, {3, 4});
  EXPECT_FLOAT_EQ(t.l2_norm(), 5.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.0f);
  Tensor neg = Tensor::from(1, 2, {-7, 1});
  EXPECT_FLOAT_EQ(neg.abs_max(), 7.0f);
}

TEST(Tensor, SumAndMean) {
  Tensor t = Tensor::from(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.sum(), 10.0f);
  EXPECT_FLOAT_EQ(t.mean(), 2.5f);
  EXPECT_FLOAT_EQ(Tensor().mean(), 0.0f);
}

TEST(Tensor, SameShape) {
  EXPECT_TRUE(Tensor(2, 3).same_shape(Tensor(2, 3)));
  EXPECT_FALSE(Tensor(2, 3).same_shape(Tensor(3, 2)));
}

TEST(Tensor, FillAndZero) {
  Tensor t(2, 2, 9.0f);
  t.zero();
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
  t.fill(2.0f);
  EXPECT_FLOAT_EQ(t.sum(), 8.0f);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor(3, 5).shape_string(), "[3, 5]");
}

}  // namespace
}  // namespace odlp::tensor
