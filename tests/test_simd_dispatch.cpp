// Runtime SIMD dispatch matrix (DESIGN.md §12): every level available on
// this host must produce bit-identical GEMM results — fp32 across levels
// and int8 against qmatmul_reference — and kernel_build_info() must report
// the forced level. ODLP_SIMD-style spellings parse (and only they do);
// requests above the host capability clamp down, never up.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/simd.h"
#include "util/rng.h"

#ifdef ODLP_INT8
#include "tensor/qops.h"
#include "tensor/qtensor.h"
#endif

namespace odlp::tensor {
namespace {

// Every level at or below the host's capability; at minimum kScalar.
std::vector<SimdLevel> host_levels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (SimdLevel l : {SimdLevel::kSse2, SimdLevel::kAvx2, SimdLevel::kVnni}) {
    if (static_cast<int>(l) <= static_cast<int>(detected_simd_level())) {
      levels.push_back(l);
    }
  }
  return levels;
}

// Restores the entry level after each test so the forced level never leaks
// into the rest of the suite.
struct ScopedLevel {
  SimdLevel saved = active_simd_level();
  ~ScopedLevel() { set_simd_level(saved); }
};

Tensor random_tensor(std::size_t r, std::size_t c, util::Rng& rng) {
  Tensor t(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      t.at(i, j) = static_cast<float>(rng.uniform() * 2.0 - 1.0);
    }
  }
  return t;
}

// Shapes chosen to cross every kernel path boundary: m=1 GEMV, partial and
// full row quads, column-tile remainders, and k not a multiple of the quant
// block or the k-quad step.
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 32, 16}, {1, 33, 17}, {2, 48, 24}, {4, 64, 32},
    {5, 70, 33}, {8, 96, 48}, {3, 31, 64},
};

TEST(SimdDispatch, Fp32BitIdenticalAcrossLevels) {
  ScopedLevel guard;
  util::Rng rng(404);
  for (const Shape& s : kShapes) {
    const Tensor a = random_tensor(s.m, s.k, rng);
    const Tensor b = random_tensor(s.k, s.n, rng);
    ASSERT_EQ(set_simd_level(SimdLevel::kScalar), SimdLevel::kScalar);
    const Tensor base = matmul(a, b);
    for (SimdLevel level : host_levels()) {
      set_simd_level(level);
      const Tensor got = matmul(a, b);
      ASSERT_EQ(got.rows(), base.rows());
      ASSERT_EQ(got.cols(), base.cols());
      EXPECT_EQ(std::memcmp(got.data(), base.data(),
                            got.size() * sizeof(float)),
                0)
          << simd_level_name(level) << " " << s.m << "x" << s.k << "x" << s.n;
    }
  }
}

#ifdef ODLP_INT8
TEST(SimdDispatch, Int8BitIdenticalToReferenceAtEveryLevel) {
  ScopedLevel guard;
  util::Rng rng(405);
  for (const Shape& s : kShapes) {
    const Tensor x = random_tensor(s.m, s.k, rng);
    const Tensor w = random_tensor(s.k, s.n, rng);
    const QuantizedTensor qw = QuantizedTensor::quantize(w);
    const Tensor want = qmatmul_reference(x, qw);
    for (SimdLevel level : host_levels()) {
      set_simd_level(level);
      const Tensor got = qmatmul(x, qw);
      ASSERT_EQ(got.size(), want.size());
      EXPECT_EQ(std::memcmp(got.data(), want.data(),
                            got.size() * sizeof(float)),
                0)
          << simd_level_name(level) << " " << s.m << "x" << s.k << "x" << s.n;
    }
  }
}
#endif

TEST(SimdDispatch, BuildInfoReportsForcedLevel) {
  ScopedLevel guard;
  for (SimdLevel level : host_levels()) {
    ASSERT_EQ(set_simd_level(level), level);
    const KernelBuildInfo info = kernel_build_info();
    EXPECT_STREQ(info.simd_level, simd_level_name(level));
    if (level >= SimdLevel::kAvx2) {
      EXPECT_STREQ(info.variant, "tiled-4x8-packed-avx2");
    } else {
      EXPECT_STREQ(info.variant, "tiled-4x8-packed");
    }
#ifdef ODLP_INT8
    switch (level) {
      case SimdLevel::kVnni:
        EXPECT_STREQ(info.int8_variant, "q8-4x16-dpbusd-vnni");
        break;
      case SimdLevel::kAvx2:
        EXPECT_STREQ(info.int8_variant, "q8-4x16-maddubs-avx2");
        break;
      case SimdLevel::kSse2:
        EXPECT_STREQ(info.int8_variant, "q8-4x16-madd-sse2");
        break;
      case SimdLevel::kScalar:
        EXPECT_STREQ(info.int8_variant, "q8-4x16-scalar");
        break;
    }
    EXPECT_EQ(info.int8_block, kQuantBlock);
#else
    EXPECT_STREQ(info.int8_variant, "disabled");
#endif
  }
}

TEST(SimdDispatch, ParseAcceptsExactSpellingsOnly) {
  SimdLevel out = SimdLevel::kAvx2;
  EXPECT_TRUE(parse_simd_level("scalar", out));
  EXPECT_EQ(out, SimdLevel::kScalar);
  EXPECT_TRUE(parse_simd_level("sse2", out));
  EXPECT_EQ(out, SimdLevel::kSse2);
  EXPECT_TRUE(parse_simd_level("avx2", out));
  EXPECT_EQ(out, SimdLevel::kAvx2);
  EXPECT_TRUE(parse_simd_level("vnni", out));
  EXPECT_EQ(out, SimdLevel::kVnni);
  out = SimdLevel::kSse2;
  EXPECT_FALSE(parse_simd_level("AVX2", out));
  EXPECT_FALSE(parse_simd_level("avx512", out));
  EXPECT_FALSE(parse_simd_level("", out));
  EXPECT_FALSE(parse_simd_level(nullptr, out));
  EXPECT_EQ(out, SimdLevel::kSse2);  // untouched on failure
}

TEST(SimdDispatch, SetLevelClampsToHostCapability) {
  ScopedLevel guard;
  const SimdLevel host = detected_simd_level();
  // Forcing above the host's capability is clamped down, never honored.
  EXPECT_EQ(set_simd_level(SimdLevel::kVnni) <= host, true);
  EXPECT_EQ(set_simd_level(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(active_simd_level(), SimdLevel::kScalar);
}

}  // namespace
}  // namespace odlp::tensor
