// Crash-safe checkpointing: CRC32, atomic replacement, fault injection, v2
// checksummed formats (+ legacy v1 load), and CheckpointManager recovery.
//
// The fault matrix required by the durability story: round-trips,
// truncation at every byte boundary, single-bit flips across
// header/payload/footer, a crash between one generation's component files,
// and legacy pre-checksum files — every scenario must either restore the
// newest fully-valid state or raise a typed error; none may crash or
// silently accept corrupt state.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "core/buffer_io.h"
#include "core/checkpoint.h"
#include "llm/minillm.h"
#include "text/vocab_io.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/fault.h"
#include "util/log.h"

namespace fs = std::filesystem;

namespace odlp {
namespace {

// --- helpers -------------------------------------------------------------

std::string temp_path(const std::string& name) { return "/tmp/" + name; }

std::vector<unsigned char> slurp(const std::string& path) {
  return util::read_file(path);
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

core::BufferEntry sample_entry(std::size_t i) {
  core::BufferEntry e;
  e.set.question = "question " + std::to_string(i);
  e.set.answer = "answer " + std::to_string(i);
  e.set.reference = "reference " + std::to_string(i);
  e.set.true_domain = static_cast<int>(i % 3);
  e.set.stream_position = 100 + i;
  e.inserted_at = 10 + i;
  e.annotated = true;
  e.dominant_domain = i % 3;
  e.scores = {0.5, 0.25, 0.75};
  e.embedding = tensor::Tensor(1, 8, static_cast<float>(i) + 0.5f);
  return e;
}

core::DataBuffer sample_buffer(std::size_t entries = 3,
                               std::size_t capacity = 8) {
  core::DataBuffer buf(capacity);
  for (std::size_t i = 0; i < entries; ++i) buf.add(sample_entry(i));
  return buf;
}

llm::ModelConfig tiny_model_config() {
  llm::ModelConfig mc;
  mc.vocab_size = 32;
  mc.dim = 8;
  mc.heads = 2;
  mc.layers = 1;
  mc.ff_hidden = 16;
  mc.max_seq_len = 16;
  return mc;
}

// Raw little-endian writer for hand-building legacy (v1) files.
struct RawWriter {
  std::vector<unsigned char> bytes;
  template <typename T>
  void pod(const T& v) {
    const auto* p = reinterpret_cast<const unsigned char*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof(T));
  }
  void str(const std::string& s) {
    pod<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    bytes.insert(bytes.end(), s.begin(), s.end());
  }
};

// A legacy v1 buffer file: same body as v2 but version 1 and no footer.
std::vector<unsigned char> legacy_buffer_file_bytes() {
  RawWriter w;
  w.pod<std::uint32_t>(0x4642444fu);  // "ODBF"
  w.pod<std::uint32_t>(1u);           // legacy version
  w.pod<std::uint64_t>(4u);           // capacity
  w.pod<std::uint64_t>(1u);           // count
  w.str("legacy question");
  w.str("legacy answer");
  w.str("legacy reference");
  w.pod<std::int32_t>(1);
  w.pod<std::int32_t>(0);
  w.pod<std::uint8_t>(0);
  w.pod<std::uint64_t>(7u);    // stream_position
  w.pod<std::uint64_t>(3u);    // inserted_at
  w.pod<std::uint8_t>(1);      // annotated
  w.pod<std::int64_t>(-1);     // dominant_domain: none
  w.pod<double>(0.1);
  w.pod<double>(0.2);
  w.pod<double>(0.3);
  w.pod<std::uint64_t>(4u);    // embedding cols
  for (int i = 0; i < 4; ++i) w.pod<float>(1.25f * static_cast<float>(i));
  return w.bytes;
}

// --- CRC32 ---------------------------------------------------------------

TEST(Crc32, MatchesKnownVector) {
  const char* s = "123456789";
  EXPECT_EQ(util::crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  util::Crc32 acc;
  acc.update(data.data(), 10);
  acc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(acc.value(), util::crc32(data.data(), data.size()));
  EXPECT_EQ(util::crc32(data.data(), data.size(), 0), acc.value());
}

// --- atomic replacement --------------------------------------------------

TEST(AtomicFile, CommitReplacesDestination) {
  const std::string path = temp_path("odlp_atomic_commit.bin");
  spit(path, {'o', 'l', 'd'});
  {
    util::AtomicFileWriter out(path);
    out.write("new!", 4);
    out.commit();
  }
  const auto bytes = slurp(path);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "new!");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicFile, UncommittedWriterLeavesDestinationIntact) {
  const std::string path = temp_path("odlp_atomic_uncommitted.bin");
  spit(path, {'o', 'l', 'd'});
  {
    util::AtomicFileWriter out(path);
    out.write("half-written", 12);
    // no commit: simulated crash before rename
  }
  const auto bytes = slurp(path);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "old");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicFile, InjectedWriteFaultLeavesDestinationIntact) {
  const std::string path = temp_path("odlp_atomic_fault.bin");
  spit(path, {'o', 'l', 'd'});
  util::fault::FaultPlan plan;
  plan.path_substring = "odlp_atomic_fault";
  plan.fail_on_write = 1;
  {
    util::fault::ScopedFault fault(plan);
    auto torn_write = [&] {
      util::AtomicFileWriter out(path);
      out.write("first", 5);
      out.write("second", 6);  // dies here
      out.commit();
    };
    EXPECT_THROW(torn_write(), util::fault::InjectedFault);
  }
  const auto bytes = slurp(path);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "old");
  std::remove(path.c_str());
}

TEST(AtomicFile, CommitFaultCorruptionIsDetectedByFooter) {
  const std::string path = temp_path("odlp_atomic_bitrot.bin");
  util::fault::FaultPlan plan;
  plan.path_substring = "odlp_atomic_bitrot";
  plan.flip_bit = 5 * 8 + 2;  // byte 5, bit 2
  {
    util::fault::ScopedFault fault(plan);
    util::AtomicFileWriter out(path);
    out.write("payload payload payload", 23);
    out.write_footer();
    out.commit();
  }
  const auto bytes = slurp(path);
  EXPECT_THROW(util::check_footer(bytes, "test"), util::CorruptionError);
  std::remove(path.c_str());
}

// --- buffer format v2 ----------------------------------------------------

TEST(BufferIoV2, TruncationAtEveryByteFailsCleanly) {
  const std::string path = temp_path("odlp_buf_trunc_matrix.bin");
  core::save_buffer(sample_buffer(), path);
  const auto full = slurp(path);
  ASSERT_GT(full.size(), 16u);
  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    spit(path, std::vector<unsigned char>(full.begin(), full.begin() + keep));
    EXPECT_THROW(core::load_buffer(path), std::runtime_error)
        << "truncation to " << keep << " bytes was silently accepted";
  }
  std::remove(path.c_str());
}

TEST(BufferIoV2, SingleBitFlipAnywhereFailsCleanly) {
  const std::string path = temp_path("odlp_buf_flip_matrix.bin");
  core::save_buffer(sample_buffer(), path);
  const auto full = slurp(path);
  // Header, payload, and footer bytes all flip; stride keeps runtime low
  // while still covering every region (footer = last 8 bytes).
  for (std::size_t byte = 0; byte < full.size();
       byte += (byte < 16 || byte + 9 > full.size()) ? 1 : 7) {
    auto corrupt = full;
    corrupt[byte] ^= 0x10;
    spit(path, corrupt);
    EXPECT_THROW(core::load_buffer(path), std::runtime_error)
        << "bit flip at byte " << byte << " was silently accepted";
  }
  std::remove(path.c_str());
}

TEST(BufferIoV2, TrailingGarbageFailsCleanly) {
  const std::string path = temp_path("odlp_buf_trailing.bin");
  core::save_buffer(sample_buffer(), path);
  auto bytes = slurp(path);
  bytes.push_back(0xAB);
  spit(path, bytes);
  EXPECT_THROW(core::load_buffer(path), util::CorruptionError);
  std::remove(path.c_str());
}

TEST(BufferIoLegacy, V1FileStillLoads) {
  const std::string path = temp_path("odlp_buf_legacy.bin");
  spit(path, legacy_buffer_file_bytes());
  const core::DataBuffer buf = core::load_buffer(path);
  EXPECT_EQ(buf.capacity(), 4u);
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.entry(0).set.question, "legacy question");
  EXPECT_FALSE(buf.entry(0).dominant_domain.has_value());
  EXPECT_EQ(buf.entry(0).embedding.cols(), 4u);
  EXPECT_FLOAT_EQ(buf.entry(0).embedding.data()[1], 1.25f);
  std::remove(path.c_str());
}

TEST(BufferIoLegacy, CountBeyondCapacityRejected) {
  const std::string path = temp_path("odlp_buf_badcount.bin");
  RawWriter w;
  w.pod<std::uint32_t>(0x4642444fu);
  w.pod<std::uint32_t>(1u);
  w.pod<std::uint64_t>(2u);   // capacity
  w.pod<std::uint64_t>(50u);  // count > capacity
  spit(path, w.bytes);
  EXPECT_THROW(core::load_buffer(path), util::CorruptionError);
  std::remove(path.c_str());
}

TEST(BufferIoLegacy, CorruptLengthPrefixFailsWithoutHugeAllocation) {
  const std::string path = temp_path("odlp_buf_badlen.bin");
  RawWriter w;
  w.pod<std::uint32_t>(0x4642444fu);
  w.pod<std::uint32_t>(1u);
  w.pod<std::uint64_t>(4u);
  w.pod<std::uint64_t>(1u);
  w.pod<std::uint32_t>(0xFFFFFFF0u);  // absurd question length
  spit(path, w.bytes);
  // Must be a clean typed error, not bad_alloc from trusting the prefix.
  EXPECT_THROW(core::load_buffer(path), util::CorruptionError);
  std::remove(path.c_str());
}

TEST(BufferIoLegacy, EmbeddingWiderThanFileRejected) {
  const std::string path = temp_path("odlp_buf_badcols.bin");
  auto bytes = legacy_buffer_file_bytes();
  // The embedding-cols u64 sits 20 bytes from the end (4 floats follow).
  const std::size_t cols_at = bytes.size() - 4 * sizeof(float) - 8;
  bytes[cols_at] = 0xFF;  // 4 -> huge
  bytes[cols_at + 1] = 0xFF;
  spit(path, bytes);
  EXPECT_THROW(core::load_buffer(path), util::CorruptionError);
  std::remove(path.c_str());
}

// --- vocab format --------------------------------------------------------

TEST(VocabIoV2, ChecksumTrailerRoundTripsAndDetectsCorruption) {
  const std::string path = temp_path("odlp_vocab_v2.txt");
  text::Vocab vocab;
  vocab.add("dose");
  vocab.add("vial");
  text::save_vocab(vocab, path);

  const text::Vocab loaded = text::load_vocab(path);
  EXPECT_EQ(loaded.id("vial"), vocab.id("vial"));

  // Corrupt one word byte: the trailer CRC must catch it.
  auto bytes = slurp(path);
  const std::string content(bytes.begin(), bytes.end());
  const std::size_t pos = content.find("dose");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] = 'x';
  spit(path, bytes);
  EXPECT_THROW(text::load_vocab(path), util::CorruptionError);
  std::remove(path.c_str());
}

TEST(VocabIoLegacy, FileWithoutTrailerStillLoads) {
  const std::string path = temp_path("odlp_vocab_legacy.txt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("<pad>\n<unk>\n<bos>\n<eos>\n<sep>\nlegacyword\n", f);
  std::fclose(f);
  const text::Vocab loaded = text::load_vocab(path);
  EXPECT_TRUE(loaded.contains("legacyword"));
  std::remove(path.c_str());
}

// --- model format --------------------------------------------------------

TEST(ModelIoV2, CorruptionDetectedAndModelLeftUntouched) {
  const std::string path = temp_path("odlp_model_v2.bin");
  llm::MiniLlm model(tiny_model_config(), 42);
  model.save(path);

  auto bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0x01;  // payload bit flip
  spit(path, bytes);

  llm::MiniLlm other(tiny_model_config(), 43);
  const float before = other.parameters()[0]->value.data()[0];
  EXPECT_THROW(other.load(path), util::CorruptionError);
  EXPECT_FLOAT_EQ(other.parameters()[0]->value.data()[0], before);

  // Truncation is also typed, never UB.
  spit(path, std::vector<unsigned char>(bytes.begin(),
                                        bytes.begin() + bytes.size() / 3));
  EXPECT_THROW(other.load(path), util::CorruptionError);
  std::remove(path.c_str());
}

TEST(ModelIoV2, RoundTripRestoresParameters) {
  const std::string path = temp_path("odlp_model_rt.bin");
  llm::MiniLlm model(tiny_model_config(), 42);
  model.save(path);
  llm::MiniLlm other(tiny_model_config(), 1234);
  other.load(path);
  const auto a = model.parameters();
  const auto b = other.parameters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i]->value.size(), b[i]->value.size());
    for (std::size_t j = 0; j < a[i]->value.size(); ++j) {
      ASSERT_FLOAT_EQ(a[i]->value.data()[j], b[i]->value.data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(ModelIoLegacy, PreChecksumFileStillLoads) {
  const std::string path = temp_path("odlp_model_legacy.bin");
  llm::MiniLlm model(tiny_model_config(), 42);
  // Hand-write the v1 layout (old magic, no version, no footer) from the
  // live parameter list.
  RawWriter w;
  w.pod<std::uint32_t>(0x4f444c50u);  // legacy "ODLP"
  const auto params = model.parameters();
  w.pod<std::uint64_t>(params.size());
  for (const auto* p : params) {
    w.pod<std::uint64_t>(p->value.rows());
    w.pod<std::uint64_t>(p->value.cols());
    for (std::size_t j = 0; j < p->value.size(); ++j) {
      w.pod<float>(p->value.data()[j]);
    }
  }
  spit(path, w.bytes);

  llm::MiniLlm other(tiny_model_config(), 99);
  other.load(path);
  EXPECT_FLOAT_EQ(other.parameters()[0]->value.data()[0],
                  model.parameters()[0]->value.data()[0]);
  std::remove(path.c_str());
}

// --- CheckpointManager ---------------------------------------------------

struct CheckpointFixture : ::testing::Test {
  std::string dir;
  llm::MiniLlm model{tiny_model_config(), 42};
  text::Vocab vocab;

  void SetUp() override {
    // Per-test directory: ctest runs gtest cases as separate parallel
    // processes, so a shared path would let one test's SetUp wipe another's
    // live checkpoint directory.
    dir = std::string("/tmp/odlp_ckpt_test_") +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir);
    vocab.add("alpha");
    vocab.add("beta");
    vocab.freeze();
    // The recovery tests deliberately corrupt generations; silence the
    // expected log_warn chatter.
    util::set_log_level(util::LogLevel::kError);
  }
  void TearDown() override {
    fs::remove_all(dir);
    util::set_log_level(util::LogLevel::kInfo);
  }

  core::EngineStats stats_with_seen(std::size_t seen) {
    core::EngineStats s;
    s.seen = seen;
    s.quarantined = 2;
    s.last_train_loss = 1.5;
    return s;
  }
};

TEST_F(CheckpointFixture, SaveRestoreRoundTrip) {
  core::CheckpointManager ckpt(dir, 3);
  const auto gen = ckpt.save(model, sample_buffer(), vocab, stats_with_seen(60));
  EXPECT_EQ(gen, 1u);
  EXPECT_GT(ckpt.generation_bytes(gen), 0u);

  llm::MiniLlm fresh(tiny_model_config(), 7);
  const auto restored = ckpt.restore(fresh);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->generation, 1u);
  EXPECT_EQ(restored->buffer.size(), 3u);
  EXPECT_EQ(restored->stats.seen, 60u);
  EXPECT_EQ(restored->stats.quarantined, 2u);
  EXPECT_TRUE(restored->vocab.contains("beta"));
  EXPECT_FLOAT_EQ(fresh.parameters()[0]->value.data()[0],
                  model.parameters()[0]->value.data()[0]);
}

TEST_F(CheckpointFixture, PruneKeepsNewestK) {
  core::CheckpointManager ckpt(dir, 2);
  for (int i = 0; i < 4; ++i) {
    ckpt.save(model, sample_buffer(), vocab, stats_with_seen(i));
  }
  const auto gens = ckpt.generations();
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_EQ(gens[0], 3u);
  EXPECT_EQ(gens[1], 4u);
}

TEST_F(CheckpointFixture, BitFlippedGenerationIsSkipped) {
  core::CheckpointManager ckpt(dir, 3);
  ckpt.save(model, sample_buffer(2), vocab, stats_with_seen(10));
  ckpt.save(model, sample_buffer(3), vocab, stats_with_seen(20));

  // Bit-rot the newest generation's buffer file.
  const std::string victim = dir + "/gen-000002/buffer.bin";
  auto bytes = slurp(victim);
  bytes[bytes.size() / 2] ^= 0x40;
  spit(victim, bytes);

  llm::MiniLlm fresh(tiny_model_config(), 7);
  const auto restored = ckpt.restore(fresh);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->generation, 1u);
  EXPECT_EQ(restored->stats.seen, 10u);
}

TEST_F(CheckpointFixture, TruncatedGenerationIsSkipped) {
  core::CheckpointManager ckpt(dir, 3);
  ckpt.save(model, sample_buffer(), vocab, stats_with_seen(10));
  ckpt.save(model, sample_buffer(), vocab, stats_with_seen(20));
  const std::string victim = dir + "/gen-000002/model.bin";
  const auto bytes = slurp(victim);
  spit(victim, std::vector<unsigned char>(bytes.begin(),
                                          bytes.begin() + bytes.size() / 2));
  llm::MiniLlm fresh(tiny_model_config(), 7);
  const auto restored = ckpt.restore(fresh);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->generation, 1u);
}

TEST_F(CheckpointFixture, CrashBetweenComponentFilesRollsBack) {
  core::CheckpointManager ckpt(dir, 3);
  ckpt.save(model, sample_buffer(), vocab, stats_with_seen(10));

  // Power loss while writing generation 2's buffer file: model.bin was
  // already committed, buffer.bin dies mid-write, the manifest is never
  // written — the generation must not become a restore target.
  util::fault::FaultPlan plan;
  plan.path_substring = "buffer.bin";
  plan.fail_on_write = 2;
  {
    util::fault::ScopedFault fault(plan);
    EXPECT_THROW(
        ckpt.save(model, sample_buffer(), vocab, stats_with_seen(20)),
        util::fault::InjectedFault);
  }
  EXPECT_TRUE(fs::exists(dir + "/gen-000002/model.bin"));
  EXPECT_FALSE(fs::exists(dir + "/gen-000002/MANIFEST"));

  llm::MiniLlm fresh(tiny_model_config(), 7);
  const auto restored = ckpt.restore(fresh);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->generation, 1u);
  EXPECT_EQ(restored->stats.seen, 10u);

  // The next save after the crash still advances the generation counter and
  // becomes the restore target.
  const auto gen3 = ckpt.save(model, sample_buffer(), vocab,
                              stats_with_seen(30));
  EXPECT_EQ(gen3, 3u);
  const auto again = ckpt.restore(fresh);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->generation, 3u);
}

TEST_F(CheckpointFixture, TornCommitViaTruncateFaultIsSkipped) {
  core::CheckpointManager ckpt(dir, 3);
  ckpt.save(model, sample_buffer(), vocab, stats_with_seen(10));
  // Generation 2's stats file loses its tail *after* the rename (torn
  // sector persisted across power loss); the manifest CRC check catches it.
  util::fault::FaultPlan plan;
  plan.path_substring = "stats.bin";
  plan.truncate_at = 10;
  std::uint64_t gen2 = 0;
  {
    util::fault::ScopedFault fault(plan);
    // The manifest is built from the already-truncated file contents only
    // if written afterwards — but save() reads files back when building the
    // manifest, so corrupt the file after the full save instead.
    gen2 = ckpt.save(model, sample_buffer(), vocab, stats_with_seen(20));
  }
  // truncate fires on commit of stats.bin, *before* the manifest records
  // sizes — so the manifest stored the truncated reality and generation 2
  // still verifies... unless loading the stats file fails. restore() must
  // then fall back to generation 1 via its parse-failure path.
  llm::MiniLlm fresh(tiny_model_config(), 7);
  const auto restored = ckpt.restore(fresh);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->generation, 1u);
  (void)gen2;
}

TEST_F(CheckpointFixture, EmptyDirectoryRestoresNothing) {
  core::CheckpointManager ckpt(dir, 3);
  llm::MiniLlm fresh(tiny_model_config(), 7);
  EXPECT_FALSE(ckpt.newest_valid().has_value());
  EXPECT_FALSE(ckpt.restore(fresh).has_value());
}

}  // namespace
}  // namespace odlp
