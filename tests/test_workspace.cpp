// Workspace arena semantics and the allocation-free steady state of the
// forward/backward path (DESIGN.md §8).
#include <gtest/gtest.h>

#include "llm/decode_session.h"
#include "llm/minillm.h"
#include "nn/loss.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace odlp {
namespace {

TEST(Workspace, AcquireShapesAndSlotStability) {
  tensor::Workspace ws;
  tensor::Tensor& a = ws.acquire(3, 5);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 5u);
  a.fill(7.0f);
  // Acquiring more slots must not invalidate earlier references (slots are
  // stable unique_ptrs, not elements of a reallocating vector).
  for (int i = 0; i < 64; ++i) ws.acquire(8, 8);
  EXPECT_EQ(a.at(2, 4), 7.0f);
  EXPECT_EQ(ws.slots_in_use(), 65u);
}

TEST(Workspace, ResetRecyclesSlotsWithoutAllocating) {
  tensor::Workspace ws;
  float* first = ws.acquire(16, 16).data();
  ws.acquire(4, 4);
  ws.reset();
  EXPECT_EQ(ws.slots_in_use(), 0u);
  EXPECT_EQ(ws.pool_slots(), 2u);
  // Same acquisition order and shapes: the warmed pool serves the slots
  // with zero heap traffic.
  const std::uint64_t before = tensor::allocation_count();
  float* again = ws.acquire(16, 16).data();
  ws.acquire(4, 4);
  EXPECT_EQ(first, again);
  EXPECT_EQ(tensor::allocation_count(), before);
}

TEST(Workspace, GrowingAShrunkSlotMayReallocButKeepsShape) {
  tensor::Workspace ws;
  ws.acquire(2, 2);
  ws.reset();
  tensor::Tensor& big = ws.acquire(32, 32);  // same slot, larger storage
  EXPECT_EQ(big.rows(), 32u);
  EXPECT_EQ(big.cols(), 32u);
  ws.reset();
  // Shrinking reuses the grown capacity: no allocation.
  const std::uint64_t before = tensor::allocation_count();
  tensor::Tensor& small = ws.acquire(2, 2);
  EXPECT_EQ(small.rows(), 2u);
  EXPECT_EQ(tensor::allocation_count(), before);
}

TEST(Workspace, EnterWithNullResetsScratchEnterWithArenaDoesNot) {
  tensor::Workspace ws;
  ws.acquire(1, 1);
  tensor::Workspace& same = tensor::Workspace::enter(&ws);
  EXPECT_EQ(&same, &ws);
  EXPECT_EQ(ws.slots_in_use(), 1u);  // nested entry must not reset

  tensor::Workspace& scratch = tensor::Workspace::enter(nullptr);
  scratch.acquire(1, 1);
  EXPECT_EQ(tensor::Workspace::enter(nullptr).slots_in_use(), 0u);
}

llm::ModelConfig tiny_config() {
  llm::ModelConfig mc;
  mc.vocab_size = 16;
  mc.dim = 8;
  mc.heads = 2;
  mc.layers = 2;
  mc.ff_hidden = 16;
  mc.max_seq_len = 16;
  return mc;
}

TEST(Workspace, TrainingStepIsAllocationFreeAtSteadyState) {
  // After a warm-up step over the same sequence length, a full
  // forward + loss + backward round trip must not touch the heap: the model
  // workspace, module caches, and the reused CrossEntropyResult all serve
  // from retained storage.
  llm::MiniLlm model(tiny_config(), 11);
  const std::vector<int> ids = {2, 5, 6, 7, 9, 4};
  std::vector<int> targets = {5, 6, 7, 9, 4, 3};
  nn::CrossEntropyResult ce;
  auto step = [&] {
    tensor::Tensor& logits = model.forward_shared(ids, /*training=*/true);
    nn::cross_entropy_into(logits, targets, ce);
    model.backward(ce.dlogits);
  };
  step();  // warm-up: pools grow to the step's high-water mark
  step();  // second pass settles any lazily grown caches
  const std::uint64_t before = tensor::allocation_count();
  step();
  EXPECT_EQ(tensor::allocation_count(), before)
      << "steady-state training step allocated tensor memory";
}

TEST(Workspace, DecodeStepIsAllocationFreeAtSteadyState) {
  llm::MiniLlm model(tiny_config(), 12);
  llm::DecodeSession session(model);
  session.step(2);  // warm-up primes the model workspace for [1, dim] shapes
  session.step(5);
  const std::uint64_t before = tensor::allocation_count();
  session.step(6);
  session.step(7);
  EXPECT_EQ(tensor::allocation_count(), before)
      << "steady-state decode step allocated tensor memory";
}

TEST(Workspace, ForwardSharedResultValidUntilNextModelCall) {
  llm::MiniLlm model(tiny_config(), 13);
  tensor::Tensor& logits = model.forward_shared({2, 5, 6}, /*training=*/false);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), tiny_config().vocab_size);
  const tensor::Tensor copy = logits;  // copy out to keep across calls
  model.forward_shared({2, 5, 6}, /*training=*/false);
  // The copy is stable; the reference now aliases the new call's slot.
  EXPECT_TRUE(copy.same_shape(logits));
}

}  // namespace
}  // namespace odlp
