// Observability v2 (DESIGN.md §15): scoped metrics cardinality and
// concurrency, OBSF metrics-journal round-trip + fault matrix, concurrent
// binary-trace flush, sampling profiler, and SLO burn-rate alerting wired
// into the resource governor. Own binary with the "obs2" ctest label.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exp/fleet.h"
#include "io/obsf.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/scope.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "resil/governor.h"
#include "util/atomic_file.h"
#include "util/stopwatch.h"

namespace odlp {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return "/tmp/" + name + "." + std::to_string(::getpid());
}

std::vector<unsigned char> slurp(const std::string& path) {
  return util::read_file(path);
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

// --- scoped metrics: cardinality policy ---

TEST(ScopedCardinality, DemotionFoldsIntoOtherAndConservesTotals) {
  obs::ScopeTable table(4);  // slot 0 = other, 3 label slots
  obs::ScopedCounter c(table, "t2.demote.counter");

  const auto ha = table.acquire("user=a");
  const auto hb = table.acquire("user=b");
  const auto hc = table.acquire("user=c");
  c.inc(ha, 5);
  c.inc(hb, 7);
  c.inc(hc, 9);
  EXPECT_EQ(table.occupancy(), 3u);
  EXPECT_EQ(c.total(), 21u);
  EXPECT_EQ(table.demotions(), 0u);

  // Table is full: acquiring a 4th label demotes the least-recently-acquired
  // one (user=a). Its 5 must fold into `other` — totals conserved.
  const auto hd = table.acquire("user=d");
  EXPECT_EQ(table.demotions(), 1u);
  EXPECT_EQ(table.occupancy(), 3u);
  EXPECT_EQ(c.total(), 21u);
  EXPECT_EQ(c.value(0), 5u);  // user=a's count, now under `other`
  EXPECT_EQ(table.label(0), "other");

  // The stale handle resolves to `other`; the recycled slot starts at zero.
  EXPECT_EQ(table.resolve(ha), 0u);
  c.inc(ha);
  EXPECT_EQ(c.value(0), 6u);
  EXPECT_EQ(c.value(table.resolve(hd)), 0u);
  c.inc(hd, 3);
  EXPECT_EQ(c.value(table.resolve(hd)), 3u);
  EXPECT_EQ(c.total(), 25u);

  // Re-acquiring a live label reuses its slot and value.
  const auto hb2 = table.acquire("user=b");
  EXPECT_EQ(table.resolve(hb2), table.resolve(hb));
  EXPECT_EQ(c.value(table.resolve(hb2)), 7u);
}

TEST(ScopedCardinality, OccupancyBoundedUnderLabelFlood) {
  obs::ScopeTable table(8);
  obs::ScopedCounter c(table, "t2.flood.counter");
  obs::ScopedHistogram h(table, "t2.flood.hist", {1.0, 10.0, 100.0});

  for (int i = 0; i < 100; ++i) {
    const auto handle = table.acquire("user=" + std::to_string(i));
    c.inc(handle);
    h.record(handle, 5.0);
  }
  EXPECT_LE(table.occupancy(), 7u);
  EXPECT_EQ(table.demotions(), 100u - 7u);
  EXPECT_EQ(c.total(), 100u);  // demotion never loses a count

  // The histogram's grand total is conserved too: live slots + other.
  std::uint64_t hist_total = 0;
  for (std::uint32_t s = 0; s < table.slots(); ++s) {
    hist_total += h.at(s).count();
  }
  EXPECT_EQ(hist_total, 100u);
}

TEST(ScopedConcurrency, PerScopeCountsExact) {
  obs::ScopeTable table(16);
  obs::ScopedCounter c(table, "t2.conc.counter");
  obs::ScopedHistogram h(table, "t2.conc.hist", {1.0, 4.0, 16.0});

  constexpr int kThreads = 6;
  constexpr std::uint64_t kIncs = 20000;
  constexpr std::uint64_t kRecords = 2000;
  std::vector<obs::ScopeTable::Handle> handles;
  for (int t = 0; t < kThreads; ++t) {
    handles.push_back(table.acquire("user=" + std::to_string(t)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIncs; ++i) c.inc(handles[t]);
      for (std::uint64_t i = 0; i < kRecords; ++i) {
        h.record(handles[t], static_cast<double>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();

  // No demotions ran, so every per-scope count is exact.
  EXPECT_EQ(table.demotions(), 0u);
  for (int t = 0; t < kThreads; ++t) {
    const std::uint32_t slot = table.resolve(handles[t]);
    EXPECT_NE(slot, 0u);
    EXPECT_EQ(c.value(slot), kIncs) << "thread " << t;
    EXPECT_EQ(h.at(slot).count(), kRecords) << "thread " << t;
  }
  EXPECT_EQ(c.total(), kIncs * kThreads);
}

// --- journal: bit-exact round-trip and rates ---

obs::MetricsSnapshot synthetic_snapshot() {
  obs::MetricsSnapshot s;
  obs::MetricSample c;
  c.kind = obs::MetricSample::Kind::kCounter;
  c.name = "t2.rt.counter";
  c.counter = 0xDEADBEEFCAFEull;
  obs::MetricSample g;
  g.kind = obs::MetricSample::Kind::kGauge;
  g.name = "t2.rt.gauge";
  g.gauge = -0.0;  // sign bit must survive
  obs::MetricSample d;
  d.kind = obs::MetricSample::Kind::kGauge;
  d.name = "t2.rt.denormal";
  d.gauge = 1e-310;  // subnormal must survive
  obs::MetricSample h;
  h.kind = obs::MetricSample::Kind::kHistogram;
  h.name = "t2.rt.hist";
  h.scope = "user=7";
  h.hist.count = 3;
  h.hist.sum = 0.1 + 0.2;  // 0.30000000000000004, not 0.3
  h.hist.p50 = 0.1;
  h.hist.p95 = 0.2;
  h.hist.p99 = 0.2 + 1e-17;
  s.samples = {c, d, g, h};  // (name, scope) order
  return s;
}

TEST(JournalRoundTrip, BitExactValuesAndRates) {
  const std::string path = temp_path("odlp_t2_journal_rt.obsf");
  obs::MetricsSnapshot s1 = synthetic_snapshot();
  obs::MetricsSnapshot s2 = synthetic_snapshot();
  s2.samples[0].counter += 250;     // 125/s over 2 s
  s2.samples[2].gauge = 2.5;        // gauge delta 2.5 over 2 s
  s2.samples[3].hist.count += 2;    // 1/s over 2 s
  s2.samples[3].hist.sum += 40.25;

  {
    obs::JournalWriter w(path);
    w.append(s1, 1'000'000);
    w.append(s2, 3'000'000);
    EXPECT_EQ(w.snapshots(), 2u);
    const io::ObsfWriter::Stats st = w.finish();
    EXPECT_EQ(st.rows, 8u);
  }

  const obs::Journal j = obs::read_journal(path);
  EXPECT_EQ(j.snapshots, 2u);
  EXPECT_FALSE(j.truncated);
  ASSERT_EQ(j.series.size(), 4u);

  const obs::JournalSeries* cs = j.find("t2.rt.counter");
  ASSERT_NE(cs, nullptr);
  ASSERT_EQ(cs->points.size(), 2u);
  EXPECT_EQ(cs->points[0].counter, 0xDEADBEEFCAFEull);
  EXPECT_EQ(cs->points[1].counter, 0xDEADBEEFCAFEull + 250);
  EXPECT_EQ(cs->points[0].ts_us, 1'000'000u);
  ASSERT_EQ(cs->rates().size(), 1u);
  EXPECT_EQ(cs->rates()[0], 125.0);

  const obs::JournalSeries* gs = j.find("t2.rt.gauge");
  ASSERT_NE(gs, nullptr);
  EXPECT_TRUE(bits_equal(gs->points[0].value, -0.0));
  EXPECT_TRUE(bits_equal(gs->points[1].value, 2.5));
  EXPECT_EQ(gs->rates()[0], 1.25);

  const obs::JournalSeries* ds = j.find("t2.rt.denormal");
  ASSERT_NE(ds, nullptr);
  EXPECT_TRUE(bits_equal(ds->points[0].value, 1e-310));

  // Scoped histogram series: found under its (name, scope) key, summaries
  // bit-exact.
  EXPECT_EQ(j.find("t2.rt.hist"), nullptr);
  const obs::JournalSeries* hs = j.find("t2.rt.hist", "user=7");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->kind, obs::MetricSample::Kind::kHistogram);
  EXPECT_EQ(hs->points[0].h_count, 3u);
  EXPECT_TRUE(bits_equal(hs->points[0].h_sum, 0.1 + 0.2));
  EXPECT_TRUE(bits_equal(hs->points[0].p99, 0.2 + 1e-17));
  EXPECT_TRUE(bits_equal(hs->points[1].h_sum, 0.1 + 0.2 + 40.25));
  EXPECT_EQ(hs->rates()[0], 1.0);  // 2 more samples over 2 s

  std::remove(path.c_str());
}

TEST(JournalRoundTrip, ZeroTimeDeltaYieldsZeroRate) {
  const std::string path = temp_path("odlp_t2_journal_dt0.obsf");
  obs::MetricsSnapshot s = synthetic_snapshot();
  {
    obs::JournalWriter w(path);
    w.append(s, 500);
    s.samples[0].counter += 10;
    w.append(s, 500);  // same timestamp
    w.finish();
  }
  const obs::Journal j = obs::read_journal(path);
  const obs::JournalSeries* cs = j.find("t2.rt.counter");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->rates()[0], 0.0);
  std::remove(path.c_str());
}

// --- journal: truncation / bit-flip fault matrix ---

// Six snapshots, five samples each, tiny sync blocks so truncation cuts
// inside snapshots and inside blocks.
std::string write_fault_journal(const std::string& name) {
  const std::string path = temp_path(name);
  io::ObsfWriter::Options wo;
  wo.block_rows = 4;
  wo.async = false;
  obs::MetricsSnapshot s = synthetic_snapshot();
  obs::MetricSample extra;
  extra.kind = obs::MetricSample::Kind::kCounter;
  extra.name = "t2.rt.extra";
  s.samples.push_back(extra);
  obs::JournalWriter w(path, wo);
  for (std::uint64_t snap = 0; snap < 6; ++snap) {
    w.append(s, 1'000'000 * (snap + 1));
    s.samples[0].counter += 11;
    s.samples[4].counter += 3;
  }
  w.finish();
  return path;
}

// A recovered journal must end on a complete snapshot: every series spans
// exactly [0, snapshots) with one point per snapshot.
void expect_complete(const obs::Journal& j) {
  for (const obs::JournalSeries& ser : j.series) {
    ASSERT_EQ(ser.points.size(), j.snapshots) << ser.name;
    for (std::size_t i = 0; i < ser.points.size(); ++i) {
      EXPECT_EQ(ser.points[i].snap, i) << ser.name;
    }
  }
}

TEST(JournalFaultMatrix, TruncationStrictThrowsRecoverEndsComplete) {
  const std::string path = write_fault_journal("odlp_t2_journal_trunc.obsf");
  const std::vector<unsigned char> bytes = slurp(path);
  const std::string cut = temp_path("odlp_t2_journal_trunc_cut.obsf");

  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    spit(cut, {bytes.begin(), bytes.begin() + keep});
    EXPECT_THROW(obs::read_journal(cut), util::CorruptionError)
        << "keep=" << keep << " of " << bytes.size();

    obs::Journal j;
    try {
      j = obs::read_journal(cut, /*recover=*/true);
    } catch (const util::CorruptionError&) {
      continue;  // header/schema damage: nothing to decode against
    }
    EXPECT_TRUE(j.truncated || j.snapshots == 0u) << "keep=" << keep;
    EXPECT_LT(j.snapshots, 6u) << "keep=" << keep;
    expect_complete(j);
  }
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(JournalFaultMatrix, BitFlipStrictThrowsRecoverNeverLies) {
  const std::string path = write_fault_journal("odlp_t2_journal_flip.obsf");
  const std::vector<unsigned char> bytes = slurp(path);
  const std::string flip = temp_path("odlp_t2_journal_flip_mut.obsf");
  const obs::Journal intact = obs::read_journal(path);
  ASSERT_EQ(intact.snapshots, 6u);

  std::mt19937 rng(20260808);
  // Every byte of the header/schema region, then a sample across the body.
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    if (pos > 64 && pos % 5 != 0) continue;
    std::vector<unsigned char> mut = bytes;
    mut[pos] ^= static_cast<unsigned char>(1u << (rng() % 8));
    spit(flip, mut);
    EXPECT_THROW(obs::read_journal(flip), util::CorruptionError)
        << "pos=" << pos;

    obs::Journal j;
    try {
      j = obs::read_journal(flip, /*recover=*/true);
    } catch (const util::CorruptionError&) {
      continue;
    }
    // Recover mode may keep the intact prefix but must never return a
    // partial snapshot or data beyond the damage.
    EXPECT_LT(j.snapshots, 6u) << "pos=" << pos;
    expect_complete(j);
    // Whatever survived must match the intact journal's prefix exactly.
    for (const obs::JournalSeries& ser : j.series) {
      const obs::JournalSeries* ref = intact.find(ser.name, ser.scope);
      ASSERT_NE(ref, nullptr);
      for (std::size_t i = 0; i < ser.points.size(); ++i) {
        EXPECT_EQ(ser.points[i].counter, ref->points[i].counter)
            << ser.name << " pos=" << pos;
        EXPECT_TRUE(bits_equal(ser.points[i].value, ref->points[i].value));
        EXPECT_TRUE(bits_equal(ser.points[i].h_sum, ref->points[i].h_sum));
      }
    }
  }
  std::remove(path.c_str());
  std::remove(flip.c_str());
}

TEST(JournalFaultMatrix, WrongContainerRejected) {
  // A valid OBSF file that is not a journal must be rejected up front.
  const std::string path = temp_path("odlp_t2_journal_alien.obsf");
  io::Schema schema;
  schema.meta = "odlp.other.v1";
  schema.columns = {{"x", io::ColumnType::kU64, io::ColumnCodec::kDelta}};
  {
    io::ObsfWriter w(path, schema);
    w.append_u64(1);
    w.end_row();
    w.finish();
  }
  EXPECT_THROW(obs::read_journal(path), util::CorruptionError);
  EXPECT_THROW(obs::read_journal(path, /*recover=*/true),
               util::CorruptionError);
  std::remove(path.c_str());
}

// --- trace: concurrent multi-thread binary flush ---

// Reads a binary trace and checks the stream balances: per tid, every E
// matches an open B (replayed with a depth stack), and counts are equal.
void expect_balanced_binary_trace(const std::string& path,
                                  std::size_t* events_out = nullptr) {
  io::ObsfReader r(path);
  std::map<int, std::int64_t> depth;
  std::map<int, std::uint64_t> last_ts;
  std::size_t events = 0;
  while (r.next_block()) {
    for (std::size_t k = 0; k < r.rows(); ++k) {
      const int tid = static_cast<int>(r.col_i64(0)[k]);
      const std::uint64_t ts = r.col_u64(1)[k];
      const char ph = static_cast<char>(r.col_u8(2)[k]);
      ASSERT_TRUE(ph == 'B' || ph == 'E');
      if (ph == 'B') {
        ++depth[tid];
      } else {
        ASSERT_GT(depth[tid], 0) << "E without open B on tid " << tid;
        --depth[tid];
      }
      if (last_ts.count(tid)) {
        EXPECT_GE(ts, last_ts[tid]) << "time ran backwards on tid " << tid;
      }
      last_ts[tid] = ts;
      ++events;
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
  }
  if (events_out) *events_out = events;
}

TEST(TraceConcurrent, MultiThreadBinaryFlushBalanced) {
  const std::string json = temp_path("odlp_t2_trace.json");
  const std::string bin = temp_path("odlp_t2_trace.obsf");
  obs::enable_tracing(json);

  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 3000;  // 12k events/thread, below the ring
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kSpansPerThread; ++i) {
        ODLP_TRACE_SCOPE("t2.outer");
        ODLP_TRACE_SCOPE("t2.inner");
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Flush concurrently with the recording threads: the snapshot must be
  // balanced even while spans are still being appended.
  for (int f = 0; f < 3; ++f) {
    ASSERT_TRUE(obs::flush_trace_binary(bin));
    expect_balanced_binary_trace(bin);
  }
  for (auto& th : threads) th.join();

  ASSERT_TRUE(obs::flush_trace_binary(bin));
  obs::disable_tracing();
  std::size_t events = 0;
  expect_balanced_binary_trace(bin, &events);
  EXPECT_EQ(events, static_cast<std::size_t>(kThreads) * kSpansPerThread * 4);
  EXPECT_EQ(obs::trace_dropped_count(), 0u);

  // The offline converter accepts it and produces loadable JSON.
  const std::string chrome = temp_path("odlp_t2_trace_chrome.json");
  obs::trace_binary_to_chrome_json(bin, chrome);
  const std::vector<unsigned char> cj = slurp(chrome);
  const std::string text(cj.begin(), cj.end());
  EXPECT_NE(text.find("t2.inner"), std::string::npos);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);

  std::remove(json.c_str());
  std::remove(bin.c_str());
  std::remove(chrome.c_str());
}

TEST(TraceDrops, RingOverflowCountsDropsAndStaysBalanced) {
  const std::string json = temp_path("odlp_t2_drops.json");
  const std::string bin = temp_path("odlp_t2_drops.obsf");
  obs::enable_tracing(json);  // resets rings and drop counts

  const std::uint64_t reg_before =
      obs::registry().snapshot().counter_value("obs.trace.dropped.total");

  constexpr std::uint64_t kSpans = 20000;  // 40k events > 32k ring capacity
  for (std::uint64_t i = 0; i < kSpans; ++i) {
    ODLP_TRACE_SCOPE("t2.overflow");
  }
  obs::disable_tracing();

  const std::uint64_t dropped = obs::trace_dropped_count();
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(dropped, 2 * kSpans);
  // Every drop is also visible as a registry counter (satellite b): fleet
  // dashboards see ring exhaustion without parsing trace files.
  const std::uint64_t reg_after =
      obs::registry().snapshot().counter_value("obs.trace.dropped.total");
  EXPECT_EQ(reg_after - reg_before, dropped);

  // Dropped ends are balanced synthetically at flush time.
  ASSERT_TRUE(obs::flush_trace_binary(bin));
  expect_balanced_binary_trace(bin);

  std::remove(json.c_str());
  std::remove(bin.c_str());
}

// --- profiler ---

TEST(Profiler, FoldedStacksNameNestedSpans) {
  obs::Profiler prof(499.0);
  prof.start();
  EXPECT_TRUE(prof.running());
  {
    ODLP_TRACE_SCOPE("t2.prof.outer");
    ODLP_TRACE_SCOPE("t2.prof.inner");
    util::Stopwatch sw;
    volatile double sink = 0.0;
    while (sw.elapsed_seconds() < 0.08) sink += 1.0;
    (void)sink;
  }
  const obs::ProfileReport rep = prof.stop();
  EXPECT_FALSE(prof.running());
  EXPECT_GT(rep.ticks, 0u);
  EXPECT_GT(rep.samples, 0u);
  EXPECT_EQ(rep.hz, 499.0);

  const auto it = rep.folded.find("t2.prof.outer;t2.prof.inner");
  ASSERT_NE(it, rep.folded.end()) << rep.folded_text();
  EXPECT_GE(it->second, 1u);
  EXPECT_NE(rep.folded_text().find("t2.prof.outer;t2.prof.inner "),
            std::string::npos);
  // The nested frame is the leaf, so it owns the self-time.
  const auto top = rep.top_self(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, "t2.prof.inner");

  // A second window over an idle process: ticks fire, nothing is sampled.
  obs::Profiler idle(499.0);
  idle.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const obs::ProfileReport quiet = idle.stop();
  EXPECT_GT(quiet.ticks, 0u);
  EXPECT_EQ(quiet.samples, 0u);
  EXPECT_EQ(quiet.idle_ticks, quiet.ticks);
}

TEST(Profiler, RejectsNonPositiveRate) {
  EXPECT_THROW(obs::Profiler(0.0), std::invalid_argument);
  EXPECT_THROW(obs::Profiler(-97.0), std::invalid_argument);
}

TEST(Profiler, WriteFoldedProducesFlamegraphInput) {
  obs::Profiler prof(499.0);
  prof.start();
  {
    ODLP_TRACE_SCOPE("t2.prof.file");
    util::Stopwatch sw;
    volatile double sink = 0.0;
    while (sw.elapsed_seconds() < 0.05) sink += 1.0;
    (void)sink;
  }
  const obs::ProfileReport rep = prof.stop();
  const std::string path = temp_path("odlp_t2_prof.folded");
  obs::write_folded(rep, path);
  const std::vector<unsigned char> raw = slurp(path);
  const std::string text(raw.begin(), raw.end());
  EXPECT_NE(text.find("t2.prof.file "), std::string::npos);
  std::remove(path.c_str());
}

// --- SLO burn-rate alerting, wired into the governor ---

TEST(SloBurn, FastBurnDrivesGovernorDownAndRecovers) {
  obs::Histogram& lat = obs::registry().histogram("t2.slo.round.us");

  obs::SloObjective obj;
  obj.name = "t2lat";
  obj.signal = obs::SloSignal::kHistogramAbove;
  obj.metric = "t2.slo.round.us";
  obj.threshold = 100.0;   // us
  obj.error_budget = 0.01;
  obj.fast_burn = 14.0;
  obj.slow_burn = 2.0;
  obj.fast_window = 3;
  obj.slow_window = 6;
  obs::SloEvaluator eval({obj});
  resil::ResourceGovernor gov;  // budgets 0: only slo_pressure drives it

  std::uint64_t ts = 0;
  const auto observe = [&] {
    ts += 1'000'000;
    eval.observe(obs::registry().snapshot(), ts);
    gov.observe({0, 0.0, eval.pressure()});
  };

  // Healthy baseline: all rounds fast, state stays kOk, governor nominal.
  for (int k = 0; k < 4; ++k) {
    for (int i = 0; i < 100; ++i) lat.record(50.0);
    observe();
  }
  EXPECT_EQ(eval.status()[0].state, obs::SloState::kOk);
  EXPECT_EQ(eval.pressure(), 0.0);
  EXPECT_EQ(gov.rung(), resil::Rung::kNominal);

  // Regression: every round blows the 100 us threshold. One bad window is
  // a >= 14x burn -> fast alert -> pressure 1.0 -> the governor must leave
  // kNominal.
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < 100; ++i) lat.record(5000.0);
    observe();
  }
  EXPECT_EQ(eval.status()[0].state, obs::SloState::kFastBurn);
  EXPECT_EQ(eval.pressure(), 1.0);
  EXPECT_NE(gov.rung(), resil::Rung::kNominal);
  EXPECT_GE(gov.stats().escalations, 1u);

  // The alert history is itself registry-observable.
  obs::MetricsSnapshot snap = obs::registry().snapshot();
  EXPECT_GE(snap.counter_value("slo.t2lat.fast_burn.total"), 1u);
  EXPECT_EQ(snap.gauge_value("slo.t2lat.state"), 2.0);

  // Recovery: the regression stops. The fast window drains first (the
  // governor may still escalate while it does), then the slow window holds
  // the rung at pressure 0.75, then everything clears and the governor
  // walks back down one rung per recover_patience observations.
  for (int k = 0; k < 18; ++k) {
    for (int i = 0; i < 100; ++i) lat.record(50.0);
    observe();
  }
  EXPECT_EQ(eval.status()[0].state, obs::SloState::kOk);
  EXPECT_EQ(eval.pressure(), 0.0);
  snap = obs::registry().snapshot();
  EXPECT_GE(snap.counter_value("slo.t2lat.recovered.total"), 1u);
  EXPECT_EQ(snap.gauge_value("slo.t2lat.state"), 0.0);
  EXPECT_GE(gov.stats().recoveries, 1u);
  EXPECT_EQ(gov.rung(), resil::Rung::kNominal);
}

TEST(SloBurn, CounterRatioAndGaugeSignals) {
  obs::Counter& bad = obs::registry().counter("t2.slo.failed");
  obs::Counter& total = obs::registry().counter("t2.slo.rounds");
  obs::Gauge& quality = obs::registry().gauge("t2.slo.quality");

  obs::SloObjective ratio;
  ratio.name = "t2avail";
  ratio.signal = obs::SloSignal::kCounterRatio;
  ratio.metric = "t2.slo.failed";
  ratio.denominator = "t2.slo.rounds";
  ratio.error_budget = 0.05;
  ratio.fast_burn = 4.0;
  ratio.fast_window = 2;
  ratio.slow_window = 4;

  obs::SloObjective floor;
  floor.name = "t2qual";
  floor.signal = obs::SloSignal::kGaugeBelow;
  floor.metric = "t2.slo.quality";
  floor.threshold = 0.5;
  floor.error_budget = 0.25;
  floor.fast_burn = 3.0;
  floor.fast_window = 2;
  floor.slow_window = 4;

  obs::SloEvaluator eval({ratio, floor});
  std::uint64_t ts = 0;
  const auto observe = [&] {
    ts += 1'000'000;
    eval.observe(obs::registry().snapshot(), ts);
  };

  quality.set(0.9);
  for (int k = 0; k < 4; ++k) {
    total.inc(10);
    observe();
  }
  EXPECT_EQ(eval.status()[0].state, obs::SloState::kOk);
  EXPECT_EQ(eval.status()[1].state, obs::SloState::kOk);

  // Half the rounds start failing and quality drops through the floor.
  quality.set(0.1);
  for (int k = 0; k < 3; ++k) {
    total.inc(10);
    bad.inc(5);
    observe();
  }
  EXPECT_EQ(eval.status()[0].state, obs::SloState::kFastBurn);
  EXPECT_EQ(eval.status()[1].state, obs::SloState::kFastBurn);
  EXPECT_EQ(eval.pressure(), 1.0);
}

TEST(SloBurn, RejectsInvalidObjectives) {
  obs::SloObjective o;
  o.name = "";
  EXPECT_THROW(obs::SloEvaluator({o}), std::invalid_argument);
  o.name = "x";
  o.error_budget = 0.0;
  EXPECT_THROW(obs::SloEvaluator({o}), std::invalid_argument);
  o.error_budget = 0.01;
  o.fast_window = 0;
  EXPECT_THROW(obs::SloEvaluator({o}), std::invalid_argument);
  o.fast_window = 4;
  o.slow_window = 2;  // shorter than fast
  EXPECT_THROW(obs::SloEvaluator({o}), std::invalid_argument);
  o.slow_window = 8;
  o.signal = obs::SloSignal::kCounterRatio;
  o.denominator = "";
  EXPECT_THROW(obs::SloEvaluator({o}), std::invalid_argument);
}

// A rigged chaos fleet: an SLO on chaos.round.us that every round violates
// must escalate the per-device governors through slo_pressure alone.
TEST(SloChaos, ChaosFleetSloPressureEscalatesGovernor) {
  const std::string work = temp_path("odlp_t2_slo_chaos");
  fs::remove_all(work);
  fs::create_directories(work);

  exp::ChaosFleetConfig config;
  config.num_devices = 1;
  config.rounds = 5;
  config.sets_per_round = 2;
  config.buffer_bins = 4;
  config.epochs = 1;
  config.work_dir = work;
  config.keep_last = config.rounds + 2;
  config.retry.sleep = false;
  // Memory/latency pressure neutralized: a huge byte budget and no
  // deadline, so only slo_pressure can move the ladder.
  config.governor.memory_budget_bytes = std::size_t{1} << 40;
  config.governor.round_deadline_ms = 0.0;
  config.supervisor.round_deadline_ms = 0.0;
  config.supervisor.max_consecutive_failures = 0;

  obs::SloObjective obj;
  obj.name = "t2chaos";
  obj.signal = obs::SloSignal::kHistogramAbove;
  obj.metric = "chaos.round.us";
  obj.threshold = 1.0;  // every real round takes >> 1 us
  obj.error_budget = 0.001;
  obj.fast_burn = 1.0;
  obj.slow_burn = 0.5;
  obj.fast_window = 1;
  obj.slow_window = 2;
  config.slos = {obj};

  const exp::ChaosFleetResult result = exp::run_chaos_fleet(config);
  ASSERT_EQ(result.devices.size(), 1u);
  // The governor saw sustained pressure 1.0 from the burning SLO.
  EXPECT_GE(result.devices[0].governor.escalations, 1u);
  EXPECT_NE(result.devices[0].final_rung, resil::Rung::kNominal);

  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  EXPECT_GE(snap.counter_value("slo.t2chaos.fast_burn.total"), 1u);

  fs::remove_all(work);
}

// --- Prometheus exposition lint (satellite a) ---

bool valid_prom_name(const std::string& name) {
  if (name.empty()) return false;
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    if (!ok) return false;
  }
  return !(name[0] >= '0' && name[0] <= '9');
}

TEST(PrometheusLint, ExpositionWellFormed) {
  // Populate every metric kind, including a dotted name and a scoped
  // counter, so the lint sees the full surface.
  obs::registry().counter("t2.prom.hits").inc(3);
  obs::registry().gauge("t2.prom.level").set(0.75);
  obs::registry().histogram("t2.prom.lat.us").record(123.0);
  const auto handle = obs::scoped_registry().scopes().acquire("user=prom");
  obs::scoped_registry().counter("t2.prom.scoped").inc(handle, 2);

  const std::string text =
      obs::dump_metrics(obs::full_snapshot(), obs::MetricsFormat::kPrometheus);

  std::set<std::string> typed;  // names declared by a # TYPE line
  std::size_t series_lines = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? eol : eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.empty()) continue;

    if (line.rfind("# TYPE ", 0) == 0 || line.rfind("# HELP ", 0) == 0) {
      // "# TYPE name kind" / "# HELP name text" — the name must be valid.
      const std::size_t start = 7;
      const std::size_t sp = line.find(' ', start);
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string name = line.substr(start, sp - start);
      EXPECT_TRUE(valid_prom_name(name)) << line;
      if (line.rfind("# TYPE ", 0) == 0) typed.insert(name);
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;

    // Series line: name[{labels}] value
    ++series_lines;
    std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(0, name_end);
    EXPECT_TRUE(valid_prom_name(name)) << line;
    EXPECT_EQ(name.find('.'), std::string::npos) << line;

    std::size_t value_at;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      ASSERT_NE(close, std::string::npos) << line;
      ASSERT_EQ(line[close + 1], ' ') << line;
      value_at = close + 2;
      // Label block must be key="value" pairs — count quotes and equals.
      const std::string labels = line.substr(name_end + 1, close - name_end - 1);
      EXPECT_NE(labels.find('='), std::string::npos) << line;
    } else {
      value_at = name_end + 1;
    }
    const std::string value = line.substr(value_at);
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;

    // Every series rides under a # TYPE declaration (histograms declare the
    // base name; _bucket/_sum/_count/_total extend it).
    bool declared = false;
    for (const std::string& t : typed) {
      if (name == t || (name.size() > t.size() && name.rfind(t, 0) == 0)) {
        declared = true;
        break;
      }
    }
    EXPECT_TRUE(declared) << "series without # TYPE: " << line;
  }
  EXPECT_GT(series_lines, 0u);

  // Spot checks: counter suffix, scope label, histogram series, and the
  // raw dotted names never leak.
  EXPECT_NE(text.find("t2_prom_hits_total 3"), std::string::npos);
  EXPECT_NE(text.find("t2_prom_scoped_total{scope=\"user=prom\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("t2_prom_lat_us_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_EQ(text.find("t2.prom"), std::string::npos);
}

}  // namespace
}  // namespace odlp
