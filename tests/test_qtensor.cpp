// Per-block symmetric int8 quantization: round-trip error bounds, degenerate
// block contents (all-zero, denormal, ±max), both blocking axes, and edge
// shapes (1×1, primes, block-boundary ±1). The quantizer's contract is that
// every element's reconstruction error is at most half its block's scale —
// the round-to-nearest bound — and that pathological blocks degrade to
// exact zeros instead of NaN/Inf codes.
#ifdef ODLP_INT8

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/qtensor.h"
#include "util/rng.h"

namespace odlp {
namespace {

tensor::Tensor random_tensor(std::size_t rows, std::size_t cols,
                             util::Rng& rng, double lo = -1.0,
                             double hi = 1.0) {
  tensor::Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

// Shapes spanning the block geometry: degenerate, primes, one exact block,
// block ±1 in each direction, and a multi-block interior.
constexpr std::size_t kShapes[][2] = {
    {1, 1},  {1, 32},  {32, 1},  {31, 33}, {32, 32}, {33, 31},
    {7, 13}, {64, 96}, {65, 95}, {5, 129},
};

constexpr tensor::QuantAxis kAxes[] = {tensor::QuantAxis::kAlongRows,
                                       tensor::QuantAxis::kAlongCols};

// The per-element scale for (r, c): blocks run down columns for kAlongRows
// and along rows for kAlongCols.
float element_scale(const tensor::QuantizedTensor& q, std::size_t r,
                    std::size_t c) {
  if (q.axis() == tensor::QuantAxis::kAlongRows) {
    return q.scales()[(r / tensor::kQuantBlock) * q.cols() + c];
  }
  return q.scales()[r * q.blocks() + c / tensor::kQuantBlock];
}

TEST(QTensor, RoundTripErrorWithinHalfScalePerBlock) {
  util::Rng rng(0x50);
  for (const auto& s : kShapes) {
    for (const auto axis : kAxes) {
      SCOPED_TRACE(testing::Message()
                   << s[0] << "x" << s[1] << " axis "
                   << (axis == tensor::QuantAxis::kAlongRows ? "rows" : "cols"));
      const tensor::Tensor src = random_tensor(s[0], s[1], rng, -3.0, 3.0);
      const auto q = tensor::QuantizedTensor::quantize(src, axis);
      const tensor::Tensor dq = q.dequantize();
      ASSERT_EQ(dq.rows(), s[0]);
      ASSERT_EQ(dq.cols(), s[1]);
      for (std::size_t r = 0; r < s[0]; ++r) {
        for (std::size_t c = 0; c < s[1]; ++c) {
          const float err = std::fabs(src.at(r, c) - dq.at(r, c));
          // Round-to-nearest with scale = amax/127: error ≤ scale/2 (plus
          // one ulp of slack for the fp32 scale division itself).
          ASSERT_LE(err, element_scale(q, r, c) * 0.5f * 1.0001f)
              << "element (" << r << ", " << c << ")";
        }
      }
      const tensor::QuantStats stats = q.round_trip_stats(src);
      EXPECT_EQ(stats.elements, s[0] * s[1]);
      EXPECT_LE(stats.max_abs_err, stats.max_scale * 0.5f * 1.0001f);
      EXPECT_LE(stats.mean_abs_err, stats.max_abs_err);
      EXPECT_LE(stats.rms_err, stats.max_abs_err);
    }
  }
}

TEST(QTensor, AllZeroBlocksRoundTripExactly) {
  const tensor::Tensor src(65, 33, 0.0f);
  for (const auto axis : kAxes) {
    const auto q = tensor::QuantizedTensor::quantize(src, axis);
    const tensor::Tensor dq = q.dequantize();
    for (std::size_t i = 0; i < dq.size(); ++i) {
      EXPECT_EQ(dq.data()[i], 0.0f);
    }
    const tensor::QuantStats stats = q.round_trip_stats(src);
    EXPECT_EQ(stats.max_abs_err, 0.0f);
    EXPECT_EQ(stats.max_scale, 0.0f);
  }
}

TEST(QTensor, DenormalBlocksDegradeToZerosNotNonFinite) {
  // amax so small that 127/amax overflows fp32: the quantizer must not
  // produce NaN/Inf scales or garbage codes — the contract is all-zero
  // codes (the values are below any representable int8 resolution anyway).
  tensor::Tensor src(64, 32);
  const float denorm = std::numeric_limits<float>::denorm_min();
  for (std::size_t i = 0; i < src.size(); ++i) {
    src.data()[i] = (i % 2 ? denorm : -denorm);
  }
  for (const auto axis : kAxes) {
    const auto q = tensor::QuantizedTensor::quantize(src, axis);
    const tensor::Tensor dq = q.dequantize();
    for (std::size_t i = 0; i < dq.size(); ++i) {
      ASSERT_TRUE(std::isfinite(dq.data()[i]));
      EXPECT_EQ(dq.data()[i], 0.0f);
    }
  }
}

TEST(QTensor, MaxMagnitudeBlocksSaturateWithoutOverflow) {
  // ±FLT_MAX blocks: scale = FLT_MAX/127 must reconstruct the extremes
  // exactly (code ±127 × scale) and stay finite everywhere.
  tensor::Tensor src(32, 64);
  const float big = std::numeric_limits<float>::max();
  for (std::size_t i = 0; i < src.size(); ++i) {
    src.data()[i] = (i % 3 == 0) ? big : (i % 3 == 1 ? -big : 0.0f);
  }
  for (const auto axis : kAxes) {
    const auto q = tensor::QuantizedTensor::quantize(src, axis);
    const tensor::Tensor dq = q.dequantize();
    for (std::size_t i = 0; i < dq.size(); ++i) {
      ASSERT_TRUE(std::isfinite(dq.data()[i])) << "element " << i;
      if (src.data()[i] == 0.0f) {
        EXPECT_EQ(dq.data()[i], 0.0f);
      } else {
        // |code| = 127 exactly, so dequantize returns ±(127 * amax/127).
        EXPECT_NEAR(dq.data()[i], src.data()[i], big * 0.01f);
      }
    }
  }
}

TEST(QTensor, CodesStayWithinSymmetricRange) {
  // -128 is never produced: negation of any code must be representable.
  util::Rng rng(0x51);
  const tensor::Tensor src = random_tensor(67, 65, rng, -100.0, 100.0);
  for (const auto axis : kAxes) {
    const auto q = tensor::QuantizedTensor::quantize(src, axis);
    for (std::size_t i = 0; i < src.size(); ++i) {
      ASSERT_GE(q.values()[i], -127);
      ASSERT_LE(q.values()[i], 127);
    }
  }
}

TEST(QTensor, DequantizeRowMatchesFullDequantize) {
  util::Rng rng(0x52);
  const tensor::Tensor src = random_tensor(19, 70, rng);
  const auto q =
      tensor::QuantizedTensor::quantize(src, tensor::QuantAxis::kAlongCols);
  const tensor::Tensor full = q.dequantize();
  std::vector<float> row(src.cols());
  for (std::size_t r = 0; r < src.rows(); ++r) {
    q.dequantize_row_into(r, row.data(), /*accumulate=*/false);
    for (std::size_t c = 0; c < src.cols(); ++c) {
      ASSERT_EQ(row[c], full.at(r, c)) << "(" << r << ", " << c << ")";
    }
    // accumulate adds on top instead of overwriting.
    q.dequantize_row_into(r, row.data(), /*accumulate=*/true);
    for (std::size_t c = 0; c < src.cols(); ++c) {
      ASSERT_EQ(row[c], full.at(r, c) + full.at(r, c));
    }
  }
}

TEST(QTensor, ResidentBytesAccountCodesPlusScales) {
  const tensor::Tensor src(64, 96, 0.5f);
  const auto qr =
      tensor::QuantizedTensor::quantize(src, tensor::QuantAxis::kAlongRows);
  // 64 rows = 2 k-blocks of scales, one per column.
  EXPECT_EQ(qr.value_bytes(), 64u * 96u);
  EXPECT_EQ(qr.blocks(), 2u);
  EXPECT_EQ(qr.scale_bytes(), 2u * 96u * sizeof(float));
  EXPECT_EQ(qr.resident_bytes(), qr.value_bytes() + qr.scale_bytes());
  // int8 + fp32-scale footprint stays well under the fp32 original.
  EXPECT_LT(qr.resident_bytes(), src.size() * sizeof(float) * 30 / 100);

  const auto qc =
      tensor::QuantizedTensor::quantize(src, tensor::QuantAxis::kAlongCols);
  EXPECT_EQ(qc.blocks(), 3u);  // 96 cols = 3 blocks per row
  EXPECT_EQ(qc.scale_bytes(), 64u * 3u * sizeof(float));
}

}  // namespace
}  // namespace odlp

#endif  // ODLP_INT8
