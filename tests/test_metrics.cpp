// Unit and property tests for the three quality metrics (EOE, DSS, IDD).
#include <gtest/gtest.h>

#include <cmath>

#include "core/quality_metrics.h"
#include "util/rng.h"

namespace odlp::core {
namespace {

using tensor::Tensor;

TEST(Eoe, SingleTokenIsZero) {
  EXPECT_DOUBLE_EQ(entropy_of_embedding(Tensor(1, 8, 1.0f)), 0.0);
  EXPECT_DOUBLE_EQ(entropy_of_embedding(Tensor(0, 8)), 0.0);
}

TEST(Eoe, UniformMassIsMaximal) {
  // Identical rows -> uniform p -> normalized entropy exactly 1.
  Tensor e(5, 4, 0.0f);
  for (std::size_t t = 0; t < 5; ++t) {
    for (std::size_t j = 0; j < 4; ++j) e.at(t, j) = 0.7f;
  }
  EXPECT_NEAR(entropy_of_embedding(e), 1.0, 1e-9);
}

TEST(Eoe, ConcentratedMassIsLow) {
  // One dominant token, others nearly zero -> entropy near 0.
  Tensor e(4, 4, 1e-6f);
  for (std::size_t j = 0; j < 4; ++j) e.at(0, j) = 10.0f;
  EXPECT_LT(entropy_of_embedding(e), 0.05);
}

TEST(Eoe, AlwaysWithinUnitInterval) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(30);
    Tensor e(n, 8);
    for (std::size_t i = 0; i < e.size(); ++i) {
      e.data()[i] = static_cast<float>(rng.normal());
    }
    const double v = entropy_of_embedding(e);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST(Eoe, ZeroEmbeddingsGiveZero) {
  EXPECT_DOUBLE_EQ(entropy_of_embedding(Tensor(5, 4, 0.0f)), 0.0);
}

TEST(Eoe, InvariantToUniformScale) {
  util::Rng rng(2);
  Tensor e(6, 4);
  for (std::size_t i = 0; i < e.size(); ++i) {
    e.data()[i] = static_cast<float>(rng.normal());
  }
  const double base = entropy_of_embedding(e);
  Tensor scaled = e;
  scaled *= 3.0f;
  EXPECT_NEAR(entropy_of_embedding(scaled), base, 1e-6);
}

lexicon::LexiconDictionary two_domains() {
  return lexicon::LexiconDictionary(
      {lexicon::Domain("med", {{"s", {"dose", "pill"}}}),
       lexicon::Domain("emo", {{"s", {"happy", "sad"}}})});
}

TEST(Dss, ZeroWhenNoOverlap) {
  const auto dict = two_domains();
  EXPECT_DOUBLE_EQ(domain_specific_score({"random", "words"}, dict), 0.0);
}

TEST(Dss, KnownValue) {
  const auto dict = two_domains();
  // tokens: dose pill happy x -> med 2/4, emo 1/4, mean = 0.375.
  EXPECT_NEAR(domain_specific_score({"dose", "pill", "happy", "x"}, dict), 0.375,
              1e-12);
}

TEST(Dss, EmptyTokensZero) {
  const auto dict = two_domains();
  EXPECT_DOUBLE_EQ(domain_specific_score({}, dict), 0.0);
}

TEST(Dss, MonotoneInDomainContent) {
  const auto dict = two_domains();
  const double low = domain_specific_score({"dose", "x", "x", "x"}, dict);
  const double high = domain_specific_score({"dose", "pill", "x", "x"}, dict);
  EXPECT_GT(high, low);
}

TEST(Dss, BoundedByOne) {
  const auto dict = two_domains();
  // Every token in one domain: ratio 1 for that domain, 0 for the other.
  EXPECT_NEAR(domain_specific_score({"dose", "pill"}, dict), 0.5, 1e-12);
}

TEST(DominantDomain, PicksArgmaxAndHandlesNone) {
  const auto dict = two_domains();
  EXPECT_EQ(dominant_domain({"happy", "sad", "dose"}, dict).value(), 1u);
  EXPECT_FALSE(dominant_domain({"nothing"}, dict).has_value());
}

TEST(Idd, EmptyBufferMeansMaximalNovelty) {
  Tensor e(1, 4, 1.0f);
  EXPECT_DOUBLE_EQ(in_domain_dissimilarity(e, {}), 1.0);
}

TEST(Idd, IdenticalEmbeddingGivesZero) {
  Tensor e(1, 4, 1.0f);
  Tensor same = e;
  EXPECT_NEAR(in_domain_dissimilarity(e, {&same}), 0.0, 1e-6);
}

TEST(Idd, OppositeEmbeddingGivesTwo) {
  Tensor e = Tensor::from(1, 2, {1, 0});
  Tensor opp = Tensor::from(1, 2, {-1, 0});
  EXPECT_NEAR(in_domain_dissimilarity(e, {&opp}), 2.0, 1e-6);
}

TEST(Idd, OrthogonalGivesOne) {
  Tensor e = Tensor::from(1, 2, {1, 0});
  Tensor orth = Tensor::from(1, 2, {0, 1});
  EXPECT_NEAR(in_domain_dissimilarity(e, {&orth}), 1.0, 1e-6);
}

TEST(Idd, AveragesOverBufferEntries) {
  Tensor e = Tensor::from(1, 2, {1, 0});
  Tensor same = e;
  Tensor orth = Tensor::from(1, 2, {0, 1});
  const double v = in_domain_dissimilarity(e, {&same, &orth});
  EXPECT_NEAR(v, 0.5, 1e-6);
}

TEST(QualityScores, ParetoDominanceRequiresAllThree) {
  QualityScores a{0.5, 0.5, 0.5};
  QualityScores b{0.4, 0.4, 0.4};
  EXPECT_TRUE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  QualityScores mixed{0.6, 0.3, 0.6};
  EXPECT_FALSE(mixed.dominates(b));  // dss lower
  EXPECT_FALSE(a.dominates(a));      // strict inequality
}

}  // namespace
}  // namespace odlp::core
