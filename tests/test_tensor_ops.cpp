#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "util/rng.h"

namespace odlp::tensor {
namespace {

TEST(Matmul, KnownValues) {
  Tensor a = Tensor::from(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(Matmul, IdentityIsNoop) {
  Tensor a = Tensor::from(2, 2, {1, 2, 3, 4});
  Tensor eye = Tensor::from(2, 2, {1, 0, 0, 1});
  Tensor c = matmul(a, eye);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c.data()[i], a.data()[i]);
}

TEST(Matmul, BackwardMatchesManualComputation) {
  // f = sum(A*B); df/dA = ones * B^T, df/dB = A^T * ones.
  Tensor a = Tensor::from(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::from(2, 2, {5, 6, 7, 8});
  Tensor dc = Tensor::ones(2, 2);
  Tensor da = Tensor::zeros(2, 2), db = Tensor::zeros(2, 2);
  matmul_backward(a, b, dc, da, db);
  // dA = dc * B^T: row sums of B.
  EXPECT_FLOAT_EQ(da.at(0, 0), 11);  // 5+6
  EXPECT_FLOAT_EQ(da.at(0, 1), 15);  // 7+8
  // dB = A^T * dc: column sums of A.
  EXPECT_FLOAT_EQ(db.at(0, 0), 4);  // 1+3
  EXPECT_FLOAT_EQ(db.at(1, 0), 6);  // 2+4
}

TEST(Matmul, BackwardAccumulates) {
  Tensor a = Tensor::ones(1, 1), b = Tensor::ones(1, 1), dc = Tensor::ones(1, 1);
  Tensor da = Tensor::from(1, 1, {10}), db = Tensor::from(1, 1, {20});
  matmul_backward(a, b, dc, da, db);
  EXPECT_FLOAT_EQ(da.at(0, 0), 11);
  EXPECT_FLOAT_EQ(db.at(0, 0), 21);
}

TEST(Transpose, Basic) {
  Tensor a = Tensor::from(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_FLOAT_EQ(t.at(2, 1), 6);
  EXPECT_FLOAT_EQ(t.at(0, 1), 4);
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  util::Rng rng(3);
  Tensor a(4, 7);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = static_cast<float>(rng.normal());
  Tensor tt = transpose(transpose(a));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(tt.data()[i], a.data()[i]);
}

TEST(RowBroadcast, AddsBiasPerRow) {
  Tensor x = Tensor::from(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::from(1, 2, {10, 20});
  Tensor y = add_row_broadcast(x, b);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11);
  EXPECT_FLOAT_EQ(y.at(1, 1), 24);
}

TEST(RowBroadcast, BackwardSumsColumns) {
  Tensor dout = Tensor::from(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor dbias = Tensor::zeros(1, 2);
  add_row_broadcast_backward(dout, dbias);
  EXPECT_FLOAT_EQ(dbias.at(0, 0), 9);
  EXPECT_FLOAT_EQ(dbias.at(0, 1), 12);
}

TEST(Softmax, RowsSumToOne) {
  Tensor logits = Tensor::from(2, 3, {1, 2, 3, -1, 0, 1});
  Tensor p = softmax_rows(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GT(p.at(i, j), 0.0f);
      s += p.at(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-6);
  }
}

TEST(Softmax, ShiftInvariance) {
  Tensor a = Tensor::from(1, 3, {1, 2, 3});
  Tensor b = Tensor::from(1, 3, {101, 102, 103});
  Tensor pa = softmax_rows(a), pb = softmax_rows(b);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(pa.at(0, j), pb.at(0, j), 1e-6);
}

TEST(Softmax, HandlesNegativeInfinityMask) {
  Tensor logits = Tensor::from(1, 3, {1.0f, -std::numeric_limits<float>::infinity(), 1.0f});
  Tensor p = softmax_rows(logits);
  EXPECT_FLOAT_EQ(p.at(0, 1), 0.0f);
  EXPECT_NEAR(p.at(0, 0), 0.5f, 1e-6);
}

TEST(Softmax, BackwardZeroWhenGradientUniform) {
  // softmax backward of a constant upstream gradient is zero (softmax is
  // invariant to constant shifts).
  Tensor logits = Tensor::from(1, 4, {0.1f, 0.9f, -0.3f, 0.5f});
  Tensor p = softmax_rows(logits);
  Tensor dout = Tensor::ones(1, 4);
  Tensor din = softmax_rows_backward(p, dout);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(din.at(0, j), 0.0f, 1e-6);
}

TEST(Gelu, KnownPointsAndMonotoneRegion) {
  Tensor x = Tensor::from(1, 3, {0.0f, 10.0f, -10.0f});
  Tensor y = gelu(x);
  EXPECT_NEAR(y.at(0, 0), 0.0f, 1e-6);
  EXPECT_NEAR(y.at(0, 1), 10.0f, 1e-3);   // ~identity for large x
  EXPECT_NEAR(y.at(0, 2), 0.0f, 1e-3);    // ~0 for very negative x
}

TEST(Relu, ForwardAndBackward) {
  Tensor x = Tensor::from(1, 3, {-1, 0, 2});
  Tensor y = relu(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2);
  Tensor dout = Tensor::ones(1, 3);
  Tensor din = relu_backward(x, dout);
  EXPECT_FLOAT_EQ(din.at(0, 0), 0);
  EXPECT_FLOAT_EQ(din.at(0, 2), 1);
}

TEST(LayerNorm, RowsHaveZeroMeanUnitVariance) {
  util::Rng rng(5);
  Tensor x(3, 16);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(2.0, 3.0));
  }
  LayerNormCache cache;
  Tensor y = layernorm_rows(x, 1e-5f, &cache);
  for (std::size_t i = 0; i < 3; ++i) {
    double mean = 0, var = 0;
    for (std::size_t j = 0; j < 16; ++j) mean += y.at(i, j);
    mean /= 16;
    for (std::size_t j = 0; j < 16; ++j) {
      var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, ConstantRowMapsToZero) {
  Tensor x(1, 8, 5.0f);
  Tensor y = layernorm_rows(x, 1e-5f, nullptr);
  for (std::size_t j = 0; j < 8; ++j) EXPECT_NEAR(y.at(0, j), 0.0f, 1e-4);
}

TEST(ElementwiseOps, AddSubMulScale) {
  Tensor a = Tensor::from(1, 2, {1, 2});
  Tensor b = Tensor::from(1, 2, {3, 4});
  EXPECT_FLOAT_EQ(add(a, b).at(0, 1), 6);
  EXPECT_FLOAT_EQ(sub(b, a).at(0, 0), 2);
  EXPECT_FLOAT_EQ(mul_elem(a, b).at(0, 1), 8);
  EXPECT_FLOAT_EQ(scale(a, 3.0f).at(0, 0), 3);
}

TEST(MeanRows, AveragesOverRows) {
  Tensor x = Tensor::from(2, 2, {1, 2, 3, 4});
  Tensor m = mean_rows(x);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_FLOAT_EQ(m.at(0, 0), 2);
  EXPECT_FLOAT_EQ(m.at(0, 1), 3);
}

TEST(MeanRows, SingleRowIsIdentity) {
  Tensor x = Tensor::from(1, 3, {7, 8, 9});
  Tensor m = mean_rows(x);
  EXPECT_FLOAT_EQ(m.at(0, 2), 9);
}

TEST(CosineSimilarity, IdenticalIsOne) {
  Tensor a = Tensor::from(1, 3, {1, 2, 3});
  EXPECT_NEAR(cosine_similarity(a, a), 1.0f, 1e-6);
}

TEST(CosineSimilarity, OppositeIsMinusOne) {
  Tensor a = Tensor::from(1, 2, {1, 1});
  Tensor b = Tensor::from(1, 2, {-1, -1});
  EXPECT_NEAR(cosine_similarity(a, b), -1.0f, 1e-6);
}

TEST(CosineSimilarity, OrthogonalIsZero) {
  Tensor a = Tensor::from(1, 2, {1, 0});
  Tensor b = Tensor::from(1, 2, {0, 1});
  EXPECT_NEAR(cosine_similarity(a, b), 0.0f, 1e-6);
}

TEST(CosineSimilarity, ZeroVectorYieldsZero) {
  Tensor a = Tensor::from(1, 2, {0, 0});
  Tensor b = Tensor::from(1, 2, {1, 2});
  EXPECT_FLOAT_EQ(cosine_similarity(a, b), 0.0f);
}

TEST(CosineSimilarity, ScaleInvariant) {
  Tensor a = Tensor::from(1, 3, {1, 2, 3});
  Tensor b = Tensor::from(1, 3, {2, 4, 6});
  EXPECT_NEAR(cosine_similarity(a, b), 1.0f, 1e-6);
}

}  // namespace
}  // namespace odlp::tensor
