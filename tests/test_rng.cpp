#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace odlp::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(17);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexSingleValue) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(23);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(31);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(37);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(43);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalSingleElement) {
  Rng rng(47);
  std::vector<double> w = {2.5};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.categorical(w), 0u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> sorted = v;
  rng.shuffle(v);
  std::vector<int> after = v;
  std::sort(after.begin(), after.end());
  EXPECT_EQ(after, sorted);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(59);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(61);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(67);
  Rng child = parent.split();
  // Child and parent should not mirror each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next_u64() == child.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(71), b(71);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

// Property sweep: uniform_index stays in range for many n.
class RngIndexRange : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RngIndexRange, AlwaysBelowN) {
  Rng rng(GetParam() * 1000003 + 1);
  const std::size_t n = GetParam();
  for (int i = 0; i < 500; ++i) EXPECT_LT(rng.uniform_index(n), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RngIndexRange,
                         ::testing::Values(1, 2, 3, 7, 10, 64, 1000, 1 << 20));

}  // namespace
}  // namespace odlp::util
