#!/bin/sh
# Assembles /root/repo/bench_output.txt from the recorded bench runs under
# results/. Each section is the verbatim stdout of one bench binary
# (results/<name>.txt), produced by ./run_benches.sh.
set -e
cd /root/repo
OUT=bench_output.txt
{
  echo "################################################################"
  echo "# Bench outputs — one section per bench binary."
  echo "# Produced by ./run_benches.sh (full protocol; see EXPERIMENTS.md"
  echo "# for the paper-vs-measured assessment of every table/figure)."
  echo "################################################################"
  for f in table2 table2_v2 figure2 table3 table3_full table4 figure3 ablation robustness micro_selection micro_llm; do
    if [ -f "results/$f.txt" ]; then
      echo
      echo "=============== results/$f.txt ==============="
      cat "results/$f.txt"
    fi
  done
} > "$OUT"
echo "wrote $OUT ($(wc -l < "$OUT") lines)"
