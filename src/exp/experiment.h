// Shared experiment harness for the benchmark binaries.
//
// One ExperimentConfig fully determines a run: dataset profile, selection
// method, buffer size, stream/fine-tune schedule, model geometry, and seed.
// All stochastic inputs derive from the seed, so two runs that differ only
// in `method` see the *same* user, the same stream, the same base model
// checkpoint, and the same evaluation subset — the comparisons in the
// paper's tables are therefore apples-to-apples.
//
// Base model: the paper personalizes a *pretrained* Llama-3B. The harness
// reproduces "deployed generic LLM" by pretraining MiniLlm once on generic
// assistant dialogue (questions from all domains answered with boilerplate,
// no user style) and caching the checkpoint on disk, keyed by the
// configuration; every experiment then clones that checkpoint.
#pragma once

#include <memory>
#include <string>

#include "core/engine.h"
#include "core/sanity_check.h"
#include "core/weighted_policy.h"
#include "core/policy.h"
#include "data/generator.h"
#include "data/profiles.h"
#include "eval/learning_curve.h"
#include "llm/minillm.h"
#include "text/tokenizer.h"

namespace odlp::exp {

struct ExperimentConfig {
  std::string dataset = "MedDialog";
  // "Ours", "Random", "FIFO", "K-Center", "EOE", "DSS", "IDD",
  // "WeightedSum" (design-ablation alternative to Pareto dominance).
  std::string method = "Ours";

  // --- design-ablation knobs (DESIGN.md §6) ---
  // Embedding source for the quality metrics: "llm" (last hidden layer,
  // paper-faithful) or "bow" (hashed bag of words — cheap fallback).
  std::string embedding_source = "llm";
  // Synthesis sanity check: kRejectBelow keeps semantically similar outputs
  // (paper intent, default); kRejectAbove is the paper's literal wording.
  core::SanityCheckMode sanity_mode = core::SanityCheckMode::kRejectBelow;
  double sanity_threshold = 0.35;
  // Maximum user-annotation requests (0 = annotate every selected set).
  std::size_t annotation_budget = 0;

  std::size_t buffer_bins = 32;
  std::size_t stream_size = 320;
  std::size_t test_size = 600;        // held-out pool (the paper's 90%)
  std::size_t eval_subset = 24;       // sets evaluated per checkpoint
  std::size_t eval_repeats = 1;       // sampler seeds averaged per evaluation (must be >= 1)
  std::size_t finetune_interval = 80; // paper: 800 (scaled with the stream)
  std::size_t synth_per_set = 3;
  std::size_t epochs = 20;            // paper: 100 (scaled with model size)
  float learning_rate = 1e-2f;        // LoRA lr for the scaled-down model
  std::size_t batch_size = 16;

  // Model geometry (MiniLlm stand-in for Llama-3B; DESIGN.md §2).
  bool use_rmsnorm = false;  // Llama-style RMSNorm variant
  std::size_t model_dim = 48;
  std::size_t model_heads = 4;
  std::size_t model_layers = 2;
  std::size_t model_ff = 96;
  std::size_t max_seq_len = 64;

  // Base-model pretraining (the "deployed generic LLM").
  std::size_t pretrain_examples = 240;
  std::size_t pretrain_epochs = 6;
  float pretrain_lr = 3e-3f;
  // Directory for cached base checkpoints ("" disables caching).
  std::string cache_dir = "/tmp/odlp_cache";

  bool record_curve = true;   // evaluate at every fine-tune round
  bool use_synthesis = true;
  // Generation temperature for evaluation. The paper fixes τ = 0.5; with a
  // miniature model and small evaluation subsets the sampling variance at
  // τ = 0.5 can swamp the method differences, so benches may lower it
  // (τ < 1e-4 is greedy decoding).
  float eval_temperature = 0.5f;
  std::uint64_t seed = 42;
  // Base-model init/pretraining seed override (0 = derive from `seed` as
  // seed*7919+17). The fleet scheduler sets this so every user in a run
  // personalizes the *same* deployed base checkpoint while keeping distinct
  // per-user data/method seeds; single experiments leave it at 0.
  std::uint64_t base_seed = 0;

  // --- traffic record/replay (DESIGN.md §14) ---
  // When traffic_replay_path names an OBSF recording (io/stream_capture),
  // the dataset is read back from it instead of being generated — bit-
  // identical to the recorded run, so benches and the chaos harness replay
  // the same traffic many times without paying generation cost. When
  // traffic_record_path is set, the generated dataset is recorded there
  // after generation. At most one of the two may be set.
  std::string traffic_record_path;
  std::string traffic_replay_path;

  // --- observability (DESIGN.md §10) ---
  // When non-empty, run_experiment dumps the global metrics registry as JSON
  // to this path at the end of the run.
  std::string metrics_out;
  // When non-empty, enables trace-span recording at the start of the run and
  // flushes Chrome Trace Event Format JSON (Perfetto-loadable) to this path
  // at the end. Equivalent to setting ODLP_TRACE=<path> in the environment.
  std::string trace_out;
  // When non-empty, an OBSF metrics journal (obs/journal.h) is written to
  // this path: one full_snapshot() before the stream, one at every
  // fine-tune round, and one at the end of the run.
  std::string journal_out;
};

// Ground-truth composition of the final buffer (diagnostics only — the
// selection algorithms never see these fields).
struct BufferComposition {
  std::size_t size = 0;
  std::size_t noise = 0;               // uninformative sets retained
  std::size_t distinct_subtopics = 0;  // distinct (domain, subtopic) pairs
  std::size_t distinct_domains = 0;
};

BufferComposition buffer_composition(const core::DataBuffer& buffer);

struct ExperimentResult {
  std::string dataset;
  std::string method;
  double final_rouge = 0.0;
  // Per-set ROUGE-1 of the final model over the shared evaluation subset —
  // aligned across methods under the same seed, so eval::paired_bootstrap
  // applies directly.
  std::vector<double> final_per_set;
  eval::LearningCurve curve{""};
  core::EngineStats engine_stats;
  BufferComposition buffer;
  std::size_t annotation_requests = 0;
  double wall_seconds = 0.0;
  double train_wall_seconds = 0.0;
  double last_seconds_per_epoch = 0.0;
};

// Instantiate a policy by method name (throws std::invalid_argument).
std::unique_ptr<core::ReplacementPolicy> make_policy(const std::string& method);

// Build the fixed on-device tokenizer (vocabulary from the lexicon
// dictionary + phrase pools, frozen).
text::Tokenizer make_device_tokenizer();

// Model geometry from an experiment config + tokenizer.
llm::ModelConfig make_model_config(const ExperimentConfig& config,
                                   const text::Tokenizer& tokenizer);

// The exact seed derivations run_experiment uses, exported so the fleet
// scheduler (src/fleet/) can reconstruct a user's rng streams bit-for-bit
// without re-running the harness:
//   data seed   = seed ^ fnv1a(dataset)      (oracle / generator stream)
//   engine seed = data ^ fnv1a(method) ^ 0xabcdef12345 (policy/train stream)
//   base seed   = base_seed, or seed*7919+17 when base_seed == 0
std::uint64_t experiment_data_seed(const ExperimentConfig& config);
std::uint64_t experiment_engine_seed(const ExperimentConfig& config);
std::uint64_t experiment_base_seed(const ExperimentConfig& config);

// The EngineConfig exactly as run_experiment builds it (shared with the
// fleet scheduler so worker engines match sequential engines field-for-field).
core::EngineConfig make_engine_config(const ExperimentConfig& config);

// Pretrain (or load from cache) the generic base model.
std::unique_ptr<llm::MiniLlm> make_base_model(const ExperimentConfig& config,
                                              const text::Tokenizer& tokenizer);

// The dataset exactly as run_experiment builds it: generated from the
// config's data seed through `oracle`, or replayed bit-identically from
// config.traffic_replay_path; a generated dataset is recorded to
// config.traffic_record_path when set. Shared with the fleet session layer
// so worker streams match sequential streams byte-for-byte.
data::GeneratedDataset make_experiment_dataset(const ExperimentConfig& config,
                                               data::UserOracle& oracle);

// Run the full pipeline for one (dataset, method) cell.
ExperimentResult run_experiment(const ExperimentConfig& config);

// All method names of the paper's main comparison, in table order.
const std::vector<std::string>& main_methods();     // Random FIFO K-Center Ours
const std::vector<std::string>& ablation_methods(); // EOE DSS IDD Ours

}  // namespace odlp::exp
