#include "exp/fleet.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "core/checkpoint.h"
#include "data/generator.h"
#include "data/profiles.h"
#include "devicesim/memory_model.h"
#include "io/stream_capture.h"
#include "llm/embedding_extractor.h"
#include "obs/metrics.h"
#include "obs/scope.h"
#include "util/atomic_file.h"
#include "util/log.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace odlp::exp {

namespace {

void finalize_stats(FleetResult& result) {
  if (result.devices.empty()) return;
  double sum = 0.0, sum_sq = 0.0, ann = 0.0;
  result.min_rouge = result.devices.front().final_rouge;
  result.max_rouge = result.devices.front().final_rouge;
  for (const auto& d : result.devices) {
    sum += d.final_rouge;
    sum_sq += d.final_rouge * d.final_rouge;
    ann += static_cast<double>(d.annotation_requests);
    result.min_rouge = std::min(result.min_rouge, d.final_rouge);
    result.max_rouge = std::max(result.max_rouge, d.final_rouge);
  }
  const double n = static_cast<double>(result.devices.size());
  result.mean_rouge = sum / n;
  result.mean_annotations = ann / n;
  const double var = std::max(0.0, sum_sq / n - result.mean_rouge * result.mean_rouge);
  result.stddev_rouge = std::sqrt(var);
}

}  // namespace

FleetResult run_fleet(const FleetConfig& config, const std::string& method) {
  FleetResult result;
  result.method = method;
  for (std::size_t device = 0; device < config.num_devices; ++device) {
    ExperimentConfig ec = config.device_template;
    ec.method = method;
    ec.seed = config.seed_base + device;
    if (config.shared_base_seed != 0) ec.base_seed = config.shared_base_seed;
    if (!config.traffic_dir.empty()) {
      // Record-once/replay-many: first run of a device records its stream,
      // every later run replays it bit-identically.
      const std::string path =
          config.traffic_dir + "/user-" + std::to_string(device) + ".obsf";
      if (std::filesystem::exists(path)) {
        ec.traffic_replay_path = path;
      } else {
        ec.traffic_record_path = path;
      }
    }
    result.devices.push_back(run_experiment(ec));
  }
  finalize_stats(result);
  return result;
}

namespace {

std::uint64_t fnv1a_bytes(const unsigned char* data, std::size_t n,
                          std::uint64_t h = 1469598103934665603ull) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Everything one chaos device owns: its model, engine, checkpoint store,
// governor, and retry policies — an isolated failure domain.
struct ChaosDevice {
  std::string name;
  std::unique_ptr<llm::MiniLlm> model;
  std::unique_ptr<llm::EmbeddingExtractor> extractor;
  std::unique_ptr<data::UserOracle> oracle;
  std::unique_ptr<core::PersonalizationEngine> engine;
  std::unique_ptr<core::CheckpointManager> ckpt;
  std::unique_ptr<resil::ResourceGovernor> governor;
  std::unique_ptr<resil::RetryPolicy> ingest_retry;
  core::EngineConfig nominal;
  data::DialogueStream stream;
  std::size_t cursor = 0;  // next stream position to ingest
};

// State hash over the newest restorable generation's deterministic
// component files (metrics.bin carries wall-clock timings, so it is
// excluded). Same config + same schedule => same bytes => same hash.
std::uint64_t device_state_hash(const core::CheckpointManager& ckpt,
                                std::uint64_t* generation_out) {
  const auto valid = ckpt.newest_valid();
  if (!valid) {
    *generation_out = 0;
    return 0;
  }
  *generation_out = valid->generation;
  std::uint64_t h = 1469598103934665603ull;
  for (const std::string* path :
       {&valid->model_path, &valid->buffer_path, &valid->stats_path}) {
    const std::vector<unsigned char> bytes = util::read_file(*path);
    h = fnv1a_bytes(bytes.data(), bytes.size(), h);
  }
  return h;
}

}  // namespace

ChaosFleetResult run_chaos_fleet(const ChaosFleetConfig& config) {
  if (config.work_dir.empty()) {
    throw std::invalid_argument("run_chaos_fleet: work_dir is required");
  }
  util::Stopwatch watch;
  ChaosFleetResult result;
  const auto& dict = lexicon::builtin_dictionary();
  const text::Tokenizer tokenizer = make_device_tokenizer();

  llm::ModelConfig mc;
  mc.vocab_size = tokenizer.vocab().size();
  mc.dim = config.model_dim;
  mc.heads = config.model_heads;
  mc.layers = config.model_layers;
  mc.ff_hidden = config.model_ff;
  mc.max_seq_len = config.max_seq_len;

  std::vector<std::unique_ptr<ChaosDevice>> devices;
  devices.reserve(config.num_devices);
  for (std::size_t i = 0; i < config.num_devices; ++i) {
    auto d = std::make_unique<ChaosDevice>();
    d->name = util::format("device-%03zu", i);
    const std::uint64_t seed = config.seed_base + i;

    // Raw-initialized tiny model, no base pretraining: the chaos suite
    // exercises the resilience stack, not personalization quality.
    d->model = std::make_unique<llm::MiniLlm>(mc, seed * 7919 + 17);
    d->extractor =
        std::make_unique<llm::BagOfWordsExtractor>(config.model_dim);
    d->oracle =
        std::make_unique<data::UserOracle>(seed * 2654435761ull + 1, dict);

    // Streams are settled here, before the fault schedule arms below, so
    // recording or replaying traffic cannot shift the fault firing
    // sequence — record-run and replay-run stay bit-identical.
    const std::string traffic_path =
        config.traffic_dir.empty()
            ? std::string()
            : config.traffic_dir + "/" + d->name + ".obsf";
    if (!traffic_path.empty() && std::filesystem::exists(traffic_path)) {
      d->stream = io::replay_dataset(traffic_path).stream;
    } else {
      data::Generator generator(data::profile_by_name(config.dataset),
                                *d->oracle, util::Rng(seed));
      data::GeneratedDataset dataset = generator.generate(
          config.rounds * config.sets_per_round, /*test_size=*/2);
      if (!traffic_path.empty()) io::record_dataset(dataset, traffic_path);
      d->stream = std::move(dataset.stream);
    }

    core::EngineConfig ec;
    ec.buffer_bins = config.buffer_bins;
    ec.finetune_interval = 0;  // rounds fine-tune explicitly
    ec.synth_per_set = config.synth_per_set;
    ec.max_seq_len = config.max_seq_len;
    ec.use_lora = true;
    ec.train.epochs = config.epochs;
    ec.train.batch_size = config.batch_size;
    ec.train.learning_rate = config.learning_rate;
    ec.sampler.max_new_tokens = 8;
    d->nominal = ec;

    util::Rng engine_rng(seed ^ 0xc4a05u);
    d->engine = std::make_unique<core::PersonalizationEngine>(
        *d->model, tokenizer, *d->extractor, *d->oracle, dict,
        make_policy("Ours"),
        std::make_unique<core::ParaphraseSynthesizer>(dict, engine_rng.split()),
        ec, engine_rng.split());

    d->ckpt = std::make_unique<core::CheckpointManager>(
        config.work_dir + "/" + d->name, config.keep_last);
    resil::RetryConfig ckpt_retry = config.retry;
    ckpt_retry.seed = config.retry.seed ^ (0x9E37u + i * 7919u);
    d->ckpt->set_retry(ckpt_retry);
    resil::RetryConfig ingest_retry = config.retry;
    ingest_retry.seed = config.retry.seed ^ (0x51DEu + i * 6271u);
    d->ingest_retry = std::make_unique<resil::RetryPolicy>(ingest_retry);

    resil::GovernorConfig gc = config.governor;
    if (config.engage_governor && gc.memory_budget_bytes == 0) {
      // 95% of the nominal fp32 ledger: the first observation escalates,
      // the int8 rung relieves the pressure, and the ladder gets exercised.
      const devicesim::MemoryLedger nominal_ledger =
          devicesim::model_memory_ledger(*d->model, config.buffer_bins);
      gc.memory_budget_bytes = static_cast<std::size_t>(
          static_cast<double>(nominal_ledger.total_bytes()) * 0.95);
    }
    d->governor = std::make_unique<resil::ResourceGovernor>(gc);
    devices.push_back(std::move(d));
  }

  // Generation 1 lands before the schedule arms: every device starts with
  // an intact restore target no matter what the chaos does afterwards.
  for (auto& d : devices) {
    d->ckpt->save(*d->model, d->engine->buffer(), tokenizer.vocab(),
                  d->engine->stats());
  }

  resil::Supervisor supervisor(config.supervisor);
  // SLO burn-rate loop: one snapshot observation per fleet round; the
  // evaluator's pressure rides every governor observation of the NEXT
  // round, closing the alert -> degradation ladder loop.
  obs::SloEvaluator slo_eval(config.slos);
  double slo_pressure = 0.0;
  static obs::Histogram& h_chaos_round =
      obs::registry().histogram("chaos.round.us", obs::default_us_bounds());
  {
    util::fault::ScopedSchedule armed(config.schedule);
    for (std::size_t round = 0; round < config.rounds; ++round) {
      for (auto& d : devices) {
        const auto round_fn = [&] {
          util::Stopwatch round_sw;
          apply_decision(d->governor->decision(), *d->engine, d->nominal);
          for (std::size_t s = 0; s < config.sets_per_round; ++s) {
            const data::DialogueSet& set =
                d->stream[d->cursor % d->stream.size()];
            // A transient injected fault (task poison, OOM at admission)
            // heals here; persistent ones exhaust and reach the supervisor.
            d->ingest_retry->run(
                "ingest", [&] { d->engine->process(set); });
            ++d->cursor;
          }
          d->engine->finetune_now();
          d->ckpt->save(*d->model, d->engine->buffer(), tokenizer.vocab(),
                        d->engine->stats());
          // Pressure under the *current* decision: the governor sees the
          // effect of its own last rung before walking again.
          const devicesim::MemoryLedger ledger =
              devicesim::governed_memory_ledger(
                  *d->model, d->engine->buffer().effective_capacity(),
                  d->governor->decision().kv_fraction,
                  d->engine->decode_kv_sessions());
          h_chaos_round.record(round_sw.elapsed_seconds() * 1e6);
          d->governor->observe({ledger.total_bytes(),
                                round_sw.elapsed_seconds() * 1e3,
                                slo_pressure});
        };
        const auto recover_fn = [&]() -> bool {
          const auto restored = d->ckpt->restore(*d->model);
          if (!restored) return false;
          d->engine->restore_buffer(std::move(restored->buffer));
          d->model->refresh_quantized_weights();
          return true;
        };
        supervisor.run_round(d->name, round_fn, recover_fn);
      }
      if (!config.slos.empty()) {
        slo_eval.observe(
            obs::full_snapshot(),
            static_cast<std::uint64_t>(watch.elapsed_seconds() * 1e6));
        slo_pressure = slo_eval.pressure();
      }
    }
    result.faults = util::fault::schedule_stats();
  }

  std::uint64_t fleet_hash = 1469598103934665603ull;
  for (auto& d : devices) {
    ChaosDeviceReport report;
    report.name = d->name;
    report.health = supervisor.health(d->name);
    report.governor = d->governor->stats();
    report.final_rung = d->governor->rung();
    report.ckpt_retry = d->ckpt->retry()->stats();
    report.ingest_retry = d->ingest_retry->stats();
    report.engine_stats = d->engine->stats();
    report.state_hash =
        device_state_hash(*d->ckpt, &report.final_generation);
    fleet_hash = fnv1a_bytes(
        reinterpret_cast<const unsigned char*>(&report.state_hash),
        sizeof(report.state_hash), fleet_hash);
    result.devices.push_back(std::move(report));
  }
  result.fleet_state_hash = fleet_hash;
  result.totals = supervisor.totals();
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

std::vector<FleetResult> compare_methods_over_fleet(
    const FleetConfig& config, const std::vector<std::string>& methods) {
  std::vector<FleetResult> results;
  results.reserve(methods.size());
  for (const auto& method : methods) {
    results.push_back(run_fleet(config, method));
  }
  // Per-device wins: which method scored highest on each device index.
  if (!results.empty()) {
    for (std::size_t device = 0; device < config.num_devices; ++device) {
      std::size_t best = 0;
      for (std::size_t m = 1; m < results.size(); ++m) {
        if (results[m].devices[device].final_rouge >
            results[best].devices[device].final_rouge) {
          best = m;
        }
      }
      ++results[best].wins;
    }
  }
  return results;
}

}  // namespace odlp::exp
