#include "exp/fleet.h"

#include <algorithm>
#include <cmath>

namespace odlp::exp {

namespace {

void finalize_stats(FleetResult& result) {
  if (result.devices.empty()) return;
  double sum = 0.0, sum_sq = 0.0, ann = 0.0;
  result.min_rouge = result.devices.front().final_rouge;
  result.max_rouge = result.devices.front().final_rouge;
  for (const auto& d : result.devices) {
    sum += d.final_rouge;
    sum_sq += d.final_rouge * d.final_rouge;
    ann += static_cast<double>(d.annotation_requests);
    result.min_rouge = std::min(result.min_rouge, d.final_rouge);
    result.max_rouge = std::max(result.max_rouge, d.final_rouge);
  }
  const double n = static_cast<double>(result.devices.size());
  result.mean_rouge = sum / n;
  result.mean_annotations = ann / n;
  const double var = std::max(0.0, sum_sq / n - result.mean_rouge * result.mean_rouge);
  result.stddev_rouge = std::sqrt(var);
}

}  // namespace

FleetResult run_fleet(const FleetConfig& config, const std::string& method) {
  FleetResult result;
  result.method = method;
  for (std::size_t device = 0; device < config.num_devices; ++device) {
    ExperimentConfig ec = config.device_template;
    ec.method = method;
    ec.seed = config.seed_base + device;
    result.devices.push_back(run_experiment(ec));
  }
  finalize_stats(result);
  return result;
}

std::vector<FleetResult> compare_methods_over_fleet(
    const FleetConfig& config, const std::vector<std::string>& methods) {
  std::vector<FleetResult> results;
  results.reserve(methods.size());
  for (const auto& method : methods) {
    results.push_back(run_fleet(config, method));
  }
  // Per-device wins: which method scored highest on each device index.
  if (!results.empty()) {
    for (std::size_t device = 0; device < config.num_devices; ++device) {
      std::size_t best = 0;
      for (std::size_t m = 1; m < results.size(); ++m) {
        if (results[m].devices[device].final_rouge >
            results[best].devices[device].final_rouge) {
          best = m;
        }
      }
      ++results[best].wins;
    }
  }
  return results;
}

}  // namespace odlp::exp
