// Fleet simulation: the same personalization framework deployed across many
// devices, each with its own user (different hidden style), its own stream,
// and its own model copy — the deployment-scale view a platform team needs
// before shipping (does the method win on average, or only for lucky
// users?). Each device is an independent run_experiment; the fleet layer
// aggregates distributional statistics across users, which also serves as
// multi-seed replication for the single-user benches.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.h"
#include "obs/slo.h"
#include "resil/governor.h"
#include "resil/retry.h"
#include "resil/supervisor.h"
#include "util/fault.h"

namespace odlp::exp {

struct FleetConfig {
  std::size_t num_devices = 5;
  // Per-device experiments derive from this template; only the seed varies
  // (seed_base + device index), which changes the user, the stream and the
  // model init together.
  ExperimentConfig device_template;
  std::uint64_t seed_base = 1000;
  // When non-zero, every device personalizes the *same* deployed base
  // checkpoint (ExperimentConfig::base_seed override) instead of a
  // per-device one. The concurrent fleet scheduler (src/fleet/) requires a
  // shared base; setting it here makes the sequential run_fleet produce the
  // exact per-user results the scheduler must match bit-for-bit.
  std::uint64_t shared_base_seed = 0;
  // Record-once/replay-many traffic (DESIGN.md §14). When set, device i's
  // stream lives at <traffic_dir>/user-<i>.obsf: the first run records each
  // generated dataset there, and every later run (sequential or scheduler)
  // replays it bit-identically instead of regenerating. The directory must
  // exist.
  std::string traffic_dir;
};

struct FleetResult {
  std::string method;
  std::vector<ExperimentResult> devices;

  double mean_rouge = 0.0;
  double min_rouge = 0.0;
  double max_rouge = 0.0;
  double stddev_rouge = 0.0;
  double mean_annotations = 0.0;
  std::size_t wins = 0;  // filled by compare_methods
};

// Runs the fleet for one method.
FleetResult run_fleet(const FleetConfig& config, const std::string& method);

// Runs several methods over the *same* fleet (same users/streams per device
// index) and counts per-device wins. Results ordered as `methods`.
std::vector<FleetResult> compare_methods_over_fleet(
    const FleetConfig& config, const std::vector<std::string>& methods);

// ---------------------------------------------------------------------------
// Chaos fleet (DESIGN.md §11): the resilience stack under a fault schedule
// ---------------------------------------------------------------------------
//
// Each device runs a full personalization loop — ingest, fine-tune,
// checkpoint — inside its own failure domain: a resil::Supervisor round
// boundary, a per-device ResourceGovernor walking the degradation ladder
// against the device's memory ledger, and RetryPolicies healing transient
// faults on stream ingest and checkpoint I/O. A util::fault::FaultSchedule
// is armed for the duration of the rounds, so injected power loss, bit rot,
// OOM, stalls, and poisoned tasks hit mid-run; recovery restores the device
// from its last intact checkpoint generation while the rest of the fleet
// proceeds. Everything is seeded: the same (config, schedule) pair produces
// bit-identical device state hashes.

struct ChaosFleetConfig {
  std::size_t num_devices = 3;
  std::size_t rounds = 8;
  std::size_t sets_per_round = 4;

  // Deliberately tiny engine/model geometry (no base-model pretraining):
  // the chaos suite measures resilience, not ROUGE.
  std::string dataset = "MedDialog";
  std::size_t buffer_bins = 8;
  std::size_t synth_per_set = 1;
  std::size_t epochs = 1;
  std::size_t batch_size = 8;
  float learning_rate = 1e-2f;
  std::size_t model_dim = 32;
  std::size_t model_heads = 2;
  std::size_t model_layers = 1;
  std::size_t model_ff = 64;
  std::size_t max_seq_len = 32;

  std::uint64_t seed_base = 1000;
  // Record-once/replay-many device streams, as FleetConfig::traffic_dir
  // (<traffic_dir>/device-<i>.obsf). Streams are recorded/replayed *before*
  // the fault schedule is armed, so traffic I/O never perturbs the fault
  // firing sequence — a replayed chaos run stays bit-identical.
  std::string traffic_dir;
  // Per-device checkpoint directories are created under here (required).
  std::string work_dir;
  std::size_t keep_last = 2;  // checkpoint generations retained per device

  // Resilience stack. With engage_governor and a zero memory budget, the
  // budget is derived from the device's fp32 ledger (95% of nominal total)
  // so the degradation ladder actually engages.
  bool engage_governor = true;
  resil::GovernorConfig governor;
  resil::SupervisorConfig supervisor;
  resil::RetryConfig retry;  // checkpoint-I/O and ingest policies

  // Armed for the duration of the rounds (the initial generation-1
  // checkpoint is written before arming, so recovery always has an intact
  // restore target).
  util::fault::FaultSchedule schedule;

  // SLO burn-rate objectives (obs/slo.h), evaluated against a registry
  // snapshot after every fleet round. The evaluator's pressure() feeds each
  // device governor's PressureSample::slo_pressure, so a fast burn walks
  // the fleet down the degradation ladder even when per-device memory and
  // latency look healthy. Round latency is observable as the unscoped
  // histogram "chaos.round.us".
  std::vector<obs::SloObjective> slos;
};

struct ChaosDeviceReport {
  std::string name;
  resil::DeviceHealth health;
  resil::ResourceGovernor::Stats governor;
  resil::Rung final_rung = resil::Rung::kNominal;
  resil::RetryPolicy::Stats ckpt_retry;
  resil::RetryPolicy::Stats ingest_retry;
  core::EngineStats engine_stats;
  std::uint64_t final_generation = 0;  // newest restorable generation
  // FNV-1a over the newest valid generation's model/buffer/stats bytes —
  // the determinism contract's witness (0 when nothing is restorable).
  std::uint64_t state_hash = 0;
};

struct ChaosFleetResult {
  std::vector<ChaosDeviceReport> devices;
  resil::Supervisor::Totals totals;
  util::fault::ScheduleStats faults;  // injections over the whole run
  std::uint64_t fleet_state_hash = 0;  // FNV over the device hashes, in order
  double wall_seconds = 0.0;
};

ChaosFleetResult run_chaos_fleet(const ChaosFleetConfig& config);

}  // namespace odlp::exp
