// Fleet simulation: the same personalization framework deployed across many
// devices, each with its own user (different hidden style), its own stream,
// and its own model copy — the deployment-scale view a platform team needs
// before shipping (does the method win on average, or only for lucky
// users?). Each device is an independent run_experiment; the fleet layer
// aggregates distributional statistics across users, which also serves as
// multi-seed replication for the single-user benches.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.h"

namespace odlp::exp {

struct FleetConfig {
  std::size_t num_devices = 5;
  // Per-device experiments derive from this template; only the seed varies
  // (seed_base + device index), which changes the user, the stream and the
  // model init together.
  ExperimentConfig device_template;
  std::uint64_t seed_base = 1000;
};

struct FleetResult {
  std::string method;
  std::vector<ExperimentResult> devices;

  double mean_rouge = 0.0;
  double min_rouge = 0.0;
  double max_rouge = 0.0;
  double stddev_rouge = 0.0;
  double mean_annotations = 0.0;
  std::size_t wins = 0;  // filled by compare_methods
};

// Runs the fleet for one method.
FleetResult run_fleet(const FleetConfig& config, const std::string& method);

// Runs several methods over the *same* fleet (same users/streams per device
// index) and counts per-device wins. Results ordered as `methods`.
std::vector<FleetResult> compare_methods_over_fleet(
    const FleetConfig& config, const std::vector<std::string>& methods);

}  // namespace odlp::exp
