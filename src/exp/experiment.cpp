#include "exp/experiment.h"

#include <set>
#include <stdexcept>
#include <sys/stat.h>

#include "baselines/fifo_policy.h"
#include "baselines/kcenter_policy.h"
#include "baselines/random_policy.h"
#include "baselines/single_metric_policy.h"
#include "data/generator.h"
#include "data/phrase_pools.h"
#include "io/stream_capture.h"
#include "llm/embedding_extractor.h"
#include "llm/trainer.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace odlp::exp {

namespace {

// Stable dataset hash so different datasets get decorrelated rng streams
// while the same (seed, dataset) pair is fully reproducible.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::unique_ptr<core::ReplacementPolicy> make_policy(const std::string& method) {
  if (method == "Ours") return std::make_unique<core::QualityReplacementPolicy>();
  if (method == "WeightedSum") return std::make_unique<core::WeightedSumPolicy>();
  if (method == "Random") return std::make_unique<baselines::RandomReplacePolicy>();
  if (method == "FIFO") return std::make_unique<baselines::FifoReplacePolicy>();
  if (method == "K-Center") return std::make_unique<baselines::KCenterPolicy>();
  if (method == "EOE") {
    return std::make_unique<baselines::SingleMetricPolicy>(
        baselines::SingleMetric::kEoe);
  }
  if (method == "DSS") {
    return std::make_unique<baselines::SingleMetricPolicy>(
        baselines::SingleMetric::kDss);
  }
  if (method == "IDD") {
    return std::make_unique<baselines::SingleMetricPolicy>(
        baselines::SingleMetric::kIdd);
  }
  throw std::invalid_argument("unknown selection method: " + method);
}

text::Tokenizer make_device_tokenizer() {
  text::Vocab vocab;
  for (const auto& w : data::vocabulary_words(lexicon::builtin_dictionary())) {
    vocab.add(w);
  }
  vocab.freeze();
  return text::Tokenizer(std::move(vocab));
}

llm::ModelConfig make_model_config(const ExperimentConfig& config,
                                   const text::Tokenizer& tokenizer) {
  llm::ModelConfig mc;
  mc.vocab_size = tokenizer.vocab().size();
  mc.dim = config.model_dim;
  mc.heads = config.model_heads;
  mc.layers = config.model_layers;
  mc.ff_hidden = config.model_ff;
  mc.max_seq_len = config.max_seq_len;
  mc.use_rmsnorm = config.use_rmsnorm;
  return mc;
}

std::uint64_t experiment_data_seed(const ExperimentConfig& config) {
  return config.seed ^ fnv1a(config.dataset);
}

std::uint64_t experiment_engine_seed(const ExperimentConfig& config) {
  return experiment_data_seed(config) ^ fnv1a(config.method) ^ 0xabcdef12345ull;
}

std::uint64_t experiment_base_seed(const ExperimentConfig& config) {
  return config.base_seed != 0 ? config.base_seed : config.seed * 7919 + 17;
}

data::GeneratedDataset make_experiment_dataset(const ExperimentConfig& config,
                                               data::UserOracle& oracle) {
  if (!config.traffic_replay_path.empty()) {
    if (!config.traffic_record_path.empty()) {
      throw std::invalid_argument(
          "experiment: traffic_record_path and traffic_replay_path are "
          "mutually exclusive");
    }
    // Safe to skip the generator entirely: UserOracle derives all preferred
    // responses from its seed at construction, so a replayed dataset leaves
    // the oracle in the same state a generated one would.
    return io::replay_dataset(config.traffic_replay_path);
  }
  data::Generator generator(data::profile_by_name(config.dataset), oracle,
                            util::Rng(experiment_data_seed(config)));
  data::GeneratedDataset dataset =
      generator.generate(config.stream_size, config.test_size);
  if (!config.traffic_record_path.empty()) {
    io::record_dataset(dataset, config.traffic_record_path);
  }
  return dataset;
}

core::EngineConfig make_engine_config(const ExperimentConfig& config) {
  core::EngineConfig ec;
  ec.buffer_bins = config.buffer_bins;
  ec.finetune_interval = config.finetune_interval;
  ec.synth_per_set = config.use_synthesis ? config.synth_per_set : 0;
  ec.max_seq_len = config.max_seq_len;
  ec.annotation_budget = config.annotation_budget;
  ec.use_lora = true;
  ec.train.epochs = config.epochs;
  ec.train.batch_size = config.batch_size;
  ec.train.learning_rate = config.learning_rate;
  ec.sampler.temperature = config.eval_temperature;
  ec.sampler.max_new_tokens = 16;
  return ec;
}

std::unique_ptr<llm::MiniLlm> make_base_model(const ExperimentConfig& config,
                                              const text::Tokenizer& tokenizer) {
  const llm::ModelConfig mc = make_model_config(config, tokenizer);
  // Base init seed deliberately excludes `method`: all methods start from
  // the identical deployed model.
  const std::uint64_t base_seed = experiment_base_seed(config);
  auto model = std::make_unique<llm::MiniLlm>(mc, base_seed);

  const std::string cache_path =
      config.cache_dir.empty()
          ? ""
          : util::format(
                "%s/base_v%zu_d%zu_l%zu_h%zu_f%zu_s%zu_p%zu_e%zu_%s_%llu.bin",
                config.cache_dir.c_str(), mc.vocab_size, mc.dim, mc.layers,
                mc.heads, mc.ff_hidden, mc.max_seq_len,
                config.pretrain_examples, config.pretrain_epochs,
                mc.use_rmsnorm ? "rms" : "ln",
                static_cast<unsigned long long>(base_seed));
  if (!cache_path.empty() && file_exists(cache_path)) {
    model->load(cache_path);
    return model;
  }

  // Pretraining corpus: generic dialogue over every domain/subtopic (the
  // assistant's un-personalized behaviour) + filler smalltalk. No user style
  // appears here.
  util::Rng rng(base_seed ^ 0xbade5eedull);
  const auto& dict = lexicon::builtin_dictionary();
  data::UserOracle pretrain_oracle(base_seed ^ 0x0f0f0f0full, dict);
  data::DatasetProfile generic;
  generic.name = "pretrain";
  for (const auto& domain : dict.domains()) generic.domain_mix.push_back({domain.name(), 1.0});
  generic.noise_rate = 0.3;
  generic.burst_length = 1;
  data::Generator gen(generic, pretrain_oracle, rng.split());

  std::vector<text::Tokenizer::EncodedDialogue> corpus;
  for (std::size_t i = 0; i < config.pretrain_examples; ++i) {
    data::DialogueSet set;
    if (rng.bernoulli(generic.noise_rate)) {
      set = gen.make_noise();
    } else {
      const auto d = rng.uniform_index(dict.num_domains());
      const auto s = rng.uniform_index(dict.domain(d).sublexicons().size());
      set = gen.make_informative(d, s);
    }
    // Pretraining supervises the full sequence (plain next-token LM) and the
    // *generic* answer — the deployed model knows language, not the user.
    corpus.push_back(tokenizer.encode_dialogue(set.question, set.answer,
                                               config.max_seq_len,
                                               /*supervise_question=*/true));
  }

  llm::TrainConfig tc;
  tc.epochs = config.pretrain_epochs;
  tc.batch_size = config.batch_size;
  tc.learning_rate = config.pretrain_lr;
  llm::Trainer trainer(*model, tc, rng.split());
  const llm::TrainStats stats = trainer.fine_tune(corpus);
  util::log_info(util::format(
      "pretrained base model: loss %.3f -> %.3f (%.1fs)", stats.first_epoch_loss,
      stats.final_epoch_loss, stats.wall_seconds));

  if (!cache_path.empty()) {
    ::mkdir(config.cache_dir.c_str(), 0755);
    model->save(cache_path);
  }
  return model;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  util::Stopwatch watch;
  if (!config.trace_out.empty()) obs::enable_tracing(config.trace_out);
  // The registry is process-global and may carry counts from earlier runs in
  // the same process; per-run training time is the delta over this run.
  const std::uint64_t train_us_before =
      obs::registry().counter("train.wall_us.total").value();
  ExperimentResult result;
  result.dataset = config.dataset;
  result.method = config.method;
  result.curve = eval::LearningCurve(config.method);

  const auto& dict = lexicon::builtin_dictionary();
  text::Tokenizer tokenizer = make_device_tokenizer();

  // The simulated device owner. Depends on seed + dataset only, never on
  // method: every method personalizes toward the same user.
  const std::uint64_t data_seed = experiment_data_seed(config);
  data::UserOracle oracle(data_seed * 2654435761ull + 1, dict);

  data::GeneratedDataset dataset = make_experiment_dataset(config, oracle);

  // Fixed evaluation subset: a deterministic stride over the test pool,
  // shared by every method under this seed.
  std::vector<const data::DialogueSet*> eval_sets;
  const std::size_t n_eval = std::min(config.eval_subset, dataset.test.size());
  for (std::size_t i = 0; i < n_eval; ++i) {
    eval_sets.push_back(&dataset.test[i * dataset.test.size() / n_eval]);
  }

  std::unique_ptr<llm::MiniLlm> model = make_base_model(config, tokenizer);
  std::unique_ptr<llm::EmbeddingExtractor> extractor;
  if (config.embedding_source == "llm") {
    extractor = std::make_unique<llm::LlmEmbeddingExtractor>(*model, tokenizer);
  } else if (config.embedding_source == "bow") {
    extractor = std::make_unique<llm::BagOfWordsExtractor>(config.model_dim);
  } else {
    throw std::invalid_argument("unknown embedding source: " +
                                config.embedding_source);
  }

  core::EngineConfig ec = make_engine_config(config);

  // Method-dependent seed for policy tie-breaks / training shuffles only.
  util::Rng engine_rng(experiment_engine_seed(config));

  core::ParaphraseSynthesizer::Config synth_config;
  synth_config.sanity.mode = config.sanity_mode;
  synth_config.sanity.threshold = config.sanity_threshold;
  // Hoisted splits: argument evaluation order is unspecified in C++, and the
  // fleet scheduler must reproduce this exact derivation (synthesizer stream
  // first, engine stream second) to match run_experiment bit-for-bit.
  util::Rng synth_rng = engine_rng.split();
  util::Rng engine_ctor_rng = engine_rng.split();
  core::PersonalizationEngine engine(
      *model, tokenizer, *extractor, oracle, dict, make_policy(config.method),
      std::make_unique<core::ParaphraseSynthesizer>(dict, synth_rng,
                                                    synth_config),
      ec, engine_ctor_rng);

  // Metrics journal: a full_snapshot() row-set before the stream, at every
  // fine-tune round, and at the end — the single-device twin of the fleet
  // scheduler's wave-boundary journal.
  std::unique_ptr<obs::JournalWriter> journal;
  if (!config.journal_out.empty()) {
    journal = std::make_unique<obs::JournalWriter>(config.journal_out);
  }
  const auto journal_tick = [&] {
    if (!journal) return;
    journal->append(obs::full_snapshot(),
                    static_cast<std::uint64_t>(watch.elapsed_seconds() * 1e6));
  };

  if (config.record_curve) {
    // Baseline point before any fine-tuning.
    result.curve.record(0, engine.evaluate(eval_sets, config.eval_repeats));
  }
  journal_tick();
  if (config.record_curve || journal) {
    engine.set_finetune_hook([&](std::size_t seen) {
      if (config.record_curve) {
        result.curve.record(seen,
                            engine.evaluate(eval_sets, config.eval_repeats));
      }
      journal_tick();
    });
  }

  engine.run_stream(dataset.stream);

  // Final fine-tune + evaluation if the stream did not end on an interval
  // (interval 0 = no automatic fine-tuning; always fine-tune once at the end).
  if (config.finetune_interval == 0 ||
      config.stream_size % config.finetune_interval != 0) {
    engine.finetune_now();
    if (config.record_curve) {
      result.curve.record(config.stream_size, engine.evaluate(eval_sets, config.eval_repeats));
    }
  }

  result.final_per_set = engine.evaluate_per_set(eval_sets, config.eval_repeats);
  double final_mean = 0.0;
  for (double s : result.final_per_set) final_mean += s;
  if (!result.final_per_set.empty()) {
    final_mean /= static_cast<double>(result.final_per_set.size());
  }
  result.final_rouge =
      config.record_curve ? result.curve.final_rouge() : final_mean;
  result.engine_stats = engine.stats();
  result.buffer = buffer_composition(engine.buffer());
  result.annotation_requests = oracle.annotation_requests();
  result.train_wall_seconds =
      static_cast<double>(
          obs::registry().counter("train.wall_us.total").value() -
          train_us_before) /
      1e6;
  result.last_seconds_per_epoch =
      obs::registry().gauge("train.seconds_per_epoch.last").value();
  result.wall_seconds = watch.elapsed_seconds();
  journal_tick();
  if (journal) journal->finish();
  if (!config.metrics_out.empty()) obs::write_metrics_json(config.metrics_out);
  if (!config.trace_out.empty()) obs::flush_trace();
  return result;
}

BufferComposition buffer_composition(const core::DataBuffer& buffer) {
  BufferComposition comp;
  comp.size = buffer.size();
  std::set<std::pair<int, int>> subtopics;
  std::set<int> domains;
  for (const auto& entry : buffer.entries()) {
    if (entry.set.is_noise) {
      ++comp.noise;
    } else {
      subtopics.emplace(entry.set.true_domain, entry.set.true_subtopic);
      domains.insert(entry.set.true_domain);
    }
  }
  comp.distinct_subtopics = subtopics.size();
  comp.distinct_domains = domains.size();
  return comp;
}

const std::vector<std::string>& main_methods() {
  static const std::vector<std::string> methods = {"Random", "FIFO", "K-Center",
                                                   "Ours"};
  return methods;
}

const std::vector<std::string>& ablation_methods() {
  static const std::vector<std::string> methods = {"EOE", "DSS", "IDD", "Ours"};
  return methods;
}

}  // namespace odlp::exp
