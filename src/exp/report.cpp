#include "exp/report.h"

#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace odlp::exp {

std::string to_markdown(const ExperimentResult& result) {
  std::ostringstream md;
  md << "### " << result.dataset << " / " << result.method << "\n\n";
  md << util::format("- final ROUGE-1: **%.4f**\n", result.final_rouge);
  md << util::format("- annotations requested: %zu of %zu streamed sets\n",
                     result.annotation_requests, result.engine_stats.seen);
  md << util::format("- fine-tune rounds: %zu (synthetic sets used: %zu)\n",
                     result.engine_stats.finetune_rounds,
                     result.engine_stats.synthesized_used);
  md << util::format("- buffer: %zu sets, %zu noise, %zu subtopics\n",
                     result.buffer.size, result.buffer.noise,
                     result.buffer.distinct_subtopics);
  if (result.curve.num_points() > 0) {
    md << "\n| seen sets | ROUGE-1 |\n|---|---|\n";
    for (std::size_t i = 0; i < result.curve.num_points(); ++i) {
      md << util::format("| %zu | %.4f |\n", result.curve.seen()[i],
                         result.curve.rouge()[i]);
    }
  }
  return md.str();
}

std::string grid_to_markdown(const std::vector<std::string>& datasets,
                             const std::vector<std::string>& methods,
                             const std::vector<std::vector<double>>& cells,
                             int precision) {
  if (cells.size() != datasets.size()) {
    throw std::invalid_argument("grid_to_markdown: row count mismatch");
  }
  std::ostringstream md;
  md << "| dataset |";
  for (const auto& m : methods) md << ' ' << m << " |";
  md << "\n|---|";
  for (std::size_t i = 0; i < methods.size(); ++i) md << "---|";
  md << '\n';
  for (std::size_t r = 0; r < datasets.size(); ++r) {
    if (cells[r].size() != methods.size()) {
      throw std::invalid_argument("grid_to_markdown: column count mismatch");
    }
    md << "| " << datasets[r] << " |";
    // Bold the row maximum, as the paper's tables highlight winners.
    std::size_t best = 0;
    for (std::size_t c = 1; c < cells[r].size(); ++c) {
      if (cells[r][c] > cells[r][best]) best = c;
    }
    for (std::size_t c = 0; c < cells[r].size(); ++c) {
      if (c == best) {
        md << util::format(" **%.*f** |", precision, cells[r][c]);
      } else {
        md << util::format(" %.*f |", precision, cells[r][c]);
      }
    }
    md << '\n';
  }
  return md.str();
}

std::string fleet_to_markdown(const std::vector<FleetResult>& results) {
  std::ostringstream md;
  md << "| method | mean | min | max | stddev | device wins |\n"
     << "|---|---|---|---|---|---|\n";
  for (const auto& r : results) {
    md << util::format("| %s | %.4f | %.4f | %.4f | %.4f | %zu |\n",
                       r.method.c_str(), r.mean_rouge, r.min_rouge,
                       r.max_rouge, r.stddev_rouge, r.wins);
  }
  return md.str();
}

}  // namespace odlp::exp
