// Markdown report rendering for experiment and fleet results — the format
// EXPERIMENTS.md uses, generated instead of hand-copied.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/fleet.h"

namespace odlp::exp {

// One experiment, as a markdown section: headline metrics, the learning
// curve (if recorded) as a table, and engine statistics.
std::string to_markdown(const ExperimentResult& result);

// A method-by-dataset grid (e.g. Table 2) as one markdown table. `cells`
// is row-major over datasets x methods and must match the header sizes.
std::string grid_to_markdown(const std::vector<std::string>& datasets,
                             const std::vector<std::string>& methods,
                             const std::vector<std::vector<double>>& cells,
                             int precision = 4);

// Fleet comparison summary as a markdown table.
std::string fleet_to_markdown(const std::vector<FleetResult>& results);

}  // namespace odlp::exp
