// Selection audit log: a structured JSONL record of every selection
// decision, for offline inspection of what the framework kept, replaced and
// rejected on a device (privacy review, debugging, selection drift).
//
// One JSON object per line:
//   {"seen":12,"decision":"replace","victim":3,"eoe":0.91,"dss":0.04,
//    "idd":0.52,"domain":"medical","noise":false}
#pragma once

#include <ostream>
#include <string>

#include "core/policy.h"

namespace odlp::analysis {

enum class SelectionOutcome { kAdmitFree, kReplace, kReject };

struct SelectionEvent {
  std::size_t seen = 0;  // stream position (1-based, as counted by the engine)
  SelectionOutcome outcome = SelectionOutcome::kReject;
  std::optional<std::size_t> victim;  // for kReplace
  core::QualityScores scores;
  std::string dominant_domain;  // empty if none
  bool is_noise = false;        // generator ground truth when available
};

const char* outcome_name(SelectionOutcome outcome);

// Serializes one event as a single JSON line (no trailing newline).
std::string to_json(const SelectionEvent& event);

// Streams events as JSONL.
class AuditLog {
 public:
  explicit AuditLog(std::ostream& out) : out_(out) {}

  void record(const SelectionEvent& event);
  std::size_t events_written() const { return count_; }

 private:
  std::ostream& out_;
  std::size_t count_ = 0;
};

}  // namespace odlp::analysis
