// Per-domain evaluation breakdown: where does the personalized model gain?
//
// The paper reports a single corpus-level ROUGE-1; deployments want to know
// *which* domains improved (did the medical consultations get better, or
// just the smalltalk floor?). DomainReport groups held-out sets by their
// dominant domain (self-supervised, via the lexicon dictionary — no ground
// truth needed) and reports per-group ROUGE-1.
#pragma once

#include <string>
#include <vector>

#include "data/dialogue.h"
#include "lexicon/lexicon.h"
#include "util/table.h"

namespace odlp::analysis {

struct DomainBucket {
  std::string domain;       // lexicon domain name, or "(none)"
  std::size_t count = 0;
  double mean_rouge1 = 0.0;
};

class DomainReport {
 public:
  explicit DomainReport(const lexicon::LexiconDictionary& dict) : dict_(dict) {}

  // Records one evaluated pair: the set, the generated response, and its
  // ROUGE-1 against the reference (caller computes it; this class only
  // aggregates, so any metric variant can be plugged in).
  void add(const data::DialogueSet& set, double rouge1);

  // Buckets in dictionary order, then "(none)" last; empty buckets omitted.
  std::vector<DomainBucket> buckets() const;

  // Overall mean across everything recorded.
  double overall() const;
  std::size_t total() const { return total_count_; }

  util::Table to_table() const;

 private:
  const lexicon::LexiconDictionary& dict_;
  // index: domain id (dict order); last slot = no dominant domain.
  std::vector<std::size_t> counts_ = std::vector<std::size_t>(64, 0);
  std::vector<double> sums_ = std::vector<double>(64, 0.0);
  std::size_t total_count_ = 0;
  double total_sum_ = 0.0;
};

}  // namespace odlp::analysis
