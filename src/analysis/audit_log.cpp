#include "analysis/audit_log.h"

#include "util/strings.h"

namespace odlp::analysis {

const char* outcome_name(SelectionOutcome outcome) {
  switch (outcome) {
    case SelectionOutcome::kAdmitFree: return "admit";
    case SelectionOutcome::kReplace: return "replace";
    case SelectionOutcome::kReject: return "reject";
  }
  return "?";
}

std::string to_json(const SelectionEvent& event) {
  std::string victim = event.victim ? std::to_string(*event.victim) : "null";
  // Domain names come from the lexicon dictionary (identifiers, no quoting
  // hazards); dialogue text is deliberately NOT logged — the audit log must
  // not re-leak the user data the buffer is protecting.
  return util::format(
      "{\"seen\":%zu,\"decision\":\"%s\",\"victim\":%s,\"eoe\":%.4f,"
      "\"dss\":%.4f,\"idd\":%.4f,\"domain\":\"%s\",\"noise\":%s}",
      event.seen, outcome_name(event.outcome), victim.c_str(), event.scores.eoe,
      event.scores.dss, event.scores.idd, event.dominant_domain.c_str(),
      event.is_noise ? "true" : "false");
}

void AuditLog::record(const SelectionEvent& event) {
  out_ << to_json(event) << '\n';
  ++count_;
}

}  // namespace odlp::analysis
