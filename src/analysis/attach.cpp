#include "analysis/attach.h"

namespace odlp::analysis {

void attach_audit_log(core::PersonalizationEngine& engine, AuditLog& log,
                      const lexicon::LexiconDictionary& dict) {
  engine.set_selection_hook([&engine, &log, &dict](const core::Candidate& cand,
                                                   const core::Decision& decision) {
    SelectionEvent event;
    event.seen = engine.stats().seen;
    if (!decision.admit) {
      event.outcome = SelectionOutcome::kReject;
    } else if (decision.victim) {
      event.outcome = SelectionOutcome::kReplace;
      event.victim = decision.victim;
    } else {
      event.outcome = SelectionOutcome::kAdmitFree;
    }
    event.scores = cand.scores;
    if (cand.dominant_domain) {
      event.dominant_domain = dict.domain(*cand.dominant_domain).name();
    }
    if (cand.set) event.is_noise = cand.set->is_noise;
    log.record(event);
  });
}

}  // namespace odlp::analysis
