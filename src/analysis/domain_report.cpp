#include "analysis/domain_report.h"

#include "text/normalize.h"

namespace odlp::analysis {

void DomainReport::add(const data::DialogueSet& set, double rouge1) {
  const auto tokens = text::normalize_and_split(set.text_block());
  const auto dom = dict_.dominant_domain(tokens);
  const std::size_t slot = dom ? *dom : dict_.num_domains();
  if (slot + 1 > counts_.size()) {
    counts_.resize(slot + 1, 0);
    sums_.resize(slot + 1, 0.0);
  }
  ++counts_[slot];
  sums_[slot] += rouge1;
  ++total_count_;
  total_sum_ += rouge1;
}

std::vector<DomainBucket> DomainReport::buckets() const {
  std::vector<DomainBucket> out;
  for (std::size_t i = 0; i <= dict_.num_domains() && i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    DomainBucket b;
    b.domain = i < dict_.num_domains() ? dict_.domain(i).name() : "(none)";
    b.count = counts_[i];
    b.mean_rouge1 = sums_[i] / static_cast<double>(counts_[i]);
    out.push_back(std::move(b));
  }
  return out;
}

double DomainReport::overall() const {
  return total_count_ ? total_sum_ / static_cast<double>(total_count_) : 0.0;
}

util::Table DomainReport::to_table() const {
  util::Table table({"domain", "sets", "mean ROUGE-1"});
  for (const auto& b : buckets()) {
    table.row()
        .cell(b.domain)
        .cell(static_cast<long long>(b.count))
        .cell(b.mean_rouge1, 4);
  }
  table.row().cell("overall").cell(static_cast<long long>(total())).cell(overall(), 4);
  return table;
}

}  // namespace odlp::analysis
