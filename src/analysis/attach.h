// Glue between the analysis tools and a running PersonalizationEngine.
#pragma once

#include "analysis/audit_log.h"
#include "core/engine.h"
#include "lexicon/lexicon.h"

namespace odlp::analysis {

// Installs an audit-log selection hook on the engine. The log must outlive
// the engine's use of the hook. Each decision becomes one JSONL event; the
// engine's 1-based seen counter is reconstructed from engine.stats().
void attach_audit_log(core::PersonalizationEngine& engine, AuditLog& log,
                      const lexicon::LexiconDictionary& dict);

}  // namespace odlp::analysis
