// Supervisor: per-device failure domains for fleet execution (DESIGN.md §11).
//
// A fleet run is only as reliable as its worst device: one poisoned stream,
// injected OOM, or corrupt checkpoint must cost that device a round, not
// the process. The supervisor runs each device round inside a fault
// boundary with an optional watchdog deadline; a throwing round is caught,
// recorded, and answered with the device's recovery callback (typically a
// CheckpointManager restore to the last intact generation) while the rest
// of the fleet proceeds. Devices whose failures streak past
// max_consecutive_failures are quarantined — skipped, counted, and
// reported — instead of burning the fleet's round budget forever.
//
// Health accounting per device: availability = ok rounds / attempted
// rounds, and MTTR = mean rounds from a failing round to the next ok round
// (time-to-repair measured in the fleet's own round unit, so it is
// deterministic under a seeded fault schedule).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/scope.h"

namespace odlp::resil {

struct SupervisorConfig {
  // Wall-clock watchdog per round; 0 disables. A round that completes past
  // its deadline is recorded as a deadline miss and counted unavailable
  // (the work happened, but the device blew its interaction budget).
  double round_deadline_ms = 0.0;
  // Consecutive failures after which the device is quarantined (its rounds
  // are skipped and counted). 0 = never quarantine.
  std::size_t max_consecutive_failures = 0;
};

enum class RoundStatus {
  kOk,                 // ran clean, inside the deadline
  kDeadlineMiss,       // ran clean but overran the watchdog deadline
  kFailedRecovered,    // threw; the recovery callback restored the device
  kFailedUnrecovered,  // threw; no recovery callback, or recovery failed
  kSkippedQuarantined, // device quarantined; round not attempted
};
const char* to_string(RoundStatus status);

struct RoundReport {
  RoundStatus status = RoundStatus::kOk;
  double wall_ms = 0.0;
  std::string error;  // what() of the failure; empty for kOk
};

struct DeviceHealth {
  // Scope handle for per-device registry attribution ("device=<name>"
  // samples in obs::full_snapshot()); acquired on the device's first round.
  obs::ScopeTable::Handle scope;

  std::uint64_t rounds = 0;  // attempted rounds, including quarantined skips
  std::uint64_t ok = 0;
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t failed_recoveries = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t skipped = 0;
  std::uint64_t consecutive_failures = 0;
  bool quarantined = false;

  // Repair accounting: a device goes "down" on its first failing round and
  // comes back "up" on its next ok round; the gap in rounds is one repair.
  bool down = false;
  std::uint64_t down_since_round = 0;
  std::uint64_t repairs = 0;
  std::uint64_t repair_rounds_total = 0;

  double availability() const {
    return rounds == 0 ? 1.0
                       : static_cast<double>(ok) / static_cast<double>(rounds);
  }
  double mttr_rounds() const {
    return repairs == 0 ? 0.0
                        : static_cast<double>(repair_rounds_total) /
                              static_cast<double>(repairs);
  }
};

class Supervisor {
 public:
  explicit Supervisor(const SupervisorConfig& config = SupervisorConfig{});

  using Round = std::function<void()>;
  // Returns true when the device's state was restored to a usable
  // generation; false (or throwing) marks the recovery itself as failed.
  using Recover = std::function<bool()>;

  // Runs one round for `device` inside the fault boundary. Any exception
  // from `round` is caught and answered with `recover` (when provided);
  // exceptions never propagate to the caller.
  RoundReport run_round(const std::string& device, const Round& round,
                        const Recover& recover = Recover{});

  // Lifts a device's quarantine (e.g. after an operator-level repair).
  void reinstate(const std::string& device);

  const DeviceHealth& health(const std::string& device) const;
  std::vector<std::string> devices() const;

  // Fleet-wide aggregates over every supervised device.
  struct Totals {
    std::uint64_t rounds = 0;
    std::uint64_t ok = 0;
    std::uint64_t failures = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t repairs = 0;
    std::uint64_t repair_rounds_total = 0;
    double availability = 1.0;
    double mttr_rounds = 0.0;
  };
  Totals totals() const;

 private:
  SupervisorConfig config_;
  std::map<std::string, DeviceHealth> devices_;
};

}  // namespace odlp::resil
