#include "resil/supervisor.h"

#include <chrono>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/log.h"

namespace odlp::resil {

namespace {

double now_ms_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const char* to_string(RoundStatus status) {
  switch (status) {
    case RoundStatus::kOk:
      return "ok";
    case RoundStatus::kDeadlineMiss:
      return "deadline_miss";
    case RoundStatus::kFailedRecovered:
      return "failed_recovered";
    case RoundStatus::kFailedUnrecovered:
      return "failed_unrecovered";
    case RoundStatus::kSkippedQuarantined:
      return "skipped_quarantined";
  }
  return "unknown";
}

Supervisor::Supervisor(const SupervisorConfig& config) : config_(config) {}

RoundReport Supervisor::run_round(const std::string& device,
                                  const Round& round, const Recover& recover) {
  static obs::Counter& c_rounds =
      obs::registry().counter("resil.supervisor.rounds.total");
  static obs::Counter& c_failures =
      obs::registry().counter("resil.supervisor.failures.total");
  static obs::Counter& c_recoveries =
      obs::registry().counter("resil.supervisor.recoveries.total");
  static obs::Counter& c_misses =
      obs::registry().counter("resil.supervisor.deadline_misses.total");
  static obs::Histogram& h_round_ms =
      obs::registry().histogram("resil.supervisor.round_ms");
  // Scoped twins: the same events attributed per device, so a fleet dump
  // shows WHICH device is failing, not just that one is.
  static obs::ScopedCounter& sc_rounds =
      obs::scoped_registry().counter("resil.supervisor.rounds");
  static obs::ScopedCounter& sc_failures =
      obs::scoped_registry().counter("resil.supervisor.failures");
  static obs::ScopedCounter& sc_recoveries =
      obs::scoped_registry().counter("resil.supervisor.recoveries");

  DeviceHealth& health = devices_[device];
  ++health.rounds;
  if (health.rounds == 1) {
    health.scope = obs::scoped_registry().scopes().acquire("device=" + device);
  }
  c_rounds.inc();
  sc_rounds.inc(health.scope);
  RoundReport report;

  if (health.quarantined) {
    ++health.skipped;
    report.status = RoundStatus::kSkippedQuarantined;
    return report;
  }

  const auto start = std::chrono::steady_clock::now();
  bool threw = false;
  try {
    round();
  } catch (const std::exception& e) {
    threw = true;
    report.error = e.what();
  } catch (...) {
    threw = true;
    report.error = "non-standard exception";
  }
  report.wall_ms = now_ms_since(start);
  h_round_ms.record(report.wall_ms);

  if (!threw && config_.round_deadline_ms > 0.0 &&
      report.wall_ms > config_.round_deadline_ms) {
    // The round finished, but past its watchdog budget: the device was
    // effectively unresponsive, so the round counts against availability.
    report.status = RoundStatus::kDeadlineMiss;
    ++health.deadline_misses;
    c_misses.inc();
    util::log_warn("supervisor: " + device + " missed deadline (" +
                   std::to_string(report.wall_ms) + " ms > " +
                   std::to_string(config_.round_deadline_ms) + " ms)");
    threw = true;  // shares the failure bookkeeping below, minus recovery
  }

  if (!threw) {
    ++health.ok;
    health.consecutive_failures = 0;
    if (health.down) {
      // Repair closed: rounds from the first failing round to this ok round.
      health.down = false;
      ++health.repairs;
      health.repair_rounds_total += health.rounds - health.down_since_round;
    }
    report.status = RoundStatus::kOk;
    return report;
  }

  ++health.failures;
  ++health.consecutive_failures;
  c_failures.inc();
  sc_failures.inc(health.scope);
  if (!health.down) {
    health.down = true;
    health.down_since_round = health.rounds;
  }

  if (report.status != RoundStatus::kDeadlineMiss) {
    util::log_warn("supervisor: " + device + " round failed: " + report.error);
    bool recovered = false;
    if (recover) {
      try {
        recovered = recover();
      } catch (const std::exception& e) {
        util::log_warn("supervisor: " + device +
                       " recovery threw: " + e.what());
      } catch (...) {
        util::log_warn("supervisor: " + device +
                       " recovery threw a non-standard exception");
      }
    }
    if (recovered) {
      ++health.recoveries;
      c_recoveries.inc();
      sc_recoveries.inc(health.scope);
      report.status = RoundStatus::kFailedRecovered;
    } else {
      ++health.failed_recoveries;
      report.status = RoundStatus::kFailedUnrecovered;
    }
  }

  if (config_.max_consecutive_failures > 0 &&
      health.consecutive_failures >= config_.max_consecutive_failures &&
      !health.quarantined) {
    health.quarantined = true;
    util::log_warn("supervisor: " + device + " quarantined after " +
                   std::to_string(health.consecutive_failures) +
                   " consecutive failures");
  }
  return report;
}

void Supervisor::reinstate(const std::string& device) {
  auto it = devices_.find(device);
  if (it == devices_.end()) return;
  it->second.quarantined = false;
  it->second.consecutive_failures = 0;
}

const DeviceHealth& Supervisor::health(const std::string& device) const {
  auto it = devices_.find(device);
  if (it == devices_.end()) {
    throw std::out_of_range("supervisor: unknown device " + device);
  }
  return it->second;
}

std::vector<std::string> Supervisor::devices() const {
  std::vector<std::string> names;
  names.reserve(devices_.size());
  for (const auto& [name, health] : devices_) names.push_back(name);
  return names;
}

Supervisor::Totals Supervisor::totals() const {
  Totals totals;
  for (const auto& [name, health] : devices_) {
    totals.rounds += health.rounds;
    totals.ok += health.ok;
    totals.failures += health.failures;
    totals.recoveries += health.recoveries;
    totals.deadline_misses += health.deadline_misses;
    totals.repairs += health.repairs;
    totals.repair_rounds_total += health.repair_rounds_total;
  }
  totals.availability =
      totals.rounds == 0 ? 1.0
                         : static_cast<double>(totals.ok) /
                               static_cast<double>(totals.rounds);
  totals.mttr_rounds =
      totals.repairs == 0 ? 0.0
                          : static_cast<double>(totals.repair_rounds_total) /
                                static_cast<double>(totals.repairs);
  return totals;
}

}  // namespace odlp::resil
