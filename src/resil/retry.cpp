#include "resil/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/log.h"

namespace odlp::resil {

RetryPolicy::RetryPolicy(const RetryConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.max_attempts == 0) config_.max_attempts = 1;
  if (config_.multiplier < 1.0) config_.multiplier = 1.0;
  config_.jitter = std::clamp(config_.jitter, 0.0, 1.0);
}

bool RetryPolicy::default_transient(const std::exception& e) {
  if (dynamic_cast<const util::CorruptionError*>(&e)) return false;
  if (dynamic_cast<const RetryExhausted*>(&e)) return false;
  if (dynamic_cast<const std::logic_error*>(&e)) return false;
  return true;
}

bool RetryPolicy::transient(const std::exception& e) const {
  return config_.is_transient ? config_.is_transient(e) : default_transient(e);
}

double RetryPolicy::next_backoff_us(std::size_t k) {
  double delay = config_.base_backoff_us;
  for (std::size_t i = 0; i < k; ++i) delay *= config_.multiplier;
  delay = std::min(delay, config_.max_backoff_us);
  // One draw per call whether or not jitter applies, so the RNG stream stays
  // aligned across configurations.
  const double u = rng_.uniform();
  if (config_.jitter > 0.0) {
    delay *= 1.0 - config_.jitter + 2.0 * config_.jitter * u;
  }
  return delay;
}

void RetryPolicy::note_call() {
  static obs::Counter& c = obs::registry().counter("resil.retry.calls.total");
  ++stats_.calls;
  c.inc();
}

void RetryPolicy::note_attempt() {
  static obs::Counter& c =
      obs::registry().counter("resil.retry.attempts.total");
  ++stats_.attempts;
  c.inc();
}

void RetryPolicy::note_healed(const std::string& op, std::size_t retries) {
  static obs::Counter& c = obs::registry().counter("resil.retry.healed.total");
  ++stats_.healed;
  c.inc();
  util::log_info("retry: " + op + " healed after " + std::to_string(retries) +
                 (retries == 1 ? " retry" : " retries"));
}

void RetryPolicy::note_terminal(const std::string& op,
                                const std::string& what) {
  static obs::Counter& c =
      obs::registry().counter("resil.retry.terminal.total");
  ++stats_.terminal;
  c.inc();
  util::log_warn("retry: " + op + " failed terminally: " + what);
}

void RetryPolicy::note_exhausted(const std::string& op) {
  static obs::Counter& c =
      obs::registry().counter("resil.retry.exhausted.total");
  ++stats_.exhausted;
  c.inc();
  util::log_warn("retry: " + op + " exhausted " +
                 std::to_string(config_.max_attempts) + " attempts");
}

void RetryPolicy::backoff(const std::string& op, std::size_t k,
                          const std::string& what) {
  static obs::Histogram& h =
      obs::registry().histogram("resil.retry.backoff_us");
  ++stats_.retries;
  const double delay_us = next_backoff_us(k);
  stats_.backoff_us_total += delay_us;
  h.record(delay_us);
  util::log_warn("retry: " + op + " attempt " + std::to_string(k + 1) +
                 " failed (" + what + "), backing off " +
                 std::to_string(static_cast<long long>(delay_us)) + " us");
  if (config_.sleep) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(delay_us)));
  }
}

}  // namespace odlp::resil
