#include "resil/governor.h"

#include <algorithm>
#include <cmath>

#include "core/engine.h"
#include "obs/metrics.h"
#include "util/log.h"

namespace odlp::resil {

namespace {

// Transitions are rare (a handful per run), so the per-rung counter lookup
// goes through the registry mutex instead of a cached reference.
obs::Counter& rung_enter_counter(Rung rung) {
  return obs::registry().counter(std::string("resil.governor.enter.") +
                                 to_string(rung));
}

}  // namespace

const char* to_string(Rung rung) {
  switch (rung) {
    case Rung::kNominal:
      return "nominal";
    case Rung::kInt8Inference:
      return "int8_inference";
    case Rung::kKvTrim:
      return "kv_trim";
    case Rung::kSynthShrink:
      return "synth_shrink";
    case Rung::kBinShed:
      return "bin_shed";
    case Rung::kSkipFinetune:
      return "skip_finetune";
  }
  return "unknown";
}

ResourceGovernor::ResourceGovernor(const GovernorConfig& config)
    : config_(config), patience_(std::max<std::size_t>(1, config.recover_patience)) {
  config_.recover_threshold = std::clamp(config_.recover_threshold, 0.0, 1.0);
  config_.kv_trim_fraction = std::clamp(config_.kv_trim_fraction, 0.0, 1.0);
  config_.synth_fraction = std::clamp(config_.synth_fraction, 0.0, 1.0);
  config_.buffer_fraction = std::clamp(config_.buffer_fraction, 0.0, 1.0);
  rebuild_decision();
}

void ResourceGovernor::rebuild_decision() {
  const std::size_t r = static_cast<std::size_t>(decision_.rung);
  decision_.precision = r >= 1 ? nn::InferencePrecision::kInt8
                               : nn::InferencePrecision::kFp32;
  decision_.kv_fraction = r >= 2 ? config_.kv_trim_fraction : 1.0;
  decision_.synth_fraction = r >= 3 ? config_.synth_fraction : 1.0;
  decision_.buffer_fraction = r >= 4 ? config_.buffer_fraction : 1.0;
  decision_.skip_finetune = r >= 5;
}

void ResourceGovernor::transition_to(Rung next, bool escalation) {
  static obs::Counter& c_esc =
      obs::registry().counter("resil.governor.escalations.total");
  static obs::Counter& c_rec =
      obs::registry().counter("resil.governor.recoveries.total");
  static obs::Gauge& g_rung = obs::registry().gauge("resil.governor.rung");
  const Rung prev = decision_.rung;
  decision_.rung = next;
  rebuild_decision();
  ++stats_.entered[static_cast<std::size_t>(next)];
  rung_enter_counter(next).inc();
  (escalation ? c_esc : c_rec).inc();
  if (escalation) {
    ++stats_.escalations;
  } else {
    ++stats_.recoveries;
  }
  g_rung.set(static_cast<double>(static_cast<std::size_t>(next)));
  util::log_info(std::string("governor: ") +
                 (escalation ? "escalated " : "recovered ") + to_string(prev) +
                 " -> " + to_string(next) + " (pressure " +
                 std::to_string(pressure_) + ")");
}

const GovernorDecision& ResourceGovernor::observe(const PressureSample& sample) {
  ++stats_.observations;
  double pressure = 0.0;
  if (config_.memory_budget_bytes > 0) {
    pressure = std::max(pressure, static_cast<double>(sample.memory_bytes) /
                                      static_cast<double>(
                                          config_.memory_budget_bytes));
  }
  if (config_.round_deadline_ms > 0.0 && sample.round_ms > 0.0) {
    pressure = std::max(pressure, sample.round_ms / config_.round_deadline_ms);
  }
  pressure = std::max(pressure, sample.slo_pressure);
  pressure_ = pressure;

  const std::size_t rung = static_cast<std::size_t>(decision_.rung);
  if (pressure >= 1.0) {
    clear_streak_ = 0;
    // Relapse: an escalation inside the relapse window of the last recovery
    // means the recovery was premature — demand a longer clear streak next
    // time instead of thrashing the rung.
    if (recovery_pending_ &&
        stats_.observations - last_recovery_obs_ <= config_.relapse_window) {
      patience_ = std::min(patience_ * 2, std::max<std::size_t>(
                                              1, config_.max_patience));
      ++stats_.relapses;
      static obs::Counter& c_relapse =
          obs::registry().counter("resil.governor.relapses.total");
      c_relapse.inc();
    }
    recovery_pending_ = false;
    if (rung + 1 < kNumRungs) {
      transition_to(static_cast<Rung>(rung + 1), /*escalation=*/true);
    }
    return decision_;
  }

  if (recovery_pending_ &&
      stats_.observations - last_recovery_obs_ > config_.relapse_window) {
    recovery_pending_ = false;  // the recovery held — patience stays as-is
  }
  if (pressure < config_.recover_threshold && rung > 0) {
    if (++clear_streak_ >= patience_) {
      clear_streak_ = 0;
      last_recovery_obs_ = stats_.observations;
      recovery_pending_ = true;
      transition_to(static_cast<Rung>(rung - 1), /*escalation=*/false);
    }
  } else {
    clear_streak_ = 0;
  }
  return decision_;
}

void ResourceGovernor::reset() {
  decision_ = GovernorDecision{};
  rebuild_decision();
  pressure_ = 0.0;
  clear_streak_ = 0;
  patience_ = std::max<std::size_t>(1, config_.recover_patience);
  recovery_pending_ = false;
  static obs::Gauge& g_rung = obs::registry().gauge("resil.governor.rung");
  g_rung.set(0.0);
}

void apply_decision(const GovernorDecision& decision,
                    core::PersonalizationEngine& engine,
                    const core::EngineConfig& nominal) {
  nn::InferencePrecision precision = decision.precision;
#ifndef ODLP_INT8
  // Backend compiled out: the int8 rung degrades to a no-op and the ladder
  // effectively starts at KV trim.
  precision = nn::InferencePrecision::kFp32;
#endif
  engine.set_inference_precision(precision);

  const auto scaled = [](std::size_t nominal_value, double fraction,
                         std::size_t floor_value) {
    const double v = std::floor(static_cast<double>(nominal_value) * fraction);
    return std::max(floor_value, static_cast<std::size_t>(v));
  };
  // KV trim: one generated token is the floor — evaluation must still emit
  // something measurable.
  engine.set_max_new_tokens(
      scaled(nominal.sampler.max_new_tokens, decision.kv_fraction, 1));
  engine.set_synth_per_set(
      scaled(nominal.synth_per_set, decision.synth_fraction, 0));
  if (decision.buffer_fraction < 1.0) {
    engine.shed_buffer_to(
        scaled(nominal.buffer_bins, decision.buffer_fraction, 1));
  } else {
    engine.clear_buffer_cap();
  }
  engine.set_finetune_enabled(!decision.skip_finetune);
}

}  // namespace odlp::resil
