// ResourceGovernor: the resource-pressure degradation ladder (DESIGN.md §11).
//
// An unattended edge device cannot page, cannot swap, and cannot miss its
// interaction deadlines; when the memory ledger or the round latency
// approaches its budget, the engine must shed quality before the OS sheds
// the process. The governor watches pressure samples (resident bytes vs. a
// byte budget, round wall-clock vs. a deadline) and walks an explicit,
// observable ladder, one rung per observation:
//
//   0 kNominal       — full fidelity (fp32 inference, full KV, full synth)
//   1 kInt8Inference — inference forwards switch to the int8 base (PR 4):
//                      ~0.28x model bytes, training math untouched
//   2 kKvTrim        — decode generation budget (and with it the live KV
//                      footprint) scaled by kv_trim_fraction
//   3 kSynthShrink   — synthesis batch scaled by synth_fraction (0 = off)
//   4 kBinShed       — live buffer bins capped at buffer_fraction of the
//                      allocation, oldest entries evicted
//   5 kSkipFinetune  — fine-tune rounds skipped entirely (selection and
//                      annotation continue, so no user signal is lost)
//
// Each rung is cumulative (rung 3 includes rungs 1–2) and recoverable: when
// pressure stays below recover_threshold for recover_patience consecutive
// observations the governor steps one rung back down. A recovery that
// immediately re-escalates (within relapse_window observations) doubles the
// patience — oscillation damps itself instead of thrashing the precision
// switch. Every transition is counted in the obs registry
// (resil.governor.*) so degradation is observable, never silent.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "nn/precision.h"

namespace odlp::core {
class PersonalizationEngine;
struct EngineConfig;
}  // namespace odlp::core

namespace odlp::resil {

enum class Rung {
  kNominal = 0,
  kInt8Inference = 1,
  kKvTrim = 2,
  kSynthShrink = 3,
  kBinShed = 4,
  kSkipFinetune = 5,
};
constexpr std::size_t kNumRungs = 6;

const char* to_string(Rung rung);

struct GovernorConfig {
  // Resource budgets; 0 disables that pressure axis.
  std::size_t memory_budget_bytes = 0;
  double round_deadline_ms = 0.0;

  // Recovery hysteresis: pressure must sit below recover_threshold for
  // recover_patience consecutive observations before one step down.
  double recover_threshold = 0.7;
  std::size_t recover_patience = 2;
  // Escalating within relapse_window observations of a recovery doubles the
  // effective patience (capped at max_patience). reset() restores it.
  std::size_t relapse_window = 3;
  std::size_t max_patience = 16;

  // Per-rung degradation strengths.
  double kv_trim_fraction = 0.5;
  double synth_fraction = 0.0;
  double buffer_fraction = 0.5;
};

// What the engine should run with at the governor's current rung. Rungs are
// cumulative: each decision includes every milder rung's measure.
struct GovernorDecision {
  Rung rung = Rung::kNominal;
  nn::InferencePrecision precision = nn::InferencePrecision::kFp32;
  double kv_fraction = 1.0;      // scale on the decode generation budget
  double synth_fraction = 1.0;   // scale on synth_per_set
  double buffer_fraction = 1.0;  // scale on live buffer bins
  bool skip_finetune = false;
};

struct PressureSample {
  std::size_t memory_bytes = 0;  // resident bytes under the *current* rung
  double round_ms = 0.0;         // last round wall-clock; 0 = unknown
  // SLO burn-rate pressure from obs::SloEvaluator::pressure(): 1.0 (a fast
  // burn — forces escalation), 0.75 (a slow burn — holds the current rung
  // by staying above recover_threshold), or 0. Merged into the pressure
  // max, so an alerting fleet sheds load even when memory and latency look
  // individually healthy.
  double slo_pressure = 0.0;
};

class ResourceGovernor {
 public:
  explicit ResourceGovernor(const GovernorConfig& config = GovernorConfig{});

  // Feeds one observation; walks at most one rung per call and returns the
  // decision for the next round.
  const GovernorDecision& observe(const PressureSample& sample);

  const GovernorDecision& decision() const { return decision_; }
  Rung rung() const { return decision_.rung; }
  // max(memory ratio, latency ratio) of the last observation.
  double last_pressure() const { return pressure_; }
  std::size_t effective_patience() const { return patience_; }

  struct Stats {
    std::uint64_t observations = 0;
    std::uint64_t escalations = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t relapses = 0;  // escalations right after a recovery
    // Times each rung was entered (index = static_cast<size_t>(Rung)).
    std::array<std::uint64_t, kNumRungs> entered{};
  };
  const Stats& stats() const { return stats_; }

  // Back to kNominal with nominal patience; transition counters survive.
  void reset();

 private:
  void transition_to(Rung next, bool escalation);
  void rebuild_decision();

  GovernorConfig config_;
  GovernorDecision decision_;
  double pressure_ = 0.0;
  std::size_t clear_streak_ = 0;
  std::size_t patience_;
  std::uint64_t last_recovery_obs_ = 0;
  bool recovery_pending_ = false;  // true while inside the relapse window
  Stats stats_;
};

// Applies a decision to a live engine: the precision switch (guarded by the
// ODLP_INT8 build flag — without the backend the int8 rung is a no-op and
// the ladder simply starts at KV trim), generation/synthesis caps scaled
// from the nominal EngineConfig, buffer bin shedding, and fine-tune gating.
// Idempotent: applying the same decision twice changes nothing.
void apply_decision(const GovernorDecision& decision,
                    core::PersonalizationEngine& engine,
                    const core::EngineConfig& nominal);

}  // namespace odlp::resil
