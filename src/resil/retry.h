// Bounded retry with deterministic jittered exponential backoff.
//
// Edge storage and memory faults are mostly transient: a write that dies
// mid-flash, an allocation that fails during a pressure spike, a round step
// poisoned by one bad input. RetryPolicy wraps such operations (checkpoint
// component saves, stream ingest) so transient faults heal in place while
// persistent ones surface as typed terminal errors after a bounded number
// of attempts — the fail-fast behaviour the rest of the stack already
// handles.
//
// Determinism: backoff jitter comes from a util::Rng seeded per policy, so
// a retried run under the same fault schedule makes the same delays (and
// the same number of attempts) every time. Tests disable the actual nap
// (`sleep = false`) and still observe the exact backoff sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "util/rng.h"

namespace odlp::resil {

// Terminal error: a transient-looking failure survived every attempt.
// Deliberately NOT transient itself — nesting retries does not multiply
// attempts.
class RetryExhausted : public std::runtime_error {
 public:
  RetryExhausted(const std::string& op, std::size_t attempts,
                 const std::string& last_error)
      : std::runtime_error("retry exhausted: " + op + " failed " +
                           std::to_string(attempts) +
                           " attempts; last error: " + last_error),
        attempts_(attempts) {}

  std::size_t attempts() const { return attempts_; }

 private:
  std::size_t attempts_;
};

struct RetryConfig {
  std::size_t max_attempts = 3;   // total tries; 1 = fail-fast (no retry)
  double base_backoff_us = 200.0; // delay before the first retry
  double multiplier = 2.0;        // exponential growth per retry
  double max_backoff_us = 20000.0;
  double jitter = 0.5;            // delay scaled by [1 - jitter, 1 + jitter)
  std::uint64_t seed = 0x5EEDu;   // jitter RNG seed (deterministic sequence)
  bool sleep = true;              // false: account the backoff, skip the nap
  // Overrides the transient/terminal classification; empty = use
  // RetryPolicy::default_transient.
  std::function<bool(const std::exception&)> is_transient;
};

class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryConfig& config = RetryConfig{});

  // Default classification: integrity failures (util::CorruptionError),
  // programming errors (std::logic_error) and RetryExhausted are terminal —
  // bad bytes and bad code do not heal on retry. Everything else (injected
  // power loss / OOM / task faults, plain filesystem runtime_errors,
  // std::bad_alloc) is transient.
  static bool default_transient(const std::exception& e);

  // Deterministic jittered exponential backoff for the 0-based retry `k`.
  // Consumes one RNG draw per call: the sequence, not just each value, is
  // reproducible per policy instance.
  double next_backoff_us(std::size_t k);

  struct Stats {
    std::uint64_t calls = 0;      // run() invocations
    std::uint64_t attempts = 0;   // fn invocations (>= calls)
    std::uint64_t retries = 0;    // attempts after a transient failure
    std::uint64_t healed = 0;     // calls that succeeded after >= 1 retry
    std::uint64_t exhausted = 0;  // calls that threw RetryExhausted
    std::uint64_t terminal = 0;   // calls that rethrew a terminal error
    double backoff_us_total = 0.0;
  };
  const Stats& stats() const { return stats_; }
  const RetryConfig& config() const { return config_; }

  // Runs fn(), retrying transient failures up to config().max_attempts total
  // attempts with backoff in between. Terminal failures rethrow immediately;
  // exhaustion throws RetryExhausted. `op` names the operation in logs,
  // metrics, and the exhaustion message.
  template <typename F>
  auto run(const std::string& op, F&& fn) -> std::invoke_result_t<F> {
    note_call();
    for (std::size_t attempt = 0;; ++attempt) {
      note_attempt();
      try {
        if constexpr (std::is_void_v<std::invoke_result_t<F>>) {
          fn();
          if (attempt > 0) note_healed(op, attempt);
          return;
        } else {
          auto result = fn();
          if (attempt > 0) note_healed(op, attempt);
          return result;
        }
      } catch (const std::exception& e) {
        if (!transient(e)) {
          note_terminal(op, e.what());
          throw;
        }
        if (attempt + 1 >= config_.max_attempts) {
          note_exhausted(op);
          throw RetryExhausted(op, attempt + 1, e.what());
        }
        backoff(op, attempt, e.what());
      }
    }
  }

 private:
  bool transient(const std::exception& e) const;
  void note_call();
  void note_attempt();
  void note_healed(const std::string& op, std::size_t retries);
  void note_terminal(const std::string& op, const std::string& what);
  void note_exhausted(const std::string& op);
  // Computes the k-th backoff, records it, logs, and (optionally) sleeps.
  void backoff(const std::string& op, std::size_t k, const std::string& what);

  RetryConfig config_;
  util::Rng rng_;
  Stats stats_;
};

}  // namespace odlp::resil
