// Token-level cross-entropy loss for language modeling.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace odlp::nn {

struct CrossEntropyResult {
  double loss = 0.0;           // mean NLL over supervised positions
  tensor::Tensor dlogits;      // gradient w.r.t. logits (already divided by count)
  std::size_t count = 0;       // number of supervised positions
};

// logits: [T, V]; targets: length-T token ids; positions with target
// `ignore_index` contribute neither loss nor gradient (used to mask the
// question part of a dialogue set so only the response is supervised).
CrossEntropyResult cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<int>& targets,
                                 int ignore_index = -1);

// In-place spelling for hot loops: reuses `result.dlogits` storage across
// calls (reshaped, never reallocated at steady state) and resets
// loss/count. `logits` may be a workspace slot (e.g. from
// MiniLlm::forward_shared).
void cross_entropy_into(const tensor::Tensor& logits,
                        const std::vector<int>& targets,
                        CrossEntropyResult& result, int ignore_index = -1);

// Perplexity from a mean NLL.
double perplexity(double mean_nll);

}  // namespace odlp::nn
