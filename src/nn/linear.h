// Linear layer with an optional LoRA (Low-Rank Adaptation) adapter.
//
// Forward:  y = x·W + b                      (base path)
//           y += (dropout(x)·A)·B · (α/r)    (LoRA path, when attached)
//
// attach_lora() freezes W and b and adds trainable A (init N(0, 0.02)) and B
// (init 0), matching Hu et al. 2021 as configured in the paper: rank r = 8,
// α = 16, dropout = 0.05 on the adapter input. merge_lora() folds the adapter
// into W for zero-overhead inference after fine-tuning.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "nn/lora_overlay.h"
#include "nn/param.h"
#include "tensor/qtensor.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace odlp::nn {

struct LoraConfig {
  std::size_t rank = 8;
  float alpha = 16.0f;
  float dropout = 0.05f;
};

class Linear {
 public:
  // Creates W [in, out] (Xavier) and b [1, out] (zero).
  Linear(std::string name, std::size_t in, std::size_t out, util::Rng& rng,
         bool bias = true);

  // Forward one sequence x [T, in] -> [T, out], written into a `ws` slot
  // (the returned reference is valid until ws.reset()). Caches activations
  // needed by backward in member storage — never in the workspace — so the
  // caller may reset `ws` between forward and backward. `training` enables
  // LoRA dropout. `x` may itself be a slot of `ws`.
  tensor::Tensor& forward_ws(const tensor::Tensor& x, bool training,
                             tensor::Workspace& ws);

  // Backward from dY [T, out]; accumulates parameter grads (skipped entirely
  // for frozen parameters — the big FLOP saving under LoRA), returns dX in a
  // `ws` slot. Must be preceded by a forward on the same input.
  tensor::Tensor& backward_ws(const tensor::Tensor& dout, tensor::Workspace& ws);

  // Allocating wrappers over the _ws entry points (tests, cold paths); they
  // run in the thread-local scratch arena and return an owned copy.
  tensor::Tensor forward(const tensor::Tensor& x, bool training);
  tensor::Tensor backward(const tensor::Tensor& dout);

  // Frozen-weight INT8 mode: snapshots W into a per-block int8 copy
  // (tensor::QuantizedTensor, kAlongRows) that inference-time forwards
  // (training=false) multiply through tensor::qmatmul_into. Training
  // forwards and every backward keep using the fp32 W, and the LoRA delta
  // stays fp32-exact on top: y = Q(W)·x + b + B(A·x)·(α/r). Must be
  // re-invoked after any mutation of W (merge_lora does so itself; the
  // model-level refresh_quantized_weights covers load/copy). Throws
  // std::runtime_error when built -DODLP_INT8=OFF.
  void quantize_frozen();
  // Drops the int8 copy; forward returns to the fp32 path.
  void dequantize_frozen();
  bool quantized() const { return quantized_; }
  // Round-trip error of the current int8 snapshot against fp32 W.
  tensor::QuantStats quantization_stats() const;

  // Memory-ledger accessors: bytes of base weight + bias resident under the
  // active mode (int8 codes + fp32 scales when quantized), and the
  // scale-table share of that.
  std::size_t resident_weight_bytes() const;
  std::size_t quant_scale_bytes() const;
  // fp32 bytes of W (+ bias) regardless of mode — the ledger's baseline.
  std::size_t fp32_weight_bytes() const {
    return (weight_.value.size() + bias_.value.size()) * sizeof(float);
  }

  // LoRA lifecycle.
  void attach_lora(const LoraConfig& config, util::Rng& rng);
  void detach_lora();
  bool has_lora() const { return lora_.has_value(); }
  // Folds A·B·(α/r) into W and removes the adapter; W/b become trainable again.
  void merge_lora();

  void collect_parameters(ParameterList& out);

  std::size_t in_features() const { return weight_.value.rows(); }
  std::size_t out_features() const { return weight_.value.cols(); }
  const Parameter& weight() const { return weight_; }
  Parameter& mutable_weight() { return weight_; }
  const Parameter* lora_a() const { return lora_ ? &lora_->a : nullptr; }
  const Parameter* lora_b() const { return lora_ ? &lora_->b : nullptr; }
  // Mutable adapter access for the fleet hot-swap path (overwriting the
  // values in place; shapes must not change). Precondition: has_lora().
  Parameter& mutable_lora_a() { return lora_->a; }
  Parameter& mutable_lora_b() { return lora_->b; }

  // Adds per-row LoRA deltas from `overlays` (length n, entries may be
  // null = no adapter for that row) on top of y [n, out], where x [n, in]
  // is the same input the base product consumed. `site` indexes each
  // overlay's `sites` array (the model assigns site indices in
  // lora_linears() order). Replicates the attached-adapter inference math
  // exactly — same m=1 GEMMs, same add_scaled — so row b is bit-identical
  // to forward_ws on a model with row b's adapter attached. Must not be
  // combined with an attached adapter (asserted): the overlay replaces it.
  void apply_lora_rows_ws(const tensor::Tensor& x, tensor::Tensor& y,
                          const LoraOverlaySet* const* overlays, std::size_t n,
                          std::size_t site, tensor::Workspace& ws);

  // Deterministic dropout source for reproducible training.
  void set_dropout_rng(util::Rng* rng) { dropout_rng_ = rng; }
  // The rng LoRA dropout actually draws from when no external source is
  // set — per-user state under fleet hot-swap (capture before deactivating
  // a user, restore before their next training step).
  util::Rng& fallback_dropout_rng() { return fallback_rng_; }

 private:
  struct Lora {
    LoraConfig config;
    Parameter a;  // [in, r]
    Parameter b;  // [r, out]
  };

  std::string name_;
  Parameter weight_;  // [in, out]
  Parameter bias_;    // [1, out]; empty tensor when bias disabled
  bool has_bias_;
  std::optional<Lora> lora_;
  tensor::QuantizedTensor qweight_;  // int8 snapshot of W when quantized_
  bool quantized_ = false;
  util::Rng* dropout_rng_ = nullptr;
  util::Rng fallback_rng_;

  // Forward caches.
  tensor::Tensor cached_x_;         // input
  tensor::Tensor cached_x_dropped_; // LoRA-path input after dropout
  tensor::Tensor cached_xa_;        // dropout(x)·A
  bool cached_training_ = false;
};

}  // namespace odlp::nn
