#include "nn/layernorm.h"

#include <cassert>

namespace odlp::nn {

LayerNorm::LayerNorm(std::string name, std::size_t dim, float eps)
    : gain_(name + ".gain", 1, dim), bias_(name + ".bias", 1, dim), eps_(eps) {
  gain_.value.fill(1.0f);
}

tensor::Tensor LayerNorm::forward(const tensor::Tensor& x) {
  assert(x.cols() == dim());
  tensor::Tensor normalized = tensor::layernorm_rows(x, eps_, &cache_);
  tensor::Tensor out(normalized.rows(), normalized.cols());
  const float* g = gain_.value.row(0);
  const float* b = bias_.value.row(0);
  for (std::size_t i = 0; i < normalized.rows(); ++i) {
    const float* n = normalized.row(i);
    float* o = out.row(i);
    for (std::size_t j = 0; j < normalized.cols(); ++j) o[j] = n[j] * g[j] + b[j];
  }
  return out;
}

tensor::Tensor LayerNorm::backward(const tensor::Tensor& dout) {
  assert(dout.cols() == dim());
  // d/d gain, d/d bias
  tensor::Tensor dnorm(dout.rows(), dout.cols());
  const float* g = gain_.value.row(0);
  for (std::size_t i = 0; i < dout.rows(); ++i) {
    const float* d = dout.row(i);
    const float* n = cache_.normalized.row(i);
    float* dn = dnorm.row(i);
    for (std::size_t j = 0; j < dout.cols(); ++j) {
      if (gain_.trainable) gain_.grad.at(0, j) += d[j] * n[j];
      if (bias_.trainable) bias_.grad.at(0, j) += d[j];
      dn[j] = d[j] * g[j];
    }
  }
  return tensor::layernorm_rows_backward(dnorm, cache_);
}

}  // namespace odlp::nn
