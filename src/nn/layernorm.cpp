#include "nn/layernorm.h"

#include <cassert>

#include "util/thread_pool.h"

namespace odlp::nn {

namespace {
constexpr std::size_t kParallelMinElems = 1u << 14;
}  // namespace

LayerNorm::LayerNorm(std::string name, std::size_t dim, float eps)
    : gain_(name + ".gain", 1, dim), bias_(name + ".bias", 1, dim), eps_(eps) {
  gain_.value.fill(1.0f);
}

tensor::Tensor& LayerNorm::forward_ws(const tensor::Tensor& x,
                                      tensor::Workspace& ws) {
  assert(x.cols() == dim());
  tensor::Tensor& out = ws.acquire(x.rows(), x.cols());
  tensor::layernorm_rows_into(x, eps_, &cache_, out);
  // Affine applied in place over the normalized values (the pre-affine copy
  // lives in cache_.normalized for backward).
  const float* g = gain_.value.row(0);
  const float* b = bias_.value.row(0);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    float* o = out.row(i);
    for (std::size_t j = 0; j < out.cols(); ++j) o[j] = o[j] * g[j] + b[j];
  }
  return out;
}

tensor::Tensor LayerNorm::forward(const tensor::Tensor& x) {
  return forward_ws(x, tensor::Workspace::enter(nullptr));
}

tensor::Tensor& LayerNorm::backward_ws(const tensor::Tensor& dout,
                                       tensor::Workspace& ws) {
  assert(dout.cols() == dim());
  // d/d gain, d/d bias
  tensor::Tensor& dnorm = ws.acquire(dout.rows(), dout.cols());
  const float* g = gain_.value.row(0);
  const std::size_t cols = dout.cols();
  if (dout.size() < kParallelMinElems) {
    for (std::size_t i = 0; i < dout.rows(); ++i) {
      const float* d = dout.row(i);
      const float* n = cache_.normalized.row(i);
      float* dn = dnorm.row(i);
      for (std::size_t j = 0; j < cols; ++j) {
        if (gain_.trainable) gain_.grad.at(0, j) += d[j] * n[j];
        if (bias_.trainable) bias_.grad.at(0, j) += d[j];
        dn[j] = d[j] * g[j];
      }
    }
    tensor::Tensor& din = ws.acquire(dout.rows(), dout.cols());
    tensor::layernorm_rows_backward_into(dnorm, cache_, din);
    return din;
  }
  // Parallel path: dnorm rows are disjoint; the shared gain/bias gradients
  // accumulate via chunk-local partials combined in chunk order (fixed
  // grain), so the result is lane-count independent.
  struct Partial {
    std::vector<float> dgain, dbias;
  };
  const Partial sums = util::ThreadPool::global().reduce_ordered<Partial>(
      0, dout.rows(), /*grain=*/0, Partial{},
      [&](std::size_t i0, std::size_t i1) {
        Partial p{std::vector<float>(cols, 0.0f), std::vector<float>(cols, 0.0f)};
        for (std::size_t i = i0; i < i1; ++i) {
          const float* d = dout.row(i);
          const float* n = cache_.normalized.row(i);
          float* dn = dnorm.row(i);
          for (std::size_t j = 0; j < cols; ++j) {
            p.dgain[j] += d[j] * n[j];
            p.dbias[j] += d[j];
            dn[j] = d[j] * g[j];
          }
        }
        return p;
      },
      [](const Partial& a, const Partial& b) {
        if (a.dgain.empty()) return b;
        if (b.dgain.empty()) return a;
        Partial out = a;
        for (std::size_t j = 0; j < out.dgain.size(); ++j) {
          out.dgain[j] += b.dgain[j];
          out.dbias[j] += b.dbias[j];
        }
        return out;
      });
  for (std::size_t j = 0; j < cols; ++j) {
    if (gain_.trainable) gain_.grad.at(0, j) += sums.dgain[j];
    if (bias_.trainable) bias_.grad.at(0, j) += sums.dbias[j];
  }
  tensor::Tensor& din = ws.acquire(dout.rows(), dout.cols());
  tensor::layernorm_rows_backward_into(dnorm, cache_, din);
  return din;
}

tensor::Tensor LayerNorm::backward(const tensor::Tensor& dout) {
  return backward_ws(dout, tensor::Workspace::enter(nullptr));
}

}  // namespace odlp::nn
