// Pre-LayerNorm transformer decoder block:
//   x = x + Attn(LN1(x));  x = x + FF(LN2(x))
#pragma once

#include <string>
#include <vector>

#include "nn/attention.h"
#include "nn/feedforward.h"
#include "nn/norm.h"
#include "nn/param.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace odlp::nn {

class TransformerBlock {
 public:
  TransformerBlock(std::string name, std::size_t dim, std::size_t heads,
                   std::size_t ff_hidden, util::Rng& rng,
                   Norm::Kind norm_kind = Norm::Kind::kLayerNorm);

  // _ws entry points return a `ws` slot (valid until ws.reset()); backward
  // state lives in member caches of the submodules.
  tensor::Tensor& forward_ws(const tensor::Tensor& x, bool training,
                             tensor::Workspace& ws);
  tensor::Tensor& backward_ws(const tensor::Tensor& dout, tensor::Workspace& ws);
  tensor::Tensor forward(const tensor::Tensor& x, bool training);
  tensor::Tensor backward(const tensor::Tensor& dout);

  // Incremental decode step for one token's hidden state [1, dim] using the
  // layer's KV cache. Inference only; see MultiHeadSelfAttention.
  // Implemented as the n=1 case of the batched step below.
  tensor::Tensor& forward_incremental_ws(const tensor::Tensor& x_t,
                                         KvCache& cache, tensor::Workspace& ws);
  tensor::Tensor forward_incremental(const tensor::Tensor& x_t, KvCache& cache);

  // Batched incremental decode: row b of x [n, dim] advances the session
  // whose layer cache is caches[b]. Norms/FFN are row-wise and attention is
  // per-session, so row b is bit-identical to a lone forward_incremental_ws
  // on session b (see MultiHeadSelfAttention::forward_incremental_batch_ws).
  // `overlays`/`site_base` forward per-row LoRA snapshots to the attention
  // projections — this block's sites are site_base + {0..3} (q/k/v/o); the
  // FFN has no LoRA sites.
  tensor::Tensor& forward_incremental_batch_ws(
      const tensor::Tensor& x, KvCache* const* caches, std::size_t n,
      tensor::Workspace& ws, const LoraOverlaySet* const* overlays = nullptr,
      std::size_t site_base = 0);

  void attach_lora(const LoraConfig& config, util::Rng& rng);
  void merge_lora();
  void collect_parameters(ParameterList& out);
  // Appends every Linear in the block (attention projections, then FFN).
  void collect_linears(std::vector<Linear*>& out);
  void set_dropout_rng(util::Rng* rng);

  MultiHeadSelfAttention& attention() { return attn_; }

 private:
  Norm ln1_;
  Norm ln2_;
  MultiHeadSelfAttention attn_;
  FeedForward ff_;
};

}  // namespace odlp::nn
