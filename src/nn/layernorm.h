// Affine layer normalization over the feature dimension of each row.
#pragma once

#include <string>

#include "nn/param.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace odlp::nn {

class LayerNorm {
 public:
  LayerNorm(std::string name, std::size_t dim, float eps = 1e-5f);

  tensor::Tensor& forward_ws(const tensor::Tensor& x, tensor::Workspace& ws);
  tensor::Tensor& backward_ws(const tensor::Tensor& dout, tensor::Workspace& ws);
  tensor::Tensor forward(const tensor::Tensor& x);
  tensor::Tensor backward(const tensor::Tensor& dout);

  void collect_parameters(ParameterList& out) {
    out.push_back(&gain_);
    out.push_back(&bias_);
  }

  std::size_t dim() const { return gain_.value.cols(); }

 private:
  Parameter gain_;  // [1, dim], init 1
  Parameter bias_;  // [1, dim], init 0
  float eps_;
  tensor::LayerNormCache cache_;
};

}  // namespace odlp::nn
