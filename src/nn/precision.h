// The per-model inference precision switch.
//
// kFp32 is the default: every forward runs the fp32 kernels. kInt8 snapshots
// each frozen base weight into a per-block int8 copy (tensor::QuantizedTensor)
// and routes inference-time forwards (training=false) through the int8 GEMM;
// training forwards, every backward, LoRA adapters, norms, and biases stay
// fp32, so fine-tuning under LoRA trains exactly as before while synthesis /
// evaluation / embedding extraction decode against the quantized base.
#pragma once

namespace odlp::nn {

enum class InferencePrecision {
  kFp32,
  kInt8,
};

inline const char* to_string(InferencePrecision p) {
  return p == InferencePrecision::kInt8 ? "int8" : "fp32";
}

}  // namespace odlp::nn
