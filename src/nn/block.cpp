#include "nn/block.h"

namespace odlp::nn {

TransformerBlock::TransformerBlock(std::string name, std::size_t dim,
                                   std::size_t heads, std::size_t ff_hidden,
                                   util::Rng& rng, Norm::Kind norm_kind)
    : ln1_(norm_kind, name + ".ln1", dim),
      ln2_(norm_kind, name + ".ln2", dim),
      attn_(name + ".attn", dim, heads, rng),
      ff_(name + ".ff", dim, ff_hidden, rng) {}

tensor::Tensor TransformerBlock::forward(const tensor::Tensor& x, bool training) {
  tensor::Tensor h = x;
  h += attn_.forward(ln1_.forward(x), training);
  tensor::Tensor out = h;
  out += ff_.forward(ln2_.forward(h), training);
  return out;
}

tensor::Tensor TransformerBlock::forward_incremental(const tensor::Tensor& x_t,
                                                     KvCache& cache) {
  tensor::Tensor h = x_t;
  h += attn_.forward_incremental(ln1_.forward(x_t), cache);
  tensor::Tensor out = h;
  out += ff_.forward(ln2_.forward(h), /*training=*/false);
  return out;
}

tensor::Tensor TransformerBlock::backward(const tensor::Tensor& dout) {
  // out = h + ff(ln2(h))
  tensor::Tensor dh = dout;  // residual branch
  dh += ln2_.backward(ff_.backward(dout));
  // h = x + attn(ln1(x))
  tensor::Tensor dx = dh;
  dx += ln1_.backward(attn_.backward(dh));
  return dx;
}

void TransformerBlock::attach_lora(const LoraConfig& config, util::Rng& rng) {
  attn_.attach_lora(config, rng);
}

void TransformerBlock::merge_lora() { attn_.merge_lora(); }

void TransformerBlock::collect_parameters(ParameterList& out) {
  ln1_.collect_parameters(out);
  attn_.collect_parameters(out);
  ln2_.collect_parameters(out);
  ff_.collect_parameters(out);
}

void TransformerBlock::set_dropout_rng(util::Rng* rng) {
  attn_.set_dropout_rng(rng);
}

}  // namespace odlp::nn
