#include "nn/block.h"

#include "tensor/ops.h"

namespace odlp::nn {

TransformerBlock::TransformerBlock(std::string name, std::size_t dim,
                                   std::size_t heads, std::size_t ff_hidden,
                                   util::Rng& rng, Norm::Kind norm_kind)
    : ln1_(norm_kind, name + ".ln1", dim),
      ln2_(norm_kind, name + ".ln2", dim),
      attn_(name + ".attn", dim, heads, rng),
      ff_(name + ".ff", dim, ff_hidden, rng) {}

tensor::Tensor& TransformerBlock::forward_ws(const tensor::Tensor& x,
                                             bool training,
                                             tensor::Workspace& ws) {
  tensor::Tensor& a = attn_.forward_ws(ln1_.forward_ws(x, ws), training, ws);
  tensor::Tensor& h = ws.acquire(x.rows(), x.cols());
  tensor::add_into(x, a, h);
  tensor::Tensor& f = ff_.forward_ws(ln2_.forward_ws(h, ws), training, ws);
  tensor::Tensor& out = ws.acquire(x.rows(), x.cols());
  tensor::add_into(h, f, out);
  return out;
}

tensor::Tensor TransformerBlock::forward(const tensor::Tensor& x, bool training) {
  return forward_ws(x, training, tensor::Workspace::enter(nullptr));
}

tensor::Tensor& TransformerBlock::forward_incremental_ws(
    const tensor::Tensor& x_t, KvCache& cache, tensor::Workspace& ws) {
  KvCache* one[1] = {&cache};
  return forward_incremental_batch_ws(x_t, one, 1, ws);
}

tensor::Tensor& TransformerBlock::forward_incremental_batch_ws(
    const tensor::Tensor& x, KvCache* const* caches, std::size_t n,
    tensor::Workspace& ws, const LoraOverlaySet* const* overlays,
    std::size_t site_base) {
  tensor::Tensor& a = attn_.forward_incremental_batch_ws(
      ln1_.forward_ws(x, ws), caches, n, ws, overlays, site_base);
  tensor::Tensor& h = ws.acquire(x.rows(), x.cols());
  tensor::add_into(x, a, h);
  tensor::Tensor& f =
      ff_.forward_ws(ln2_.forward_ws(h, ws), /*training=*/false, ws);
  tensor::Tensor& out = ws.acquire(x.rows(), x.cols());
  tensor::add_into(h, f, out);
  return out;
}

tensor::Tensor TransformerBlock::forward_incremental(const tensor::Tensor& x_t,
                                                     KvCache& cache) {
  return forward_incremental_ws(x_t, cache, tensor::Workspace::enter(nullptr));
}

tensor::Tensor& TransformerBlock::backward_ws(const tensor::Tensor& dout,
                                              tensor::Workspace& ws) {
  // out = h + ff(ln2(h))
  tensor::Tensor& dh = ws.acquire(dout.rows(), dout.cols());
  tensor::add_into(dout, ln2_.backward_ws(ff_.backward_ws(dout, ws), ws), dh);
  // h = x + attn(ln1(x))
  tensor::Tensor& dx = ws.acquire(dout.rows(), dout.cols());
  tensor::add_into(dh, ln1_.backward_ws(attn_.backward_ws(dh, ws), ws), dx);
  return dx;
}

tensor::Tensor TransformerBlock::backward(const tensor::Tensor& dout) {
  return backward_ws(dout, tensor::Workspace::enter(nullptr));
}

void TransformerBlock::attach_lora(const LoraConfig& config, util::Rng& rng) {
  attn_.attach_lora(config, rng);
}

void TransformerBlock::merge_lora() { attn_.merge_lora(); }

void TransformerBlock::collect_parameters(ParameterList& out) {
  ln1_.collect_parameters(out);
  attn_.collect_parameters(out);
  ln2_.collect_parameters(out);
  ff_.collect_parameters(out);
}

void TransformerBlock::collect_linears(std::vector<Linear*>& out) {
  attn_.collect_linears(out);
  ff_.collect_linears(out);
}

void TransformerBlock::set_dropout_rng(util::Rng* rng) {
  attn_.set_dropout_rng(rng);
}

}  // namespace odlp::nn
