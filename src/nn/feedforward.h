// Position-wise feed-forward network: Linear -> GELU -> Linear.
#pragma once

#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/param.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace odlp::nn {

class FeedForward {
 public:
  FeedForward(std::string name, std::size_t dim, std::size_t hidden, util::Rng& rng);

  // _ws entry points return a `ws` slot; backward state lives in member
  // caches. The allocating spellings wrap them for tests/cold paths.
  tensor::Tensor& forward_ws(const tensor::Tensor& x, bool training,
                             tensor::Workspace& ws);
  tensor::Tensor& backward_ws(const tensor::Tensor& dout, tensor::Workspace& ws);
  tensor::Tensor forward(const tensor::Tensor& x, bool training);
  tensor::Tensor backward(const tensor::Tensor& dout);

  void collect_parameters(ParameterList& out);
  void collect_linears(std::vector<Linear*>& out);

 private:
  Linear fc_in_;
  Linear fc_out_;
  tensor::Tensor cached_pre_act_;
};

}  // namespace odlp::nn
