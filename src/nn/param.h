// Parameter: a tensor with its gradient accumulator and trainability flag.
//
// Modules own their Parameters and expose them through collect_parameters(),
// which optimizers consume. LoRA fine-tuning is expressed by flipping
// `trainable` on base weights (frozen) vs. adapter weights (trained) — the
// optimizer simply skips frozen parameters, exactly mirroring how LoRA is
// applied to Llama in the paper.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace odlp::nn {

struct Parameter {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;
  bool trainable = true;

  Parameter() = default;
  Parameter(std::string n, std::size_t rows, std::size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.zero(); }
  std::size_t size() const { return value.size(); }
};

using ParameterList = std::vector<Parameter*>;

// Xavier/Glorot-uniform initialization, the default for projection weights.
void init_xavier_uniform(tensor::Tensor& w, util::Rng& rng);

// Gaussian initialization with explicit stddev (embeddings, LoRA A).
void init_normal(tensor::Tensor& w, util::Rng& rng, float stddev);

// Sum of value sizes over trainable parameters only.
std::size_t count_trainable(const ParameterList& params);

// Sum over all parameters.
std::size_t count_total(const ParameterList& params);

// Zero every gradient in the list.
void zero_grads(const ParameterList& params);

// Global gradient-norm clipping over trainable parameters. Returns the
// pre-clip global norm.
float clip_grad_norm(const ParameterList& params, float max_norm);

}  // namespace odlp::nn
