// Optimizers over ParameterLists. AdamW is the paper's fine-tuning optimizer.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/param.h"
#include "tensor/tensor.h"

namespace odlp::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Applies one update using the gradients currently stored in the
  // parameters; does not zero them (caller's responsibility).
  virtual void step(const ParameterList& params) = 0;
  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f);
  void step(const ParameterList& params) override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::unordered_map<const Parameter*, tensor::Tensor> velocity_;
};

// AdamW (decoupled weight decay), Loshchilov & Hutter 2019.
class AdamW final : public Optimizer {
 public:
  struct Config {
    float lr = 3e-4f;          // paper default learning rate
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.01f;
  };

  explicit AdamW(const Config& config);
  void step(const ParameterList& params) override;
  void set_learning_rate(float lr) override { config_.lr = lr; }
  float learning_rate() const override { return config_.lr; }

  long long step_count() const { return t_; }

  struct State {
    tensor::Tensor m;
    tensor::Tensor v;
  };

  // Snapshot / restore of the Adam moments for parameter hot-swap (the fleet
  // AdapterCache carries optimizer state with each user's adapters, so a
  // user resumed on a different worker model continues bit-identically).
  // export_state returns one entry per `params` element, in order; entries
  // for parameters the optimizer has never stepped hold empty tensors.
  // import_state rebinds those entries to `params` (same order) and replaces
  // the step counter; empty entries clear any existing moment so the next
  // step re-initializes it to zero exactly like a fresh optimizer.
  std::vector<State> export_state(const ParameterList& params) const;
  void import_state(const ParameterList& params, std::vector<State> states,
                    long long step_count);

 private:
  Config config_;
  long long t_ = 0;
  std::unordered_map<const Parameter*, State> state_;
};

}  // namespace odlp::nn
