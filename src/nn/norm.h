// Norm: a closed variant over the two normalization layers MiniLlm supports
// (LayerNorm — GPT-style default; RMSNorm — Llama-style, opt-in via
// ModelConfig::use_rmsnorm). A sealed variant keeps the hot path virtual-free
// while letting blocks switch per configuration.
#pragma once

#include <optional>
#include <string>

#include "nn/layernorm.h"
#include "nn/rmsnorm.h"

namespace odlp::nn {

class Norm {
 public:
  enum class Kind { kLayerNorm, kRmsNorm };

  Norm(Kind kind, std::string name, std::size_t dim) : kind_(kind) {
    if (kind_ == Kind::kLayerNorm) {
      layer_.emplace(std::move(name), dim);
    } else {
      rms_.emplace(std::move(name), dim);
    }
  }

  tensor::Tensor& forward_ws(const tensor::Tensor& x, tensor::Workspace& ws) {
    return kind_ == Kind::kLayerNorm ? layer_->forward_ws(x, ws)
                                     : rms_->forward_ws(x, ws);
  }

  tensor::Tensor& backward_ws(const tensor::Tensor& dout, tensor::Workspace& ws) {
    return kind_ == Kind::kLayerNorm ? layer_->backward_ws(dout, ws)
                                     : rms_->backward_ws(dout, ws);
  }

  tensor::Tensor forward(const tensor::Tensor& x) {
    return kind_ == Kind::kLayerNorm ? layer_->forward(x) : rms_->forward(x);
  }

  tensor::Tensor backward(const tensor::Tensor& dout) {
    return kind_ == Kind::kLayerNorm ? layer_->backward(dout)
                                     : rms_->backward(dout);
  }

  void collect_parameters(ParameterList& out) {
    if (kind_ == Kind::kLayerNorm) {
      layer_->collect_parameters(out);
    } else {
      rms_->collect_parameters(out);
    }
  }

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
  std::optional<LayerNorm> layer_;
  std::optional<RmsNorm> rms_;
};

}  // namespace odlp::nn
