#include "nn/embedding.h"

#include <cassert>
#include <stdexcept>

namespace odlp::nn {

Embedding::Embedding(std::string name, std::size_t vocab, std::size_t dim,
                     util::Rng& rng)
    : table_(std::move(name), vocab, dim) {
  init_normal(table_.value, rng, 0.02f);
}

void Embedding::forward_into(const std::vector<int>& ids, tensor::Tensor& out,
                             bool accumulate, bool training) {
  cached_ids_ = ids;
  if (!accumulate) {
    out.resize_uninitialized(ids.size(), dim());
  }
  assert(out.rows() == ids.size() && out.cols() == dim());
#ifdef ODLP_INT8
  const bool use_q = quantized_ && !training;
#else
  (void)training;
#endif
  for (std::size_t t = 0; t < ids.size(); ++t) {
    assert(ids[t] >= 0 && static_cast<std::size_t>(ids[t]) < vocab_size());
    float* dst = out.row(t);
#ifdef ODLP_INT8
    if (use_q) {
      qtable_.dequantize_row_into(static_cast<std::size_t>(ids[t]), dst,
                                  accumulate);
      continue;
    }
#endif
    const float* src = table_.value.row(static_cast<std::size_t>(ids[t]));
    if (accumulate) {
      for (std::size_t j = 0; j < dim(); ++j) dst[j] += src[j];
    } else {
      for (std::size_t j = 0; j < dim(); ++j) dst[j] = src[j];
    }
  }
}

tensor::Tensor Embedding::forward(const std::vector<int>& ids) {
  tensor::Tensor out;
  forward_into(ids, out);
  return out;
}

void Embedding::quantize_frozen() {
#ifdef ODLP_INT8
  qtable_ = tensor::QuantizedTensor::quantize(table_.value,
                                              tensor::QuantAxis::kAlongCols);
  quantized_ = true;
#else
  throw std::runtime_error(
      "nn::Embedding::quantize_frozen: INT8 backend unavailable "
      "(built -DODLP_INT8=OFF)");
#endif
}

void Embedding::dequantize_frozen() {
  qtable_ = tensor::QuantizedTensor();
  quantized_ = false;
}

tensor::QuantStats Embedding::quantization_stats() const {
#ifdef ODLP_INT8
  assert(quantized_);
  return qtable_.round_trip_stats(table_.value);
#else
  return {};
#endif
}

std::size_t Embedding::resident_bytes() const {
  if (quantized_) return qtable_.resident_bytes();
  return table_.value.size() * sizeof(float);
}

std::size_t Embedding::quant_scale_bytes() const {
  return quantized_ ? qtable_.scale_bytes() : 0;
}

void Embedding::backward(const tensor::Tensor& dout) {
  assert(dout.rows() == cached_ids_.size() && dout.cols() == dim());
  if (!table_.trainable) return;
  for (std::size_t t = 0; t < cached_ids_.size(); ++t) {
    float* gdst = table_.grad.row(static_cast<std::size_t>(cached_ids_[t]));
    const float* src = dout.row(t);
    for (std::size_t j = 0; j < dim(); ++j) gdst[j] += src[j];
  }
}

}  // namespace odlp::nn
