#include "nn/embedding.h"

#include <cassert>

namespace odlp::nn {

Embedding::Embedding(std::string name, std::size_t vocab, std::size_t dim,
                     util::Rng& rng)
    : table_(std::move(name), vocab, dim) {
  init_normal(table_.value, rng, 0.02f);
}

void Embedding::forward_into(const std::vector<int>& ids, tensor::Tensor& out,
                             bool accumulate) {
  cached_ids_ = ids;
  if (!accumulate) {
    out.resize_uninitialized(ids.size(), dim());
  }
  assert(out.rows() == ids.size() && out.cols() == dim());
  for (std::size_t t = 0; t < ids.size(); ++t) {
    assert(ids[t] >= 0 && static_cast<std::size_t>(ids[t]) < vocab_size());
    const float* src = table_.value.row(static_cast<std::size_t>(ids[t]));
    float* dst = out.row(t);
    if (accumulate) {
      for (std::size_t j = 0; j < dim(); ++j) dst[j] += src[j];
    } else {
      for (std::size_t j = 0; j < dim(); ++j) dst[j] = src[j];
    }
  }
}

tensor::Tensor Embedding::forward(const std::vector<int>& ids) {
  tensor::Tensor out;
  forward_into(ids, out);
  return out;
}

void Embedding::backward(const tensor::Tensor& dout) {
  assert(dout.rows() == cached_ids_.size() && dout.cols() == dim());
  if (!table_.trainable) return;
  for (std::size_t t = 0; t < cached_ids_.size(); ++t) {
    float* gdst = table_.grad.row(static_cast<std::size_t>(cached_ids_[t]));
    const float* src = dout.row(t);
    for (std::size_t j = 0; j < dim(); ++j) gdst[j] += src[j];
  }
}

}  // namespace odlp::nn
