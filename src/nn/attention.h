// Causal multi-head self-attention with per-projection LoRA support.
//
// The paper fine-tunes exactly the q_proj / k_proj / v_proj / o_proj layers
// with LoRA; attach_lora() here installs adapters on those four projections
// and freezes their base weights.
#pragma once

#include <string>
#include <vector>

#include "nn/kv_cache.h"
#include "nn/linear.h"
#include "nn/param.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace odlp::nn {

class MultiHeadSelfAttention {
 public:
  // dim must be divisible by heads.
  MultiHeadSelfAttention(std::string name, std::size_t dim, std::size_t heads,
                         util::Rng& rng);

  // x: [T, dim] -> [T, dim]; causal (token t attends to positions <= t).
  // The _ws entry points return a `ws` slot (valid until ws.reset()); all
  // state needed by backward lives in member caches, never in `ws`. Scores
  // are computed as Q·Kᵀ with the transposed-operand GEMM — no transposed
  // copy of K is ever materialized.
  tensor::Tensor& forward_ws(const tensor::Tensor& x, bool training,
                             tensor::Workspace& ws);
  tensor::Tensor& backward_ws(const tensor::Tensor& dout, tensor::Workspace& ws);
  tensor::Tensor forward(const tensor::Tensor& x, bool training);
  tensor::Tensor backward(const tensor::Tensor& dout);

  // Incremental decode step: processes one new token's hidden state x_t
  // [1, dim] against the cached keys/values, appends this position to the
  // cache, and returns the attention output [1, dim] in a `ws` slot.
  // Inference only (no backward); numerically equivalent to the matching
  // row of forward(). Precondition: !cache.full(). Implemented as the n=1
  // case of the batched step below.
  tensor::Tensor& forward_incremental_ws(const tensor::Tensor& x_t,
                                         KvCache& cache, tensor::Workspace& ws);
  tensor::Tensor forward_incremental(const tensor::Tensor& x_t, KvCache& cache);

  // Batched incremental decode over `n` independent sessions: row b of x
  // [n, dim] holds the new token's hidden state for the session whose cache
  // is caches[b]; each row's keys/values are appended at that session's own
  // cache position (ragged lengths are fine — sessions advance
  // independently). Returns the attention outputs [n, dim] in a `ws` slot.
  // The q/k/v/o projections run as shared GEMMs at m=n; the per-session
  // attention mix is the same scalar loop as the single-session path, so row
  // b is bit-identical to a lone forward_incremental_ws on session b at any
  // batch size (DESIGN.md §12). Preconditions: n > 0, x.rows() == n,
  // !caches[b]->full() for every b.
  //
  // `overlays` (optional, length n) carries per-row LoRA snapshots for
  // cross-tenant decode: row b's deltas are applied on each projection's
  // output with this module's site indices `site_base + {0,1,2,3}` for
  // q/k/v/o (see nn/lora_overlay.h). Null entries (or a null array) skip
  // the overlay for that row.
  tensor::Tensor& forward_incremental_batch_ws(
      const tensor::Tensor& x, KvCache* const* caches, std::size_t n,
      tensor::Workspace& ws, const LoraOverlaySet* const* overlays = nullptr,
      std::size_t site_base = 0);

  void attach_lora(const LoraConfig& config, util::Rng& rng);
  void merge_lora();
  void collect_parameters(ParameterList& out);
  // Appends the four projection layers; MiniLlm walks these for the
  // quantize / memory-ledger traversals.
  void collect_linears(std::vector<Linear*>& out);
  void set_dropout_rng(util::Rng* rng);

  std::size_t dim() const { return dim_; }
  std::size_t heads() const { return heads_; }

 private:
  std::size_t dim_;
  std::size_t heads_;
  std::size_t head_dim_;
  Linear q_proj_;
  Linear k_proj_;
  Linear v_proj_;
  Linear o_proj_;

  // Forward caches (one entry per head).
  tensor::Tensor cached_q_, cached_k_, cached_v_;
  std::vector<tensor::Tensor> cached_probs_;
};

}  // namespace odlp::nn
