#include "nn/linear.h"

#include <cassert>
#include <stdexcept>

#include "tensor/ops.h"

#ifdef ODLP_INT8
#include "tensor/qops.h"
#endif

namespace odlp::nn {

Linear::Linear(std::string name, std::size_t in, std::size_t out, util::Rng& rng,
               bool bias)
    : name_(std::move(name)),
      weight_(name_ + ".weight", in, out),
      bias_(name_ + ".bias", bias ? 1 : 0, bias ? out : 0),
      has_bias_(bias),
      fallback_rng_(rng.next_u64()) {
  init_xavier_uniform(weight_.value, rng);
}

tensor::Tensor& Linear::forward_ws(const tensor::Tensor& x, bool training,
                                   tensor::Workspace& ws) {
  assert(x.cols() == weight_.value.rows());
  cached_x_ = x;
  cached_training_ = training;
  tensor::Tensor& y = ws.acquire(x.rows(), weight_.value.cols());
#ifdef ODLP_INT8
  if (quantized_ && !training) {
    // Inference-time base product against the int8 snapshot; training
    // forwards fall through to fp32 so backward differentiates the exact
    // path it ran.
    tensor::qmatmul_into(x, qweight_, y);
  } else {
    tensor::matmul_into(x, weight_.value, y);
  }
#else
  tensor::matmul_into(x, weight_.value, y);
#endif
  if (has_bias_) tensor::add_row_broadcast_inplace(y, bias_.value);
  if (lora_) {
    const float keep = 1.0f - lora_->config.dropout;
    cached_x_dropped_ = x;
    if (training && lora_->config.dropout > 0.0f) {
      util::Rng& rng = dropout_rng_ ? *dropout_rng_ : fallback_rng_;
      const float inv_keep = keep > 0.0f ? 1.0f / keep : 0.0f;
      for (std::size_t i = 0; i < cached_x_dropped_.size(); ++i) {
        cached_x_dropped_.data()[i] =
            rng.bernoulli(keep) ? cached_x_dropped_.data()[i] * inv_keep : 0.0f;
      }
    }
    tensor::matmul_into(cached_x_dropped_, lora_->a.value, cached_xa_);
    tensor::Tensor& delta = ws.acquire(cached_xa_.rows(), lora_->b.value.cols());
    tensor::matmul_into(cached_xa_, lora_->b.value, delta);
    const float scaling = lora_->config.alpha / static_cast<float>(lora_->config.rank);
    y.add_scaled(delta, scaling);
  }
  return y;
}

tensor::Tensor Linear::forward(const tensor::Tensor& x, bool training) {
  return forward_ws(x, training, tensor::Workspace::enter(nullptr));
}

void Linear::apply_lora_rows_ws(const tensor::Tensor& x, tensor::Tensor& y,
                                const LoraOverlaySet* const* overlays,
                                std::size_t n, std::size_t site,
                                tensor::Workspace& ws) {
  assert(!lora_);  // the overlay replaces an attached adapter, never stacks
  assert(x.rows() == n && y.rows() == n);
  const std::size_t in = x.cols();
  const std::size_t out = y.cols();
  std::size_t rank = 0;
  for (std::size_t b = 0; b < n; ++b) {
    if (overlays[b]) {
      rank = overlays[b]->sites[site].a.cols();
      break;
    }
  }
  if (rank == 0) return;  // no row carries an adapter
  tensor::Tensor& xrow = ws.acquire(1, in);
  tensor::Tensor& xa = ws.acquire(1, rank);
  tensor::Tensor& delta = ws.acquire(1, out);
  tensor::Tensor& yrow = ws.acquire(1, out);
  for (std::size_t b = 0; b < n; ++b) {
    const LoraOverlaySet* o = overlays[b];
    if (!o) continue;
    const LoraOverlaySet::Site& s = o->sites[site];
    assert(s.a.rows() == in && s.a.cols() == rank);
    assert(s.b.rows() == rank && s.b.cols() == out);
    for (std::size_t j = 0; j < in; ++j) xrow.row(0)[j] = x.row(b)[j];
    // Inference path (no dropout): delta = (x · A) · B, exactly the
    // attached-adapter forward at m=1 — row-invariant vs the m=n GEMM.
    tensor::matmul_into(xrow, s.a, xa);
    tensor::matmul_into(xa, s.b, delta);
    // Route the scaled add through the same add_scaled the attached path
    // uses so the floating-point expression (and its codegen) match.
    for (std::size_t j = 0; j < out; ++j) yrow.row(0)[j] = y.row(b)[j];
    yrow.add_scaled(delta, o->scaling);
    for (std::size_t j = 0; j < out; ++j) y.row(b)[j] = yrow.row(0)[j];
  }
}

tensor::Tensor& Linear::backward_ws(const tensor::Tensor& dout,
                                    tensor::Workspace& ws) {
  assert(dout.cols() == weight_.value.cols());
  assert(dout.rows() == cached_x_.rows());
  tensor::Tensor& dx = ws.acquire(cached_x_.rows(), cached_x_.cols());

  // Base path: dX = dY·Wᵀ always; dW/db only when trainable (frozen under
  // LoRA — skipping them removes the whole Aᵀ·dC product, not just its
  // destination).
  tensor::matmul_nt_into(dout, weight_.value, dx, /*accumulate=*/false);
  if (weight_.trainable) {
    tensor::matmul_tn_into(cached_x_, dout, weight_.grad, /*accumulate=*/true);
  }
  if (has_bias_ && bias_.trainable) {
    tensor::add_row_broadcast_backward(dout, bias_.grad);
  }

  if (lora_) {
    const float scaling = lora_->config.alpha / static_cast<float>(lora_->config.rank);
    tensor::Tensor& ddelta = ws.acquire(dout.rows(), dout.cols());
    tensor::scale_into(dout, scaling, ddelta);
    // delta = (x_dropped · A) · B
    tensor::Tensor& dxa = ws.acquire(cached_xa_.rows(), cached_xa_.cols());
    tensor::matmul_nt_into(ddelta, lora_->b.value, dxa, /*accumulate=*/false);
    tensor::matmul_tn_into(cached_xa_, ddelta, lora_->b.grad, /*accumulate=*/true);
    tensor::Tensor& dx_dropped =
        ws.acquire(cached_x_dropped_.rows(), cached_x_dropped_.cols());
    tensor::matmul_nt_into(dxa, lora_->a.value, dx_dropped, /*accumulate=*/false);
    tensor::matmul_tn_into(cached_x_dropped_, dxa, lora_->a.grad,
                           /*accumulate=*/true);
    // Dropout backward: the mask (with inverted-dropout scaling) is implicit in
    // cached_x_dropped_ — reconstruct it as ratio where x != 0.
    for (std::size_t i = 0; i < dx.size(); ++i) {
      const float x = cached_x_.data()[i];
      const float xd = cached_x_dropped_.data()[i];
      if (x != 0.0f) {
        dx.data()[i] += dx_dropped.data()[i] * (xd / x);
      } else if (!cached_training_ || lora_->config.dropout == 0.0f) {
        dx.data()[i] += dx_dropped.data()[i];
      }
      // x == 0 under active dropout: mask state unknowable, but gradient
      // contribution through a zero input is zero for matmul anyway.
    }
  }
  return dx;
}

tensor::Tensor Linear::backward(const tensor::Tensor& dout) {
  return backward_ws(dout, tensor::Workspace::enter(nullptr));
}

void Linear::quantize_frozen() {
#ifdef ODLP_INT8
  qweight_ = tensor::QuantizedTensor::quantize(weight_.value,
                                               tensor::QuantAxis::kAlongRows);
  quantized_ = true;
#else
  throw std::runtime_error(
      "nn::Linear::quantize_frozen: INT8 backend unavailable "
      "(built -DODLP_INT8=OFF)");
#endif
}

void Linear::dequantize_frozen() {
  qweight_ = tensor::QuantizedTensor();
  quantized_ = false;
}

tensor::QuantStats Linear::quantization_stats() const {
#ifdef ODLP_INT8
  assert(quantized_);
  return qweight_.round_trip_stats(weight_.value);
#else
  return {};
#endif
}

std::size_t Linear::resident_weight_bytes() const {
  const std::size_t bias_bytes = bias_.value.size() * sizeof(float);
  if (quantized_) return qweight_.resident_bytes() + bias_bytes;
  return weight_.value.size() * sizeof(float) + bias_bytes;
}

std::size_t Linear::quant_scale_bytes() const {
  return quantized_ ? qweight_.scale_bytes() : 0;
}

void Linear::attach_lora(const LoraConfig& config, util::Rng& rng) {
  assert(config.rank > 0);
  Lora lora;
  lora.config = config;
  lora.a = Parameter(name_ + ".lora_a", weight_.value.rows(), config.rank);
  lora.b = Parameter(name_ + ".lora_b", config.rank, weight_.value.cols());
  init_normal(lora.a.value, rng, 0.02f);
  lora.b.value.zero();  // Standard LoRA: B starts at zero so delta starts at 0.
  lora_ = std::move(lora);
  weight_.trainable = false;
  bias_.trainable = false;
}

void Linear::detach_lora() {
  lora_.reset();
  weight_.trainable = true;
  bias_.trainable = true;
}

void Linear::merge_lora() {
  if (!lora_) return;
  const float scaling = lora_->config.alpha / static_cast<float>(lora_->config.rank);
  tensor::Tensor delta = tensor::matmul(lora_->a.value, lora_->b.value);
  weight_.value.add_scaled(delta, scaling);
  detach_lora();
  // W changed: the int8 snapshot (if any) must follow it.
  if (quantized_) quantize_frozen();
}

void Linear::collect_parameters(ParameterList& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
  if (lora_) {
    out.push_back(&lora_->a);
    out.push_back(&lora_->b);
  }
}

}  // namespace odlp::nn
