#include "nn/feedforward.h"

#include "tensor/ops.h"

namespace odlp::nn {

FeedForward::FeedForward(std::string name, std::size_t dim, std::size_t hidden,
                         util::Rng& rng)
    : fc_in_(name + ".fc_in", dim, hidden, rng),
      fc_out_(name + ".fc_out", hidden, dim, rng) {}

tensor::Tensor& FeedForward::forward_ws(const tensor::Tensor& x, bool training,
                                        tensor::Workspace& ws) {
  cached_pre_act_ = fc_in_.forward_ws(x, training, ws);
  tensor::Tensor& h = ws.acquire(cached_pre_act_.rows(), cached_pre_act_.cols());
  tensor::gelu_into(cached_pre_act_, h);
  return fc_out_.forward_ws(h, training, ws);
}

tensor::Tensor& FeedForward::backward_ws(const tensor::Tensor& dout,
                                         tensor::Workspace& ws) {
  tensor::Tensor& dh = fc_out_.backward_ws(dout, ws);
  tensor::Tensor& dpre = ws.acquire(dh.rows(), dh.cols());
  tensor::gelu_backward_into(cached_pre_act_, dh, dpre);
  return fc_in_.backward_ws(dpre, ws);
}

tensor::Tensor FeedForward::forward(const tensor::Tensor& x, bool training) {
  return forward_ws(x, training, tensor::Workspace::enter(nullptr));
}

tensor::Tensor FeedForward::backward(const tensor::Tensor& dout) {
  return backward_ws(dout, tensor::Workspace::enter(nullptr));
}

void FeedForward::collect_parameters(ParameterList& out) {
  fc_in_.collect_parameters(out);
  fc_out_.collect_parameters(out);
}

void FeedForward::collect_linears(std::vector<Linear*>& out) {
  out.push_back(&fc_in_);
  out.push_back(&fc_out_);
}

}  // namespace odlp::nn
