#include "nn/feedforward.h"

#include "tensor/ops.h"

namespace odlp::nn {

FeedForward::FeedForward(std::string name, std::size_t dim, std::size_t hidden,
                         util::Rng& rng)
    : fc_in_(name + ".fc_in", dim, hidden, rng),
      fc_out_(name + ".fc_out", hidden, dim, rng) {}

tensor::Tensor FeedForward::forward(const tensor::Tensor& x, bool training) {
  cached_pre_act_ = fc_in_.forward(x, training);
  tensor::Tensor h = tensor::gelu(cached_pre_act_);
  return fc_out_.forward(h, training);
}

tensor::Tensor FeedForward::backward(const tensor::Tensor& dout) {
  tensor::Tensor dh = fc_out_.backward(dout);
  tensor::Tensor dpre = tensor::gelu_backward(cached_pre_act_, dh);
  return fc_in_.backward(dpre);
}

void FeedForward::collect_parameters(ParameterList& out) {
  fc_in_.collect_parameters(out);
  fc_out_.collect_parameters(out);
}

}  // namespace odlp::nn
