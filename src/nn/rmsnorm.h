// RMSNorm (Zhang & Sennrich 2019) — the normalization Llama actually uses:
//   y = x / rms(x) * gain,   rms(x) = sqrt(mean(x²) + eps)
// No mean subtraction and no bias, which is what makes it cheaper than
// LayerNorm on device. Offered as an opt-in (ModelConfig::use_rmsnorm) so
// MiniLlm can match Llama's block structure more closely.
#pragma once

#include <string>
#include <vector>

#include "nn/param.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace odlp::nn {

class RmsNorm {
 public:
  RmsNorm(std::string name, std::size_t dim, float eps = 1e-5f);

  tensor::Tensor& forward_ws(const tensor::Tensor& x, tensor::Workspace& ws);
  tensor::Tensor& backward_ws(const tensor::Tensor& dout, tensor::Workspace& ws);
  tensor::Tensor forward(const tensor::Tensor& x);
  tensor::Tensor backward(const tensor::Tensor& dout);

  void collect_parameters(ParameterList& out) { out.push_back(&gain_); }
  std::size_t dim() const { return gain_.value.cols(); }

 private:
  Parameter gain_;  // [1, dim], init 1
  float eps_;
  tensor::Tensor cached_x_;
  std::vector<float> cached_inv_rms_;
};

}  // namespace odlp::nn
