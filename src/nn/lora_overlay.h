// Per-request LoRA overlay for cross-tenant batched decode (DESIGN.md §13).
//
// The fleet scheduler funnels decode requests from *different users* through
// one BatchedDecodeScheduler over a shared base model that has no adapters
// attached. Each request carries a LoraOverlaySet — a snapshot of that
// user's adapter tensors — and every LoRA-site Linear applies the snapshot
// to its own row of the batched forward:
//
//   y[b] += ((x[b] · A_b) · B_b) · scaling_b
//
// computed with the same m=1 GEMMs and the same add_scaled expression the
// attached-adapter path uses, so row b is bit-identical to decoding on a
// model with user b's adapters attached (matmul rows are independent
// k-ascending accumulations; see DESIGN.md §8/§12).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace odlp::nn {

// One user's full adapter snapshot. `sites` is ordered exactly like
// llm::MiniLlm::lora_linears(): block-major, q/k/v/o within each block.
struct LoraOverlaySet {
  struct Site {
    tensor::Tensor a;  // [in, r]
    tensor::Tensor b;  // [r, out]
  };
  std::vector<Site> sites;
  float scaling = 0.0f;  // alpha / rank

  std::size_t bytes() const {
    std::size_t total = 0;
    for (const Site& s : sites) {
      total += (s.a.size() + s.b.size()) * sizeof(float);
    }
    return total;
  }
};

}  // namespace odlp::nn
