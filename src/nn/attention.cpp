#include "nn/attention.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "tensor/ops.h"

namespace odlp::nn {

namespace {

// Copy columns [c0, c0+w) of `src` into a [T, w] tensor.
tensor::Tensor slice_cols(const tensor::Tensor& src, std::size_t c0, std::size_t w) {
  tensor::Tensor out(src.rows(), w);
  for (std::size_t i = 0; i < src.rows(); ++i) {
    const float* s = src.row(i) + c0;
    float* d = out.row(i);
    for (std::size_t j = 0; j < w; ++j) d[j] = s[j];
  }
  return out;
}

// Accumulate a [T, w] block into columns [c0, c0+w) of `dst`.
void accumulate_cols(tensor::Tensor& dst, const tensor::Tensor& block, std::size_t c0) {
  for (std::size_t i = 0; i < dst.rows(); ++i) {
    float* d = dst.row(i) + c0;
    const float* s = block.row(i);
    for (std::size_t j = 0; j < block.cols(); ++j) d[j] += s[j];
  }
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(std::string name, std::size_t dim,
                                               std::size_t heads, util::Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      q_proj_(name + ".q_proj", dim, dim, rng),
      k_proj_(name + ".k_proj", dim, dim, rng),
      v_proj_(name + ".v_proj", dim, dim, rng),
      o_proj_(name + ".o_proj", dim, dim, rng) {
  assert(dim % heads == 0);
}

tensor::Tensor MultiHeadSelfAttention::forward(const tensor::Tensor& x, bool training) {
  assert(x.cols() == dim_);
  const std::size_t T = x.rows();
  cached_q_ = q_proj_.forward(x, training);
  cached_k_ = k_proj_.forward(x, training);
  cached_v_ = v_proj_.forward(x, training);
  cached_probs_.assign(heads_, tensor::Tensor());

  tensor::Tensor concat(T, dim_, 0.0f);
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  for (std::size_t h = 0; h < heads_; ++h) {
    const std::size_t c0 = h * head_dim_;
    tensor::Tensor qh = slice_cols(cached_q_, c0, head_dim_);
    tensor::Tensor kh = slice_cols(cached_k_, c0, head_dim_);
    tensor::Tensor vh = slice_cols(cached_v_, c0, head_dim_);
    // scores[i, j] = qh_i · kh_j / sqrt(dh), masked to j <= i.
    tensor::Tensor scores = tensor::matmul(qh, tensor::transpose(kh));
    scores *= inv_sqrt_dh;
    for (std::size_t i = 0; i < T; ++i) {
      for (std::size_t j = i + 1; j < T; ++j) {
        scores.at(i, j) = -std::numeric_limits<float>::infinity();
      }
    }
    tensor::Tensor probs = tensor::softmax_rows(scores);
    cached_probs_[h] = probs;
    tensor::Tensor oh = tensor::matmul(probs, vh);
    accumulate_cols(concat, oh, c0);
  }
  return o_proj_.forward(concat, training);
}

tensor::Tensor MultiHeadSelfAttention::forward_incremental(
    const tensor::Tensor& x_t, KvCache& cache) {
  assert(x_t.rows() == 1 && x_t.cols() == dim_);
  assert(!cache.full());
  assert(cache.k.cols() == dim_);

  const tensor::Tensor q = q_proj_.forward(x_t, /*training=*/false);
  const tensor::Tensor k = k_proj_.forward(x_t, /*training=*/false);
  const tensor::Tensor v = v_proj_.forward(x_t, /*training=*/false);

  // Append this position's keys/values.
  const std::size_t t = cache.len;
  for (std::size_t j = 0; j < dim_; ++j) {
    cache.k.at(t, j) = k.at(0, j);
    cache.v.at(t, j) = v.at(0, j);
  }
  ++cache.len;

  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  tensor::Tensor concat(1, dim_, 0.0f);
  std::vector<float> scores(cache.len);
  for (std::size_t h = 0; h < heads_; ++h) {
    const std::size_t c0 = h * head_dim_;
    // scores[j] = q_h · k_h[j] / sqrt(dh) over all cached positions (causal
    // by construction: the cache only holds positions <= t).
    float mx = -std::numeric_limits<float>::infinity();
    for (std::size_t j = 0; j < cache.len; ++j) {
      double dot = 0.0;
      for (std::size_t d = 0; d < head_dim_; ++d) {
        dot += static_cast<double>(q.at(0, c0 + d)) * cache.k.at(j, c0 + d);
      }
      scores[j] = static_cast<float>(dot) * inv_sqrt_dh;
      mx = std::max(mx, scores[j]);
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < cache.len; ++j) {
      scores[j] = std::exp(scores[j] - mx);
      sum += scores[j];
    }
    const float inv_sum = static_cast<float>(1.0 / sum);
    for (std::size_t j = 0; j < cache.len; ++j) {
      const float p = scores[j] * inv_sum;
      for (std::size_t d = 0; d < head_dim_; ++d) {
        concat.at(0, c0 + d) += p * cache.v.at(j, c0 + d);
      }
    }
  }
  return o_proj_.forward(concat, /*training=*/false);
}

tensor::Tensor MultiHeadSelfAttention::backward(const tensor::Tensor& dout) {
  const std::size_t T = dout.rows();
  tensor::Tensor dconcat = o_proj_.backward(dout);

  tensor::Tensor dq(T, dim_, 0.0f), dk(T, dim_, 0.0f), dv(T, dim_, 0.0f);
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  for (std::size_t h = 0; h < heads_; ++h) {
    const std::size_t c0 = h * head_dim_;
    tensor::Tensor qh = slice_cols(cached_q_, c0, head_dim_);
    tensor::Tensor kh = slice_cols(cached_k_, c0, head_dim_);
    tensor::Tensor vh = slice_cols(cached_v_, c0, head_dim_);
    tensor::Tensor doh = slice_cols(dconcat, c0, head_dim_);
    const tensor::Tensor& probs = cached_probs_[h];

    // oh = probs · vh
    tensor::Tensor dprobs(T, T, 0.0f);
    tensor::Tensor dvh(T, head_dim_, 0.0f);
    tensor::matmul_backward(probs, vh, doh, dprobs, dvh);

    // probs = softmax(scores); masked entries have probs == 0 => dscores == 0.
    tensor::Tensor dscores = tensor::softmax_rows_backward(probs, dprobs);
    dscores *= inv_sqrt_dh;

    // scores·sqrt(dh) = qh · kh^T
    tensor::Tensor dqh(T, head_dim_, 0.0f);
    tensor::Tensor dkht(head_dim_, T, 0.0f);
    tensor::matmul_backward(qh, tensor::transpose(kh), dscores, dqh, dkht);
    tensor::Tensor dkh = tensor::transpose(dkht);

    accumulate_cols(dq, dqh, c0);
    accumulate_cols(dk, dkh, c0);
    accumulate_cols(dv, dvh, c0);
  }

  tensor::Tensor dx = q_proj_.backward(dq);
  dx += k_proj_.backward(dk);
  dx += v_proj_.backward(dv);
  return dx;
}

void MultiHeadSelfAttention::attach_lora(const LoraConfig& config, util::Rng& rng) {
  q_proj_.attach_lora(config, rng);
  k_proj_.attach_lora(config, rng);
  v_proj_.attach_lora(config, rng);
  o_proj_.attach_lora(config, rng);
}

void MultiHeadSelfAttention::merge_lora() {
  q_proj_.merge_lora();
  k_proj_.merge_lora();
  v_proj_.merge_lora();
  o_proj_.merge_lora();
}

void MultiHeadSelfAttention::collect_parameters(ParameterList& out) {
  q_proj_.collect_parameters(out);
  k_proj_.collect_parameters(out);
  v_proj_.collect_parameters(out);
  o_proj_.collect_parameters(out);
}

void MultiHeadSelfAttention::set_dropout_rng(util::Rng* rng) {
  q_proj_.set_dropout_rng(rng);
  k_proj_.set_dropout_rng(rng);
  v_proj_.set_dropout_rng(rng);
  o_proj_.set_dropout_rng(rng);
}

}  // namespace odlp::nn
