#include "nn/attention.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "tensor/ops.h"

namespace odlp::nn {

namespace {

// Copy columns [c0, c0+w) of `src` into the [T, w] tensor `out`.
void slice_cols_into(const tensor::Tensor& src, std::size_t c0, std::size_t w,
                     tensor::Tensor& out) {
  out.resize_uninitialized(src.rows(), w);
  for (std::size_t i = 0; i < src.rows(); ++i) {
    const float* s = src.row(i) + c0;
    float* d = out.row(i);
    for (std::size_t j = 0; j < w; ++j) d[j] = s[j];
  }
}

// Write a [T, w] block into columns [c0, c0+w) of `dst` (per-head column
// blocks are disjoint, so heads overwrite rather than accumulate).
void store_cols(tensor::Tensor& dst, const tensor::Tensor& block, std::size_t c0) {
  for (std::size_t i = 0; i < dst.rows(); ++i) {
    float* d = dst.row(i) + c0;
    const float* s = block.row(i);
    for (std::size_t j = 0; j < block.cols(); ++j) d[j] = s[j];
  }
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(std::string name, std::size_t dim,
                                               std::size_t heads, util::Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      q_proj_(name + ".q_proj", dim, dim, rng),
      k_proj_(name + ".k_proj", dim, dim, rng),
      v_proj_(name + ".v_proj", dim, dim, rng),
      o_proj_(name + ".o_proj", dim, dim, rng) {
  assert(dim % heads == 0);
}

tensor::Tensor& MultiHeadSelfAttention::forward_ws(const tensor::Tensor& x,
                                                   bool training,
                                                   tensor::Workspace& ws) {
  assert(x.cols() == dim_);
  const std::size_t T = x.rows();
  cached_q_ = q_proj_.forward_ws(x, training, ws);
  cached_k_ = k_proj_.forward_ws(x, training, ws);
  cached_v_ = v_proj_.forward_ws(x, training, ws);
  // Member-owned per-head caches: resized once, storage reused every step.
  if (cached_probs_.size() != heads_) cached_probs_.resize(heads_);

  tensor::Tensor& concat = ws.acquire(T, dim_);
  tensor::Tensor& qh = ws.acquire(T, head_dim_);
  tensor::Tensor& kh = ws.acquire(T, head_dim_);
  tensor::Tensor& vh = ws.acquire(T, head_dim_);
  tensor::Tensor& scores = ws.acquire(T, T);
  tensor::Tensor& oh = ws.acquire(T, head_dim_);
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  for (std::size_t h = 0; h < heads_; ++h) {
    const std::size_t c0 = h * head_dim_;
    slice_cols_into(cached_q_, c0, head_dim_, qh);
    slice_cols_into(cached_k_, c0, head_dim_, kh);
    slice_cols_into(cached_v_, c0, head_dim_, vh);
    // scores[i, j] = qh_i · kh_j / sqrt(dh), masked to j <= i.
    tensor::matmul_nt_into(qh, kh, scores);
    scores *= inv_sqrt_dh;
    for (std::size_t i = 0; i < T; ++i) {
      for (std::size_t j = i + 1; j < T; ++j) {
        scores.at(i, j) = -std::numeric_limits<float>::infinity();
      }
    }
    tensor::softmax_rows_into(scores, cached_probs_[h]);
    tensor::matmul_into(cached_probs_[h], vh, oh);
    store_cols(concat, oh, c0);
  }
  return o_proj_.forward_ws(concat, training, ws);
}

tensor::Tensor MultiHeadSelfAttention::forward(const tensor::Tensor& x,
                                               bool training) {
  return forward_ws(x, training, tensor::Workspace::enter(nullptr));
}

tensor::Tensor& MultiHeadSelfAttention::forward_incremental_ws(
    const tensor::Tensor& x_t, KvCache& cache, tensor::Workspace& ws) {
  KvCache* one[1] = {&cache};
  return forward_incremental_batch_ws(x_t, one, 1, ws);
}

tensor::Tensor& MultiHeadSelfAttention::forward_incremental_batch_ws(
    const tensor::Tensor& x, KvCache* const* caches, std::size_t n,
    tensor::Workspace& ws, const LoraOverlaySet* const* overlays,
    std::size_t site_base) {
  assert(n > 0);
  assert(x.rows() == n && x.cols() == dim_);

  tensor::Tensor& q = q_proj_.forward_ws(x, /*training=*/false, ws);
  tensor::Tensor& k = k_proj_.forward_ws(x, /*training=*/false, ws);
  tensor::Tensor& v = v_proj_.forward_ws(x, /*training=*/false, ws);
  if (overlays) {
    q_proj_.apply_lora_rows_ws(x, q, overlays, n, site_base + 0, ws);
    k_proj_.apply_lora_rows_ws(x, k, overlays, n, site_base + 1, ws);
    v_proj_.apply_lora_rows_ws(x, v, overlays, n, site_base + 2, ws);
  }

  // Append each row's keys/values at its own session's cache position.
  std::size_t max_capacity = 0;
  for (std::size_t b = 0; b < n; ++b) {
    KvCache& cache = *caches[b];
    assert(!cache.full());
    assert(cache.k.cols() == dim_);
    const std::size_t t = cache.len;
    const float* __restrict__ ks = k.row(b);
    const float* __restrict__ vs = v.row(b);
    float* __restrict__ kd = cache.k.row(t);
    float* __restrict__ vd = cache.v.row(t);
    for (std::size_t j = 0; j < dim_; ++j) {
      kd[j] = ks[j];
      vd[j] = vs[j];
    }
    ++cache.len;
    max_capacity = std::max(max_capacity, cache.k.rows());
  }

  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  tensor::Tensor& concat = ws.acquire(n, dim_);
  concat.zero();
  // Sized to the largest cache capacity (not len) so the slot never regrows
  // as sequences extend — decode steps stay allocation-free; only the first
  // cache.len entries are used per session.
  tensor::Tensor& scores_t = ws.acquire(1, max_capacity);
  float* scores = scores_t.row(0);
  for (std::size_t b = 0; b < n; ++b) {
    const KvCache& cache = *caches[b];
    const float* qrow = q.row(b);
    float* crow = concat.row(b);
    for (std::size_t h = 0; h < heads_; ++h) {
      const std::size_t c0 = h * head_dim_;
      // scores[j] = q_h · k_h[j] / sqrt(dh) over this session's cached
      // positions (causal by construction: the cache only holds <= t).
      float mx = -std::numeric_limits<float>::infinity();
      for (std::size_t j = 0; j < cache.len; ++j) {
        const float* krow = cache.k.row(j) + c0;
        double dot = 0.0;
        for (std::size_t d = 0; d < head_dim_; ++d) {
          dot += static_cast<double>(qrow[c0 + d]) * krow[d];
        }
        scores[j] = static_cast<float>(dot) * inv_sqrt_dh;
        mx = std::max(mx, scores[j]);
      }
      double sum = 0.0;
      for (std::size_t j = 0; j < cache.len; ++j) {
        scores[j] = std::exp(scores[j] - mx);
        sum += scores[j];
      }
      const float inv_sum = static_cast<float>(1.0 / sum);
      for (std::size_t j = 0; j < cache.len; ++j) {
        const float p = scores[j] * inv_sum;
        const float* vrow = cache.v.row(j) + c0;
        for (std::size_t d = 0; d < head_dim_; ++d) {
          crow[c0 + d] += p * vrow[d];
        }
      }
    }
  }
  tensor::Tensor& out = o_proj_.forward_ws(concat, /*training=*/false, ws);
  if (overlays) {
    o_proj_.apply_lora_rows_ws(concat, out, overlays, n, site_base + 3, ws);
  }
  return out;
}

tensor::Tensor MultiHeadSelfAttention::forward_incremental(
    const tensor::Tensor& x_t, KvCache& cache) {
  return forward_incremental_ws(x_t, cache, tensor::Workspace::enter(nullptr));
}

tensor::Tensor& MultiHeadSelfAttention::backward_ws(const tensor::Tensor& dout,
                                                    tensor::Workspace& ws) {
  const std::size_t T = dout.rows();
  tensor::Tensor& dconcat = o_proj_.backward_ws(dout, ws);

  tensor::Tensor& dq = ws.acquire(T, dim_);
  tensor::Tensor& dk = ws.acquire(T, dim_);
  tensor::Tensor& dv = ws.acquire(T, dim_);
  tensor::Tensor& qh = ws.acquire(T, head_dim_);
  tensor::Tensor& kh = ws.acquire(T, head_dim_);
  tensor::Tensor& vh = ws.acquire(T, head_dim_);
  tensor::Tensor& doh = ws.acquire(T, head_dim_);
  tensor::Tensor& dprobs = ws.acquire(T, T);
  tensor::Tensor& dscores = ws.acquire(T, T);
  tensor::Tensor& dqh = ws.acquire(T, head_dim_);
  tensor::Tensor& dkh = ws.acquire(T, head_dim_);
  tensor::Tensor& dvh = ws.acquire(T, head_dim_);
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  for (std::size_t h = 0; h < heads_; ++h) {
    const std::size_t c0 = h * head_dim_;
    slice_cols_into(cached_q_, c0, head_dim_, qh);
    slice_cols_into(cached_k_, c0, head_dim_, kh);
    slice_cols_into(cached_v_, c0, head_dim_, vh);
    slice_cols_into(dconcat, c0, head_dim_, doh);
    const tensor::Tensor& probs = cached_probs_[h];

    // oh = probs · vh  =>  dprobs = doh · vhᵀ, dvh = probsᵀ · doh.
    tensor::matmul_nt_into(doh, vh, dprobs);
    tensor::matmul_tn_into(probs, doh, dvh);

    // probs = softmax(scores); masked entries have probs == 0 => dscores == 0.
    tensor::softmax_rows_backward_into(probs, dprobs, dscores);
    dscores *= inv_sqrt_dh;

    // scores·sqrt(dh) = qh · khᵀ  =>  dqh = dscores · kh, dkh = dscoresᵀ · qh
    // (both via the transposed-operand GEMM — no transposed copies).
    tensor::matmul_into(dscores, kh, dqh);
    tensor::matmul_tn_into(dscores, qh, dkh);

    store_cols(dq, dqh, c0);
    store_cols(dk, dkh, c0);
    store_cols(dv, dvh, c0);
  }

  tensor::Tensor& dx = q_proj_.backward_ws(dq, ws);
  dx += k_proj_.backward_ws(dk, ws);
  dx += v_proj_.backward_ws(dv, ws);
  return dx;
}

tensor::Tensor MultiHeadSelfAttention::backward(const tensor::Tensor& dout) {
  return backward_ws(dout, tensor::Workspace::enter(nullptr));
}

void MultiHeadSelfAttention::attach_lora(const LoraConfig& config, util::Rng& rng) {
  q_proj_.attach_lora(config, rng);
  k_proj_.attach_lora(config, rng);
  v_proj_.attach_lora(config, rng);
  o_proj_.attach_lora(config, rng);
}

void MultiHeadSelfAttention::merge_lora() {
  q_proj_.merge_lora();
  k_proj_.merge_lora();
  v_proj_.merge_lora();
  o_proj_.merge_lora();
}

void MultiHeadSelfAttention::collect_parameters(ParameterList& out) {
  q_proj_.collect_parameters(out);
  k_proj_.collect_parameters(out);
  v_proj_.collect_parameters(out);
  o_proj_.collect_parameters(out);
}

void MultiHeadSelfAttention::collect_linears(std::vector<Linear*>& out) {
  out.push_back(&q_proj_);
  out.push_back(&k_proj_);
  out.push_back(&v_proj_);
  out.push_back(&o_proj_);
}

void MultiHeadSelfAttention::set_dropout_rng(util::Rng* rng) {
  q_proj_.set_dropout_rng(rng);
  k_proj_.set_dropout_rng(rng);
  v_proj_.set_dropout_rng(rng);
  o_proj_.set_dropout_rng(rng);
}

}  // namespace odlp::nn
