#include "nn/loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/ops.h"
#include "tensor/workspace.h"
#include "util/thread_pool.h"

namespace odlp::nn {

namespace {
// Same fan-out threshold the row-wise tensor kernels use; below it the
// serial loop runs and the result is byte-identical to the pre-parallel
// implementation.
constexpr std::size_t kParallelMinElems = 1u << 14;
}  // namespace

void cross_entropy_into(const tensor::Tensor& logits,
                        const std::vector<int>& targets,
                        CrossEntropyResult& result, int ignore_index) {
  assert(logits.rows() == targets.size());
  result.loss = 0.0;
  result.count = 0;
  result.dlogits.resize_uninitialized(logits.rows(), logits.cols());

  // Softmax into a thread-local scratch slot — no per-call tensor.
  tensor::Workspace& sws = tensor::Workspace::enter(nullptr);
  tensor::Tensor& probs = sws.acquire(logits.rows(), logits.cols());
  tensor::softmax_rows_into(logits, probs);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    if (targets[t] == ignore_index) continue;
    ++result.count;
  }
  if (result.count == 0) {
    result.dlogits.zero();
    return;
  }
  const float inv_count = 1.0f / static_cast<float>(result.count);

  // Per-row NLL + gradient. dlogits rows are disjoint across chunks; the
  // scalar loss is an ordered fixed-grain reduction, so the value does not
  // depend on the lane count.
  auto row_loss = [&](std::size_t t0, std::size_t t1) {
    double loss = 0.0;
    for (std::size_t t = t0; t < t1; ++t) {
      const int y = targets[t];
      float* drow = result.dlogits.row(t);
      if (y == ignore_index) {
        // dlogits is uninitialized storage: masked rows must be written too.
        std::fill(drow, drow + logits.cols(), 0.0f);
        continue;
      }
      assert(y >= 0 && static_cast<std::size_t>(y) < logits.cols());
      const float p = probs.at(t, static_cast<std::size_t>(y));
      loss += -std::log(std::max(p, 1e-12f));
      // dL/dlogits = (softmax - onehot) / count
      const float* prow = probs.row(t);
      for (std::size_t j = 0; j < logits.cols(); ++j) drow[j] = prow[j] * inv_count;
      drow[static_cast<std::size_t>(y)] -= inv_count;
    }
    return loss;
  };
  if (logits.size() < kParallelMinElems) {
    result.loss = row_loss(0, targets.size());
  } else {
    result.loss = util::ThreadPool::global().reduce_ordered<double>(
        0, targets.size(), /*grain=*/0, 0.0, row_loss,
        [](const double& a, const double& b) { return a + b; });
  }
  result.loss /= static_cast<double>(result.count);
}

CrossEntropyResult cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<int>& targets,
                                 int ignore_index) {
  CrossEntropyResult result;
  cross_entropy_into(logits, targets, result, ignore_index);
  return result;
}

double perplexity(double mean_nll) { return std::exp(mean_nll); }

}  // namespace odlp::nn
