#include "nn/loss.h"

#include <cassert>
#include <cmath>

#include "tensor/ops.h"

namespace odlp::nn {

CrossEntropyResult cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<int>& targets,
                                 int ignore_index) {
  assert(logits.rows() == targets.size());
  CrossEntropyResult result;
  result.dlogits = tensor::Tensor(logits.rows(), logits.cols(), 0.0f);

  tensor::Tensor probs = tensor::softmax_rows(logits);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    if (targets[t] == ignore_index) continue;
    ++result.count;
  }
  if (result.count == 0) return result;
  const float inv_count = 1.0f / static_cast<float>(result.count);

  for (std::size_t t = 0; t < targets.size(); ++t) {
    const int y = targets[t];
    if (y == ignore_index) continue;
    assert(y >= 0 && static_cast<std::size_t>(y) < logits.cols());
    const float p = probs.at(t, static_cast<std::size_t>(y));
    result.loss += -std::log(std::max(p, 1e-12f));
    // dL/dlogits = (softmax - onehot) / count
    float* drow = result.dlogits.row(t);
    const float* prow = probs.row(t);
    for (std::size_t j = 0; j < logits.cols(); ++j) drow[j] = prow[j] * inv_count;
    drow[static_cast<std::size_t>(y)] -= inv_count;
  }
  result.loss /= static_cast<double>(result.count);
  return result;
}

double perplexity(double mean_nll) { return std::exp(mean_nll); }

}  // namespace odlp::nn
