#include "nn/rmsnorm.h"

#include <cassert>
#include <cmath>

namespace odlp::nn {

RmsNorm::RmsNorm(std::string name, std::size_t dim, float eps)
    : gain_(name + ".gain", 1, dim), eps_(eps) {
  gain_.value.fill(1.0f);
}

tensor::Tensor RmsNorm::forward(const tensor::Tensor& x) {
  assert(x.cols() == dim());
  cached_x_ = x;
  cached_inv_rms_.assign(x.rows(), 0.0f);
  tensor::Tensor out(x.rows(), x.cols());
  const std::size_t n = x.cols();
  const float* g = gain_.value.row(0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* xi = x.row(i);
    double ms = 0.0;
    for (std::size_t j = 0; j < n; ++j) ms += static_cast<double>(xi[j]) * xi[j];
    ms /= static_cast<double>(n);
    const float inv_rms = static_cast<float>(1.0 / std::sqrt(ms + eps_));
    cached_inv_rms_[i] = inv_rms;
    float* o = out.row(i);
    for (std::size_t j = 0; j < n; ++j) o[j] = xi[j] * inv_rms * g[j];
  }
  return out;
}

tensor::Tensor RmsNorm::backward(const tensor::Tensor& dout) {
  assert(dout.same_shape(cached_x_));
  const std::size_t n = dout.cols();
  const float* g = gain_.value.row(0);
  tensor::Tensor din(dout.rows(), dout.cols());
  for (std::size_t i = 0; i < dout.rows(); ++i) {
    const float* d = dout.row(i);
    const float* x = cached_x_.row(i);
    const float inv_rms = cached_inv_rms_[i];
    // y_j = x_j * r * g_j with r = (mean(x²)+eps)^{-1/2}
    // dL/dx_k = r * g_k * d_k - r³/n * x_k * Σ_j d_j g_j x_j
    double dot = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      dot += static_cast<double>(d[j]) * g[j] * x[j];
      if (gain_.trainable) gain_.grad.at(0, j) += d[j] * x[j] * inv_rms;
    }
    const float scale =
        static_cast<float>(dot) * inv_rms * inv_rms * inv_rms / static_cast<float>(n);
    float* o = din.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      o[j] = inv_rms * g[j] * d[j] - scale * x[j];
    }
  }
  return din;
}

}  // namespace odlp::nn
