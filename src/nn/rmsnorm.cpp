#include "nn/rmsnorm.h"

#include <cassert>
#include <cmath>

#include "util/thread_pool.h"

namespace odlp::nn {

namespace {
constexpr std::size_t kParallelMinElems = 1u << 14;
}  // namespace

RmsNorm::RmsNorm(std::string name, std::size_t dim, float eps)
    : gain_(name + ".gain", 1, dim), eps_(eps) {
  gain_.value.fill(1.0f);
}

tensor::Tensor& RmsNorm::forward_ws(const tensor::Tensor& x,
                                    tensor::Workspace& ws) {
  assert(x.cols() == dim());
  cached_x_ = x;
  cached_inv_rms_.resize(x.rows());
  tensor::Tensor& out = ws.acquire(x.rows(), x.cols());
  const std::size_t n = x.cols();
  const float* g = gain_.value.row(0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* xi = x.row(i);
    double ms = 0.0;
    for (std::size_t j = 0; j < n; ++j) ms += static_cast<double>(xi[j]) * xi[j];
    ms /= static_cast<double>(n);
    const float inv_rms = static_cast<float>(1.0 / std::sqrt(ms + eps_));
    cached_inv_rms_[i] = inv_rms;
    float* o = out.row(i);
    for (std::size_t j = 0; j < n; ++j) o[j] = xi[j] * inv_rms * g[j];
  }
  return out;
}

tensor::Tensor RmsNorm::forward(const tensor::Tensor& x) {
  return forward_ws(x, tensor::Workspace::enter(nullptr));
}

tensor::Tensor& RmsNorm::backward_ws(const tensor::Tensor& dout,
                                     tensor::Workspace& ws) {
  assert(dout.same_shape(cached_x_));
  const std::size_t n = dout.cols();
  const float* g = gain_.value.row(0);
  tensor::Tensor& din = ws.acquire(dout.rows(), dout.cols());
  // y_j = x_j * r * g_j with r = (mean(x²)+eps)^{-1/2}
  // dL/dx_k = r * g_k * d_k - r³/n * x_k * Σ_j d_j g_j x_j
  auto row_backward = [&](std::size_t i, float* dgain_acc) {
    const float* d = dout.row(i);
    const float* x = cached_x_.row(i);
    const float inv_rms = cached_inv_rms_[i];
    double dot = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      dot += static_cast<double>(d[j]) * g[j] * x[j];
      if (dgain_acc) dgain_acc[j] += d[j] * x[j] * inv_rms;
    }
    const float scale =
        static_cast<float>(dot) * inv_rms * inv_rms * inv_rms / static_cast<float>(n);
    float* o = din.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      o[j] = inv_rms * g[j] * d[j] - scale * x[j];
    }
  };
  if (dout.size() < kParallelMinElems) {
    float* dgain = gain_.trainable ? gain_.grad.row(0) : nullptr;
    for (std::size_t i = 0; i < dout.rows(); ++i) row_backward(i, dgain);
    return din;
  }
  // Parallel path: din rows are disjoint; the shared gain gradient uses
  // fixed-grain chunk partials combined in chunk order (lane-count
  // independent).
  const std::vector<float> dgain =
      util::ThreadPool::global().reduce_ordered<std::vector<float>>(
          0, dout.rows(), /*grain=*/0, std::vector<float>(),
          [&](std::size_t i0, std::size_t i1) {
            std::vector<float> acc(n, 0.0f);
            for (std::size_t i = i0; i < i1; ++i) row_backward(i, acc.data());
            return acc;
          },
          [](const std::vector<float>& a, const std::vector<float>& b) {
            if (a.empty()) return b;
            if (b.empty()) return a;
            std::vector<float> out = a;
            for (std::size_t j = 0; j < out.size(); ++j) out[j] += b[j];
            return out;
          });
  if (gain_.trainable) {
    for (std::size_t j = 0; j < n; ++j) gain_.grad.at(0, j) += dgain[j];
  }
  return din;
}

tensor::Tensor RmsNorm::backward(const tensor::Tensor& dout) {
  return backward_ws(dout, tensor::Workspace::enter(nullptr));
}

}  // namespace odlp::nn
