// Key/value cache for incremental (token-at-a-time) causal attention.
//
// Full-sequence recompute makes generation O(T²) forward passes; with a KV
// cache each new token costs one O(T) attention step. On the target edge
// devices this is the difference between interactive and sluggish response
// latency, so the cache is a first-class part of the inference path.
#pragma once

#include "tensor/tensor.h"

namespace odlp::nn {

// Per-attention-layer cache: rows 0..len-1 of `k` / `v` hold the projected
// keys/values of already-processed positions (pre-head-split, [T, dim]).
struct KvCache {
  KvCache(std::size_t max_len, std::size_t dim)
      : k(max_len, dim), v(max_len, dim) {}

  tensor::Tensor k;
  tensor::Tensor v;
  std::size_t len = 0;

  std::size_t capacity() const { return k.rows(); }
  bool full() const { return len >= capacity(); }
  void reset() { len = 0; }
};

}  // namespace odlp::nn
