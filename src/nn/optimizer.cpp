#include "nn/optimizer.h"

#include <cmath>

namespace odlp::nn {

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {}

void Sgd::step(const ParameterList& params) {
  for (Parameter* p : params) {
    if (!p->trainable) continue;
    if (momentum_ > 0.0f) {
      auto it = velocity_.find(p);
      if (it == velocity_.end()) {
        it = velocity_.emplace(p, tensor::Tensor(p->value.rows(), p->value.cols(), 0.0f)).first;
      }
      tensor::Tensor& v = it->second;
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        v.data()[i] = momentum_ * v.data()[i] + p->grad.data()[i];
        p->value.data()[i] -= lr_ * v.data()[i];
      }
    } else {
      p->value.add_scaled(p->grad, -lr_);
    }
  }
}

AdamW::AdamW(const Config& config) : config_(config) {}

void AdamW::step(const ParameterList& params) {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (Parameter* p : params) {
    if (!p->trainable) continue;
    auto it = state_.find(p);
    if (it == state_.end()) {
      State s;
      s.m = tensor::Tensor(p->value.rows(), p->value.cols(), 0.0f);
      s.v = tensor::Tensor(p->value.rows(), p->value.cols(), 0.0f);
      it = state_.emplace(p, std::move(s)).first;
    }
    State& s = it->second;
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad.data()[i];
      s.m.data()[i] = config_.beta1 * s.m.data()[i] + (1.0f - config_.beta1) * g;
      s.v.data()[i] = config_.beta2 * s.v.data()[i] + (1.0f - config_.beta2) * g * g;
      const double mhat = s.m.data()[i] / bc1;
      const double vhat = s.v.data()[i] / bc2;
      float& w = p->value.data()[i];
      // Decoupled weight decay: applied directly to the weight, not the grad.
      w -= config_.lr * (static_cast<float>(mhat / (std::sqrt(vhat) + config_.eps)) +
                         config_.weight_decay * w);
    }
  }
}

std::vector<AdamW::State> AdamW::export_state(const ParameterList& params) const {
  std::vector<State> out;
  out.reserve(params.size());
  for (const Parameter* p : params) {
    auto it = state_.find(p);
    State s;
    if (it != state_.end()) {
      s.m = it->second.m;
      s.v = it->second.v;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void AdamW::import_state(const ParameterList& params,
                         std::vector<State> states, long long step_count) {
  t_ = step_count;
  state_.clear();
  for (std::size_t i = 0; i < params.size() && i < states.size(); ++i) {
    if (states[i].m.size() == 0) continue;  // never-stepped: lazy re-init
    state_[params[i]] = std::move(states[i]);
  }
}

}  // namespace odlp::nn
