#include "nn/param.h"

#include <cmath>

namespace odlp::nn {

void init_xavier_uniform(tensor::Tensor& w, util::Rng& rng) {
  const double fan_in = static_cast<double>(w.rows());
  const double fan_out = static_cast<double>(w.cols());
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
}

void init_normal(tensor::Tensor& w, util::Rng& rng, float stddev) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

std::size_t count_trainable(const ParameterList& params) {
  std::size_t n = 0;
  for (const Parameter* p : params) {
    if (p->trainable) n += p->size();
  }
  return n;
}

std::size_t count_total(const ParameterList& params) {
  std::size_t n = 0;
  for (const Parameter* p : params) n += p->size();
  return n;
}

void zero_grads(const ParameterList& params) {
  for (Parameter* p : params) p->zero_grad();
}

float clip_grad_norm(const ParameterList& params, float max_norm) {
  double total = 0.0;
  for (const Parameter* p : params) {
    if (!p->trainable) continue;
    const float n = p->grad.l2_norm();
    total += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) {
      if (p->trainable) p->grad *= scale;
    }
  }
  return norm;
}

}  // namespace odlp::nn
