// Token and positional embedding tables.
#pragma once

#include <string>
#include <vector>

#include "nn/param.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace odlp::nn {

class Embedding {
 public:
  // Table [vocab, dim], initialized N(0, 0.02).
  Embedding(std::string name, std::size_t vocab, std::size_t dim, util::Rng& rng);

  // Gather rows for `ids` -> [ids.size(), dim]. Ids are clamped to the vocab
  // in debug builds via assert; out-of-range ids are a caller bug.
  tensor::Tensor forward(const std::vector<int>& ids);

  // Gather into caller storage (reshaped): out (+)= rows for `ids`. The
  // accumulate form lets the position table add onto token embeddings with
  // no intermediate tensor.
  void forward_into(const std::vector<int>& ids, tensor::Tensor& out,
                    bool accumulate = false);

  // Scatter-accumulate dOut rows into the table gradient.
  void backward(const tensor::Tensor& dout);

  void collect_parameters(ParameterList& out) { out.push_back(&table_); }

  std::size_t vocab_size() const { return table_.value.rows(); }
  std::size_t dim() const { return table_.value.cols(); }
  const Parameter& table() const { return table_; }
  Parameter& mutable_table() { return table_; }

 private:
  Parameter table_;
  std::vector<int> cached_ids_;
};

}  // namespace odlp::nn
