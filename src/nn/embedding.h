// Token and positional embedding tables.
#pragma once

#include <string>
#include <vector>

#include "nn/param.h"
#include "tensor/qtensor.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace odlp::nn {

class Embedding {
 public:
  // Table [vocab, dim], initialized N(0, 0.02).
  Embedding(std::string name, std::size_t vocab, std::size_t dim, util::Rng& rng);

  // Gather rows for `ids` -> [ids.size(), dim]. Ids are clamped to the vocab
  // in debug builds via assert; out-of-range ids are a caller bug.
  tensor::Tensor forward(const std::vector<int>& ids);

  // Gather into caller storage (reshaped): out (+)= rows for `ids`. The
  // accumulate form lets the position table add onto token embeddings with
  // no intermediate tensor. When the table is quantized and training is
  // false, looked-up rows dequantize from the int8 copy; training gathers
  // always read the fp32 table (backward matches the forward it saw).
  void forward_into(const std::vector<int>& ids, tensor::Tensor& out,
                    bool accumulate = false, bool training = false);

  // Scatter-accumulate dOut rows into the table gradient.
  void backward(const tensor::Tensor& dout);

  // Frozen-table INT8 mode (kAlongCols: each looked-up row dequantizes from
  // contiguous codes + scales). Same contract as Linear::quantize_frozen —
  // re-invoke after the table mutates; throws when built -DODLP_INT8=OFF.
  void quantize_frozen();
  void dequantize_frozen();
  bool quantized() const { return quantized_; }
  tensor::QuantStats quantization_stats() const;

  // Memory-ledger accessors (bytes resident under the active mode).
  std::size_t resident_bytes() const;
  std::size_t quant_scale_bytes() const;

  void collect_parameters(ParameterList& out) { out.push_back(&table_); }

  std::size_t vocab_size() const { return table_.value.rows(); }
  std::size_t dim() const { return table_.value.cols(); }
  const Parameter& table() const { return table_; }
  Parameter& mutable_table() { return table_; }

 private:
  Parameter table_;
  tensor::QuantizedTensor qtable_;  // int8 snapshot when quantized_
  bool quantized_ = false;
  std::vector<int> cached_ids_;
};

}  // namespace odlp::nn
