// Synthetic dialogue generation for a dataset profile.
//
// Produces streams with the statistical contract described in DESIGN.md §2:
// informative dialogues draw content words from one (domain, subtopic)
// lexicon mixed with filler words; noise dialogues are all filler. The
// stream portion preserves temporal correlation via subtopic bursts; the
// evaluation portion is drawn iid from the same mixture (the paper's 90%
// held-out split is fully annotated and used only for ROUGE evaluation).
#pragma once

#include <cstdint>

#include "data/dialogue.h"
#include "data/profiles.h"
#include "data/user_oracle.h"
#include "util/rng.h"

namespace odlp::data {

struct GeneratedDataset {
  DialogueStream stream;  // temporally ordered input stream (the 10%)
  DialogueStream test;    // iid held-out evaluation sets (the 90%)
};

class Generator {
 public:
  // The oracle provides the per-user preferred responses used as the fully
  // annotated references of both stream and test sets.
  Generator(const DatasetProfile& profile, UserOracle& oracle, util::Rng rng);

  // Generates `stream_size` streamed sets + `test_size` evaluation sets.
  GeneratedDataset generate(std::size_t stream_size, std::size_t test_size);

  // One informative dialogue from an explicit (domain, subtopic).
  DialogueSet make_informative(std::size_t domain, std::size_t subtopic);

  // One all-filler noise dialogue.
  DialogueSet make_noise();

 private:
  // Sample a domain index from the profile mixture, then a subtopic.
  std::pair<std::size_t, std::size_t> sample_topic();
  std::string make_question(std::size_t domain, std::size_t subtopic);
  std::string make_generic_answer();

  const DatasetProfile profile_;
  UserOracle& oracle_;
  util::Rng rng_;
  std::vector<std::size_t> domain_indices_;  // resolved from profile names
  std::vector<double> domain_weights_;
};

}  // namespace odlp::data
