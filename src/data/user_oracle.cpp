#include "data/user_oracle.h"

#include <cassert>

#include "data/phrase_pools.h"
#include "util/rng.h"
#include "util/strings.h"

namespace odlp::data {

namespace {
// Each user deterministically picks one prefix and one suffix from the
// shared pools, giving their preferred responses a recognizable voice.
const std::vector<std::string>& prefix_pool() { return user_prefix_pool(); }
const std::vector<std::string>& suffix_pool() { return user_suffix_pool(); }
const std::vector<std::string>& generic_pool() { return generic_reply_pool(); }
}  // namespace

UserOracle::UserOracle(std::uint64_t user_seed,
                       const lexicon::LexiconDictionary& dict)
    : seed_(user_seed), dict_(dict) {
  util::Rng rng(user_seed);
  const std::string prefix = prefix_pool()[rng.uniform_index(prefix_pool().size())];
  const std::string suffix = suffix_pool()[rng.uniform_index(suffix_pool().size())];
  generic_response_ = generic_pool()[rng.uniform_index(generic_pool().size())];

  style_.resize(dict.num_domains());
  for (std::size_t d = 0; d < dict.num_domains(); ++d) {
    const auto& domain = dict.domain(d);
    style_[d].resize(domain.sublexicons().size());
    for (std::size_t s = 0; s < domain.sublexicons().size(); ++s) {
      const auto& words = domain.sublexicons()[s].words;
      // Three signature content words per subtopic, distinct indices.
      std::vector<std::string> picks;
      std::size_t attempts = 0;
      while (picks.size() < 3 && attempts < 64) {
        const std::string& w = words[rng.uniform_index(words.size())];
        bool dup = false;
        for (const auto& p : picks) dup = dup || p == w;
        if (!dup) picks.push_back(w);
        ++attempts;
      }
      style_[d][s] = prefix + " " + util::join(picks, " ") + " " + suffix;
    }
  }
}

const std::string& UserOracle::preferred_response(std::size_t domain,
                                                  std::size_t subtopic) const {
  assert(domain < style_.size() && subtopic < style_[domain].size());
  return style_[domain][subtopic];
}

std::string UserOracle::annotate(const DialogueSet& set) {
  ++annotation_requests_;
  if (set.is_noise || set.true_domain < 0) return generic_response_;
  return preferred_response(static_cast<std::size_t>(set.true_domain),
                            static_cast<std::size_t>(set.true_subtopic));
}

}  // namespace odlp::data
