#include "data/generator.h"

#include <algorithm>
#include <stdexcept>

#include "data/phrase_pools.h"
#include "util/strings.h"

namespace odlp::data {

Generator::Generator(const DatasetProfile& profile, UserOracle& oracle,
                     util::Rng rng)
    : profile_(profile), oracle_(oracle), rng_(rng) {
  const auto& dict = oracle_.dictionary();
  for (const auto& [name, weight] : profile_.domain_mix) {
    const auto idx = dict.index_of(name);
    if (!idx) throw std::invalid_argument("profile references unknown domain: " + name);
    domain_indices_.push_back(*idx);
    domain_weights_.push_back(weight);
  }
  if (domain_indices_.empty()) {
    throw std::invalid_argument("profile has an empty domain mixture");
  }
}

std::pair<std::size_t, std::size_t> Generator::sample_topic() {
  const std::size_t domain = domain_indices_[rng_.categorical(domain_weights_)];
  const auto& subs = oracle_.dictionary().domain(domain).sublexicons();
  return {domain, rng_.uniform_index(subs.size())};
}

std::string Generator::make_question(std::size_t domain, std::size_t subtopic) {
  const auto& dict = oracle_.dictionary();
  const auto& words = dict.domain(domain).sublexicons()[subtopic].words;
  const auto& filler = lexicon::filler_words();

  const std::size_t n_content = static_cast<std::size_t>(rng_.uniform_int(
      static_cast<int>(profile_.question_words_min),
      static_cast<int>(profile_.question_words_max)));
  const std::size_t n_filler = static_cast<std::size_t>(rng_.uniform_int(
      static_cast<int>(profile_.filler_words_min),
      static_cast<int>(profile_.filler_words_max)));

  std::vector<std::string> parts;
  for (std::size_t i = 0; i < n_content; ++i) {
    parts.push_back(words[rng_.uniform_index(words.size())]);
  }
  for (std::size_t i = 0; i < n_filler; ++i) {
    parts.push_back(filler[rng_.uniform_index(filler.size())]);
  }
  rng_.shuffle(parts);
  return util::join(parts, " ");
}

std::string Generator::make_generic_answer() {
  // The deployed (un-personalized) LLM's reply during interaction: vague
  // assistant boilerplate, occasionally echoing a filler word.
  const auto& stems = assistant_stem_pool();
  const auto& filler = lexicon::filler_words();
  std::string out = stems[rng_.uniform_index(stems.size())];
  if (rng_.bernoulli(0.5)) {
    out += " " + filler[rng_.uniform_index(filler.size())];
  }
  return out;
}

DialogueSet Generator::make_informative(std::size_t domain, std::size_t subtopic) {
  DialogueSet set;
  set.question = make_question(domain, subtopic);
  set.answer = make_generic_answer();
  set.reference = oracle_.preferred_response(domain, subtopic);
  set.true_domain = static_cast<int>(domain);
  set.true_subtopic = static_cast<int>(subtopic);
  set.is_noise = false;
  return set;
}

DialogueSet Generator::make_noise() {
  const auto& filler = lexicon::filler_words();
  const std::size_t n = static_cast<std::size_t>(rng_.uniform_int(4, 9));
  std::vector<std::string> parts;
  for (std::size_t i = 0; i < n; ++i) {
    parts.push_back(filler[rng_.uniform_index(filler.size())]);
  }
  DialogueSet set;
  set.question = util::join(parts, " ");
  set.answer = make_generic_answer();
  // Smalltalk has no single "right" reply: the reference varies per set
  // (unlike the user's own consistent annotation), so hoarding noise in the
  // buffer cannot game the evaluation.
  const auto& generic = generic_reply_pool();
  set.reference = generic[rng_.uniform_index(generic.size())];
  set.is_noise = true;
  return set;
}

GeneratedDataset Generator::generate(std::size_t stream_size, std::size_t test_size) {
  GeneratedDataset out;

  // Stream: bursts of the same (domain, subtopic) model temporal correlation;
  // per-set noise coin flips interleave uninformative smalltalk.
  while (out.stream.size() < stream_size) {
    const auto [domain, subtopic] = sample_topic();
    std::size_t burst = profile_.burst_length;
    if (burst > 1) {
      // Jitter the burst length around the profile mean.
      const int jitter = rng_.uniform_int(-static_cast<int>(burst) / 3,
                                          static_cast<int>(burst) / 3);
      burst = static_cast<std::size_t>(std::max(1, static_cast<int>(burst) + jitter));
    }
    for (std::size_t b = 0; b < burst && out.stream.size() < stream_size; ++b) {
      DialogueSet set = rng_.bernoulli(profile_.noise_rate)
                            ? make_noise()
                            : make_informative(domain, subtopic);
      set.stream_position = out.stream.size();
      out.stream.push_back(std::move(set));
    }
  }

  // Held-out evaluation: iid from the same mixture.
  for (std::size_t i = 0; i < test_size; ++i) {
    DialogueSet set;
    if (rng_.bernoulli(profile_.noise_rate)) {
      set = make_noise();
    } else {
      const auto [domain, subtopic] = sample_topic();
      set = make_informative(domain, subtopic);
    }
    set.stream_position = i;
    out.test.push_back(std::move(set));
  }
  return out;
}

}  // namespace odlp::data
