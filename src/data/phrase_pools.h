// Shared phrase pools for the simulated user and the generic assistant.
//
// Centralized so the on-device vocabulary can be constructed up front (the
// deployed model ships with a fixed tokenizer; streaming text never grows
// the embedding table): vocabulary_words() returns every word the synthetic
// world can produce — lexicon words, filler words, and all phrase-pool
// words.
#pragma once

#include <string>
#include <vector>

#include "lexicon/lexicon.h"

namespace odlp::data {

// Personal response prefixes a user may adopt ("honestly i would suggest").
const std::vector<std::string>& user_prefix_pool();

// Personal response suffixes ("take care friend").
const std::vector<std::string>& user_suffix_pool();

// Generic replies for uninformative smalltalk.
const std::vector<std::string>& generic_reply_pool();

// The un-personalized assistant's boilerplate answer stems.
const std::vector<std::string>& assistant_stem_pool();

// Every distinct normalized word producible by the generators and the
// oracle under `dict` — the fixed on-device vocabulary source.
std::vector<std::string> vocabulary_words(const lexicon::LexiconDictionary& dict);

}  // namespace odlp::data
