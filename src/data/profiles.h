// Synthetic dataset profiles mirroring the paper's six evaluation datasets.
//
// Each profile fixes (a) the domain mixture of informative dialogues,
// (b) the noise rate (uninformative filler dialogue, the paper's
// "uncontroversial dialogue sets"), (c) the burst length controlling
// temporal correlation of the stream, and (d) question verbosity. ALPACA /
// DOLLY / OPENORCA are diverse and nearly iid (burst 1); MedDialog /
// Prosocial-Dialog / Empathetic-Dialog are domain-specific and highly
// temporally correlated (long bursts), exactly the contrast the paper's
// dataset choice is built around (§4.1).
#pragma once

#include <string>
#include <vector>

namespace odlp::data {

struct DatasetProfile {
  std::string name;
  // (domain name in the builtin dictionary, mixture weight).
  std::vector<std::pair<std::string, double>> domain_mix;
  double noise_rate = 0.3;
  std::size_t burst_length = 1;  // mean same-subtopic run length; 1 = iid
  std::size_t question_words_min = 3;
  std::size_t question_words_max = 6;   // content (lexicon) words per question
  std::size_t filler_words_min = 2;
  std::size_t filler_words_max = 5;     // filler words mixed into the question
};

// The six paper datasets.
DatasetProfile alpaca_profile();
DatasetProfile dolly_profile();
DatasetProfile openorca_profile();
DatasetProfile meddialog_profile();
DatasetProfile prosocial_profile();
DatasetProfile empathetic_profile();

// All six, in the paper's table order (ALPACA, DOLLY, Prosocial, Empathetic,
// OPENORCA, MedDialog).
std::vector<DatasetProfile> all_profiles();

// Lookup by name; throws std::invalid_argument for unknown names.
DatasetProfile profile_by_name(const std::string& name);

}  // namespace odlp::data
