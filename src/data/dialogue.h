// DialogueSet: the atomic unit of data selection (paper §3.1) — one
// question/answer pair from user↔LLM interaction.
#pragma once

#include <string>
#include <vector>

namespace odlp::data {

struct DialogueSet {
  std::string question;   // user turn
  std::string answer;     // the deployed LLM's response during interaction
  std::string reference;  // the user's preferred response (annotation truth)

  // Generator ground truth, used only by tests/analysis — the selection
  // framework never reads these (the stream is unlabeled, paper §1).
  int true_domain = -1;    // index into the lexicon dictionary; -1 = none
  int true_subtopic = -1;  // sub-lexicon index within the domain; -1 = none
  bool is_noise = false;   // uninformative filler dialogue

  std::size_t stream_position = 0;  // arrival index in the stream

  // The text block the quality metrics see: question and answer joined, as
  // the paper computes metrics over the whole dialogue set.
  std::string text_block() const { return question + " " + answer; }
};

using DialogueStream = std::vector<DialogueSet>;

}  // namespace odlp::data
