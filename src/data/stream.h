// Stream utilities: cursor over a dialogue stream and statistics used to
// verify the temporal-correlation contract of the dataset profiles.
#pragma once

#include "data/dialogue.h"

namespace odlp::data {

// Sequential, one-pass cursor — the on-device framework sees each dialogue
// set exactly once, in arrival order, and may not rewind (paper §2.2.1).
class StreamCursor {
 public:
  explicit StreamCursor(const DialogueStream& stream) : stream_(stream) {}

  bool done() const { return pos_ >= stream_.size(); }
  const DialogueSet& next();
  std::size_t position() const { return pos_; }
  std::size_t size() const { return stream_.size(); }

 private:
  const DialogueStream& stream_;
  std::size_t pos_ = 0;
};

struct StreamStats {
  std::size_t total = 0;
  std::size_t noise = 0;
  // P(consecutive informative sets share a domain) — the temporal
  // correlation proxy. High for MedDialog-like streams, ~1/num_domains for
  // ALPACA-like streams.
  double domain_repeat_rate = 0.0;
  double subtopic_repeat_rate = 0.0;
  std::size_t distinct_domains = 0;
  std::size_t distinct_subtopics = 0;  // (domain, subtopic) pairs
};

StreamStats compute_stream_stats(const DialogueStream& stream);

}  // namespace odlp::data
