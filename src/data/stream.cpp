#include "data/stream.h"

#include <cassert>
#include <set>

namespace odlp::data {

const DialogueSet& StreamCursor::next() {
  assert(!done());
  return stream_[pos_++];
}

StreamStats compute_stream_stats(const DialogueStream& stream) {
  StreamStats stats;
  stats.total = stream.size();
  std::set<int> domains;
  std::set<std::pair<int, int>> subtopics;
  int prev_domain = -1, prev_subtopic = -1;
  std::size_t informative_pairs = 0, domain_repeats = 0, subtopic_repeats = 0;
  for (const auto& set : stream) {
    if (set.is_noise) {
      ++stats.noise;
      continue;  // noise breaks neither a burst nor the repeat statistics
    }
    domains.insert(set.true_domain);
    subtopics.emplace(set.true_domain, set.true_subtopic);
    if (prev_domain >= 0) {
      ++informative_pairs;
      if (set.true_domain == prev_domain) ++domain_repeats;
      if (set.true_domain == prev_domain && set.true_subtopic == prev_subtopic) {
        ++subtopic_repeats;
      }
    }
    prev_domain = set.true_domain;
    prev_subtopic = set.true_subtopic;
  }
  if (informative_pairs > 0) {
    stats.domain_repeat_rate =
        static_cast<double>(domain_repeats) / informative_pairs;
    stats.subtopic_repeat_rate =
        static_cast<double>(subtopic_repeats) / informative_pairs;
  }
  stats.distinct_domains = domains.size();
  stats.distinct_subtopics = subtopics.size();
  return stats;
}

}  // namespace odlp::data
