// Stream transforms: controlled distortions of a dialogue stream for
// robustness experiments — does the selection policy survive interleaved
// users, extra noise, or re-ordered bursts?
#pragma once

#include "data/dialogue.h"
#include "data/user_oracle.h"
#include "util/rng.h"

namespace odlp::data {

// Round-robin interleave of several streams (a shared device; e.g. a family
// robot hearing two people). Stops when all inputs are exhausted;
// stream_position is rewritten to the merged order.
DialogueStream interleave(const std::vector<const DialogueStream*>& streams);

// Injects additional noise dialogues at `rate` (probability per original
// set of inserting one noise set after it), using the oracle's dictionary
// world. Positions are rewritten.
DialogueStream inject_noise(const DialogueStream& stream, double rate,
                            UserOracle& oracle, util::Rng& rng);

// Destroys temporal correlation by a full shuffle (turns a MedDialog-like
// stream into an iid one with identical content). Positions rewritten.
DialogueStream shuffled(const DialogueStream& stream, util::Rng& rng);

// Keeps every k-th set (subsampling a stream to a shorter session).
// Requires k >= 1.
DialogueStream every_kth(const DialogueStream& stream, std::size_t k);

// Reverses arrival order (late bursts first) — an adversarial check that no
// policy depends on seeing diverse data early. Positions rewritten.
DialogueStream reversed(const DialogueStream& stream);

}  // namespace odlp::data
