// UserOracle: the simulated device owner.
//
// Stands in for the human in the loop (DESIGN.md §2): when the framework
// decides to keep a dialogue set, it asks the user "Do you think my response
// is acceptable and if not what would be an ideal response?" — the oracle
// answers with the user's preferred response, deterministically derived from
// a per-user seed.
//
// The user's hidden style: for every (domain, subtopic) pair the user has a
// fixed preferred phrasing — a personal prefix, a few signature content
// words from the subtopic's lexicon, and a personal suffix. Fine-tuning must
// recover this mapping from question domain/subtopic to styled response;
// that is the "personalization" the ROUGE-1 evaluation measures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dialogue.h"
#include "lexicon/lexicon.h"

namespace odlp::data {

class UserOracle {
 public:
  UserOracle(std::uint64_t user_seed, const lexicon::LexiconDictionary& dict);

  // The user's preferred response for a (domain, subtopic) question.
  const std::string& preferred_response(std::size_t domain, std::size_t subtopic) const;

  // The user's generic reply for uninformative smalltalk.
  const std::string& generic_response() const { return generic_response_; }

  // Simulates asking the user to annotate a dialogue set: returns the
  // preferred response and counts the request (the paper's annotation
  // sparsity is measured by this counter).
  std::string annotate(const DialogueSet& set);

  std::size_t annotation_requests() const { return annotation_requests_; }
  void reset_annotation_counter() { annotation_requests_ = 0; }

  std::uint64_t seed() const { return seed_; }
  const lexicon::LexiconDictionary& dictionary() const { return dict_; }

 private:
  std::uint64_t seed_;
  const lexicon::LexiconDictionary& dict_;
  // style_[domain][subtopic] = full preferred response string.
  std::vector<std::vector<std::string>> style_;
  std::string generic_response_;
  std::size_t annotation_requests_ = 0;
};

}  // namespace odlp::data
