#include "data/profiles.h"

#include <stdexcept>

namespace odlp::data {

DatasetProfile alpaca_profile() {
  DatasetProfile p;
  p.name = "ALPACA";
  p.domain_mix = {{"daily", 0.35}, {"glove", 0.30}, {"reasoning", 0.20},
                  {"prosocial", 0.15}};
  p.noise_rate = 0.25;
  p.burst_length = 1;
  return p;
}

DatasetProfile dolly_profile() {
  DatasetProfile p;
  p.name = "DOLLY";
  p.domain_mix = {{"daily", 0.40}, {"glove", 0.35}, {"emotion", 0.125},
                  {"reasoning", 0.125}};
  p.noise_rate = 0.30;
  p.burst_length = 1;
  return p;
}

DatasetProfile openorca_profile() {
  DatasetProfile p;
  p.name = "OPENORCA";
  p.domain_mix = {{"reasoning", 0.55}, {"glove", 0.30}, {"daily", 0.15}};
  p.noise_rate = 0.35;
  p.burst_length = 1;
  p.question_words_min = 4;
  p.question_words_max = 8;  // FLAN-style questions are longer
  return p;
}

DatasetProfile meddialog_profile() {
  DatasetProfile p;
  p.name = "MedDialog";
  p.domain_mix = {{"medical", 0.90}, {"daily", 0.10}};
  p.noise_rate = 0.30;
  p.burst_length = 16;  // long same-complaint consultations
  return p;
}

DatasetProfile prosocial_profile() {
  DatasetProfile p;
  p.name = "Prosocial";
  p.domain_mix = {{"prosocial", 0.85}, {"emotion", 0.15}};
  p.noise_rate = 0.30;
  p.burst_length = 12;
  return p;
}

DatasetProfile empathetic_profile() {
  DatasetProfile p;
  p.name = "Empathetic";
  p.domain_mix = {{"emotion", 0.85}, {"daily", 0.15}};
  p.noise_rate = 0.30;
  p.burst_length = 12;
  return p;
}

std::vector<DatasetProfile> all_profiles() {
  return {alpaca_profile(),   dolly_profile(),      prosocial_profile(),
          empathetic_profile(), openorca_profile(), meddialog_profile()};
}

DatasetProfile profile_by_name(const std::string& name) {
  for (const auto& p : all_profiles()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown dataset profile: " + name);
}

}  // namespace odlp::data
