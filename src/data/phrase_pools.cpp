#include "data/phrase_pools.h"

#include <set>

#include "text/normalize.h"

namespace odlp::data {

const std::vector<std::string>& user_prefix_pool() {
  static const std::vector<std::string> pool = {
      "honestly i would suggest",
      "from my experience you should",
      "listen dear the best plan is",
      "alright my advice is to",
      "personally i always recommend",
      "let me be direct you need",
  };
  return pool;
}

const std::vector<std::string>& user_suffix_pool() {
  static const std::vector<std::string> pool = {
      "take care friend",      "hope that helps you",
      "stay safe out there",   "let me know how it goes",
      "wishing you the best",  "you have got this",
  };
  return pool;
}

const std::vector<std::string>& generic_reply_pool() {
  // Deliberately overlapping phrasings: any one reply scores ~0.2–0.4
  // ROUGE-1 against any other, which makes smalltalk responses a noise
  // *floor* rather than a perfectly learnable target (see DESIGN.md §2 —
  // this is what keeps uninformative dialogue uninformative).
  static const std::vector<std::string> pool = {
      "okay sure sounds good to me",
      "alright no problem at all",
      "fine thanks for telling me",
      "okay thanks that sounds fine",
      "sure no worries talk to you later",
      "alright sounds good thanks",
      "okay got it no problem",
      "sure thing thanks a lot",
  };
  return pool;
}

const std::vector<std::string>& assistant_stem_pool() {
  static const std::vector<std::string> pool = {
      "i am not sure but maybe you could try something",
      "that is interesting let me think about it",
      "i see what you mean perhaps consider options",
      "thanks for sharing i will keep that in mind",
  };
  return pool;
}

std::vector<std::string> vocabulary_words(const lexicon::LexiconDictionary& dict) {
  std::set<std::string> words;
  for (const auto& domain : dict.domains()) {
    for (const auto& w : domain.flattened()) words.insert(w);
  }
  for (const auto& w : lexicon::filler_words()) words.insert(w);
  auto absorb = [&words](const std::vector<std::string>& pool) {
    for (const auto& phrase : pool) {
      for (const auto& w : text::normalize_and_split(phrase)) words.insert(w);
    }
  };
  absorb(user_prefix_pool());
  absorb(user_suffix_pool());
  absorb(generic_reply_pool());
  absorb(assistant_stem_pool());
  return {words.begin(), words.end()};
}

}  // namespace odlp::data
