#include "data/stream_transforms.h"

#include <algorithm>
#include <cassert>

#include "data/generator.h"
#include "data/profiles.h"

namespace odlp::data {

namespace {

void renumber(DialogueStream& stream) {
  for (std::size_t i = 0; i < stream.size(); ++i) stream[i].stream_position = i;
}

}  // namespace

DialogueStream interleave(const std::vector<const DialogueStream*>& streams) {
  DialogueStream out;
  std::size_t total = 0;
  for (const auto* s : streams) total += s->size();
  out.reserve(total);
  std::vector<std::size_t> cursors(streams.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t k = 0; k < streams.size(); ++k) {
      if (cursors[k] < streams[k]->size()) {
        out.push_back((*streams[k])[cursors[k]++]);
        progressed = true;
      }
    }
  }
  renumber(out);
  return out;
}

DialogueStream inject_noise(const DialogueStream& stream, double rate,
                            UserOracle& oracle, util::Rng& rng) {
  assert(rate >= 0.0);
  // A generator over any profile provides make_noise(); the profile's
  // mixture is irrelevant for noise sets.
  Generator noise_source(alpaca_profile(), oracle, rng.split());
  DialogueStream out;
  out.reserve(stream.size());
  for (const auto& set : stream) {
    out.push_back(set);
    if (rng.bernoulli(std::min(1.0, rate))) {
      out.push_back(noise_source.make_noise());
    }
  }
  renumber(out);
  return out;
}

DialogueStream shuffled(const DialogueStream& stream, util::Rng& rng) {
  DialogueStream out = stream;
  rng.shuffle(out);
  renumber(out);
  return out;
}

DialogueStream every_kth(const DialogueStream& stream, std::size_t k) {
  assert(k >= 1);
  DialogueStream out;
  for (std::size_t i = 0; i < stream.size(); i += k) out.push_back(stream[i]);
  renumber(out);
  return out;
}

DialogueStream reversed(const DialogueStream& stream) {
  DialogueStream out(stream.rbegin(), stream.rend());
  renumber(out);
  return out;
}

}  // namespace odlp::data
