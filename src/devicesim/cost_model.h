// Analytic compute cost model for the edge device (DESIGN.md §2).
//
// Models fine-tuning and inference cost in FLOPs and converts to modeled
// seconds at a configurable sustained throughput. Defaults approximate the
// paper's A10 (150 W, single slot) running a small on-device LLM; the
// absolute numbers are not the reproduction target — the *shape* (training
// time per epoch linear in the number of synthesized sets, Fig. 3) is.
#pragma once

#include <cstddef>

#include "llm/minillm.h"

namespace odlp::devicesim {

struct DeviceSpec {
  double sustained_flops = 8.0e12;  // ~A10 fp16 with realistic utilization
  double watts = 150.0;             // paper's A10 power envelope

  double seconds_for_flops(double flops) const { return flops / sustained_flops; }
  double joules_for_flops(double flops) const {
    return seconds_for_flops(flops) * watts;
  }
};

struct TrainingCost {
  double flops = 0.0;
  double modeled_seconds = 0.0;
  double modeled_joules = 0.0;
};

// Cost of `epochs` passes over `num_sequences` training sequences of mean
// length `mean_seq_len`. Backward ≈ 2x forward FLOPs (3x total).
TrainingCost finetune_cost(const llm::ModelConfig& model, std::size_t num_sequences,
                           double mean_seq_len, std::size_t epochs,
                           const DeviceSpec& device = DeviceSpec{});

// Cost of generating `new_tokens` continuation tokens from a `prompt_len`
// prompt (full-sequence recompute per step, as MiniLlm does).
TrainingCost generation_cost(const llm::ModelConfig& model, std::size_t prompt_len,
                             std::size_t new_tokens,
                             const DeviceSpec& device = DeviceSpec{});

}  // namespace odlp::devicesim
