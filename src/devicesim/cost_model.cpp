#include "devicesim/cost_model.h"

namespace odlp::devicesim {

TrainingCost finetune_cost(const llm::ModelConfig& model, std::size_t num_sequences,
                           double mean_seq_len, std::size_t epochs,
                           const DeviceSpec& device) {
  TrainingCost cost;
  const double fwd = model.forward_flops(static_cast<std::size_t>(mean_seq_len));
  cost.flops = 3.0 * fwd * static_cast<double>(num_sequences) *
               static_cast<double>(epochs);
  cost.modeled_seconds = device.seconds_for_flops(cost.flops);
  cost.modeled_joules = device.joules_for_flops(cost.flops);
  return cost;
}

TrainingCost generation_cost(const llm::ModelConfig& model, std::size_t prompt_len,
                             std::size_t new_tokens, const DeviceSpec& device) {
  TrainingCost cost;
  for (std::size_t t = 0; t < new_tokens; ++t) {
    cost.flops += model.forward_flops(prompt_len + t);
  }
  cost.modeled_seconds = device.seconds_for_flops(cost.flops);
  cost.modeled_joules = device.joules_for_flops(cost.flops);
  return cost;
}

}  // namespace odlp::devicesim
