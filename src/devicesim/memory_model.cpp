#include "devicesim/memory_model.h"

#include <cmath>

#include "obs/metrics.h"

namespace odlp::devicesim {

BinSpec paper_bin_spec() {
  // 1024*2 + 4096*4 + 64 = 2048 + 16384 + 64 = 18.5 KB of payload; the paper
  // rounds the bin allocation up to 22 KB for alignment/slack. We keep the
  // payload description and expose the paper's 22 KB granule via buffer_kb.
  return BinSpec{};
}

double buffer_kb(std::size_t bins, const BinSpec& spec) {
  (void)spec;
  return 22.0 * static_cast<double>(bins);  // the paper's bin granule
}

std::size_t bins_for_kb(double kb, const BinSpec& spec) {
  (void)spec;
  if (kb <= 0.0) return 0;
  const double bins = kb / 22.0;
  return static_cast<std::size_t>(bins + 0.5);
}

MemoryLedger model_memory_ledger(llm::MiniLlm& model, std::size_t buffer_bins,
                                 std::size_t kv_sessions, const BinSpec& spec) {
  MemoryLedger ledger;
  const llm::MiniLlm::WeightFootprint fp = model.weight_footprint();
  ledger.matmul_weight_bytes = fp.matmul_weight_bytes;
  ledger.embedding_bytes = fp.embedding_bytes;
  ledger.scale_bytes = fp.scale_bytes;
  ledger.norm_bytes = fp.norm_bytes;
  ledger.lora_bytes = fp.lora_bytes;
  // num_parameters() counts every fp32 parameter including LoRA adapters;
  // model_bytes() includes lora_bytes too, so the ratio compares like with
  // like (the adapters stay fp32 on both sides).
  ledger.fp32_model_bytes = model.num_parameters() * sizeof(float);

  const llm::ModelConfig& cfg = model.config();
  ledger.kv_sessions = kv_sessions == 0 ? 1 : kv_sessions;
  ledger.kv_cache_bytes = ledger.kv_sessions * cfg.layers * 2 *
                          cfg.max_seq_len * cfg.dim * sizeof(float);
  ledger.buffer_bytes = static_cast<std::size_t>(
      buffer_kb(buffer_bins, spec) * 1024.0);
  return ledger;
}

MemoryLedger governed_memory_ledger(llm::MiniLlm& model,
                                    std::size_t buffer_bins,
                                    double kv_fraction,
                                    std::size_t kv_sessions,
                                    const BinSpec& spec) {
  MemoryLedger ledger =
      model_memory_ledger(model, buffer_bins, kv_sessions, spec);
  if (kv_fraction < 0.0) kv_fraction = 0.0;
  if (kv_fraction > 1.0) kv_fraction = 1.0;
  ledger.kv_cache_bytes = static_cast<std::size_t>(
      static_cast<double>(ledger.kv_cache_bytes) * kv_fraction);
  return ledger;
}

std::size_t FleetMemoryLedger::adapter_capacity(std::size_t budget_bytes) const {
  const std::size_t fixed = base.total_bytes() + buffer_bytes();
  if (adapter_bytes_each == 0) return 1;
  if (budget_bytes <= fixed + adapter_bytes_each) return 1;
  return (budget_bytes - fixed) / adapter_bytes_each;
}

FleetMemoryLedger fleet_memory_ledger(llm::MiniLlm& base_model,
                                      std::size_t adapter_bytes_each,
                                      std::size_t resident_adapters,
                                      std::size_t kv_sessions,
                                      std::size_t buffer_bins_each,
                                      std::size_t resident_buffers,
                                      const BinSpec& spec) {
  FleetMemoryLedger ledger;
  ledger.base = model_memory_ledger(base_model, /*buffer_bins=*/0,
                                    kv_sessions, spec);
  ledger.adapter_bytes_each = adapter_bytes_each;
  ledger.resident_adapters = resident_adapters;
  ledger.buffer_bytes_each = static_cast<std::size_t>(
      buffer_kb(buffer_bins_each, spec) * 1024.0);
  ledger.resident_buffers = resident_buffers;
  return ledger;
}

StorageLedger storage_ledger_snapshot() {
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  StorageLedger ledger;
  ledger.blocks_written = snap.counter_value("io.blocks.written");
  ledger.bytes_raw = snap.counter_value("io.bytes.raw");
  ledger.bytes_compressed = snap.counter_value("io.bytes.compressed");
  return ledger;
}

float scaled_learning_rate(std::size_t bins) {
  // Anchor: 128 bins -> 7e-5; lr ∝ sqrt(bins). This reproduces the paper's
  // ladder {8:2, 16:3, 32:4, 64:5, 128:7, 256:10, 512:14} (x1e-5) within
  // rounding.
  const double anchor_bins = 128.0;
  const double anchor_lr = 7e-5;
  return static_cast<float>(anchor_lr *
                            std::sqrt(static_cast<double>(bins) / anchor_bins));
}

}  // namespace odlp::devicesim
