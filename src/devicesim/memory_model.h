// Edge-device memory accounting for the data-selection buffer.
//
// The paper's buffer is divided into equal bins, each holding one dialogue
// set's text (up to 1024 tokens), its dominant domain tag and its embedding
// (a 4096-float vector for Llama-3B), giving a 22 KB bin. Buffer sizes in
// the paper's Table 3 follow: {8, 16, 32, 64, 128, 256, 512} bins =
// {176, 352, 704, 1408, 2816, 5632, 11264} KB.
//
// We account with the paper's bin geometry (so the benches print the same
// KB column the paper reports) while also exposing the actual bytes our
// MiniLlm configuration needs, which is much smaller.
#pragma once

#include <cstddef>
#include <cstdint>

#include "llm/minillm.h"

namespace odlp::devicesim {

struct BinSpec {
  std::size_t max_text_tokens = 1024;   // 512 question + 512 answer
  std::size_t bytes_per_token = 2;      // packed token id
  std::size_t embedding_floats = 4096;  // Llama-3B hidden size
  std::size_t domain_tag_bytes = 64;

  std::size_t bytes() const {
    return max_text_tokens * bytes_per_token + embedding_floats * sizeof(float) +
           domain_tag_bytes;
  }
  double kilobytes() const { return static_cast<double>(bytes()) / 1024.0; }
};

// The paper's 22 KB bin.
BinSpec paper_bin_spec();

// Buffer footprint in KB for a bin count (rounded to the paper's figures:
// 22 KB * bins).
double buffer_kb(std::size_t bins, const BinSpec& spec = paper_bin_spec());

// Inverse mapping used by Table 3: nearest paper bin count for a KB budget.
std::size_t bins_for_kb(double kb, const BinSpec& spec = paper_bin_spec());

// Learning-rate scaling used in Table 3: lr ∝ sqrt(batch size), anchored so
// 128 bins → 7e-5 (the paper's {2,3,4,5,7,10,14}e-5 ladder).
float scaled_learning_rate(std::size_t bins);

// What an on-device inference deployment of `model` keeps resident, under
// the model's active inference precision: weights (int8 codes + fp32 scales
// when quantized), the fp32 KV cache of one full-length decode session, and
// the selection buffer at the paper's bin granule. The fp32 baseline and the
// resulting compression ratio are reported alongside so bench rows don't
// have to recompute them.
struct MemoryLedger {
  // Model weights under the active precision (MiniLlm::weight_footprint).
  std::size_t matmul_weight_bytes = 0;
  std::size_t embedding_bytes = 0;
  std::size_t scale_bytes = 0;  // fp32 scale share of the two terms above
  std::size_t norm_bytes = 0;
  std::size_t lora_bytes = 0;
  // Same model fully fp32 (the compression denominator).
  std::size_t fp32_model_bytes = 0;
  // Live KV-cache footprint: layers × 2 (K,V) × T × dim fp32 per decode
  // session, times kv_sessions (continuous-batched decode keeps one cache
  // set per concurrently-live session, not one total).
  std::size_t kv_cache_bytes = 0;
  // Concurrently-live decode sessions the KV term accounts for (>= 1; the
  // engine reports its evaluation peak batch occupancy here).
  std::size_t kv_sessions = 1;
  // Selection buffer at the paper's 22 KB bin granule (0 bins = no buffer).
  std::size_t buffer_bytes = 0;
  // OBSF bytes-at-rest (io.bytes.compressed delta for this device): stream
  // recordings, buffer checkpoints, and binary trace/metric sinks on flash.
  // Storage, not RAM — reported alongside but excluded from total_bytes()
  // so memory budgets and governor thresholds are unaffected.
  std::size_t storage_bytes_at_rest = 0;

  std::size_t model_bytes() const {
    return matmul_weight_bytes + embedding_bytes + norm_bytes + lora_bytes;
  }
  std::size_t total_bytes() const {
    return model_bytes() + kv_cache_bytes + buffer_bytes;
  }
  double model_ratio_vs_fp32() const {
    return fp32_model_bytes == 0
               ? 1.0
               : static_cast<double>(model_bytes()) /
                     static_cast<double>(fp32_model_bytes);
  }
};

// `kv_sessions` is the number of concurrently-live decode sessions to
// account KV bytes for (continuous batching; clamped to at least 1).
MemoryLedger model_memory_ledger(llm::MiniLlm& model,
                                 std::size_t buffer_bins = 0,
                                 std::size_t kv_sessions = 1,
                                 const BinSpec& spec = paper_bin_spec());

// The ledger under a resource-governor rung: weights under the model's
// *active* precision (the governor's int8 switch already changed
// weight_footprint()), the KV cache scaled by the decode-budget fraction,
// and the buffer at its live (possibly shed) bin count. `kv_fraction` and
// `buffer_bins` come straight from resil::GovernorDecision /
// DataBuffer::effective_capacity(), so the governor's next pressure sample
// sees the effect of its own last decision.
MemoryLedger governed_memory_ledger(llm::MiniLlm& model,
                                    std::size_t buffer_bins,
                                    double kv_fraction,
                                    std::size_t kv_sessions = 1,
                                    const BinSpec& spec = paper_bin_spec());

// Multi-tenant fleet view (DESIGN.md §13): ONE shared base model serving N
// users in one process. The base weights and the live KV decode sessions
// are paid once; what scales with tenancy is the per-user state — resident
// adapters (LoRA A/B plus their Adam moments, fp32) and per-user selection
// buffers. The fleet AdapterCache and the resource governor read the same
// ledger: the cache sizes its LRU so total_bytes() stays under the device
// budget, and the governor's pressure samples see the cache's residency.
struct FleetMemoryLedger {
  MemoryLedger base;                  // shared weights + batched-decode KV
  std::size_t adapter_bytes_each = 0; // one user's A/B + m/v + step counter
  std::size_t resident_adapters = 0;  // adapters currently held in memory
  std::size_t buffer_bytes_each = 0;  // one user's buffer (paper granule)
  std::size_t resident_buffers = 0;   // buffers currently held in memory
  // OBSF bytes-at-rest across the whole fleet (flash, not RAM; excluded
  // from total_bytes() like MemoryLedger::storage_bytes_at_rest).
  std::size_t storage_bytes_at_rest = 0;

  std::size_t adapter_bytes() const {
    return adapter_bytes_each * resident_adapters;
  }
  std::size_t buffer_bytes() const {
    return buffer_bytes_each * resident_buffers;
  }
  std::size_t total_bytes() const {
    return base.total_bytes() + adapter_bytes() + buffer_bytes();
  }
  // How many adapters fit under `budget_bytes` once the shared base, KV
  // sessions, and resident buffers are paid (the AdapterCache capacity; at
  // least 1 so the fleet can always run, just with heavy spilling).
  std::size_t adapter_capacity(std::size_t budget_bytes) const;
};

// `base_model` must be the shared adapter-free decode base; `kv_sessions`
// is the batched-decode width (live KV cache sets). Buffer bins use the
// paper's 22 KB bin granule like the single-device ledger.
FleetMemoryLedger fleet_memory_ledger(llm::MiniLlm& base_model,
                                      std::size_t adapter_bytes_each,
                                      std::size_t resident_adapters,
                                      std::size_t kv_sessions,
                                      std::size_t buffer_bins_each,
                                      std::size_t resident_buffers,
                                      const BinSpec& spec = paper_bin_spec());

// Storage-side ledger for the OBSF container layer (DESIGN.md §14): bytes
// written to flash and the write amplification the encode path pays for
// them, as budgeted quantities next to the RAM terms above. Snapshots are
// taken from the io.* registry counters; the delta of two snapshots
// isolates one phase (e.g. one fleet run).
struct StorageLedger {
  std::uint64_t blocks_written = 0;   // io.blocks.written
  std::uint64_t bytes_raw = 0;        // io.bytes.raw (pre-compression)
  std::uint64_t bytes_compressed = 0; // io.bytes.compressed (at rest)

  // Raw payload bytes per stored byte (> 1 when LZ4 wins).
  double compression_ratio() const {
    return bytes_compressed == 0
               ? 1.0
               : static_cast<double>(bytes_raw) /
                     static_cast<double>(bytes_compressed);
  }
  // Stored bytes per raw payload byte (< 1 when LZ4 wins): the container's
  // write amplification.
  double write_amplification() const {
    return bytes_raw == 0 ? 1.0
                          : static_cast<double>(bytes_compressed) /
                                static_cast<double>(bytes_raw);
  }

  StorageLedger delta_since(const StorageLedger& earlier) const {
    StorageLedger d;
    d.blocks_written = blocks_written - earlier.blocks_written;
    d.bytes_raw = bytes_raw - earlier.bytes_raw;
    d.bytes_compressed = bytes_compressed - earlier.bytes_compressed;
    return d;
  }
};

// Current cumulative io.* counters of the global obs registry.
StorageLedger storage_ledger_snapshot();

}  // namespace odlp::devicesim
