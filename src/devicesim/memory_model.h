// Edge-device memory accounting for the data-selection buffer.
//
// The paper's buffer is divided into equal bins, each holding one dialogue
// set's text (up to 1024 tokens), its dominant domain tag and its embedding
// (a 4096-float vector for Llama-3B), giving a 22 KB bin. Buffer sizes in
// the paper's Table 3 follow: {8, 16, 32, 64, 128, 256, 512} bins =
// {176, 352, 704, 1408, 2816, 5632, 11264} KB.
//
// We account with the paper's bin geometry (so the benches print the same
// KB column the paper reports) while also exposing the actual bytes our
// MiniLlm configuration needs, which is much smaller.
#pragma once

#include <cstddef>

namespace odlp::devicesim {

struct BinSpec {
  std::size_t max_text_tokens = 1024;   // 512 question + 512 answer
  std::size_t bytes_per_token = 2;      // packed token id
  std::size_t embedding_floats = 4096;  // Llama-3B hidden size
  std::size_t domain_tag_bytes = 64;

  std::size_t bytes() const {
    return max_text_tokens * bytes_per_token + embedding_floats * sizeof(float) +
           domain_tag_bytes;
  }
  double kilobytes() const { return static_cast<double>(bytes()) / 1024.0; }
};

// The paper's 22 KB bin.
BinSpec paper_bin_spec();

// Buffer footprint in KB for a bin count (rounded to the paper's figures:
// 22 KB * bins).
double buffer_kb(std::size_t bins, const BinSpec& spec = paper_bin_spec());

// Inverse mapping used by Table 3: nearest paper bin count for a KB budget.
std::size_t bins_for_kb(double kb, const BinSpec& spec = paper_bin_spec());

// Learning-rate scaling used in Table 3: lr ∝ sqrt(batch size), anchored so
// 128 bins → 7e-5 (the paper's {2,3,4,5,7,10,14}e-5 ladder).
float scaled_learning_rate(std::size_t bins);

}  // namespace odlp::devicesim
