#include "obs/journal.h"

#include <algorithm>
#include <map>
#include <utility>

namespace odlp::obs {

namespace {

constexpr const char* kJournalMeta = "odlp.journal.v1";

io::Schema journal_schema() {
  io::Schema schema;
  schema.meta = kJournalMeta;
  schema.columns = {
      {"snap", io::ColumnType::kU64, io::ColumnCodec::kDelta},
      {"ts_us", io::ColumnType::kU64, io::ColumnCodec::kDelta},
      {"name", io::ColumnType::kBytes, io::ColumnCodec::kFlat},
      {"scope", io::ColumnType::kBytes, io::ColumnCodec::kFlat},
      {"kind", io::ColumnType::kU8, io::ColumnCodec::kZoH},
      {"counter", io::ColumnType::kU64, io::ColumnCodec::kDelta},
      {"value", io::ColumnType::kF64, io::ColumnCodec::kZoH},
      {"h_count", io::ColumnType::kU64, io::ColumnCodec::kDelta},
      {"h_sum", io::ColumnType::kF64, io::ColumnCodec::kZoH},
      {"p50", io::ColumnType::kF64, io::ColumnCodec::kZoH},
      {"p95", io::ColumnType::kF64, io::ColumnCodec::kZoH},
      {"p99", io::ColumnType::kF64, io::ColumnCodec::kZoH},
  };
  return schema;
}

}  // namespace

JournalWriter::JournalWriter(const std::string& path,
                             io::ObsfWriter::Options options)
    : writer_(std::make_unique<io::ObsfWriter>(path, journal_schema(),
                                               options)) {}

JournalWriter::~JournalWriter() = default;

void JournalWriter::append(const MetricsSnapshot& snap, std::uint64_t ts_us) {
  const std::uint64_t ordinal = snapshots_++;
  for (const MetricSample& s : snap.samples) {
    writer_->append_u64(ordinal);
    writer_->append_u64(ts_us);
    writer_->append_bytes(s.name);
    writer_->append_bytes(s.scope);
    writer_->append_u8(static_cast<std::uint8_t>(s.kind));
    writer_->append_u64(s.kind == MetricSample::Kind::kCounter ? s.counter
                                                               : 0u);
    writer_->append_f64(s.kind == MetricSample::Kind::kGauge ? s.gauge : 0.0);
    const bool hist = s.kind == MetricSample::Kind::kHistogram;
    writer_->append_u64(hist ? s.hist.count : 0u);
    writer_->append_f64(hist ? s.hist.sum : 0.0);
    writer_->append_f64(hist ? s.hist.p50 : 0.0);
    writer_->append_f64(hist ? s.hist.p95 : 0.0);
    writer_->append_f64(hist ? s.hist.p99 : 0.0);
    writer_->end_row();
  }
}

io::ObsfWriter::Stats JournalWriter::finish() { return writer_->finish(); }

std::vector<double> JournalSeries::rates() const {
  std::vector<double> out;
  if (points.size() < 2) return out;
  out.reserve(points.size() - 1);
  for (std::size_t i = 1; i < points.size(); ++i) {
    const JournalPoint& a = points[i - 1];
    const JournalPoint& b = points[i];
    const double dt = (b.ts_us >= a.ts_us)
                          ? static_cast<double>(b.ts_us - a.ts_us) * 1e-6
                          : 0.0;
    if (dt <= 0.0) {
      out.push_back(0.0);
      continue;
    }
    double dv = 0.0;
    switch (kind) {
      case MetricSample::Kind::kCounter:
        dv = static_cast<double>(b.counter) - static_cast<double>(a.counter);
        break;
      case MetricSample::Kind::kGauge:
        dv = b.value - a.value;
        break;
      case MetricSample::Kind::kHistogram:
        dv = static_cast<double>(b.h_count) - static_cast<double>(a.h_count);
        break;
    }
    out.push_back(dv / dt);
  }
  return out;
}

const JournalSeries* Journal::find(const std::string& name,
                                   const std::string& scope) const {
  for (const JournalSeries& s : series) {
    if (s.name == name && s.scope == scope) return &s;
  }
  return nullptr;
}

Journal read_journal(const std::string& path, bool recover) {
  io::ObsfReader reader(path, io::ObsfReader::Options{recover});
  if (reader.schema().meta != kJournalMeta ||
      reader.schema().columns.size() != 12) {
    throw util::CorruptionError("journal: not a metrics journal: " + path);
  }

  // (name, scope) -> series, built in row order (rows within a snapshot are
  // already (name, scope)-sorted by full_snapshot()).
  std::map<std::pair<std::string, std::string>, JournalSeries> by_key;
  std::uint64_t max_snap = 0;
  bool any = false;
  while (reader.next_block()) {
    for (std::size_t k = 0; k < reader.rows(); ++k) {
      JournalPoint pt;
      pt.snap = reader.col_u64(0)[k];
      pt.ts_us = reader.col_u64(1)[k];
      pt.counter = reader.col_u64(5)[k];
      pt.value = reader.col_f64(6)[k];
      pt.h_count = reader.col_u64(7)[k];
      pt.h_sum = reader.col_f64(8)[k];
      pt.p50 = reader.col_f64(9)[k];
      pt.p95 = reader.col_f64(10)[k];
      pt.p99 = reader.col_f64(11)[k];

      const std::uint8_t kind_raw = reader.col_u8(4)[k];
      if (kind_raw > static_cast<std::uint8_t>(
                         MetricSample::Kind::kHistogram)) {
        throw util::CorruptionError("journal: bad metric kind");
      }
      auto key = std::make_pair(reader.col_bytes(2)[k],
                                reader.col_bytes(3)[k]);
      JournalSeries& series = by_key[key];
      if (series.points.empty()) {
        series.name = key.first;
        series.scope = key.second;
        series.kind = static_cast<MetricSample::Kind>(kind_raw);
      }
      max_snap = std::max(max_snap, pt.snap);
      any = true;
      series.points.push_back(pt);
    }
  }

  Journal journal;
  journal.truncated = reader.truncated();
  if (journal.truncated && any) {
    // The stream ended mid-snapshot: every row of the highest ordinal may
    // be a partial set, so cut back to the last snapshot known complete.
    for (auto& [key, series] : by_key) {
      while (!series.points.empty() && series.points.back().snap == max_snap) {
        series.points.pop_back();
      }
    }
    if (max_snap > 0) {
      journal.snapshots = max_snap;  // ordinals 0 .. max_snap-1 survive
    }
  } else if (any) {
    journal.snapshots = max_snap + 1;
  }

  journal.series.reserve(by_key.size());
  for (auto& [key, series] : by_key) {
    if (!series.points.empty()) journal.series.push_back(std::move(series));
  }
  return journal;
}

}  // namespace odlp::obs
