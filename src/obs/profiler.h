// Sampling profiler over trace spans (DESIGN.md §15).
//
// The trace ring (obs/trace.h) records every span — exact, but flushing and
// post-processing a fleet-scale run's full event stream is heavyweight. The
// profiler answers the cheaper question "where is the time going, roughly"
// by statistical sampling: each instrumented thread maintains a lock-free
// stack of its currently-open span names (pushed/popped by TraceScope when
// profiling is on), and a ticker thread wakes at the configured rate and
// snapshots every thread's stack. Aggregating the samples yields folded
// stacks ("fleet.wave;fleet.user.round;tensor.gemm 42") — the flamegraph
// input format — and a top-N self-time table.
//
// Cost model: with profiling ON and tracing OFF, a span costs one relaxed
// mode load plus two pairs of stack/depth stores (no clock read, no mutex,
// no allocation) — the per-span overhead the bench_obs gate holds at
// <= 0.1% of a decode step. The sampler itself costs one wakeup per tick
// regardless of span volume. Sampling error behaves like any statistical
// profiler: a frame's share converges as samples accumulate; frames shorter
// than a tick may be missed entirely.
//
// Enabling:
//   * programmatic — Profiler p(97); p.start(); ... ProfileReport r =
//     p.stop();
//   * environment — ODLP_PROFILE=hz:path (e.g. "97:prof.folded", checked
//     once at startup) profiles the whole process and writes the folded
//     stacks to `path` at exit. Plain "path" uses the default rate.
//     Flamegraph: flamegraph.pl prof.folded > prof.svg.
//
// Rates are deliberately primes (default 97 Hz) so the ticks do not phase-
// lock with millisecond-periodic work.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace odlp::obs {

// Aggregated result of one profiling window.
struct ProfileReport {
  std::uint64_t ticks = 0;       // sampler wakeups
  std::uint64_t samples = 0;     // thread-stacks captured (>= 1 per busy tick)
  std::uint64_t idle_ticks = 0;  // wakeups that found no open span anywhere
  double hz = 0.0;               // configured rate

  // Folded call stacks: "outer;inner;leaf" -> times sampled. Multiply by
  // the tick period for approximate wall time.
  std::map<std::string, std::uint64_t> folded;

  // One "stack count" line per folded entry — flamegraph.pl input.
  std::string folded_text() const;

  // Leaf-frame (self-time) sample counts, descending, at most `n` entries.
  std::vector<std::pair<std::string, std::uint64_t>> top_self(
      std::size_t n) const;
  // Human-readable top_self table with percentages, for logs/benches.
  std::string top_table(std::size_t n) const;
};

// One sampling window. start() enables the per-thread span stacks and
// launches the ticker thread; stop() joins it, disables the stacks, and
// returns the aggregate. Windows can be reused sequentially; only one
// Profiler should run at a time (the span stacks are process-global).
class Profiler {
 public:
  static constexpr double kDefaultHz = 97.0;

  explicit Profiler(double hz = kDefaultHz);
  ~Profiler();  // stops if still running

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void start();
  ProfileReport stop();
  bool running() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Writes report.folded_text() to `path` atomically. Throws on I/O failure.
void write_folded(const ProfileReport& report, const std::string& path);

// Path configured by ODLP_PROFILE ("" when not set).
std::string profile_path();

}  // namespace odlp::obs
