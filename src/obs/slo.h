// Declarative SLOs with multi-window burn-rate alerting (DESIGN.md §15).
//
// An SLO here is "at most `error_budget` of events may violate the
// objective" — e.g. at most 1% of rounds slower than 250 ms, at most 0.5%
// of rounds failing. The evaluator consumes the same periodic snapshots the
// journal records and, for each objective, derives the *violation
// fraction* over two trailing windows of snapshots:
//
//   burn rate = violation fraction / error budget
//
// A burn rate of 1 spends the budget exactly at the sustainable pace; 14
// exhausts a 30-day budget in ~2 days. Two windows give the classic
// fast/slow split: the short window (default 3 snapshots) catches sharp
// regressions within a few observation periods, the long window (default
// 12) catches slow leaks without flapping on noise. States:
//
//   kOk       — neither window over its threshold
//   kSlowBurn — long-window burn >= slow_burn (default 2)
//   kFastBurn — short-window burn >= fast_burn (default 14)
//
// Transitions increment registry counters (slo.<name>.fast_burn.total /
// .slow_burn.total / .recovered.total) and the current numeric state is
// exported as gauge slo.<name>.state (0/1/2), so alert history is itself
// journaled. pressure() folds the worst objective into a scalar the
// resilience governor (resil/governor.h) accepts as a PressureSample input:
// a fast burn reads as full pressure (forces descent), a slow burn as 0.75
// (holds the current rung, blocking recovery), ok as 0.
//
// Three signal shapes cover the fleet's objectives:
//   * kHistogramAbove — fraction of recorded values above `threshold`,
//     computed from cumulative bucket deltas (the straddled bucket is
//     linearly interpolated; the overflow bucket counts entirely above).
//   * kCounterRatio   — Δmetric / Δdenominator over the window (e.g.
//     failed rounds / total rounds for availability).
//   * kGaugeBelow     — fraction of window snapshots where the gauge sat
//     below `threshold` (quality floors, budget headroom).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace odlp::obs {

enum class SloSignal {
  kHistogramAbove,  // metric = histogram; threshold = value bound
  kCounterRatio,    // metric = bad-event counter; denominator = total counter
  kGaugeBelow,      // metric = gauge; threshold = floor
};

struct SloObjective {
  std::string name;    // registry-safe slug, e.g. "round_latency"
  SloSignal signal = SloSignal::kHistogramAbove;
  std::string metric;       // name in the snapshot
  std::string scope;        // "" = unscoped sample
  std::string denominator;  // kCounterRatio only
  double threshold = 0.0;   // kHistogramAbove / kGaugeBelow
  double error_budget = 0.01;  // tolerated violation fraction
  double fast_burn = 14.0;     // short-window burn threshold
  double slow_burn = 2.0;      // long-window burn threshold
  std::size_t fast_window = 3;   // snapshots in the short window
  std::size_t slow_window = 12;  // snapshots in the long window
};

enum class SloState : int { kOk = 0, kSlowBurn = 1, kFastBurn = 2 };

struct SloStatus {
  std::string name;
  SloState state = SloState::kOk;
  double fast_rate = 0.0;  // burn rate over the short window
  double slow_rate = 0.0;  // burn rate over the long window
};

class SloEvaluator {
 public:
  explicit SloEvaluator(std::vector<SloObjective> objectives);

  // Feeds one snapshot (journal cadence). Re-evaluates every objective,
  // updates states, and bumps the transition counters.
  void observe(const MetricsSnapshot& snap, std::uint64_t ts_us);

  // Governor input from the worst current state across objectives:
  // kFastBurn -> 1.0, kSlowBurn -> 0.75, kOk -> 0.0.
  double pressure() const;

  std::vector<SloStatus> status() const;
  const std::vector<SloObjective>& objectives() const { return objectives_; }

 private:
  // One extracted measurement per observe() per objective. For histogram /
  // ratio signals `bad`/`total` are cumulative; for gauges `bad` is the
  // instantaneous 0/1 violation flag and `total` is 1.
  struct Obs {
    double bad = 0.0;
    double total = 0.0;
  };
  struct Track {
    std::deque<Obs> window;  // bounded at slow_window + 1
    SloState state = SloState::kOk;
    double fast_rate = 0.0;
    double slow_rate = 0.0;
  };

  double window_fraction(const SloObjective& o, const Track& t,
                         std::size_t n) const;

  std::vector<SloObjective> objectives_;
  std::vector<Track> tracks_;
};

}  // namespace odlp::obs
