#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string_view>

#include "io/obsf.h"
#include "obs/scope.h"
#include "util/atomic_file.h"

namespace odlp::obs {

namespace {

void atomic_add_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Prometheus metric names use underscores; ours use dots. Anything outside
// [a-zA-Z0-9_:] is mapped to '_' so an arbitrary registry name is always a
// legal exposition-format identifier. Unit convention: our `.us`/`.bytes`
// suffixes become `_us`/`_bytes` by the same mapping; counters additionally
// get the `_total` suffix (added by the caller when missing).
std::string prometheus_name(const std::string& name) {
  std::string out = "odlp_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Label values escape backslash, double quote, and newline per the
// exposition format.
std::string prometheus_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// {scope="..."} label set for a scoped sample, "" for unscoped; `extra` is
// spliced as an additional label (the histogram `le`).
std::string prometheus_labels(const std::string& scope,
                              const std::string& extra = std::string()) {
  std::string inner;
  if (!scope.empty()) inner += "scope=\"" + prometheus_label_value(scope) + "\"";
  if (!extra.empty()) {
    if (!inner.empty()) inner += ",";
    inner += extra;
  }
  return inner.empty() ? std::string() : "{" + inner + "}";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be ascending");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::record(double v) {
  const std::size_t b =
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  if (prev == 0) {
    // First sample seeds min/max; racing first samples both fall through to
    // the CAS min/max below, which is order-insensitive.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, v, std::memory_order_relaxed);
    zero = 0.0;
    max_.compare_exchange_strong(zero, v, std::memory_order_relaxed);
  }
  atomic_min_double(min_, v);
  atomic_max_double(max_, v);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double lo_clamp = min_.load(std::memory_order_relaxed);
  const double hi_clamp = max_.load(std::memory_order_relaxed);
  // Rank of the q-th sample (1-based, ceil), then walk the buckets.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * double(n) + 0.5));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b <= bounds_.size(); ++b) {
    const std::uint64_t in_bucket = bucket_count(b);
    if (in_bucket == 0) continue;
    if (cum + in_bucket >= rank) {
      const double lo = (b == 0) ? lo_clamp : bounds_[b - 1];
      const double hi = (b == bounds_.size()) ? hi_clamp : bounds_[b];
      const double frac = double(rank - cum) / double(in_bucket);
      const double v = lo + (hi - lo) * frac;
      return std::min(hi_clamp, std::max(lo_clamp, v));
    }
    cum += in_bucket;
  }
  return hi_clamp;
}

Histogram::Summary Histogram::summary() const {
  Summary s;
  s.count = count();
  s.sum = sum();
  if (s.count > 0) {
    s.mean = s.sum / double(s.count);
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    s.p50 = quantile(0.50);
    s.p95 = quantile(0.95);
    s.p99 = quantile(0.99);
  }
  return s;
}

void Histogram::absorb(Histogram& src) {
  if (src.bounds_ != bounds_) {
    throw std::logic_error("Histogram::absorb: bounds differ");
  }
  if (&src == this) return;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].fetch_add(src.buckets_[i].exchange(0, std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  const std::uint64_t n = src.count_.exchange(0, std::memory_order_relaxed);
  const double sum = src.sum_.exchange(0.0, std::memory_order_relaxed);
  const double lo = src.min_.exchange(0.0, std::memory_order_relaxed);
  const double hi = src.max_.exchange(0.0, std::memory_order_relaxed);
  if (n == 0) return;
  const std::uint64_t prev = count_.fetch_add(n, std::memory_order_relaxed);
  atomic_add_double(sum_, sum);
  if (prev == 0) {
    // Destination was empty: seed min/max from the source (same CAS-from-
    // zero idiom as record()).
    double zero = 0.0;
    min_.compare_exchange_strong(zero, lo, std::memory_order_relaxed);
    zero = 0.0;
    max_.compare_exchange_strong(zero, hi, std::memory_order_relaxed);
  }
  atomic_min_double(min_, lo);
  atomic_max_double(max_, hi);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& default_us_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(decade * 2.0);
      b.push_back(decade * 5.0);
    }
    b.push_back(1e7);  // 10 s
    return b;
  }();
  return bounds;
}

const MetricSample* MetricsSnapshot::find(const std::string& name) const {
  return find_scoped(name, std::string());
}

const MetricSample* MetricsSnapshot::find_scoped(
    const std::string& name, const std::string& scope) const {
  for (const auto& s : samples) {
    if (s.name == name && s.scope == scope) return &s;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  const MetricSample* s = find(name);
  return s ? s->counter : 0;
}

double MetricsSnapshot::gauge_value(const std::string& name) const {
  const MetricSample* s = find(name);
  return s ? s->gauge : 0.0;
}

double MetricsSnapshot::histogram_sum(const std::string& name) const {
  const MetricSample* s = find(name);
  return s ? s->hist.sum : 0.0;
}

// Registered metrics are keyed by name in node-stable maps: a Counter& /
// Gauge& / Histogram& handed out once stays valid for the process lifetime.
struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  void check_unique(const std::string& name, const char* wanted_kind) {
    // Called with mutex held, before inserting `name` as `wanted_kind`.
    const bool clash =
        (counters.count(name) && std::string(wanted_kind) != "counter") ||
        (gauges.count(name) && std::string(wanted_kind) != "gauge") ||
        (histograms.count(name) && std::string(wanted_kind) != "histogram");
    if (clash) {
      throw std::logic_error("metrics: '" + name +
                             "' already registered as a different kind");
    }
  }
};

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    im.check_unique(name, "counter");
    it = im.counters.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    im.check_unique(name, "gauge");
    it = im.gauges.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name) {
  return histogram(name, default_us_bounds());
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    im.check_unique(name, "histogram");
    it = im.histograms
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  MetricsSnapshot snap;
  for (const auto& [name, c] : im.counters) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = name;
    s.counter = c->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : im.gauges) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = name;
    s.gauge = g->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : im.histograms) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = name;
    s.hist = h->summary();
    s.bounds = h->bounds();
    s.buckets.resize(h->num_buckets());
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      s.buckets[b] = h->bucket_count(b);
    }
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

void Registry::restore(const MetricsSnapshot& snap) {
  for (const auto& s : snap.samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter: {
        Counter& c = counter(s.name);
        c.reset();
        c.inc(s.counter);
        break;
      }
      case MetricSample::Kind::kGauge:
        gauge(s.name).set(s.gauge);
        break;
      case MetricSample::Kind::kHistogram: {
        // Bucket counts restore exactly; min/max/quantile edges are rebuilt
        // approximately by replaying one representative value per bucket.
        Histogram& h = histogram(s.name, s.bounds);
        if (h.bounds() != s.bounds) break;  // geometry changed: skip
        h.reset();
        for (std::size_t b = 0; b < s.buckets.size() && b <= s.bounds.size();
             ++b) {
          if (s.buckets[b] == 0) continue;
          const double lo = (b == 0) ? s.hist.min : s.bounds[b - 1];
          const double hi = (b == s.bounds.size()) ? s.hist.max : s.bounds[b];
          const double rep = std::min(std::max((lo + hi) * 0.5, s.hist.min),
                                      s.hist.max);
          for (std::uint64_t k = 0; k < s.buckets[b]; ++k) h.record(rep);
        }
        break;
      }
    }
  }
}

Registry& registry() {
  static Registry instance;
  return instance;
}

std::string dump_metrics(MetricsFormat format) {
  // Scoped-inclusive: exports carry per-user series; only the binary
  // save_metrics persistence path stays unscoped.
  return dump_metrics(full_snapshot(), format);
}

namespace {

std::string json_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string dump_metrics(const MetricsSnapshot& snap, MetricsFormat format) {
  std::string out;
  if (format == MetricsFormat::kJson) {
    out = "{\n";
    bool first = true;
    for (const auto& s : snap.samples) {
      if (!first) out += ",\n";
      first = false;
      // Scoped samples get a distinct key: "name{scope}".
      const std::string key =
          s.scope.empty() ? s.name : s.name + "{" + s.scope + "}";
      out += "  \"" + json_escape(key) + "\": ";
      switch (s.kind) {
        case MetricSample::Kind::kCounter:
          out += std::to_string(s.counter);
          break;
        case MetricSample::Kind::kGauge:
          out += format_double(s.gauge);
          break;
        case MetricSample::Kind::kHistogram:
          out += "{\"count\": " + std::to_string(s.hist.count) +
                 ", \"sum\": " + format_double(s.hist.sum) +
                 ", \"mean\": " + format_double(s.hist.mean) +
                 ", \"min\": " + format_double(s.hist.min) +
                 ", \"max\": " + format_double(s.hist.max) +
                 ", \"p50\": " + format_double(s.hist.p50) +
                 ", \"p95\": " + format_double(s.hist.p95) +
                 ", \"p99\": " + format_double(s.hist.p99) + "}";
          break;
      }
    }
    out += "\n}\n";
  } else {
    // Exposition format: one # HELP + # TYPE pair per metric name (emitted
    // before that metric's first sample; scoped samples of the same metric
    // follow as additional {scope="..."} series). Counters carry the
    // `_total` unit suffix; `.us`/`.bytes` registry suffixes map to
    // `_us`/`_bytes` via prometheus_name.
    std::string last_announced;
    for (const auto& s : snap.samples) {
      std::string pname = prometheus_name(s.name);
      if (s.kind == MetricSample::Kind::kCounter &&
          (pname.size() < 6 ||
           pname.compare(pname.size() - 6, 6, "_total") != 0)) {
        pname += "_total";
      }
      if (pname != last_announced) {
        const char* type = s.kind == MetricSample::Kind::kCounter ? "counter"
                           : s.kind == MetricSample::Kind::kGauge
                               ? "gauge"
                               : "histogram";
        // The registry's dotted name, sanitized: raw dotted names must not
        // appear anywhere in the exposition (they would read as new series
        // to a strict scraper and trip the format lint).
        out += "# HELP " + pname + " odlp registry metric " +
               prometheus_name(s.name) + "\n";
        out += "# TYPE " + pname + " " + type + "\n";
        last_announced = pname;
      }
      switch (s.kind) {
        case MetricSample::Kind::kCounter:
          out += pname + prometheus_labels(s.scope) + " " +
                 std::to_string(s.counter) + "\n";
          break;
        case MetricSample::Kind::kGauge:
          out += pname + prometheus_labels(s.scope) + " " +
                 format_double(s.gauge) + "\n";
          break;
        case MetricSample::Kind::kHistogram: {
          std::uint64_t cum = 0;
          for (std::size_t b = 0; b < s.buckets.size(); ++b) {
            cum += s.buckets[b];
            const std::string le =
                (b < s.bounds.size()) ? format_double(s.bounds[b]) : "+Inf";
            out += pname + "_bucket" +
                   prometheus_labels(s.scope, "le=\"" + le + "\"") + " " +
                   std::to_string(cum) + "\n";
          }
          out += pname + "_sum" + prometheus_labels(s.scope) + " " +
                 format_double(s.hist.sum) + "\n";
          out += pname + "_count" + prometheus_labels(s.scope) + " " +
                 std::to_string(s.hist.count) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

void write_metrics_json(const std::string& path) {
  const std::string body = dump_metrics(MetricsFormat::kJson);
  util::AtomicFileWriter out(path);
  out.write(body.data(), body.size());
  out.commit();
}

namespace {
constexpr std::uint32_t kMetricsMagic = 0x584d444fu;  // "ODMX"
constexpr std::uint32_t kMetricsVersion = 1;
constexpr std::uint32_t kMaxMetricNameLen = 256;
constexpr std::uint32_t kMaxHistogramBuckets = 4096;
}  // namespace

namespace {

constexpr const char* kMetricsObsfMeta = "odlp.metrics.v1";

// Histogram state as an opaque per-row blob inside the OBSF "hist" column:
// u32 nbounds, nbounds f64 bounds, nbounds+1 u64 buckets, u64 count,
// f64 sum/min/max. Counters and gauges leave it empty.
std::vector<std::uint8_t> pack_histogram(const MetricSample& s) {
  std::vector<std::uint8_t> blob;
  auto put = [&blob](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    blob.insert(blob.end(), b, b + n);
  };
  const auto nbounds = static_cast<std::uint32_t>(s.bounds.size());
  put(&nbounds, sizeof(nbounds));
  for (double b : s.bounds) put(&b, sizeof(b));
  for (std::uint64_t c : s.buckets) put(&c, sizeof(c));
  put(&s.hist.count, sizeof(s.hist.count));
  put(&s.hist.sum, sizeof(s.hist.sum));
  put(&s.hist.min, sizeof(s.hist.min));
  put(&s.hist.max, sizeof(s.hist.max));
  return blob;
}

void unpack_histogram(const std::string& blob, MetricSample& s) {
  util::ByteReader in(reinterpret_cast<const unsigned char*>(blob.data()),
                      blob.size(), "metrics histogram");
  const auto nbounds = in.pod<std::uint32_t>();
  if (nbounds == 0 || nbounds > kMaxHistogramBuckets) {
    throw util::CorruptionError("metrics: bad bucket count");
  }
  s.bounds.resize(nbounds);
  for (auto& b : s.bounds) b = in.pod<double>();
  s.buckets.resize(nbounds + 1);
  for (auto& c : s.buckets) c = in.pod<std::uint64_t>();
  s.hist.count = in.pod<std::uint64_t>();
  s.hist.sum = in.pod<double>();
  s.hist.min = in.pod<double>();
  s.hist.max = in.pod<double>();
  if (s.hist.count > 0) s.hist.mean = s.hist.sum / double(s.hist.count);
  if (in.remaining() != 0) {
    throw util::CorruptionError("metrics: trailing histogram bytes");
  }
}

MetricsSnapshot load_metrics_obsf(const std::string& path) {
  io::ObsfReader r(path);
  if (r.schema().meta != kMetricsObsfMeta ||
      r.schema().columns.size() != 5) {
    throw util::CorruptionError("metrics: not a metrics container: " + path);
  }
  MetricsSnapshot snap;
  while (r.next_block()) {
    for (std::size_t k = 0; k < r.rows(); ++k) {
      MetricSample s;
      const std::uint8_t kind = r.col_u8(1)[k];
      if (kind > 2) throw util::CorruptionError("metrics: bad sample kind");
      s.kind = static_cast<MetricSample::Kind>(kind);
      s.name = r.col_bytes(0)[k];
      if (s.name.empty() || s.name.size() > kMaxMetricNameLen) {
        throw util::CorruptionError("metrics: bad name length");
      }
      s.counter = r.col_u64(2)[k];
      s.gauge = r.col_f64(3)[k];
      if (s.kind == MetricSample::Kind::kHistogram) {
        unpack_histogram(r.col_bytes(4)[k], s);
      }
      snap.samples.push_back(std::move(s));
    }
  }
  return snap;
}

}  // namespace

void save_metrics(const MetricsSnapshot& snap, const std::string& path) {
  io::Schema schema;
  schema.meta = kMetricsObsfMeta;
  schema.columns = {
      {"name", io::ColumnType::kBytes, io::ColumnCodec::kFlat},
      {"kind", io::ColumnType::kU8, io::ColumnCodec::kZoH},
      {"counter", io::ColumnType::kU64, io::ColumnCodec::kFlat},
      {"gauge", io::ColumnType::kF64, io::ColumnCodec::kZoH},
      {"hist", io::ColumnType::kBytes, io::ColumnCodec::kFlat},
  };
  io::ObsfWriter w(path, schema);
  for (const auto& s : snap.samples) {
    // The persistence format is deliberately unscoped (fixed 5-column
    // schema, restored across reboots); scoped samples are journal/export
    // only and are skipped here.
    if (!s.scope.empty()) continue;
    w.append_bytes(s.name);
    w.append_u8(static_cast<std::uint8_t>(s.kind));
    w.append_u64(s.kind == MetricSample::Kind::kCounter ? s.counter : 0);
    w.append_f64(s.kind == MetricSample::Kind::kGauge ? s.gauge : 0.0);
    if (s.kind == MetricSample::Kind::kHistogram) {
      const std::vector<std::uint8_t> blob = pack_histogram(s);
      w.append_bytes(std::string_view(
          reinterpret_cast<const char*>(blob.data()), blob.size()));
    } else {
      w.append_bytes("");
    }
    w.end_row();
  }
  w.finish();
}

void save_metrics_legacy(const MetricsSnapshot& snap,
                         const std::string& path) {
  util::AtomicFileWriter out(path);
  out.write_pod(kMetricsMagic);
  out.write_pod(kMetricsVersion);
  std::uint32_t unscoped = 0;
  for (const auto& s : snap.samples) unscoped += s.scope.empty() ? 1 : 0;
  out.write_pod<std::uint32_t>(unscoped);
  for (const auto& s : snap.samples) {
    if (!s.scope.empty()) continue;
    out.write_pod<std::uint8_t>(static_cast<std::uint8_t>(s.kind));
    out.write_pod<std::uint32_t>(static_cast<std::uint32_t>(s.name.size()));
    out.write(s.name.data(), s.name.size());
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out.write_pod<std::uint64_t>(s.counter);
        break;
      case MetricSample::Kind::kGauge:
        out.write_pod<double>(s.gauge);
        break;
      case MetricSample::Kind::kHistogram:
        out.write_pod<std::uint32_t>(
            static_cast<std::uint32_t>(s.bounds.size()));
        for (double b : s.bounds) out.write_pod<double>(b);
        for (std::uint64_t c : s.buckets) out.write_pod<std::uint64_t>(c);
        out.write_pod<std::uint64_t>(s.hist.count);
        out.write_pod<double>(s.hist.sum);
        out.write_pod<double>(s.hist.min);
        out.write_pod<double>(s.hist.max);
        break;
    }
  }
  out.write_footer();
  out.commit();
}

MetricsSnapshot load_metrics(const std::string& path) {
  const std::vector<unsigned char> bytes = util::read_file(path);
  std::uint32_t magic = 0;
  if (bytes.size() >= sizeof(magic)) {
    std::memcpy(&magic, bytes.data(), sizeof(magic));
  }
  if (magic == io::kObsfMagic) return load_metrics_obsf(path);
  const std::size_t body_end = util::check_footer(bytes, "metrics");
  util::ByteReader in(bytes.data(), body_end, "metrics");
  if (in.pod<std::uint32_t>() != kMetricsMagic) {
    throw util::CorruptionError("metrics: bad magic");
  }
  if (in.pod<std::uint32_t>() != kMetricsVersion) {
    throw util::CorruptionError("metrics: unsupported version");
  }
  const auto n = in.pod<std::uint32_t>();
  MetricsSnapshot snap;
  snap.samples.reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n; ++i) {
    MetricSample s;
    const auto kind = in.pod<std::uint8_t>();
    if (kind > 2) throw util::CorruptionError("metrics: bad sample kind");
    s.kind = static_cast<MetricSample::Kind>(kind);
    const auto name_len = in.pod<std::uint32_t>();
    if (name_len == 0 || name_len > kMaxMetricNameLen) {
      throw util::CorruptionError("metrics: bad name length");
    }
    s.name = in.str(name_len);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        s.counter = in.pod<std::uint64_t>();
        break;
      case MetricSample::Kind::kGauge:
        s.gauge = in.pod<double>();
        break;
      case MetricSample::Kind::kHistogram: {
        const auto nbounds = in.pod<std::uint32_t>();
        if (nbounds == 0 || nbounds > kMaxHistogramBuckets) {
          throw util::CorruptionError("metrics: bad bucket count");
        }
        s.bounds.resize(nbounds);
        for (auto& b : s.bounds) b = in.pod<double>();
        s.buckets.resize(nbounds + 1);
        for (auto& c : s.buckets) c = in.pod<std::uint64_t>();
        s.hist.count = in.pod<std::uint64_t>();
        s.hist.sum = in.pod<double>();
        s.hist.min = in.pod<double>();
        s.hist.max = in.pod<double>();
        if (s.hist.count > 0) {
          s.hist.mean = s.hist.sum / double(s.hist.count);
        }
        break;
      }
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

}  // namespace odlp::obs
