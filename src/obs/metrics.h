// Process-global metrics registry (DESIGN.md §10).
//
// Three metric kinds, all safe for concurrent use from any thread:
//   * Counter   — monotonically increasing u64; inc() is one relaxed
//                 atomic fetch_add (lock-free hot path).
//   * Gauge     — last-written double; set()/add() are lock-free
//                 (compare-exchange for add).
//   * Histogram — fixed ascending bucket bounds chosen at registration;
//                 record() is a handful of relaxed atomics (bucket count,
//                 total count, running sum, CAS min/max). Summaries expose
//                 count/mean/min/max plus p50/p95/p99 interpolated from the
//                 bucket counts.
//
// Lookup (registry().counter("engine.offer.accept")) takes a mutex and is
// meant to run once per call site — cache the returned reference in a
// function-local static. Registered metrics are never deleted or moved, so
// cached references stay valid for the life of the process; reset()
// re-zeroes values in place.
//
// Naming scheme: `subsystem.verb.unit` (e.g. engine.score.us,
// pool.chunk_us, train.tokens_per_sec) — see DESIGN.md §10 for the full
// taxonomy. dump_metrics() exports every registered metric as JSON or
// Prometheus-style text; save_metrics()/load_metrics() persist a snapshot
// in the repo's checksummed binary-file format so cumulative telemetry
// survives a device reboot (core/CheckpointManager stores one per
// generation).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace odlp::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  // `bounds` are ascending bucket upper bounds; an implicit overflow bucket
  // catches values above the last bound. Throws std::invalid_argument on
  // empty or non-ascending bounds.
  explicit Histogram(std::vector<double> bounds);

  void record(double v);

  struct Summary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Summary summary() const;

  // Quantile in [0, 1], linearly interpolated inside the bucket that holds
  // the q-th sample; clamped to the observed [min, max].
  double quantile(double q) const;

  // Adds src's bucket counts, count, and sum into *this (merging min/max),
  // then zeroes src. Both histograms must share the same bounds (throws
  // std::logic_error otherwise). Used by scoped-metric demotion
  // (obs/scope.h) to fold an evicted slot into `other` with exact totals.
  void absorb(Histogram& src);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::size_t num_buckets() const { return bounds_.size() + 1; }

  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Default histogram bounds for durations in microseconds: 1-2-5 decades
// from 1 us to 10 s (22 buckets + overflow).
const std::vector<double>& default_us_bounds();

// One flattened metric value, as captured by Registry::snapshot().
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  // Scope label ("user=7", "device=dev-2") for per-user samples produced by
  // the scoped registry (obs/scope.h); empty for process-global metrics.
  // Scoped samples appear in full_snapshot()/dump_metrics()/the journal,
  // never in the save_metrics() persistence format.
  std::string scope;
  std::uint64_t counter = 0;           // kCounter
  double gauge = 0.0;                  // kGauge
  Histogram::Summary hist;             // kHistogram
  std::vector<double> bounds;          // kHistogram
  std::vector<std::uint64_t> buckets;  // kHistogram (bounds.size()+1)
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by (name, scope)

  // Unscoped sample by name, nullptr if absent.
  const MetricSample* find(const std::string& name) const;
  // Sample with a specific scope label ("" = unscoped), nullptr if absent.
  const MetricSample* find_scoped(const std::string& name,
                                  const std::string& scope) const;
  // Convenience accessors returning 0 when the metric is absent.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  double histogram_sum(const std::string& name) const;
};

class Registry {
 public:
  // Returns the metric with that name, creating it on first use. A name
  // registered as one kind must not be re-requested as another (throws
  // std::logic_error). References stay valid forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);  // default_us_bounds()
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;

  // Zeroes every registered metric in place (registrations survive).
  void reset();

  // Overwrites the current values of every metric present in `snap`,
  // creating missing ones (histograms with the snapshot's bounds). Used by
  // checkpoint restore to carry cumulative telemetry across reboots.
  void restore(const MetricsSnapshot& snap);

 private:
  struct Impl;
  Impl& impl() const;
};

// The process-global registry.
Registry& registry();

enum class MetricsFormat { kJson, kPrometheus };

// Serializes a snapshot of the global registry.
std::string dump_metrics(MetricsFormat format = MetricsFormat::kJson);
std::string dump_metrics(const MetricsSnapshot& snap,
                         MetricsFormat format = MetricsFormat::kJson);

// Writes dump_metrics(kJson) to `path` atomically. Throws on I/O failure.
void write_metrics_json(const std::string& path);

// Binary snapshot persistence (checksummed, crash-safe — util/atomic_file).
// save_metrics writes the OBSF columnar container (io/obsf.h, one row per
// metric, LZ4 blocks); load_metrics reads both that and the legacy "ODMX"
// monolithic format, dispatching on the leading magic, and throws
// util::CorruptionError on a damaged file. save_metrics_legacy keeps the
// ODMX writer alive for migration tests and size comparisons.
void save_metrics(const MetricsSnapshot& snap, const std::string& path);
void save_metrics_legacy(const MetricsSnapshot& snap, const std::string& path);
MetricsSnapshot load_metrics(const std::string& path);

}  // namespace odlp::obs
