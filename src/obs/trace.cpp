#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "io/obsf.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/atomic_file.h"
#include "util/log.h"

namespace odlp::obs {

namespace trace_detail {
std::atomic<std::uint8_t> g_mode{0};
}  // namespace trace_detail

namespace {

using Clock = std::chrono::steady_clock;

// One recorded event: a span begin (name != nullptr) or end (name ==
// nullptr). Per-thread ring order is chronological, so begins and ends are
// properly nested within a buffer by construction.
struct Event {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
};

constexpr std::size_t kRingCapacity = 1 << 15;  // 32768 events per thread
// Deepest span nesting the profiler samples; deeper frames are not pushed
// (the begin/end pairing still balances via the returned mask).
constexpr std::size_t kMaxStackDepth = 64;

struct ThreadBuffer {
  std::mutex mutex;
  std::unique_ptr<Event[]> events{new Event[kRingCapacity]};
  std::size_t count = 0;
  std::uint64_t dropped = 0;
  int tid = 0;
  // Profiler name stack, written by the owning thread and read by the
  // sampler thread without the mutex: push stores the name (relaxed) then
  // publishes the new depth with release; the sampler acquires depth and
  // reads names below it. A torn read can only see a stale-but-valid prefix.
  std::atomic<const char*> stack[kMaxStackDepth] = {};
  std::atomic<std::uint32_t> depth{0};
};

// Ring-full drops are also surfaced as a registry counter so fleet-level
// dashboards see them without calling trace_dropped_count().
Counter& dropped_counter() {
  static Counter& c = registry().counter("obs.trace.dropped.total");
  return c;
}

struct State {
  std::mutex mutex;
  // Owned; intentionally never freed before process exit so a flush can
  // still read buffers of threads that have already terminated.
  std::vector<ThreadBuffer*> buffers;
  std::string path;
  bool atexit_registered = false;
  int next_tid = 1;
  Clock::time_point t0 = Clock::now();
};

State& state() {
  // Intentionally leaked: the atexit flush and buffers of already-exited
  // threads must stay readable until the very end of the process, past the
  // point where function-local statics are destroyed. Keeping the State on
  // the heap behind a static pointer also keeps every ThreadBuffer reachable
  // for leak checkers.
  static State* instance = new State;
  return *instance;
}

thread_local ThreadBuffer* tl_buffer = nullptr;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           state().t0)
          .count());
}

ThreadBuffer& this_thread_buffer() {
  if (!tl_buffer) {
    State& st = state();
    std::lock_guard<std::mutex> lk(st.mutex);
    tl_buffer = new ThreadBuffer;
    tl_buffer->tid = st.next_tid++;
    st.buffers.push_back(tl_buffer);
  }
  return *tl_buffer;
}

void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_event(std::string& out, bool& first, const char* name, char ph,
                  int tid, std::uint64_t ts_ns) {
  if (!first) out += ",\n";
  first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", double(ts_ns) * 1e-3);
  out += "{\"name\":";
  append_json_string(out, name);
  out += ",\"cat\":\"odlp\",\"ph\":\"";
  out += ph;
  out += "\",\"pid\":1,\"tid\":" + std::to_string(tid) + ",\"ts\":" + buf + "}";
}

// Registered via atexit by the first enable_tracing(); ODLP_TRACE users get
// their trace without any explicit flush call.
void flush_at_exit() { flush_trace(); }

// ODLP_TRACE=path.json enables tracing for the whole process at startup.
// Also anchors the profiler TU: odlp is a static library, so a binary that
// never names a Profiler symbol would drop profiler.cpp — and with it the
// ODLP_PROFILE startup hook. Spans are instrumented everywhere, so this TU
// is always linked; referencing profile_path() pulls the profiler in too.
const bool g_env_init = [] {
  (void)profile_path();
  if (const char* path = std::getenv("ODLP_TRACE"); path && *path) {
    enable_tracing(path);
  }
  return true;
}();

}  // namespace

namespace trace_detail {

std::uint8_t record_begin(const char* name, std::uint8_t mode) {
  ThreadBuffer& buf = this_thread_buffer();
  std::uint8_t mask = 0;
  if (mode & kModeTrace) {
    std::lock_guard<std::mutex> lk(buf.mutex);
    if (buf.count < kRingCapacity) {
      buf.events[buf.count++] = Event{name, now_ns()};
      mask |= kModeTrace;
    } else {
      ++buf.dropped;
      dropped_counter().inc();
    }
  }
  if (mode & kModeProfile) {
    const std::uint32_t d = buf.depth.load(std::memory_order_relaxed);
    if (d < kMaxStackDepth) {
      buf.stack[d].store(name, std::memory_order_relaxed);
      buf.depth.store(d + 1, std::memory_order_release);
      mask |= kModeProfile;
    }
  }
  return mask;
}

void record_end(std::uint8_t mask) {
  // Only called when the matching record_begin recorded something, so
  // tl_buffer exists. A full ring drops the end; flush balances it
  // synthetically.
  ThreadBuffer& buf = *tl_buffer;
  if (mask & kModeTrace) {
    std::lock_guard<std::mutex> lk(buf.mutex);
    if (buf.count < kRingCapacity) {
      buf.events[buf.count++] = Event{nullptr, now_ns()};
    } else {
      ++buf.dropped;
      dropped_counter().inc();
    }
  }
  if (mask & kModeProfile) {
    const std::uint32_t d = buf.depth.load(std::memory_order_relaxed);
    if (d > 0) buf.depth.store(d - 1, std::memory_order_release);
  }
}

void set_profiling(bool on) {
  if (on) {
    g_mode.fetch_or(kModeProfile, std::memory_order_relaxed);
  } else {
    g_mode.fetch_and(static_cast<std::uint8_t>(~kModeProfile),
                     std::memory_order_relaxed);
  }
}

void sample_stacks(
    const std::function<void(int tid, const char* const* names,
                             std::size_t depth)>& fn) {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mutex);
  const char* names[kMaxStackDepth];
  for (ThreadBuffer* buf : st.buffers) {
    const std::uint32_t d = buf->depth.load(std::memory_order_acquire);
    if (d == 0) continue;
    const std::uint32_t n = std::min<std::uint32_t>(d, kMaxStackDepth);
    for (std::uint32_t i = 0; i < n; ++i) {
      names[i] = buf->stack[i].load(std::memory_order_relaxed);
    }
    fn(buf->tid, names, n);
  }
}

}  // namespace trace_detail

void enable_tracing(const std::string& path) {
  State& st = state();
  {
    std::lock_guard<std::mutex> lk(st.mutex);
    st.path = path;
    for (ThreadBuffer* buf : st.buffers) {
      std::lock_guard<std::mutex> blk(buf->mutex);
      buf->count = 0;
      buf->dropped = 0;
    }
    if (!st.atexit_registered) {
      st.atexit_registered = true;
      std::atexit(flush_at_exit);
    }
  }
  trace_detail::g_mode.fetch_or(trace_detail::kModeTrace,
                                std::memory_order_relaxed);
}

void disable_tracing() {
  trace_detail::g_mode.fetch_and(
      static_cast<std::uint8_t>(~trace_detail::kModeTrace),
      std::memory_order_relaxed);
}

std::string trace_path() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mutex);
  return st.path;
}

std::size_t trace_buffer_count() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mutex);
  return st.buffers.size();
}

std::size_t trace_event_count() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mutex);
  std::size_t total = 0;
  for (ThreadBuffer* buf : st.buffers) {
    std::lock_guard<std::mutex> blk(buf->mutex);
    total += buf->count;
  }
  return total;
}

std::uint64_t trace_dropped_count() {
  State& st = state();
  std::lock_guard<std::mutex> lk(st.mutex);
  std::uint64_t total = 0;
  for (ThreadBuffer* buf : st.buffers) {
    std::lock_guard<std::mutex> blk(buf->mutex);
    total += buf->dropped;
  }
  return total;
}

namespace {

// One balanced Chrome-style event: phase 'B' or 'E', always paired.
struct FlatEvent {
  const char* name = nullptr;
  char phase = 'B';
  int tid = 0;
  std::uint64_t ts_ns = 0;
};

// Snapshots every thread buffer and replays each with a name stack so every
// "E" names its matching "B", orphan ends (begin cleared by a mid-span
// enable_tracing) are skipped, and spans still open are closed
// synthetically at the last timestamp — the returned stream always
// balances. Per-thread order is chronological; threads are concatenated in
// registration (tid) order. Shared by the JSON and binary flush paths.
std::vector<FlatEvent> collect_balanced_events(std::uint64_t& dropped) {
  State& st = state();
  std::vector<std::pair<int, std::vector<Event>>> per_thread;
  std::uint64_t last_ts = 0;
  dropped = 0;
  {
    std::lock_guard<std::mutex> lk(st.mutex);
    per_thread.reserve(st.buffers.size());
    for (ThreadBuffer* buf : st.buffers) {
      std::lock_guard<std::mutex> blk(buf->mutex);
      std::vector<Event> events(buf->events.get(),
                                buf->events.get() + buf->count);
      for (const Event& e : events) last_ts = std::max(last_ts, e.ts_ns);
      dropped += buf->dropped;
      per_thread.emplace_back(buf->tid, std::move(events));
    }
  }

  std::vector<FlatEvent> flat;
  for (const auto& [tid, events] : per_thread) {
    std::vector<const char*> open;
    for (const Event& e : events) {
      if (e.name) {
        open.push_back(e.name);
        flat.push_back({e.name, 'B', tid, e.ts_ns});
      } else if (!open.empty()) {
        flat.push_back({open.back(), 'E', tid, e.ts_ns});
        open.pop_back();
      }
    }
    while (!open.empty()) {
      flat.push_back({open.back(), 'E', tid, last_ts});
      open.pop_back();
    }
  }
  return flat;
}

std::string chrome_json(const std::vector<FlatEvent>& events,
                        std::uint64_t dropped) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const FlatEvent& e : events) {
    append_event(out, first, e.name, e.phase, e.tid, e.ts_ns);
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"" +
         std::to_string(dropped) + "\"}}\n";
  return out;
}

constexpr const char* kTraceObsfMeta = "odlp.trace.v1";

}  // namespace

bool flush_trace() {
  {
    State& st = state();
    std::lock_guard<std::mutex> lk(st.mutex);
    if (st.path.empty()) return false;
  }
  std::uint64_t dropped = 0;
  const std::vector<FlatEvent> events = collect_balanced_events(dropped);
  const std::string out = chrome_json(events, dropped);

  try {
    util::AtomicFileWriter writer(trace_path());
    writer.write(out.data(), out.size());
    writer.commit();
  } catch (const std::exception& e) {
    util::log_warn(std::string("trace: flush failed: ") + e.what());
    return false;
  }
  util::log_info("trace: flushed " + std::to_string(events.size()) +
                 " events (" + std::to_string(dropped) + " dropped) to " +
                 trace_path());
  return true;
}

bool flush_trace_binary(const std::string& path) {
  std::uint64_t dropped = 0;
  const std::vector<FlatEvent> events = collect_balanced_events(dropped);

  io::Schema schema;
  schema.meta = std::string(kTraceObsfMeta) +
                ";dropped=" + std::to_string(dropped);
  schema.columns = {
      {"tid", io::ColumnType::kI64, io::ColumnCodec::kZoH},
      {"ts_ns", io::ColumnType::kU64, io::ColumnCodec::kDelta},
      {"phase", io::ColumnType::kU8, io::ColumnCodec::kZoH},
      {"name", io::ColumnType::kBytes, io::ColumnCodec::kFlat},
  };
  try {
    io::ObsfWriter writer(path, schema);
    for (const FlatEvent& e : events) {
      writer.append_i64(e.tid);
      writer.append_u64(e.ts_ns);
      writer.append_u8(static_cast<std::uint8_t>(e.phase));
      writer.append_bytes(e.name);
      writer.end_row();
    }
    writer.finish();
  } catch (const std::exception& e) {
    util::log_warn(std::string("trace: binary flush failed: ") + e.what());
    return false;
  }
  return true;
}

void trace_binary_to_chrome_json(const std::string& binary_path,
                                 const std::string& json_path) {
  io::ObsfReader r(binary_path);
  const std::string& meta = r.schema().meta;
  if (meta.rfind(kTraceObsfMeta, 0) != 0 || r.schema().columns.size() != 4) {
    throw util::CorruptionError("trace: not a binary trace: " + binary_path);
  }
  std::uint64_t dropped = 0;
  if (const std::size_t at = meta.find("dropped="); at != std::string::npos) {
    dropped = std::strtoull(meta.c_str() + at + 8, nullptr, 10);
  }

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  while (r.next_block()) {
    for (std::size_t k = 0; k < r.rows(); ++k) {
      const char ph = static_cast<char>(r.col_u8(2)[k]);
      if (ph != 'B' && ph != 'E') {
        throw util::CorruptionError("trace: bad event phase");
      }
      append_event(out, first, r.col_bytes(3)[k].c_str(), ph,
                   static_cast<int>(r.col_i64(0)[k]), r.col_u64(1)[k]);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"" +
         std::to_string(dropped) + "\"}}\n";

  util::AtomicFileWriter writer(json_path);
  writer.write(out.data(), out.size());
  writer.commit();
}

}  // namespace odlp::obs
