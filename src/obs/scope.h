// Scoped metrics: per-user/device/stage attribution on top of the
// process-global registry (DESIGN.md §15).
//
// The registry in obs/metrics.h is process-global: one Counter per name.
// At fleet scale that hides exactly the question an operator asks first —
// WHICH user's rounds are slow, WHICH device's offers get rejected. Scoped
// metrics answer it without giving up the registry's lock-free hot path or
// admitting unbounded label cardinality:
//
//   * A ScopeTable maps label strings ("user=7", "device=dev-2") to a fixed
//     number of slots. Slot 0 is the permanent `other` scope. acquire() is
//     cold (mutex, called once per session/device); the returned Handle is
//     a {slot, generation} pair.
//   * When every slot is taken, acquire() demotes the least-recently-
//     acquired label: its generation is bumped (stale handles resolve to
//     `other` from then on) and every attached scoped metric folds the
//     evicted slot's values into slot 0 — totals are conserved, the tail
//     of a too-wide fleet aggregates under `other` instead of growing the
//     table. Demotions are counted in obs.scope.demotions.total.
//   * The hot path — ScopedCounter::inc(handle) — is one relaxed load of
//     the slot's generation plus one indexed relaxed fetch_add. No hashing,
//     no locking, no allocation. A stale handle costs the same and lands in
//     `other`.
//
// Scoped samples ride in the same MetricSample struct as unscoped ones
// (MetricSample::scope carries the label) and surface through
// full_snapshot() into the journal, the JSON dump, and the Prometheus
// exposition (as a scope="..." label). They are deliberately NOT part of
// save_metrics()/load_metrics(): the on-disk checkpoint format stays the
// 5-column unscoped schema, and scope slots do not survive a reboot.
//
// Ordering caveat (documented, accepted): an increment that resolves its
// handle concurrently with that slot's demotion may land in the slot after
// the fold and be attributed to the slot's next label. The window is a few
// instructions; per-scope counts are exact in the absence of a concurrent
// demotion of that same scope, and grand totals are always exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace odlp::obs {

class ScopedMetricBase;

class ScopeTable {
 public:
  static constexpr std::size_t kDefaultSlots = 64;

  // A cheap, copyable ticket for one scope. Default-constructed handles
  // (and handles whose slot has been demoted since) resolve to slot 0,
  // the `other` scope.
  struct Handle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  // `slots` includes slot 0 (`other`), so `slots - 1` labels can be live at
  // once. Throws std::invalid_argument when slots < 2.
  explicit ScopeTable(std::size_t slots = kDefaultSlots);
  ~ScopeTable();

  ScopeTable(const ScopeTable&) = delete;
  ScopeTable& operator=(const ScopeTable&) = delete;

  // Returns a handle for `label`, assigning a free slot or re-using the
  // label's live slot; demotes the least-recently-acquired label when the
  // table is full. Cold path (mutex) — call once per session, not per
  // increment. An empty label returns the `other` handle.
  Handle acquire(const std::string& label);

  // Hot path: the slot this handle currently addresses — its own slot while
  // the generation matches, slot 0 (`other`) once demoted.
  std::uint32_t resolve(Handle h) const {
    return gens_[h.slot].load(std::memory_order_relaxed) == h.gen ? h.slot
                                                                  : 0u;
  }

  std::size_t slots() const { return nslots_; }
  // Labeled slots currently live (slot 0 excluded).
  std::size_t occupancy() const;
  std::uint64_t demotions() const;
  // Current label of `slot`: "other" for slot 0, "" for a free slot.
  std::string label(std::uint32_t slot) const;

 private:
  friend class ScopedMetricBase;
  void attach(ScopedMetricBase* metric);
  void detach(ScopedMetricBase* metric);

  std::size_t nslots_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> gens_;  // nslots_
  mutable std::mutex mutex_;
  std::vector<std::string> labels_;       // slot -> live label ("" free)
  std::vector<std::uint64_t> last_used_;  // slot -> lru tick
  std::uint64_t tick_ = 0;
  std::uint64_t demotions_ = 0;
  std::vector<ScopedMetricBase*> metrics_;
};

// Base for per-slot metric families. The table folds an evicted slot's
// values into slot 0 through fold(); metrics attach on construction and
// detach on destruction (the table must outlive its metrics).
class ScopedMetricBase {
 public:
  virtual ~ScopedMetricBase();
  ScopedMetricBase(const ScopedMetricBase&) = delete;
  ScopedMetricBase& operator=(const ScopedMetricBase&) = delete;

  const std::string& name() const { return name_; }
  ScopeTable& table() const { return table_; }

 protected:
  ScopedMetricBase(ScopeTable& table, std::string name);

 private:
  friend class ScopeTable;
  // Called under the table mutex when `slot` is demoted: move its values
  // into slot 0 and zero the slot for its next label.
  virtual void fold(std::uint32_t slot) = 0;

  ScopeTable& table_;
  std::string name_;
};

// One u64 counter per scope slot. inc() is the scoped hot path: one relaxed
// generation load + one indexed relaxed fetch_add.
class ScopedCounter : public ScopedMetricBase {
 public:
  ScopedCounter(ScopeTable& table, std::string name);

  void inc(ScopeTable::Handle h, std::uint64_t n = 1) {
    cells_[table().resolve(h)].fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value(std::uint32_t slot) const {
    return cells_[slot].load(std::memory_order_relaxed);
  }
  // Sum over every slot including `other` — conserved across demotions.
  std::uint64_t total() const;
  void reset();

 private:
  void fold(std::uint32_t slot) override;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
};

// One last-written double per scope slot. Demotion zeroes the evicted slot
// (a gauge is not additive; `other` keeps its own last value).
class ScopedGauge : public ScopedMetricBase {
 public:
  ScopedGauge(ScopeTable& table, std::string name);

  void set(ScopeTable::Handle h, double v) {
    cells_[table().resolve(h)].store(v, std::memory_order_relaxed);
  }
  double value(std::uint32_t slot) const {
    return cells_[slot].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  void fold(std::uint32_t slot) override;
  std::unique_ptr<std::atomic<double>[]> cells_;
};

// One Histogram per scope slot, all sharing one bounds vector. Demotion
// absorbs the evicted slot's buckets into slot 0 exactly (bucket counts,
// count, sum; min/max merged).
class ScopedHistogram : public ScopedMetricBase {
 public:
  ScopedHistogram(ScopeTable& table, std::string name,
                  std::vector<double> bounds);

  void record(ScopeTable::Handle h, double v) {
    slots_[table().resolve(h)]->record(v);
  }
  const Histogram& at(std::uint32_t slot) const { return *slots_[slot]; }
  void reset();

 private:
  void fold(std::uint32_t slot) override;
  std::vector<std::unique_ptr<Histogram>> slots_;
};

// Process-global scoped registry: one kDefaultSlots ScopeTable plus
// create-on-first-use scoped metric families, mirroring obs::registry().
// References stay valid for the life of the process.
class ScopedRegistry {
 public:
  ScopeTable& scopes();
  ScopedCounter& counter(const std::string& name);
  ScopedGauge& gauge(const std::string& name);
  ScopedHistogram& histogram(const std::string& name);  // default_us_bounds()
  ScopedHistogram& histogram(const std::string& name,
                             std::vector<double> bounds);

  // Appends one MetricSample per (metric, live slot) to `snap`, with
  // MetricSample::scope set to the slot's label. Slot 0 (`other`) is
  // emitted only when it has absorbed something non-zero.
  void append_to(MetricsSnapshot& snap) const;

  // Zeroes every cell in place (labels and handles survive).
  void reset();

 private:
  struct Impl;
  Impl& impl() const;
};

ScopedRegistry& scoped_registry();

// Unscoped registry snapshot plus every scoped sample, sorted by
// (name, scope) — the view the journal, the Prometheus exposition, and the
// JSON dump serialize. NOT the persistence format (save_metrics stays
// unscoped).
MetricsSnapshot full_snapshot();

}  // namespace odlp::obs
