#include "obs/scope.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace odlp::obs {

namespace {

// Registry-side meters for the global scope table. Looked up lazily so the
// scope layer works before/without the global registry being touched.
Counter& demotions_counter() {
  static Counter& c = registry().counter("obs.scope.demotions.total");
  return c;
}

Gauge& occupancy_gauge() {
  static Gauge& g = registry().gauge("obs.scope.occupancy");
  return g;
}

}  // namespace

ScopeTable::ScopeTable(std::size_t slots) : nslots_(slots) {
  if (slots < 2) {
    throw std::invalid_argument("ScopeTable: need at least 2 slots");
  }
  gens_ = std::make_unique<std::atomic<std::uint32_t>[]>(nslots_);
  for (std::size_t i = 0; i < nslots_; ++i) gens_[i].store(0);
  labels_.resize(nslots_);
  labels_[0] = "other";
  last_used_.resize(nslots_, 0);
}

ScopeTable::~ScopeTable() = default;

ScopeTable::Handle ScopeTable::acquire(const std::string& label) {
  if (label.empty()) return Handle{0, 0};
  std::lock_guard<std::mutex> lk(mutex_);
  ++tick_;

  // Live already? (Linear scan: acquire is a per-session event and tables
  // are tens of slots.)
  for (std::uint32_t s = 1; s < nslots_; ++s) {
    if (labels_[s] == label) {
      last_used_[s] = tick_;
      return Handle{s, gens_[s].load(std::memory_order_relaxed)};
    }
  }

  // Free slot?
  for (std::uint32_t s = 1; s < nslots_; ++s) {
    if (labels_[s].empty()) {
      labels_[s] = label;
      last_used_[s] = tick_;
      std::size_t occ = 0;
      for (std::uint32_t i = 1; i < nslots_; ++i) occ += labels_[i].empty() ? 0 : 1;
      occupancy_gauge().set(static_cast<double>(occ));
      return Handle{s, gens_[s].load(std::memory_order_relaxed)};
    }
  }

  // Full: demote the least-recently-acquired label. Bumping the generation
  // FIRST sends stale-handle traffic to `other`; the fold then moves the
  // slot's accumulated values there too, so totals are conserved.
  std::uint32_t victim = 1;
  for (std::uint32_t s = 2; s < nslots_; ++s) {
    if (last_used_[s] < last_used_[victim]) victim = s;
  }
  gens_[victim].fetch_add(1, std::memory_order_relaxed);
  for (ScopedMetricBase* m : metrics_) m->fold(victim);
  labels_[victim] = label;
  last_used_[victim] = tick_;
  ++demotions_;
  demotions_counter().inc();
  return Handle{victim, gens_[victim].load(std::memory_order_relaxed)};
}

std::size_t ScopeTable::occupancy() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::size_t occ = 0;
  for (std::uint32_t s = 1; s < nslots_; ++s) occ += labels_[s].empty() ? 0 : 1;
  return occ;
}

std::uint64_t ScopeTable::demotions() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return demotions_;
}

std::string ScopeTable::label(std::uint32_t slot) const {
  std::lock_guard<std::mutex> lk(mutex_);
  return slot < nslots_ ? labels_[slot] : std::string();
}

void ScopeTable::attach(ScopedMetricBase* metric) {
  std::lock_guard<std::mutex> lk(mutex_);
  metrics_.push_back(metric);
}

void ScopeTable::detach(ScopedMetricBase* metric) {
  std::lock_guard<std::mutex> lk(mutex_);
  metrics_.erase(std::remove(metrics_.begin(), metrics_.end(), metric),
                 metrics_.end());
}

ScopedMetricBase::ScopedMetricBase(ScopeTable& table, std::string name)
    : table_(table), name_(std::move(name)) {
  table_.attach(this);
}

ScopedMetricBase::~ScopedMetricBase() { table_.detach(this); }

ScopedCounter::ScopedCounter(ScopeTable& table, std::string name)
    : ScopedMetricBase(table, std::move(name)) {
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(table.slots());
  for (std::size_t i = 0; i < table.slots(); ++i) cells_[i].store(0);
}

std::uint64_t ScopedCounter::total() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < table().slots(); ++i) {
    sum += cells_[i].load(std::memory_order_relaxed);
  }
  return sum;
}

void ScopedCounter::reset() {
  for (std::size_t i = 0; i < table().slots(); ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

void ScopedCounter::fold(std::uint32_t slot) {
  cells_[0].fetch_add(cells_[slot].exchange(0, std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

ScopedGauge::ScopedGauge(ScopeTable& table, std::string name)
    : ScopedMetricBase(table, std::move(name)) {
  cells_ = std::make_unique<std::atomic<double>[]>(table.slots());
  for (std::size_t i = 0; i < table.slots(); ++i) cells_[i].store(0.0);
}

void ScopedGauge::reset() {
  for (std::size_t i = 0; i < table().slots(); ++i) {
    cells_[i].store(0.0, std::memory_order_relaxed);
  }
}

void ScopedGauge::fold(std::uint32_t slot) {
  cells_[slot].store(0.0, std::memory_order_relaxed);
}

ScopedHistogram::ScopedHistogram(ScopeTable& table, std::string name,
                                 std::vector<double> bounds)
    : ScopedMetricBase(table, std::move(name)) {
  slots_.reserve(table.slots());
  for (std::size_t i = 0; i < table.slots(); ++i) {
    slots_.push_back(std::make_unique<Histogram>(bounds));
  }
}

void ScopedHistogram::reset() {
  for (auto& h : slots_) h->reset();
}

void ScopedHistogram::fold(std::uint32_t slot) {
  slots_[0]->absorb(*slots_[slot]);
}

// ---------------------------------------------------------------------------
// Global scoped registry
// ---------------------------------------------------------------------------

struct ScopedRegistry::Impl {
  mutable std::mutex mutex;
  ScopeTable table{ScopeTable::kDefaultSlots};
  std::map<std::string, std::unique_ptr<ScopedCounter>> counters;
  std::map<std::string, std::unique_ptr<ScopedGauge>> gauges;
  std::map<std::string, std::unique_ptr<ScopedHistogram>> histograms;
};

ScopedRegistry::Impl& ScopedRegistry::impl() const {
  static Impl instance;
  return instance;
}

ScopeTable& ScopedRegistry::scopes() { return impl().table; }

ScopedCounter& ScopedRegistry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters
             .emplace(name, std::make_unique<ScopedCounter>(im.table, name))
             .first;
  }
  return *it->second;
}

ScopedGauge& ScopedRegistry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    it = im.gauges.emplace(name, std::make_unique<ScopedGauge>(im.table, name))
             .first;
  }
  return *it->second;
}

ScopedHistogram& ScopedRegistry::histogram(const std::string& name) {
  return histogram(name, default_us_bounds());
}

ScopedHistogram& ScopedRegistry::histogram(const std::string& name,
                                           std::vector<double> bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms
             .emplace(name, std::make_unique<ScopedHistogram>(
                                im.table, name, std::move(bounds)))
             .first;
  }
  return *it->second;
}

void ScopedRegistry::append_to(MetricsSnapshot& snap) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  const std::size_t nslots = im.table.slots();

  const auto slot_scope = [&](std::uint32_t s) { return im.table.label(s); };

  for (const auto& [name, c] : im.counters) {
    for (std::uint32_t s = 0; s < nslots; ++s) {
      const std::string scope = slot_scope(s);
      if (scope.empty()) continue;  // free slot
      const std::uint64_t v = c->value(s);
      if (s == 0 && v == 0) continue;  // quiet `other`
      MetricSample sample;
      sample.kind = MetricSample::Kind::kCounter;
      sample.name = name;
      sample.scope = scope;
      sample.counter = v;
      snap.samples.push_back(std::move(sample));
    }
  }
  for (const auto& [name, g] : im.gauges) {
    for (std::uint32_t s = 0; s < nslots; ++s) {
      const std::string scope = slot_scope(s);
      if (scope.empty()) continue;
      const double v = g->value(s);
      if (s == 0 && v == 0.0) continue;
      MetricSample sample;
      sample.kind = MetricSample::Kind::kGauge;
      sample.name = name;
      sample.scope = scope;
      sample.gauge = v;
      snap.samples.push_back(std::move(sample));
    }
  }
  for (const auto& [name, h] : im.histograms) {
    for (std::uint32_t s = 0; s < nslots; ++s) {
      const std::string scope = slot_scope(s);
      if (scope.empty()) continue;
      const Histogram& hist = h->at(s);
      if (hist.count() == 0) continue;  // unscoped slots with no samples
      MetricSample sample;
      sample.kind = MetricSample::Kind::kHistogram;
      sample.name = name;
      sample.scope = scope;
      sample.hist = hist.summary();
      sample.bounds = hist.bounds();
      sample.buckets.resize(hist.num_buckets());
      for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
        sample.buckets[b] = hist.bucket_count(b);
      }
      snap.samples.push_back(std::move(sample));
    }
  }
}

void ScopedRegistry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

ScopedRegistry& scoped_registry() {
  static ScopedRegistry instance;
  return instance;
}

MetricsSnapshot full_snapshot() {
  MetricsSnapshot snap = registry().snapshot();
  scoped_registry().append_to(snap);
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name != b.name ? a.name < b.name : a.scope < b.scope;
            });
  return snap;
}

}  // namespace odlp::obs
