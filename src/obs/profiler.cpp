#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/trace.h"
#include "util/atomic_file.h"
#include "util/log.h"

namespace odlp::obs {

std::string ProfileReport::folded_text() const {
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> ProfileReport::top_self(
    std::size_t n) const {
  std::map<std::string, std::uint64_t> self;
  for (const auto& [stack, count] : folded) {
    const std::size_t at = stack.rfind(';');
    self[at == std::string::npos ? stack : stack.substr(at + 1)] += count;
  }
  std::vector<std::pair<std::string, std::uint64_t>> out(self.begin(),
                                                         self.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::string ProfileReport::top_table(std::size_t n) const {
  std::string out;
  char line[160];
  for (const auto& [name, count] : top_self(n)) {
    const double pct =
        samples > 0 ? 100.0 * static_cast<double>(count) / samples : 0.0;
    std::snprintf(line, sizeof(line), "  %-40s %8llu samples  %5.1f%%\n",
                  name.c_str(), static_cast<unsigned long long>(count), pct);
    out += line;
  }
  return out;
}

struct Profiler::Impl {
  double hz;
  std::thread ticker;
  std::mutex mutex;
  std::condition_variable cv;
  bool stop_requested = false;
  bool running = false;
  ProfileReport report;

  explicit Impl(double rate) : hz(rate) {}

  void run() {
    const auto period = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(std::chrono::duration<double>(
        1.0 / hz));
    std::unique_lock<std::mutex> lk(mutex);
    auto next = std::chrono::steady_clock::now() + period;
    while (!stop_requested) {
      if (cv.wait_until(lk, next, [&] { return stop_requested; })) break;
      next += period;
      ++report.ticks;
      bool busy = false;
      // Sampling happens without `mutex` held elsewhere — the callback only
      // touches this Impl, and stop() joins before reading the report.
      trace_detail::sample_stacks(
          [&](int /*tid*/, const char* const* names, std::size_t depth) {
            busy = true;
            ++report.samples;
            std::string key;
            for (std::size_t i = 0; i < depth; ++i) {
              if (i) key += ';';
              key += names[i];
            }
            ++report.folded[key];
          });
      if (!busy) ++report.idle_ticks;
    }
  }
};

Profiler::Profiler(double hz) : impl_(std::make_unique<Impl>(hz)) {
  if (!(hz > 0.0)) throw std::invalid_argument("Profiler: hz must be > 0");
}

Profiler::~Profiler() {
  if (running()) stop();
}

void Profiler::start() {
  if (impl_->running) return;
  impl_->report = ProfileReport{};
  impl_->report.hz = impl_->hz;
  impl_->stop_requested = false;
  trace_detail::set_profiling(true);
  impl_->ticker = std::thread([this] { impl_->run(); });
  impl_->running = true;
}

ProfileReport Profiler::stop() {
  if (!impl_->running) return impl_->report;
  {
    std::lock_guard<std::mutex> lk(impl_->mutex);
    impl_->stop_requested = true;
  }
  impl_->cv.notify_all();
  impl_->ticker.join();
  trace_detail::set_profiling(false);
  impl_->running = false;
  return impl_->report;
}

bool Profiler::running() const { return impl_->running; }

void write_folded(const ProfileReport& report, const std::string& path) {
  const std::string text = report.folded_text();
  util::AtomicFileWriter writer(path);
  writer.write(text.data(), text.size());
  writer.commit();
}

namespace {

struct EnvProfile {
  Profiler* profiler = nullptr;  // leaked, like the trace State
  std::string path;
};

EnvProfile& env_profile() {
  static EnvProfile* instance = new EnvProfile;
  return *instance;
}

void env_profile_at_exit() {
  EnvProfile& ep = env_profile();
  if (!ep.profiler) return;
  const ProfileReport report = ep.profiler->stop();
  try {
    write_folded(report, ep.path);
    util::log_info("profile: wrote " + std::to_string(report.folded.size()) +
                   " folded stacks (" + std::to_string(report.samples) +
                   " samples) to " + ep.path);
  } catch (const std::exception& e) {
    util::log_warn(std::string("profile: write failed: ") + e.what());
  }
}

// ODLP_PROFILE=hz:path (or just a path for the default rate) profiles the
// whole process.
const bool g_env_init = [] {
  const char* spec = std::getenv("ODLP_PROFILE");
  if (!spec || !*spec) return true;
  double hz = Profiler::kDefaultHz;
  std::string path = spec;
  if (const std::size_t colon = path.find(':'); colon != std::string::npos) {
    char* end = nullptr;
    const double parsed = std::strtod(path.c_str(), &end);
    if (end == path.c_str() + colon && parsed > 0.0) {
      hz = parsed;
      path = path.substr(colon + 1);
    }
  }
  if (path.empty()) return true;
  EnvProfile& ep = env_profile();
  ep.path = path;
  ep.profiler = new Profiler(hz);
  ep.profiler->start();
  std::atexit(env_profile_at_exit);
  return true;
}();

}  // namespace

std::string profile_path() { return env_profile().path; }

}  // namespace odlp::obs
