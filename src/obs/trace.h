// Scoped trace spans with Chrome Trace Event Format export (DESIGN.md §10).
//
//   void PersonalizationEngine::score(...) {
//     ODLP_TRACE_SCOPE("engine.score");
//     ...
//   }
//
// Each span records a begin and end timestamp (steady-clock microseconds
// since process start) plus the executing thread's id into a per-thread
// ring buffer; flush_trace() merges every thread's events into one Chrome
// Trace JSON ("B"/"E" duration events) loadable in chrome://tracing or
// https://ui.perfetto.dev.
//
// Cost model (the §10 overhead budget):
//   * tracing OFF — one relaxed atomic load + a predictable branch per
//     span; no allocation, no clock read, no thread-local buffer creation.
//   * tracing ON  — two clock reads and two short critical sections on an
//     uncontended per-thread mutex (contended only while a flush is
//     copying that thread's buffer).
//
// Enabling:
//   * environment — ODLP_TRACE=path.json (checked once at startup) turns
//     tracing on for the whole process and registers an atexit flush, so
//     any binary in the repo produces a trace without code changes;
//   * programmatic — enable_tracing(path) / disable_tracing() /
//     flush_trace() for harnesses that scope tracing to one phase.
//
// Span names must be string literals (or otherwise outlive the flush): the
// ring buffer stores the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace odlp::obs {

namespace trace_detail {
// Which span consumers are live, as a bitmask read once per TraceScope:
// bit 0 — the trace ring buffers (enable_tracing), bit 1 — the sampling
// profiler's per-thread name stacks (obs/profiler.h). One relaxed load
// covers both, so adding the profiler kept the spans-off cost at a single
// load + branch.
inline constexpr std::uint8_t kModeTrace = 1u << 0;
inline constexpr std::uint8_t kModeProfile = 1u << 1;
extern std::atomic<std::uint8_t> g_mode;

// Records a begin event for `name` into every consumer in `mode`; returns
// the mask of consumers that actually recorded it (a full ring or a
// max-depth profiler stack drops out, keeping begin/end balanced per
// consumer). 0 when nothing recorded.
std::uint8_t record_begin(const char* name, std::uint8_t mode);
void record_end(std::uint8_t mask);

// Profiler hooks (obs/profiler.cpp). set_profiling toggles kModeProfile;
// sample_stacks invokes fn(tid, names, depth) once per thread that has an
// open span stack, from the sampler thread.
void set_profiling(bool on);
void sample_stacks(
    const std::function<void(int tid, const char* const* names,
                             std::size_t depth)>& fn);
}  // namespace trace_detail

inline bool tracing_enabled() {
  return (trace_detail::g_mode.load(std::memory_order_relaxed) &
          trace_detail::kModeTrace) != 0;
}

// Starts a new trace that flush_trace() will write to `path`. Clears any
// previously recorded events and registers an atexit flush (once).
void enable_tracing(const std::string& path);

// Stops recording. Already-recorded events are kept for flush_trace().
void disable_tracing();

// Writes everything recorded since enable_tracing() to the configured path
// as Chrome Trace JSON (events are retained, so repeated flushes rewrite
// the file with a growing prefix). Returns false if tracing was never
// enabled or the file cannot be written.
bool flush_trace();

// Same event stream, but written to `path` as an OBSF binary trace
// (io/obsf.h, meta "odlp.trace.v1": tid/ts_ns/phase/name columns, LZ4
// blocks) — roughly an order of magnitude smaller than the JSON and cheap
// enough to flush at fleet scale. Unlike flush_trace() the destination is
// explicit, so it works whether or not a JSON path was configured. Returns
// false when the file cannot be written.
bool flush_trace_binary(const std::string& path);

// Converts a binary trace written by flush_trace_binary() into Chrome Trace
// JSON loadable in chrome://tracing — offline, so devices ship the compact
// form and the JSON blow-up happens on the analysis host. Throws
// util::CorruptionError on a damaged input file.
void trace_binary_to_chrome_json(const std::string& binary_path,
                                 const std::string& json_path);

// Path configured by the last enable_tracing() ("" when never enabled).
std::string trace_path();

// Diagnostics (used by tests): number of per-thread ring buffers created,
// events currently recorded across all of them, and events dropped because
// a ring filled up.
std::size_t trace_buffer_count();
std::size_t trace_event_count();
std::uint64_t trace_dropped_count();

// RAII span. Prefer the ODLP_TRACE_SCOPE macro.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    const std::uint8_t mode =
        trace_detail::g_mode.load(std::memory_order_relaxed);
    if (mode) mask_ = trace_detail::record_begin(name, mode);
  }
  ~TraceScope() {
    if (mask_) trace_detail::record_end(mask_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::uint8_t mask_ = 0;
};

}  // namespace odlp::obs

#define ODLP_OBS_CONCAT2(a, b) a##b
#define ODLP_OBS_CONCAT(a, b) ODLP_OBS_CONCAT2(a, b)
// `name` must be a string literal (stored by pointer).
#define ODLP_TRACE_SCOPE(name) \
  ::odlp::obs::TraceScope ODLP_OBS_CONCAT(odlp_trace_scope_, __LINE__)(name)
