// OBSF metrics journal: periodic registry snapshots as a compact,
// delta-coded time series (DESIGN.md §15).
//
// A single metrics snapshot answers "what is the state now"; fleet health
// questions are about *trajectories* — is the reject rate climbing, did p99
// round latency step up after wave 40, how fast is a counter burning its
// error budget. The journal captures full_snapshot() (unscoped + scoped
// samples) at caller-chosen moments — wave boundaries in the fleet
// scheduler, fine-tune rounds in run_experiment — as rows of one OBSF
// container (io/obsf.h), one row per (snapshot, metric, scope):
//
//   snap     u64  kDelta   snapshot ordinal (0, 1, 2, ...)
//   ts_us    u64  kDelta   caller-supplied timestamp, microseconds
//   name     bytes kFlat   metric name
//   scope    bytes kFlat   scope label ("" = unscoped)
//   kind     u8   kZoH     MetricSample::Kind
//   counter  u64  kDelta   counter value (0 otherwise)
//   value    f64  kZoH     gauge value (0 otherwise)
//   h_count  u64  kDelta   histogram count (0 otherwise)
//   h_sum    f64  kZoH     histogram sum
//   p50/p95/p99 f64 kZoH   histogram quantiles at snapshot time
//
// Successive snapshots of a mostly-idle registry differ in a handful of
// values, so kDelta (zigzag-varint) and kZoH (run-length, raw-LE bit-exact
// for doubles) shrink the stream to a few bytes per metric per snapshot
// before LZ4 sees it. Float columns use kZoH, never kDelta (integers only);
// round-tripped doubles are bit-exact.
//
// Reading materializes per-(name, scope) series with the point list in
// snapshot order plus inter-snapshot rates. Corruption semantics follow the
// container: strict mode throws util::CorruptionError; recover=true stops
// at the first damaged block AND drops any rows of the now-partial last
// snapshot, so a recovered journal always ends on a complete snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/obsf.h"
#include "obs/metrics.h"

namespace odlp::obs {

// Appends snapshots to one OBSF journal file. Single-writer; the file
// appears atomically on finish() (util::AtomicFileWriter underneath), so a
// crash mid-run leaves no partial journal behind.
class JournalWriter {
 public:
  explicit JournalWriter(const std::string& path,
                         io::ObsfWriter::Options options = {});
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Writes one row per sample in `snap` under the next snapshot ordinal.
  // `ts_us` is the caller's clock (wall or steady) in microseconds; rates
  // are computed from consecutive ts_us deltas at read time.
  void append(const MetricsSnapshot& snap, std::uint64_t ts_us);

  // Flushes and commits the file; the writer is inert afterwards.
  io::ObsfWriter::Stats finish();

  // Snapshots appended so far.
  std::uint64_t snapshots() const { return snapshots_; }

 private:
  std::unique_ptr<io::ObsfWriter> writer_;
  std::uint64_t snapshots_ = 0;
};

// One metric value at one snapshot.
struct JournalPoint {
  std::uint64_t snap = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t counter = 0;  // kCounter
  double value = 0.0;         // kGauge
  std::uint64_t h_count = 0;  // kHistogram
  double h_sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// The full trajectory of one (name, scope) pair.
struct JournalSeries {
  std::string name;
  std::string scope;
  MetricSample::Kind kind = MetricSample::Kind::kCounter;
  std::vector<JournalPoint> points;  // snapshot order

  // Inter-snapshot rates, one per consecutive point pair (size() - 1
  // entries): counters and histograms report Δcount / Δseconds, gauges
  // report Δvalue / Δseconds. A zero time delta yields 0.
  std::vector<double> rates() const;
};

struct Journal {
  std::vector<JournalSeries> series;  // sorted by (name, scope)
  std::uint64_t snapshots = 0;        // complete snapshots materialized
  // Recover mode only: the file was damaged and the journal was cut back
  // to the last intact snapshot.
  bool truncated = false;

  const JournalSeries* find(const std::string& name,
                            const std::string& scope = "") const;
};

// Materializes a journal file. strict (recover=false) throws
// util::CorruptionError on any damage; recover=true keeps every complete
// snapshot before the first damaged block.
Journal read_journal(const std::string& path, bool recover = false);

}  // namespace odlp::obs
