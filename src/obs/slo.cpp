#include "obs/slo.h"

#include <algorithm>
#include <stdexcept>

namespace odlp::obs {

namespace {

// Samples recorded above `threshold` in a cumulative histogram sample: full
// buckets above, a linear share of the straddled bucket, and the whole
// overflow bucket. Bucket i spans (bounds[i-1], bounds[i]] with bucket 0
// anchored at 0 (the registry's histograms hold non-negative durations and
// ratios).
double count_above(const MetricSample& s, double threshold) {
  double above = 0.0;
  for (std::size_t i = 0; i < s.buckets.size(); ++i) {
    const double count = static_cast<double>(s.buckets[i]);
    if (count == 0.0) continue;
    if (i == s.bounds.size()) {  // overflow bucket
      above += count;
      continue;
    }
    const double hi = s.bounds[i];
    const double lo = i == 0 ? std::min(0.0, hi) : s.bounds[i - 1];
    if (hi <= threshold) continue;
    if (lo >= threshold) {
      above += count;
    } else {
      above += count * (hi - threshold) / (hi - lo);
    }
  }
  return above;
}

Counter& transition_counter(const std::string& slo, const char* which) {
  return registry().counter("slo." + slo + "." + which);
}

Gauge& state_gauge(const std::string& slo) {
  return registry().gauge("slo." + slo + ".state");
}

}  // namespace

SloEvaluator::SloEvaluator(std::vector<SloObjective> objectives)
    : objectives_(std::move(objectives)), tracks_(objectives_.size()) {
  for (const SloObjective& o : objectives_) {
    if (o.name.empty()) throw std::invalid_argument("slo: unnamed objective");
    if (!(o.error_budget > 0.0)) {
      throw std::invalid_argument("slo: error_budget must be > 0: " + o.name);
    }
    if (o.fast_window == 0 || o.slow_window < o.fast_window) {
      throw std::invalid_argument("slo: bad windows: " + o.name);
    }
    if (o.signal == SloSignal::kCounterRatio && o.denominator.empty()) {
      throw std::invalid_argument("slo: ratio needs a denominator: " + o.name);
    }
  }
}

// Violation fraction over the last `n` inter-snapshot intervals: the delta
// of cumulative bad over the delta of cumulative total (gauges degenerate
// to an average of 0/1 flags because each observation contributes 1 to
// total). Returns 0 until the window has n+1 observations or while the
// window saw no traffic.
double SloEvaluator::window_fraction(const SloObjective& o, const Track& t,
                                     std::size_t n) const {
  if (t.window.size() < n + 1) return 0.0;
  const Obs& newest = t.window.back();
  const Obs& oldest = t.window[t.window.size() - 1 - n];
  double bad = 0.0;
  double total = 0.0;
  if (o.signal == SloSignal::kGaugeBelow) {
    // Flags are not cumulative: sum the last n of them.
    for (std::size_t i = t.window.size() - n; i < t.window.size(); ++i) {
      bad += t.window[i].bad;
      total += t.window[i].total;
    }
  } else {
    bad = newest.bad - oldest.bad;
    total = newest.total - oldest.total;
  }
  if (total <= 0.0) return 0.0;
  return std::clamp(bad / total, 0.0, 1.0);
}

void SloEvaluator::observe(const MetricsSnapshot& snap,
                           std::uint64_t /*ts_us*/) {
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& o = objectives_[i];
    Track& t = tracks_[i];

    Obs obs;
    switch (o.signal) {
      case SloSignal::kHistogramAbove: {
        if (const MetricSample* s = snap.find_scoped(o.metric, o.scope)) {
          obs.bad = count_above(*s, o.threshold);
          obs.total = static_cast<double>(s->hist.count);
        }
        break;
      }
      case SloSignal::kCounterRatio: {
        if (const MetricSample* s = snap.find_scoped(o.metric, o.scope)) {
          obs.bad = static_cast<double>(s->counter);
        }
        if (const MetricSample* s =
                snap.find_scoped(o.denominator, o.scope)) {
          obs.total = static_cast<double>(s->counter);
        }
        break;
      }
      case SloSignal::kGaugeBelow: {
        const MetricSample* s = snap.find_scoped(o.metric, o.scope);
        obs.bad = (s && s->gauge < o.threshold) ? 1.0 : 0.0;
        obs.total = 1.0;
        break;
      }
    }
    t.window.push_back(obs);
    while (t.window.size() > o.slow_window + 1) t.window.pop_front();

    t.fast_rate = window_fraction(o, t, o.fast_window) / o.error_budget;
    t.slow_rate = window_fraction(o, t, o.slow_window) / o.error_budget;

    SloState next = SloState::kOk;
    if (t.fast_rate >= o.fast_burn) {
      next = SloState::kFastBurn;
    } else if (t.slow_rate >= o.slow_burn) {
      next = SloState::kSlowBurn;
    }
    if (next != t.state) {
      if (next == SloState::kFastBurn) {
        transition_counter(o.name, "fast_burn.total").inc();
      } else if (next == SloState::kSlowBurn) {
        transition_counter(o.name, "slow_burn.total").inc();
      } else {
        transition_counter(o.name, "recovered.total").inc();
      }
      t.state = next;
    }
    state_gauge(o.name).set(static_cast<double>(static_cast<int>(t.state)));
  }
}

double SloEvaluator::pressure() const {
  double p = 0.0;
  for (const Track& t : tracks_) {
    switch (t.state) {
      case SloState::kFastBurn:
        p = std::max(p, 1.0);
        break;
      case SloState::kSlowBurn:
        p = std::max(p, 0.75);
        break;
      case SloState::kOk:
        break;
    }
  }
  return p;
}

std::vector<SloStatus> SloEvaluator::status() const {
  std::vector<SloStatus> out;
  out.reserve(objectives_.size());
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    out.push_back({objectives_[i].name, tracks_[i].state,
                   tracks_[i].fast_rate, tracks_[i].slow_rate});
  }
  return out;
}

}  // namespace odlp::obs
