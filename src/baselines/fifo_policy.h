// FIFO Replace baseline (paper §4.1): always admit; once full, evict the
// oldest buffered entry. Under temporally correlated streams the buffer
// degenerates to the most recent burst, which is why FIFO trails every other
// method in the paper's tables.
#pragma once

#include "core/policy.h"

namespace odlp::baselines {

class FifoReplacePolicy final : public core::ReplacementPolicy {
 public:
  std::string name() const override { return "FIFO"; }
  core::Decision offer(const core::Candidate& candidate,
                       const core::DataBuffer& buffer, util::Rng& rng) override;
};

}  // namespace odlp::baselines
