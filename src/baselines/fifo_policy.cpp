#include "baselines/fifo_policy.h"

namespace odlp::baselines {

core::Decision FifoReplacePolicy::offer(const core::Candidate& candidate,
                                        const core::DataBuffer& buffer,
                                        util::Rng& rng) {
  (void)candidate;
  (void)rng;
  if (!buffer.full()) return core::Decision::admit_free();
  return core::Decision::admit_replacing(*buffer.oldest_index());
}

}  // namespace odlp::baselines
