#include "baselines/random_policy.h"

namespace odlp::baselines {

core::Decision RandomReplacePolicy::offer(const core::Candidate& candidate,
                                          const core::DataBuffer& buffer,
                                          util::Rng& rng) {
  (void)candidate;
  ++arrivals_;
  if (!buffer.full()) return core::Decision::admit_free();
  // Reservoir: keep with probability capacity / arrivals.
  const double p_keep = static_cast<double>(buffer.capacity()) /
                        static_cast<double>(arrivals_);
  if (!rng.bernoulli(p_keep)) return core::Decision::reject();
  return core::Decision::admit_replacing(rng.uniform_index(buffer.size()));
}

}  // namespace odlp::baselines
