// Single-metric ablation policies (paper Table 4): the framework modified to
// use only one of EOE / DSS / IDD for data replacement. When full, the
// candidate replaces the buffered entry with the lowest score on the chosen
// metric, provided the candidate's score is strictly higher.
#pragma once

#include "core/policy.h"

namespace odlp::baselines {

enum class SingleMetric { kEoe, kDss, kIdd };

class SingleMetricPolicy final : public core::ReplacementPolicy {
 public:
  explicit SingleMetricPolicy(SingleMetric metric) : metric_(metric) {}

  std::string name() const override;
  core::Decision offer(const core::Candidate& candidate,
                       const core::DataBuffer& buffer, util::Rng& rng) override;

 private:
  double score_of(const core::QualityScores& s) const;
  SingleMetric metric_;
};

}  // namespace odlp::baselines
