// Random Replace baseline (Hayes et al. 2019, as cited in the paper §4.1):
// reservoir sampling — admit the i-th arriving set with probability
// capacity/i once the buffer is full, evicting a uniformly random entry.
// This keeps the buffer a uniform sample of the whole stream seen so far,
// the property that makes it the paper's strongest vanilla baseline.
#pragma once

#include "core/policy.h"

namespace odlp::baselines {

class RandomReplacePolicy final : public core::ReplacementPolicy {
 public:
  std::string name() const override { return "Random"; }
  core::Decision offer(const core::Candidate& candidate,
                       const core::DataBuffer& buffer, util::Rng& rng) override;
  void reset() override { arrivals_ = 0; }

 private:
  std::size_t arrivals_ = 0;
};

}  // namespace odlp::baselines
