// K-Center baseline (Sener & Savarese 2017, adapted to streaming as in the
// paper §4.1): maintain buffered embeddings as an approximate k-center set.
//
// Streaming greedy rule: when full, find the closest pair of buffered
// embeddings (the pair most redundant with each other) and the candidate's
// distance to its nearest buffered embedding. If the candidate is farther
// from the buffer than the closest pair is from each other, it increases
// coverage — admit it, evicting one element of that pair. Distances are
// cosine distances (1 − cos), consistent with the IDD metric's geometry.
#pragma once

#include "core/policy.h"

namespace odlp::baselines {

class KCenterPolicy final : public core::ReplacementPolicy {
 public:
  std::string name() const override { return "K-Center"; }
  core::Decision offer(const core::Candidate& candidate,
                       const core::DataBuffer& buffer, util::Rng& rng) override;
};

}  // namespace odlp::baselines
