#include "baselines/kcenter_policy.h"

#include <limits>

#include "tensor/ops.h"

namespace odlp::baselines {

namespace {
double cosine_distance(const tensor::Tensor& a, const tensor::Tensor& b) {
  return 1.0 - static_cast<double>(tensor::cosine_similarity(a, b));
}
}  // namespace

core::Decision KCenterPolicy::offer(const core::Candidate& candidate,
                                    const core::DataBuffer& buffer,
                                    util::Rng& rng) {
  if (!buffer.full()) return core::Decision::admit_free();
  if (buffer.size() < 2) {
    // A 1-bin buffer has no pair to compare; keep the first element.
    (void)rng;
    return core::Decision::reject();
  }

  // Candidate's distance to the buffer (coverage gain if admitted).
  double d_candidate = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    d_candidate = std::min(
        d_candidate, cosine_distance(candidate.embedding, buffer.entry(i).embedding));
  }

  // Most redundant buffered pair.
  double d_pair = std::numeric_limits<double>::infinity();
  std::size_t pair_i = 0;
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    for (std::size_t j = i + 1; j < buffer.size(); ++j) {
      const double d =
          cosine_distance(buffer.entry(i).embedding, buffer.entry(j).embedding);
      if (d < d_pair) {
        d_pair = d;
        pair_i = i;
      }
    }
  }

  if (d_candidate <= d_pair) return core::Decision::reject();
  return core::Decision::admit_replacing(pair_i);
}

}  // namespace odlp::baselines
