#include "baselines/single_metric_policy.h"

namespace odlp::baselines {

std::string SingleMetricPolicy::name() const {
  switch (metric_) {
    case SingleMetric::kEoe: return "EOE";
    case SingleMetric::kDss: return "DSS";
    case SingleMetric::kIdd: return "IDD";
  }
  return "?";
}

double SingleMetricPolicy::score_of(const core::QualityScores& s) const {
  switch (metric_) {
    case SingleMetric::kEoe: return s.eoe;
    case SingleMetric::kDss: return s.dss;
    case SingleMetric::kIdd: return s.idd;
  }
  return 0.0;
}

core::Decision SingleMetricPolicy::offer(const core::Candidate& candidate,
                                         const core::DataBuffer& buffer,
                                         util::Rng& rng) {
  (void)rng;
  if (!buffer.full()) return core::Decision::admit_free();
  std::size_t worst = 0;
  for (std::size_t i = 1; i < buffer.size(); ++i) {
    if (score_of(buffer.entry(i).scores) < score_of(buffer.entry(worst).scores)) {
      worst = i;
    }
  }
  if (score_of(candidate.scores) > score_of(buffer.entry(worst).scores)) {
    return core::Decision::admit_replacing(worst);
  }
  return core::Decision::reject();
}

}  // namespace odlp::baselines
