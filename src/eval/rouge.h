// ROUGE metrics (Lin 2004) — the paper's sole quality metric (ROUGE-1 F1)
// for both evaluation (generated vs. reference responses) and the data
// synthesis sanity check.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace odlp::eval {

struct RougeScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

// ROUGE-N between a candidate and a reference (texts are normalized
// internally: lowercase, punctuation stripped). n >= 1.
RougeScore rouge_n(std::string_view candidate, std::string_view reference,
                   std::size_t n);

// ROUGE-1 F1, the headline number in every table of the paper.
double rouge1_f1(std::string_view candidate, std::string_view reference);

// ROUGE-L (longest common subsequence) F1.
RougeScore rouge_l(std::string_view candidate, std::string_view reference);

// Mean ROUGE-1 F1 over aligned candidate/reference lists (corpus level).
double corpus_rouge1(const std::vector<std::string>& candidates,
                     const std::vector<std::string>& references);

// Token-level variants for callers that already tokenized.
RougeScore rouge_n_tokens(const std::vector<std::string>& candidate,
                          const std::vector<std::string>& reference, std::size_t n);
RougeScore rouge_l_tokens(const std::vector<std::string>& candidate,
                          const std::vector<std::string>& reference);

}  // namespace odlp::eval
