// Learning-curve recorder: (number of streamed dialogue sets seen, ROUGE-1)
// checkpoints, the profiling artifact behind the paper's Figure 2.
#pragma once

#include <string>
#include <vector>

#include "util/table.h"

namespace odlp::eval {

class LearningCurve {
 public:
  explicit LearningCurve(std::string method_name)
      : method_name_(std::move(method_name)) {}

  void record(std::size_t seen_sets, double rouge1);

  const std::string& method_name() const { return method_name_; }
  std::size_t num_points() const { return seen_.size(); }
  const std::vector<std::size_t>& seen() const { return seen_; }
  const std::vector<double>& rouge() const { return rouge_; }

  double final_rouge() const { return rouge_.empty() ? 0.0 : rouge_.back(); }
  double best_rouge() const;

  // Net improvement from the first to the last checkpoint; positive means the
  // method keeps learning as data streams in (the paper's qualitative claim
  // for its framework vs. the flat baselines).
  double total_gain() const;

  util::Series to_series() const;

 private:
  std::string method_name_;
  std::vector<std::size_t> seen_;
  std::vector<double> rouge_;
};

}  // namespace odlp::eval
