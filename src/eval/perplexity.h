// Corpus perplexity of a MiniLlm over encoded dialogues — the intrinsic LM
// metric complementing ROUGE-1 (which only sees sampled generations).
#pragma once

#include <vector>

#include "llm/minillm.h"
#include "text/tokenizer.h"

namespace odlp::eval {

struct PerplexityResult {
  double mean_nll = 0.0;     // mean negative log-likelihood per token
  double perplexity = 1.0;   // exp(mean_nll)
  std::size_t tokens = 0;    // supervised token count
  std::size_t sequences = 0;
};

// Evaluates teacher-forced NLL over the supervised positions of each
// encoded dialogue (response tokens under the default encoding).
PerplexityResult corpus_perplexity(
    llm::MiniLlm& model,
    const std::vector<text::Tokenizer::EncodedDialogue>& corpus);

}  // namespace odlp::eval
