#include "eval/perplexity.h"

#include <cmath>

#include "nn/loss.h"

namespace odlp::eval {

PerplexityResult corpus_perplexity(
    llm::MiniLlm& model,
    const std::vector<text::Tokenizer::EncodedDialogue>& corpus) {
  PerplexityResult result;
  double total_nll = 0.0;
  for (const auto& ex : corpus) {
    if (ex.input.size() < 2) continue;
    tensor::Tensor logits = model.forward(ex.input, /*training=*/false);
    std::vector<int> targets = ex.targets;
    targets.resize(logits.rows(), -1);
    const auto ce = nn::cross_entropy(logits, targets);
    if (ce.count == 0) continue;
    total_nll += ce.loss * static_cast<double>(ce.count);
    result.tokens += ce.count;
    ++result.sequences;
  }
  if (result.tokens > 0) {
    result.mean_nll = total_nll / static_cast<double>(result.tokens);
    result.perplexity = std::exp(result.mean_nll);
  }
  return result;
}

}  // namespace odlp::eval
