#include "eval/learning_curve.h"

#include <algorithm>

namespace odlp::eval {

void LearningCurve::record(std::size_t seen_sets, double rouge1) {
  seen_.push_back(seen_sets);
  rouge_.push_back(rouge1);
}

double LearningCurve::best_rouge() const {
  if (rouge_.empty()) return 0.0;
  return *std::max_element(rouge_.begin(), rouge_.end());
}

double LearningCurve::total_gain() const {
  if (rouge_.size() < 2) return 0.0;
  return rouge_.back() - rouge_.front();
}

util::Series LearningCurve::to_series() const {
  util::Series s(method_name_, "seen_sets", "rouge1");
  for (std::size_t i = 0; i < seen_.size(); ++i) {
    s.add(static_cast<double>(seen_[i]), rouge_[i]);
  }
  return s;
}

}  // namespace odlp::eval
