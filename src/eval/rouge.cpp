#include "eval/rouge.h"

#include <algorithm>

#include "text/ngrams.h"
#include "text/normalize.h"

namespace odlp::eval {

namespace {

RougeScore from_counts(std::size_t overlap, std::size_t cand_total,
                       std::size_t ref_total) {
  RougeScore s;
  if (cand_total > 0) s.precision = static_cast<double>(overlap) / cand_total;
  if (ref_total > 0) s.recall = static_cast<double>(overlap) / ref_total;
  if (s.precision + s.recall > 0.0) {
    s.f1 = 2.0 * s.precision * s.recall / (s.precision + s.recall);
  }
  return s;
}

}  // namespace

RougeScore rouge_n_tokens(const std::vector<std::string>& candidate,
                          const std::vector<std::string>& reference, std::size_t n) {
  const auto cand = text::ngram_counts(candidate, n);
  const auto ref = text::ngram_counts(reference, n);
  return from_counts(text::overlap_count(cand, ref), text::total_count(cand),
                     text::total_count(ref));
}

RougeScore rouge_n(std::string_view candidate, std::string_view reference,
                   std::size_t n) {
  return rouge_n_tokens(text::normalize_and_split(candidate),
                        text::normalize_and_split(reference), n);
}

double rouge1_f1(std::string_view candidate, std::string_view reference) {
  return rouge_n(candidate, reference, 1).f1;
}

RougeScore rouge_l_tokens(const std::vector<std::string>& candidate,
                          const std::vector<std::string>& reference) {
  const std::size_t m = candidate.size(), n = reference.size();
  if (m == 0 || n == 0) return RougeScore{};
  // LCS length via the classic DP, O(m*n) with two rows.
  std::vector<std::size_t> prev(n + 1, 0), cur(n + 1, 0);
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      if (candidate[i - 1] == reference[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  const std::size_t lcs = prev[n];
  return from_counts(lcs, m, n);
}

RougeScore rouge_l(std::string_view candidate, std::string_view reference) {
  return rouge_l_tokens(text::normalize_and_split(candidate),
                        text::normalize_and_split(reference));
}

double corpus_rouge1(const std::vector<std::string>& candidates,
                     const std::vector<std::string>& references) {
  if (candidates.empty() || candidates.size() != references.size()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    total += rouge1_f1(candidates[i], references[i]);
  }
  return total / static_cast<double>(candidates.size());
}

}  // namespace odlp::eval
