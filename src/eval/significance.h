// Paired significance testing for per-set ROUGE score vectors.
//
// The τ=0.5 evaluation protocol is noisy at small subset sizes (see
// EXPERIMENTS.md); comparing two methods by their mean ROUGE alone can
// mistake sampling noise for a win. These tools operate on *paired* per-set
// scores (both methods evaluated on the identical held-out sets, which the
// experiment harness guarantees):
//
//   * paired_bootstrap — resamples set indices with replacement and reports
//     the fraction of resamples where method A's mean beats method B's
//     (Koehn 2004, the standard MT/summarization significance test).
//   * sign_test_p_value — exact binomial sign test on per-set wins.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace odlp::eval {

struct BootstrapResult {
  double mean_a = 0.0;
  double mean_b = 0.0;
  double mean_delta = 0.0;       // mean_a - mean_b
  double win_rate = 0.0;         // fraction of resamples with delta > 0
  double delta_ci_low = 0.0;     // 95% CI of the delta
  double delta_ci_high = 0.0;
  std::size_t resamples = 0;
};

// Requires a.size() == b.size() >= 1. Deterministic under the given rng.
BootstrapResult paired_bootstrap(const std::vector<double>& a,
                                 const std::vector<double>& b, util::Rng& rng,
                                 std::size_t resamples = 2000);

// Two-sided exact sign test over paired scores: ties dropped; returns the
// probability of seeing a win split at least this extreme under H0 (p=0.5).
// Returns 1.0 when every pair ties.
double sign_test_p_value(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace odlp::eval
