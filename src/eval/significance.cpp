#include "eval/significance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace odlp::eval {

namespace {

double mean_of(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

}  // namespace

BootstrapResult paired_bootstrap(const std::vector<double>& a,
                                 const std::vector<double>& b, util::Rng& rng,
                                 std::size_t resamples) {
  assert(a.size() == b.size() && !a.empty());
  BootstrapResult result;
  result.mean_a = mean_of(a);
  result.mean_b = mean_of(b);
  result.mean_delta = result.mean_a - result.mean_b;
  result.resamples = resamples;

  const std::size_t n = a.size();
  std::vector<double> deltas;
  deltas.reserve(resamples);
  std::size_t wins = 0;
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = rng.uniform_index(n);
      sum_delta += a[idx] - b[idx];
    }
    const double delta = sum_delta / static_cast<double>(n);
    deltas.push_back(delta);
    if (delta > 0.0) ++wins;
  }
  result.win_rate = static_cast<double>(wins) / static_cast<double>(resamples);
  std::sort(deltas.begin(), deltas.end());
  const auto pct = [&](double q) {
    const double pos = q * static_cast<double>(deltas.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, deltas.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return deltas[lo] * (1.0 - frac) + deltas[hi] * frac;
  };
  result.delta_ci_low = pct(0.025);
  result.delta_ci_high = pct(0.975);
  return result;
}

double sign_test_p_value(const std::vector<double>& a,
                         const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::size_t wins = 0, losses = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) ++wins;
    else if (a[i] < b[i]) ++losses;
  }
  const std::size_t n = wins + losses;
  if (n == 0) return 1.0;

  // Two-sided exact binomial tail: P(X <= min) + P(X >= max), X~Bin(n, 0.5).
  const std::size_t k = std::min(wins, losses);
  // Compute sum_{i=0}^{k} C(n,i) / 2^n in log space for stability.
  double tail = 0.0;
  double log_choose = 0.0;  // log C(n, 0) = 0
  const double log_half_n = -static_cast<double>(n) * std::log(2.0);
  for (std::size_t i = 0; i <= k; ++i) {
    if (i > 0) {
      log_choose += std::log(static_cast<double>(n - i + 1)) -
                    std::log(static_cast<double>(i));
    }
    tail += std::exp(log_choose + log_half_n);
  }
  return std::min(1.0, 2.0 * tail);
}

}  // namespace odlp::eval
