// Vocabulary persistence: a deployed device ships a frozen vocabulary with
// its model checkpoint; these helpers write/read it as a plain text file
// (one word per line, in id order) so checkpoints stay inspectable. The
// file ends with a "#odlp-vocab-crc32 <hex>" trailer covering all preceding
// bytes; legacy files without the trailer still load (DESIGN.md §7).
#pragma once

#include <string>

#include "text/vocab.h"

namespace odlp::text {

// Atomically writes all words (including the reserved specials) in id
// order, followed by the CRC trailer. Throws std::runtime_error on I/O
// failure.
void save_vocab(const Vocab& vocab, const std::string& path);

// Reads a vocabulary written by save_vocab; the result is frozen. Verifies
// the CRC trailer when present (legacy files without one are accepted).
// Throws util::CorruptionError on a CRC mismatch or if the reserved special
// tokens are missing / out of order; std::runtime_error on I/O failure.
Vocab load_vocab(const std::string& path);

}  // namespace odlp::text
