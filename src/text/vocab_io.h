// Vocabulary persistence: a deployed device ships a frozen vocabulary with
// its model checkpoint; these helpers write/read it as a plain text file
// (one word per line, in id order) so checkpoints stay inspectable.
#pragma once

#include <string>

#include "text/vocab.h"

namespace odlp::text {

// Writes all words (including the reserved specials) in id order.
// Throws std::runtime_error on I/O failure.
void save_vocab(const Vocab& vocab, const std::string& path);

// Reads a vocabulary written by save_vocab; the result is frozen.
// Throws std::runtime_error on I/O failure or if the reserved special tokens
// are missing / out of order.
Vocab load_vocab(const std::string& path);

}  // namespace odlp::text
