#include "text/vocab_io.h"

#include <fstream>
#include <stdexcept>

namespace odlp::text {

void save_vocab(const Vocab& vocab, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("vocab_io: cannot open " + path);
  for (std::size_t id = 0; id < vocab.size(); ++id) {
    out << vocab.word(static_cast<int>(id)) << '\n';
  }
  if (!out) throw std::runtime_error("vocab_io: write failed for " + path);
}

Vocab load_vocab(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("vocab_io: cannot open " + path);
  Vocab vocab;  // constructs the specials at ids 0..4
  std::string line;
  std::size_t index = 0;
  while (std::getline(in, line)) {
    if (index < vocab.size()) {
      // The first five lines must be the reserved specials in order.
      if (line != vocab.word(static_cast<int>(index))) {
        throw std::runtime_error("vocab_io: reserved token mismatch at line " +
                                 std::to_string(index));
      }
    } else {
      if (line.empty()) continue;
      vocab.add(line);
    }
    ++index;
  }
  if (index < 5) throw std::runtime_error("vocab_io: truncated vocabulary file");
  vocab.freeze();
  return vocab;
}

}  // namespace odlp::text
