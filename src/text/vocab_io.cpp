#include "text/vocab_io.h"

#include <cstdio>
#include <string>
#include <vector>

#include "util/atomic_file.h"
#include "util/crc32.h"

namespace odlp::text {

namespace {

// Trailer line appended by save_vocab: "#odlp-vocab-crc32 <8 hex digits>".
// The CRC covers every byte before the trailer line. '#' cannot start a
// real vocabulary word (the tokenizer strips punctuation), and legacy files
// simply lack the trailer, so presence of the prefix is unambiguous.
constexpr const char* kTrailerPrefix = "#odlp-vocab-crc32 ";

std::string trailer_line(std::uint32_t crc) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%08x", kTrailerPrefix, crc);
  return buf;
}

}  // namespace

void save_vocab(const Vocab& vocab, const std::string& path) {
  std::string body;
  for (std::size_t id = 0; id < vocab.size(); ++id) {
    body += vocab.word(static_cast<int>(id));
    body += '\n';
  }
  const std::uint32_t crc = util::crc32(body.data(), body.size());
  util::AtomicFileWriter out(path);
  out.write(body.data(), body.size());
  const std::string trailer = trailer_line(crc) + "\n";
  out.write(trailer.data(), trailer.size());
  out.commit();
}

Vocab load_vocab(const std::string& path) {
  const std::vector<unsigned char> raw = util::read_file(path);
  std::string content(raw.begin(), raw.end());

  // Split the checksummed trailer off, if present (legacy files lack it).
  const std::size_t trailer_pos = content.rfind(kTrailerPrefix);
  if (trailer_pos != std::string::npos) {
    // The trailer must start at the beginning of a line.
    if (trailer_pos != 0 && content[trailer_pos - 1] != '\n') {
      throw util::CorruptionError("vocab_io: malformed checksum trailer");
    }
    const std::size_t value_pos = trailer_pos + std::string(kTrailerPrefix).size();
    const std::uint32_t stored =
        static_cast<std::uint32_t>(std::strtoul(content.c_str() + value_pos,
                                                nullptr, 16));
    const std::uint32_t actual = util::crc32(content.data(), trailer_pos);
    if (stored != actual) {
      throw util::CorruptionError("vocab_io: CRC mismatch (corrupt file)");
    }
    content.erase(trailer_pos);
  }

  Vocab vocab;  // constructs the specials at ids 0..4
  std::size_t index = 0;
  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string line = content.substr(start, end - start);
    start = end + 1;
    if (index < vocab.size()) {
      // The first five lines must be the reserved specials in order.
      if (line != vocab.word(static_cast<int>(index))) {
        throw util::CorruptionError(
            "vocab_io: reserved token mismatch at line " +
            std::to_string(index));
      }
    } else {
      if (line.empty()) continue;
      vocab.add(line);
    }
    ++index;
  }
  if (index < 5) {
    throw util::CorruptionError("vocab_io: truncated vocabulary file");
  }
  vocab.freeze();
  return vocab;
}

}  // namespace odlp::text
