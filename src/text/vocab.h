// Word-level vocabulary with reserved special tokens.
//
// The on-device setting needs a fixed vocabulary shipped with the model;
// Vocab supports freezing after construction so streaming text maps unseen
// words to <unk> rather than growing the embedding table.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace odlp::text {

class Vocab {
 public:
  // Reserved ids, always present.
  static constexpr int kPad = 0;
  static constexpr int kUnk = 1;
  static constexpr int kBos = 2;
  static constexpr int kEos = 3;
  static constexpr int kSep = 4;  // question/answer separator in a dialogue set

  Vocab();

  // Adds a word if absent (no-op when frozen); returns its id (<unk> if
  // frozen and absent).
  int add(const std::string& word);

  // Id lookup; <unk> when absent.
  int id(const std::string& word) const;

  // Reverse lookup. Requires 0 <= id < size().
  const std::string& word(int id) const;

  bool contains(const std::string& word) const;
  std::size_t size() const { return words_.size(); }

  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  // Builds vocabulary from tokenized documents, keeping words with frequency
  // >= min_freq, capped at max_size (most frequent first; ties broken
  // lexicographically for determinism). Returns number of words kept.
  std::size_t build(const std::vector<std::vector<std::string>>& docs,
                    std::size_t min_freq = 1, std::size_t max_size = 50000);

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> words_;
  bool frozen_ = false;
};

}  // namespace odlp::text
