#include "text/normalize.h"

#include <cctype>

#include "util/strings.h"

namespace odlp::text {

std::string normalize(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool last_space = true;
  for (char ch : s) {
    const auto uc = static_cast<unsigned char>(ch);
    if (std::isalnum(uc)) {
      out.push_back(static_cast<char>(std::tolower(uc)));
      last_space = false;
    } else if (!last_space) {
      out.push_back(' ');
      last_space = true;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> normalize_and_split(std::string_view s) {
  return util::split(normalize(s), " ");
}

}  // namespace odlp::text
