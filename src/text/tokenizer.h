// Word-level tokenizer over a Vocab, with dialogue-set encoding helpers.
//
// A dialogue set (question, answer) is encoded as:
//   <bos> q1 q2 ... <sep> a1 a2 ... <eos>
// The language-model targets mask everything up to and including <sep> so
// fine-tuning supervises only the response, as instruction-tuning does.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "text/vocab.h"

namespace odlp::text {

class Tokenizer {
 public:
  explicit Tokenizer(Vocab vocab) : vocab_(std::move(vocab)) {}

  // Normalize + split + map to ids (adds to vocab unless frozen).
  std::vector<int> encode(std::string_view s);
  std::vector<int> encode(std::string_view s) const;  // never grows the vocab

  // Ids -> space-joined words, skipping special tokens.
  std::string decode(const std::vector<int>& ids) const;

  struct EncodedDialogue {
    std::vector<int> input;    // <bos> q <sep> a <eos>, truncated to max_len
    std::vector<int> targets;  // next-token targets, -1 on masked positions
    std::size_t sep_position;  // index of <sep> in `input`
  };

  // Encodes a (question, answer) pair for LM training. `max_len` truncates;
  // supervise_question additionally supervises the question tokens (off by
  // default, matching response-only instruction tuning).
  EncodedDialogue encode_dialogue(std::string_view question, std::string_view answer,
                                  std::size_t max_len = 512,
                                  bool supervise_question = false) const;

  // Encodes a question as a generation prompt: <bos> q <sep>.
  std::vector<int> encode_prompt(std::string_view question,
                                 std::size_t max_len = 512) const;

  Vocab& vocab() { return vocab_; }
  const Vocab& vocab() const { return vocab_; }

 private:
  Vocab vocab_;
};

}  // namespace odlp::text
