// Text normalization applied before tokenization and ROUGE scoring:
// ASCII lowercase and punctuation-to-space, collapsing whitespace runs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace odlp::text {

// Lowercase, map non-alphanumeric characters to spaces, collapse whitespace.
std::string normalize(std::string_view s);

// normalize() then split on spaces.
std::vector<std::string> normalize_and_split(std::string_view s);

}  // namespace odlp::text
