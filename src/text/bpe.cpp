#include "text/bpe.h"

#include <algorithm>
#include <sstream>

#include "text/normalize.h"
#include "util/strings.h"

namespace odlp::text {

namespace {

constexpr const char* kEndOfWord = "</w>";

std::vector<std::string> word_to_symbols(const std::string& word) {
  std::vector<std::string> symbols;
  symbols.reserve(word.size() + 1);
  for (char c : word) symbols.emplace_back(1, c);
  if (!symbols.empty()) symbols.back() += kEndOfWord;
  return symbols;
}

// Applies one merge to a symbol sequence in place.
void apply_merge(std::vector<std::string>& symbols,
                 const std::pair<std::string, std::string>& merge) {
  std::vector<std::string> out;
  out.reserve(symbols.size());
  std::size_t i = 0;
  while (i < symbols.size()) {
    if (i + 1 < symbols.size() && symbols[i] == merge.first &&
        symbols[i + 1] == merge.second) {
      out.push_back(merge.first + merge.second);
      i += 2;
    } else {
      out.push_back(symbols[i]);
      ++i;
    }
  }
  symbols = std::move(out);
}

}  // namespace

BpeTokenizer BpeTokenizer::train(const std::vector<std::string>& corpus,
                                 std::size_t num_merges) {
  // Word frequency table over the normalized corpus.
  std::map<std::string, std::size_t> word_freq;
  for (const auto& doc : corpus) {
    for (const auto& w : normalize_and_split(doc)) ++word_freq[w];
  }

  // Working representation: symbol sequence + frequency per distinct word.
  std::vector<std::pair<std::vector<std::string>, std::size_t>> words;
  words.reserve(word_freq.size());
  for (const auto& [word, freq] : word_freq) {
    auto symbols = word_to_symbols(word);
    if (!symbols.empty()) words.emplace_back(std::move(symbols), freq);
  }

  BpeTokenizer bpe;
  for (std::size_t step = 0; step < num_merges; ++step) {
    // Count adjacent pairs (std::map keeps tie-breaking deterministic:
    // among equal counts the lexicographically smallest pair wins).
    std::map<std::pair<std::string, std::string>, std::size_t> pair_counts;
    for (const auto& [symbols, freq] : words) {
      for (std::size_t i = 0; i + 1 < symbols.size(); ++i) {
        pair_counts[{symbols[i], symbols[i + 1]}] += freq;
      }
    }
    if (pair_counts.empty()) break;
    auto best = pair_counts.begin();
    for (auto it = pair_counts.begin(); it != pair_counts.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    if (best->second < 2) break;  // nothing left worth merging
    bpe.merges_.push_back(best->first);
    for (auto& [symbols, freq] : words) apply_merge(symbols, best->first);
  }
  bpe.rebuild_ranks();
  return bpe;
}

void BpeTokenizer::rebuild_ranks() {
  ranks_.clear();
  for (std::size_t r = 0; r < merges_.size(); ++r) ranks_[merges_[r]] = r;
}

std::vector<std::string> BpeTokenizer::encode_word(const std::string& word) const {
  std::vector<std::string> symbols = word_to_symbols(word);
  if (symbols.empty()) return symbols;
  // Repeatedly apply the lowest-ranked applicable merge (canonical BPE).
  while (symbols.size() > 1) {
    std::size_t best_rank = merges_.size();
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i + 1 < symbols.size(); ++i) {
      auto it = ranks_.find({symbols[i], symbols[i + 1]});
      if (it != ranks_.end() && it->second < best_rank) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_rank == merges_.size()) break;
    symbols[best_pos] += symbols[best_pos + 1];
    symbols.erase(symbols.begin() + static_cast<std::ptrdiff_t>(best_pos) + 1);
  }
  return symbols;
}

std::vector<std::string> BpeTokenizer::encode_pieces(
    std::string_view textblock) const {
  std::vector<std::string> pieces;
  for (const auto& word : normalize_and_split(textblock)) {
    const auto symbols = encode_word(word);
    pieces.insert(pieces.end(), symbols.begin(), symbols.end());
  }
  return pieces;
}

std::string BpeTokenizer::decode_pieces(const std::vector<std::string>& pieces) {
  std::string out;
  for (const auto& piece : pieces) {
    if (util::ends_with(piece, kEndOfWord)) {
      out += piece.substr(0, piece.size() - 4);
      out += ' ';
    } else {
      out += piece;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> BpeTokenizer::piece_vocabulary(
    const std::vector<std::string>& corpus) const {
  std::map<std::string, bool> seen;
  for (const auto& doc : corpus) {
    for (const auto& piece : encode_pieces(doc)) seen[piece] = true;
  }
  std::vector<std::string> out;
  out.reserve(seen.size());
  for (const auto& [piece, _] : seen) out.push_back(piece);
  return out;
}

std::string BpeTokenizer::to_string() const {
  std::ostringstream out;
  for (const auto& [a, b] : merges_) out << a << ' ' << b << '\n';
  return out.str();
}

BpeTokenizer BpeTokenizer::from_string(const std::string& serialized) {
  BpeTokenizer bpe;
  std::istringstream in(serialized);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto space = line.find(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      throw std::runtime_error("BpeTokenizer: malformed merge line: " + line);
    }
    bpe.merges_.emplace_back(line.substr(0, space), line.substr(space + 1));
  }
  bpe.rebuild_ranks();
  return bpe;
}

}  // namespace odlp::text
