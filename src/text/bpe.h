// Byte-pair encoding (subword) tokenizer — the tokenization family Llama
// actually uses. The experiment harness keeps the word-level tokenizer
// (whose closed synthetic vocabulary makes it exact), but the library ships
// a real trainable BPE so integrators can tokenize open text:
//
//   BpeTokenizer bpe = BpeTokenizer::train(corpus, 512);
//   std::vector<std::string> pieces = bpe.encode_pieces("unbelievable");
//
// Algorithm (Sennrich et al. 2016): words are split into characters with a
// terminal end-of-word marker; training repeatedly merges the most frequent
// adjacent symbol pair (ties broken lexicographically for determinism) until
// the merge budget is exhausted. Encoding replays merges in learned order.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace odlp::text {

class BpeTokenizer {
 public:
  // Learns `num_merges` merges from normalized corpus text.
  static BpeTokenizer train(const std::vector<std::string>& corpus,
                            std::size_t num_merges);

  // Subword pieces of one (normalized) word; the last piece carries the
  // end-of-word marker "</w>".
  std::vector<std::string> encode_word(const std::string& word) const;

  // Pieces of a whole text (normalized + split into words first).
  std::vector<std::string> encode_pieces(std::string_view textblock) const;

  // Reassembles pieces back into plain text (inverse of encode_pieces).
  static std::string decode_pieces(const std::vector<std::string>& pieces);

  const std::vector<std::pair<std::string, std::string>>& merges() const {
    return merges_;
  }

  // Distinct piece strings producible by this tokenizer over its training
  // corpus (useful for sizing an embedding table).
  std::vector<std::string> piece_vocabulary(
      const std::vector<std::string>& corpus) const;

  // Serialization: one merge per line ("left right").
  std::string to_string() const;
  static BpeTokenizer from_string(const std::string& serialized);

 private:
  std::vector<std::pair<std::string, std::string>> merges_;
  // merge -> rank (application order) for fast encoding.
  std::map<std::pair<std::string, std::string>, std::size_t> ranks_;

  void rebuild_ranks();
};

}  // namespace odlp::text
