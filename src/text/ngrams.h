// N-gram extraction used by the ROUGE implementation.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace odlp::text {

// Multiset of n-grams (n >= 1) over a token vector; the map key is the
// n-gram joined with '\x1f' so distinct grams never collide.
std::map<std::string, int> ngram_counts(const std::vector<std::string>& tokens,
                                        std::size_t n);

// Size of the multiset intersection of two n-gram count maps.
std::size_t overlap_count(const std::map<std::string, int>& a,
                          const std::map<std::string, int>& b);

// Total n-gram count (sum of multiplicities).
std::size_t total_count(const std::map<std::string, int>& counts);

}  // namespace odlp::text
