#include "text/ngrams.h"

#include <algorithm>

namespace odlp::text {

std::map<std::string, int> ngram_counts(const std::vector<std::string>& tokens,
                                        std::size_t n) {
  std::map<std::string, int> counts;
  if (n == 0 || tokens.size() < n) return counts;
  for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string key = tokens[i];
    for (std::size_t j = 1; j < n; ++j) {
      key.push_back('\x1f');
      key += tokens[i + j];
    }
    ++counts[key];
  }
  return counts;
}

std::size_t overlap_count(const std::map<std::string, int>& a,
                          const std::map<std::string, int>& b) {
  std::size_t overlap = 0;
  for (const auto& [gram, ca] : a) {
    auto it = b.find(gram);
    if (it != b.end()) overlap += static_cast<std::size_t>(std::min(ca, it->second));
  }
  return overlap;
}

std::size_t total_count(const std::map<std::string, int>& counts) {
  std::size_t total = 0;
  for (const auto& [gram, c] : counts) total += static_cast<std::size_t>(c);
  return total;
}

}  // namespace odlp::text
