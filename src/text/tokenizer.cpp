#include "text/tokenizer.h"

#include <algorithm>

#include "text/normalize.h"

namespace odlp::text {

std::vector<int> Tokenizer::encode(std::string_view s) {
  std::vector<int> ids;
  for (const auto& w : normalize_and_split(s)) ids.push_back(vocab_.add(w));
  return ids;
}

std::vector<int> Tokenizer::encode(std::string_view s) const {
  std::vector<int> ids;
  for (const auto& w : normalize_and_split(s)) ids.push_back(vocab_.id(w));
  return ids;
}

std::string Tokenizer::decode(const std::vector<int>& ids) const {
  std::string out;
  for (int id : ids) {
    if (id == Vocab::kPad || id == Vocab::kBos || id == Vocab::kEos ||
        id == Vocab::kSep || id == Vocab::kUnk) {
      continue;
    }
    if (id < 0 || static_cast<std::size_t>(id) >= vocab_.size()) continue;
    if (!out.empty()) out.push_back(' ');
    out += vocab_.word(id);
  }
  return out;
}

Tokenizer::EncodedDialogue Tokenizer::encode_dialogue(std::string_view question,
                                                      std::string_view answer,
                                                      std::size_t max_len,
                                                      bool supervise_question) const {
  const Tokenizer& self = *this;
  std::vector<int> q = self.encode(question);
  std::vector<int> a = self.encode(answer);

  EncodedDialogue enc;
  enc.input.push_back(Vocab::kBos);
  enc.input.insert(enc.input.end(), q.begin(), q.end());
  enc.sep_position = enc.input.size();
  enc.input.push_back(Vocab::kSep);
  enc.input.insert(enc.input.end(), a.begin(), a.end());
  enc.input.push_back(Vocab::kEos);
  if (enc.input.size() > max_len) {
    enc.input.resize(max_len);
    enc.input.back() = Vocab::kEos;
    enc.sep_position = std::min(enc.sep_position, max_len - 1);
  }

  // Next-token targets: targets[t] = input[t + 1]; last position predicts
  // nothing. Question positions (before <sep>) are masked unless requested.
  enc.targets.assign(enc.input.size(), -1);
  for (std::size_t t = 0; t + 1 < enc.input.size(); ++t) {
    const bool in_answer = t >= enc.sep_position;  // from <sep> onward
    if (in_answer || supervise_question) enc.targets[t] = enc.input[t + 1];
  }
  return enc;
}

std::vector<int> Tokenizer::encode_prompt(std::string_view question,
                                          std::size_t max_len) const {
  const Tokenizer& self = *this;
  std::vector<int> q = self.encode(question);
  std::vector<int> out;
  out.push_back(Vocab::kBos);
  out.insert(out.end(), q.begin(), q.end());
  if (out.size() + 1 > max_len) out.resize(max_len - 1);
  out.push_back(Vocab::kSep);
  return out;
}

}  // namespace odlp::text
