#include "text/vocab.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace odlp::text {

Vocab::Vocab() {
  for (const char* w : {"<pad>", "<unk>", "<bos>", "<eos>", "<sep>"}) {
    index_.emplace(w, static_cast<int>(words_.size()));
    words_.emplace_back(w);
  }
}

int Vocab::add(const std::string& word) {
  auto it = index_.find(word);
  if (it != index_.end()) return it->second;
  if (frozen_) return kUnk;
  const int id = static_cast<int>(words_.size());
  index_.emplace(word, id);
  words_.push_back(word);
  return id;
}

int Vocab::id(const std::string& word) const {
  auto it = index_.find(word);
  return it == index_.end() ? kUnk : it->second;
}

const std::string& Vocab::word(int id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < words_.size());
  return words_[static_cast<std::size_t>(id)];
}

bool Vocab::contains(const std::string& word) const {
  return index_.count(word) != 0;
}

std::size_t Vocab::build(const std::vector<std::vector<std::string>>& docs,
                         std::size_t min_freq, std::size_t max_size) {
  // std::map gives deterministic lexicographic tie order.
  std::map<std::string, std::size_t> freq;
  for (const auto& doc : docs) {
    for (const auto& w : doc) ++freq[w];
  }
  std::vector<std::pair<std::string, std::size_t>> items(freq.begin(), freq.end());
  std::stable_sort(items.begin(), items.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  std::size_t kept = 0;
  for (const auto& [w, f] : items) {
    if (f < min_freq) continue;
    if (words_.size() >= max_size) break;
    if (!contains(w)) {
      add(w);
      ++kept;
    }
  }
  return kept;
}

}  // namespace odlp::text
