// In-repo LZ4 block codec (DESIGN.md §14).
//
// Implements the standard LZ4 block format — token byte with literal-run /
// match-length nibbles, 255-extension length bytes, 16-bit little-endian
// match offsets — with a greedy hash-chain compressor and a fully
// bounds-checked decompressor. No external dependency: fleet-scale stream
// and trace storage must not add a library the device image doesn't carry.
//
// Contracts:
//   * Round-trip exact: lz4_decompress(lz4_compress(x)) == x for any input.
//   * Safe on hostile input: the decompressor validates every literal run,
//     offset, and match length against the actual buffer bounds and throws
//     util::CorruptionError instead of reading or writing out of bounds.
//     (OBSF blocks additionally carry a CRC-32 footer, so a bit flip that
//     decodes to *valid-but-wrong* bytes is still caught one layer up.)
//   * Compression is format-compatible with reference LZ4 block streams;
//     ratio is that of greedy single-pass LZ4 (level 1 equivalent).
#pragma once

#include <cstddef>
#include <cstdint>

namespace odlp::io {

// Worst-case compressed size for `n` input bytes (incompressible input
// expands by the literal-run framing: n + n/255 + 16).
std::size_t lz4_max_compressed_size(std::size_t n);

// Compresses `n` bytes from `src` into `dst` (which must hold at least
// lz4_max_compressed_size(n) bytes). Returns the compressed size. n == 0
// produces 0 bytes.
std::size_t lz4_compress(const std::uint8_t* src, std::size_t n,
                         std::uint8_t* dst);

// Decompresses exactly `dst_size` bytes into `dst` from the `n`-byte
// compressed block at `src`. Throws util::CorruptionError on any malformed
// input (truncated sequence, bad offset, size mismatch). Returns dst_size.
std::size_t lz4_decompress(const std::uint8_t* src, std::size_t n,
                           std::uint8_t* dst, std::size_t dst_size);

}  // namespace odlp::io
