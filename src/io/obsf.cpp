#include "io/obsf.h"

#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "io/lz4.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace odlp::io {

namespace {

// Sanity caps: a corrupt length field must fail fast, not allocate gigabytes.
constexpr std::uint32_t kMaxColumns = 1u << 12;
constexpr std::uint32_t kMaxMetaBytes = 1u << 20;
constexpr std::uint32_t kMaxNameBytes = 1u << 10;
constexpr std::uint32_t kMaxRawBytes = 1u << 30;
constexpr std::uint32_t kMaxBlockRows = 1u << 26;

struct IoMetrics {
  obs::Counter& blocks = obs::registry().counter("io.blocks.written");
  obs::Counter& bytes_raw = obs::registry().counter("io.bytes.raw");
  obs::Counter& bytes_compressed =
      obs::registry().counter("io.bytes.compressed");
  obs::Histogram& flush_us = obs::registry().histogram("io.flush_us");

  static IoMetrics& get() {
    static IoMetrics m;
    return m;
  }
};

// --- varint / zigzag primitives (LEB128, low 7 bits first) ---

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

std::uint64_t get_varint(const std::uint8_t* p, std::size_t n,
                         std::size_t& off) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (off >= n || shift > 63) {
      throw util::CorruptionError("obsf: malformed varint");
    }
    const std::uint8_t b = p[off++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void put_raw(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
T get_pod(const std::uint8_t* p, std::size_t n, std::size_t& off) {
  if (n - off < sizeof(T)) {
    throw util::CorruptionError("obsf: truncated value");
  }
  T v;
  std::memcpy(&v, p + off, sizeof(T));
  off += sizeof(T);
  return v;
}

bool codec_legal(ColumnType type, ColumnCodec codec) {
  switch (codec) {
    case ColumnCodec::kFlat:
      return true;
    case ColumnCodec::kDelta:
      return type == ColumnType::kI64 || type == ColumnType::kU64;
    case ColumnCodec::kZoH:
      return type == ColumnType::kI64 || type == ColumnType::kU64 ||
             type == ColumnType::kU8 || type == ColumnType::kF64;
  }
  return false;
}

}  // namespace

void validate_schema(const Schema& schema) {
  if (schema.columns.empty()) {
    throw std::invalid_argument("obsf: schema has no columns");
  }
  if (schema.columns.size() > kMaxColumns) {
    throw std::invalid_argument("obsf: too many columns");
  }
  if (schema.meta.size() > kMaxMetaBytes) {
    throw std::invalid_argument("obsf: metadata too large");
  }
  for (const ColumnSpec& c : schema.columns) {
    if (c.name.empty() || c.name.size() > kMaxNameBytes) {
      throw std::invalid_argument("obsf: bad column name: " + c.name);
    }
    if (static_cast<std::uint8_t>(c.type) > 5 ||
        static_cast<std::uint8_t>(c.codec) > 2 ||
        !codec_legal(c.type, c.codec)) {
      throw std::invalid_argument("obsf: illegal type/codec for column " +
                                  c.name);
    }
  }
}

// ---------------------------------------------------------------------------
// BlockWriter

struct BlockWriter::Sync {
  std::mutex mutex;
  std::condition_variable cv;
  bool busy = false;
  std::exception_ptr error;
};

BlockWriter::BlockWriter(util::AtomicFileWriter& out, bool compress,
                         bool async)
    : out_(out), compress_(compress), async_(async), sync_(new Sync) {}

BlockWriter::~BlockWriter() {
  try {
    drain();
  } catch (...) {
    // Destructor path: the error was already deferred past its submit();
    // the owning ObsfWriter aborts the file, so losing it here is safe.
  }
}

void BlockWriter::submit(std::uint32_t rows, std::vector<std::uint8_t> payload) {
  {
    std::unique_lock<std::mutex> lk(sync_->mutex);
    sync_->cv.wait(lk, [&] { return !sync_->busy; });
    if (sync_->error) {
      std::exception_ptr e = sync_->error;
      sync_->error = nullptr;
      std::rethrow_exception(e);
    }
    sync_->busy = true;
  }

  util::ThreadPool& pool = util::ThreadPool::global();
  if (async_ && pool.lanes() > 1) {
    auto block = std::make_shared<std::vector<std::uint8_t>>(std::move(payload));
    pool.submit([this, rows, block] {
      try {
        write_block(rows, *block);
      } catch (...) {
        std::lock_guard<std::mutex> lk(sync_->mutex);
        sync_->error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk(sync_->mutex);
        sync_->busy = false;
      }
      sync_->cv.notify_all();
    });
    return;
  }

  try {
    write_block(rows, payload);
  } catch (...) {
    std::lock_guard<std::mutex> lk(sync_->mutex);
    sync_->busy = false;
    throw;
  }
  std::lock_guard<std::mutex> lk(sync_->mutex);
  sync_->busy = false;
}

void BlockWriter::drain() {
  std::unique_lock<std::mutex> lk(sync_->mutex);
  sync_->cv.wait(lk, [&] { return !sync_->busy; });
  if (sync_->error) {
    std::exception_ptr e = sync_->error;
    sync_->error = nullptr;
    std::rethrow_exception(e);
  }
}

void BlockWriter::write_block(std::uint32_t rows,
                              const std::vector<std::uint8_t>& raw) {
  util::Stopwatch sw;
  const std::uint32_t raw_len = static_cast<std::uint32_t>(raw.size());

  // Runs shorter than this are stored raw without attempting LZ4 — the
  // framing overhead would eat any plausible gain.
  constexpr std::size_t kMinCompressRun = 64;

  std::vector<std::uint8_t> framed;
  std::vector<std::uint8_t> scratch;
  const std::uint8_t* payload = raw.data();
  std::uint32_t stored_len = raw_len;
  std::uint8_t codec = 0;
  if (compress_ && raw_len > 0) {
    // Re-frame the plain columnar payload (varint len + bytes per column)
    // into independently compressed per-column runs, so readers can skip
    // decompressing columns a projected scan never touches.
    framed.reserve(raw.size() / 2 + 64);
    std::size_t off = 0;
    while (off < raw.size()) {
      const std::uint64_t run = get_varint(raw.data(), raw.size(), off);
      const std::uint8_t* run_bytes = raw.data() + off;
      put_varint(framed, run);
      bool stored_compressed = false;
      if (run >= kMinCompressRun) {
        scratch.resize(lz4_max_compressed_size(static_cast<std::size_t>(run)));
        const std::size_t csize = lz4_compress(
            run_bytes, static_cast<std::size_t>(run), scratch.data());
        if (csize < run) {
          put_varint(framed, csize);
          framed.push_back(1);
          framed.insert(framed.end(), scratch.data(), scratch.data() + csize);
          stored_compressed = true;
        }
      }
      if (!stored_compressed) {
        put_varint(framed, run);
        framed.push_back(0);
        framed.insert(framed.end(), run_bytes, run_bytes + run);
      }
      off += static_cast<std::size_t>(run);
    }
    payload = framed.data();
    stored_len = static_cast<std::uint32_t>(framed.size());
    codec = 1;
  }

  // Frame CRC covers rows..payload (everything after the block magic).
  util::Crc32 crc;
  crc.update(&rows, sizeof(rows));
  crc.update(&raw_len, sizeof(raw_len));
  crc.update(&stored_len, sizeof(stored_len));
  crc.update(&codec, sizeof(codec));
  crc.update(payload, stored_len);
  const std::uint32_t crc_value = crc.value();

  out_.write_pod(kBlockMagic);
  out_.write_pod(rows);
  out_.write_pod(raw_len);
  out_.write_pod(stored_len);
  out_.write_pod(codec);
  out_.write(payload, stored_len);
  out_.write_pod(crc_value);

  ++blocks_;
  raw_bytes_ += raw_len;
  stored_bytes_ += stored_len;

  IoMetrics& m = IoMetrics::get();
  m.blocks.inc();
  m.bytes_raw.inc(raw_len);
  m.bytes_compressed.inc(stored_len);
  m.flush_us.record(sw.elapsed_seconds() * 1e6);
}

// ---------------------------------------------------------------------------
// ObsfWriter

struct ObsfWriter::ColumnBuffer {
  std::vector<std::string> bytes;
  std::vector<std::int64_t> i64;
  std::vector<std::uint64_t> u64;
  std::vector<double> f64;
  std::vector<std::uint8_t> u8;
  std::vector<float> f32;

  void clear() {
    bytes.clear();
    i64.clear();
    u64.clear();
    f64.clear();
    u8.clear();
    f32.clear();
  }
};

namespace {

// Encodes one column's block-worth of values; appends varint(enc_len) +
// encoded bytes to `out`.
void encode_column(const ColumnSpec& spec,
                   const ObsfWriter::ColumnBuffer& col, std::size_t rows,
                   std::vector<std::uint8_t>& out);

template <typename T, typename PutValue>
void encode_zoh(const std::vector<T>& v, std::vector<std::uint8_t>& enc,
                PutValue put_value) {
  std::size_t i = 0;
  while (i < v.size()) {
    std::size_t run = 1;
    while (i + run < v.size() &&
           std::memcmp(&v[i + run], &v[i], sizeof(T)) == 0) {
      ++run;
    }
    put_varint(enc, run);
    put_value(enc, v[i]);
    i += run;
  }
}

}  // namespace

ObsfWriter::ObsfWriter(std::string path, Schema schema, Options options)
    : path_(std::move(path)), schema_(std::move(schema)), options_(options) {
  validate_schema(schema_);
  if (options_.block_rows == 0 || options_.block_rows > kMaxBlockRows) {
    throw std::invalid_argument("obsf: bad block_rows");
  }
  columns_.resize(schema_.columns.size());

  out_ = std::make_unique<util::AtomicFileWriter>(path_);
  out_->write_pod(kObsfMagic);
  out_->write_pod(kObsfVersion);
  const std::uint32_t flags = options_.compress ? 1u : 0u;
  out_->write_pod(flags);
  out_->write_pod(static_cast<std::uint32_t>(schema_.columns.size()));
  out_->write_pod(static_cast<std::uint32_t>(schema_.meta.size()));
  out_->write(schema_.meta.data(), schema_.meta.size());
  for (const ColumnSpec& c : schema_.columns) {
    out_->write_pod(static_cast<std::uint8_t>(c.type));
    out_->write_pod(static_cast<std::uint8_t>(c.codec));
    out_->write_pod(static_cast<std::uint16_t>(c.name.size()));
    out_->write(c.name.data(), c.name.size());
  }
  out_->write_pod(out_->crc());

  block_writer_ =
      std::make_unique<BlockWriter>(*out_, options_.compress, options_.async);
}

ObsfWriter::~ObsfWriter() {
  // Tear down the block writer (draining any in-flight block) before the
  // AtomicFileWriter it writes into; an unfinished writer then aborts.
  block_writer_.reset();
  out_.reset();
}

#define ODLP_OBSF_APPEND(fn, member, ctype, want)                            \
  void ObsfWriter::fn(ctype v) {                                             \
    if (finished_ || next_col_ >= schema_.columns.size() ||                  \
        schema_.columns[next_col_].type != ColumnType::want) {               \
      throw std::logic_error("obsf: " #fn " out of schema order");           \
    }                                                                        \
    columns_[next_col_].member.push_back(v);                                 \
    ++next_col_;                                                             \
  }

ODLP_OBSF_APPEND(append_i64, i64, std::int64_t, kI64)
ODLP_OBSF_APPEND(append_u64, u64, std::uint64_t, kU64)
ODLP_OBSF_APPEND(append_f64, f64, double, kF64)
ODLP_OBSF_APPEND(append_u8, u8, std::uint8_t, kU8)
ODLP_OBSF_APPEND(append_f32, f32, float, kF32)
#undef ODLP_OBSF_APPEND

void ObsfWriter::append_bytes(std::string_view v) {
  if (finished_ || next_col_ >= schema_.columns.size() ||
      schema_.columns[next_col_].type != ColumnType::kBytes) {
    throw std::logic_error("obsf: append_bytes out of schema order");
  }
  columns_[next_col_].bytes.emplace_back(v);
  ++next_col_;
}

void ObsfWriter::end_row() {
  if (finished_ || next_col_ != schema_.columns.size()) {
    throw std::logic_error("obsf: end_row with incomplete row");
  }
  next_col_ = 0;
  ++rows_in_block_;
  ++total_rows_;
  if (rows_in_block_ >= options_.block_rows) flush_block();
}

void ObsfWriter::flush_block() {
  if (rows_in_block_ == 0) return;
  std::vector<std::uint8_t> payload;
  for (std::size_t c = 0; c < schema_.columns.size(); ++c) {
    encode_column(schema_.columns[c], columns_[c], rows_in_block_, payload);
    columns_[c].clear();
  }
  if (payload.size() > kMaxRawBytes) {
    throw std::runtime_error("obsf: block payload exceeds 1 GiB cap");
  }
  block_writer_->submit(static_cast<std::uint32_t>(rows_in_block_),
                        std::move(payload));
  rows_in_block_ = 0;
}

ObsfWriter::Stats ObsfWriter::finish() {
  if (finished_) throw std::logic_error("obsf: finish() called twice");
  if (next_col_ != 0) throw std::logic_error("obsf: finish() mid-row");
  flush_block();
  // Terminal sentinel: rows == 0 marks clean end-of-stream so truncation at
  // a block boundary is detectable.
  block_writer_->submit(0, {});
  block_writer_->drain();

  Stats stats;
  stats.rows = total_rows_;
  stats.blocks = block_writer_->blocks() - 1;  // exclude the sentinel
  stats.raw_bytes = block_writer_->raw_bytes();
  stats.stored_bytes = block_writer_->stored_bytes();
  block_writer_.reset();
  stats.file_bytes = out_->bytes_written();
  out_->commit();
  out_.reset();
  finished_ = true;
  return stats;
}

namespace {

void encode_column(const ColumnSpec& spec,
                   const ObsfWriter::ColumnBuffer& col, std::size_t rows,
                   std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> enc;
  switch (spec.type) {
    case ColumnType::kBytes:
      for (const std::string& s : col.bytes) {
        put_varint(enc, s.size());
        put_raw(enc, s.data(), s.size());
      }
      break;
    case ColumnType::kI64:
      if (spec.codec == ColumnCodec::kDelta) {
        std::int64_t prev = 0;
        for (std::size_t i = 0; i < col.i64.size(); ++i) {
          if (i == 0) {
            put_varint(enc, zigzag(col.i64[0]));
          } else {
            // Wraparound-safe difference (unsigned subtraction).
            const std::uint64_t d = static_cast<std::uint64_t>(col.i64[i]) -
                                    static_cast<std::uint64_t>(prev);
            put_varint(enc, zigzag(static_cast<std::int64_t>(d)));
          }
          prev = col.i64[i];
        }
      } else if (spec.codec == ColumnCodec::kZoH) {
        encode_zoh(col.i64, enc,
                   [](std::vector<std::uint8_t>& e, std::int64_t v) {
                     put_varint(e, zigzag(v));
                   });
      } else {
        for (std::int64_t v : col.i64) put_varint(enc, zigzag(v));
      }
      break;
    case ColumnType::kU64:
      if (spec.codec == ColumnCodec::kDelta) {
        std::uint64_t prev = 0;
        for (std::size_t i = 0; i < col.u64.size(); ++i) {
          if (i == 0) {
            put_varint(enc, col.u64[0]);
          } else {
            put_varint(enc, zigzag(static_cast<std::int64_t>(col.u64[i] - prev)));
          }
          prev = col.u64[i];
        }
      } else if (spec.codec == ColumnCodec::kZoH) {
        encode_zoh(col.u64, enc,
                   [](std::vector<std::uint8_t>& e, std::uint64_t v) {
                     put_varint(e, v);
                   });
      } else {
        for (std::uint64_t v : col.u64) put_varint(enc, v);
      }
      break;
    case ColumnType::kF64:
      if (spec.codec == ColumnCodec::kZoH) {
        encode_zoh(col.f64, enc, [](std::vector<std::uint8_t>& e, double v) {
          put_raw(e, &v, sizeof(v));
        });
      } else {
        put_raw(enc, col.f64.data(), col.f64.size() * sizeof(double));
      }
      break;
    case ColumnType::kU8:
      if (spec.codec == ColumnCodec::kZoH) {
        encode_zoh(col.u8, enc,
                   [](std::vector<std::uint8_t>& e, std::uint8_t v) {
                     e.push_back(v);
                   });
      } else {
        put_raw(enc, col.u8.data(), col.u8.size());
      }
      break;
    case ColumnType::kF32:
      put_raw(enc, col.f32.data(), col.f32.size() * sizeof(float));
      break;
  }
  (void)rows;
  put_varint(out, enc.size());
  out.insert(out.end(), enc.begin(), enc.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// ObsfReader

struct ObsfReader::ColumnData {
  // Run extent located by next_block(); the run is decompressed + decoded
  // only when an accessor first touches the column (ensure_decoded), so a
  // projected scan never pays for columns it skips.
  const std::uint8_t* src = nullptr;  // stored run bytes, into the file image
  std::size_t stored_len = 0;
  std::size_t raw_len = 0;
  std::uint8_t run_codec = 0;  // 0 raw, 1 lz4
  bool decoded = false;
  // Decompression scratch for this column; kBytes views alias it (or the
  // file image when the run is stored raw). Reused across blocks.
  std::vector<std::uint8_t> storage;

  // kBytes columns decode to zero-copy views; owning strings are built only
  // when col_bytes()/col_bytes_mut() is actually called — the lazy cache is
  // mutable so the const accessor can fill it.
  std::vector<std::string_view> views;
  mutable std::vector<std::string> bytes;
  mutable bool strings_built = false;
  std::vector<std::int64_t> i64;
  std::vector<std::uint64_t> u64;
  std::vector<double> f64;
  std::vector<std::uint8_t> u8;
  std::vector<float> f32;

  void clear() {
    src = nullptr;
    stored_len = 0;
    raw_len = 0;
    run_codec = 0;
    decoded = false;
    views.clear();
    bytes.clear();
    strings_built = false;
    i64.clear();
    u64.clear();
    f64.clear();
    u8.clear();
    f32.clear();
  }

  const std::vector<std::string>& materialized() const {
    if (!strings_built) {
      bytes.clear();
      bytes.reserve(views.size());
      for (const std::string_view v : views) bytes.emplace_back(v);
      strings_built = true;
    }
    return bytes;
  }
};

namespace {

// Decodes exactly `rows` values of one column from enc[0..n); must consume
// the whole run. Throws CorruptionError on any mismatch.
void decode_column(const ColumnSpec& spec, const std::uint8_t* enc,
                   std::size_t n, std::size_t rows,
                   ObsfReader::ColumnData& out) {
  std::size_t off = 0;
  switch (spec.type) {
    case ColumnType::kBytes: {
      out.views.reserve(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::uint64_t len = get_varint(enc, n, off);
        if (len > n - off) {
          throw util::CorruptionError("obsf: byte value overruns column");
        }
        out.views.emplace_back(reinterpret_cast<const char*>(enc + off),
                               static_cast<std::size_t>(len));
        off += static_cast<std::size_t>(len);
      }
      break;
    }
    case ColumnType::kI64: {
      out.i64.reserve(rows);
      if (spec.codec == ColumnCodec::kDelta) {
        std::int64_t prev = 0;
        for (std::size_t r = 0; r < rows; ++r) {
          const std::int64_t d = unzigzag(get_varint(enc, n, off));
          const std::int64_t v =
              r == 0 ? d
                     : static_cast<std::int64_t>(
                           static_cast<std::uint64_t>(prev) +
                           static_cast<std::uint64_t>(d));
          out.i64.push_back(v);
          prev = v;
        }
      } else if (spec.codec == ColumnCodec::kZoH) {
        while (out.i64.size() < rows) {
          const std::uint64_t run = get_varint(enc, n, off);
          if (run == 0 || run > rows - out.i64.size()) {
            throw util::CorruptionError("obsf: bad ZoH run length");
          }
          const std::int64_t v = unzigzag(get_varint(enc, n, off));
          out.i64.insert(out.i64.end(), static_cast<std::size_t>(run), v);
        }
      } else {
        for (std::size_t r = 0; r < rows; ++r) {
          out.i64.push_back(unzigzag(get_varint(enc, n, off)));
        }
      }
      break;
    }
    case ColumnType::kU64: {
      out.u64.reserve(rows);
      if (spec.codec == ColumnCodec::kDelta) {
        std::uint64_t prev = 0;
        for (std::size_t r = 0; r < rows; ++r) {
          const std::uint64_t v =
              r == 0 ? get_varint(enc, n, off)
                     : prev + static_cast<std::uint64_t>(
                                  unzigzag(get_varint(enc, n, off)));
          out.u64.push_back(v);
          prev = v;
        }
      } else if (spec.codec == ColumnCodec::kZoH) {
        while (out.u64.size() < rows) {
          const std::uint64_t run = get_varint(enc, n, off);
          if (run == 0 || run > rows - out.u64.size()) {
            throw util::CorruptionError("obsf: bad ZoH run length");
          }
          const std::uint64_t v = get_varint(enc, n, off);
          out.u64.insert(out.u64.end(), static_cast<std::size_t>(run), v);
        }
      } else {
        for (std::size_t r = 0; r < rows; ++r) {
          out.u64.push_back(get_varint(enc, n, off));
        }
      }
      break;
    }
    case ColumnType::kF64: {
      out.f64.reserve(rows);
      if (spec.codec == ColumnCodec::kZoH) {
        while (out.f64.size() < rows) {
          const std::uint64_t run = get_varint(enc, n, off);
          if (run == 0 || run > rows - out.f64.size()) {
            throw util::CorruptionError("obsf: bad ZoH run length");
          }
          const double v = get_pod<double>(enc, n, off);
          out.f64.insert(out.f64.end(), static_cast<std::size_t>(run), v);
        }
      } else {
        for (std::size_t r = 0; r < rows; ++r) {
          out.f64.push_back(get_pod<double>(enc, n, off));
        }
      }
      break;
    }
    case ColumnType::kU8: {
      out.u8.reserve(rows);
      if (spec.codec == ColumnCodec::kZoH) {
        while (out.u8.size() < rows) {
          const std::uint64_t run = get_varint(enc, n, off);
          if (run == 0 || run > rows - out.u8.size()) {
            throw util::CorruptionError("obsf: bad ZoH run length");
          }
          const std::uint8_t v = get_pod<std::uint8_t>(enc, n, off);
          out.u8.insert(out.u8.end(), static_cast<std::size_t>(run), v);
        }
      } else {
        if (n - off < rows) {
          throw util::CorruptionError("obsf: u8 column truncated");
        }
        out.u8.assign(enc + off, enc + off + rows);
        off += rows;
      }
      break;
    }
    case ColumnType::kF32: {
      out.f32.reserve(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        out.f32.push_back(get_pod<float>(enc, n, off));
      }
      break;
    }
  }
  if (off != n) {
    throw util::CorruptionError("obsf: column has trailing bytes");
  }
}

}  // namespace

ObsfReader::ObsfReader(const std::string& path, Options options)
    : options_(options) {
  bytes_ = util::read_file(path);
  util::ByteReader r(bytes_.data(), bytes_.size(), "obsf " + path);

  if (r.pod<std::uint32_t>() != kObsfMagic) {
    throw util::CorruptionError("obsf: bad magic in " + path);
  }
  const std::uint32_t version = r.pod<std::uint32_t>();
  if (version != kObsfVersion) {
    throw util::CorruptionError("obsf: unsupported version in " + path);
  }
  r.pod<std::uint32_t>();  // flags (informational)
  const std::uint32_t ncols = r.pod<std::uint32_t>();
  if (ncols == 0 || ncols > kMaxColumns) {
    throw util::CorruptionError("obsf: bad column count in " + path);
  }
  const std::uint32_t meta_len = r.pod<std::uint32_t>();
  if (meta_len > kMaxMetaBytes || meta_len > r.remaining()) {
    throw util::CorruptionError("obsf: bad metadata length in " + path);
  }
  schema_.meta = r.str(meta_len);
  schema_.columns.reserve(ncols);
  for (std::uint32_t c = 0; c < ncols; ++c) {
    ColumnSpec spec;
    const std::uint8_t type = r.pod<std::uint8_t>();
    const std::uint8_t codec = r.pod<std::uint8_t>();
    const std::uint16_t name_len = r.pod<std::uint16_t>();
    if (type > 5 || codec > 2 || name_len == 0 || name_len > kMaxNameBytes ||
        name_len > r.remaining()) {
      throw util::CorruptionError("obsf: bad column spec in " + path);
    }
    spec.type = static_cast<ColumnType>(type);
    spec.codec = static_cast<ColumnCodec>(codec);
    spec.name = r.str(name_len);
    if (!codec_legal(spec.type, spec.codec)) {
      throw util::CorruptionError("obsf: illegal type/codec in " + path);
    }
    schema_.columns.push_back(std::move(spec));
  }
  const std::size_t header_len = r.offset();
  const std::uint32_t stored_crc = r.pod<std::uint32_t>();
  if (util::crc32(bytes_.data(), header_len) != stored_crc) {
    throw util::CorruptionError("obsf: header CRC mismatch in " + path);
  }
  offset_ = r.offset();
  columns_.resize(ncols);
}

ObsfReader::~ObsfReader() = default;

bool ObsfReader::next_block() {
  if (done_) return false;
  try {
    while (true) {
      if (bytes_.size() - offset_ < 17) {
        throw util::CorruptionError("obsf: truncated block frame");
      }
      util::ByteReader r(bytes_.data() + offset_, bytes_.size() - offset_,
                         "obsf block");
      if (r.pod<std::uint32_t>() != kBlockMagic) {
        throw util::CorruptionError("obsf: bad block magic");
      }
      const std::uint32_t rows = r.pod<std::uint32_t>();
      const std::uint32_t raw_len = r.pod<std::uint32_t>();
      const std::uint32_t stored_len = r.pod<std::uint32_t>();
      const std::uint8_t codec = r.pod<std::uint8_t>();
      // Worst-case growth: LZ4 expansion on the payload plus the per-column
      // frame overhead (two varints + codec byte per column).
      const std::uint64_t max_stored =
          static_cast<std::uint64_t>(raw_len) + raw_len / 255 + 16 +
          21u * schema_.columns.size();
      if (rows > kMaxBlockRows || raw_len > kMaxRawBytes || codec > 1 ||
          stored_len > max_stored) {
        throw util::CorruptionError("obsf: bad block header");
      }
      if (stored_len > r.remaining() ||
          r.remaining() - stored_len < sizeof(std::uint32_t)) {
        throw util::CorruptionError("obsf: truncated block payload");
      }
      const std::uint8_t* payload = bytes_.data() + offset_ + r.offset();
      // CRC covers rows..payload: 13 header bytes after the magic, then the
      // payload itself.
      const std::uint32_t crc_here =
          util::crc32(bytes_.data() + offset_ + sizeof(std::uint32_t),
                      13 + stored_len);
      std::uint32_t file_crc;
      std::memcpy(&file_crc, payload + stored_len, sizeof(file_crc));
      if (crc_here != file_crc) {
        throw util::CorruptionError("obsf: block CRC mismatch");
      }

      const std::size_t frame_len =
          r.offset() + stored_len + sizeof(std::uint32_t);

      if (rows == 0) {
        // Sentinel: clean end of stream. Strict mode rejects trailing bytes.
        if (raw_len != 0 || stored_len != 0) {
          throw util::CorruptionError("obsf: malformed sentinel block");
        }
        offset_ += frame_len;
        if (offset_ != bytes_.size()) {
          throw util::CorruptionError("obsf: trailing bytes after sentinel");
        }
        done_ = true;
        return false;
      }

      // Locate each column's run inside the payload. Decoding (and any
      // per-column decompression) is deferred to the first accessor touch,
      // so a projected scan only pays for the columns it reads; the framing
      // itself is fully validated here.
      if (codec == 0 && stored_len != raw_len) {
        throw util::CorruptionError("obsf: raw block length mismatch");
      }
      std::size_t off = 0;
      std::uint64_t plain_total = 0;
      for (std::size_t c = 0; c < schema_.columns.size(); ++c) {
        columns_[c].clear();
        ColumnData& col = columns_[c];
        if (codec == 1) {
          const std::uint64_t rlen = get_varint(payload, stored_len, off);
          const std::uint64_t slen = get_varint(payload, stored_len, off);
          if (off >= stored_len) {
            throw util::CorruptionError("obsf: truncated column frame");
          }
          const std::uint8_t run_codec = payload[off++];
          if (run_codec > 1 || (run_codec == 0 && slen != rlen) ||
              rlen > kMaxRawBytes || slen > stored_len - off) {
            throw util::CorruptionError("obsf: bad column frame");
          }
          col.src = payload + off;
          col.stored_len = static_cast<std::size_t>(slen);
          col.raw_len = static_cast<std::size_t>(rlen);
          col.run_codec = run_codec;
          off += static_cast<std::size_t>(slen);
          plain_total += varint_size(rlen) + rlen;
        } else {
          const std::uint64_t rlen = get_varint(payload, stored_len, off);
          if (rlen > stored_len - off) {
            throw util::CorruptionError("obsf: column run overruns block");
          }
          col.src = payload + off;
          col.stored_len = static_cast<std::size_t>(rlen);
          col.raw_len = static_cast<std::size_t>(rlen);
          col.run_codec = 0;
          off += static_cast<std::size_t>(rlen);
        }
      }
      if (off != stored_len) {
        throw util::CorruptionError("obsf: block has trailing bytes");
      }
      // raw_len in the frame header is the plain-payload size; for framed
      // blocks it must equal the reconstruction from the per-column runs.
      if (codec == 1 && plain_total != raw_len) {
        throw util::CorruptionError("obsf: bad block header");
      }

      rows_ = rows;
      ++blocks_read_;
      offset_ += frame_len;
      return true;
    }
  } catch (const util::CorruptionError&) {
    if (!options_.recover) throw;
    truncated_ = true;
    done_ = true;
    return false;
  }
}

void ObsfReader::ensure_decoded(std::size_t c) const {
  ColumnData& col = columns_[c];
  if (col.decoded) return;
  col.decoded = true;
  if (col.src == nullptr) return;  // no block loaded: accessors stay empty
  const std::uint8_t* run = col.src;
  if (col.run_codec == 1) {
    col.storage.resize(col.raw_len);
    lz4_decompress(col.src, col.stored_len, col.storage.data(), col.raw_len);
    run = col.storage.data();
  }
  decode_column(schema_.columns[c], run, col.raw_len, rows_, col);
}

#define ODLP_OBSF_COL(fn, member, ctype, want)                                \
  const std::vector<ctype>& ObsfReader::fn(std::size_t c) const {             \
    if (c >= schema_.columns.size() ||                                        \
        schema_.columns[c].type != ColumnType::want) {                        \
      throw std::logic_error("obsf: column accessor type mismatch");          \
    }                                                                         \
    ensure_decoded(c);                                                        \
    return columns_[c].member;                                                \
  }

ODLP_OBSF_COL(col_i64, i64, std::int64_t, kI64)
ODLP_OBSF_COL(col_u64, u64, std::uint64_t, kU64)
ODLP_OBSF_COL(col_f64, f64, double, kF64)
ODLP_OBSF_COL(col_u8, u8, std::uint8_t, kU8)
ODLP_OBSF_COL(col_f32, f32, float, kF32)
#undef ODLP_OBSF_COL

const std::vector<std::string_view>& ObsfReader::col_bytes_views(
    std::size_t c) const {
  if (c >= schema_.columns.size() ||
      schema_.columns[c].type != ColumnType::kBytes) {
    throw std::logic_error("obsf: column accessor type mismatch");
  }
  ensure_decoded(c);
  return columns_[c].views;
}

const std::vector<std::string>& ObsfReader::col_bytes(std::size_t c) const {
  if (c >= schema_.columns.size() ||
      schema_.columns[c].type != ColumnType::kBytes) {
    throw std::logic_error("obsf: column accessor type mismatch");
  }
  ensure_decoded(c);
  return columns_[c].materialized();
}

std::vector<std::string>& ObsfReader::col_bytes_mut(std::size_t c) {
  if (c >= schema_.columns.size() ||
      schema_.columns[c].type != ColumnType::kBytes) {
    throw std::logic_error("obsf: column accessor type mismatch");
  }
  ensure_decoded(c);
  columns_[c].materialized();
  return columns_[c].bytes;
}

}  // namespace odlp::io
