#include "io/lz4.h"

#include <cstring>
#include <vector>

#include "util/atomic_file.h"

namespace odlp::io {

namespace {

// LZ4 block format constants (see lz4_Block_format.md in the reference
// implementation — the framing below is wire-compatible with it).
constexpr std::size_t kMinMatch = 4;       // matches are at least 4 bytes
constexpr std::size_t kMfLimit = 12;       // no match may start past n-12
constexpr std::size_t kLastLiterals = 5;   // final >=5 bytes are literals
constexpr std::size_t kMaxOffset = 65535;  // 16-bit match offsets
constexpr int kHashLog = 13;               // 8 KiB hash table (stack-friendly)

inline std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashLog);
}

inline std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

// Writes a length in the LZ4 extension scheme: the nibble already holds
// min(len, 15); every additional 255 units is a 0xFF byte, then the
// remainder byte terminates.
inline void put_ext_len(std::uint8_t*& op, std::size_t len) {
  while (len >= 255) {
    *op++ = 0xFF;
    len -= 255;
  }
  *op++ = static_cast<std::uint8_t>(len);
}

}  // namespace

std::size_t lz4_max_compressed_size(std::size_t n) {
  return n + n / 255 + 16;
}

std::size_t lz4_compress(const std::uint8_t* src, std::size_t n,
                         std::uint8_t* dst) {
  if (n == 0) return 0;
  std::uint8_t* op = dst;

  // Inputs too short to hold any legal match are one all-literal sequence.
  if (n < kMfLimit + 1) {
    if (n < 15) {
      *op++ = static_cast<std::uint8_t>(n << 4);
    } else {
      *op++ = 0xF0;
      put_ext_len(op, n - 15);
    }
    std::memcpy(op, src, n);
    return static_cast<std::size_t>(op - dst) + n;
  }

  // pos+1 is stored so 0 means "empty slot"; positions fit u32 because
  // OBSF blocks are capped well below 4 GiB.
  std::vector<std::uint32_t> table(std::size_t{1} << kHashLog, 0);

  const std::size_t match_limit = n - kMfLimit;  // last legal match start
  const std::size_t lit_limit = n - kLastLiterals;
  std::size_t anchor = 0;  // first literal not yet emitted
  std::size_t pos = 0;

  while (pos <= match_limit) {
    const std::uint32_t h = hash4(load32(src + pos));
    const std::uint32_t cand1 = table[h];
    table[h] = static_cast<std::uint32_t>(pos + 1);
    if (cand1 == 0 || pos + 1 - cand1 > kMaxOffset ||
        load32(src + cand1 - 1) != load32(src + pos)) {
      ++pos;
      continue;
    }
    const std::size_t cand = cand1 - 1;

    // Extend the match forward; the last kLastLiterals bytes stay literal.
    std::size_t mlen = kMinMatch;
    while (pos + mlen < lit_limit && src[cand + mlen] == src[pos + mlen]) {
      ++mlen;
    }

    const std::size_t lit = pos - anchor;
    std::uint8_t* token = op++;
    if (lit >= 15) {
      *token = 0xF0;
      put_ext_len(op, lit - 15);
    } else {
      *token = static_cast<std::uint8_t>(lit << 4);
    }
    std::memcpy(op, src + anchor, lit);
    op += lit;

    const std::size_t offset = pos - cand;
    *op++ = static_cast<std::uint8_t>(offset & 0xFF);
    *op++ = static_cast<std::uint8_t>(offset >> 8);

    const std::size_t mcode = mlen - kMinMatch;
    if (mcode >= 15) {
      *token |= 0x0F;
      put_ext_len(op, mcode - 15);
    } else {
      *token |= static_cast<std::uint8_t>(mcode);
    }

    pos += mlen;
    anchor = pos;
    if (pos <= match_limit) {
      // Prime the table with the position just behind the match end; greedy
      // LZ4 does this to catch immediately repeating runs.
      table[hash4(load32(src + pos - 2))] =
          static_cast<std::uint32_t>(pos - 1);
    }
  }

  // Trailing literal run (always non-empty: >= kLastLiterals bytes).
  const std::size_t lit = n - anchor;
  if (lit >= 15) {
    *op++ = 0xF0;
    put_ext_len(op, lit - 15);
  } else {
    *op++ = static_cast<std::uint8_t>(lit << 4);
  }
  std::memcpy(op, src + anchor, lit);
  op += lit;
  return static_cast<std::size_t>(op - dst);
}

std::size_t lz4_decompress(const std::uint8_t* src, std::size_t n,
                           std::uint8_t* dst, std::size_t dst_size) {
  if (dst_size == 0) {
    if (n != 0) throw util::CorruptionError("lz4: data for empty output");
    return 0;
  }
  if (n == 0) throw util::CorruptionError("lz4: empty input");

  std::size_t ip = 0;
  std::size_t op = 0;

  auto read_ext_len = [&](std::size_t base) -> std::size_t {
    std::size_t len = base;
    std::uint8_t b;
    do {
      if (ip >= n) throw util::CorruptionError("lz4: truncated length");
      b = src[ip++];
      len += b;
      if (len > dst_size + 255) {
        throw util::CorruptionError("lz4: length overflow");
      }
    } while (b == 0xFF);
    return len;
  };

  while (true) {
    if (ip >= n) throw util::CorruptionError("lz4: truncated sequence");
    const std::uint8_t token = src[ip++];
    std::size_t lit = token >> 4;

    // Fast path: short literal run and a short match, with enough input and
    // output margin that every access below is in bounds without per-copy
    // checks. The blind fixed-size copies may move a few garbage bytes past
    // the true run, which the margins keep inside the buffers and the next
    // sequence (or the careful tail path) overwrites. A conforming final
    // literal run can never take this branch: it would need ip+lit == n,
    // contradicting the n-ip >= 18 margin with lit <= 14.
    if (lit != 15 && n - ip >= 18 && dst_size - op >= 16) {
      std::memcpy(dst + op, src + ip, 16);
      ip += lit;
      op += lit;
      const std::size_t offset =
          src[ip] | (static_cast<std::size_t>(src[ip + 1]) << 8);
      ip += 2;
      if (offset == 0 || offset > op) {
        throw util::CorruptionError("lz4: match offset out of range");
      }
      const std::size_t mcode = token & 0x0F;
      if (mcode != 15 && offset >= 8 && dst_size - op >= 20) {
        // mlen = mcode + 4 <= 18; copy 20 bytes in 8-byte steps (forward
        // order keeps offset >= 8 overlap correct).
        const std::uint8_t* match = dst + op - offset;
        std::uint8_t* out = dst + op;
        std::memcpy(out, match, 8);
        std::memcpy(out + 8, match + 8, 8);
        std::memcpy(out + 16, match + 16, 4);
        op += mcode + kMinMatch;
        continue;
      }
      const std::size_t mlen =
          (mcode == 15 ? read_ext_len(15) : mcode) + kMinMatch;
      if (mlen > dst_size - op) {
        throw util::CorruptionError("lz4: match overruns output");
      }
      const std::uint8_t* match = dst + op - offset;
      std::uint8_t* out = dst + op;
      if (offset >= 8 && mlen + 8 <= dst_size - op) {
        std::size_t i = 0;
        do {
          std::memcpy(out + i, match + i, 8);
          i += 8;
        } while (i < mlen);
      } else {
        for (std::size_t i = 0; i < mlen; ++i) out[i] = match[i];
      }
      op += mlen;
      continue;
    }

    // Careful path: long runs and the end of the block.
    if (lit == 15) lit = read_ext_len(15);
    if (lit > n - ip || lit > dst_size - op) {
      throw util::CorruptionError("lz4: literal run out of bounds");
    }
    std::memcpy(dst + op, src + ip, lit);
    ip += lit;
    op += lit;

    if (ip == n) break;  // block ends after a literal run

    if (n - ip < 2) throw util::CorruptionError("lz4: truncated offset");
    const std::size_t offset =
        src[ip] | (static_cast<std::size_t>(src[ip + 1]) << 8);
    ip += 2;
    if (offset == 0 || offset > op) {
      throw util::CorruptionError("lz4: match offset out of range");
    }

    const std::size_t mcode = token & 0x0F;
    const std::size_t mlen =
        (mcode == 15 ? read_ext_len(15) : mcode) + kMinMatch;
    if (mlen > dst_size - op) {
      throw util::CorruptionError("lz4: match overruns output");
    }
    // Forward copy: offsets < mlen legitimately overlap the bytes being
    // written (run-length encoding of repeats). With a non-overlapping
    // match and >= 8 bytes of output headroom, copy 8-byte chunks — the
    // chunked copy may write up to 7 bytes past the match end, which the
    // headroom check keeps inside dst; a later sequence overwrites them.
    const std::uint8_t* match = dst + op - offset;
    std::uint8_t* out = dst + op;
    if (offset >= 8 && mlen + 8 <= dst_size - op) {
      std::size_t i = 0;
      do {
        std::memcpy(out + i, match + i, 8);
        i += 8;
      } while (i < mlen);
    } else {
      for (std::size_t i = 0; i < mlen; ++i) out[i] = match[i];
    }
    op += mlen;
  }

  if (op != dst_size) {
    throw util::CorruptionError("lz4: decompressed size mismatch");
  }
  return op;
}

}  // namespace odlp::io
