#include "io/stream_capture.h"

#include <utility>

#include "util/atomic_file.h"

namespace odlp::io {

namespace {

constexpr const char* kTrafficMeta = "odlp.traffic.v1";

Schema traffic_schema() {
  Schema s;
  s.meta = kTrafficMeta;
  s.columns = {
      {"position", ColumnType::kU64, ColumnCodec::kDelta},
      {"split", ColumnType::kU8, ColumnCodec::kZoH},
      {"question", ColumnType::kBytes, ColumnCodec::kFlat},
      {"answer", ColumnType::kBytes, ColumnCodec::kFlat},
      {"reference", ColumnType::kBytes, ColumnCodec::kFlat},
      {"domain", ColumnType::kI64, ColumnCodec::kZoH},
      {"subtopic", ColumnType::kI64, ColumnCodec::kZoH},
      {"noise", ColumnType::kU8, ColumnCodec::kZoH},
  };
  return s;
}

}  // namespace

RecordingStream::RecordingStream(const std::string& path)
    : writer_(std::make_unique<ObsfWriter>(path, traffic_schema())) {}

RecordingStream::~RecordingStream() = default;

void RecordingStream::append(const data::DialogueSet& set, bool test) {
  writer_->append_u64(set.stream_position);
  writer_->append_u8(test ? 1 : 0);
  writer_->append_bytes(set.question);
  writer_->append_bytes(set.answer);
  writer_->append_bytes(set.reference);
  writer_->append_i64(set.true_domain);
  writer_->append_i64(set.true_subtopic);
  writer_->append_u8(set.is_noise ? 1 : 0);
  writer_->end_row();
}

ObsfWriter::Stats RecordingStream::finish() { return writer_->finish(); }

ReplayStream::ReplayStream(const std::string& path) : reader_(path) {
  if (reader_.schema().meta != kTrafficMeta ||
      reader_.schema().columns.size() != 8) {
    throw util::CorruptionError("replay: " + path +
                                " is not a traffic recording");
  }
}

ReplayStream::~ReplayStream() = default;

bool ReplayStream::next(data::DialogueSet& set, bool& test) {
  if (!have_block_ || row_ >= reader_.rows()) {
    if (!reader_.next_block()) return false;
    have_block_ = true;
    row_ = 0;
  }
  set.stream_position =
      static_cast<std::size_t>(reader_.col_u64(0)[row_]);
  test = reader_.col_u8(1)[row_] != 0;
  // Moved, not copied: each row is delivered exactly once, and the column
  // storage is overwritten wholesale at the next block decode.
  set.question = std::move(reader_.col_bytes_mut(2)[row_]);
  set.answer = std::move(reader_.col_bytes_mut(3)[row_]);
  set.reference = std::move(reader_.col_bytes_mut(4)[row_]);
  set.true_domain = static_cast<int>(reader_.col_i64(5)[row_]);
  set.true_subtopic = static_cast<int>(reader_.col_i64(6)[row_]);
  set.is_noise = reader_.col_u8(7)[row_] != 0;
  ++row_;
  return true;
}

ObsfWriter::Stats record_dataset(const data::GeneratedDataset& dataset,
                                 const std::string& path) {
  RecordingStream rec(path);
  for (const data::DialogueSet& s : dataset.stream) rec.append(s, false);
  for (const data::DialogueSet& s : dataset.test) rec.append(s, true);
  return rec.finish();
}

data::GeneratedDataset replay_dataset(const std::string& path) {
  ReplayStream rep(path);
  data::GeneratedDataset out;
  data::DialogueSet set;
  bool test = false;
  while (rep.next(set, test)) {
    (test ? out.test : out.stream).push_back(std::move(set));
  }
  return out;
}

}  // namespace odlp::io
